file(REMOVE_RECURSE
  "CMakeFiles/bench_esw.dir/bench/bench_esw.cpp.o"
  "CMakeFiles/bench_esw.dir/bench/bench_esw.cpp.o.d"
  "bench_esw"
  "bench_esw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_esw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
