# Empty dependencies file for bench_cam.
# This may be replaced when dependencies are built.
