
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accessor/master_accessor.cpp" "CMakeFiles/stlm.dir/src/accessor/master_accessor.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/accessor/master_accessor.cpp.o.d"
  "/root/repo/src/accessor/rtl_arbiter.cpp" "CMakeFiles/stlm.dir/src/accessor/rtl_arbiter.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/accessor/rtl_arbiter.cpp.o.d"
  "/root/repo/src/accessor/slave_accessor.cpp" "CMakeFiles/stlm.dir/src/accessor/slave_accessor.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/accessor/slave_accessor.cpp.o.d"
  "/root/repo/src/cam/address_map.cpp" "CMakeFiles/stlm.dir/src/cam/address_map.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cam/address_map.cpp.o.d"
  "/root/repo/src/cam/bridge.cpp" "CMakeFiles/stlm.dir/src/cam/bridge.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cam/bridge.cpp.o.d"
  "/root/repo/src/cam/buses.cpp" "CMakeFiles/stlm.dir/src/cam/buses.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cam/buses.cpp.o.d"
  "/root/repo/src/cam/cam_base.cpp" "CMakeFiles/stlm.dir/src/cam/cam_base.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cam/cam_base.cpp.o.d"
  "/root/repo/src/cam/grant_engine.cpp" "CMakeFiles/stlm.dir/src/cam/grant_engine.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cam/grant_engine.cpp.o.d"
  "/root/repo/src/cam/wrappers.cpp" "CMakeFiles/stlm.dir/src/cam/wrappers.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cam/wrappers.cpp.o.d"
  "/root/repo/src/core/esw.cpp" "CMakeFiles/stlm.dir/src/core/esw.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/core/esw.cpp.o.d"
  "/root/repo/src/core/mapper.cpp" "CMakeFiles/stlm.dir/src/core/mapper.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/core/mapper.cpp.o.d"
  "/root/repo/src/core/system_graph.cpp" "CMakeFiles/stlm.dir/src/core/system_graph.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/core/system_graph.cpp.o.d"
  "/root/repo/src/cpu/cpu.cpp" "CMakeFiles/stlm.dir/src/cpu/cpu.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cpu/cpu.cpp.o.d"
  "/root/repo/src/cpu/irq.cpp" "CMakeFiles/stlm.dir/src/cpu/irq.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/cpu/irq.cpp.o.d"
  "/root/repo/src/explore/explorer.cpp" "CMakeFiles/stlm.dir/src/explore/explorer.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/explore/explorer.cpp.o.d"
  "/root/repo/src/hwsw/driver.cpp" "CMakeFiles/stlm.dir/src/hwsw/driver.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/hwsw/driver.cpp.o.d"
  "/root/repo/src/hwsw/hw_adapter.cpp" "CMakeFiles/stlm.dir/src/hwsw/hw_adapter.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/hwsw/hw_adapter.cpp.o.d"
  "/root/repo/src/kernel/clock.cpp" "CMakeFiles/stlm.dir/src/kernel/clock.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/clock.cpp.o.d"
  "/root/repo/src/kernel/event.cpp" "CMakeFiles/stlm.dir/src/kernel/event.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/event.cpp.o.d"
  "/root/repo/src/kernel/event_wheel.cpp" "CMakeFiles/stlm.dir/src/kernel/event_wheel.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/event_wheel.cpp.o.d"
  "/root/repo/src/kernel/module.cpp" "CMakeFiles/stlm.dir/src/kernel/module.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/module.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "CMakeFiles/stlm.dir/src/kernel/process.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/process.cpp.o.d"
  "/root/repo/src/kernel/report.cpp" "CMakeFiles/stlm.dir/src/kernel/report.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/report.cpp.o.d"
  "/root/repo/src/kernel/simulator.cpp" "CMakeFiles/stlm.dir/src/kernel/simulator.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/simulator.cpp.o.d"
  "/root/repo/src/kernel/stack_pool.cpp" "CMakeFiles/stlm.dir/src/kernel/stack_pool.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/stack_pool.cpp.o.d"
  "/root/repo/src/kernel/time.cpp" "CMakeFiles/stlm.dir/src/kernel/time.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/time.cpp.o.d"
  "/root/repo/src/kernel/txn.cpp" "CMakeFiles/stlm.dir/src/kernel/txn.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/kernel/txn.cpp.o.d"
  "/root/repo/src/ocp/monitor.cpp" "CMakeFiles/stlm.dir/src/ocp/monitor.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ocp/monitor.cpp.o.d"
  "/root/repo/src/ocp/pin_master.cpp" "CMakeFiles/stlm.dir/src/ocp/pin_master.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ocp/pin_master.cpp.o.d"
  "/root/repo/src/ocp/pin_slave.cpp" "CMakeFiles/stlm.dir/src/ocp/pin_slave.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ocp/pin_slave.cpp.o.d"
  "/root/repo/src/ocp/tl_channel.cpp" "CMakeFiles/stlm.dir/src/ocp/tl_channel.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ocp/tl_channel.cpp.o.d"
  "/root/repo/src/ocp/tl_if.cpp" "CMakeFiles/stlm.dir/src/ocp/tl_if.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ocp/tl_if.cpp.o.d"
  "/root/repo/src/ocp/types.cpp" "CMakeFiles/stlm.dir/src/ocp/types.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ocp/types.cpp.o.d"
  "/root/repo/src/rtos/rtos.cpp" "CMakeFiles/stlm.dir/src/rtos/rtos.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/rtos/rtos.cpp.o.d"
  "/root/repo/src/ship/channel.cpp" "CMakeFiles/stlm.dir/src/ship/channel.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ship/channel.cpp.o.d"
  "/root/repo/src/ship/serialization.cpp" "CMakeFiles/stlm.dir/src/ship/serialization.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/ship/serialization.cpp.o.d"
  "/root/repo/src/trace/channel_stats.cpp" "CMakeFiles/stlm.dir/src/trace/channel_stats.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/trace/channel_stats.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "CMakeFiles/stlm.dir/src/trace/stats.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/trace/stats.cpp.o.d"
  "/root/repo/src/trace/txn_log.cpp" "CMakeFiles/stlm.dir/src/trace/txn_log.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/trace/txn_log.cpp.o.d"
  "/root/repo/src/trace/vcd.cpp" "CMakeFiles/stlm.dir/src/trace/vcd.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/trace/vcd.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "CMakeFiles/stlm.dir/src/workload/spec.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/workload/spec.cpp.o.d"
  "/root/repo/src/workload/trace_replay.cpp" "CMakeFiles/stlm.dir/src/workload/trace_replay.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/workload/trace_replay.cpp.o.d"
  "/root/repo/src/workload/validate.cpp" "CMakeFiles/stlm.dir/src/workload/validate.cpp.o" "gcc" "CMakeFiles/stlm.dir/src/workload/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
