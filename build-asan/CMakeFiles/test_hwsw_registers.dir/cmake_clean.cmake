file(REMOVE_RECURSE
  "CMakeFiles/test_hwsw_registers.dir/tests/test_hwsw_registers.cpp.o"
  "CMakeFiles/test_hwsw_registers.dir/tests/test_hwsw_registers.cpp.o.d"
  "test_hwsw_registers"
  "test_hwsw_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwsw_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
