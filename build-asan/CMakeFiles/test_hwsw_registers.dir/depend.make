# Empty dependencies file for test_hwsw_registers.
# This may be replaced when dependencies are built.
