# Empty dependencies file for test_cam_wrappers.
# This may be replaced when dependencies are built.
