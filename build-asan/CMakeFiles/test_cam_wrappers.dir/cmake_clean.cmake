file(REMOVE_RECURSE
  "CMakeFiles/test_cam_wrappers.dir/tests/test_cam_wrappers.cpp.o"
  "CMakeFiles/test_cam_wrappers.dir/tests/test_cam_wrappers.cpp.o.d"
  "test_cam_wrappers"
  "test_cam_wrappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cam_wrappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
