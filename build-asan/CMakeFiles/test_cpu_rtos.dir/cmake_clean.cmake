file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_rtos.dir/tests/test_cpu_rtos.cpp.o"
  "CMakeFiles/test_cpu_rtos.dir/tests/test_cpu_rtos.cpp.o.d"
  "test_cpu_rtos"
  "test_cpu_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
