# Empty dependencies file for test_kernel_scheduler.
# This may be replaced when dependencies are built.
