file(REMOVE_RECURSE
  "CMakeFiles/test_explore.dir/tests/test_explore.cpp.o"
  "CMakeFiles/test_explore.dir/tests/test_explore.cpp.o.d"
  "test_explore"
  "test_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
