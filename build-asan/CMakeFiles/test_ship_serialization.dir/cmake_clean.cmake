file(REMOVE_RECURSE
  "CMakeFiles/test_ship_serialization.dir/tests/test_ship_serialization.cpp.o"
  "CMakeFiles/test_ship_serialization.dir/tests/test_ship_serialization.cpp.o.d"
  "test_ship_serialization"
  "test_ship_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ship_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
