# Empty dependencies file for test_audit.
# This may be replaced when dependencies are built.
