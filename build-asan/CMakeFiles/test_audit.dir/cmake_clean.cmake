file(REMOVE_RECURSE
  "CMakeFiles/test_audit.dir/tests/test_audit.cpp.o"
  "CMakeFiles/test_audit.dir/tests/test_audit.cpp.o.d"
  "test_audit"
  "test_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
