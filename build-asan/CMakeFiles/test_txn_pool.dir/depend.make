# Empty dependencies file for test_txn_pool.
# This may be replaced when dependencies are built.
