file(REMOVE_RECURSE
  "CMakeFiles/test_accessor.dir/tests/test_accessor.cpp.o"
  "CMakeFiles/test_accessor.dir/tests/test_accessor.cpp.o.d"
  "test_accessor"
  "test_accessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
