# Empty dependencies file for test_kernel_process.
# This may be replaced when dependencies are built.
