file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_process.dir/tests/test_kernel_process.cpp.o"
  "CMakeFiles/test_kernel_process.dir/tests/test_kernel_process.cpp.o.d"
  "test_kernel_process"
  "test_kernel_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
