file(REMOVE_RECURSE
  "CMakeFiles/test_cam_split.dir/tests/test_cam_split.cpp.o"
  "CMakeFiles/test_cam_split.dir/tests/test_cam_split.cpp.o.d"
  "test_cam_split"
  "test_cam_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cam_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
