file(REMOVE_RECURSE
  "CMakeFiles/test_flow_errors.dir/tests/test_flow_errors.cpp.o"
  "CMakeFiles/test_flow_errors.dir/tests/test_flow_errors.cpp.o.d"
  "test_flow_errors"
  "test_flow_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
