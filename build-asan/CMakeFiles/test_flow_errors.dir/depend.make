# Empty dependencies file for test_flow_errors.
# This may be replaced when dependencies are built.
