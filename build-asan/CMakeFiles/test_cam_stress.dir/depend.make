# Empty dependencies file for test_cam_stress.
# This may be replaced when dependencies are built.
