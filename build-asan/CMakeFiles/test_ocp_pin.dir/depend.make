# Empty dependencies file for test_ocp_pin.
# This may be replaced when dependencies are built.
