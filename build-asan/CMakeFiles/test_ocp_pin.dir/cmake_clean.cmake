file(REMOVE_RECURSE
  "CMakeFiles/test_ocp_pin.dir/tests/test_ocp_pin.cpp.o"
  "CMakeFiles/test_ocp_pin.dir/tests/test_ocp_pin.cpp.o.d"
  "test_ocp_pin"
  "test_ocp_pin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocp_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
