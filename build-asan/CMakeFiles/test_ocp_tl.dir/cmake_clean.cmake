file(REMOVE_RECURSE
  "CMakeFiles/test_ocp_tl.dir/tests/test_ocp_tl.cpp.o"
  "CMakeFiles/test_ocp_tl.dir/tests/test_ocp_tl.cpp.o.d"
  "test_ocp_tl"
  "test_ocp_tl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocp_tl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
