file(REMOVE_RECURSE
  "CMakeFiles/test_hwsw.dir/tests/test_hwsw.cpp.o"
  "CMakeFiles/test_hwsw.dir/tests/test_hwsw.cpp.o.d"
  "test_hwsw"
  "test_hwsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
