file(REMOVE_RECURSE
  "CMakeFiles/test_ship_timing.dir/tests/test_ship_timing.cpp.o"
  "CMakeFiles/test_ship_timing.dir/tests/test_ship_timing.cpp.o.d"
  "test_ship_timing"
  "test_ship_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ship_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
