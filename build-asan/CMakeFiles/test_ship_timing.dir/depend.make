# Empty dependencies file for test_ship_timing.
# This may be replaced when dependencies are built.
