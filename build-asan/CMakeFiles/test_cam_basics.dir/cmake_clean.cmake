file(REMOVE_RECURSE
  "CMakeFiles/test_cam_basics.dir/tests/test_cam_basics.cpp.o"
  "CMakeFiles/test_cam_basics.dir/tests/test_cam_basics.cpp.o.d"
  "test_cam_basics"
  "test_cam_basics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cam_basics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
