# Empty dependencies file for test_ship_channel.
# This may be replaced when dependencies are built.
