file(REMOVE_RECURSE
  "CMakeFiles/test_ship_channel.dir/tests/test_ship_channel.cpp.o"
  "CMakeFiles/test_ship_channel.dir/tests/test_ship_channel.cpp.o.d"
  "test_ship_channel"
  "test_ship_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ship_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
