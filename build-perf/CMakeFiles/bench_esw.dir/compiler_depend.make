# Empty compiler generated dependencies file for bench_esw.
# This may be replaced when dependencies are built.
