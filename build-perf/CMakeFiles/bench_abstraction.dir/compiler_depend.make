# Empty compiler generated dependencies file for bench_abstraction.
# This may be replaced when dependencies are built.
