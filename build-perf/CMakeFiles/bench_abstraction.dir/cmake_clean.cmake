file(REMOVE_RECURSE
  "CMakeFiles/bench_abstraction.dir/bench/bench_abstraction.cpp.o"
  "CMakeFiles/bench_abstraction.dir/bench/bench_abstraction.cpp.o.d"
  "bench_abstraction"
  "bench_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
