# Empty compiler generated dependencies file for bench_wrapper_ablation.
# This may be replaced when dependencies are built.
