file(REMOVE_RECURSE
  "CMakeFiles/bench_wrapper_ablation.dir/bench/bench_wrapper_ablation.cpp.o"
  "CMakeFiles/bench_wrapper_ablation.dir/bench/bench_wrapper_ablation.cpp.o.d"
  "bench_wrapper_ablation"
  "bench_wrapper_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wrapper_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
