file(REMOVE_RECURSE
  "CMakeFiles/bench_serialization.dir/bench/bench_serialization.cpp.o"
  "CMakeFiles/bench_serialization.dir/bench/bench_serialization.cpp.o.d"
  "bench_serialization"
  "bench_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
