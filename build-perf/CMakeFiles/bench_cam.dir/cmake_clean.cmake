file(REMOVE_RECURSE
  "CMakeFiles/bench_cam.dir/bench/bench_cam.cpp.o"
  "CMakeFiles/bench_cam.dir/bench/bench_cam.cpp.o.d"
  "bench_cam"
  "bench_cam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
