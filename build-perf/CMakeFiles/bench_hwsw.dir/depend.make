# Empty dependencies file for bench_hwsw.
# This may be replaced when dependencies are built.
