file(REMOVE_RECURSE
  "CMakeFiles/bench_hwsw.dir/bench/bench_hwsw.cpp.o"
  "CMakeFiles/bench_hwsw.dir/bench/bench_hwsw.cpp.o.d"
  "bench_hwsw"
  "bench_hwsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hwsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
