file(REMOVE_RECURSE
  "CMakeFiles/bench_ship.dir/bench/bench_ship.cpp.o"
  "CMakeFiles/bench_ship.dir/bench/bench_ship.cpp.o.d"
  "bench_ship"
  "bench_ship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
