# Empty dependencies file for bench_ship.
# This may be replaced when dependencies are built.
