#!/usr/bin/env python3
"""Validate Chrome Trace Event JSON emitted by obs::TraceSession.

Stdlib only (runs in bare CI images). Checks:

  * the file is valid JSON of the shape {"traceEvents": [...]}
  * every event carries name/ph/pid/tid, a numeric ts >= 0 (metadata "M"
    events are exempt from ts), and a known phase (B E b e i M)
  * non-metadata timestamps are monotonically non-decreasing in file
    order (the exporter sorts before writing)
  * duration events balance: per (pid, tid) every "E" closes the latest
    "B" and nothing is left open at the end
  * async events balance: per (cat, id, name) the b/e counts match and
    the running count never goes negative
  * failure-semantics instants ("fault", "retry", "timeout", "abort"
    from the fault injector / RetryPolicy) are "i" events, and every
    "timeout" instant falls inside some completed "watchdog" async span
    (inclusive: the watchdog fires at the deadline, the span closes at
    settle time >= the deadline)
  * at least --min-events non-metadata events (an empty trace usually
    means the hooks were compiled out or nothing was attached)

Optional:
  --same OTHER      byte-compare against a second trace (determinism)
  --metrics CSV     validate an obs::MetricsRegistry CSV artifact
  --selftest        run the built-in self-checks and exit

Exit code 0 on success, 1 on validation failure, 2 on usage error.
"""

import argparse
import io
import json
import sys

KNOWN_PHASES = {"B", "E", "b", "e", "i", "M"}

# Instant names emitted by the failure-semantics layer (fault::Injector
# on the bus track, cam::RetryPolicy on its own track).
FAULT_INSTANTS = {"fault", "retry", "timeout", "abort"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    return 1


def check_trace_obj(doc, min_events):
    """Validate a parsed trace document. Returns a list of error strings."""
    errors = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ['top level must be {"traceEvents": [...]}']
    events = doc["traceEvents"]
    last_ts = None
    open_spans = {}  # (pid, tid) -> open "B" count
    async_open = {}  # (cat, id, name) -> running b/e count
    watchdog_begins = {}  # (cat, id) -> stack of open "watchdog" begin ts
    watchdog_spans = []  # completed (begin_ts, end_ts) watchdog intervals
    timeout_marks = []  # (event index, ts) of "timeout" instants
    non_meta = 0
    for i, ev in enumerate(events):
        where = f"event #{i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                errors.append(f"{where}: missing '{key}'")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        non_meta += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts {ts} < previous {last_ts} (not monotonic)")
        last_ts = ts
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            open_spans[track] = open_spans.get(track, 0) + 1
        elif ph == "E":
            if open_spans.get(track, 0) <= 0:
                errors.append(f"{where}: 'E' with no open 'B' on track {track}")
            else:
                open_spans[track] -= 1
        elif ph in ("b", "e"):
            if "id" not in ev:
                errors.append(f"{where}: async event missing 'id'")
                continue
            key = (ev.get("cat"), ev["id"], ev.get("name"))
            if ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
                if ev.get("name") == "watchdog":
                    watchdog_begins.setdefault(key[:2], []).append(ts)
            else:
                if async_open.get(key, 0) <= 0:
                    errors.append(f"{where}: 'e' with no open 'b' for {key}")
                else:
                    async_open[key] -= 1
                    if ev.get("name") == "watchdog":
                        begins = watchdog_begins.get(key[:2])
                        if begins:
                            watchdog_spans.append((begins.pop(), ts))
        elif ph == "i" and ev.get("name") == "timeout":
            timeout_marks.append((i, ts))
    for track, n in sorted(open_spans.items(), key=str):
        if n:
            errors.append(f"track {track}: {n} unclosed 'B' span(s)")
    for key, n in sorted(async_open.items(), key=str):
        if n:
            errors.append(f"async {key}: {n} unclosed 'b' event(s)")
    # Every deadline miss must be attributable to an armed watchdog: the
    # "timeout" instant fires at the deadline, and its policy's
    # retrospective "watchdog" span [armed, settled] contains it.
    for i, ts in timeout_marks:
        if not any(b <= ts <= e for b, e in watchdog_spans):
            errors.append(
                f"event #{i}: 'timeout' instant at ts {ts} not inside any "
                "completed 'watchdog' span")
    if non_meta < min_events:
        errors.append(f"only {non_meta} non-metadata events (need >= {min_events})")
    return errors


def check_trace_file(path, min_events):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    return [f"{path}: {e}" for e in check_trace_obj(doc, min_events)]


def check_metrics_csv(stream, path="<metrics>"):
    errors = []
    header = stream.readline().rstrip("\n")
    cols = header.split(",")
    if not cols or cols[0] != "time_us":
        return [f"{path}: header must start with 'time_us', got {header!r}"]
    if len(cols) < 2:
        errors.append(f"{path}: no gauge columns in header")
    last_t = None
    n_rows = 0
    for lineno, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != len(cols):
            errors.append(
                f"{path}:{lineno}: {len(parts)} fields, header has {len(cols)}")
            continue
        try:
            values = [float(p) for p in parts]
        except ValueError as e:
            errors.append(f"{path}:{lineno}: {e}")
            continue
        t = values[0]
        if last_t is not None and t < last_t:
            errors.append(f"{path}:{lineno}: time {t} < previous {last_t}")
        last_t = t
        n_rows += 1
    if n_rows == 0:
        errors.append(f"{path}: no data rows")
    return errors


def check_metrics_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return check_metrics_csv(f, path)
    except OSError as e:
        return [f"{path}: {e}"]


def selftest():
    ok_doc = {
        "traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "p"}},
            {"name": "run", "ph": "B", "pid": 1, "tid": 1, "ts": 0.0},
            {"name": "queue", "ph": "b", "cat": "txn", "id": 7, "pid": 1,
             "tid": 2, "ts": 0.5},
            {"name": "queue", "ph": "e", "cat": "txn", "id": 7, "pid": 1,
             "tid": 2, "ts": 1.0},
            {"name": "mark", "ph": "i", "pid": 1, "tid": 1, "ts": 1.5, "s": "t"},
            {"name": "run", "ph": "E", "pid": 1, "tid": 1, "ts": 2.0},
        ]
    }
    cases = [
        ("valid trace", ok_doc, 1, 0),
        ("min-events too high", ok_doc, 100, 1),
        ("not a trace", {"foo": 1}, 1, 1),
        ("unbalanced B", {"traceEvents": [
            {"name": "run", "ph": "B", "pid": 1, "tid": 1, "ts": 0.0}]}, 1, 1),
        ("E without B", {"traceEvents": [
            {"name": "run", "ph": "E", "pid": 1, "tid": 1, "ts": 0.0}]}, 1, 1),
        ("non-monotonic", {"traceEvents": [
            {"name": "a", "ph": "i", "pid": 1, "tid": 1, "ts": 2.0, "s": "t"},
            {"name": "b", "ph": "i", "pid": 1, "tid": 1, "ts": 1.0, "s": "t"},
        ]}, 1, 1),
        ("unbalanced async", {"traceEvents": [
            {"name": "q", "ph": "b", "cat": "txn", "id": 1, "pid": 1,
             "tid": 1, "ts": 0.0}]}, 1, 1),
        ("timeout inside watchdog span", {"traceEvents": [
            {"name": "watchdog", "ph": "b", "cat": "txn", "id": 3, "pid": 1,
             "tid": 1, "ts": 0.0},
            {"name": "timeout", "ph": "i", "pid": 1, "tid": 1, "ts": 1.0,
             "s": "t"},
            {"name": "watchdog", "ph": "e", "cat": "txn", "id": 3, "pid": 1,
             "tid": 1, "ts": 2.0},
        ]}, 1, 0),
        ("timeout at watchdog span boundary", {"traceEvents": [
            {"name": "watchdog", "ph": "b", "cat": "txn", "id": 3, "pid": 1,
             "tid": 1, "ts": 0.0},
            {"name": "timeout", "ph": "i", "pid": 1, "tid": 1, "ts": 2.0,
             "s": "t"},
            {"name": "watchdog", "ph": "e", "cat": "txn", "id": 3, "pid": 1,
             "tid": 1, "ts": 2.0},
        ]}, 1, 0),
        ("timeout without watchdog span", {"traceEvents": [
            {"name": "timeout", "ph": "i", "pid": 1, "tid": 1, "ts": 1.0,
             "s": "t"}]}, 1, 1),
        ("timeout outside watchdog span", {"traceEvents": [
            {"name": "watchdog", "ph": "b", "cat": "txn", "id": 3, "pid": 1,
             "tid": 1, "ts": 0.0},
            {"name": "watchdog", "ph": "e", "cat": "txn", "id": 3, "pid": 1,
             "tid": 1, "ts": 1.0},
            {"name": "timeout", "ph": "i", "pid": 1, "tid": 1, "ts": 2.0,
             "s": "t"},
        ]}, 1, 1),
        ("fault and retry instants are plain instants", {"traceEvents": [
            {"name": "fault", "ph": "i", "pid": 1, "tid": 1, "ts": 0.0,
             "s": "t"},
            {"name": "retry", "ph": "i", "pid": 1, "tid": 1, "ts": 1.0,
             "s": "t"},
            {"name": "abort", "ph": "i", "pid": 1, "tid": 1, "ts": 2.0,
             "s": "t"},
        ]}, 1, 0),
    ]
    failures = 0
    for label, doc, min_events, want_errors in cases:
        errors = check_trace_obj(doc, min_events)
        got = 1 if errors else 0
        if got != want_errors:
            print(f"selftest FAIL: {label}: errors={errors}")
            failures += 1
    csv_cases = [
        ("valid csv", "time_us,a,b\n0.1,1,2\n0.2,3,4\n", 0),
        ("bad header", "wall,a\n0.1,1\n", 1),
        ("field mismatch", "time_us,a\n0.1,1,2\n", 1),
        ("non-monotonic time", "time_us,a\n0.2,1\n0.1,2\n", 1),
        ("empty", "time_us,a\n", 1),
    ]
    for label, text, want_errors in csv_cases:
        errors = check_metrics_csv(io.StringIO(text))
        got = 1 if errors else 0
        if got != want_errors:
            print(f"selftest FAIL: {label}: errors={errors}")
            failures += 1
    if failures:
        return 1
    print("check_trace: selftest OK "
          f"({len(cases)} trace cases, {len(csv_cases)} csv cases)")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", nargs="?", help="trace JSON to validate")
    ap.add_argument("--same", metavar="OTHER",
                    help="second trace that must be byte-identical")
    ap.add_argument("--metrics", metavar="CSV",
                    help="metrics CSV artifact to validate")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum non-metadata event count (default 1)")
    ap.add_argument("--selftest", action="store_true",
                    help="run built-in self-checks and exit")
    args = ap.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.trace:
        ap.print_usage()
        print("check_trace: a trace file (or --selftest) is required")
        return 2

    errors = check_trace_file(args.trace, args.min_events)
    if args.same:
        try:
            with open(args.trace, "rb") as a, open(args.same, "rb") as b:
                if a.read() != b.read():
                    errors.append(
                        f"{args.trace} and {args.same} differ (non-deterministic)")
        except OSError as e:
            errors.append(str(e))
    if args.metrics:
        errors.extend(check_metrics_file(args.metrics))

    if errors:
        for e in errors:
            print(f"check_trace: FAIL: {e}")
        return 1
    checked = [args.trace] + ([args.same] if args.same else []) \
        + ([args.metrics] if args.metrics else [])
    print(f"check_trace: OK ({', '.join(checked)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
