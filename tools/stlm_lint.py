#!/usr/bin/env python3
"""stlm-lint: repo-specific determinism and hygiene checks for src/.

The generic sanitizer/clang-tidy layers cannot see this library's own
contracts, so this linter enforces the ones that keep simulations
reproducible and the library embeddable:

  determinism-rand        no rand()/srand()/std::random_device in library
                          code: simulated behaviour must not depend on
                          hidden global RNG state (workloads thread
                          explicit seeds through SplitMix/engine objects).
  determinism-wall-clock  no wall-clock reads (std::chrono::*_clock,
                          time(), gettimeofday, clock_gettime): simulated
                          time comes from the kernel, and host time leaking
                          into results breaks bit-identity across runs.
  io-stdout               no std::cout / printf() in library code: the
                          library is embeddable, so reports take an
                          ostream& and diagnostics go through
                          kernel/report.hpp (stderr).
  hot-path-alloc          files tagged `// stlm-lint: hot-path` must not
                          introduce per-event heap allocation (new,
                          malloc/calloc/realloc, make_unique/make_shared):
                          the kernel's speed story depends on steady-state
                          simulation being allocation-free.
  test-coverage           every src/**/*.cpp translation unit must be
                          reachable from at least one tests/test_*.cpp via
                          the quoted-include graph (a .cpp counts as
                          covered when its same-stem header is reachable):
                          dead or untested TUs rot silently.

Suppressions are per-line and must carry a justification:

    some_call();  // stlm-lint: allow(io-stdout): CLI tool entry point

A suppression comment on its own line covers the following line. A bare
`allow(rule)` without justification text is itself a finding; so is an
unknown rule name. There is no file- or directory-level opt-out besides
the hot-path tag, which *adds* a rule rather than removing one.

Exit status: 0 clean, 1 findings, 2 usage error. Stdlib only.
"""

import argparse
import pathlib
import re
import sys

RULES = (
    "determinism-rand",
    "determinism-wall-clock",
    "io-stdout",
    "hot-path-alloc",
    "test-coverage",
)

# Pattern tables: (rule, compiled regex, message). Applied to comment- and
# string-stripped source so prose and format strings never trip them.
TOKEN_RULES = [
    ("determinism-rand", re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand() in library code; thread an explicit seeded engine"),
    ("determinism-rand", re.compile(r"std::random_device"),
     "std::random_device is nondeterministic; thread an explicit seed"),
    ("determinism-wall-clock",
     re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "wall-clock read in library code; simulated time comes from the kernel"),
    ("determinism-wall-clock",
     re.compile(r"(?<![\w])(gettimeofday|clock_gettime)\s*\("),
     "wall-clock syscall in library code"),
    ("determinism-wall-clock", re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time() read in library code"),
    ("io-stdout", re.compile(r"std::cout"),
     "std::cout in library code; take an ostream& or use kernel/report.hpp"),
    ("io-stdout", re.compile(r"(?<![\w])printf\s*\("),
     "printf() in library code; take an ostream& or use kernel/report.hpp"),
]

ALLOC_RULES = [
    ("hot-path-alloc", re.compile(r"(?<![\w])new\b(?!\s*\()"),
     "heap allocation in a hot-path file"),
    ("hot-path-alloc", re.compile(r"(?<![\w])(malloc|calloc|realloc|strdup)\s*\("),
     "heap allocation in a hot-path file"),
    ("hot-path-alloc", re.compile(r"make_(unique|shared)\s*<"),
     "heap allocation in a hot-path file"),
]

HOT_PATH_TAG = re.compile(r"//\s*stlm-lint:\s*hot-path\b")
ALLOW = re.compile(r"//\s*stlm-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(.*?))?\s*$")
INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def strip_code(text):
    """Blank out comments, string and char literals, preserving line
    structure, so token scans only see code. Handles // /*...*/ "..."
    '...' and raw strings R"delim(...)delim" (the kernel embeds asm in
    one)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:end])
            i = end
        elif c == "R" and text[i + 1 : i + 2] == '"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                end = n if j < 0 else j + len(close)
                out.extend(ch if ch == "\n" else " " for ch in text[i:end])
                i = end
            else:
                out.append(c)
                i += 1
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            end = min(j + 1, n)
            out.extend(ch if ch == "\n" else " " for ch in text[i:end])
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, line, rule, message):
        self.items.append((str(path), line, rule, message))


def allowances(raw_lines):
    """Map line number -> (rule, justification_ok, allow_line) from
    stlm-lint allow comments. A trailing comment covers its own line; a
    comment alone on a line covers the next *code* line (justifications
    may wrap onto following comment-only lines)."""
    allowed = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW.search(line)
        if not m:
            continue
        rule, why = m.group(1), (m.group(2) or "").strip()
        entry = (rule, bool(why), idx)
        allowed.setdefault(idx, []).append(entry)
        if line.strip().startswith("//"):  # standalone
            j = idx  # 0-based index of the line after the comment
            while j < len(raw_lines) and raw_lines[j].strip().startswith("//"):
                j += 1
            allowed.setdefault(j + 1, []).append(entry)
    return allowed


def is_allowed(allowed, lineno, rule, findings, path, consumed):
    for entry in allowed.get(lineno, ()):
        if entry[0] == rule:
            consumed.add(id(entry))
            if not entry[1]:
                findings.add(path, entry[2], "bad-suppression",
                             f"allow({rule}) needs a justification after ':'")
            return True
    return False


def scan_file(path, findings):
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_code(raw).splitlines()
    allowed = allowances(raw_lines)
    consumed = set()

    hot = any(HOT_PATH_TAG.search(l) for l in raw_lines[:30])
    rules = TOKEN_RULES + (ALLOC_RULES if hot else [])

    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW.search(line)
        if m and m.group(1) not in RULES:
            findings.add(path, lineno, "bad-suppression",
                         f"unknown rule '{m.group(1)}'")

    for lineno, line in enumerate(code_lines, start=1):
        for rule, pat, msg in rules:
            if pat.search(line) and not is_allowed(allowed, lineno, rule,
                                                  findings, path, consumed):
                findings.add(path, lineno, rule, msg)


def include_closure(entry, src_root, cache):
    """Set of src-relative header paths reachable from `entry` through
    quoted includes (resolved against src/)."""
    key = str(entry)
    if key in cache:
        return cache[key]
    cache[key] = set()  # cycle guard
    reach = set()
    try:
        text = entry.read_text(encoding="utf-8", errors="replace")
    except OSError:
        cache[key] = reach
        return reach
    for line in text.splitlines():
        m = INCLUDE.match(line)
        if not m:
            continue
        target = src_root / m.group(1)
        if not target.is_file():
            continue
        rel = target.relative_to(src_root)
        if rel not in reach:
            reach.add(rel)
            reach |= include_closure(target, src_root, cache)
    cache[key] = reach
    return reach


def check_test_coverage(repo, findings):
    src_root = repo / "src"
    tests = sorted((repo / "tests").glob("test_*.cpp"))
    cache = {}
    covered = set()
    for t in tests:
        covered |= include_closure(t, src_root, cache)
    for cpp in sorted(src_root.rglob("*.cpp")):
        twin = cpp.with_suffix(".hpp").relative_to(src_root)
        if twin not in covered and cpp.relative_to(src_root) not in covered:
            findings.add(cpp, 1, "test-coverage",
                         f"no tests/test_*.cpp reaches {twin} "
                         "(translation unit is untested)")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("repo", nargs="?", default=".",
                    help="repository root (contains src/ and tests/)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)
    if args.list_rules:
        print("\n".join(RULES))
        return 0

    repo = pathlib.Path(args.repo).resolve()
    src_root = repo / "src"
    if not src_root.is_dir():
        print(f"stlm-lint: no src/ under {repo}", file=sys.stderr)
        return 2

    findings = Findings()
    for f in sorted(list(src_root.rglob("*.cpp")) + list(src_root.rglob("*.hpp"))):
        scan_file(f, findings)
    check_test_coverage(repo, findings)

    for path, line, rule, msg in sorted(findings.items):
        print(f"{path}:{line}: [{rule}] {msg}")
    if findings.items:
        print(f"stlm-lint: {len(findings.items)} finding(s)", file=sys.stderr)
        return 1
    print(f"stlm-lint: clean ({len(list(src_root.rglob('*.[ch]pp')))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
