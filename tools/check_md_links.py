#!/usr/bin/env python3
"""Check markdown links in the repository (stdlib only, no network).

Usage:
    check_md_links.py [ROOT]

Scans every *.md file under ROOT (default: the repository root, i.e. the
parent of this script's directory) excluding build/ and hidden
directories, extracts inline links/images `[text](target)` and
reference definitions `[label]: target`, and verifies that

  * relative file targets exist (anchors `#...` are stripped first;
    a bare `#anchor` is checked against the headings of its own file);
  * intra-file anchors match a heading slug of the target file.

External targets (http/https/mailto) are reported but not fetched —
CI must stay hermetic. Exits 1 when any local link is broken, else 0.
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading):
    """GitHub-style anchor slug of a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if not d.startswith(".") and d != "build"]
        for f in sorted(filenames):
            if f.endswith(".md"):
                yield os.path.join(dirpath, f)


def anchors_of(path, cache={}):
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as f:
                text = FENCE.sub("", f.read())
        except OSError:
            text = ""
        cache[path] = {slugify(h) for h in HEADING.findall(text)}
    return cache[path]


def check_file(path, root):
    broken = []
    external = 0
    with open(path, encoding="utf-8") as f:
        text = FENCE.sub("", f.read())
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    for target in targets:
        if target.startswith(SKIP_SCHEMES):
            external += 1
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path):
                broken.append((target, "missing anchor"))
            continue
        rel, _, anchor = target.partition("#")
        dest = os.path.normpath(os.path.join(os.path.dirname(path), rel))
        if not os.path.exists(dest):
            broken.append((target, "missing file"))
            continue
        if anchor and dest.endswith(".md") and \
                slugify(anchor) not in anchors_of(dest):
            broken.append((target, "missing anchor in " + os.path.relpath(dest, root)))
    return broken, external, len(targets)


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir))
    total_links = total_external = 0
    failures = []
    for path in md_files(root):
        broken, external, count = check_file(path, root)
        total_links += count
        total_external += external
        for target, why in broken:
            failures.append(f"{os.path.relpath(path, root)}: {target} ({why})")
    for f in failures:
        print(f"BROKEN  {f}")
    print(f"checked {total_links} links "
          f"({total_external} external skipped) — {len(failures)} broken")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
