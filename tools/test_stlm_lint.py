#!/usr/bin/env python3
"""Unit tests for tools/stlm_lint.py (stdlib only; run under ctest).

Each case materializes a miniature repo (src/ + tests/) in a temp
directory and runs the linter's main() against it, asserting on the
findings it prints and the exit status.
"""

import contextlib
import io
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import stlm_lint  # noqa: E402


class LintHarness(unittest.TestCase):
    def run_lint(self, files):
        """files: mapping of repo-relative path -> content. Returns
        (exit_code, stdout_text)."""
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td)
            for rel, content in files.items():
                p = root / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(content)
            out = io.StringIO()
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(io.StringIO()):
                code = stlm_lint.main([str(root)])
            return code, out.getvalue()

    # Minimal covered pair so test-coverage stays quiet unless a case
    # targets it explicitly.
    BASE = {
        "src/kernel/mod.hpp": "#pragma once\nint mod();\n",
        "src/kernel/mod.cpp": '#include "kernel/mod.hpp"\nint mod() { return 1; }\n',
        "tests/test_mod.cpp": '#include "kernel/mod.hpp"\n',
    }

    def lint_src(self, body, **extra):
        files = dict(self.BASE)
        files["src/kernel/mod.cpp"] = (
            '#include "kernel/mod.hpp"\n' + body + "\nint mod() { return 1; }\n")
        files.update(extra)
        return self.run_lint(files)


class TestDeterminismRules(LintHarness):
    def test_rand_flagged(self):
        code, out = self.lint_src("int f() { return rand(); }")
        self.assertEqual(code, 1)
        self.assertIn("[determinism-rand]", out)

    def test_srand_and_random_device_flagged(self):
        code, out = self.lint_src(
            "#include <random>\nvoid g() { srand(7); std::random_device rd; }")
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[determinism-rand]"), 2)

    def test_wall_clock_flagged(self):
        code, out = self.lint_src(
            "#include <chrono>\nauto t = std::chrono::steady_clock::now();")
        self.assertEqual(code, 1)
        self.assertIn("[determinism-wall-clock]", out)

    def test_rand_in_comment_and_string_ignored(self):
        code, out = self.lint_src(
            '// rand() here is prose\nconst char* s = "rand()";')
        self.assertEqual(code, 0, out)


class TestIoRule(LintHarness):
    def test_cout_and_printf_flagged(self):
        code, out = self.lint_src(
            '#include <cstdio>\nvoid h() { printf("x"); }\n'
            "#include <iostream>\nvoid i() { std::cout << 1; }")
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[io-stdout]"), 2)

    def test_snprintf_fprintf_allowed(self):
        code, out = self.lint_src(
            '#include <cstdio>\nvoid h(char* b) { snprintf(b, 4, "x"); '
            'fprintf(stderr, "y"); }')
        self.assertEqual(code, 0, out)


class TestHotPathRule(LintHarness):
    def test_alloc_in_tagged_file_flagged(self):
        code, out = self.lint_src(
            "// stlm-lint: hot-path\nint* f() { return new int(3); }")
        self.assertEqual(code, 1)
        self.assertIn("[hot-path-alloc]", out)

    def test_alloc_in_untagged_file_ok(self):
        code, out = self.lint_src("int* f() { return new int(3); }")
        self.assertEqual(code, 0, out)

    def test_make_unique_in_tagged_file_flagged(self):
        code, out = self.lint_src(
            "// stlm-lint: hot-path\n#include <memory>\n"
            "auto p = std::make_unique<int>(1);")
        self.assertEqual(code, 1)
        self.assertIn("[hot-path-alloc]", out)


class TestSuppressions(LintHarness):
    def test_trailing_allow_with_justification(self):
        code, out = self.lint_src(
            "int f() { return rand(); }  "
            "// stlm-lint: allow(determinism-rand): fixture, not library code")
        self.assertEqual(code, 0, out)

    def test_standalone_allow_covers_next_code_line(self):
        code, out = self.lint_src(
            "// stlm-lint: allow(determinism-rand): justification that\n"
            "// wraps onto a second comment line\n"
            "int f() { return rand(); }")
        self.assertEqual(code, 0, out)

    def test_allow_without_justification_is_finding(self):
        code, out = self.lint_src(
            "int f() { return rand(); }  // stlm-lint: allow(determinism-rand)")
        self.assertEqual(code, 1)
        self.assertIn("[bad-suppression]", out)
        self.assertNotIn("[determinism-rand]", out)

    def test_unknown_rule_is_finding(self):
        code, out = self.lint_src(
            "int f();  // stlm-lint: allow(no-such-rule): whatever")
        self.assertEqual(code, 1)
        self.assertIn("unknown rule", out)

    def test_allow_for_other_rule_does_not_suppress(self):
        code, out = self.lint_src(
            "int f() { return rand(); }  "
            "// stlm-lint: allow(io-stdout): wrong rule")
        self.assertEqual(code, 1)
        self.assertIn("[determinism-rand]", out)


class TestTestCoverage(LintHarness):
    def test_unreferenced_tu_flagged(self):
        files = dict(self.BASE)
        files["src/kernel/orphan.hpp"] = "#pragma once\nint orphan();\n"
        files["src/kernel/orphan.cpp"] = (
            '#include "kernel/orphan.hpp"\nint orphan() { return 2; }\n')
        code, out = self.run_lint(files)
        self.assertEqual(code, 1)
        self.assertIn("[test-coverage]", out)
        self.assertIn("orphan", out)

    def test_transitive_include_counts(self):
        files = dict(self.BASE)
        files["src/kernel/deep.hpp"] = "#pragma once\nint deep();\n"
        files["src/kernel/deep.cpp"] = (
            '#include "kernel/deep.hpp"\nint deep() { return 3; }\n')
        # mod.hpp (reached by the test) pulls deep.hpp transitively.
        files["src/kernel/mod.hpp"] = (
            '#pragma once\n#include "kernel/deep.hpp"\nint mod();\n')
        code, out = self.run_lint(files)
        self.assertEqual(code, 0, out)


class TestStripper(unittest.TestCase):
    def test_raw_string_stripped(self):
        text = 'asm(R"(\n  rand()\n)");\nint x;\n'
        stripped = stlm_lint.strip_code(text)
        self.assertNotIn("rand", stripped)
        self.assertIn("int x;", stripped)
        self.assertEqual(text.count("\n"), stripped.count("\n"))

    def test_block_comment_preserves_lines(self):
        text = "a /* rand()\n cout */ b\n"
        stripped = stlm_lint.strip_code(text)
        self.assertNotIn("rand", stripped)
        self.assertEqual(stripped.count("\n"), 2)


if __name__ == "__main__":
    unittest.main()
