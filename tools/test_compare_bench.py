#!/usr/bin/env python3
"""CTest guard for bench/compare_bench.py input validation.

Runs the comparator against well-formed, malformed, missing and empty
inputs and checks the exit-code contract: 0 for a clean comparison, 2
for any input that cannot anchor one (the failure mode used to be a
silent "no regressions" pass).
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, "bench", "compare_bench.py")

GOOD = {
    "benchmarks": [
        {"name": "BM_A/1", "real_time": 100.0, "time_unit": "ns"},
        {"name": "BM_B/1", "real_time": 2.0, "time_unit": "ms"},
    ]
}
REGRESSED = {
    "benchmarks": [
        {"name": "BM_A/1", "real_time": 500.0, "time_unit": "ns"},
        {"name": "BM_B/1", "real_time": 2.0, "time_unit": "ms"},
    ]
}


def run(baseline, current, *flags):
    return subprocess.run(
        [sys.executable, SCRIPT, baseline, current, *flags],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def main():
    failures = []

    def expect(label, proc, code):
        if proc.returncode != code:
            failures.append(f"{label}: exit {proc.returncode}, wanted {code}\n"
                            f"{proc.stdout}")

    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "good.json")
        regressed = os.path.join(tmp, "regressed.json")
        malformed = os.path.join(tmp, "malformed.json")
        empty = os.path.join(tmp, "empty.json")
        with open(good, "w") as f:
            json.dump(GOOD, f)
        with open(regressed, "w") as f:
            json.dump(REGRESSED, f)
        with open(malformed, "w") as f:
            f.write("{not json")
        with open(empty, "w") as f:
            json.dump({"benchmarks": []}, f)
        nondict = os.path.join(tmp, "nondict.json")
        with open(nondict, "w") as f:
            json.dump({"benchmarks": [42, "x"]}, f)
        missing = os.path.join(tmp, "does_not_exist.json")

        expect("identical inputs", run(good, good), 0)
        expect("regression warns only", run(good, regressed), 0)
        expect("regression strict", run(good, regressed, "--strict"), 1)
        expect("malformed baseline", run(malformed, good), 2)
        expect("malformed current", run(good, malformed), 2)
        expect("missing baseline", run(missing, good), 2)
        expect("empty baseline", run(empty, good), 2)
        expect("non-object entries", run(nondict, good), 2)
        expect("help mentions validation",
               run(good, good, "--help"), 0)
        help_text = run(good, good, "--help").stdout
        if "exits with status 2" not in help_text:
            failures.append("--help does not document the validation exit")

    if failures:
        print("\n".join(failures))
        return 1
    print("compare_bench.py exit-code contract holds (9 cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
