// Communication architecture exploration for a synthetic SoC (paper §3).
//
// Four traffic sources with different intensities share the interconnect
// with an RPC-style service. The same abstract system is mapped onto
// every architecture in the cross-product candidate grid (bus kind x
// arbiter x bus clock x data width); the printed table is the artifact a
// designer would use to pick the interconnect. The sweep is sharded
// across worker threads — one complete simulator per worker — and the
// parallel run is checked (and reported) against the sequential one:
// identical simulated results, smaller wall clock.
//
// Build & run:  ./example_exploration

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

expl::Explorer::GraphFactory soc_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    // Two bulk streams (DMA-like), one light stream, one RPC client.
    auto video = std::make_unique<expl::ProducerPe>("video", 24, 512, 50);
    auto audio = std::make_unique<expl::ProducerPe>("audio", 24, 64, 200);
    auto ctrl = std::make_unique<expl::ProducerPe>("ctrl", 12, 16, 400);
    auto v_sink = std::make_unique<expl::SinkPe>("v_sink", 24);
    auto a_sink = std::make_unique<expl::SinkPe>("a_sink", 24);
    auto c_sink = std::make_unique<expl::SinkPe>("c_sink", 12);
    auto client = std::make_unique<expl::RequesterPe>("client", 16, 32, 100);
    auto server = std::make_unique<expl::EchoServerPe>("server", 16, 50);

    g.add_pe(*video);
    g.add_pe(*audio);
    g.add_pe(*ctrl);
    g.add_pe(*v_sink);
    g.add_pe(*a_sink);
    g.add_pe(*c_sink);
    g.add_pe(*client);
    g.add_pe(*server);
    g.connect("video_ch", *video, "out", *v_sink, "in", 2);
    g.connect("audio_ch", *audio, "out", *a_sink, "in", 2);
    g.connect("ctrl_ch", *ctrl, "out", *c_sink, "in", 1);
    g.connect("rpc", *client, "out", *server, "in", 1);

    o.push_back(std::move(video));
    o.push_back(std::move(audio));
    o.push_back(std::move(ctrl));
    o.push_back(std::move(v_sink));
    o.push_back(std::move(a_sink));
    o.push_back(std::move(c_sink));
    o.push_back(std::move(client));
    o.push_back(std::move(server));
  };
}

}  // namespace

int main() {
  std::printf("== communication architecture exploration: synthetic SoC ==\n");
  std::printf("workload: 2 bulk streams + control stream + RPC service\n\n");

  expl::Explorer explorer(soc_factory());
  auto candidates = expl::grid_candidates();

  // Also try a TDMA variant with longer slots.
  {
    core::Platform p;
    p.name = "plb-tdma-long";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::Tdma;
    p.tdma_slot_cycles = 64;
    candidates.push_back(p);
  }

  const unsigned threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::printf("sweeping %zu candidate architectures...\n\n",
              candidates.size());

  const auto seq_start = std::chrono::steady_clock::now();
  const auto seq_rows = explorer.sweep(candidates, 500_ms);
  const auto seq_end = std::chrono::steady_clock::now();
  const auto rows = explorer.sweep_parallel(candidates, 500_ms, threads);
  const auto par_end = std::chrono::steady_clock::now();

  expl::Explorer::print_table(std::cout, rows);

  // The parallel shard must reproduce the sequential results exactly —
  // each worker runs its own simulator from fresh state.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].sim_time_us != seq_rows[i].sim_time_us ||
        rows[i].transactions != seq_rows[i].transactions) {
      std::printf("MISMATCH between sequential and parallel sweep at %s\n",
                  rows[i].platform.c_str());
      return 1;
    }
  }

  const double seq_ms =
      std::chrono::duration<double, std::milli>(seq_end - seq_start).count();
  const double par_ms =
      std::chrono::duration<double, std::milli>(par_end - seq_end).count();
  std::printf("\nsweep wall clock: sequential %.1f ms, %u threads %.1f ms "
              "(%.2fx), results identical\n",
              seq_ms, threads, par_ms, seq_ms / par_ms);

  const expl::ExplorationRow* best = nullptr;
  for (const auto& r : rows) {
    if (r.completed && (!best || r.sim_time_us < best->sim_time_us)) best = &r;
  }
  if (best) {
    std::printf("selected: %s (%.1f us simulated)\n", best->platform.c_str(),
                best->sim_time_us);
  }

  // ---- the second exploration axis: platform x workload ----------------
  // The same candidate platforms crossed with the canonical synthetic
  // workloads (seeded uniform / bursty / request-reply / pipeline): the
  // interconnect that wins under smooth streaming is not necessarily the
  // one that wins under bursts or RPC traffic.
  std::printf("\n== platform x workload grid ==\n");
  const auto loads = expl::workload_candidates();
  expl::Explorer gx;
  const auto cells = expl::default_candidates();
  const auto grid_rows = gx.sweep_parallel(cells, loads, 500_ms, threads);
  expl::Explorer::print_table(std::cout, grid_rows);

  // Per-workload winner: does the architecture choice depend on traffic?
  for (const auto& w : loads) {
    const expl::ExplorationRow* win = nullptr;
    for (const auto& r : grid_rows) {
      if (r.workload != w.name || !r.completed) continue;
      if (!win || r.sim_time_us < win->sim_time_us) win = &r;
    }
    if (win) {
      std::printf("best for %-9s: %s (%.1f us)\n", w.name.c_str(),
                  win->platform.c_str(), win->sim_time_us);
    }
  }
  return 0;
}
