// Crypto offload: transaction-based HW/SW communication (paper §4).
//
// A software application (an RTOS task on the embedded CPU) encrypts data
// by offloading XTEA block encryption to a hardware accelerator. The
// SHIP request/reply pair crosses the HW/SW boundary through the generic
// interface: device driver + communication library on the SW side, OCP
// mailbox + shared-memory window + sideband interrupt on the HW side —
// and the application code is the same code that worked in the untimed
// model.
//
// Build & run:  ./example_crypto_offload

#include <cstdio>
#include <vector>

#include "core/core.hpp"
#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr int kBlocksToEncrypt = 12;
constexpr std::uint32_t kKey[4] = {0x01234567, 0x89abcdef, 0xfedcba98,
                                   0x76543210};

// XTEA, 32 rounds — the reference implementation both partitions share.
void xtea_encrypt(std::uint32_t v[2], const std::uint32_t key[4]) {
  std::uint32_t v0 = v[0], v1 = v[1], sum = 0;
  for (int i = 0; i < 32; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += 0x9E3779B9;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  v[0] = v0;
  v[1] = v1;
}

struct CryptoResult {
  int verified = 0;
  int mismatches = 0;
};

}  // namespace

int main() {
  std::printf("== XTEA offload over the HW/SW interface ==\n");
  CryptoResult result;

  // SW application: runs as an eSW task after mapping.
  core::LambdaPe app("app", [&result](core::ExecContext& ctx) {
    ship::ship_if& accel = ctx.channel("accel");
    for (int blk = 0; blk < kBlocksToEncrypt; ++blk) {
      ship::PodMsg<std::array<std::uint32_t, 2>> plain, cipher;
      plain.value = {static_cast<std::uint32_t>(blk * 2654435761u),
                     static_cast<std::uint32_t>(blk * 40503u + 7)};
      ctx.consume(200);  // prepare the block
      accel.request(plain, cipher);

      // Verify against a local software XTEA.
      std::uint32_t ref[2] = {plain.value[0], plain.value[1]};
      xtea_encrypt(ref, kKey);
      if (ref[0] == cipher.value[0] && ref[1] == cipher.value[1]) {
        ++result.verified;
      } else {
        ++result.mismatches;
      }
    }
  });

  // HW accelerator: one XTEA block per request.
  core::LambdaPe accel("xtea_accel", [](core::ExecContext& ctx) {
    ship::ship_if& port = ctx.channel("port");
    for (int blk = 0; blk < kBlocksToEncrypt; ++blk) {
      ship::PodMsg<std::array<std::uint32_t, 2>> msg;
      port.recv(msg);
      std::uint32_t v[2] = {msg.value[0], msg.value[1]};
      xtea_encrypt(v, kKey);
      msg.value = {v[0], v[1]};
      ctx.consume(64);  // 2 rounds/cycle pipeline
      port.reply(msg);
    }
  });

  core::SystemGraph graph;
  graph.add_pe(app, core::Partition::Software);
  graph.add_pe(accel, core::Partition::Hardware);
  graph.connect("offload", app, "accel", accel, "port");
  graph.discover_roles();
  result = CryptoResult{};  // the discovery probe run also counted
  std::printf("detected: app is %s, accel is %s\n",
              ship::role_name(graph.channels()[0].role_a),
              ship::role_name(graph.channels()[0].role_a) ==
                      std::string("master")
                  ? "slave"
                  : "master");

  core::Platform plat;
  plat.name = "plb-coreconnect";
  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, plat, core::AbstractionLevel::Cam);
  const bool done = ms->run_until_done(500_ms);

  std::printf("workload done: %s at %s\n", done ? "yes" : "NO",
              sim.now().to_string().c_str());
  std::printf("blocks verified: %d, mismatches: %d\n", result.verified,
              result.mismatches);
  if (ms->cpu_model()) {
    std::printf("cpu: %llu cycles, %llu bus transactions\n",
                static_cast<unsigned long long>(
                    ms->cpu_model()->cycles_consumed()),
                static_cast<unsigned long long>(
                    ms->cpu_model()->bus_transactions()));
  }
  if (ms->os()) {
    std::printf("rtos context switches: %llu\n",
                static_cast<unsigned long long>(ms->os()->context_switches()));
  }
  const double us = sim.now().to_seconds() * 1e6;
  if (us > 0) {
    std::printf("throughput: %.2f blocks/ms (simulated)\n",
                result.verified / us * 1000.0);
  }
  return result.mismatches == 0 && done ? 0 : 1;
}
