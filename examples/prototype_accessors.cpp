// RTL prototype with accessors + VCD waveform dump (paper §3).
//
// The prototyping path: PEs refined to pin-level OCP are attached to the
// target bus through synthesizable accessors. Two masters (a DMA-ish
// writer and a checker) share the bus via the RTL arbiter and talk to a
// memory PE behind a slave accessor. The run is traced to
// `prototype.vcd` (open with GTKWave) — the waveform a designer would
// inspect before synthesis.
//
// Build & run:  ./example_prototype_accessors

#include <cstdio>
#include <numeric>

#include "accessor/accessor.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"
#include "ocp/ocp.hpp"
#include "trace/vcd.hpp"

using namespace stlm;
using namespace stlm::time_literals;

int main() {
  Simulator sim;
  Clock clk(sim, "clk", 10_ns);

  // Shared pin-level bus + arbiter.
  accessor::BusPins bus(sim, "bus");
  accessor::RtlArbiter arb(sim, "arb", bus, clk);

  // Master PE 0: writer.
  ocp::OcpPins pe0_pins(sim, "pe0");
  ocp::OcpPinMaster pe0(sim, "pe0.m", pe0_pins, clk);
  accessor::MasterAccessor acc0(sim, "acc0", pe0_pins, bus, arb, clk);

  // Master PE 1: checker.
  ocp::OcpPins pe1_pins(sim, "pe1");
  ocp::OcpPinMaster pe1(sim, "pe1.m", pe1_pins, clk);
  accessor::MasterAccessor acc1(sim, "acc1", pe1_pins, bus, arb, clk);

  // Slave PE: memory behind a pin-level OCP interface + slave accessor.
  ocp::OcpPins mem_pins(sim, "mem");
  ocp::MemorySlave mem("mem", 0x0, 0x1000);
  ocp::OcpPinSlave mem_pe(sim, "mem.s", mem_pins, clk, mem);
  accessor::SlaveAccessor sacc(sim, "sacc", mem_pins, bus, clk, {0x0, 0x1000});

  // Protocol monitors on both PE-side pin bundles.
  ocp::OcpMonitor mon0(sim, "mon0", pe0_pins, clk);
  ocp::OcpMonitor mon1(sim, "mon1", pe1_pins, clk);

  // Waveform tracing.
  trace::VcdWriter vcd(sim, "prototype.vcd");
  vcd.add(clk.signal(), "clk");
  vcd.add(bus.Grant, "bus_grant");
  vcd.add(bus.PAValid, "bus_pavalid");
  vcd.add(bus.ABus, "bus_abus");
  vcd.add(bus.WrDBus, "bus_wrdbus");
  vcd.add(bus.WrAck, "bus_wrack");
  vcd.add(bus.RdDBus, "bus_rddbus");
  vcd.add(bus.RdAck, "bus_rdack");
  vcd.add(bus.Comp, "bus_comp");
  vcd.add(pe0_pins.MCmd, "pe0_mcmd");
  vcd.add(pe1_pins.MCmd, "pe1_mcmd");

  int errors = 0;
  bool writer_done = false;

  sim.spawn_thread("writer", [&] {
    std::vector<std::uint8_t> pattern(64);
    std::iota(pattern.begin(), pattern.end(), 1);
    for (int i = 0; i < 4; ++i) {
      auto r = pe0.transport(
          ocp::Request::write(static_cast<std::uint64_t>(0x100 + 64 * i),
                              pattern));
      if (!r.good()) ++errors;
    }
    writer_done = true;
  });

  sim.spawn_thread("checker", [&] {
    while (!writer_done) wait(clk.posedge_event());
    for (int i = 0; i < 4; ++i) {
      auto r = pe1.transport(
          ocp::Request::read(static_cast<std::uint64_t>(0x100 + 64 * i), 64));
      if (!r.good() || r.data.size() != 64 || r.data[0] != 1 ||
          r.data[63] != 64) {
        ++errors;
      }
    }
    sim.stop();
  });

  sim.run();

  std::printf("== RTL prototype run ==\n");
  std::printf("simulated time: %s (%llu clock cycles)\n",
              sim.now().to_string().c_str(),
              static_cast<unsigned long long>(clk.cycle_count()));
  std::printf("bus grants: %llu, master0 txns: %llu, master1 txns: %llu\n",
              static_cast<unsigned long long>(arb.grants()),
              static_cast<unsigned long long>(acc0.transactions()),
              static_cast<unsigned long long>(acc1.transactions()));
  std::printf("protocol violations: %llu + %llu, data errors: %d\n",
              static_cast<unsigned long long>(mon0.violations()),
              static_cast<unsigned long long>(mon1.violations()), errors);
  std::printf("waveform written to prototype.vcd (%zu signals)\n",
              vcd.signal_count());
  return errors == 0 ? 0 : 1;
}
