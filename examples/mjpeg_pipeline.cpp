// MJPEG-style encoder pipeline — the multimedia workload class the TLM
// literature of the era used to motivate communication exploration.
//
//   camera --> dct --> quant --> vlc(sink)
//
// Each stage does real work (8x8 integer DCT, quantization, run-length
// accounting) against ExecContext, so the identical PE code runs at
// every abstraction level. The example:
//   1. runs the pipeline at component-assembly, CCATB, and CAM levels and
//      prints the simulated completion time of each (the Figure-1 flow);
//   2. captures the CCATB run's transaction trace, dumps it to CSV
//      (mjpeg_trace.csv), reloads it, and replays it on the same
//      platform — the replay must reproduce the captured transaction
//      count and byte total exactly;
//   3. sweeps the CAM library to pick a communication architecture.
//
// Build & run:  ./example_mjpeg_pipeline

#include <array>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "workload/workload.hpp"

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr int kBlocks = 24;        // 8x8 blocks per run
constexpr int kBlockPixels = 64;

// A block of pixels/coefficients on the wire.
using Block = ship::VectorMsg<std::int16_t>;

// Forward 8x8 DCT (separable, integer approximation) — real computation,
// so the "compute" side of the PEs is not a stub.
void dct8x8(std::array<std::int32_t, kBlockPixels>& b) {
  auto pass = [&](bool rows) {
    for (int i = 0; i < 8; ++i) {
      std::array<std::int32_t, 8> v{};
      for (int j = 0; j < 8; ++j) {
        std::int64_t acc = 0;
        for (int k = 0; k < 8; ++k) {
          // cos((2k+1) j pi / 16) in Q10 fixed point.
          static constexpr std::int32_t kCos[8][8] = {
              {1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024},
              {1004, 851, 569, 200, -200, -569, -851, -1004},
              {946, 392, -392, -946, -946, -392, 392, 946},
              {851, -200, -1004, -569, 569, 1004, 200, -851},
              {724, -724, -724, 724, 724, -724, -724, 724},
              {569, -1004, 200, 851, -851, -200, 1004, -569},
              {392, -946, 946, -392, -392, 946, -946, 392},
              {200, -569, 851, -1004, 1004, -851, 569, -200}};
          const std::int32_t x =
              rows ? b[static_cast<std::size_t>(8 * i + k)]
                   : b[static_cast<std::size_t>(8 * k + i)];
          acc += static_cast<std::int64_t>(kCos[j][k]) * x;
        }
        v[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(acc >> 10);
      }
      for (int j = 0; j < 8; ++j) {
        b[static_cast<std::size_t>(rows ? 8 * i + j : 8 * j + i)] =
            v[static_cast<std::size_t>(j)] / 2;
      }
    }
  };
  pass(true);
  pass(false);
}

struct PipelineStats {
  long nonzero_coeffs = 0;
  int blocks_done = 0;
};

// Factory so the explorer can rebuild the system per candidate.
expl::Explorer::GraphFactory make_factory(PipelineStats* stats) {
  return [stats](core::SystemGraph& g,
                 std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto camera = std::make_unique<core::LambdaPe>(
        "camera", [](core::ExecContext& ctx) {
          ship::ship_if& out = ctx.channel("out");
          for (int blk = 0; blk < kBlocks; ++blk) {
            Block b;
            b.data.resize(kBlockPixels);
            for (int i = 0; i < kBlockPixels; ++i) {
              b.data[static_cast<std::size_t>(i)] =
                  static_cast<std::int16_t>((blk * 37 + i * 11) % 251 - 125);
            }
            ctx.consume(64);  // sensor readout
            out.send(b);
          }
        });

    auto dct = std::make_unique<core::LambdaPe>(
        "dct", [](core::ExecContext& ctx) {
          ship::ship_if& in = ctx.channel("in");
          ship::ship_if& out = ctx.channel("out");
          for (int blk = 0; blk < kBlocks; ++blk) {
            Block b;
            in.recv(b);
            std::array<std::int32_t, kBlockPixels> work{};
            for (int i = 0; i < kBlockPixels; ++i) {
              work[static_cast<std::size_t>(i)] =
                  b.data[static_cast<std::size_t>(i)];
            }
            dct8x8(work);
            for (int i = 0; i < kBlockPixels; ++i) {
              b.data[static_cast<std::size_t>(i)] =
                  static_cast<std::int16_t>(work[static_cast<std::size_t>(i)]);
            }
            ctx.consume(900);  // ~DCT cost on a small HW block
            out.send(b);
          }
        });

    auto quant = std::make_unique<core::LambdaPe>(
        "quant", [](core::ExecContext& ctx) {
          ship::ship_if& in = ctx.channel("in");
          ship::ship_if& out = ctx.channel("out");
          for (int blk = 0; blk < kBlocks; ++blk) {
            Block b;
            in.recv(b);
            for (auto& c : b.data) c = static_cast<std::int16_t>(c / 16);
            ctx.consume(128);
            out.send(b);
          }
        });

    auto vlc = std::make_unique<core::LambdaPe>(
        "vlc", [stats](core::ExecContext& ctx) {
          ship::ship_if& in = ctx.channel("in");
          for (int blk = 0; blk < kBlocks; ++blk) {
            Block b;
            in.recv(b);
            for (auto c : b.data) {
              if (c != 0) ++stats->nonzero_coeffs;
            }
            ctx.consume(200);
            ++stats->blocks_done;
          }
        });

    g.add_pe(*camera);
    g.add_pe(*dct);
    g.add_pe(*quant);
    g.add_pe(*vlc);
    g.connect("cam2dct", *camera, "out", *dct, "in", 2);
    g.connect("dct2q", *dct, "out", *quant, "in", 2);
    g.connect("q2vlc", *quant, "out", *vlc, "in", 2);
    o.push_back(std::move(camera));
    o.push_back(std::move(dct));
    o.push_back(std::move(quant));
    o.push_back(std::move(vlc));
  };
}

}  // namespace

int main() {
  std::printf("== MJPEG pipeline across abstraction levels ==\n");
  PipelineStats stats;
  auto factory = make_factory(&stats);

  std::string captured_csv;
  trace::TxnLogger::Summary captured;
  for (auto level : {core::AbstractionLevel::ComponentAssembly,
                     core::AbstractionLevel::Ccatb,
                     core::AbstractionLevel::Cam}) {
    std::vector<std::unique_ptr<core::ProcessingElement>> owned;
    core::SystemGraph graph;
    factory(graph, owned);
    graph.discover_roles();
    stats = PipelineStats{};  // the discovery probe run also counted

    Simulator sim;
    auto ms = core::Mapper::map(sim, graph, core::Platform{}, level);
    const bool done = ms->run_until_done(100_ms);
    std::printf("  %-19s done=%s  sim_time=%-12s blocks=%d nonzero=%ld\n",
                core::level_name(level), done ? "yes" : "NO",
                sim.now().to_string().c_str(), stats.blocks_done,
                stats.nonzero_coeffs);

    if (level == core::AbstractionLevel::Ccatb) {
      // Capture the timed SHIP-level trace: this is the portable workload.
      std::ostringstream os;
      ms->txn_log().dump_csv(os);
      captured_csv = os.str();
      captured = ms->txn_log().summarize();
    }
  }

  std::printf("\n== trace capture -> CSV -> replay (CCATB, same platform) ==\n");
  {
    const char* path = "mjpeg_trace.csv";
    std::ofstream(path) << captured_csv;
    std::ifstream in(path);
    trace::TxnLogger loaded;
    loaded.load_csv(in);
    std::printf("  captured %zu records (%llu bytes) -> %s\n", loaded.size(),
                static_cast<unsigned long long>(captured.bytes), path);

    std::vector<std::unique_ptr<core::ProcessingElement>> owned;
    core::SystemGraph graph;
    workload::replay_factory(loaded)(graph, owned);
    Simulator sim;
    auto ms = core::Mapper::map(sim, graph, core::Platform{},
                                core::AbstractionLevel::Ccatb);
    const bool done = ms->run_until_done(100_ms);
    const auto replayed = ms->txn_log().summarize();
    const bool exact = replayed.count == captured.count &&
                       replayed.bytes == captured.bytes;
    std::printf("  replay: done=%s txns=%llu bytes=%llu  (capture: txns=%llu "
                "bytes=%llu) -> %s\n",
                done ? "yes" : "NO",
                static_cast<unsigned long long>(replayed.count),
                static_cast<unsigned long long>(replayed.bytes),
                static_cast<unsigned long long>(captured.count),
                static_cast<unsigned long long>(captured.bytes),
                exact ? "EXACT MATCH" : "MISMATCH");
    if (!exact) return 1;

    // Phase-accurate bar: beyond count/bytes, the replay must reproduce
    // each channel's latency *distribution* within tolerance.
    const auto validation = workload::validate_replay(loaded, ms->txn_log());
    std::printf("%s", validation.report().c_str());
    if (!validation.ok) return 1;
  }

  std::printf("\n== communication architecture exploration (CAM level) ==\n");
  expl::Explorer explorer(make_factory(&stats));
  const auto rows = explorer.sweep(expl::default_candidates(), 200_ms);
  expl::Explorer::print_table(std::cout, rows);

  // Pick the fastest completed candidate.
  const expl::ExplorationRow* best = nullptr;
  for (const auto& r : rows) {
    if (r.completed && (!best || r.sim_time_us < best->sim_time_us)) best = &r;
  }
  if (best) std::printf("selected architecture: %s\n", best->platform.c_str());
  return 0;
}
