// Failure-semantics walkthrough (src/fault + cam::RetryPolicy): seeded
// fault injection, initiator-side retries with exponential backoff and
// timeout watchdogs, and QoS aging arbitration on one mapped system.
//
// The example maps a two-stream producer/sink workload onto a PLB
// platform at the CAM level with an active fault profile (errors,
// latency spikes, grant stalls) and a retry policy tight enough that
// injected spikes occasionally miss the watchdog deadline. It writes
// three artifacts:
//
//   <prefix>report.txt   the mapped-system report, including the
//                        failure-semantics section (injected faults,
//                        errors seen, retries, timeouts, aborts).
//   <prefix>txns.csv     the schema-v3 transaction log — one row per
//                        attempt, carrying `status` and `retries`.
//   <prefix>trace.json   Chrome Trace Event timeline with fault/retry/
//                        timeout/abort instants and a retrospective
//                        `watchdog` span per watched transaction.
//
// Everything here is a pure function of (workload, platform, seed), so
// two runs of this binary produce byte-identical files — the CI
// `faults` job runs it twice and diffs all three artifacts, then
// validates the trace with tools/check_trace.py (which also checks that
// every `timeout` instant lands inside a completed watchdog span).
//
// Build & run:  ./example_faults [output-prefix]

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

expl::Explorer::GraphFactory streams_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto video = std::make_unique<expl::ProducerPe>("video", 200, 96, 20);
    auto audio = std::make_unique<expl::ProducerPe>("audio", 200, 96, 20);
    auto v_sink = std::make_unique<expl::SinkPe>("v_sink", 200);
    auto a_sink = std::make_unique<expl::SinkPe>("a_sink", 200);
    g.add_pe(*video);
    g.add_pe(*audio);
    g.add_pe(*v_sink);
    g.add_pe(*a_sink);
    g.connect("video_ch", *video, "out", *v_sink, "in", 2);
    g.connect("audio_ch", *audio, "out", *a_sink, "in", 2);
    o.push_back(std::move(video));
    o.push_back(std::move(audio));
    o.push_back(std::move(v_sink));
    o.push_back(std::move(a_sink));
  };
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "faults_";

  std::printf("== failure-semantics walkthrough ==\n");

  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  streams_factory()(graph, owned);
  graph.discover_roles();

  core::Platform plat;
  plat.name = "plb-aging-faulted";
  plat.bus = core::BusKind::Plb;
  plat.arb = core::ArbKind::PriorityAging;
  plat.aging_cycles = 16;
  plat.fault.name = "flaky";
  plat.fault.seed = 0xfa;
  plat.fault.error_rate = 0.05;
  plat.fault.spike_rate = 0.03;
  plat.fault.spike_cycles = 40;  // spikes long enough to miss the deadline
  plat.fault.stall_rate = 0.02;
  plat.fault.stall_cycles = 2;
  plat.retry.name = "r6";
  plat.retry.max_retries = 6;
  plat.retry.backoff_cycles = 2;
  plat.retry.timeout = 400_ns;

  Simulator sim;
  obs::TraceSession trace;
  trace.attach(sim);

  auto ms = core::Mapper::map(sim, graph, plat, core::AbstractionLevel::Cam);
  const bool done = ms->run_until_done(200_ms);

  trace.detach();
  {
    std::ofstream out(prefix + "report.txt");
    ms->report(out);
  }
  {
    std::ofstream out(prefix + "txns.csv");
    ms->txn_log().dump_csv(out);
  }
  {
    std::ofstream out(prefix + "trace.json");
    trace.write_json(out);
  }

  const auto t = ms->failure_totals();
  std::printf("completed: %s  sim time: %.2f us\n", done ? "yes" : "NO",
              sim.now().to_ns() / 1000.0);
  std::printf(
      "injected: %llu errors, %llu spikes, %llu stalls | "
      "seen: %llu errors, %llu retries, %llu timeouts, %llu aborts\n",
      static_cast<unsigned long long>(t.injected_errors),
      static_cast<unsigned long long>(t.injected_spikes),
      static_cast<unsigned long long>(t.injected_stalls),
      static_cast<unsigned long long>(t.errors_seen),
      static_cast<unsigned long long>(t.retries_issued),
      static_cast<unsigned long long>(t.timeouts),
      static_cast<unsigned long long>(t.aborts));
  std::printf("wrote %sreport.txt, %stxns.csv, %strace.json\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());
  return done ? 0 : 1;
}
