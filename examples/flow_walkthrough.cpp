// The complete Figure-1 design flow, top to bottom, in one program.
//
//   1. specification      : PEs written against ExecContext + SHIP
//   2. component-assembly : untimed functional model, role discovery
//   3. CCATB              : timing annotation from the platform
//   4. CAM                : bus model + wrappers, architecture selection
//   5. HW/SW partitioning : controller PE becomes eSW on the RTOS
//
// At every step the same PE source runs; the program prints what changed
// (simulated time, traffic, mapping decisions) — the "systematic"
// part of the paper's title made executable.
//
// Build & run:  ./example_flow_walkthrough

#include <cstdio>
#include <iostream>

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr int kSamples = 32;

// A small sensor-fusion system: two sensors stream samples to a fusion
// PE; a controller requests fused values over an RPC-style channel.
struct FusionSystem {
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  // Shared so PE lambdas stay valid even if this struct is moved from
  // (the explorer factory moves PEs out).
  std::shared_ptr<int> checksum = std::make_shared<int>(0);
  std::shared_ptr<int> actions = std::make_shared<int>(0);

  int fused_checksum() const { return *checksum; }

  FusionSystem() {
    auto sensor = [](int seed) {
      return [seed](core::ExecContext& ctx) {
        ship::ship_if& out = ctx.channel("out");
        for (int i = 0; i < kSamples; ++i) {
          ship::PodMsg<std::int32_t> m(seed * 1000 + i * 3);
          ctx.consume(40);  // ADC conversion
          out.send(m);
        }
      };
    };
    auto s0 = std::make_unique<core::LambdaPe>("sensor0", sensor(1));
    auto s1 = std::make_unique<core::LambdaPe>("sensor1", sensor(2));

    auto fusion = std::make_unique<core::LambdaPe>(
        "fusion", [sum = checksum](core::ExecContext& ctx) {
          ship::ship_if& a = ctx.channel("a");
          ship::ship_if& b = ctx.channel("b");
          ship::ship_if& svc = ctx.channel("svc");
          std::int32_t last = 0;
          for (int i = 0; i < kSamples; ++i) {
            ship::PodMsg<std::int32_t> va, vb;
            a.recv(va);
            b.recv(vb);
            ctx.consume(120);  // filter update
            last = (va.value + vb.value) / 2;
            *sum += last;
            // Serve one control request per fused sample.
            ship::PodMsg<std::int32_t> req;
            svc.recv(req);
            ship::PodMsg<std::int32_t> resp(last + req.value);
            svc.reply(resp);
          }
        });

    auto controller = std::make_unique<core::LambdaPe>(
        "controller", [acts = actions](core::ExecContext& ctx) {
          ship::ship_if& svc = ctx.channel("svc");
          for (int i = 0; i < kSamples; ++i) {
            ship::PodMsg<std::int32_t> req(i), resp;
            ctx.consume(300);  // control law
            svc.request(req, resp);
            if (resp.value % 2 == 0) ++*acts;
          }
        });

    graph.add_pe(*s0);
    graph.add_pe(*s1);
    graph.add_pe(*fusion);
    graph.add_pe(*controller);
    graph.connect("s0f", *s0, "out", *fusion, "a", 2);
    graph.connect("s1f", *s1, "out", *fusion, "b", 2);
    graph.connect("ctl", *controller, "svc", *fusion, "svc");
    owned.push_back(std::move(s0));
    owned.push_back(std::move(s1));
    owned.push_back(std::move(fusion));
    owned.push_back(std::move(controller));
  }
};

void run_level(const char* label, core::AbstractionLevel level,
               const core::Platform& plat, bool controller_in_sw) {
  FusionSystem sys;
  if (controller_in_sw) {
    sys.graph.set_partition(*sys.graph.pes()[3], core::Partition::Software);
  }
  sys.graph.discover_roles();
  *sys.checksum = 0;  // discovery probe counted too
  *sys.actions = 0;

  Simulator sim;
  auto ms = core::Mapper::map(sim, sys.graph, plat, level);
  const bool done = ms->run_until_done(500_ms);
  const auto traffic = ms->txn_log().summarize();
  std::printf("  %-28s done=%-3s sim=%-11s checksum=%-8d txns=%-5llu",
              label, done ? "yes" : "NO", sim.now().to_string().c_str(),
              sys.fused_checksum(),
              static_cast<unsigned long long>(traffic.count));
  if (ms->bus()) std::printf(" bus_util=%.3f", ms->bus()->utilization());
  if (ms->os()) {
    std::printf(" ctx_sw=%llu",
                static_cast<unsigned long long>(ms->os()->context_switches()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== step 1/2: component-assembly model (untimed) ==\n");
  run_level("component-assembly", core::AbstractionLevel::ComponentAssembly,
            core::Platform{}, false);

  std::printf("\n== step 3: CCATB annotation ==\n");
  run_level("ccatb (plb timing)", core::AbstractionLevel::Ccatb,
            core::Platform{}, false);

  std::printf("\n== step 4: communication architecture selection ==\n");
  {
    expl::Explorer ex([](core::SystemGraph& g,
                         std::vector<std::unique_ptr<core::ProcessingElement>>&
                             o) {
      // Rebuild the same abstract system for each candidate; the PE
      // lambdas keep their state alive via shared_ptr captures.
      FusionSystem sys;
      for (auto& pe : sys.owned) o.push_back(std::move(pe));
      g = std::move(sys.graph);
    });
    const auto rows = ex.sweep(expl::default_candidates(), 500_ms);
    expl::Explorer::print_table(std::cout, rows);
  }

  std::printf("\n== step 4b: mapped onto the selected CAM ==\n");
  run_level("cam (plb, wrappers)", core::AbstractionLevel::Cam,
            core::Platform{}, false);

  std::printf("\n== step 5: controller partitioned to software ==\n");
  run_level("cam + eSW controller", core::AbstractionLevel::Cam,
            core::Platform{}, true);

  std::printf("\nsame PE source at every step; only the binding changed.\n");
  return 0;
}
