// Quickstart: the SHIP channel and the design flow in ~100 lines.
//
//   1. Define payloads via ship_serializable_if (here: ready-made types).
//   2. Talk SHIP: send/recv and request/reply; roles are detected.
//   3. Put the same PEs in a SystemGraph and let the Mapper build the
//      component-assembly model.
//
// Build & run:  ./example_quickstart

#include <cstdio>

#include "core/core.hpp"
#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

int main() {
  // ---- Part 1: raw SHIP channel ---------------------------------------
  std::printf("== part 1: raw SHIP channel ==\n");
  {
    Simulator sim;
    ship::ShipChannel ch(sim, "link");

    sim.spawn_thread("producer", [&] {
      ship::StringMsg hello("hello, SHIP");
      ch.a().send(hello);

      ship::PodMsg<std::uint32_t> question(20), answer;
      ch.a().request(question, answer);
      std::printf("producer: request(20) -> %u\n", answer.value);
    });

    sim.spawn_thread("consumer", [&] {
      ship::StringMsg msg;
      ch.b().recv(msg);
      std::printf("consumer: received \"%s\"\n", msg.text.c_str());

      ship::PodMsg<std::uint32_t> q;
      ch.b().recv(q);
      ship::PodMsg<std::uint32_t> r(q.value * 2 + 2);
      ch.b().reply(r);
    });

    sim.run();
    std::printf("roles detected: a=%s, b=%s\n",
                ship::role_name(ch.role_a()), ship::role_name(ch.role_b()));
  }

  // ---- Part 2: the flow -------------------------------------------------
  std::printf("\n== part 2: system graph + mapper ==\n");
  {
    core::LambdaPe producer("producer", [](core::ExecContext& ctx) {
      ship::ship_if& out = ctx.channel("out");
      for (int i = 0; i < 3; ++i) {
        ctx.consume(100);  // pretend to compute for 100 cycles
        ship::PodMsg<int> m(i);
        out.send(m);
      }
    });
    core::LambdaPe consumer("consumer", [](core::ExecContext& ctx) {
      ship::ship_if& in = ctx.channel("in");
      for (int i = 0; i < 3; ++i) {
        ship::PodMsg<int> m;
        in.recv(m);
        std::printf("consumer PE: got %d at %s\n", m.value,
                    ctx.sim().now().to_string().c_str());
      }
    });

    core::SystemGraph graph;
    graph.add_pe(producer);
    graph.add_pe(consumer);
    graph.connect("stream", producer, "out", consumer, "in");

    // Component-assembly model: untimed communication.
    Simulator sim;
    auto system = core::Mapper::map(sim, graph, core::Platform{},
                                    core::AbstractionLevel::ComponentAssembly);
    system->run_until_done(1_ms);
    std::printf("component-assembly model finished at %s\n",
                sim.now().to_string().c_str());
  }
  return 0;
}
