// Observability walkthrough (src/obs): timeline tracing, kernel
// profiling, and time-series metrics on one mapped system.
//
// The example maps a small synthetic SoC (two streams + an RPC service)
// onto a PLB platform at the CAM level, attaches all three observability
// pillars, runs the workload, and writes three artifacts:
//
//   <prefix>trace.json    Chrome Trace Event timeline — open it in
//                         https://ui.perfetto.dev or chrome://tracing:
//                         one track per process (run spans), one per bus
//                         (queue/service spans per transaction, fast-path
//                         fallback instants).
//   <prefix>metrics.csv   bus utilization / outstanding txns / queue
//                         depth sampled every 200 ns of simulated time.
//   <prefix>profile.json  kernel self-profile: wall-clock per process,
//                         ctx switches, event-wheel and stack-pool
//                         internals, fast-path hit rate.
//
// The trace and CSV depend only on simulated behaviour, so two runs of
// this binary produce byte-identical files — CI runs it twice and
// diffs (tools/check_trace.py --same). The profile contains host wall
// clock and is naturally different run to run.
//
// Build & run:  ./example_observability [output-prefix]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"

using namespace stlm;

namespace {

expl::Explorer::GraphFactory soc_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto video = std::make_unique<expl::ProducerPe>("video", 16, 256, 80);
    auto ctrl = std::make_unique<expl::ProducerPe>("ctrl", 8, 16, 300);
    auto v_sink = std::make_unique<expl::SinkPe>("v_sink", 16);
    auto c_sink = std::make_unique<expl::SinkPe>("c_sink", 8);
    auto client = std::make_unique<expl::RequesterPe>("client", 8, 32, 150);
    auto server = std::make_unique<expl::EchoServerPe>("server", 8, 40);

    g.add_pe(*video);
    g.add_pe(*ctrl);
    g.add_pe(*v_sink);
    g.add_pe(*c_sink);
    g.add_pe(*client);
    g.add_pe(*server);
    g.connect("video_ch", *video, "out", *v_sink, "in", 2);
    g.connect("ctrl_ch", *ctrl, "out", *c_sink, "in", 1);
    g.connect("rpc", *client, "out", *server, "in", 1);

    o.push_back(std::move(video));
    o.push_back(std::move(ctrl));
    o.push_back(std::move(v_sink));
    o.push_back(std::move(c_sink));
    o.push_back(std::move(client));
    o.push_back(std::move(server));
  };
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "obs_";

  std::printf("== observability walkthrough ==\n");
  std::printf("obs hooks compiled in: %s\n\n",
              obs::compiled_in() ? "yes" : "no (-DSTLM_OBS=OFF)");

  // Build the abstract system and map it onto a fast-target PLB platform
  // (the fast path engages on uncontended accesses, so the trace shows
  // both fast completions and fallback instants).
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  soc_factory()(graph, owned);
  graph.discover_roles();

  core::Platform plat;
  plat.name = "plb-priority-fast";
  plat.bus = core::BusKind::Plb;
  plat.arb = core::ArbKind::Priority;
  plat.fast_targets = true;

  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, plat, core::AbstractionLevel::Cam);

  // --- pillar 1: timeline tracing ----------------------------------------
  obs::TraceSession trace;
  trace.attach(sim);

  // --- pillar 2: kernel self-profiler ------------------------------------
  obs::Profiler prof;
  prof.attach(sim);
  if (ms->bus() != nullptr) {
    cam::CamIf* bus = ms->bus();
    prof.add_bus(bus->name(), [bus] {
      obs::Profiler::BusSample s;
      trace::StatSet& st = bus->stats();
      s.transactions = st.counter("transactions");
      s.fast_hits = st.counter("fast_path_hits");
      return s;
    });
  }

  // --- pillar 3: time-series metrics -------------------------------------
  obs::MetricsRegistry metrics;
  ms->install_default_gauges(metrics);
  obs::PeriodicSampler sampler(sim, metrics, Time::ns(200));

  const bool done = ms->run_until_done(Time::us(300));
  sampler.stop();

  std::printf("workload %s at t=%s\n\n", done ? "completed" : "DID NOT finish",
              sim.now().to_string().c_str());

  ms->report(std::cout);
  std::printf("\n");
  prof.write_table(std::cout);

  // --- artifacts ----------------------------------------------------------
  {
    std::ofstream out(prefix + "trace.json");
    trace.write_json(out);
  }
  {
    std::ofstream out(prefix + "metrics.csv");
    metrics.write_csv(out);
  }
  {
    std::ofstream out(prefix + "profile.json");
    prof.write_json(out);
  }
  std::printf("\ntrace events recorded   %zu (dropped %llu)\n",
              trace.event_count(),
              static_cast<unsigned long long>(trace.dropped_events()));
  std::printf("metric samples          %llu x %zu gauges\n",
              static_cast<unsigned long long>(sampler.samples()),
              metrics.gauge_count());
  std::printf("artifacts               %strace.json %smetrics.csv %sprofile.json\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());
  return done ? 0 : 1;
}
