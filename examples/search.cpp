// Adaptive exploration walkthrough (src/explore/search.hpp): Pareto-
// front search with successive halving and seeded neighbor mutation,
// instead of an exhaustive sweep.
//
// The default 108-platform grid seeds the search, but the knob space it
// mutates inside is much larger: five arbiters (including the QoS
// pair), four bus clocks, four data widths, four outstanding depths.
// Cells that complete at the short rung-0 horizon propose one-knob
// neighbors (core::grid_neighbors) while the rung drains — the work-
// stealing pool admits the proposals dynamically — and the search grows
// well past a thousand distinct platforms without ever enumerating the
// cross product. Successive halving then keeps the Pareto front (plus a
// near-front pad) for the full-horizon rung, and dominated survivors
// run under an abort budget.
//
// It writes one artifact:
//
//   <prefix>frontier.txt   print_frontier() of the final report — sim
//                          columns only, no wall clock.
//
// The search is a pure function of (seeds, knob space, config seed), so
// two runs produce a byte-identical frontier file — the CI `search` job
// runs the binary twice and diffs the artifacts. The binary exits
// non-zero if mutation discovered fewer than 1000 distinct platforms.
//
// Build & run:  ./example_search [output-prefix]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::core;
using namespace stlm::time_literals;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "search_";

  // The mutation space: a superset of the default grid's axes. Every
  // seed platform's knob settings appear in these lists, so each seed
  // can step along every axis.
  KnobSpace space;
  space.buses = {BusKind::SharedBus, BusKind::Plb, BusKind::Opb,
                 BusKind::Crossbar};
  space.arbs = {ArbKind::Priority, ArbKind::RoundRobin, ArbKind::Tdma,
                ArbKind::PriorityAging, ArbKind::Bandwidth};
  space.bus_cycles = {5_ns, 10_ns, 20_ns, 40_ns};
  space.data_widths = {2, 4, 8, 16};
  space.max_outstanding = {1, 2, 4, 8};
  space.fast_targets = {false, true};

  expl::SearchConfig cfg;
  cfg.space = space;
  // Limit >= the max neighbor count means full one-knob expansion; the
  // depth comfortably covers the distance from the nearest grid seed to
  // any point of the space (about five hops), so the search reaches the
  // whole ~1040-point valid space without enumerating it up front.
  cfg.mutation_depth = 10;
  cfg.mutation_limit = 12;
  cfg.horizons = {2_ms, 200_ms};
  const unsigned hw = std::thread::hardware_concurrency();
  cfg.n_threads = hw != 0 ? hw : 4;

  expl::Explorer ex;
  expl::SearchDriver driver(cfg);
  const std::vector<workload::WorkloadCase> wls{
      workload::workload_candidates()[0]};
  const auto seeds = expl::grid_candidates();
  const auto report = driver.run(ex, seeds, wls);

  {
    std::ofstream out(prefix + "frontier.txt");
    expl::SearchDriver::print_frontier(out, report);
  }

  std::ostringstream table;
  expl::SearchDriver::print_frontier(table, report);
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nseeds=%zu discovered=%zu (proposed=%zu duplicates=%zu) "
      "pruned=%zu full_horizon_evals=%zu frontier=%zu\n",
      seeds.size(), report.candidates_seen, report.proposed,
      report.duplicates, report.pruned_cells, report.full_horizon_evals,
      report.frontier.size());
  std::printf("artifact: %sfrontier.txt\n", prefix.c_str());

  if (report.candidates_seen < 1000) {
    std::fprintf(stderr,
                 "FAIL: expected >= 1000 distinct platforms, got %zu\n",
                 report.candidates_seen);
    return 1;
  }
  return 0;
}
