// E6 — Serialization framework cost (paper §2, ship_serializable_if).
//
// Roundtrip throughput for the payload shapes PEs actually exchange:
// PODs, flat buffers, strings, and a nested struct. Expected shape:
// linear in payload size, flat-buffer copies near memcpy speed.

#include <benchmark/benchmark.h>

#include <numeric>

#include "ship/ship.hpp"

using namespace stlm::ship;

namespace {

struct NestedFrame final : ship_serializable_if {
  std::uint32_t id = 0;
  std::string tag;
  std::vector<std::int16_t> coeffs;
  std::vector<std::uint8_t> side;

  void serialize(Serializer& s) const override {
    s.put(id);
    s.put_string(tag);
    s.put_vector(coeffs);
    s.put_vector(side);
  }
  void deserialize(Deserializer& d) override {
    id = d.get<std::uint32_t>();
    tag = d.get_string();
    coeffs = d.get_vector<std::int16_t>();
    side = d.get_vector<std::uint8_t>();
  }
};

void BM_PodRoundtrip(benchmark::State& state) {
  PodMsg<std::uint64_t> in(0x0123456789abcdefull), out;
  for (auto _ : state) {
    auto bytes = to_bytes(in);
    from_bytes(out, bytes);
    benchmark::DoNotOptimize(out.value);
  }
  state.SetBytesProcessed(state.iterations() * 8);
}

void BM_VectorRoundtrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMsg<> in(n, 0x5a), out;
  for (auto _ : state) {
    auto bytes = to_bytes(in);
    from_bytes(out, bytes);
    benchmark::DoNotOptimize(out.data.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_StringRoundtrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StringMsg in(std::string(n, 'x')), out;
  for (auto _ : state) {
    auto bytes = to_bytes(in);
    from_bytes(out, bytes);
    benchmark::DoNotOptimize(out.text.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_NestedRoundtrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  NestedFrame in, out;
  in.id = 42;
  in.tag = "I-frame";
  in.coeffs.resize(n);
  std::iota(in.coeffs.begin(), in.coeffs.end(), std::int16_t{0});
  in.side.assign(n / 4 + 1, 9);
  for (auto _ : state) {
    auto bytes = to_bytes(in);
    from_bytes(out, bytes);
    benchmark::DoNotOptimize(out.coeffs.data());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(serialized_size(in)));
}

}  // namespace

BENCHMARK(BM_PodRoundtrip);
BENCHMARK(BM_VectorRoundtrip)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_StringRoundtrip)->Arg(64)->Arg(4096);
BENCHMARK(BM_NestedRoundtrip)->Arg(64)->Arg(1024)->Arg(16384);

BENCHMARK_MAIN();
