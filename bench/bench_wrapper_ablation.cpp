// Ablation — mailbox window size and reply-poll interval (design choices
// called out in DESIGN.md §5 for the SHIP->OCP wrappers).
//
// A request/reply workload runs over wrapper-refined channels while one
// parameter varies:
//   * window size: smaller windows -> more chunks -> more bus
//     transactions per message (sim time up);
//   * poll interval: shorter polling -> lower reply latency but more
//     status-read bus traffic; longer polling -> the opposite.
// Reported: simulated completion time and the wrapper's bus transaction
// count per configuration.

#include <benchmark/benchmark.h>

#include "cam/cam.hpp"
#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr int kRoundTrips = 32;
constexpr std::size_t kPayload = 600;  // > typical window: forces chunking

void run_config(benchmark::State& state, std::uint32_t window,
                Time poll_interval) {
  double sim_us = 0.0, bus_txns = 0.0, polls = 0.0;
  for (auto _ : state) {
    Simulator sim;
    cam::PlbCam bus(sim, "plb", 10_ns,
                    std::make_unique<cam::PriorityArbiter>());
    cam::MailboxLayout layout{0x4000, window};
    cam::ShipSlaveWrapper slave(sim, "ch.slave", layout);
    bus.attach_slave(slave, layout.range(), "ch");
    cam::ShipMasterWrapper master(sim, "ch.master", bus,
                                  bus.add_master("pe"), layout,
                                  poll_interval);
    sim.spawn_thread("m", [&] {
      ship::VectorMsg<> req(kPayload, 0x7e), resp;
      for (int i = 0; i < kRoundTrips; ++i) master.request(req, resp);
    });
    sim.spawn_thread("s", [&] {
      ship::VectorMsg<> msg;
      for (int i = 0; i < kRoundTrips; ++i) {
        slave.recv(msg);
        wait(3_us);  // service time: the master has to poll for the reply
        slave.reply(msg);
      }
    });
    sim.run();
    sim_us = sim.now().to_seconds() * 1e6;
    bus_txns = static_cast<double>(master.bus_transactions());
    polls = static_cast<double>(master.poll_count());
  }
  state.SetItemsProcessed(state.iterations() * kRoundTrips);
  state.counters["sim_us"] = sim_us;
  state.counters["bus_txns"] = bus_txns;
  state.counters["status_polls"] = polls;
}

void BM_WindowSize(benchmark::State& state) {
  run_config(state, static_cast<std::uint32_t>(state.range(0)), 100_ns);
}

void BM_PollInterval(benchmark::State& state) {
  run_config(state, 256, Time::ns(static_cast<std::uint64_t>(state.range(0))));
}

}  // namespace

BENCHMARK(BM_WindowSize)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK(BM_PollInterval)->Arg(20)->Arg(100)->Arg(500)->Arg(2000)->Arg(10000);

BENCHMARK_MAIN();
