// E1 — Simulation speed across abstraction levels (paper §1 claim, Fig. 1
// flow; CCATB numbers per Pasricha et al. [4]).
//
// The same producer->consumer workload (kMessages x kPayload bytes, small
// compute budget) is simulated at four levels:
//   component-assembly (untimed SHIP) > CCATB (annotated SHIP)
//   > CAM (wrappers + PLB model) > pin (OCP pins + accessors + RTL bus).
// Reported: host wall time per workload (the benchmark time itself),
// simulated time, and messages/second of host time. Expected shape:
// each refinement step costs simulation speed; pin level is slowest by a
// wide margin.

#include <benchmark/benchmark.h>

#include "accessor/accessor.hpp"
#include "core/core.hpp"
#include "explore/workload.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"
#include "ocp/ocp.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr std::uint64_t kMessages = 400;
constexpr std::size_t kPayload = 64;
constexpr std::uint64_t kCompute = 10;

void run_mapped_level(benchmark::State& state, core::AbstractionLevel level) {
  double sim_us = 0.0;
  for (auto _ : state) {
    expl::ProducerPe prod("prod", kMessages, kPayload, kCompute);
    expl::SinkPe sink("sink", kMessages);
    core::SystemGraph g;
    g.add_pe(prod);
    g.add_pe(sink);
    // Roles declared: producer side is the master (skips discovery).
    g.connect("stream", prod, "out", sink, "in", 2, ship::Role::Master);
    Simulator sim;
    auto ms = core::Mapper::map(sim, g, core::Platform{}, level);
    const bool done = ms->run_until_done(1_sec);
    if (!done) state.SkipWithError("workload did not complete");
    sim_us = sim.now().to_seconds() * 1e6;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMessages));
  state.counters["sim_us"] = sim_us;
  state.counters["msgs_per_wall_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kMessages),
      benchmark::Counter::kIsRate);
}

void BM_ComponentAssembly(benchmark::State& state) {
  run_mapped_level(state, core::AbstractionLevel::ComponentAssembly);
}
void BM_Ccatb(benchmark::State& state) {
  run_mapped_level(state, core::AbstractionLevel::Ccatb);
}
void BM_Cam(benchmark::State& state) {
  run_mapped_level(state, core::AbstractionLevel::Cam);
}

// Pin level: the equivalent traffic as pin-accurate bursts through the
// accessor stack onto an RTL bus (one 64-byte write per message).
void BM_Pin(benchmark::State& state) {
  double sim_us = 0.0;
  for (auto _ : state) {
    Simulator sim;
    Clock clk(sim, "clk", 10_ns);
    accessor::BusPins bus(sim, "bus");
    accessor::RtlArbiter arb(sim, "arb", bus, clk);
    ocp::OcpPins pe_pins(sim, "pe");
    ocp::OcpPinMaster pe(sim, "pe.m", pe_pins, clk);
    accessor::MasterAccessor acc(sim, "acc", pe_pins, bus, arb, clk);
    ocp::OcpPins mem_pins(sim, "mem");
    ocp::MemorySlave mem("mem", 0x0, 0x10000);
    ocp::OcpPinSlave mem_pe(sim, "mem.s", mem_pins, clk, mem);
    accessor::SlaveAccessor sacc(sim, "sacc", mem_pins, bus, clk,
                                 {0x0, 0x10000});
    bool ok = true;
    sim.spawn_thread("producer", [&] {
      std::vector<std::uint8_t> payload(kPayload, 0xa5);
      for (std::uint64_t i = 0; i < kMessages; ++i) {
        // The compute budget the mapped producer charges.
        wait(10_ns * kCompute);
        const auto addr = (i * kPayload) % 0x8000;
        if (!pe.transport(ocp::Request::write(addr, payload)).good()) {
          ok = false;
        }
      }
      sim.stop();
    });
    sim.run();
    if (!ok) state.SkipWithError("pin-level write failed");
    sim_us = sim.now().to_seconds() * 1e6;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMessages));
  state.counters["sim_us"] = sim_us;
  state.counters["msgs_per_wall_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kMessages),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_ComponentAssembly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ccatb)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cam)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pin)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
