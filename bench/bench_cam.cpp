// E5 — CAM contention & arbitration (paper §3: CAMs are CCATB-accurate).
//
// N masters hammer a PLB-class bus with 64-byte writes under three
// arbitration policies. Reported per configuration: simulated completion
// time, bus utilization, and mean per-master latency. Expected shape:
// completion time grows ~linearly with master count (single shared
// resource); priority starves the low-priority master (max latency grows)
// while round-robin keeps latencies even; TDMA bounds worst-case latency
// at some bandwidth cost.

#include <benchmark/benchmark.h>

#include "cam/cam.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr int kTxnsPerMaster = 200;
constexpr std::size_t kPayload = 64;

std::unique_ptr<cam::Arbiter> make_arbiter(int kind, std::size_t masters) {
  switch (kind) {
    case 0: return std::make_unique<cam::PriorityArbiter>();
    case 1: return std::make_unique<cam::RoundRobinArbiter>();
    default: {
      std::vector<std::size_t> table(masters);
      for (std::size_t i = 0; i < masters; ++i) table[i] = i;
      return std::make_unique<cam::TdmaArbiter>(table, 16);
    }
  }
}

const char* arb_name(int kind) {
  return kind == 0 ? "priority" : kind == 1 ? "round-robin" : "tdma";
}

// Single-master uncontended roundtrips — the kernel fast path's home
// turf. fast=0 takes the grant engine (an event-wheel wakeup plus two
// coroutine switches per transaction); fast=1 resolves the identical
// timing inline from the initiator's coroutine. Simulated time is the
// same in both rows; the wall-clock ratio is pure kernel overhead
// removed by fast targets.
void BM_CamRoundtrip(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  constexpr int kRoundtrips = 4000;
  double sim_us = 0.0;
  double fast_hits = 0.0;

  for (auto _ : state) {
    Simulator sim;
    cam::PlbCam bus(sim, "plb", 10_ns, std::make_unique<cam::PriorityArbiter>(),
                    0, {}, fast);
    ocp::MemorySlave mem("mem", 0, 1 << 20);
    bus.attach_slave(mem, {0, 1 << 20}, "mem");
    const std::size_t idx = bus.add_master("m0");
    sim.spawn_thread("pe", [&] {
      std::vector<std::uint8_t> payload(kPayload, 1);
      Txn txn;
      for (int i = 0; i < kRoundtrips; ++i) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(i % 32) * kPayload;
        txn.begin_write(addr, payload.data(), payload.size());
        bus.master_port(idx).transport(txn);
      }
    });
    sim.run();
    sim_us = sim.now().to_seconds() * 1e6;
    fast_hits = static_cast<double>(bus.fast_path_hits());
  }

  state.SetLabel(fast ? "fast" : "engine");
  state.SetItemsProcessed(state.iterations() * kRoundtrips);
  state.counters["sim_us"] = sim_us;
  state.counters["fast_hits"] = fast_hits;
}

void BM_Contention(benchmark::State& state) {
  const auto masters = static_cast<std::size_t>(state.range(0));
  const int arb_kind = static_cast<int>(state.range(1));
  double sim_us = 0.0, util = 0.0, mean_lat = 0.0, max_master_lat = 0.0;

  for (auto _ : state) {
    Simulator sim;
    cam::PlbCam bus(sim, "plb", 10_ns, make_arbiter(arb_kind, masters));
    ocp::MemorySlave mem("mem", 0, 1 << 20);
    bus.attach_slave(mem, {0, 1 << 20}, "mem");
    for (std::size_t m = 0; m < masters; ++m) {
      const std::size_t idx = bus.add_master("m" + std::to_string(m));
      sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
        std::vector<std::uint8_t> payload(kPayload,
                                          static_cast<std::uint8_t>(m));
        // Hot path: one reusable descriptor per master — zero allocation
        // and zero event-registry churn per transaction.
        Txn txn;
        for (int i = 0; i < kTxnsPerMaster; ++i) {
          const std::uint64_t addr =
              (m << 12) + static_cast<std::uint64_t>(i % 32) * kPayload;
          txn.begin_write(addr, payload.data(), payload.size());
          bus.master_port(idx).transport(txn);
        }
      });
    }
    sim.run();
    sim_us = sim.now().to_seconds() * 1e6;
    util = bus.utilization();
    mean_lat = bus.stats().acc("latency_ns").mean();
    for (std::size_t m = 0; m < masters; ++m) {
      const double lat =
          bus.stats().acc("master_m" + std::to_string(m) + "_latency_ns")
              .mean();
      if (lat > max_master_lat) max_master_lat = lat;
    }
  }

  state.SetLabel(arb_name(arb_kind));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(masters) *
                          kTxnsPerMaster);
  state.counters["sim_us"] = sim_us;
  state.counters["bus_util"] = util;
  state.counters["mean_lat_ns"] = mean_lat;
  state.counters["worst_master_lat_ns"] = max_master_lat;
}

// Split/out-of-order mode: N masters keep a window of `outstanding`
// posted transactions against a PLB whose memory target has real service
// latency. outstanding == 1 runs the atomic engine (the seed timing);
// deeper windows engage the split engine — address/data phases pipeline
// and target service runs off the bus, so simulated completion time
// (sim_us) drops while the transaction count stays fixed. The sim_us
// ratio between /1 and /4 rows is the simulated-throughput gain the
// split mode exists for.
void BM_SplitOutstanding(benchmark::State& state) {
  const auto masters = static_cast<std::size_t>(state.range(0));
  const auto outstanding = static_cast<std::size_t>(state.range(1));
  // Third axis: the kernel fast path. Only the outstanding == 1 rows can
  // engage it (fast is atomic-mode only) and contention pushes most
  // transactions back to the engine — the fast rows measure the
  // eligibility check's overhead under load, not a win.
  const bool fast = state.range(2) != 0;
  const cam::SplitConfig split{outstanding > 1, outstanding};
  double sim_us = 0.0, util = 0.0, mean_lat = 0.0;
  double mean_queue = 0.0, mean_service = 0.0;
  double fast_hits = 0.0;

  for (auto _ : state) {
    Simulator sim;
    cam::PlbCam bus(sim, "plb", 10_ns,
                    std::make_unique<cam::RoundRobinArbiter>(), 0, split,
                    fast);
    ocp::MemorySlave mem("mem", 0, 1 << 20, /*access_time=*/200_ns);
    bus.attach_slave(mem, {0, 1 << 20}, "mem");
    for (std::size_t m = 0; m < masters; ++m) {
      const std::size_t idx = bus.add_master("m" + std::to_string(m));
      sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
        std::vector<std::uint8_t> payload(kPayload,
                                          static_cast<std::uint8_t>(m));
        // Sliding window of `outstanding` reusable descriptors.
        std::vector<Txn> txns(outstanding);
        for (int i = 0; i < kTxnsPerMaster; ++i) {
          Txn& t = txns[static_cast<std::size_t>(i) % outstanding];
          if (static_cast<std::size_t>(i) >= outstanding) t.done.wait(sim);
          const std::uint64_t addr =
              (m << 12) + static_cast<std::uint64_t>(i % 32) * kPayload;
          t.begin_write(addr, payload.data(), payload.size());
          bus.post(idx, t);
        }
        for (auto& t : txns) t.done.wait(sim);
      });
    }
    sim.run();
    sim_us = sim.now().to_seconds() * 1e6;
    util = bus.utilization();
    mean_lat = bus.stats().acc("latency_ns").mean();
    mean_queue = bus.stats().acc("grant_wait_ns").mean();
    mean_service = bus.stats().acc("service_ns").mean();
    fast_hits = static_cast<double>(bus.fast_path_hits());
  }

  state.SetLabel(std::string(outstanding > 1 ? "split" : "atomic") +
                 (fast ? "+fast" : ""));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(masters) *
                          kTxnsPerMaster);
  state.counters["sim_us"] = sim_us;
  state.counters["bus_util"] = util;
  state.counters["mean_lat_ns"] = mean_lat;
  // The queue/service split: a deep posted window inflates end-to-end
  // latency with queueing while the service span stays flat — the
  // number that says the split bus did not get slower, it got deeper.
  state.counters["mean_queue_ns"] = mean_queue;
  state.counters["mean_service_ns"] = mean_service;
  state.counters["fast_hits"] = fast_hits;
}

}  // namespace

BENCHMARK(BM_CamRoundtrip)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Contention)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SplitOutstanding)
    ->ArgsProduct({{1, 2, 4}, {1, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
