// E2 — Fast communication architecture exploration (paper §3).
//
// One benchmark iteration = a complete exploration: the synthetic SoC is
// mapped onto every architecture in the CAM library and simulated to
// completion. The benchmark time is the *exploration cost on the host* —
// the paper's "fast yet timing-accurate exploration" claim. The
// per-architecture simulated results (the designer-facing table) are
// printed once at the end.

#include <benchmark/benchmark.h>

#include <iostream>

#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

expl::Explorer::GraphFactory soc_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto video = std::make_unique<expl::ProducerPe>("video", 16, 512, 50);
    auto audio = std::make_unique<expl::ProducerPe>("audio", 16, 64, 200);
    auto v_sink = std::make_unique<expl::SinkPe>("v_sink", 16);
    auto a_sink = std::make_unique<expl::SinkPe>("a_sink", 16);
    auto client = std::make_unique<expl::RequesterPe>("client", 8, 32, 100);
    auto server = std::make_unique<expl::EchoServerPe>("server", 8, 50);
    g.add_pe(*video);
    g.add_pe(*audio);
    g.add_pe(*v_sink);
    g.add_pe(*a_sink);
    g.add_pe(*client);
    g.add_pe(*server);
    g.connect("video_ch", *video, "out", *v_sink, "in", 2);
    g.connect("audio_ch", *audio, "out", *a_sink, "in", 2);
    g.connect("rpc", *client, "out", *server, "in", 1);
    o.push_back(std::move(video));
    o.push_back(std::move(audio));
    o.push_back(std::move(v_sink));
    o.push_back(std::move(a_sink));
    o.push_back(std::move(client));
    o.push_back(std::move(server));
  };
}

std::vector<expl::ExplorationRow> g_last_rows;

void BM_ExploreCamLibrary(benchmark::State& state) {
  expl::Explorer explorer(soc_factory());
  const auto candidates = expl::default_candidates();
  for (auto _ : state) {
    g_last_rows = explorer.sweep(candidates, 200_ms);
    for (const auto& r : g_last_rows) {
      if (!r.completed) state.SkipWithError("candidate did not complete");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates.size()));
  state.counters["architectures"] = static_cast<double>(candidates.size());
}

// Exploring at CCATB instead (no CAM structure, SHIP annotation only):
// even faster, less detailed — the level above in Figure 1.
void BM_ExploreAtCcatbLevel(benchmark::State& state) {
  const auto factory = soc_factory();
  const auto candidates = expl::default_candidates();
  for (auto _ : state) {
    for (const auto& p : candidates) {
      std::vector<std::unique_ptr<core::ProcessingElement>> owned;
      core::SystemGraph g;
      factory(g, owned);
      g.discover_roles();
      Simulator sim;
      auto ms = core::Mapper::map(sim, g, p, core::AbstractionLevel::Ccatb);
      if (!ms->run_until_done(200_ms)) {
        state.SkipWithError("ccatb candidate did not complete");
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates.size()));
}

}  // namespace

BENCHMARK(BM_ExploreCamLibrary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExploreAtCcatbLevel)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!g_last_rows.empty()) {
    std::cout << "\nExploration table (simulated, CAM level):\n";
    expl::Explorer::print_table(std::cout, g_last_rows);
  }
  return 0;
}
