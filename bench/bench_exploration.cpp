// E2 — Fast communication architecture exploration (paper §3).
//
// One benchmark iteration = a complete exploration: the synthetic SoC is
// mapped onto every architecture in the candidate set and simulated to
// completion. The benchmark time is the *exploration cost on the host* —
// the paper's "fast yet timing-accurate exploration" claim. The
// BM_ExploreGrid/threads:* family runs the 40-platform cross-product grid
// through Explorer::sweep_parallel at several worker counts, so the
// emitted JSON (CI's BENCH_exploration.json) carries the threads=1 vs
// threads=N trajectory across PRs. The per-architecture simulated results
// (the designer-facing table) and the measured parallel speedup are
// printed once at the end.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

expl::Explorer::GraphFactory soc_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto video = std::make_unique<expl::ProducerPe>("video", 16, 512, 50);
    auto audio = std::make_unique<expl::ProducerPe>("audio", 16, 64, 200);
    auto v_sink = std::make_unique<expl::SinkPe>("v_sink", 16);
    auto a_sink = std::make_unique<expl::SinkPe>("a_sink", 16);
    auto client = std::make_unique<expl::RequesterPe>("client", 8, 32, 100);
    auto server = std::make_unique<expl::EchoServerPe>("server", 8, 50);
    g.add_pe(*video);
    g.add_pe(*audio);
    g.add_pe(*v_sink);
    g.add_pe(*a_sink);
    g.add_pe(*client);
    g.add_pe(*server);
    g.connect("video_ch", *video, "out", *v_sink, "in", 2);
    g.connect("audio_ch", *audio, "out", *a_sink, "in", 2);
    g.connect("rpc", *client, "out", *server, "in", 1);
    o.push_back(std::move(video));
    o.push_back(std::move(audio));
    o.push_back(std::move(v_sink));
    o.push_back(std::move(a_sink));
    o.push_back(std::move(client));
    o.push_back(std::move(server));
  };
}

std::vector<expl::ExplorationRow> g_last_rows;
bool g_grid_bench_ran = false;

// Kernel-observability counters from the last sweep's rows (src/obs):
// total coroutine dispatches across the grid and the mean fast-path hit
// rate. Both land in the emitted JSON next to real_time, so the bench
// history records *why* a wall-clock number moved (fewer switches /
// more fast-path completions), not just that it moved. Zero when built
// with -DSTLM_OBS=OFF.
void set_obs_counters(benchmark::State& state,
                      const std::vector<expl::ExplorationRow>& rows) {
  double switches = 0.0;
  double hit_sum = 0.0;
  for (const auto& r : rows) {
    switches += static_cast<double>(r.ctx_switches);
    hit_sum += r.fast_hit_rate;
  }
  state.counters["ctx_switches"] = switches;
  state.counters["fast_hit_rate"] =
      rows.empty() ? 0.0 : hit_sum / static_cast<double>(rows.size());
}

void BM_ExploreCamLibrary(benchmark::State& state) {
  expl::Explorer explorer(soc_factory());
  const auto candidates = expl::default_candidates();
  for (auto _ : state) {
    g_last_rows = explorer.sweep(candidates, 200_ms);
    for (const auto& r : g_last_rows) {
      if (!r.completed) state.SkipWithError("candidate did not complete");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates.size()));
  state.counters["architectures"] = static_cast<double>(candidates.size());
}

// The atomic grid (max_outstanding pinned to 1, fast path off: the
// historical 40-platform cross product) keeps this row family
// comparable across PRs even as the default grid grows new axes.
std::vector<core::Platform> atomic_grid() {
  expl::GridSpec spec;
  spec.max_outstanding = {1};
  spec.fast_targets = {false};
  return expl::grid_candidates(spec);
}

// The same 40 atomic points with the kernel fast path on: identical
// simulated timing (modulo the documented same-delta arbitration
// corner), so the wall-clock ratio BM_ExploreGrid / BM_ExploreFastGrid
// is pure kernel overhead removed by fast targets.
std::vector<core::Platform> fast_grid() {
  expl::GridSpec spec;
  spec.max_outstanding = {1};
  spec.fast_targets = {true};
  return expl::grid_candidates(spec);
}

// The 40-platform cross-product grid sharded over `threads` workers.
// threads=1 is the sequential baseline; the ratio of the two real-time
// entries in BENCH_exploration.json is the parallel-exploration speedup
// CI tracks across PRs.
void BM_ExploreGrid(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  g_grid_bench_ran = true;
  expl::Explorer explorer(soc_factory());
  const auto candidates = atomic_grid();
  std::vector<expl::ExplorationRow> rows;
  for (auto _ : state) {
    rows = explorer.sweep_parallel(candidates, 200_ms, threads);
    for (const auto& r : rows) {
      if (!r.completed) state.SkipWithError("candidate did not complete");
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates.size()));
  state.counters["architectures"] = static_cast<double>(candidates.size());
  state.counters["threads"] = static_cast<double>(threads);
  set_obs_counters(state, rows);
}

// The 40-platform atomic grid with fast targets on, sharded over
// `threads` workers — BM_ExploreGrid's counterpart on the kernel fast
// path (same simulated work, no grant-engine wakeups, no coroutine
// switches on uncontended transactions).
void BM_ExploreFastGrid(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  g_grid_bench_ran = true;
  expl::Explorer explorer(soc_factory());
  const auto candidates = fast_grid();
  std::vector<expl::ExplorationRow> rows;
  for (auto _ : state) {
    rows = explorer.sweep_parallel(candidates, 200_ms, threads);
    for (const auto& r : rows) {
      if (!r.completed) state.SkipWithError("candidate did not complete");
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates.size()));
  state.counters["architectures"] = static_cast<double>(candidates.size());
  state.counters["threads"] = static_cast<double>(threads);
  set_obs_counters(state, rows);
}

// The 68-platform timing grid — the 40 atomic points plus the -split4
// variants of every split-capable bus (fast axis off so the family stays
// comparable across PRs) — sharded over `threads` workers. The delta
// between this family and BM_ExploreGrid is the host cost of simulating
// the split pipelines (more processes, more context switches per
// simulated transaction).
void BM_ExploreSplitGrid(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  g_grid_bench_ran = true;
  expl::Explorer explorer(soc_factory());
  expl::GridSpec spec;
  spec.fast_targets = {false};
  const auto candidates = expl::grid_candidates(spec);
  for (auto _ : state) {
    auto rows = explorer.sweep_parallel(candidates, 200_ms, threads);
    for (const auto& r : rows) {
      if (!r.completed) state.SkipWithError("candidate did not complete");
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates.size()));
  state.counters["architectures"] = static_cast<double>(candidates.size());
  state.counters["threads"] = static_cast<double>(threads);
}

// The two-dimensional grid: 40 atomic platforms x 4 canonical seeded
// workloads (uniform / bursty / reqreply / pipeline) = 160 cells,
// sharded over `threads` workers. This is the workload-axis cost CI
// tracks alongside the single-workload grid.
void BM_ExploreWorkloadGrid(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  expl::Explorer explorer;
  const auto candidates = atomic_grid();
  const auto workloads = expl::workload_candidates();
  for (auto _ : state) {
    auto rows = explorer.sweep_parallel(candidates, workloads, 200_ms,
                                        threads);
    for (const auto& r : rows) {
      if (!r.completed) state.SkipWithError("grid cell did not complete");
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(candidates.size() * workloads.size()));
  state.counters["cells"] =
      static_cast<double>(candidates.size() * workloads.size());
  state.counters["threads"] = static_cast<double>(threads);
}

// Adaptive Pareto search (src/explore/search.hpp) over the default
// 108-platform x 5-workload grid — the 540 cells BM_ExploreWorkloadGrid
// would sweep exhaustively at the full horizon. Rung 0 settles every
// completing cell exactly at a short horizon, successive halving keeps
// the Pareto front plus a pad, and only survivors pay the full horizon;
// the emitted counters record how much full-horizon work the search
// avoided (full_horizon_evals vs cells) next to its wall cost.
void BM_SearchFrontier(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  expl::Explorer explorer;
  const auto seeds = expl::grid_candidates();
  const auto workloads = expl::workload_candidates();
  expl::SearchConfig cfg;
  cfg.n_threads = threads;
  expl::SearchReport report;
  for (auto _ : state) {
    expl::SearchDriver driver(cfg);
    report = driver.run(explorer, seeds, workloads);
    if (report.frontier.empty()) state.SkipWithError("empty frontier");
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(report.candidates_seen));
  state.counters["cells"] = static_cast<double>(report.candidates_seen);
  state.counters["frontier"] = static_cast<double>(report.frontier.size());
  state.counters["full_horizon_evals"] =
      static_cast<double>(report.full_horizon_evals);
  state.counters["threads"] = static_cast<double>(threads);
}

// Exploring at CCATB instead (no CAM structure, SHIP annotation only):
// even faster, less detailed — the level above in Figure 1.
void BM_ExploreAtCcatbLevel(benchmark::State& state) {
  const auto factory = soc_factory();
  const auto candidates = expl::default_candidates();
  for (auto _ : state) {
    for (const auto& p : candidates) {
      std::vector<std::unique_ptr<core::ProcessingElement>> owned;
      core::SystemGraph g;
      factory(g, owned);
      g.discover_roles();
      Simulator sim;
      auto ms = core::Mapper::map(sim, g, p, core::AbstractionLevel::Ccatb);
      if (!ms->run_until_done(200_ms)) {
        state.SkipWithError("ccatb candidate did not complete");
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(candidates.size()));
}

// One-shot wall-clock comparison printed after the benchmark run (only
// when a grid benchmark was actually selected — a narrow
// --benchmark_filter must not pay for four extra full-grid sweeps): the
// human-readable speedup table for README/EXPERIMENTS updates.
void report_parallel_speedup() {
  if (!g_grid_bench_ran) return;
  expl::Explorer explorer(soc_factory());
  const auto candidates = expl::grid_candidates();
  const unsigned hw = std::thread::hardware_concurrency();

  auto timed_sweep = [&](unsigned threads) {
    const auto t0 = std::chrono::steady_clock::now();
    auto rows = explorer.sweep_parallel(candidates, 200_ms, threads);
    const auto t1 = std::chrono::steady_clock::now();
    g_last_rows = std::move(rows);
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };

  // stderr keeps stdout clean for --benchmark_format=json artifacts.
  std::fprintf(stderr,
               "\nParallel sweep speedup over the %zu-platform grid (host "
               "has %u hardware threads):\n",
               candidates.size(), hw);
  std::fprintf(stderr, "  %8s %12s %9s\n", "threads", "wall_ms", "speedup");
  const double base = timed_sweep(1);
  std::fprintf(stderr, "  %8u %12.1f %9s\n", 1u, base, "1.00x");
  for (unsigned t : {2u, 4u, 8u}) {
    if (t > candidates.size()) break;
    const double ms = timed_sweep(t);
    std::fprintf(stderr, "  %8u %12.1f %8.2fx\n", t, ms, base / ms);
  }
}

}  // namespace

BENCHMARK(BM_ExploreCamLibrary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExploreGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ExploreFastGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ExploreSplitGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ExploreWorkloadGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_SearchFrontier)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ExploreAtCcatbLevel)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_parallel_speedup();
  if (!g_last_rows.empty()) {
    std::cerr << "\nExploration table (simulated, CAM level):\n";
    expl::Explorer::print_table(std::cerr, g_last_rows);
  }
  return 0;
}
