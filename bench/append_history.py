#!/usr/bin/env python3
"""Append a benchmark-history entry (see bench/history/README.md).

Usage:
    python3 bench/append_history.py BUILD_DIR SHORT_LABEL

Copies BUILD_DIR/BENCH_cam.json and BUILD_DIR/BENCH_exploration.json
into bench/history/NNNN-SHORT_LABEL/ where NNNN is one past the highest
existing entry number. Refuses to overwrite and validates that each file
is Google-Benchmark JSON (has a "benchmarks" list) before copying.

Also distils a summary.json into the entry: real_time plus the kernel
observability counters (ctx_switches, fast_hit_rate) for the grid
benchmarks, so the "did the wall-clock move because scheduling changed"
question is answerable from the history alone, without re-parsing the
full benchmark documents.
"""

import json
import re
import shutil
import sys
from pathlib import Path

SUITES = ("BENCH_cam.json", "BENCH_exploration.json")

# Benchmarks whose per-PR trajectory the summary tracks; substring match
# against the emitted row names (which carry /arg/real_time suffixes).
SUMMARY_BENCHES = ("BM_ExploreGrid", "BM_ExploreFastGrid")
SUMMARY_COUNTERS = ("ctx_switches", "fast_hit_rate")


def summarize(exploration_doc: dict) -> dict:
    """Digest of the grid rows: real_time + observability counters."""
    out = {}
    for row in exploration_doc.get("benchmarks", []):
        name = row.get("name", "")
        if not any(name.startswith(b + "/") for b in SUMMARY_BENCHES):
            continue
        entry = {"real_time": row.get("real_time"),
                 "time_unit": row.get("time_unit")}
        for counter in SUMMARY_COUNTERS:
            if counter in row:
                entry[counter] = row[counter]
        out[name] = entry
    return out


def fail(msg: str) -> "None":
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    build_dir = Path(sys.argv[1])
    label = sys.argv[2]
    if not re.fullmatch(r"[a-z0-9][a-z0-9-]*", label):
        fail(f"label {label!r} must be lowercase-kebab (it becomes a "
             "directory name)")

    sources = []
    summary = {}
    for name in SUITES:
        src = build_dir / name
        if not src.is_file():
            fail(f"{src} not found — run the benchmark with "
                 f"--benchmark_out={name} --benchmark_out_format=json first")
        try:
            with open(src) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{src} is not readable JSON: {e}")
        if not isinstance(doc.get("benchmarks"), list) or not doc["benchmarks"]:
            fail(f"{src} has no 'benchmarks' rows — not benchmark JSON?")
        if name == "BENCH_exploration.json":
            summary = summarize(doc)
        sources.append(src)

    history = Path(__file__).resolve().parent / "history"
    history.mkdir(exist_ok=True)
    highest = 0
    for entry in history.iterdir():
        m = re.match(r"(\d{4})-", entry.name)
        if entry.is_dir() and m:
            highest = max(highest, int(m.group(1)))
    dest = history / f"{highest + 1:04d}-{label}"
    if dest.exists():
        fail(f"{dest} already exists")
    dest.mkdir()
    for src in sources:
        shutil.copy(src, dest / src.name)
        print(f"  {src} -> {dest / src.name}")
    if summary:
        with open(dest / "summary.json", "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"  grid digest -> {dest / 'summary.json'}")
    print(f"created {dest.relative_to(history.parent.parent)} — commit it "
          "together with the refreshed bench/baselines/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
