#!/usr/bin/env python3
"""Compare a Google Benchmark JSON result against a checked-in baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 0.20] [--strict]

Matches benchmarks by name and compares wall-clock (`real_time`,
normalized to nanoseconds via each entry's `time_unit`). Prints one row
per benchmark and emits a GitHub Actions `::warning::` annotation for
every benchmark whose real time regressed by more than the threshold
(default 20%).

The baselines under bench/baselines/ are advisory anchors for the perf
trajectory, not hard gates: absolute times shift with the runner
hardware, so regressions warn instead of failing. Pass --strict to turn
warnings into a non-zero exit (useful on dedicated perf runners).
Refresh a baseline by copying the build's BENCH_*.json over it when a
deliberate change moves the numbers.

Input validation is NOT advisory: a missing file, unparseable JSON, or a
file without any benchmark entries exits with status 2 (for either
argument). A silently-empty comparison would otherwise report "no
regressions" forever — e.g. after a typo'd baseline path or a truncated
artifact upload.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


class BenchFileError(Exception):
    """A benchmark JSON file that cannot anchor a comparison."""


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise BenchFileError(f"{path}: cannot read ({e.strerror})") from e
    except json.JSONDecodeError as e:
        raise BenchFileError(f"{path}: malformed JSON ({e})") from e
    if not isinstance(data, dict):
        raise BenchFileError(f"{path}: top level is not a JSON object")
    benchmarks = data.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise BenchFileError(f"{path}: 'benchmarks' is not an array")
    rows = {}
    for b in benchmarks:
        if not isinstance(b, dict):
            raise BenchFileError(f"{path}: non-object benchmark entry ({b!r})")
        if b.get("run_type") == "aggregate":
            continue
        try:
            scale = _UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
            rows[b["name"]] = b["real_time"] * scale
        except (KeyError, TypeError) as e:
            raise BenchFileError(
                f"{path}: benchmark entry missing name/real_time ({e})"
            ) from e
    if not rows:
        raise BenchFileError(f"{path}: no benchmark entries")
    return rows


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.2f} {unit}"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative real-time regression that triggers a "
                         "warning (default: 0.20 = +20%%)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when any benchmark regresses; "
                         "independent of validation: a missing, malformed "
                         "or empty baseline/current file always exits 2")
    args = ap.parse_args()

    try:
        base = load(args.baseline)
        cur = load(args.current)
    except BenchFileError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'ratio':>8s}")
    print("-" * 86)
    for name in sorted(cur):
        if name not in base:
            print(f"{name:50s} {'-':>12s} {fmt_ns(cur[name]):>12s} {'new':>8s}")
            continue
        ratio = cur[name] / base[name] if base[name] else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:50s} {fmt_ns(base[name]):>12s} {fmt_ns(cur[name]):>12s} "
              f"{ratio:7.2f}x{flag}")
    for name in sorted(set(base) - set(cur)):
        print(f"{name:50s} {fmt_ns(base[name]):>12s} {'-':>12s} {'gone':>8s}")

    for name, ratio in regressions:
        print(f"::warning title=bench regression::{name} real_time is "
              f"{ratio:.2f}x the checked-in baseline "
              f"(threshold {1.0 + args.threshold:.2f}x)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"+{args.threshold:.0%}.")
        if args.strict:
            return 1
    else:
        print("\nNo regressions beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
