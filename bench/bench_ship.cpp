// E3 — SHIP primitive overhead (paper §2: SHIP is "lightweight").
//
// Cost of the four blocking interface method calls through an untimed
// channel (pure protocol + serialization overhead, no modeled bus time),
// swept over payload size. Expected shape: near-constant base cost,
// linear growth once the payload dominates (the serialization memcpy).

#include <benchmark/benchmark.h>

#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr int kMessagesPerRun = 256;

void BM_SendRecv(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    ship::ShipChannel ch(sim, "ch", 2);
    sim.spawn_thread("p", [&] {
      ship::VectorMsg<> m(payload, 0x5a);
      for (int i = 0; i < kMessagesPerRun; ++i) ch.a().send(m);
    });
    sim.spawn_thread("c", [&] {
      ship::VectorMsg<> m;
      for (int i = 0; i < kMessagesPerRun; ++i) ch.b().recv(m);
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * kMessagesPerRun);
  state.SetBytesProcessed(state.iterations() * kMessagesPerRun *
                          static_cast<std::int64_t>(payload));
}

void BM_RequestReply(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    ship::ShipChannel ch(sim, "ch");
    sim.spawn_thread("m", [&] {
      ship::VectorMsg<> req(payload, 0x11), resp;
      for (int i = 0; i < kMessagesPerRun; ++i) ch.a().request(req, resp);
    });
    sim.spawn_thread("s", [&] {
      ship::VectorMsg<> m;
      for (int i = 0; i < kMessagesPerRun; ++i) {
        ch.b().recv(m);
        ch.b().reply(m);
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * kMessagesPerRun);
  state.SetBytesProcessed(state.iterations() * kMessagesPerRun * 2 *
                          static_cast<std::int64_t>(payload));
}

// Baseline: the cost of a bare coroutine handoff through the kernel (one
// event wait + notify round trip), to show SHIP's overhead on top.
void BM_RawHandoffBaseline(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Event ping(sim, "ping"), pong(sim, "pong");
    sim.spawn_thread("a", [&] {
      for (int i = 0; i < kMessagesPerRun; ++i) {
        ping.notify_delta();
        wait(pong);
      }
    });
    sim.spawn_thread("b", [&] {
      for (int i = 0; i < kMessagesPerRun; ++i) {
        wait(ping);
        pong.notify_delta();
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * kMessagesPerRun);
}

}  // namespace

BENCHMARK(BM_SendRecv)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536);
BENCHMARK(BM_RequestReply)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_RawHandoffBaseline);

BENCHMARK_MAIN();
