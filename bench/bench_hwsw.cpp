// E4 — Transaction-based HW/SW communication (paper §4).
//
// A SW task (RTOS on the CPU model) does SHIP request/reply round trips
// to a HW PE through the generic HW/SW interface, swept over payload
// size. Reported: simulated round-trip latency and simulated goodput.
// Expected shape: latency flat for small payloads (driver + IRQ + ISR
// overhead dominates), then linear once chunked mailbox copies dominate;
// goodput saturates toward the bus limit.

#include <benchmark/benchmark.h>

#include "cam/cam.hpp"
#include "cpu/cpu.hpp"
#include "cpu/irq.hpp"
#include "hwsw/hwsw.hpp"
#include "kernel/kernel.hpp"
#include "rtos/rtos.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr int kRoundTrips = 24;

void BM_HwSwRoundTrip(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  double rt_latency_us = 0.0, goodput_mbps = 0.0;
  double irqs = 0.0, cpu_txns = 0.0;

  for (auto _ : state) {
    Simulator sim;
    Clock clk(sim, "clk", 10_ns);
    cam::PlbCam bus(sim, "plb", 10_ns,
                    std::make_unique<cam::PriorityArbiter>());
    cam::MailboxLayout layout{0x8000, 256};
    hwsw::HwAdapter adapter(sim, "hwacc", layout, 10_ns);
    bus.attach_slave(adapter, layout.range(), "hwacc");
    cpu::CpuModel cpu(sim, "cpu", clk);
    cpu.bus().bind(bus.master_port(bus.add_master("cpu")));
    cpu::IrqController ic(sim, "ic");
    ic.attach(adapter.irq(), 0);
    rtos::Rtos os(sim, "os", cpu, {1_us, 20});
    hwsw::ShipDriver drv("drv", os, cpu, layout);
    os.attach_isr(ic, [&](int line) {
      if (line == 0) drv.on_irq();
    });

    Time total_rt = Time::zero();
    os.create_task("app", 1, [&] {
      ship::VectorMsg<> req(payload, 0x22), resp;
      for (int i = 0; i < kRoundTrips; ++i) {
        const Time s = sim.now();
        drv.request(req, resp);
        total_rt += sim.now() - s;
      }
    });
    sim.spawn_thread("hw_pe", [&] {
      ship::VectorMsg<> msg;
      for (int i = 0; i < kRoundTrips; ++i) {
        adapter.recv(msg);
        adapter.reply(msg);
      }
    });
    sim.spawn_thread("watch", [&] {
      while (!os.all_tasks_terminated()) wait(10_us);
      sim.stop();
    });
    sim.run();

    rt_latency_us = total_rt.to_seconds() * 1e6 / kRoundTrips;
    const double sim_s = sim.now().to_seconds();
    goodput_mbps = sim_s > 0
                       ? 2.0 * kRoundTrips * static_cast<double>(payload) /
                             sim_s / 1e6
                       : 0.0;
    irqs = static_cast<double>(adapter.irq_count());
    cpu_txns = static_cast<double>(cpu.bus_transactions());
  }

  state.SetItemsProcessed(state.iterations() * kRoundTrips);
  state.counters["rt_latency_us_sim"] = rt_latency_us;
  state.counters["goodput_MBps_sim"] = goodput_mbps;
  state.counters["irqs"] = irqs;
  state.counters["cpu_bus_txns"] = cpu_txns;
}

}  // namespace

BENCHMARK(BM_HwSwRoundTrip)
    ->Arg(4)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
