// E7 — eSW synthesis: the same PE source in HW and SW bindings (paper §4
// + Herrera et al. substitution).
//
// A producer->consumer system is mapped at CAM level with the producer in
// three configurations: HW/HW (wrappers), SW/HW (RTOS task + driver +
// HW/SW interface), SW/SW (RTOS-local channels). Reported: simulated
// completion time (SW bindings pay driver/IRQ/scheduler overhead) and
// host simulation cost. A context-switch-cost sweep quantifies the RTOS
// knob. Functional results are identical by construction — asserted in
// the loop.

#include <benchmark/benchmark.h>

#include "core/core.hpp"
#include "explore/workload.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

constexpr std::uint64_t kMessages = 48;
constexpr std::size_t kPayload = 64;

void run_partitioned(benchmark::State& state, core::Partition prod_part,
                     core::Partition sink_part,
                     std::uint64_t ctx_switch_cycles = 20) {
  double sim_us = 0.0, switches = 0.0;
  for (auto _ : state) {
    expl::ProducerPe prod("prod", kMessages, kPayload, 10);
    expl::SinkPe sink("sink", kMessages);
    core::SystemGraph g;
    g.add_pe(prod, prod_part);
    g.add_pe(sink, sink_part);
    g.connect("stream", prod, "out", sink, "in", 2, ship::Role::Master);
    core::Platform p;
    p.rtos_cfg.context_switch_cycles = ctx_switch_cycles;
    Simulator sim;
    auto ms = core::Mapper::map(sim, g, p, core::AbstractionLevel::Cam);
    if (!ms->run_until_done(1_sec)) {
      state.SkipWithError("workload did not complete");
    }
    if (sink.received() != kMessages) {
      state.SkipWithError("functional mismatch across binding");
    }
    sim_us = sim.now().to_seconds() * 1e6;
    switches = ms->os() ? static_cast<double>(ms->os()->context_switches())
                        : 0.0;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kMessages));
  state.counters["sim_us"] = sim_us;
  state.counters["ctx_switches"] = switches;
}

void BM_HwHw(benchmark::State& state) {
  run_partitioned(state, core::Partition::Hardware,
                  core::Partition::Hardware);
}
void BM_SwHw(benchmark::State& state) {
  run_partitioned(state, core::Partition::Software,
                  core::Partition::Hardware);
}
void BM_SwSw(benchmark::State& state) {
  run_partitioned(state, core::Partition::Software,
                  core::Partition::Software);
}

// RTOS overhead ablation: SW/HW mapping with varying context switch cost.
void BM_SwHwCtxSwitchSweep(benchmark::State& state) {
  run_partitioned(state, core::Partition::Software,
                  core::Partition::Hardware,
                  static_cast<std::uint64_t>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_HwHw)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwHw)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwSw)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwHwCtxSwitchSweep)
    ->Arg(0)
    ->Arg(20)
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
