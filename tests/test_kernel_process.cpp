// Tests for thread/method processes, modules, ports, and elaboration.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

TEST(Process, ThreadsInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> trace;
  sim.spawn_thread("a", [&] {
    trace.push_back("a0");
    wait(10_ns);
    trace.push_back("a1");
  });
  sim.spawn_thread("b", [&] {
    trace.push_back("b0");
    wait(5_ns);
    trace.push_back("b1");
  });
  sim.run();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], "a0");
  EXPECT_EQ(trace[1], "b0");
  EXPECT_EQ(trace[2], "b1");  // 5 ns before 10 ns
  EXPECT_EQ(trace[3], "a1");
}

TEST(Process, DeepCallStackCanWait) {
  // The reason for ucontext processes: block deep inside nested calls.
  Simulator sim;
  Time woke_at;
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      wait(25_ns);
      woke_at = sim.now();
      return;
    }
    recurse(depth - 1);
  };
  sim.spawn_thread("deep", [&] { recurse(100); });
  sim.run();
  EXPECT_EQ(woke_at, 25_ns);
}

TEST(Process, TerminatedEventFires) {
  Simulator sim;
  bool observed = false;
  Process& p = sim.spawn_thread("worker", [&] { wait(10_ns); });
  sim.spawn_thread("watcher", [&] {
    wait(p.terminated_event());
    observed = true;
    EXPECT_TRUE(p.terminated());
  });
  sim.run();
  EXPECT_TRUE(observed);
}

TEST(Process, MethodRunsOnEachTrigger) {
  Simulator sim;
  Event ev(sim, "ev");
  int runs = 0;
  sim.spawn_method("m", [&] { ++runs; }, {&ev}, /*run_at_start=*/false);
  sim.spawn_thread("driver", [&] {
    for (int i = 0; i < 4; ++i) {
      wait(5_ns);
      ev.notify();
    }
  });
  sim.run();
  EXPECT_EQ(runs, 4);
}

TEST(Process, MethodRunAtStart) {
  Simulator sim;
  Event ev(sim, "ev");
  int runs = 0;
  sim.spawn_method("m", [&] { ++runs; }, {&ev}, /*run_at_start=*/true);
  sim.run();
  EXPECT_EQ(runs, 1);
}

TEST(Process, SpawnDuringSimulation) {
  Simulator sim;
  int child_ran = 0;
  sim.spawn_thread("parent", [&] {
    wait(10_ns);
    sim.spawn_thread("child", [&] {
      child_ran = 1;
      wait(5_ns);
      child_ran = 2;
    });
    wait(20_ns);
  });
  sim.run();
  EXPECT_EQ(child_ran, 2);
}

TEST(Module, FullNamesAreHierarchical) {
  Simulator sim;
  Module top(sim, "top");
  Module sub(sim, "sub", &top);
  Module leaf(sim, "leaf", &sub);
  EXPECT_EQ(leaf.full_name(), "top.sub.leaf");
  EXPECT_EQ(top.children().size(), 1u);
  EXPECT_EQ(sub.children().size(), 1u);
}

namespace {
struct DummyIf {
  virtual ~DummyIf() = default;
  virtual int value() const = 0;
};
struct DummyChannel : DummyIf {
  int value() const override { return 42; }
};
}  // namespace

TEST(Module, UnboundPortFailsElaboration) {
  Simulator sim;
  Module top(sim, "top");
  Port<DummyIf> port(top, "p");
  EXPECT_THROW(sim.run(), ElaborationError);
}

TEST(Module, OptionalPortMayStayUnbound) {
  Simulator sim;
  Module top(sim, "top");
  OptionalPort<DummyIf> port(top, "p");
  EXPECT_NO_THROW(sim.run());
}

TEST(Module, BoundPortForwardsCalls) {
  Simulator sim;
  Module top(sim, "top");
  Port<DummyIf> port(top, "p");
  DummyChannel ch;
  port.bind(ch);
  EXPECT_EQ(port->value(), 42);
  EXPECT_NO_THROW(sim.run());
}

TEST(Module, DoubleBindThrows) {
  Simulator sim;
  Module top(sim, "top");
  Port<DummyIf> port(top, "p");
  DummyChannel ch1, ch2;
  port.bind(ch1);
  EXPECT_THROW(port.bind(ch2), SimulationError);
}

TEST(Module, SpawnedThreadNamePrefixed) {
  Simulator sim;
  Module top(sim, "top");
  Process& p = top.spawn_thread("runner", [] {});
  EXPECT_EQ(p.name(), "top.runner");
}

TEST(Clock, GeneratesEdgesWithPeriod) {
  Simulator sim;
  Clock clk(sim, "clk", 10_ns);
  std::vector<Time> posedges;
  sim.spawn_thread("sampler", [&] {
    for (int i = 0; i < 3; ++i) {
      wait(clk.posedge_event());
      posedges.push_back(sim.now());
    }
    sim.stop();
  });
  sim.run();
  ASSERT_EQ(posedges.size(), 3u);
  EXPECT_EQ(posedges[0], 0_ns);
  EXPECT_EQ(posedges[1], 10_ns);
  EXPECT_EQ(posedges[2], 20_ns);
}

TEST(Clock, DutyCycleControlsHighTime) {
  Simulator sim;
  Clock clk(sim, "clk", 10_ns, 0.3);
  Time negedge_at;
  sim.spawn_thread("sampler", [&] {
    wait(clk.negedge_event());
    negedge_at = sim.now();
    sim.stop();
  });
  sim.run();
  EXPECT_EQ(negedge_at, 3_ns);
}

TEST(Clock, StartDelayHonored) {
  Simulator sim;
  Clock clk(sim, "clk", 10_ns, 0.5, 7_ns);
  Time first_pos;
  sim.spawn_thread("sampler", [&] {
    wait(clk.posedge_event());
    first_pos = sim.now();
    sim.stop();
  });
  sim.run();
  EXPECT_EQ(first_pos, 7_ns);
}

TEST(Clock, InvalidParametersThrow) {
  Simulator sim;
  EXPECT_THROW(Clock(sim, "c0", 0_ns), SimulationError);
  EXPECT_THROW(Clock(sim, "c1", 10_ns, 0.0), SimulationError);
  EXPECT_THROW(Clock(sim, "c2", 10_ns, 1.0), SimulationError);
}

// Property-style sweep: N producers each doing K timed increments always
// sum to N*K regardless of interleaving.
class ProcessSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProcessSweep, ManyProcessesAllComplete) {
  const int n = GetParam();
  Simulator sim;
  long total = 0;
  for (int i = 0; i < n; ++i) {
    sim.spawn_thread("p" + std::to_string(i), [&, i] {
      for (int k = 0; k < 10; ++k) {
        wait(Time::ns(static_cast<std::uint64_t>(i % 7 + 1)));
        ++total;
      }
    });
  }
  sim.run();
  EXPECT_EQ(total, 10L * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProcessSweep,
                         ::testing::Values(1, 2, 8, 32, 128));

// --- teardown unwind (Simulator::kill_process) ---------------------------

namespace {
// Flags its destruction — the observable that a parked coroutine's stack
// was actually unwound rather than just reclaimed.
struct UnwindProbe {
  explicit UnwindProbe(bool& flag) : flag_(flag) {}
  ~UnwindProbe() { flag_ = true; }
  bool& flag_;
};
}  // namespace

// A process parked forever mid-wait still has live locals on its stack.
// In sanitized builds (STLM_KILL_UNWIND, see kernel/context.hpp)
// destroying the simulator must unwind that stack so their destructors
// run — this is what lets sanitized CI run with LeakSanitizer on.
TEST(ProcessKill, TeardownUnwindsParkedStacks) {
  if (!kill_unwind_compiled_in())
    GTEST_SKIP() << "teardown unwind not compiled in (release build)";
  bool unwound = false;
  {
    Simulator sim;
    sim.spawn_thread("parked", [&] {
      UnwindProbe probe(unwound);
      auto heap = std::make_unique<std::vector<int>>(1024, 7);
      Event never(sim, "never");
      wait(never);
      ADD_FAILURE() << "woke a process that nothing notifies";
    });
    sim.spawn_thread("done", [] { wait(10_ns); });
    sim.run();
    EXPECT_FALSE(unwound) << "unwind must happen at teardown, not at run end";
  }
  EXPECT_TRUE(unwound);
}

// Module-owned processes unwind when the module dies — while the
// module's own members are still alive, so destructors on the stack may
// touch them.
TEST(ProcessKill, ModuleTeardownUnwindsItsProcesses) {
  if (!kill_unwind_compiled_in())
    GTEST_SKIP() << "teardown unwind not compiled in (release build)";
  Simulator sim;
  bool unwound = false;
  {
    Module m(sim, "m");
    m.spawn_thread("loop", [&] {
      UnwindProbe probe(unwound);
      for (;;) wait(1_ms);
    });
    sim.run_for(5_ms);
    EXPECT_FALSE(unwound);
  }
  EXPECT_TRUE(unwound);
  sim.run_for(1_ms);  // the survivor-free simulator still runs cleanly
}

// ProcessKilled must not be reported as a process error, and a process
// that already terminated is not re-entered at teardown.
TEST(ProcessKill, KillIsNotAnError) {
  bool ran = false;
  {
    Simulator sim;
    sim.spawn_thread("finishes", [&] { ran = true; });
    sim.spawn_thread("parked", [&] {
      Event never(sim, "never");
      wait(never);
    });
    sim.run();  // would rethrow a process error
  }
  EXPECT_TRUE(ran);
}

// A never-started process (spawned after the last run) has no frames to
// unwind; teardown must not fabricate a start for it.
TEST(ProcessKill, NeverStartedProcessIsNotEntered) {
  bool entered = false;
  {
    Simulator sim;
    sim.spawn_thread("first", [] {});
    sim.run();
    sim.spawn_thread("late", [&] { entered = true; });
  }
  EXPECT_FALSE(entered);
}
