// Tests for the workload engine: seeded synthetic generators (determinism
// across sweeps and threads), declarative specs, and trace
// capture/replay round trips.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "workload/workload.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

workload::WorkloadSpec small_uniform(std::uint64_t seed) {
  workload::WorkloadSpec s;
  s.name = "uniform-test";
  s.shape = workload::TrafficShape::Uniform;
  s.seed = seed;
  s.streams = 2;
  s.messages = 6;
  s.payload = {16, 96};
  s.gap = {10, 80};
  return s;
}

// Run one spec on one platform and return the row.
expl::ExplorationRow run_spec(const workload::WorkloadSpec& spec,
                              const core::Platform& p) {
  expl::Explorer ex;
  return ex.evaluate(p, workload::make_case(spec), 50_ms);
}

}  // namespace

TEST(Rng, SplitMixIsDeterministicAndWellSpread) {
  workload::SplitMix64 a(42), b(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = a.next();
    EXPECT_EQ(v, b.next());
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in a short stream
  // Known first output for seed 0 (reference vector from the splitmix64
  // paper implementation).
  workload::SplitMix64 z(0);
  EXPECT_EQ(z.next(), 0xe220a8397b1dcdafull);
}

TEST(Rng, UniformStaysInRangeAndDegenerates) {
  workload::SplitMix64 g(7);
  for (int i = 0; i < 200; ++i) {
    const auto v = g.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(g.uniform(5, 5), 5u);
  EXPECT_EQ(g.uniform(9, 3), 9u);  // inverted range clamps to lo
}

TEST(Workload, EachShapeCompletesOnDefaultPlatform) {
  for (auto shape :
       {workload::TrafficShape::Uniform, workload::TrafficShape::Bursty,
        workload::TrafficShape::RequestReply, workload::TrafficShape::Pipeline,
        workload::TrafficShape::Banked}) {
    workload::WorkloadSpec s = small_uniform(11);
    s.shape = shape;
    s.name = workload::traffic_shape_name(shape);
    const auto row = run_spec(s, core::Platform{});
    EXPECT_TRUE(row.completed) << s.name;
    EXPECT_GT(row.transactions, 0u) << s.name;
    EXPECT_GT(row.bytes, 0u) << s.name;
    EXPECT_EQ(row.workload, s.name);
  }
}

TEST(Workload, SameSeedReproducesRowBitExactly) {
  const auto a = run_spec(small_uniform(123), core::Platform{});
  const auto b = run_spec(small_uniform(123), core::Platform{});
  EXPECT_EQ(a.sim_time_us, b.sim_time_us);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.mean_latency_ns, b.mean_latency_ns);
  EXPECT_EQ(a.bus_utilization, b.bus_utilization);
}

TEST(Workload, DifferentSeedsProduceDifferentTraffic) {
  const auto a = run_spec(small_uniform(1), core::Platform{});
  const auto b = run_spec(small_uniform(2), core::Platform{});
  // Payload sizes are drawn per message from [16,96]: byte totals
  // colliding across seeds is astronomically unlikely.
  EXPECT_NE(a.bytes, b.bytes);
}

TEST(Workload, CandidatesAreFiveNamedCases) {
  const auto cases = expl::workload_candidates();
  ASSERT_EQ(cases.size(), 5u);
  std::set<std::string> names;
  for (const auto& c : cases) names.insert(c.name);
  EXPECT_TRUE(names.count("uniform"));
  EXPECT_TRUE(names.count("bursty"));
  EXPECT_TRUE(names.count("reqreply"));
  EXPECT_TRUE(names.count("pipeline"));
  EXPECT_TRUE(names.count("banked"));
}

// ------------------------------------------- banked-memory workload ----

TEST(Workload, BankedShapeCompletesOnAtomicAndSplitPlatforms) {
  workload::WorkloadSpec s;
  s.name = "banked-test";
  s.shape = workload::TrafficShape::Banked;
  s.seed = 77;
  s.streams = 2;
  s.messages = 10;
  s.payload = {32, 96};
  s.gap = {0, 20};

  core::Platform atomic;  // PLB/priority
  atomic.name = "plb-atomic";
  const auto r_atomic = run_spec(s, atomic);
  EXPECT_TRUE(r_atomic.completed);
  EXPECT_GT(r_atomic.transactions, 0u);

  core::Platform split = atomic;
  split.name = "plb-split4";
  split.split_txns = true;
  split.max_outstanding = 4;
  const auto r_split = run_spec(s, split);
  EXPECT_TRUE(r_split.completed);
  // Conservation: the split platform moves the identical traffic.
  EXPECT_EQ(r_split.transactions, r_atomic.transactions);
  EXPECT_EQ(r_split.bytes, r_atomic.bytes);
  // The posted windows + off-bus banked service must pipeline: the split
  // platform finishes the same access stream strictly sooner.
  EXPECT_LT(r_split.sim_time_us, r_atomic.sim_time_us);
}

TEST(Workload, BankedShapeIsSeedDeterministic) {
  workload::WorkloadSpec s;
  s.shape = workload::TrafficShape::Banked;
  s.name = "banked-det";
  s.seed = 123;
  s.streams = 2;
  s.messages = 8;
  const auto a = run_spec(s, core::Platform{});
  const auto b = run_spec(s, core::Platform{});
  EXPECT_EQ(a.sim_time_us, b.sim_time_us);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.mean_queue_ns, b.mean_queue_ns);
}

// A memory client PE is CAM-only plumbing; at the abstract levels
// mem_bus() is null and the PE models accesses as compute, so the same
// graph still elaborates and completes (role discovery, CCATB runs).
TEST(Workload, BankedGraphRunsAtAbstractLevels) {
  workload::WorkloadSpec s;
  s.shape = workload::TrafficShape::Banked;
  s.name = "banked-abstract";
  s.seed = 9;
  s.streams = 2;
  s.messages = 6;
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  s.factory()(graph, owned);
  graph.discover_roles();
  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, core::Platform{},
                              core::AbstractionLevel::Ccatb);
  EXPECT_TRUE(ms->run_until_done(100_ms));
  EXPECT_TRUE(ms->memories().empty());  // no interconnect, no targets
}

namespace {

// A small mixed workload (streams + request/reply) used as the capture
// source for replay tests.
expl::Explorer::GraphFactory capture_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto prod = std::make_unique<expl::ProducerPe>("prod", 8, 96, 40);
    auto sink = std::make_unique<expl::SinkPe>("sink", 8);
    auto client = std::make_unique<expl::RequesterPe>("client", 5, 32, 80);
    auto server = std::make_unique<expl::EchoServerPe>("server", 5, 30);
    g.add_pe(*prod);
    g.add_pe(*sink);
    g.add_pe(*client);
    g.add_pe(*server);
    g.connect("stream", *prod, "out", *sink, "in", 2);
    g.connect("rpc", *client, "out", *server, "in", 1);
    o.push_back(std::move(prod));
    o.push_back(std::move(sink));
    o.push_back(std::move(client));
    o.push_back(std::move(server));
  };
}

// Run `factory` at the given level on `p`, return the mapped system's
// logger contents via dump_csv (plus the summary).
struct CaptureResult {
  std::string csv;
  trace::TxnLogger::Summary summary;
};

CaptureResult capture_run(const expl::Explorer::GraphFactory& factory,
                          const core::Platform& p,
                          core::AbstractionLevel level) {
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  factory(graph, owned);
  graph.discover_roles();
  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, p, level);
  EXPECT_TRUE(ms->run_until_done(100_ms));
  std::ostringstream os;
  ms->txn_log().dump_csv(os);
  return CaptureResult{os.str(), ms->txn_log().summarize()};
}

}  // namespace

TEST(TraceReplay, ReproducesCountAndBytesOnCapturePlatform) {
  const core::Platform p;  // capture platform
  const auto cap =
      capture_run(capture_factory(), p, core::AbstractionLevel::Ccatb);
  ASSERT_GT(cap.summary.count, 0u);

  // Port the trace through CSV (the portable form), then replay it on the
  // platform it was captured on, at the same level.
  trace::TxnLogger loaded;
  std::istringstream is(cap.csv);
  loaded.load_csv(is);
  ASSERT_EQ(loaded.size(), cap.summary.count);

  const auto rep = capture_run(workload::replay_factory(loaded), p,
                               core::AbstractionLevel::Ccatb);
  // The acceptance bar: transaction count and byte total reproduce
  // exactly (send/request/reply sequence and payload sizes are identical).
  EXPECT_EQ(rep.summary.count, cap.summary.count);
  EXPECT_EQ(rep.summary.bytes, cap.summary.bytes);
}

TEST(TraceReplay, CapturedTraceRunsOnEveryCandidatePlatform) {
  const auto cap = capture_run(capture_factory(), core::Platform{},
                               core::AbstractionLevel::Ccatb);
  trace::TxnLogger loaded;
  std::istringstream is(cap.csv);
  loaded.load_csv(is);

  expl::Explorer ex;
  const auto rows =
      ex.sweep(expl::default_candidates(),
               {workload::replay_case("replay", loaded)}, 100_ms);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.completed) << r.platform;
    EXPECT_EQ(r.workload, "replay");
    EXPECT_GT(r.transactions, 0u) << r.platform;
  }
}

TEST(TraceReplay, PreservesInterArrivalGaps) {
  // Second send starts 10 us after the first; the first completed at
  // 100 ns, so the replay charges the 9.9 us idle span as compute
  // (990 cycles at 10 ns) — the re-issued send pays its own transfer
  // time again, so gaps run completion-to-start, not start-to-start.
  trace::TxnLogger log;
  log.record("ch", trace::TxnKind::Send, 16, 0_ns, 100_ns);
  log.record("ch", trace::TxnKind::Send, 16, 10_us, Time::us(10) + 100_ns);

  const auto scripts = workload::build_replay(log);
  ASSERT_EQ(scripts.size(), 1u);
  ASSERT_EQ(scripts[0].actions.size(), 2u);
  EXPECT_EQ(scripts[0].actions[0].gap_cycles, 0u);
  EXPECT_EQ(scripts[0].actions[1].gap_cycles, 990u);

  const auto rep = capture_run(workload::replay_factory(log),
                               core::Platform{},
                               core::AbstractionLevel::Ccatb);
  EXPECT_EQ(rep.summary.count, 2u);
  EXPECT_EQ(rep.summary.bytes, 32u);
}

TEST(TraceReplay, MatchesRepliesToRequestsInOrder) {
  trace::TxnLogger log;
  log.record("rpc", trace::TxnKind::Request, 24, 0_ns, 50_ns);
  log.record("rpc", trace::TxnKind::Reply, 48, 60_ns, 120_ns);
  log.record("rpc", trace::TxnKind::Request, 8, 500_ns, 550_ns);
  log.record("rpc", trace::TxnKind::Reply, 4, 560_ns, 620_ns);
  const auto scripts = workload::build_replay(log);
  ASSERT_EQ(scripts.size(), 1u);
  ASSERT_EQ(scripts[0].actions.size(), 2u);
  EXPECT_EQ(scripts[0].actions[0].bytes, 24u);
  EXPECT_EQ(scripts[0].actions[0].reply_bytes, 48u);
  EXPECT_EQ(scripts[0].actions[1].bytes, 8u);
  EXPECT_EQ(scripts[0].actions[1].reply_bytes, 4u);
  // Second request's gap runs from the first *reply*'s end (120 ns, when
  // the blocking master resumed) to its start (500 ns): 38 cycles.
  EXPECT_EQ(scripts[0].actions[1].gap_cycles, 38u);
}

TEST(TraceReplay, RejectsUnreplayableTraces) {
  {
    trace::TxnLogger log;  // empty
    EXPECT_THROW(workload::build_replay(log), ElaborationError);
  }
  {
    trace::TxnLogger log;  // bus-level rows only
    log.record("plb", trace::TxnKind::Write, 64, 0_ns, 100_ns);
    log.record("plb", trace::TxnKind::Read, 4, 200_ns, 300_ns);
    EXPECT_THROW(workload::build_replay(log), ElaborationError);
  }
  {
    trace::TxnLogger log;  // reply with no request
    log.record("rpc", trace::TxnKind::Reply, 8, 0_ns, 10_ns);
    EXPECT_THROW(workload::build_replay(log), ElaborationError);
  }
  {
    trace::TxnLogger log;  // request never answered
    log.record("rpc", trace::TxnKind::Request, 8, 0_ns, 10_ns);
    EXPECT_THROW(workload::build_replay(log), ElaborationError);
  }
}

// ------------------------------------------- replay validation ----------

namespace {

// Capture a run and hand back the raw logger (not just its CSV), for
// distribution comparisons.
trace::TxnLogger capture_log(const expl::Explorer::GraphFactory& factory,
                             const core::Platform& p,
                             core::AbstractionLevel level) {
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  factory(graph, owned);
  graph.discover_roles();
  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, p, level);
  EXPECT_TRUE(ms->run_until_done(200_ms));
  trace::TxnLogger log;
  std::ostringstream os;
  ms->txn_log().dump_csv(os);
  std::istringstream is(os.str());
  log.load_csv(is);  // round through the portable form on purpose
  return log;
}

}  // namespace

// The phase-accurate acceptance bar: replaying a trace on the platform
// it was captured from must reproduce not just count/bytes but the
// latency distribution per channel (the replay sink now also serves the
// captured reply gaps, so request round trips pace like the original).
TEST(TraceReplay, SamePlatformReplayPassesDistributionValidation) {
  const core::Platform p;
  const auto original =
      capture_log(capture_factory(), p, core::AbstractionLevel::Ccatb);
  const auto replayed = capture_log(workload::replay_factory(original), p,
                                    core::AbstractionLevel::Ccatb);

  const auto v = workload::validate_replay(original, replayed);
  EXPECT_TRUE(v.ok) << v.report();
  ASSERT_EQ(v.channels.size(), 2u);  // "stream" and "rpc"
  for (const auto& c : v.channels) {
    EXPECT_TRUE(c.ok()) << v.report();
    EXPECT_EQ(c.original.count, c.replayed.count);
    EXPECT_EQ(c.original.bytes, c.replayed.bytes);
  }
  // The report is the human-readable tolerance table.
  const std::string rep = v.report();
  EXPECT_NE(rep.find("PASS"), std::string::npos);
  EXPECT_NE(rep.find("stream"), std::string::npos);
  EXPECT_NE(rep.find("p95"), std::string::npos);
}

// Same-platform replay validation for every canonical synthetic
// workload that captures SHIP traffic.
TEST(TraceReplay, CanonicalWorkloadsValidateOnCapturePlatform) {
  const core::Platform p;
  for (const auto& wc : expl::workload_candidates()) {
    if (wc.name == "banked") continue;  // bus-only traffic: nothing to replay
    const auto original =
        capture_log(wc.factory, p, core::AbstractionLevel::Ccatb);
    const auto replayed = capture_log(workload::replay_factory(original), p,
                                      core::AbstractionLevel::Ccatb);
    const auto v = workload::validate_replay(original, replayed);
    EXPECT_TRUE(v.ok) << wc.name << ":\n" << v.report();
  }
}

TEST(TraceReplay, ValidationFlagsDistortedLatencies) {
  trace::TxnLogger original, fast;
  for (int i = 0; i < 10; ++i) {
    const Time start = Time::us(static_cast<std::uint64_t>(i));
    original.record("ch", trace::TxnKind::Send, 64, start, start + 1000_ns);
    fast.record("ch", trace::TxnKind::Send, 64, start, start + 100_ns);
  }
  const auto v = workload::validate_replay(original, fast);
  EXPECT_FALSE(v.ok);
  ASSERT_EQ(v.channels.size(), 1u);
  EXPECT_TRUE(v.channels[0].counts_ok);
  EXPECT_TRUE(v.channels[0].bytes_ok);
  bool some_stat_failed = false;
  for (const auto& s : v.channels[0].stats) some_stat_failed |= !s.ok;
  EXPECT_TRUE(some_stat_failed);
  EXPECT_NE(v.report().find("FAIL"), std::string::npos);
}

TEST(TraceReplay, ValidationFlagsCountMismatchAndMissingChannels) {
  trace::TxnLogger original, replayed;
  original.record("a", trace::TxnKind::Send, 64, 0_ns, 100_ns);
  original.record("a", trace::TxnKind::Send, 64, 1_us, Time::us(1) + 100_ns);
  original.record("b", trace::TxnKind::Send, 8, 0_ns, 50_ns);
  replayed.record("a", trace::TxnKind::Send, 64, 0_ns, 100_ns);  // one lost
  const auto v = workload::validate_replay(original, replayed);
  EXPECT_FALSE(v.ok);
  ASSERT_EQ(v.channels.size(), 2u);
  EXPECT_FALSE(v.channels[0].counts_ok);  // "a": 2 -> 1
  EXPECT_FALSE(v.channels[1].in_replayed);  // "b" missing entirely
  EXPECT_NE(v.report().find("MISSING"), std::string::npos);

  // Bus rows are ignored by default: a replay on another platform that
  // regenerates different read/write rows still validates SHIP-only.
  trace::TxnLogger with_bus;
  with_bus.record("a", trace::TxnKind::Send, 64, 0_ns, 100_ns);
  with_bus.record("a", trace::TxnKind::Send, 64, 1_us, Time::us(1) + 100_ns);
  with_bus.record("b", trace::TxnKind::Send, 8, 0_ns, 50_ns);
  with_bus.record("plb", trace::TxnKind::Write, 64, 0_ns, 90_ns);
  const auto v2 = workload::validate_replay(original, with_bus);
  EXPECT_TRUE(v2.ok) << v2.report();

  // Nothing to compare at all is a failure, not a vacuous pass.
  trace::TxnLogger empty_a, empty_b;
  EXPECT_FALSE(workload::validate_replay(empty_a, empty_b).ok);
}

TEST(TraceReplay, ReplySinkServesCapturedReplyGap) {
  trace::TxnLogger log;
  log.record("rpc", trace::TxnKind::Request, 24, 0_ns, 50_ns);
  log.record("rpc", trace::TxnKind::Reply, 48, 550_ns, 600_ns);
  const auto scripts = workload::build_replay(log);
  ASSERT_EQ(scripts.size(), 1u);
  ASSERT_EQ(scripts[0].actions.size(), 1u);
  // Reply started 500 ns after the request completed: 50 cycles at the
  // default 10 ns replay clock, charged on the sink before it answers.
  EXPECT_EQ(scripts[0].actions[0].reply_gap_cycles, 50u);
}

TEST(TraceReplay, RawMsgRoundTripsExactSizes) {
  for (std::size_t n : {0ull, 1ull, 7ull, 256ull}) {
    workload::RawMsg m(n, 0x3c);
    EXPECT_EQ(ship::serialized_size(m), n);
    const auto bytes = ship::to_bytes(m);
    workload::RawMsg back;
    ship::from_bytes(back, bytes);
    EXPECT_EQ(back.data, m.data);
  }
}
