// Tests for adaptive exploration: the Pareto/successive-halving search
// driver, the work-stealing pool underneath it, the knob-space neighbor
// enumeration it mutates with, and the run-budget early-termination
// hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::core;
using namespace stlm::expl;
using namespace stlm::time_literals;

namespace {

Explorer::GraphFactory two_stream_factory(std::uint64_t msgs,
                                          std::size_t payload) {
  return [msgs, payload](SystemGraph& g,
                         std::vector<std::unique_ptr<ProcessingElement>>& o) {
    auto p0 = std::make_unique<ProducerPe>("p0", msgs, payload, 20);
    auto p1 = std::make_unique<ProducerPe>("p1", msgs, payload, 20);
    auto s0 = std::make_unique<SinkPe>("s0", msgs);
    auto s1 = std::make_unique<SinkPe>("s1", msgs);
    g.add_pe(*p0);
    g.add_pe(*p1);
    g.add_pe(*s0);
    g.add_pe(*s1);
    g.connect("ch0", *p0, "out", *s0, "in", 2);
    g.connect("ch1", *p1, "out", *s1, "in", 2);
    o.push_back(std::move(p0));
    o.push_back(std::move(p1));
    o.push_back(std::move(s0));
    o.push_back(std::move(s1));
  };
}

// Every simulated column — everything except the host-side wall clock.
void expect_sim_columns_equal(const ExplorationRow& a,
                              const ExplorationRow& b) {
  EXPECT_EQ(a.platform, b.platform);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.sim_time_us, b.sim_time_us) << a.platform;
  EXPECT_EQ(a.mean_latency_ns, b.mean_latency_ns) << a.platform;
  EXPECT_EQ(a.p50_latency_ns, b.p50_latency_ns) << a.platform;
  EXPECT_EQ(a.p95_latency_ns, b.p95_latency_ns) << a.platform;
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns) << a.platform;
  EXPECT_EQ(a.mean_queue_ns, b.mean_queue_ns) << a.platform;
  EXPECT_EQ(a.worst_master_p99_ns, b.worst_master_p99_ns) << a.platform;
  EXPECT_EQ(a.bus_utilization, b.bus_utilization) << a.platform;
  EXPECT_EQ(a.transactions, b.transactions) << a.platform;
  EXPECT_EQ(a.bytes, b.bytes) << a.platform;
  EXPECT_EQ(a.ctx_switches, b.ctx_switches) << a.platform;
  EXPECT_EQ(a.fast_hit_rate, b.fast_hit_rate) << a.platform;
  EXPECT_EQ(a.error_rate, b.error_rate) << a.platform;
  EXPECT_EQ(a.retries, b.retries) << a.platform;
  EXPECT_EQ(a.timeouts, b.timeouts) << a.platform;
  EXPECT_EQ(a.aborted, b.aborted) << a.platform;
  EXPECT_EQ(a.goodput_mbps, b.goodput_mbps) << a.platform;
  EXPECT_EQ(a.slo_miss_pct, b.slo_miss_pct) << a.platform;
  EXPECT_EQ(a.cost, b.cost) << a.platform;
}

}  // namespace

// ------------------------------------------------ knob space / naming ----

TEST(KnobSpace, GridPointNameReproducesGridCandidateNames) {
  for (const auto& p : grid_candidates()) {
    EXPECT_EQ(p.name, grid_point_name(p));
  }
}

TEST(KnobSpace, GridPointNameCoversFailureAxes) {
  GridSpec spec;
  fault::FaultProfile fp;
  fp.name = "noisy";
  fp.error_rate = 0.01;
  fault::RetrySpec rs;
  rs.name = "r3";
  rs.max_retries = 3;
  spec.faults = {fp};
  spec.retries = {rs};
  for (const auto& p : grid_candidates(spec)) {
    EXPECT_EQ(p.name, grid_point_name(p));
    EXPECT_NE(p.name.find("-noisy-r3"), std::string::npos) << p.name;
  }
}

TEST(KnobSpace, NeighborsStepOneKnobInAxisOrder) {
  GridSpec spec;
  Platform p;  // plb-priority @10ns, width 0 -> native 8B... pin explicitly:
  p.bus = BusKind::Plb;
  p.arb = ArbKind::Priority;
  p.bus_cycle = 10_ns;
  p.data_width_bytes = 4;
  p.name = grid_point_name(p);
  ASSERT_EQ(p.name, "plb-priority-10ns-32b");
  const auto nb = grid_neighbors(p, spec.knobs());
  std::vector<std::string> names;
  names.reserve(nb.size());
  for (const auto& n : nb) names.push_back(n.name);
  const std::vector<std::string> expected{
      "shared-bus-priority-10ns-32b",  // bus axis, -1
      "opb-priority-10ns-32b",         // bus axis, +1
      "plb-round-robin-10ns-32b",      // arb axis, +1
      "plb-priority-20ns-32b",         // cycle axis, +1
      "plb-priority-10ns-64b",         // width axis, +1
      "plb-priority-10ns-32b-split4",  // outstanding axis, +1
      "plb-priority-10ns-32b-fast",    // fast axis, +1
  };
  EXPECT_EQ(names, expected);
}

TEST(KnobSpace, NeighborsRespectValidityRules) {
  GridSpec spec;
  Platform opb;
  opb.bus = BusKind::Opb;
  opb.arb = ArbKind::Priority;
  opb.bus_cycle = 10_ns;
  opb.data_width_bytes = 4;
  opb.name = grid_point_name(opb);
  for (const auto& n : grid_neighbors(opb, spec.knobs())) {
    // No OPB split point may ever be proposed.
    EXPECT_TRUE(knob_point_valid(
        n.bus, n.split_active() ? n.max_outstanding : 1, n.fast_targets))
        << n.name;
    EXPECT_EQ(n.name.find("opb") != std::string::npos &&
                  n.name.find("split") != std::string::npos,
              false)
        << n.name;
  }
  // A fast platform must not propose a fast split neighbor.
  Platform fast;
  fast.bus = BusKind::Plb;
  fast.arb = ArbKind::Priority;
  fast.bus_cycle = 10_ns;
  fast.data_width_bytes = 4;
  fast.fast_targets = true;
  fast.name = grid_point_name(fast);
  for (const auto& n : grid_neighbors(fast, spec.knobs())) {
    EXPECT_FALSE(n.fast_targets && n.split_active()) << n.name;
  }
}

TEST(KnobSpace, NeighborsOfGridPointsStayInsideTheGrid) {
  // With the mutation space set to the grid's own axes, every neighbor
  // of every grid candidate must *be* a grid candidate with the grid's
  // exact name — the dedup-by-name invariant mutation relies on.
  GridSpec spec;
  const auto grid = grid_candidates(spec);
  std::set<std::string> names;
  for (const auto& p : grid) names.insert(p.name);
  for (const auto& p : grid) {
    std::set<std::string> local;
    for (const auto& n : grid_neighbors(p, spec.knobs())) {
      EXPECT_TRUE(names.count(n.name)) << n.name << " (from " << p.name << ")";
      EXPECT_NE(n.name, p.name);
      EXPECT_TRUE(local.insert(n.name).second)
          << "duplicate neighbor " << n.name;
    }
  }
}

TEST(KnobSpace, CostProxyOrdersStructuralComplexity) {
  Platform narrow;
  narrow.bus = BusKind::SharedBus;
  narrow.bus_cycle = 20_ns;
  narrow.data_width_bytes = 4;
  Platform wide = narrow;
  wide.data_width_bytes = 8;
  Platform faster = narrow;
  faster.bus_cycle = 10_ns;
  Platform xbar = narrow;
  xbar.bus = BusKind::Crossbar;
  Platform split = narrow;
  split.split_txns = true;
  split.max_outstanding = 4;
  EXPECT_GT(wide.cost_proxy(), narrow.cost_proxy());
  EXPECT_GT(faster.cost_proxy(), narrow.cost_proxy());
  EXPECT_GT(xbar.cost_proxy(), narrow.cost_proxy());
  EXPECT_GT(split.cost_proxy(), narrow.cost_proxy());
  // The fast-path knob models simulation speed, not hardware: no cost.
  Platform fast = narrow;
  fast.fast_targets = true;
  EXPECT_EQ(fast.cost_proxy(), narrow.cost_proxy());
}

// --------------------------------------------------------- work pool ----

TEST(WorkPool, RunsDynamicallySubmittedTasks) {
  WorkPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &ran] {
      ++ran;
      // Tasks discovered mid-drain (mutation proposals) must run too.
      pool.submit([&ran] { ++ran; });
    });
  }
  pool.run();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.first_error(), nullptr);
  EXPECT_EQ(pool.spawn_failures(), 0u);
}

TEST(WorkPool, CompletesWhenEveryHelperSpawnFails) {
  WorkPool pool(4, [](std::function<void()>) -> std::thread {
    throw std::runtime_error("no threads today");
  });
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) pool.submit([&ran] { ++ran; });
  pool.run();  // the calling thread drains everything itself
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(pool.helpers_requested(), 3u);
  EXPECT_EQ(pool.spawn_failures(), 3u);
  EXPECT_EQ(pool.first_error(), nullptr);
}

TEST(WorkPool, FirstTaskErrorIsHeldAndRemainingWorkDiscarded) {
  WorkPool pool(1);  // single-threaded: deterministic execution order
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([&ran] { ++ran; });
  pool.run();
  ASSERT_NE(pool.first_error(), nullptr);
  EXPECT_THROW(std::rethrow_exception(pool.first_error()),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 0);  // discarded after the error
}

TEST(Explorer, SpawnFailureDegradesParallelSweepLoudly) {
  // A thread factory that always fails must not lose the sweep *or* the
  // signal: results match the sequential sweep bit for bit and the
  // degradation is visible on the explorer.
  Explorer ex(two_stream_factory(6, 64));
  const auto cands = default_candidates();
  const auto seq = ex.sweep(cands, 50_ms);
  ex.set_thread_factory([](std::function<void()>) -> std::thread {
    throw std::runtime_error("EAGAIN");
  });
  const auto par = ex.sweep_parallel(cands, 50_ms, 4);
  EXPECT_EQ(ex.last_spawn_failures(), 3u);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    expect_sim_columns_equal(par[i], seq[i]);
  }
}

// ------------------------------------------------- run budget / abort ----

TEST(EvalBudget, AbortsMidSimulationAtACleanDeltaBoundary) {
  Explorer ex(two_stream_factory(64, 256));
  Platform p;
  const auto full = ex.evaluate(p, 10_ms);
  ASSERT_TRUE(full.completed);
  ASSERT_GT(full.sim_time_us, 20.0);

  Explorer::EvalBudget budget;
  budget.should_abort = [](Time now, std::uint64_t) { return now >= 10_us; };
  const auto cut = ex.evaluate(p, 10_ms, budget);
  EXPECT_TRUE(cut.pruned);
  EXPECT_FALSE(cut.completed);
  EXPECT_GE(cut.sim_time_us, 10.0);
  EXPECT_LT(cut.sim_time_us, full.sim_time_us);
  EXPECT_LT(cut.transactions, full.transactions);
}

TEST(EvalBudget, NullAndNeverFiringBudgetsReproduceThePlainRun) {
  Explorer ex(two_stream_factory(8, 64));
  Platform p;
  const auto plain = ex.evaluate(p, 10_ms);
  const auto null_budget = ex.evaluate(p, 10_ms, Explorer::EvalBudget{});
  expect_sim_columns_equal(plain, null_budget);
  Explorer::EvalBudget never;
  never.should_abort = [](Time, std::uint64_t) { return false; };
  const auto idle = ex.evaluate(p, 10_ms, never);
  EXPECT_FALSE(idle.pruned);
  expect_sim_columns_equal(plain, idle);
}

TEST(SearchDriver, DominatedCandidateIsAbortedMidRun) {
  // A fast platform and a much slower one on a single-objective search:
  // the slow cell survives rung 0 as a pad, is off the front, and at the
  // full-horizon rung its budgeted re-run must be cut off at
  // abort_slack x the fast cell's demonstrated completion time.
  Explorer ex(two_stream_factory(200, 512));
  Platform fast;
  fast.name = "fast-plb";
  Platform slow;
  slow.name = "slow-opb";
  slow.bus = BusKind::Opb;
  slow.bus_cycle = 20_ns;
  const auto tf = ex.evaluate(fast, 500_ms);
  const auto ts = ex.evaluate(slow, 500_ms);
  ASSERT_TRUE(tf.completed);
  ASSERT_TRUE(ts.completed);
  ASSERT_GT(ts.sim_time_us, 2.0 * tf.sim_time_us);

  SearchConfig cfg;
  cfg.objectives = {Objective::Throughput};
  const double mid_us = 0.5 * (tf.sim_time_us + ts.sim_time_us);
  cfg.horizons = {Time::us(static_cast<std::uint64_t>(mid_us)), 500_ms};
  cfg.keep_fraction = 1.0;  // the slow cell survives selection...
  cfg.pad_fraction = 1.0;
  cfg.abort_slack = mid_us / tf.sim_time_us;  // ...but not the budget
  SearchDriver driver(cfg);
  const auto report = driver.run(ex, {fast, slow});

  ASSERT_EQ(report.rungs.size(), 2u);
  EXPECT_EQ(report.rungs[0].evaluated, 2u);
  EXPECT_EQ(report.rungs[1].carried, 1u);   // fast: final at rung 0
  EXPECT_EQ(report.rungs[1].evaluated, 1u); // slow: re-run under budget
  EXPECT_EQ(report.rungs[1].aborted, 1u);
  EXPECT_EQ(report.pruned_cells, 1u);
  ASSERT_EQ(report.frontier.size(), 1u);
  EXPECT_EQ(report.frontier[0].platform, "fast-plb");
  expect_sim_columns_equal(report.frontier[0], tf);
}

// ------------------------------------------------- search vs. sweep ----

TEST(SearchDriver, RecoversExhaustiveParetoFrontOnTheDefaultGrid) {
  // The acceptance bar: on the default 108-platform x 5-workload grid
  // the search must reproduce the exhaustive sweep's Pareto front bit
  // for bit while running at most half the cells at the full horizon.
  Explorer ex;
  const auto plats = grid_candidates();
  const auto wls = workload::workload_candidates();
  ASSERT_EQ(plats.size(), 108u);
  ASSERT_EQ(wls.size(), 5u);

  SearchConfig cfg;  // default horizons / objectives / fractions
  cfg.n_threads = 4;
  SearchDriver driver(cfg);
  const auto report = driver.run(ex, plats, wls);

  const Time full_horizon = cfg.horizons.back();
  const auto sweep = ex.sweep_parallel(plats, wls, full_horizon, 4);

  // Expected frontier: per-workload Pareto fronts of the exhaustive
  // rows, groups in workload order, rows sorted by platform name.
  std::vector<ExplorationRow> expected;
  for (std::size_t w = 0; w < wls.size(); ++w) {
    std::vector<ExplorationRow> group;
    for (std::size_t p = 0; p < plats.size(); ++p) {
      group.push_back(sweep[p * wls.size() + w]);
    }
    std::sort(group.begin(), group.end(),
              [](const ExplorationRow& a, const ExplorationRow& b) {
                return a.platform < b.platform;
              });
    for (const std::size_t i : pareto_front(group, cfg.objectives)) {
      expected.push_back(group[i]);
    }
  }
  ASSERT_EQ(report.frontier.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expect_sim_columns_equal(report.frontier[i], expected[i]);
  }
  EXPECT_EQ(report.frontier.size(), report.frontier_platforms.size());

  // The carry-forward economy: at most 50% of the 540 cells may pay the
  // full horizon (here every workload completes inside rung 0, so the
  // final rung re-simulates nothing at all).
  EXPECT_LE(report.full_horizon_evals, plats.size() * wls.size() / 2);
  EXPECT_EQ(report.candidates_seen, plats.size() * wls.size());
  ASSERT_EQ(report.rungs.size(), cfg.horizons.size());
  EXPECT_EQ(report.rungs.front().evaluated, plats.size() * wls.size());
  EXPECT_EQ(report.pruned_cells, 0u);
}

TEST(SearchDriver, SameSeedSearchesAreByteIdenticalAcrossThreadCounts) {
  // Mutation on, starting from a handful of seeds: the discovered
  // candidate set, the report counters, and the printed frontier must
  // not depend on run or thread count.
  const GridSpec spec;
  const auto grid = grid_candidates(spec);
  const std::vector<Platform> seeds(grid.begin(), grid.begin() + 4);
  const std::vector<workload::WorkloadCase> wls{
      workload::workload_candidates()[0]};

  auto search = [&](unsigned n_threads) {
    Explorer ex;
    SearchConfig cfg;
    cfg.space = spec.knobs();
    cfg.mutation_depth = 2;
    cfg.mutation_limit = 3;
    cfg.n_threads = n_threads;
    SearchDriver driver(cfg);
    const auto report = driver.run(ex, seeds, wls);
    std::ostringstream os;
    SearchDriver::print_frontier(os, report);
    return std::pair<SearchReport, std::string>(report, os.str());
  };

  const auto [ra, sa] = search(4);
  const auto [rb, sb] = search(4);
  const auto [rc, sc] = search(1);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa, sc);
  EXPECT_GT(ra.proposed, 0u);
  EXPECT_GT(ra.candidates_seen, seeds.size());  // mutation discovered work
  EXPECT_EQ(ra.candidates_seen, rb.candidates_seen);
  EXPECT_EQ(ra.candidates_seen, rc.candidates_seen);
  EXPECT_EQ(ra.duplicates, rb.duplicates);
  EXPECT_EQ(ra.proposed, rb.proposed);
  ASSERT_EQ(ra.frontier.size(), rc.frontier.size());
  for (std::size_t i = 0; i < ra.frontier.size(); ++i) {
    expect_sim_columns_equal(ra.frontier[i], rc.frontier[i]);
  }
}

TEST(SearchDriver, PrintFrontierSeparatorMatchesHeaderWidth) {
  Explorer ex(two_stream_factory(6, 64));
  SearchConfig cfg;
  cfg.horizons = {10_ms};
  SearchDriver driver(cfg);
  const auto report = driver.run(ex, default_candidates());
  std::ostringstream os;
  SearchDriver::print_frontier(os, report);
  std::istringstream in(os.str());
  std::string header, rule;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, rule));
  EXPECT_EQ(rule, std::string(header.size(), '-'));
}

TEST(SearchDriver, SingleHorizonSearchFrontsAllCandidates) {
  // One rung == plain sweep + Pareto extraction; every frontier row must
  // match a direct evaluation bit for bit.
  Explorer ex(two_stream_factory(8, 128));
  SearchConfig cfg;
  cfg.horizons = {50_ms};
  SearchDriver driver(cfg);
  const auto cands = default_candidates();
  const auto report = driver.run(ex, cands);
  ASSERT_EQ(report.rungs.size(), 1u);
  EXPECT_EQ(report.rungs[0].evaluated, cands.size());
  EXPECT_EQ(report.full_horizon_evals, cands.size());
  ASSERT_GE(report.frontier.size(), 1u);
  for (std::size_t i = 0; i < report.frontier.size(); ++i) {
    const auto direct =
        ex.evaluate(report.frontier_platforms[i], 50_ms);
    expect_sim_columns_equal(report.frontier[i], direct);
  }
}
