// Register-level tests of the HW adapter: drive its OCP slave interface
// directly (as a bus master / device driver would) and check the mailbox
// register semantics bit by bit — the contract the SW driver relies on.
#include <gtest/gtest.h>

#include "hwsw/hwsw.hpp"
#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::hwsw;
using namespace stlm::time_literals;

namespace {

std::vector<std::uint8_t> word(std::uint32_t v) {
  std::vector<std::uint8_t> b(4);
  for (int i = 0; i < 4; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return b;
}

std::uint32_t as_word(const std::vector<std::uint8_t>& b) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
  return v;
}

struct AdapterFixture {
  Simulator sim;
  cam::MailboxLayout layout{0x1000, 64};
  HwAdapter adapter{sim, "ad", layout, 10_ns};
};

}  // namespace

TEST(HwAdapterRegisters, CtrlCommitsStagedChunk) {
  AdapterFixture f;
  std::string got;
  f.sim.spawn_thread("bus_master", [&] {
    // Stage "hi" + length prefix via DATA_IN, then commit with CTRL.
    ship::StringMsg msg("hi");
    const auto bytes = ship::to_bytes(msg);
    EXPECT_TRUE(f.adapter
                    .handle(ocp::Request::write(f.layout.data_in(), bytes))
                    .good());
    const std::uint32_t ctrl =
        static_cast<std::uint32_t>(bytes.size()) | HwSwFlags::kLastFlag;
    EXPECT_TRUE(f.adapter
                    .handle(ocp::Request::write(f.layout.ctrl(), word(ctrl)))
                    .good());
  });
  f.sim.spawn_thread("hw_pe", [&] {
    ship::StringMsg m;
    f.adapter.recv(m);
    got = m.text;
  });
  f.sim.run();
  EXPECT_EQ(got, "hi");
}

TEST(HwAdapterRegisters, MultiChunkAssembly) {
  AdapterFixture f;  // 64-byte window
  std::vector<std::uint8_t> got;
  f.sim.spawn_thread("bus_master", [&] {
    // A 100-byte logical message in two chunks: 64 + 36.
    std::vector<std::uint8_t> part1(64), part2(36);
    for (int i = 0; i < 64; ++i) part1[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i);
    for (int i = 0; i < 36; ++i) part2[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(64 + i);
    f.adapter.handle(ocp::Request::write(f.layout.data_in(), part1));
    f.adapter.handle(ocp::Request::write(f.layout.ctrl(), word(64)));
    f.adapter.handle(ocp::Request::write(f.layout.data_in(), part2));
    f.adapter.handle(ocp::Request::write(
        f.layout.ctrl(), word(36u | HwSwFlags::kLastFlag)));
  });
  f.sim.spawn_thread("hw_pe", [&] {
    // The HW PE sees one contiguous 100-byte payload.
    class Raw final : public ship::ship_serializable_if {
     public:
      void serialize(ship::Serializer& s) const override {
        s.put_bytes(data.data(), data.size());
      }
      void deserialize(ship::Deserializer& d) override {
        data.resize(d.remaining());
        d.get_bytes(data.data(), data.size());
      }
      std::vector<std::uint8_t> data;
    } raw;
    f.adapter.recv(raw);
    got = raw.data;
  });
  f.sim.run();
  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(got[0], 0u);
  EXPECT_EQ(got[99], 99u);
}

TEST(HwAdapterRegisters, OversizedChunkRejected) {
  AdapterFixture f;
  f.sim.spawn_thread("bus_master", [&] {
    // len exceeds window: error response, nothing committed.
    const auto r = f.adapter.handle(
        ocp::Request::write(f.layout.ctrl(), word(65u | HwSwFlags::kLastFlag)));
    EXPECT_FALSE(r.good());
  });
  f.sim.run();
  EXPECT_EQ(f.adapter.messages_from_sw(), 0u);
}

TEST(HwAdapterRegisters, RstatusReflectsOutboundHead) {
  AdapterFixture f;
  f.sim.spawn_thread("hw_pe", [&] {
    ship::PodMsg<std::uint32_t> m(0xfeedface);
    f.adapter.send(m);
  });
  f.sim.spawn_thread("bus_master", [&] {
    wait(1_us);  // let the HW PE enqueue
    const auto st =
        f.adapter.handle(ocp::Request::read(f.layout.rstatus(), 4));
    ASSERT_TRUE(st.good());
    const std::uint32_t status = as_word(st.data);
    EXPECT_EQ(status & HwSwFlags::kLenMask, 4u);       // 4 payload bytes
    EXPECT_EQ(status & HwSwFlags::kReplyFlag, 0u);     // plain send
    // Read the data window and acknowledge.
    const auto data =
        f.adapter.handle(ocp::Request::read(f.layout.data_out(), 4));
    ASSERT_TRUE(data.good());
    EXPECT_EQ(as_word(data.data), 0xfeedfaceu);
    f.adapter.handle(ocp::Request::write(f.layout.rack(), word(0)));
    // Queue drained.
    const auto st2 =
        f.adapter.handle(ocp::Request::read(f.layout.rstatus(), 4));
    EXPECT_EQ(as_word(st2.data) & HwSwFlags::kLenMask, 0u);
  });
  f.sim.run();
}

TEST(HwAdapterRegisters, IrqPulsesOnOutboundMessage) {
  AdapterFixture f;
  int posedges = 0;
  f.sim.spawn_method("count", [&] { ++posedges; },
                     {&f.adapter.irq().posedge_event()},
                     /*run_at_start=*/false);
  f.sim.spawn_thread("hw_pe", [&] {
    ship::PodMsg<int> m(1);
    f.adapter.send(m);
    wait(1_us);
    // Second message while the first is still queued: after the SW side
    // drains the first, the pulser re-raises for the second.
    f.adapter.send(m);
    wait(1_us);
  });
  f.sim.spawn_thread("bus_master", [&] {
    // Drain both messages with RACKs.
    for (int i = 0; i < 2; ++i) {
      std::uint32_t len = 0;
      do {
        wait(100_ns);
        len = as_word(
                  f.adapter.handle(ocp::Request::read(f.layout.rstatus(), 4))
                      .data) &
              HwSwFlags::kLenMask;
      } while (len == 0);
      f.adapter.handle(ocp::Request::read(f.layout.data_out(), len));
      f.adapter.handle(ocp::Request::write(f.layout.rack(), word(0)));
    }
  });
  f.sim.run();
  EXPECT_GE(posedges, 2);
  EXPECT_EQ(f.adapter.irq_count(), static_cast<std::uint64_t>(posedges));
}

TEST(HwAdapterRegisters, UnmappedOffsetsError) {
  AdapterFixture f;
  f.sim.spawn_thread("bus_master", [&] {
    EXPECT_FALSE(
        f.adapter.handle(ocp::Request::write(f.layout.base + 0x0c, word(0)))
            .good());
    EXPECT_FALSE(
        f.adapter.handle(ocp::Request::read(f.layout.base + 0x0c, 4)).good());
    // Reads/writes straddling the window edge fail too.
    EXPECT_FALSE(f.adapter
                     .handle(ocp::Request::write(
                         f.layout.data_in() + 62, {1, 2, 3, 4}))
                     .good());
  });
  f.sim.run();
}

TEST(HwAdapterRegisters, ReplyFlagRoutesToReplyQueue) {
  AdapterFixture f;
  std::uint32_t answer = 0;
  f.sim.spawn_thread("hw_pe", [&] {
    ship::PodMsg<std::uint32_t> req(5), resp;
    f.adapter.request(req, resp);
    answer = resp.value;
  });
  f.sim.spawn_thread("bus_master", [&] {
    // Drain the outbound request.
    wait(1_us);
    const auto st = f.adapter.handle(ocp::Request::read(f.layout.rstatus(), 4));
    const std::uint32_t status = as_word(st.data);
    EXPECT_NE(status & HwSwFlags::kRequestFlag, 0u);
    f.adapter.handle(ocp::Request::read(f.layout.data_out(),
                                        status & HwSwFlags::kLenMask));
    f.adapter.handle(ocp::Request::write(f.layout.rack(), word(0)));
    // Push the reply with the reply flag: must wake request(), not recv().
    f.adapter.handle(
        ocp::Request::write(f.layout.data_in(), word(1234)));
    f.adapter.handle(ocp::Request::write(
        f.layout.ctrl(),
        word(4u | HwSwFlags::kLastFlag | HwSwFlags::kReplyFlag)));
  });
  f.sim.run();
  EXPECT_EQ(answer, 1234u);
}
