// Tests for the SHIP<->OCP wrappers: a SHIP channel refined onto a CAM
// must behave exactly like the abstract channel (same payloads, same
// roles), with bus traffic now visible and accounted.
#include <gtest/gtest.h>

#include <numeric>

#include "cam/cam.hpp"
#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::ship;
using namespace stlm::time_literals;

namespace {

struct WrapperFixture {
  Simulator sim;
  PlbCam bus{sim, "plb", 10_ns, std::make_unique<PriorityArbiter>()};
  MailboxLayout layout{0x4000, 256};
  ShipSlaveWrapper slave{sim, "ch.slave", layout};
  ShipMasterWrapper master;

  WrapperFixture()
      : master(sim, "ch.master", bus, bus.add_master("pe0"), layout, 100_ns) {
    bus.attach_slave(slave, layout.range(), "ch.mailbox");
  }
};

}  // namespace

TEST(ShipWrappers, SendRecvOverBus) {
  WrapperFixture f;
  std::string got;
  f.sim.spawn_thread("producer", [&] {
    StringMsg m("over the PLB");
    f.master.send(m);
  });
  f.sim.spawn_thread("consumer", [&] {
    StringMsg m;
    f.slave.recv(m);
    got = m.text;
  });
  f.sim.run();
  EXPECT_EQ(got, "over the PLB");
  EXPECT_EQ(f.slave.messages_received(), 1u);
  // DATA_IN burst + CTRL write at minimum.
  EXPECT_GE(f.master.bus_transactions(), 2u);
}

TEST(ShipWrappers, RequestReplyOverBus) {
  WrapperFixture f;
  std::uint32_t answer = 0;
  f.sim.spawn_thread("master", [&] {
    PodMsg<std::uint32_t> req(21), resp;
    f.master.request(req, resp);
    answer = resp.value;
  });
  f.sim.spawn_thread("slave", [&] {
    PodMsg<std::uint32_t> req;
    f.slave.recv(req);
    PodMsg<std::uint32_t> resp(req.value * 2);
    f.slave.reply(resp);
  });
  f.sim.run();
  EXPECT_EQ(answer, 42u);
  EXPECT_GE(f.master.poll_count(), 0u);
}

TEST(ShipWrappers, LargeMessageIsChunked) {
  WrapperFixture f;  // window 256 B
  std::vector<std::uint8_t> got;
  std::vector<std::uint8_t> payload(1500);
  std::iota(payload.begin(), payload.end(), 0);
  f.sim.spawn_thread("p", [&] {
    VectorMsg<> m(payload);
    f.master.send(m);
  });
  f.sim.spawn_thread("c", [&] {
    VectorMsg<> m;
    f.slave.recv(m);
    got = m.data;
  });
  f.sim.run();
  EXPECT_EQ(got, payload);
  // 1504 wire bytes over 256-byte window: at least 6 data+ctrl pairs.
  EXPECT_GE(f.master.bus_transactions(), 12u);
}

TEST(ShipWrappers, LargeReplyIsChunkedBack) {
  WrapperFixture f;
  std::vector<std::uint8_t> reply_payload(1000, 0x5a);
  std::vector<std::uint8_t> got;
  f.sim.spawn_thread("m", [&] {
    PodMsg<std::uint8_t> req(1);
    VectorMsg<> resp;
    f.master.request(req, resp);
    got = resp.data;
  });
  f.sim.spawn_thread("s", [&] {
    PodMsg<std::uint8_t> req;
    f.slave.recv(req);
    VectorMsg<> resp(reply_payload);
    f.slave.reply(resp);
  });
  f.sim.run();
  EXPECT_EQ(got, reply_payload);
}

TEST(ShipWrappers, RoleViolationsThrow) {
  WrapperFixture f;
  f.sim.spawn_thread("bad", [&] {
    PodMsg<int> m;
    f.master.recv(m);  // slave call on master wrapper
  });
  EXPECT_THROW(f.sim.run(), ProtocolError);

  WrapperFixture g;
  g.sim.spawn_thread("bad2", [&] {
    PodMsg<int> m(1);
    g.slave.send(m);  // master call on slave wrapper
  });
  EXPECT_THROW(g.sim.run(), ProtocolError);
}

TEST(ShipWrappers, ReplyWithoutRequestThrows) {
  WrapperFixture f;
  f.sim.spawn_thread("bad", [&] {
    PodMsg<int> m(1);
    f.slave.reply(m);
  });
  EXPECT_THROW(f.sim.run(), ProtocolError);
}

TEST(ShipWrappers, CommunicationTakesBusTime) {
  WrapperFixture f;
  Time arrival;
  f.sim.spawn_thread("p", [&] {
    VectorMsg<> m(std::vector<std::uint8_t>(64, 7));
    f.master.send(m);
  });
  f.sim.spawn_thread("c", [&] {
    VectorMsg<> m;
    f.slave.recv(m);
    arrival = f.sim.now();
  });
  f.sim.run();
  // Unlike the untimed channel, refined communication costs bus cycles.
  EXPECT_GT(arrival, 0_ns);
  EXPECT_GT(f.bus.stats().counter("transactions"), 0u);
}

TEST(ShipWrappers, TwoChannelsShareOneBus) {
  Simulator sim;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<RoundRobinArbiter>());
  MailboxLayout l0{0x4000, 128}, l1{0x5000, 128};
  ShipSlaveWrapper s0(sim, "ch0.slave", l0), s1(sim, "ch1.slave", l1);
  bus.attach_slave(s0, l0.range(), "ch0");
  bus.attach_slave(s1, l1.range(), "ch1");
  ShipMasterWrapper m0(sim, "ch0.master", bus, bus.add_master("pe0"), l0, 50_ns);
  ShipMasterWrapper m1(sim, "ch1.master", bus, bus.add_master("pe1"), l1, 50_ns);

  int done = 0;
  sim.spawn_thread("p0", [&] {
    for (int i = 0; i < 10; ++i) {
      PodMsg<int> m(i);
      m0.send(m);
    }
  });
  sim.spawn_thread("p1", [&] {
    for (int i = 0; i < 10; ++i) {
      PodMsg<int> m(100 + i);
      m1.send(m);
    }
  });
  sim.spawn_thread("c0", [&] {
    PodMsg<int> m;
    for (int i = 0; i < 10; ++i) {
      s0.recv(m);
      EXPECT_EQ(m.value, i);
      ++done;
    }
  });
  sim.spawn_thread("c1", [&] {
    PodMsg<int> m;
    for (int i = 0; i < 10; ++i) {
      s1.recv(m);
      EXPECT_EQ(m.value, 100 + i);
      ++done;
    }
  });
  sim.run();
  EXPECT_EQ(done, 20);
}

// Property: wrapper-refined channel delivers byte-identical messages for
// a sweep of payload sizes around the window boundary.
class WrapperSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WrapperSizeSweep, LosslessAcrossWindowBoundary) {
  WrapperFixture f;  // window = 256
  const std::size_t n = GetParam();
  bool ok = false;
  f.sim.spawn_thread("p", [&] {
    VectorMsg<> m(std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(n)));
    f.master.send(m);
  });
  f.sim.spawn_thread("c", [&] {
    VectorMsg<> m;
    f.slave.recv(m);
    ok = m.data.size() == n &&
         std::all_of(m.data.begin(), m.data.end(), [&](std::uint8_t b) {
           return b == static_cast<std::uint8_t>(n);
         });
  });
  f.sim.run();
  EXPECT_TRUE(ok) << "payload " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, WrapperSizeSweep,
                         ::testing::Values(0u, 1u, 4u, 251u, 252u, 253u, 256u,
                                           257u, 511u, 512u, 513u, 4096u));
