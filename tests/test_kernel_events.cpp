// Tests for Event notification semantics and the scheduler's phase order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

TEST(Events, TimedNotifyWakesAtRightTime) {
  Simulator sim;
  Event ev(sim, "ev");
  Time woke_at;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  sim.spawn_thread("notifier", [&] {
    wait(30_ns);
    ev.notify(12_ns);
  });
  sim.run();
  EXPECT_EQ(woke_at, 42_ns);
}

TEST(Events, DeltaNotifyWakesInSameTimestep) {
  Simulator sim;
  Event ev(sim, "ev");
  int order = 0;
  int waiter_order = -1, notifier_order = -1;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    waiter_order = order++;
    EXPECT_EQ(sim.now(), Time::zero());
  });
  sim.spawn_thread("notifier", [&] {
    ev.notify_delta();
    notifier_order = order++;
  });
  sim.run();
  EXPECT_EQ(notifier_order, 0);
  EXPECT_EQ(waiter_order, 1);
}

TEST(Events, ImmediateNotifyWakesInSameEvaluation) {
  Simulator sim;
  Event ev(sim, "ev");
  std::uint64_t wake_delta = 999;
  // Waiter must be registered before the notifier fires; thread order is
  // creation order, so the waiter runs (and waits) first.
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    wake_delta = sim.delta_count();
  });
  sim.spawn_thread("notifier", [&] { ev.notify(); });
  sim.run();
  EXPECT_EQ(wake_delta, 0u);  // woken within the very first delta
}

TEST(Events, CancelSuppressesTimedNotification) {
  Simulator sim;
  Event ev(sim, "ev");
  bool woke = false;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke = true;
  });
  sim.spawn_thread("controller", [&] {
    ev.notify(10_ns);
    wait(5_ns);
    ev.cancel();
  });
  sim.run();
  EXPECT_FALSE(woke);
  EXPECT_EQ(sim.now(), 5_ns);  // the 10 ns entry is stale and skipped
}

TEST(Events, EarlierNotificationOverridesLater) {
  Simulator sim;
  Event ev(sim, "ev");
  Time woke_at;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  sim.spawn_thread("notifier", [&] {
    ev.notify(20_ns);
    ev.notify(5_ns);  // earlier: overrides
  });
  sim.run();
  EXPECT_EQ(woke_at, 5_ns);
}

TEST(Events, LaterNotificationIsIgnoredWhilePending) {
  Simulator sim;
  Event ev(sim, "ev");
  Time woke_at;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  sim.spawn_thread("notifier", [&] {
    ev.notify(5_ns);
    ev.notify(20_ns);  // later: ignored per SystemC override rule
  });
  sim.run();
  EXPECT_EQ(woke_at, 5_ns);
}

TEST(Events, DeltaNotifyOverridesPendingTimed) {
  // A delta notification is always earlier than a timed one, so it must
  // displace a pending timed notification (SystemC override rule).
  Simulator sim;
  Event ev(sim, "ev");
  Time woke_at = Time::max();
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  sim.spawn_thread("notifier", [&] {
    ev.notify(5_ns);
    ev.notify_delta();  // earlier: overrides the 5 ns entry
  });
  sim.run();
  EXPECT_EQ(woke_at, Time::zero());
}

TEST(Events, CancelThenRenotifyFiresAtNewTime) {
  // cancel() bumps the scheduling generation: the stale 10 ns entry must
  // not fire, and a fresh notification after cancel must.
  Simulator sim;
  Event ev(sim, "ev");
  Time woke_at = Time::max();
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  sim.spawn_thread("controller", [&] {
    ev.notify(10_ns);
    wait(5_ns);
    ev.cancel();
    ev.notify(10_ns);  // re-arm: fires at 15 ns, not at the stale 10 ns
  });
  sim.run();
  EXPECT_EQ(woke_at, 15_ns);
}

TEST(Events, CancelThenEarlierRenotifyIsNotBlockedByStaleEntry) {
  // After cancel(), a new notification may be scheduled for any time —
  // including one earlier than the cancelled entry.
  Simulator sim;
  Event ev(sim, "ev");
  Time woke_at = Time::max();
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  sim.spawn_thread("controller", [&] {
    ev.notify(30_ns);
    ev.cancel();
    ev.notify(7_ns);
  });
  sim.run();
  EXPECT_EQ(woke_at, 7_ns);
}

TEST(Events, CancelDeltaSuppressesDelivery) {
  Simulator sim;
  Event ev(sim, "ev");
  bool woke = false;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke = true;
  });
  sim.spawn_thread("controller", [&] {
    ev.notify_delta();
    ev.cancel();  // same evaluation phase: delta must not be delivered
  });
  sim.run();
  EXPECT_FALSE(woke);
}

TEST(Events, WaitWithTimeoutReturnsTrueOnEvent) {
  Simulator sim;
  Event ev(sim, "ev");
  bool got_event = false;
  sim.spawn_thread("waiter", [&] { got_event = wait(100_ns, ev); });
  sim.spawn_thread("notifier", [&] {
    wait(10_ns);
    ev.notify();
  });
  sim.run();
  EXPECT_TRUE(got_event);
  EXPECT_EQ(sim.now(), 10_ns);
}

TEST(Events, WaitWithTimeoutReturnsFalseOnTimeout) {
  Simulator sim;
  Event ev(sim, "ev");
  bool got_event = true;
  Time woke_at;
  sim.spawn_thread("waiter", [&] {
    got_event = wait(100_ns, ev);
    woke_at = sim.now();
  });
  sim.run();
  EXPECT_FALSE(got_event);
  EXPECT_EQ(woke_at, 100_ns);
}

TEST(Events, WaitAnyReturnsTriggeredEvent) {
  Simulator sim;
  Event a(sim, "a"), b(sim, "b"), c(sim, "c");
  std::string winner;
  sim.spawn_thread("waiter", [&] {
    Event& e = wait_any({&a, &b, &c});
    winner = e.name();
  });
  sim.spawn_thread("notifier", [&] {
    wait(7_ns);
    b.notify();
  });
  sim.run();
  EXPECT_EQ(winner, "b");
}

TEST(Events, MultipleWaitersAllWake) {
  Simulator sim;
  Event ev(sim, "ev");
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn_thread("w" + std::to_string(i), [&] {
      wait(ev);
      ++woken;
    });
  }
  sim.spawn_thread("notifier", [&] {
    wait(1_ns);
    ev.notify();
  });
  sim.run();
  EXPECT_EQ(woken, 5);
}

TEST(Events, NotificationIsOneShot) {
  Simulator sim;
  Event ev(sim, "ev");
  int wakes = 0;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    ++wakes;
    wait(ev);  // must not be woken by the same (consumed) notification
    ++wakes;
  });
  sim.spawn_thread("notifier", [&] {
    wait(1_ns);
    ev.notify();
  });
  sim.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Events, RunForStopsAtBound) {
  Simulator sim;
  Event ev(sim, "ev");
  bool woke = false;
  sim.spawn_thread("waiter", [&] {
    wait(ev);
    woke = true;
  });
  sim.spawn_thread("notifier", [&] {
    wait(100_ns);
    ev.notify();
  });
  sim.run_for(50_ns);
  EXPECT_FALSE(woke);
  EXPECT_EQ(sim.now(), 50_ns);
  sim.run_for(60_ns);
  EXPECT_TRUE(woke);
}

TEST(Events, SimultaneousTimedNotificationsShareDelta) {
  Simulator sim;
  Event a(sim, "a"), b(sim, "b");
  std::vector<Time> wakes;
  sim.spawn_thread("wa", [&] {
    wait(a);
    wakes.push_back(sim.now());
  });
  sim.spawn_thread("wb", [&] {
    wait(b);
    wakes.push_back(sim.now());
  });
  sim.spawn_thread("n", [&] {
    a.notify(10_ns);
    b.notify(10_ns);
  });
  sim.run();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], 10_ns);
  EXPECT_EQ(wakes[1], 10_ns);
}

TEST(Events, ProcessExceptionPropagatesFromRun) {
  Simulator sim;
  sim.spawn_thread("thrower", [&] {
    wait(1_ns);
    throw ProtocolError("boom");
  });
  EXPECT_THROW(sim.run(), ProtocolError);
}

TEST(Events, WaitOutsideProcessThrows) {
  Simulator sim;
  Event ev(sim, "ev");
  EXPECT_THROW(wait(ev), SimulationError);
}

TEST(Events, StopEndsRunEarly) {
  Simulator sim;
  int steps = 0;
  sim.spawn_thread("ticker", [&] {
    for (;;) {
      wait(10_ns);
      if (++steps == 3) sim.stop();
    }
  });
  sim.run();
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(sim.now(), 30_ns);
}
