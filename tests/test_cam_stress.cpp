// Stress and property tests for the CAM library: randomized multi-master
// multi-slave traffic checked against analytic invariants, bridge
// topologies under load, and failure injection (bus errors mid-stream).
#include <gtest/gtest.h>

#include <random>

#include "cam/cam.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::time_literals;

namespace {

struct StressParams {
  std::size_t masters;
  std::size_t slaves;
  unsigned seed;
};

class CamStress : public ::testing::TestWithParam<StressParams> {};

}  // namespace

TEST_P(CamStress, RandomTrafficInvariantsHold) {
  const auto [masters, slaves, seed] = GetParam();
  Simulator sim;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<RoundRobinArbiter>());
  std::vector<std::unique_ptr<ocp::MemorySlave>> mems;
  for (std::size_t s = 0; s < slaves; ++s) {
    const std::uint64_t base = 0x10000ull * s;
    mems.push_back(
        std::make_unique<ocp::MemorySlave>("mem" + std::to_string(s), base,
                                           0x10000));
    bus.attach_slave(*mems.back(), {base, 0x10000}, "mem" + std::to_string(s));
  }

  constexpr int kTxnsPerMaster = 60;
  std::uint64_t expected_bytes = 0;
  int completed = 0;
  int failures = 0;

  for (std::size_t m = 0; m < masters; ++m) {
    const std::size_t idx = bus.add_master("m" + std::to_string(m));
    sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
      std::mt19937 rng(seed + static_cast<unsigned>(m));
      std::uniform_int_distribution<int> len(1, 256);
      std::uniform_int_distribution<std::size_t> pick_slave(0, slaves - 1);
      std::uniform_int_distribution<int> off(0, 0xf000);
      for (int i = 0; i < kTxnsPerMaster; ++i) {
        const auto n = static_cast<std::size_t>(len(rng));
        const std::uint64_t addr =
            0x10000ull * pick_slave(rng) + static_cast<std::uint64_t>(off(rng));
        std::vector<std::uint8_t> payload(n, static_cast<std::uint8_t>(i));
        expected_bytes += n;
        auto wr = bus.master_port(idx).transport(
            ocp::Request::write(addr, payload));
        if (!wr.good()) ++failures;
        // Read back a prefix and verify it (another master may have
        // overwritten it, but the response must be well-formed).
        auto rd = bus.master_port(idx).transport(
            ocp::Request::read(addr, static_cast<std::uint32_t>(n)));
        expected_bytes += n;
        if (!rd.good() || rd.data.size() != n) ++failures;
        ++completed;
      }
    });
  }
  sim.run();

  EXPECT_EQ(failures, 0);
  EXPECT_EQ(completed, static_cast<int>(masters) * kTxnsPerMaster);
  // Invariants: the bus counted every transaction and every byte.
  EXPECT_EQ(bus.stats().counter("transactions"),
            2ull * masters * kTxnsPerMaster);
  EXPECT_EQ(bus.stats().counter("bytes"), expected_bytes);
  // Utilization is a valid fraction under load.
  EXPECT_GT(bus.utilization(), 0.0);
  EXPECT_LE(bus.utilization(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CamStress,
    ::testing::Values(StressParams{1, 1, 11}, StressParams{2, 1, 22},
                      StressParams{4, 2, 33}, StressParams{8, 4, 44}));

TEST(CamStressMisc, BridgeUnderConcurrentLoad) {
  // Two masters on the PLB: one hits a fast PLB memory, the other hammers
  // through the bridge into OPB space. Both finish; bridge counts match.
  Simulator sim;
  PlbCam plb(sim, "plb", 10_ns, std::make_unique<RoundRobinArbiter>());
  OpbCam opb(sim, "opb", 20_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave fast("fast", 0x00000, 0x1000);
  ocp::MemorySlave slow("slow", 0x80000, 0x1000);
  plb.attach_slave(fast, {0x00000, 0x1000}, "fast");
  opb.attach_slave(slow, {0x80000, 0x1000}, "slow");
  BusBridge bridge(sim, "bridge", opb, 2);
  plb.attach_slave(bridge, {0x80000, 0x1000}, "bridge");

  const std::size_t m0 = plb.add_master("direct");
  const std::size_t m1 = plb.add_master("bridged");
  int errors = 0;
  sim.spawn_thread("direct", [&] {
    for (int i = 0; i < 40; ++i) {
      if (!plb.master_port(m0)
               .transport(ocp::Request::write(
                   static_cast<std::uint64_t>(8 * (i % 64)),
                   {1, 2, 3, 4, 5, 6, 7, 8}))
               .good()) {
        ++errors;
      }
    }
  });
  sim.spawn_thread("bridged", [&] {
    for (int i = 0; i < 40; ++i) {
      if (!plb.master_port(m1)
               .transport(ocp::Request::write(
                   0x80000 + static_cast<std::uint64_t>(8 * (i % 64)),
                   {9, 9, 9, 9}))
               .good()) {
        ++errors;
      }
    }
  });
  sim.run();
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(bridge.forwarded(), 40u);
  EXPECT_EQ(slow.writes(), 40u);
  EXPECT_EQ(fast.writes(), 40u);
}

TEST(CamStressMisc, ErrorsMidStreamDoNotWedgeTheBus) {
  // Failure injection: every third transaction targets an unmapped
  // address. The bus must return Err for those and keep serving the rest.
  Simulator sim;
  SharedBusCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x1000);
  bus.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = bus.add_master("pe");
  int ok = 0, err = 0;
  sim.spawn_thread("pe", [&] {
    for (int i = 0; i < 30; ++i) {
      const std::uint64_t addr =
          (i % 3 == 2) ? 0xdead0000ull : static_cast<std::uint64_t>(4 * i);
      auto r = bus.master_port(m).transport(
          ocp::Request::write(addr, {1, 2, 3, 4}));
      r.good() ? ++ok : ++err;
    }
  });
  sim.run();
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(err, 10);
  EXPECT_EQ(bus.stats().counter("decode_errors"), 10u);
}

TEST(CamStressMisc, CrossbarRandomTargetsAllComplete) {
  Simulator sim;
  CrossbarCam xbar(sim, "xbar", 10_ns);
  std::vector<std::unique_ptr<ocp::MemorySlave>> mems;
  for (int s = 0; s < 4; ++s) {
    const std::uint64_t base = 0x10000ull * static_cast<std::uint64_t>(s);
    mems.push_back(std::make_unique<ocp::MemorySlave>(
        "mem" + std::to_string(s), base, 0x10000));
    xbar.attach_slave(*mems.back(), {base, 0x10000}, "mem" + std::to_string(s));
  }
  int done = 0;
  for (int m = 0; m < 4; ++m) {
    const std::size_t idx = xbar.add_master("m" + std::to_string(m));
    sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
      std::mt19937 rng(static_cast<unsigned>(m) * 7 + 1);
      std::uniform_int_distribution<std::uint64_t> slave(0, 3);
      for (int i = 0; i < 50; ++i) {
        const std::uint64_t addr = 0x10000ull * slave(rng) +
                                   static_cast<std::uint64_t>((i * 64) % 0xf000);
        ASSERT_TRUE(xbar.master_port(idx)
                        .transport(ocp::Request::write(
                            addr, std::vector<std::uint8_t>(64, 1)))
                        .good());
      }
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(xbar.stats().counter("transactions"), 200u);
}

TEST(CamStressMisc, TdmaBoundsWorstCaseLatencyVsPriority) {
  // Under saturation, the worst master's mean latency with TDMA must not
  // exceed its latency under static priority (where it is served last).
  auto run = [&](int arb_kind) {
    Simulator sim;
    std::unique_ptr<Arbiter> arb;
    if (arb_kind == 0) {
      arb = std::make_unique<PriorityArbiter>();
    } else {
      arb = std::make_unique<TdmaArbiter>(std::vector<std::size_t>{0, 1, 2, 3},
                                          8);
    }
    PlbCam bus(sim, "plb", 10_ns, std::move(arb));
    ocp::MemorySlave mem("mem", 0, 1 << 20);
    bus.attach_slave(mem, {0, 1 << 20}, "mem");
    for (int m = 0; m < 4; ++m) {
      const std::size_t idx = bus.add_master("m" + std::to_string(m));
      sim.spawn_thread("pe" + std::to_string(m), [&bus, m, idx] {
        for (int i = 0; i < 100; ++i) {
          bus.master_port(idx).transport(ocp::Request::write(
              static_cast<std::uint64_t>(m) << 12,
              std::vector<std::uint8_t>(64, 0)));
        }
      });
    }
    sim.run();
    return bus.stats().acc("master_m3_latency_ns").mean();
  };
  const double prio_worst = run(0);
  const double tdma_worst = run(1);
  EXPECT_LE(tdma_worst, prio_worst * 1.05);
}
