// Unit tests for SHIP timing policies and the mailbox layout arithmetic
// shared by wrappers and the HW/SW adapter.
#include <gtest/gtest.h>

#include "cam/wrappers.hpp"
#include "ship/timing.hpp"

using namespace stlm;
using namespace stlm::ship;
using namespace stlm::time_literals;

TEST(ShipTiming, UntimedIsAlwaysZero) {
  UntimedModel m;
  EXPECT_EQ(m.transfer_latency(0), Time::zero());
  EXPECT_EQ(m.transfer_latency(1), Time::zero());
  EXPECT_EQ(m.transfer_latency(1 << 20), Time::zero());
}

TEST(ShipTiming, CcatbBeatsRoundUp) {
  CcatbModel m(10_ns, 4, 0);
  EXPECT_EQ(m.transfer_latency(1), 10_ns);   // 1 beat
  EXPECT_EQ(m.transfer_latency(4), 10_ns);   // exactly 1 beat
  EXPECT_EQ(m.transfer_latency(5), 20_ns);   // 2 beats
  EXPECT_EQ(m.transfer_latency(8), 20_ns);
}

TEST(ShipTiming, CcatbSetupIsAdditive) {
  CcatbModel m(10_ns, 4, 3);
  EXPECT_EQ(m.transfer_latency(4), 40_ns);   // 3 setup + 1 beat
  EXPECT_EQ(m.transfer_latency(16), 70_ns);  // 3 setup + 4 beats
}

TEST(ShipTiming, CcatbZeroBytesStillOneSetupWindow) {
  CcatbModel m(10_ns, 8, 2);
  // Zero-byte message: setup cycles only.
  EXPECT_EQ(m.transfer_latency(0), 20_ns);
}

TEST(ShipTiming, WiderBusIsNeverSlower) {
  CcatbModel narrow(10_ns, 4, 2), wide(10_ns, 8, 2);
  for (std::size_t n : {0u, 1u, 7u, 8u, 33u, 256u, 4096u}) {
    EXPECT_LE(wide.transfer_latency(n), narrow.transfer_latency(n))
        << "payload " << n;
  }
}

TEST(ShipTiming, LatencyMonotonicInPayload) {
  CcatbModel m(5_ns, 8, 1);
  Time prev = Time::zero();
  for (std::size_t n = 0; n < 200; n += 3) {
    const Time t = m.transfer_latency(n);
    EXPECT_GE(t, prev) << "payload " << n;
    prev = t;
  }
}

TEST(ShipTiming, ZeroWidthBusFallsBackToByteWide) {
  CcatbModel m(10_ns, 0, 0);
  EXPECT_EQ(m.transfer_latency(3), 30_ns);  // 1 byte per beat
}

TEST(MailboxLayout, RegisterOffsetsAndSpan) {
  cam::MailboxLayout l{0x4000, 256};
  EXPECT_EQ(l.ctrl(), 0x4000u);
  EXPECT_EQ(l.rstatus(), 0x4004u);
  EXPECT_EQ(l.rack(), 0x4008u);
  EXPECT_EQ(l.data_in(), 0x4010u);
  EXPECT_EQ(l.data_out(), 0x4010u + 256u);
  EXPECT_EQ(l.span(), 0x10u + 512u);
  const auto r = l.range();
  EXPECT_TRUE(r.contains(l.ctrl(), 4));
  EXPECT_TRUE(r.contains(l.data_out() + 255));
  EXPECT_FALSE(r.contains(l.data_out() + 256));
}

TEST(MailboxLayout, FlagEncodingDoesNotOverlapLength) {
  EXPECT_EQ(cam::MailboxLayout::kLenMask & cam::MailboxLayout::kLastFlag, 0u);
  EXPECT_EQ(cam::MailboxLayout::kLenMask & cam::MailboxLayout::kRequestFlag,
            0u);
  EXPECT_EQ(cam::MailboxLayout::kLastFlag & cam::MailboxLayout::kRequestFlag,
            0u);
}
