// Tests for the calendar-queue event wheel behind the simulator's timed
// schedule — FIFO tie-break determinism at one instant, cancel /
// re-notify / override against pending wheel entries, bucket rollover
// and overflow-heap migration — plus the pooled coroutine stacks that
// recycle thread stacks across simulators.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/stack_pool.hpp"

using namespace stlm;
using namespace stlm::time_literals;

// --------------------------------------------------------- event wheel ----

// The determinism contract: notifications landing on the same timestamp
// fire in the order they were *issued*, regardless of the event objects'
// construction or the waiters' spawn order.
TEST(TimedWheel, SameInstantFiresInNotifyOrder) {
  Simulator sim;
  Event e0(sim, "e0"), e1(sim, "e1"), e2(sim, "e2");
  std::vector<int> order;
  sim.spawn_thread("w0", [&] { wait(e0); order.push_back(0); });
  sim.spawn_thread("w1", [&] { wait(e1); order.push_back(1); });
  sim.spawn_thread("w2", [&] { wait(e2); order.push_back(2); });
  sim.spawn_thread("notifier", [&] {
    // Deliberately not in construction/spawn order.
    e2.notify(40_ns);
    e0.notify(40_ns);
    e1.notify(40_ns);
  });
  sim.run();
  EXPECT_EQ(sim.now(), 40_ns);
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}

// Plain timeouts at one instant keep issue order too (same seq counter).
TEST(TimedWheel, TimeoutsAtSameInstantKeepIssueOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn_thread("t" + std::to_string(i), [&, i] {
      wait(25_ns);
      order.push_back(i);
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// cancel() invalidates the pending wheel entry; a re-notify at the very
// same timestamp must land exactly once (the stale entry is pruned, not
// double-fired).
TEST(TimedWheel, CancelThenRenotifySameInstantFiresOnce) {
  Simulator sim;
  Event ev(sim, "ev");
  std::vector<Time> wakes;
  sim.spawn_thread("waiter", [&] {
    for (;;) {
      wait(ev);
      wakes.push_back(sim.now());
    }
  });
  sim.spawn_thread("ctl", [&] {
    ev.notify(30_ns);
    ev.cancel();
    ev.notify(30_ns);
  });
  sim.run();
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0], 30_ns);
}

// An earlier notify overrides a pending later one; the superseded wheel
// entry must not fire when its bucket comes around.
TEST(TimedWheel, EarlierNotifyOverridesPendingLaterEntry) {
  Simulator sim;
  Event ev(sim, "ev");
  std::vector<Time> wakes;
  sim.spawn_thread("waiter", [&] {
    for (;;) {
      wait(ev);
      wakes.push_back(sim.now());
    }
  });
  sim.spawn_thread("ctl", [&] {
    ev.notify(100_ns);
    ev.notify(10_ns);  // earlier: replaces the 100 ns entry
    wait(200_ns);      // outlive the stale bucket
  });
  sim.run();
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0], 10_ns);
}

// The wheel window is ~2.1 us (2048 buckets x ~1.05 ns); notifications
// past the horizon park in the overflow heap and migrate into the wheel
// as it rotates. Same-instant entries must keep their issue order across
// that migration.
TEST(TimedWheel, OverflowMigrationKeepsSameInstantOrder) {
  Simulator sim;
  Event e0(sim, "e0"), e1(sim, "e1");
  std::vector<int> order;
  sim.spawn_thread("w0", [&] { wait(e0); order.push_back(0); });
  sim.spawn_thread("w1", [&] { wait(e1); order.push_back(1); });
  sim.spawn_thread("notifier", [&] {
    e1.notify(Time::us(5));  // far past the wheel horizon
    e0.notify(Time::us(5));
  });
  sim.run();
  EXPECT_EQ(sim.now(), Time::us(5));
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

// Thousands of short waits force the wheel through many full rotations
// (rebase + bucket reuse); interleaved long hops exercise the
// overflow-to-wheel path. The accumulated time must stay exact.
TEST(TimedWheel, RolloverAndLongHopsAccumulateExactly) {
  Simulator sim;
  Time expected = Time::zero();
  sim.spawn_thread("hopper", [&] {
    for (int i = 0; i < 5000; ++i) wait(Time::ns(3));
    for (int i = 0; i < 8; ++i) wait(Time::us(10));
    wait(Time::ns(1));
  });
  expected = Time::ns(3) * 5000 + Time::us(10) * 8 + Time::ns(1);
  sim.run();
  EXPECT_EQ(sim.now(), expected);
}

// --------------------------------------------------------- stack pool ----

namespace {

void run_sim_with_threads(std::size_t n) {
  Simulator sim;
  for (std::size_t i = 0; i < n; ++i) {
    sim.spawn_thread("t" + std::to_string(i), [] { wait(1_ns); });
  }
  sim.run();
}

}  // namespace

// Destroying a simulator returns every thread stack to the calling
// thread's pool; the next simulator on this thread recycles them
// instead of mmap'ing fresh ones.
TEST(StackPool, RecyclesStacksAcrossSimulators) {
  auto& pool = detail::StackPool::local();
  run_sim_with_threads(8);  // warm the pool to at least 8 cached blocks
  const auto maps_before = pool.maps();
  const auto reuses_before = pool.reuses();
  run_sim_with_threads(8);
  EXPECT_EQ(pool.maps(), maps_before) << "second run must not mmap";
  EXPECT_GE(pool.reuses() - reuses_before, 8u);
}

// Two-epoch high-water shrink: a burst's stacks stay cached through the
// next epoch (steady repeated demand recycles everything), then get
// shed once two consecutive epochs no longer need them.
TEST(StackPool, ShedsBurstAfterTwoQuietEpochs) {
  auto& pool = detail::StackPool::local();
  run_sim_with_threads(16);  // burst epoch: high-water mark 16
  const auto cached_after_burst = pool.cached_blocks();
  EXPECT_GE(cached_after_burst, 16u);
  const auto unmaps_before = pool.unmaps();
  run_sim_with_threads(1);  // quiet epoch 1: burst still protected
  EXPECT_GE(pool.cached_blocks(), 16u);
  run_sim_with_threads(1);  // quiet epoch 2: cap drops to the new demand
  EXPECT_LE(pool.cached_blocks(), 2u);
  EXPECT_GE(pool.unmaps() - unmaps_before, 14u);
}

// Cross-thread release: a block released on a pool other than the one
// it was acquired from is unmapped immediately (the releasing pool's
// lists and counters stay untouched), and the owning pool reconciles
// its usage count on its next operation — so its epoch/high-water
// bookkeeping cannot ratchet upward under acquire-here/release-there
// churn.
TEST(StackPool, CrossThreadReleaseReconcilesOwner) {
  auto& pool = detail::StackPool::local();
  pool.trim();
  const auto b1 = pool.acquire(64 * 1024);
  const auto b2 = pool.acquire(64 * 1024);
  EXPECT_EQ(pool.in_use_blocks(), 2u);
  std::thread t([&] {
    auto& other = detail::StackPool::local();
    const auto unmaps_before = other.unmaps();
    const auto cached_before = other.cached_blocks();
    other.release(b1);  // foreign block: pages returned on the spot
    EXPECT_EQ(other.unmaps(), unmaps_before + 1);
    EXPECT_EQ(other.cached_blocks(), cached_before);
    EXPECT_EQ(other.in_use_blocks(), 0u);
  });
  t.join();
  // The credit is folded in at the owner's next operation: releasing b2
  // drains usage to zero, so the epoch logic still runs (cached blocks
  // capped by the high-water mark, not pinned by a phantom user).
  pool.release(b2);
  EXPECT_EQ(pool.in_use_blocks(), 0u);
  EXPECT_EQ(pool.cached_blocks(), 1u);
  pool.trim();
}

// trim() is the explicit release valve: an idle pool drops every cached
// block immediately.
TEST(StackPool, TrimReleasesAllCachedBlocks) {
  auto& pool = detail::StackPool::local();
  run_sim_with_threads(4);
  EXPECT_GE(pool.cached_blocks(), 1u);
  pool.trim();
  EXPECT_EQ(pool.cached_blocks(), 0u);
  EXPECT_EQ(pool.cached_bytes(), 0u);
}
