// Tests for the exploration engine: sweeping the CAM library with
// identical PE code and getting per-architecture metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::core;
using namespace stlm::expl;
using namespace stlm::time_literals;

namespace {

Explorer::GraphFactory two_stream_factory(std::uint64_t msgs,
                                          std::size_t payload) {
  return [msgs, payload](SystemGraph& g,
                         std::vector<std::unique_ptr<ProcessingElement>>& o) {
    auto p0 = std::make_unique<ProducerPe>("p0", msgs, payload, 20);
    auto p1 = std::make_unique<ProducerPe>("p1", msgs, payload, 20);
    auto s0 = std::make_unique<SinkPe>("s0", msgs);
    auto s1 = std::make_unique<SinkPe>("s1", msgs);
    g.add_pe(*p0);
    g.add_pe(*p1);
    g.add_pe(*s0);
    g.add_pe(*s1);
    g.connect("ch0", *p0, "out", *s0, "in", 2);
    g.connect("ch1", *p1, "out", *s1, "in", 2);
    o.push_back(std::move(p0));
    o.push_back(std::move(p1));
    o.push_back(std::move(s0));
    o.push_back(std::move(s1));
  };
}

}  // namespace

TEST(Explorer, EvaluatesOnePlatform) {
  Explorer ex(two_stream_factory(8, 64));
  Platform p;  // default PLB/priority
  const auto row = ex.evaluate(p, 10_ms);
  EXPECT_TRUE(row.completed);
  EXPECT_GT(row.sim_time_us, 0.0);
  EXPECT_GT(row.transactions, 0u);
  EXPECT_GT(row.bytes, 0u);
  EXPECT_GT(row.bus_utilization, 0.0);
}

TEST(Explorer, SweepCoversCamLibrary) {
  Explorer ex(two_stream_factory(6, 64));
  const auto rows = ex.sweep(default_candidates(), 50_ms);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.completed) << r.platform;
    EXPECT_GT(r.sim_time_us, 0.0) << r.platform;
  }
}

TEST(Explorer, ArchitectureChoiceChangesTiming) {
  Explorer ex(two_stream_factory(10, 256));
  Platform plb;
  plb.name = "plb";
  Platform opb;
  opb.name = "opb";
  opb.bus = BusKind::Opb;
  opb.bus_cycle = 20_ns;
  const auto r_plb = ex.evaluate(plb, 100_ms);
  const auto r_opb = ex.evaluate(opb, 100_ms);
  ASSERT_TRUE(r_plb.completed);
  ASSERT_TRUE(r_opb.completed);
  // A 64-bit 100 MHz PLB must finish the same workload sooner than a
  // 32-bit 50 MHz OPB — the paper's "exploration tells architectures
  // apart" in one assertion.
  EXPECT_LT(r_plb.sim_time_us, r_opb.sim_time_us);
}

TEST(Explorer, CrossbarBeatsSharedBusOnIndependentStreams) {
  Explorer ex(two_stream_factory(10, 256));
  Platform shared;
  shared.name = "shared";
  shared.bus = BusKind::SharedBus;
  Platform xbar;
  xbar.name = "xbar";
  xbar.bus = BusKind::Crossbar;
  const auto r_shared = ex.evaluate(shared, 100_ms);
  const auto r_xbar = ex.evaluate(xbar, 100_ms);
  ASSERT_TRUE(r_shared.completed);
  ASSERT_TRUE(r_xbar.completed);
  EXPECT_LT(r_xbar.sim_time_us, r_shared.sim_time_us);
}

TEST(Explorer, TableRendersAllRows) {
  Explorer ex(two_stream_factory(4, 32));
  const auto rows = ex.sweep({Platform{}}, 10_ms);
  std::ostringstream os;
  Explorer::print_table(os, rows);
  const std::string t = os.str();
  EXPECT_NE(t.find("platform"), std::string::npos);
  EXPECT_NE(t.find("plb-priority"), std::string::npos);
}
