// Tests for the exploration engine: sweeping the CAM library with
// identical PE code and getting per-architecture metrics.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::core;
using namespace stlm::expl;
using namespace stlm::time_literals;

namespace {

Explorer::GraphFactory two_stream_factory(std::uint64_t msgs,
                                          std::size_t payload) {
  return [msgs, payload](SystemGraph& g,
                         std::vector<std::unique_ptr<ProcessingElement>>& o) {
    auto p0 = std::make_unique<ProducerPe>("p0", msgs, payload, 20);
    auto p1 = std::make_unique<ProducerPe>("p1", msgs, payload, 20);
    auto s0 = std::make_unique<SinkPe>("s0", msgs);
    auto s1 = std::make_unique<SinkPe>("s1", msgs);
    g.add_pe(*p0);
    g.add_pe(*p1);
    g.add_pe(*s0);
    g.add_pe(*s1);
    g.connect("ch0", *p0, "out", *s0, "in", 2);
    g.connect("ch1", *p1, "out", *s1, "in", 2);
    o.push_back(std::move(p0));
    o.push_back(std::move(p1));
    o.push_back(std::move(s0));
    o.push_back(std::move(s1));
  };
}

}  // namespace

TEST(Explorer, EvaluatesOnePlatform) {
  Explorer ex(two_stream_factory(8, 64));
  Platform p;  // default PLB/priority
  const auto row = ex.evaluate(p, 10_ms);
  EXPECT_TRUE(row.completed);
  EXPECT_GT(row.sim_time_us, 0.0);
  EXPECT_GT(row.transactions, 0u);
  EXPECT_GT(row.bytes, 0u);
  EXPECT_GT(row.bus_utilization, 0.0);
}

TEST(Explorer, SweepCoversCamLibrary) {
  Explorer ex(two_stream_factory(6, 64));
  const auto rows = ex.sweep(default_candidates(), 50_ms);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.completed) << r.platform;
    EXPECT_GT(r.sim_time_us, 0.0) << r.platform;
  }
}

TEST(Explorer, ArchitectureChoiceChangesTiming) {
  Explorer ex(two_stream_factory(10, 256));
  Platform plb;
  plb.name = "plb";
  Platform opb;
  opb.name = "opb";
  opb.bus = BusKind::Opb;
  opb.bus_cycle = 20_ns;
  const auto r_plb = ex.evaluate(plb, 100_ms);
  const auto r_opb = ex.evaluate(opb, 100_ms);
  ASSERT_TRUE(r_plb.completed);
  ASSERT_TRUE(r_opb.completed);
  // A 64-bit 100 MHz PLB must finish the same workload sooner than a
  // 32-bit 50 MHz OPB — the paper's "exploration tells architectures
  // apart" in one assertion.
  EXPECT_LT(r_plb.sim_time_us, r_opb.sim_time_us);
}

TEST(Explorer, CrossbarBeatsSharedBusOnIndependentStreams) {
  Explorer ex(two_stream_factory(10, 256));
  Platform shared;
  shared.name = "shared";
  shared.bus = BusKind::SharedBus;
  Platform xbar;
  xbar.name = "xbar";
  xbar.bus = BusKind::Crossbar;
  const auto r_shared = ex.evaluate(shared, 100_ms);
  const auto r_xbar = ex.evaluate(xbar, 100_ms);
  ASSERT_TRUE(r_shared.completed);
  ASSERT_TRUE(r_xbar.completed);
  EXPECT_LT(r_xbar.sim_time_us, r_shared.sim_time_us);
}

TEST(Explorer, TableRendersAllRows) {
  Explorer ex(two_stream_factory(4, 32));
  const auto rows = ex.sweep({Platform{}}, 10_ms);
  std::ostringstream os;
  Explorer::print_table(os, rows);
  const std::string t = os.str();
  EXPECT_NE(t.find("platform"), std::string::npos);
  EXPECT_NE(t.find("plb-priority"), std::string::npos);
  // The latency-distribution columns are part of the sweep table.
  EXPECT_NE(t.find("p50_ns"), std::string::npos);
  EXPECT_NE(t.find("p95_ns"), std::string::npos);
  EXPECT_NE(t.find("p99_ns"), std::string::npos);
  EXPECT_NE(t.find("queue_ns"), std::string::npos);
}

// On a contended shared bus the tail must sit above the median and the
// queueing delay must be nonzero — the numbers that actually rank
// platforms once the mean saturates.
TEST(Explorer, LatencyPercentilesAreOrderedAndQueueingVisible) {
  Explorer ex(two_stream_factory(10, 256));
  Platform shared;
  shared.name = "shared";
  shared.bus = BusKind::SharedBus;
  const auto r = ex.evaluate(shared, 100_ms);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.p50_latency_ns, 0.0);
  EXPECT_LE(r.p50_latency_ns, r.p95_latency_ns);
  EXPECT_LE(r.p95_latency_ns, r.p99_latency_ns);
  EXPECT_GT(r.mean_queue_ns, 0.0) << "two producers on one bus never queued?";
  EXPECT_LT(r.mean_queue_ns, r.mean_latency_ns);
}

TEST(Explorer, PrintTableRestoresStreamFormatting) {
  Explorer ex(two_stream_factory(4, 32));
  const auto rows = ex.sweep({Platform{}}, 10_ms);
  std::ostringstream os;
  const auto flags = os.flags();
  const auto precision = os.precision();
  const char fill = os.fill();
  Explorer::print_table(os, rows);
  // print_table uses std::fixed/std::setprecision internally; none of it
  // may leak into the caller's stream.
  EXPECT_EQ(os.flags(), flags);
  EXPECT_EQ(os.precision(), precision);
  EXPECT_EQ(os.fill(), fill);
  os << 1.23456789;
  EXPECT_EQ(os.str().substr(os.str().size() - 7), "1.23457");  // default fmt
}

TEST(Explorer, GridCoversCrossProduct) {
  const auto cands = grid_candidates();
  // 3 arbitrated buses x 3 arbiters + crossbar, each x 2 cycles x 2
  // widths; split-capable points (all but OPB) double across the
  // outstanding axis {1, 4}: (12 + 12 + 4) x 2 + 12 = 68 timing points.
  // The fast-target axis then duplicates each of the 40 atomic points
  // as a "-fast" variant: 68 + 40 = 108.
  EXPECT_EQ(cands.size(), 108u);
  std::set<std::string> names;
  for (const auto& p : cands) names.insert(p.name);
  EXPECT_EQ(names.size(), cands.size()) << "grid names must be unique";
  EXPECT_TRUE(names.count("plb-round-robin-10ns-64b"));
  EXPECT_TRUE(names.count("plb-round-robin-10ns-64b-fast"));
  EXPECT_TRUE(names.count("plb-round-robin-10ns-64b-split4"));
  EXPECT_TRUE(names.count("crossbar-20ns-32b"));
  EXPECT_TRUE(names.count("crossbar-20ns-32b-fast"));
  EXPECT_TRUE(names.count("crossbar-20ns-32b-split4"));
  EXPECT_FALSE(names.count("plb-round-robin-10ns-64b-split4-fast"))
      << "the fast axis must not apply to split points";
  std::size_t fast_points = 0;
  for (const auto& p : cands) {
    if (p.bus == core::BusKind::Opb) {
      EXPECT_FALSE(p.split_txns) << p.name;  // OPB has no split points
    }
    if (p.fast_targets) {
      ++fast_points;
      EXPECT_FALSE(p.split_txns) << p.name;  // fast is atomic-mode only
    }
  }
  EXPECT_EQ(fast_points, 40u);
}

TEST(Explorer, GridSpecIsParameterizable) {
  GridSpec spec;
  spec.buses = {BusKind::Plb};
  spec.arbs = {ArbKind::Priority};
  spec.bus_cycles = {10_ns};
  spec.data_widths = {4, 8, 16};
  spec.max_outstanding = {1};
  spec.fast_targets = {false};
  const auto cands = grid_candidates(spec);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[2].data_width_bytes, 16u);
  EXPECT_EQ(cands[2].bus_width_bytes(), 16u);

  // The outstanding axis multiplies split-capable points and stamps the
  // split knobs onto the platform.
  spec.max_outstanding = {1, 2, 8};
  const auto split_cands = grid_candidates(spec);
  ASSERT_EQ(split_cands.size(), 9u);
  EXPECT_FALSE(split_cands[0].split_txns);
  EXPECT_TRUE(split_cands[1].split_txns);
  EXPECT_EQ(split_cands[1].max_outstanding, 2u);
  EXPECT_EQ(split_cands[2].name, "plb-priority-10ns-32b-split8");

  // The fast-target axis duplicates atomic points only, with a "-fast"
  // suffix and the knob stamped onto the platform.
  spec.fast_targets = {false, true};
  const auto fast_cands = grid_candidates(spec);
  ASSERT_EQ(fast_cands.size(), 12u);  // 3 atomic x 2 fast + 6 split
  EXPECT_FALSE(fast_cands[0].fast_targets);
  EXPECT_TRUE(fast_cands[1].fast_targets);
  EXPECT_EQ(fast_cands[1].name, "plb-priority-10ns-32b-fast");
}

TEST(Explorer, DataWidthChangesTiming) {
  Explorer ex(two_stream_factory(10, 256));
  Platform narrow;
  narrow.name = "plb-32b";
  narrow.data_width_bytes = 4;
  Platform wide;
  wide.name = "plb-64b";
  wide.data_width_bytes = 8;
  const auto r_narrow = ex.evaluate(narrow, 100_ms);
  const auto r_wide = ex.evaluate(wide, 100_ms);
  ASSERT_TRUE(r_narrow.completed);
  ASSERT_TRUE(r_wide.completed);
  // Halving the data path doubles the beats per payload: the narrow bus
  // must finish the same workload later.
  EXPECT_LT(r_wide.sim_time_us, r_narrow.sim_time_us);
}

TEST(Explorer, ParallelSweepMatchesSequentialBitExactly) {
  Explorer ex(two_stream_factory(5, 96));
  const auto cands = grid_candidates();
  const Time budget = 200_ms;
  const auto seq = ex.sweep(cands, budget);
  const auto par = ex.sweep_parallel(cands, budget, 4);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].platform, seq[i].platform) << i;
    EXPECT_EQ(par[i].completed, seq[i].completed) << seq[i].platform;
    // Simulated metrics must be bit-identical — each worker runs its own
    // Simulator from fresh state, so thread interleaving cannot perturb
    // simulated time, traffic, or latency.
    EXPECT_EQ(par[i].sim_time_us, seq[i].sim_time_us) << seq[i].platform;
    EXPECT_EQ(par[i].transactions, seq[i].transactions) << seq[i].platform;
    EXPECT_EQ(par[i].bytes, seq[i].bytes) << seq[i].platform;
    EXPECT_EQ(par[i].mean_latency_ns, seq[i].mean_latency_ns)
        << seq[i].platform;
    // The distribution metrics are simulated results too: bit-identical.
    EXPECT_EQ(par[i].p50_latency_ns, seq[i].p50_latency_ns)
        << seq[i].platform;
    EXPECT_EQ(par[i].p95_latency_ns, seq[i].p95_latency_ns)
        << seq[i].platform;
    EXPECT_EQ(par[i].p99_latency_ns, seq[i].p99_latency_ns)
        << seq[i].platform;
    EXPECT_EQ(par[i].mean_queue_ns, seq[i].mean_queue_ns) << seq[i].platform;
    EXPECT_EQ(par[i].bus_utilization, seq[i].bus_utilization)
        << seq[i].platform;
  }
}

TEST(Explorer, WorkloadGridRowsArePlatformMajorAndComplete) {
  Explorer ex;
  const auto plats = default_candidates();
  const auto loads = workload_candidates();
  const auto rows = ex.sweep(plats, loads, 200_ms);
  ASSERT_EQ(rows.size(), plats.size() * loads.size());
  for (std::size_t pi = 0; pi < plats.size(); ++pi) {
    for (std::size_t wi = 0; wi < loads.size(); ++wi) {
      const auto& r = rows[pi * loads.size() + wi];
      EXPECT_EQ(r.platform, plats[pi].name);
      EXPECT_EQ(r.workload, loads[wi].name);
      EXPECT_TRUE(r.completed) << r.platform << "/" << r.workload;
      EXPECT_GT(r.transactions, 0u) << r.platform << "/" << r.workload;
    }
  }
}

TEST(Explorer, WorkloadChoiceChangesTiming) {
  // The same platform must rank workloads differently — otherwise the
  // new axis adds rows but no information.
  Explorer ex;
  const auto loads = workload_candidates();
  const auto rows = ex.sweep({Platform{}}, loads, 200_ms);
  std::set<double> times;
  for (const auto& r : rows) times.insert(r.sim_time_us);
  EXPECT_EQ(times.size(), rows.size()) << "workloads are indistinguishable";
}

// The acceptance bar for the workload axis: the atomic 40-platform x
// 5-workload grid (200 rows, banked included) is bit-identical between
// the sequential sweep and a 4-thread parallel sweep. (The split axis is
// pinned to depth 1 here to keep this anchor's platform list at its
// historical size; the split-mode platforms get the same
// seq-vs-parallel guarantee from
// Explorer.ParallelSweepMatchesSequentialBitExactly.)
TEST(Explorer, WorkloadGrid200RowsParallelMatchesSequentialBitExactly) {
  Explorer ex;
  GridSpec atomic_spec;
  atomic_spec.max_outstanding = {1};
  atomic_spec.fast_targets = {false};  // keep the historical 40 platforms
  const auto plats = grid_candidates(atomic_spec);
  const auto loads = workload_candidates();
  ASSERT_EQ(plats.size() * loads.size(), 200u);
  const Time budget = 200_ms;
  const auto seq = ex.sweep(plats, loads, budget);
  const auto par = ex.sweep_parallel(plats, loads, budget, 4);
  ASSERT_EQ(seq.size(), 200u);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].platform, seq[i].platform) << i;
    EXPECT_EQ(par[i].workload, seq[i].workload) << i;
    EXPECT_EQ(par[i].completed, seq[i].completed) << i;
    EXPECT_EQ(par[i].sim_time_us, seq[i].sim_time_us)
        << seq[i].platform << "/" << seq[i].workload;
    EXPECT_EQ(par[i].transactions, seq[i].transactions)
        << seq[i].platform << "/" << seq[i].workload;
    EXPECT_EQ(par[i].bytes, seq[i].bytes)
        << seq[i].platform << "/" << seq[i].workload;
    EXPECT_EQ(par[i].mean_latency_ns, seq[i].mean_latency_ns)
        << seq[i].platform << "/" << seq[i].workload;
    EXPECT_EQ(par[i].p95_latency_ns, seq[i].p95_latency_ns)
        << seq[i].platform << "/" << seq[i].workload;
    EXPECT_EQ(par[i].p99_latency_ns, seq[i].p99_latency_ns)
        << seq[i].platform << "/" << seq[i].workload;
    EXPECT_EQ(par[i].mean_queue_ns, seq[i].mean_queue_ns)
        << seq[i].platform << "/" << seq[i].workload;
    EXPECT_EQ(par[i].bus_utilization, seq[i].bus_utilization)
        << seq[i].platform << "/" << seq[i].workload;
  }
}

namespace {

// Traffic signature of one grid cell: logical SHIP traffic plus the bus
// write traffic. Bus *reads* are excluded on purpose — the SHIP master
// wrapper polls RSTATUS on a timer, so the read count is a function of
// timing and legitimately differs between an atomic platform and its
// split counterpart. Writes (data bursts, commits, acks) and the SHIP
// rows are the conserved quantities.
struct TrafficSignature {
  std::uint64_t ship_count = 0, ship_bytes = 0;
  std::uint64_t write_count = 0, write_bytes = 0;
  bool completed = false;
};

TrafficSignature run_cell(const core::Platform& p,
                          const workload::WorkloadCase& w) {
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  w.factory(graph, owned);
  graph.discover_roles();
  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, p, core::AbstractionLevel::Cam);
  TrafficSignature sig;
  sig.completed = ms->run_until_done(200_ms);
  for (const auto& r : ms->txn_log().records()) {
    switch (r.kind) {
      case trace::TxnKind::Send:
      case trace::TxnKind::Request:
      case trace::TxnKind::Reply:
        ++sig.ship_count;
        sig.ship_bytes += r.bytes;
        break;
      case trace::TxnKind::Write:
        ++sig.write_count;
        sig.write_bytes += r.bytes;
        break;
      case trace::TxnKind::Read:
        break;  // includes timer-driven RSTATUS polls: not conserved
    }
  }
  return sig;
}

}  // namespace

// Grid-wide conservation property: on every platform of the default
// 68-platform grid x every canonical workload, the split/OoO points
// move exactly the traffic their atomic counterpart moves — split mode
// may reorder and pipeline, but it must not create, lose, or resize
// messages or bus writes. (The depth-1 bit-identity to seed *timing* is
// pinned separately by
// CamSplit.MaxOutstandingOneIsBitIdenticalToSeedTiming.)
TEST(Explorer, GridConservesTrafficAcrossSplitModeAndWorkloads) {
  const auto plats = grid_candidates();  // includes -split4 and -fast points
  const auto loads = workload_candidates();
  ASSERT_EQ(plats.size(), 108u);
  ASSERT_EQ(loads.size(), 5u);

  // "-splitN" / "-fast" strips to the plain atomic counterpart's name.
  auto base_name = [](const std::string& name) {
    for (const char* suffix : {"-split", "-fast"}) {
      const auto pos = name.rfind(suffix);
      if (pos != std::string::npos) return name.substr(0, pos);
    }
    return name;
  };

  std::map<std::pair<std::string, std::string>, TrafficSignature> atomic;
  for (const auto& p : plats) {
    if (p.split_txns || p.fast_targets) continue;
    for (const auto& w : loads) {
      TrafficSignature sig = run_cell(p, w);
      EXPECT_TRUE(sig.completed) << p.name << "/" << w.name;
      EXPECT_GT(sig.ship_count + sig.write_count, 0u)
          << p.name << "/" << w.name;
      atomic[{p.name, w.name}] = sig;
    }
  }
  std::size_t split_points = 0;
  std::size_t fast_points = 0;
  for (const auto& p : plats) {
    if (!p.split_txns && !p.fast_targets) continue;
    ++(p.split_txns ? split_points : fast_points);
    for (const auto& w : loads) {
      const TrafficSignature sig = run_cell(p, w);
      EXPECT_TRUE(sig.completed) << p.name << "/" << w.name;
      const auto it = atomic.find({base_name(p.name), w.name});
      ASSERT_NE(it, atomic.end()) << p.name;
      const TrafficSignature& a = it->second;
      EXPECT_EQ(sig.ship_count, a.ship_count) << p.name << "/" << w.name;
      EXPECT_EQ(sig.ship_bytes, a.ship_bytes) << p.name << "/" << w.name;
      EXPECT_EQ(sig.write_count, a.write_count) << p.name << "/" << w.name;
      EXPECT_EQ(sig.write_bytes, a.write_bytes) << p.name << "/" << w.name;
    }
  }
  EXPECT_EQ(split_points, 28u);  // 68 timing points - 40 atomic points
  EXPECT_EQ(fast_points, 40u);   // one -fast variant per atomic point
}

TEST(Explorer, PrintTableShowsWorkloadColumnOnlyWhenPresent) {
  Explorer ex(two_stream_factory(4, 32));
  const auto plain = ex.sweep({Platform{}}, 10_ms);
  std::ostringstream os_plain;
  Explorer::print_table(os_plain, plain);
  EXPECT_EQ(os_plain.str().find("workload"), std::string::npos);

  Explorer gx;
  const auto rows =
      gx.sweep({Platform{}}, workload_candidates(), 200_ms);
  std::ostringstream os;
  Explorer::print_table(os, rows);
  EXPECT_NE(os.str().find("workload"), std::string::npos);
  EXPECT_NE(os.str().find("bursty"), std::string::npos);
  EXPECT_NE(os.str().find("pipeline"), std::string::npos);
}

TEST(Explorer, ParallelSweepSingleThreadDegradesToSequential) {
  Explorer ex(two_stream_factory(4, 64));
  const auto cands = default_candidates();
  const auto rows = ex.sweep_parallel(cands, 50_ms, 1);
  ASSERT_EQ(rows.size(), cands.size());
  for (const auto& r : rows) EXPECT_TRUE(r.completed) << r.platform;
}

TEST(Explorer, ParallelSweepPropagatesWorkerExceptions) {
  Explorer ex(two_stream_factory(4, 64));
  // A mailbox window below one OCP word fails wrapper elaboration inside
  // the worker thread; the error must resurface on the calling thread.
  auto cands = default_candidates();
  Platform bad;
  bad.name = "bad-mailbox";
  bad.mailbox_window = 1;
  cands.insert(cands.begin() + 2, bad);
  EXPECT_THROW(ex.sweep_parallel(cands, 50_ms, 4), SimulationError);
}

TEST(Explorer, ParallelSweepPropagatesFactoryExceptions) {
  Explorer ex([](SystemGraph&,
                 std::vector<std::unique_ptr<ProcessingElement>>&) {
    throw std::runtime_error("factory boom");
  });
  EXPECT_THROW(ex.sweep_parallel(default_candidates(), 10_ms, 4),
               std::runtime_error);
}

TEST(Explorer, PrintTableSeparatorMatchesHeaderWidth) {
  // The rule line is computed from the rendered header, so it cannot
  // drift as columns are appended (it was a hard-coded 218 for a while).
  auto check = [](const std::vector<ExplorationRow>& rows) {
    std::ostringstream os;
    Explorer::print_table(os, rows);
    std::istringstream in(os.str());
    std::string header, rule;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, rule));
    EXPECT_EQ(rule, std::string(header.size(), '-'));
  };
  ExplorationRow plain;
  plain.platform = "a-platform-name-much-longer-than-the-minimum-column";
  check({plain});
  ExplorationRow with_wl = plain;
  with_wl.workload = "bursty";
  check({with_wl});
}

TEST(Explorer, GoodputCountsLateButDeliveredTimeoutPayloads) {
  // Spike-only faults + a tight watchdog: some transactions finish with
  // Status::Timeout — late, but the payload arrived (data_valid()).
  // Goodput must count those bytes; with no injected errors, statuses
  // are Ok or Timeout only, so goodput equals raw throughput exactly.
  // (The old Ok-only goodput was strictly lower whenever timeouts > 0.)
  Explorer ex(two_stream_factory(20, 256));
  Platform p;
  p.fault.name = "spiky";
  p.fault.seed = 7;
  p.fault.spike_rate = 0.3;
  p.fault.spike_cycles = 40;
  p.retry.name = "wd";
  p.retry.timeout = 300_ns;  // tight enough that spiked bursts miss it
  p.name = "plb-priority-10ns-64b-spiky-wd";
  const auto row = ex.evaluate(p, 50_ms);
  ASSERT_TRUE(row.completed);
  ASSERT_GT(row.timeouts, 0u);
  EXPECT_GT(row.error_rate, 0.0);  // timeouts still count as not-Ok
  EXPECT_EQ(row.aborted, 0u);
  EXPECT_GT(row.goodput_mbps, 0.0);
  EXPECT_DOUBLE_EQ(row.goodput_mbps,
                   static_cast<double>(row.bytes) / row.sim_time_us);
}
