// Tests for the tracing/statistics module: VCD output, accumulators,
// histograms, and the transaction logger.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "kernel/kernel.hpp"
#include "trace/stats.hpp"
#include "trace/txn_log.hpp"
#include "trace/vcd.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct TempVcd {
  std::string path;
  explicit TempVcd(const char* name)
      : path(std::string("/tmp/stlm_test_") + name + ".vcd") {}
  ~TempVcd() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Stats, AccumulatorMoments) {
  trace::Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  a.add(2.0);
  a.add(4.0);
  a.add(6.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
  EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, HistogramBinsAndClamping) {
  trace::Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.bin(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
}

TEST(Stats, StatSetCountersAndReport) {
  trace::StatSet s;
  s.count("transactions");
  s.count("transactions");
  s.count("bytes", 128);
  s.acc("latency").add(5.0);
  EXPECT_EQ(s.counter("transactions"), 2u);
  EXPECT_EQ(s.counter("bytes"), 128u);
  EXPECT_EQ(s.counter("missing"), 0u);
  std::ostringstream os;
  s.report(os, "test");
  EXPECT_NE(os.str().find("transactions"), std::string::npos);
  EXPECT_NE(os.str().find("latency"), std::string::npos);
}

TEST(TxnLog, SummaryAndCsv) {
  trace::TxnLogger log;
  log.record("ch0", trace::TxnKind::Send, 64, 0_ns, 100_ns);
  log.record("ch1", trace::TxnKind::Read, 32, 50_ns, 250_ns);
  const auto s = log.summarize();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.bytes, 96u);
  EXPECT_DOUBLE_EQ(s.mean_latency_ns, 150.0);
  EXPECT_DOUBLE_EQ(s.max_latency_ns, 200.0);
  std::ostringstream os;
  log.dump_csv(os);
  EXPECT_NE(os.str().find("ch0,send,64"), std::string::npos);
  EXPECT_NE(os.str().find("ch1,read,32"), std::string::npos);
}

TEST(TxnLog, DisabledLoggerRecordsNothing) {
  trace::TxnLogger log;
  log.set_enabled(false);
  log.record("ch", trace::TxnKind::Send, 1, 0_ns, 1_ns);
  EXPECT_EQ(log.size(), 0u);
}

TEST(Vcd, EmitsHeaderAndChanges) {
  TempVcd tmp("header");
  Simulator sim;
  Signal<bool> flag(sim, "flag", false);
  Signal<std::uint8_t> bus(sim, "bus", 0);
  {
    trace::VcdWriter vcd(sim, tmp.path);
    vcd.add(flag, "flag");
    vcd.add(bus, "bus");
    EXPECT_EQ(vcd.signal_count(), 2u);
    sim.spawn_thread("driver", [&] {
      wait(10_ns);
      flag.write(true);
      bus.write(0xa5);
      wait(10_ns);
      flag.write(false);
    });
    sim.run();
  }
  const std::string text = read_file(tmp.path);
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 8 \" bus $end"), std::string::npos);
  EXPECT_NE(text.find("#10000"), std::string::npos);  // 10 ns in ps
  EXPECT_NE(text.find("b10100101 \""), std::string::npos);
  EXPECT_NE(text.find("1!"), std::string::npos);
  EXPECT_NE(text.find("0!"), std::string::npos);
}

TEST(Vcd, ClockWaveHasAllEdges) {
  TempVcd tmp("clock");
  Simulator sim;
  Clock clk(sim, "clk", 10_ns);
  trace::VcdWriter vcd(sim, tmp.path);
  vcd.add(clk.signal(), "clk");
  sim.run_for(45_ns);
  vcd.flush();
  const std::string text = read_file(tmp.path);
  // Rising edges at 0, 10000, 20000, 30000, 40000 ps.
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#40000"), std::string::npos);
  // Count value changes of signal '!': the initial-value dump plus
  // 9 edges (5 rising + 4 falling within 45 ns).
  int changes = 0;
  for (std::size_t pos = 0; (pos = text.find("!\n", pos)) != std::string::npos;
       ++pos) {
    ++changes;
  }
  EXPECT_EQ(changes, 10);
}

TEST(Vcd, SampledValueCallback) {
  TempVcd tmp("sampled");
  Simulator sim;
  int fsm_state = 0;
  trace::VcdWriter vcd(sim, tmp.path);
  vcd.add_sampled("fsm", 4, [&] { return static_cast<std::uint64_t>(fsm_state); });
  sim.spawn_thread("fsm", [&] {
    for (int i = 1; i <= 3; ++i) {
      wait(5_ns);
      fsm_state = i;
    }
  });
  sim.run();
  vcd.flush();
  const std::string text = read_file(tmp.path);
  EXPECT_NE(text.find("b11 !"), std::string::npos);  // state 3
}

TEST(Vcd, UnwritableFileThrows) {
  Simulator sim;
  EXPECT_THROW(trace::VcdWriter(sim, "/nonexistent_dir/x.vcd"),
               SimulationError);
}

TEST(Vcd, AddAfterRunThrows) {
  TempVcd tmp("late");
  Simulator sim;
  Signal<bool> s(sim, "s", false);
  trace::VcdWriter vcd(sim, tmp.path);
  vcd.add(s, "s");
  sim.spawn_thread("t", [&] { wait(1_ns); });
  sim.run();
  Signal<bool> s2(sim, "s2", false);
  EXPECT_THROW(vcd.add(s2, "s2"), SimulationError);
}
