// Tests for the tracing/statistics module: VCD output, accumulators,
// histograms, and the transaction logger.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "kernel/kernel.hpp"
#include "trace/channel_stats.hpp"
#include "trace/stats.hpp"
#include "trace/txn_log.hpp"
#include "trace/vcd.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct TempVcd {
  std::string path;
  explicit TempVcd(const char* name)
      : path(std::string("/tmp/stlm_test_") + name + ".vcd") {}
  ~TempVcd() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Stats, AccumulatorMoments) {
  trace::Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  a.add(2.0);
  a.add(4.0);
  a.add(6.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);
  EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, AccumulatorStddevSurvivesLargeOffset) {
  // Samples with a tiny spread riding on a huge mean: the old
  // sum-of-squares variance cancelled catastrophically here (returning 0
  // or NaN); Welford's online algorithm keeps full precision.
  trace::Accumulator a;
  const double offset = 1e9;
  a.add(offset + 1.0);
  a.add(offset + 2.0);
  a.add(offset + 3.0);
  EXPECT_FALSE(std::isnan(a.stddev()));
  EXPECT_NEAR(a.stddev(), 1.0, 1e-6);
  EXPECT_NEAR(a.mean(), offset + 2.0, 1e-3);

  trace::Accumulator b;
  b.add(1e15);
  b.add(1e15 + 4.0);
  EXPECT_NEAR(b.stddev(), 4.0 / std::sqrt(2.0), 1e-3);
}

TEST(Stats, HistogramDegenerateConstructionIsSafe) {
  // bins == 0 used to divide by zero in add(); hi <= lo used to call
  // std::clamp with an inverted range (both undefined behavior). The
  // constructor now repairs the shape.
  {
    trace::Histogram h(0.0, 10.0, 0);
    h.add(5.0);
    EXPECT_EQ(h.bins(), 1u);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.bin(0), 1u);
  }
  {
    trace::Histogram h(5.0, 5.0, 4);  // hi == lo
    h.add(4.0);
    h.add(5.0);
    h.add(6.0);
    EXPECT_EQ(h.total(), 3u);
  }
  {
    trace::Histogram h(10.0, -10.0, 4);  // inverted
    h.add(0.0);
    EXPECT_EQ(h.total(), 1u);
  }
}

TEST(Stats, HistogramHugeValidRangeStillBins) {
  // A valid range whose span overflows double (hi - lo == inf) must not
  // be treated as degenerate, and samples must land in their true bins.
  trace::Histogram h(-1e308, 1e308, 10);
  h.add(0.0);       // dead center -> bin 5
  h.add(-9e307);    // near the bottom -> bin 0
  h.add(9e307);     // near the top -> bin 9
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Stats, HistogramExtremeValuesClampIntoEdgeBins) {
  trace::Histogram h(0.0, 1.0, 8);
  h.add(1e308);   // scaled value overflows int64 — must clamp, not UB
  h.add(-1e308);
  h.add(std::numeric_limits<double>::quiet_NaN());  // lands in bin 0
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin(7), 1u);
  EXPECT_EQ(h.bin(0), 2u);
}

TEST(Stats, StatSetReportRestoresStreamFormatting) {
  trace::StatSet s;
  s.count("transactions", 7);
  s.acc("latency").add(5.0);
  std::ostringstream os;
  const auto flags = os.flags();
  const auto precision = os.precision();
  s.report(os, "fmt");
  // report() uses std::left/std::setw; the caller's stream state must
  // come back untouched.
  EXPECT_EQ(os.flags(), flags);
  EXPECT_EQ(os.precision(), precision);
}

TEST(Stats, HistogramBinsAndClamping) {
  trace::Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.bin(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
}

TEST(Stats, StatSetCountersAndReport) {
  trace::StatSet s;
  s.count("transactions");
  s.count("transactions");
  s.count("bytes", 128);
  s.acc("latency").add(5.0);
  EXPECT_EQ(s.counter("transactions"), 2u);
  EXPECT_EQ(s.counter("bytes"), 128u);
  EXPECT_EQ(s.counter("missing"), 0u);
  std::ostringstream os;
  s.report(os, "test");
  EXPECT_NE(os.str().find("transactions"), std::string::npos);
  EXPECT_NE(os.str().find("latency"), std::string::npos);
}

TEST(TxnLog, SummaryAndCsv) {
  trace::TxnLogger log;
  log.record("ch0", trace::TxnKind::Send, 64, 0_ns, 100_ns);
  log.record("ch1", trace::TxnKind::Read, 32, 50_ns, 250_ns);
  const auto s = log.summarize();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.bytes, 96u);
  EXPECT_DOUBLE_EQ(s.mean_latency_ns, 150.0);
  EXPECT_DOUBLE_EQ(s.max_latency_ns, 200.0);
  // Phase-less rows: grant == start, so the whole latency is service.
  EXPECT_DOUBLE_EQ(s.mean_queue_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_service_ns, 150.0);
  std::ostringstream os;
  log.dump_csv(os);
  EXPECT_NE(os.str().find("ch0,send,64"), std::string::npos);
  EXPECT_NE(os.str().find("ch1,read,32"), std::string::npos);
}

// The queue/service split decomposes end-to-end latency per record:
// latency = queue (issue->grant) + service (grant->completion). A row
// that waited 70 ns for arbitration is not a slow bus — its service
// span says how long the interconnect itself took.
TEST(TxnLog, SummarySplitsQueueingFromService) {
  trace::TxnLogger log;
  // issue at 0, granted at 70, data at 80, complete at 100.
  log.record("bus", trace::TxnKind::Write, 64, 0_ns, 100_ns, 70_ns, 80_ns);
  // issue at 200, granted immediately, complete at 230.
  log.record("bus", trace::TxnKind::Read, 4, 200_ns, 230_ns, 200_ns, 210_ns);
  const auto s = log.summarize();
  EXPECT_DOUBLE_EQ(s.mean_latency_ns, 65.0);   // (100 + 30) / 2
  EXPECT_DOUBLE_EQ(s.mean_queue_ns, 35.0);     // (70 + 0) / 2
  EXPECT_DOUBLE_EQ(s.max_queue_ns, 70.0);
  EXPECT_DOUBLE_EQ(s.mean_service_ns, 30.0);   // (30 + 30) / 2
  EXPECT_DOUBLE_EQ(s.max_service_ns, 30.0);
  // Per record the split is exact: queue + service == latency.
  for (const auto& r : log.records()) {
    EXPECT_DOUBLE_EQ(r.queue_ns() + r.service_ns(), r.latency_ns());
  }
}

TEST(TxnLog, CsvRoundTripIsBitIdentical) {
  trace::TxnLogger log;
  // Channel names with CSV metacharacters, zero-length payloads,
  // femtosecond-granularity timestamps, and phase-accurate rows all have
  // to survive the trip.
  log.record("plain", trace::TxnKind::Send, 64, 0_ns, 100_ns);
  log.record("with,comma", trace::TxnKind::Request, 32, 1_fs, 3_fs);
  log.record("with\"quote", trace::TxnKind::Reply, 0, 50_ns, 250_ns);
  log.record("both\",\"evil", trace::TxnKind::Write, 7, 10_us, 11_us);
  log.record("multi\nline\r\nname", trace::TxnKind::Send, 9, 1_ns, 2_ns);
  log.record(log.intern("plain"), trace::TxnKind::Read, /*txn_id=*/12345,
             256, 5_ns, 6_ns);
  // Split-bus rows: grant and data-phase stamps diverge from start.
  log.record("plb", trace::TxnKind::Write, 64, 10_ns, 200_ns, 40_ns, 150_ns);
  log.record(log.intern("plb"), trace::TxnKind::Read, /*txn_id=*/777, 16,
             0_ns, 90_ns, 20_ns, 70_ns);

  std::ostringstream os;
  log.dump_csv(os);

  trace::TxnLogger back;
  std::istringstream is(os.str());
  back.load_csv(is);

  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& a = log.records()[i];
    const auto& b = back.records()[i];
    EXPECT_EQ(log.channel_name(a.channel), back.channel_name(b.channel)) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.txn, b.txn) << i;
    EXPECT_EQ(a.bytes, b.bytes) << i;
    EXPECT_EQ(a.start, b.start) << i;
    EXPECT_EQ(a.grant, b.grant) << i;
    EXPECT_EQ(a.data, b.data) << i;
    EXPECT_EQ(a.end, b.end) << i;
  }

  // And the round trip is a fixed point: dumping again is byte-identical.
  std::ostringstream os2;
  back.dump_csv(os2);
  EXPECT_EQ(os.str(), os2.str());
}

// Format back-compat: pre-phase (v1, 7-column) CSVs stay loadable, with
// the missing phase columns defaulted to grant = data = start.
TEST(TxnLog, LoadCsvAcceptsV1HeaderWithDefaultedPhases) {
  const std::string v1 =
      "channel,kind,bytes,start_fs,end_fs,latency_ns,txn\n"
      "ch0,send,64,1000000,2000000,1,9\n"
      "ch1,read,32,0,500000,0.5,0\n";
  trace::TxnLogger log;
  std::istringstream is(v1);
  log.load_csv(is);
  ASSERT_EQ(log.size(), 2u);
  const auto& r = log.records()[0];
  EXPECT_EQ(r.start, 1_ns);
  EXPECT_EQ(r.end, 2_ns);
  EXPECT_EQ(r.grant, r.start);
  EXPECT_EQ(r.data, r.start);
  EXPECT_EQ(r.txn, 9u);
  EXPECT_DOUBLE_EQ(r.queue_ns(), 0.0);

  // A v1 trace re-dumps as v2 (the loader upgraded the records).
  std::ostringstream os;
  log.dump_csv(os);
  EXPECT_NE(os.str().find("grant_fs,data_fs"), std::string::npos);
  EXPECT_NE(os.str().find("ch0,send,64,1000000,1000000,1000000,2000000"),
            std::string::npos);
}

TEST(TxnLog, LoadCsvRejectsMalformedInput) {
  const std::string header =
      "channel,kind,bytes,start_fs,end_fs,latency_ns,txn\n";  // v1
  const std::string header2 =
      "channel,kind,bytes,start_fs,grant_fs,data_fs,end_fs,latency_ns,txn\n";
  auto load = [](const std::string& text) {
    trace::TxnLogger log;
    std::istringstream is(text);
    log.load_csv(is);
    return log;
  };
  // Good baselines parse (both schema versions).
  EXPECT_EQ(load(header + "ch,send,4,0,1000000,0.001,7\n").size(), 1u);
  EXPECT_EQ(load(header2 + "ch,send,4,0,10,20,1000000,0.001,7\n").size(), 1u);
  // Empty input / wrong header.
  EXPECT_THROW(load(""), SimulationError);
  EXPECT_THROW(load("channel,kind\nch,send\n"), SimulationError);
  // Wrong field count for either version.
  EXPECT_THROW(load(header + "ch,send,4,0,1\n"), SimulationError);
  EXPECT_THROW(load(header2 + "ch,send,4,0,1,0.0,0\n"), SimulationError);
  // Unknown kind.
  EXPECT_THROW(load(header + "ch,sned,4,0,1,0.0,0\n"), SimulationError);
  // Non-numeric / negative numerics.
  EXPECT_THROW(load(header + "ch,send,x,0,1,0.0,0\n"), SimulationError);
  EXPECT_THROW(load(header + "ch,send,4,-1,1,0.0,0\n"), SimulationError);
  EXPECT_THROW(load(header + "ch,send,4,0,1,zz,0\n"), SimulationError);
  EXPECT_THROW(load(header2 + "ch,send,4,0,x,0,1,0.0,0\n"), SimulationError);
  EXPECT_THROW(load(header2 + "ch,send,4,0,0,y,1,0.0,0\n"), SimulationError);
  // end before start.
  EXPECT_THROW(load(header + "ch,send,4,100,50,0.0,0\n"), SimulationError);
  // Phase order: need start <= grant <= data <= end.
  EXPECT_THROW(load(header2 + "ch,send,4,100,50,100,200,0.0,0\n"),
               SimulationError);
  EXPECT_THROW(load(header2 + "ch,send,4,0,80,40,200,0.0,0\n"),
               SimulationError);
  EXPECT_THROW(load(header2 + "ch,send,4,0,10,300,200,0.0,0\n"),
               SimulationError);
  // Broken quoting.
  EXPECT_THROW(load(header + "\"ch,send,4,0,1,0.0,0\n"), SimulationError);
  EXPECT_THROW(load(header + "\"ch\"x,send,4,0,1,0.0,0\n"), SimulationError);
  // A failed load leaves the logger empty, not half-filled.
  trace::TxnLogger log;
  std::istringstream is(header + "ch,send,4,0,1,0.0,0\nch,BAD,4,0,1,0.0,0\n");
  EXPECT_THROW(log.load_csv(is), SimulationError);
  EXPECT_EQ(log.size(), 0u);
}

// ------------------------------------------------- latency distributions --

TEST(ChannelStats, PercentileIsNearestRank) {
  std::vector<double> s{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(trace::percentile(s, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(trace::percentile(s, 95.0), 100.0);
  EXPECT_DOUBLE_EQ(trace::percentile(s, 99.0), 100.0);
  EXPECT_DOUBLE_EQ(trace::percentile(s, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(trace::percentile(s, 100.0), 100.0);
  std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(trace::percentile(one, 50.0), 42.0);
  std::vector<double> none;
  EXPECT_DOUBLE_EQ(trace::percentile(none, 50.0), 0.0);
}

TEST(ChannelStats, LatencyDistDerivesPercentilesAndQueueing) {
  trace::TxnLogger log;
  // 20 rows, latencies 10..200 ns; every row queued 1/4 of its latency.
  for (int i = 1; i <= 20; ++i) {
    const Time start = Time::us(static_cast<std::uint64_t>(i));
    const Time grant = start + Time::ns(static_cast<std::uint64_t>(i * 10) / 4);
    const Time end = start + Time::ns(static_cast<std::uint64_t>(i * 10));
    log.record("bus", trace::TxnKind::Write, 64, start, end, grant, grant);
  }
  const auto d = trace::latency_dist(log.records());
  EXPECT_EQ(d.count, 20u);
  EXPECT_DOUBLE_EQ(d.p50_ns, 100.0);
  EXPECT_DOUBLE_EQ(d.p95_ns, 190.0);
  EXPECT_DOUBLE_EQ(d.p99_ns, 200.0);
  EXPECT_DOUBLE_EQ(d.max_ns, 200.0);
  EXPECT_DOUBLE_EQ(d.mean_ns, 105.0);
  EXPECT_NEAR(d.mean_queue_ns, 105.0 / 4, 0.5);  // integer division rounding
  // The histogram reuses trace::Histogram and covers every sample.
  EXPECT_EQ(d.hist.total(), 20u);
  EXPECT_EQ(d.hist.bins(), trace::LatencyDist::kHistBins);
}

TEST(ChannelStats, PerChannelStatsGroupAndPrint) {
  trace::TxnLogger log;
  log.record("fast", trace::TxnKind::Send, 8, 0_ns, 10_ns);
  log.record("fast", trace::TxnKind::Send, 8, 20_ns, 40_ns);
  log.record("slow", trace::TxnKind::Write, 64, 0_ns, 400_ns, 300_ns, 350_ns);
  const auto rows = trace::per_channel_stats(log);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].channel, "fast");
  EXPECT_EQ(rows[0].dist.count, 2u);
  EXPECT_DOUBLE_EQ(rows[0].dist.p50_ns, 10.0);
  EXPECT_EQ(rows[1].channel, "slow");
  EXPECT_DOUBLE_EQ(rows[1].dist.mean_queue_ns, 300.0);
  EXPECT_DOUBLE_EQ(rows[1].dist.mean_service_ns, 100.0);

  std::ostringstream os;
  const auto flags = os.flags();
  trace::print_channel_table(os, rows);
  EXPECT_NE(os.str().find("p95_ns"), std::string::npos);
  EXPECT_NE(os.str().find("fast"), std::string::npos);
  EXPECT_NE(os.str().find("slow"), std::string::npos);
  EXPECT_EQ(os.flags(), flags);  // formatting restored
}

TEST(TxnLog, InternIsStableAndDeduplicates) {
  trace::TxnLogger log;
  const auto a = log.intern("alpha");
  const auto b = log.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(log.intern("alpha"), a);
  EXPECT_EQ(log.intern("beta"), b);
  EXPECT_EQ(log.channel_name(a), "alpha");
  EXPECT_EQ(log.channel_name(b), "beta");
  // Many channels stay consistent (exercises the hash index rather than
  // the old linear scan).
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 500; ++i) ids.push_back(log.intern("ch" + std::to_string(i)));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(log.intern("ch" + std::to_string(i)), ids[static_cast<std::size_t>(i)]);
  }
}

TEST(TxnLog, DisabledLoggerRecordsNothing) {
  trace::TxnLogger log;
  log.set_enabled(false);
  log.record("ch", trace::TxnKind::Send, 1, 0_ns, 1_ns);
  EXPECT_EQ(log.size(), 0u);
}

TEST(Vcd, EmitsHeaderAndChanges) {
  TempVcd tmp("header");
  Simulator sim;
  Signal<bool> flag(sim, "flag", false);
  Signal<std::uint8_t> bus(sim, "bus", 0);
  {
    trace::VcdWriter vcd(sim, tmp.path);
    vcd.add(flag, "flag");
    vcd.add(bus, "bus");
    EXPECT_EQ(vcd.signal_count(), 2u);
    sim.spawn_thread("driver", [&] {
      wait(10_ns);
      flag.write(true);
      bus.write(0xa5);
      wait(10_ns);
      flag.write(false);
    });
    sim.run();
  }
  const std::string text = read_file(tmp.path);
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 8 \" bus $end"), std::string::npos);
  EXPECT_NE(text.find("#10000"), std::string::npos);  // 10 ns in ps
  EXPECT_NE(text.find("b10100101 \""), std::string::npos);
  EXPECT_NE(text.find("1!"), std::string::npos);
  EXPECT_NE(text.find("0!"), std::string::npos);
}

TEST(Vcd, ClockWaveHasAllEdges) {
  TempVcd tmp("clock");
  Simulator sim;
  Clock clk(sim, "clk", 10_ns);
  trace::VcdWriter vcd(sim, tmp.path);
  vcd.add(clk.signal(), "clk");
  sim.run_for(45_ns);
  vcd.flush();
  const std::string text = read_file(tmp.path);
  // Rising edges at 0, 10000, 20000, 30000, 40000 ps.
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#40000"), std::string::npos);
  // Count value changes of signal '!': the initial-value dump plus
  // 9 edges (5 rising + 4 falling within 45 ns).
  int changes = 0;
  for (std::size_t pos = 0; (pos = text.find("!\n", pos)) != std::string::npos;
       ++pos) {
    ++changes;
  }
  EXPECT_EQ(changes, 10);
}

TEST(Vcd, SampledValueCallback) {
  TempVcd tmp("sampled");
  Simulator sim;
  int fsm_state = 0;
  trace::VcdWriter vcd(sim, tmp.path);
  vcd.add_sampled("fsm", 4, [&] { return static_cast<std::uint64_t>(fsm_state); });
  sim.spawn_thread("fsm", [&] {
    for (int i = 1; i <= 3; ++i) {
      wait(5_ns);
      fsm_state = i;
    }
  });
  sim.run();
  vcd.flush();
  const std::string text = read_file(tmp.path);
  EXPECT_NE(text.find("b11 !"), std::string::npos);  // state 3
}

TEST(Vcd, UnwritableFileThrows) {
  Simulator sim;
  EXPECT_THROW(trace::VcdWriter(sim, "/nonexistent_dir/x.vcd"),
               SimulationError);
}

TEST(Vcd, AddAfterRunThrows) {
  TempVcd tmp("late");
  Simulator sim;
  Signal<bool> s(sim, "s", false);
  trace::VcdWriter vcd(sim, tmp.path);
  vcd.add(s, "s");
  sim.spawn_thread("t", [&] { wait(1_ns); });
  sim.run();
  Signal<bool> s2(sim, "s2", false);
  EXPECT_THROW(vcd.add(s2, "s2"), SimulationError);
}
