// Failure-semantics tests: transaction status lifecycle, the seeded
// fault injector, initiator-side retry/timeout policies, QoS arbiters —
// and the regression guards that pin zero-fault configurations to the
// seed's bit-identical timing and same-seed fault runs to byte-identical
// artifacts.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cam/cam.hpp"
#include "explore/explore.hpp"
#include "fault/fault.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"
#include "ocp/memory.hpp"
#include "workload/validate.hpp"
#include "workload/workload.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::time_literals;

namespace {

// Target that errors the first `fails` accesses, then answers Ok — the
// deterministic way to exercise exact retry counts.
class FlakySlave final : public ocp::ocp_tl_slave_if {
public:
  explicit FlakySlave(int fails) : fails_(fails) {}
  using ocp::ocp_tl_slave_if::handle;
  void handle(Txn& txn) override {
    ++accesses_;
    if (fails_ > 0) {
      --fails_;
      txn.respond_error();
      return;
    }
    if (txn.op == Txn::Op::Read) {
      txn.respond_buffer(txn.payload_bytes());
    } else {
      txn.respond_ok();
    }
  }
  int accesses() const { return accesses_; }

private:
  int fails_;
  int accesses_ = 0;
};

// One blocking write through a RetryPolicy on a private PLB; returns the
// completion time. `fails` errors precede success at the target.
struct PolicyRun {
  Time end;
  Txn::Status status;
  std::uint32_t retries;
  std::uint64_t errors_seen;
  std::uint64_t retries_issued;
  std::uint64_t aborts;
  std::uint64_t timeouts;
};

PolicyRun run_policy_write(int fails, fault::RetrySpec spec,
                           Time slave_latency = Time::zero()) {
  Simulator sim;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  FlakySlave flaky(fails);
  ocp::MemorySlave mem("mem", 0x10000, 1 << 12, slave_latency);
  bus.attach_slave(flaky, {0, 1 << 12}, "flaky");
  bus.attach_slave(mem, {0x10000, 1 << 12}, "mem");
  const std::size_t m = bus.add_master("m0");
  RetryPolicy policy(sim, "retry0", std::move(spec), bus.cycle());
  policy.bind(bus.master_port(m));

  PolicyRun out{};
  sim.spawn_thread("pe", [&] {
    std::uint8_t payload[16] = {0xab};
    Txn t;
    t.begin_write(slave_latency.is_zero() ? 0x0 : 0x10000, payload,
                  sizeof payload);
    policy.transport(t);
    out.end = sim.now();
    out.status = t.status;
    out.retries = t.retries;
  });
  sim.run();
  out.errors_seen = policy.errors_seen();
  out.retries_issued = policy.retries_issued();
  out.aborts = policy.aborts();
  out.timeouts = policy.timeouts_observed();
  return out;
}

}  // namespace

// ------------------------------------------------ retry state machine ----

TEST(RetryPolicy, ErrorFreeTransportIsTransparent) {
  fault::RetrySpec spec;
  spec.max_retries = 3;
  const auto r = run_policy_write(0, spec);
  EXPECT_EQ(r.status, Txn::Status::Ok);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.errors_seen, 0u);
  EXPECT_EQ(r.retries_issued, 0u);
  EXPECT_EQ(r.aborts, 0u);
}

TEST(RetryPolicy, RetriesUntilSuccessAndCountsAttempts) {
  fault::RetrySpec spec;
  spec.max_retries = 3;
  spec.backoff_cycles = 2;
  const auto r = run_policy_write(2, spec);
  EXPECT_EQ(r.status, Txn::Status::Ok);
  EXPECT_EQ(r.retries, 2u);
  EXPECT_EQ(r.errors_seen, 2u);
  EXPECT_EQ(r.retries_issued, 2u);
  EXPECT_EQ(r.aborts, 0u);
}

TEST(RetryPolicy, BackoffIsExponentialInSimulatedTime) {
  // Identical scenarios except the backoff knob. Zero backoff re-issues
  // back to back inside the grant window, so comparing against it mixes
  // re-arbitration setup cycles into the delta; two non-zero settings
  // see the same grant pattern, and widening the knob from 2 to 4 must
  // add exactly ((4<<0)+(4<<1)) - ((2<<0)+(2<<1)) = 6 bus cycles at
  // 10 ns across the two retries — the exponential schedule, sharp.
  fault::RetrySpec none;
  none.max_retries = 3;
  none.backoff_cycles = 0;
  fault::RetrySpec narrow = none;
  narrow.backoff_cycles = 2;
  fault::RetrySpec wide = none;
  wide.backoff_cycles = 4;
  const auto z = run_policy_write(2, none);
  const auto a = run_policy_write(2, narrow);
  const auto b = run_policy_write(2, wide);
  ASSERT_EQ(z.status, Txn::Status::Ok);
  ASSERT_EQ(a.status, Txn::Status::Ok);
  ASSERT_EQ(b.status, Txn::Status::Ok);
  EXPECT_EQ(b.end - a.end, Time::ns(10) * 6);
  EXPECT_GT(a.end, z.end);  // backoff can only defer completion
}

TEST(RetryPolicy, AbortsAfterExhaustionAndStampsAborted) {
  fault::RetrySpec spec;
  spec.max_retries = 2;
  spec.backoff_cycles = 1;
  const auto r = run_policy_write(/*fails=*/1000, spec);
  EXPECT_EQ(r.status, Txn::Status::Aborted);
  EXPECT_EQ(r.retries, 2u);       // both budgeted re-issues happened
  EXPECT_EQ(r.errors_seen, 3u);   // initial attempt + 2 retries all errored
  EXPECT_EQ(r.retries_issued, 2u);
  EXPECT_EQ(r.aborts, 1u);
}

TEST(RetryPolicy, MaxRetriesZeroPassesErrorsThrough) {
  fault::RetrySpec spec;
  spec.max_retries = 0;
  spec.timeout = 1_ms;  // watchdog-only policy
  const auto r = run_policy_write(1, spec);
  EXPECT_EQ(r.status, Txn::Status::Error);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.errors_seen, 1u);
  EXPECT_EQ(r.aborts, 0u);
}

TEST(RetryPolicy, WatchdogPromotesLateCompletionToTimeout) {
  // Slave takes 1 us; the watchdog deadline is 200 ns. The access still
  // completes with valid data — late-but-correct reports Timeout, keeps
  // data_valid(), and is NOT retried.
  fault::RetrySpec spec;
  spec.max_retries = 3;
  spec.timeout = 200_ns;
  const auto r = run_policy_write(0, spec, /*slave_latency=*/1_us);
  EXPECT_EQ(r.status, Txn::Status::Timeout);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.timeouts, 1u);
  EXPECT_EQ(r.retries_issued, 0u);
}

TEST(RetryPolicy, FastCompletionLeavesWatchdogSilent) {
  fault::RetrySpec spec;
  spec.max_retries = 3;
  spec.timeout = 1_ms;
  const auto r = run_policy_write(0, spec);
  EXPECT_EQ(r.status, Txn::Status::Ok);
  EXPECT_EQ(r.timeouts, 0u);
}

TEST(TxnStatus, DataValidCoversOkAndTimeoutOnly) {
  Txn t;
  t.begin_read(0, 4);
  t.status = Txn::Status::Ok;
  EXPECT_TRUE(t.data_valid());
  t.status = Txn::Status::Timeout;
  EXPECT_TRUE(t.data_valid());
  t.status = Txn::Status::Error;
  EXPECT_FALSE(t.data_valid());
  t.status = Txn::Status::Aborted;
  EXPECT_FALSE(t.data_valid());
}

// ----------------------------------------------------- fault injector ----

TEST(FaultInjector, SameSeedReproducesTheSameDrawSequence) {
  fault::FaultProfile fp;
  fp.seed = 42;
  fp.error_rate = 0.3;
  fp.spike_rate = 0.2;
  fp.spike_cycles = 5;
  fp.stall_rate = 0.25;
  fp.stall_cycles = 3;
  fault::Injector a(fp), b(fp);
  for (int i = 0; i < 500; ++i) {
    const auto fa = a.on_access(static_cast<std::size_t>(i % 3));
    const auto fb = b.on_access(static_cast<std::size_t>(i % 3));
    EXPECT_EQ(fa.error, fb.error);
    EXPECT_EQ(fa.spike_cycles, fb.spike_cycles);
    EXPECT_EQ(a.on_grant(), b.on_grant());
  }
  EXPECT_EQ(a.injected_errors(), b.injected_errors());
  EXPECT_GT(a.injected_errors(), 0u);
  EXPECT_GT(a.injected_spikes(), 0u);
  EXPECT_GT(a.injected_stalls(), 0u);
}

TEST(FaultInjector, PerSlaveStreamsAreIndependentOfInterleaving) {
  // Slave 1's draw sequence must not depend on how many draws slave 0
  // made in between — per-slave streams decouple targets.
  fault::FaultProfile fp;
  fp.seed = 7;
  fp.error_rate = 0.4;
  fault::Injector a(fp), b(fp);
  std::vector<bool> seq_a, seq_b;
  for (int i = 0; i < 100; ++i) {
    a.on_access(0);  // interleaved traffic on slave 0 ...
    seq_a.push_back(a.on_access(1).error);
    seq_b.push_back(b.on_access(1).error);  // ... b never touches slave 0
  }
  EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultInjector, ZeroRatesDrawNothing) {
  fault::FaultProfile fp;  // all-zero rates, inactive
  EXPECT_FALSE(fp.active());
  fault::Injector inj(fp);
  for (int i = 0; i < 100; ++i) {
    const auto f = inj.on_access(0);
    EXPECT_FALSE(f.error);
    EXPECT_EQ(f.spike_cycles, 0u);
    EXPECT_EQ(inj.on_grant(), 0u);
  }
  EXPECT_EQ(inj.injected_errors(), 0u);
}

// ------------------------------------------------------- QoS arbiters ----

TEST(QosArbiters, AgingPreemptsStaticPriorityForStarvedMasters) {
  AgingPriorityArbiter arb(/*aging_cycles=*/4);
  const std::vector<bool> both{true, true};
  // Master 0 wins while master 1's age is under the threshold ...
  EXPECT_EQ(arb.pick(both, 0), 0);
  EXPECT_EQ(arb.pick(both, 1), 0);
  EXPECT_EQ(arb.pick(both, 2), 0);
  EXPECT_EQ(arb.pick(both, 3), 0);
  // ... at cycle 4 master 1 has waited 4 cycles (since cycle 0): aged.
  EXPECT_EQ(arb.pick(both, 4), 1);
  // Its age reset on the grant; priority order resumes.
  EXPECT_EQ(arb.pick(both, 5), 0);
}

TEST(QosArbiters, AgingBreaksTiesOldestFirst) {
  AgingPriorityArbiter arb(/*aging_cycles=*/2);
  // Master 2 starts waiting at cycle 0, master 1 at cycle 1: when both
  // are aged, the longest-waiting (2) wins despite the higher index.
  EXPECT_EQ(arb.pick({true, false, true}, 0), 0);
  EXPECT_EQ(arb.pick({false, true, true}, 1), 1);
  EXPECT_EQ(arb.pick({false, true, true}, 3), 2);
}

TEST(QosArbiters, BandwidthSharesConvergeToRatios) {
  BandwidthArbiter arb({3, 1});
  const std::vector<bool> both{true, true};
  int wins0 = 0, wins1 = 0;
  for (std::uint64_t c = 0; c < 40; ++c) {
    const int w = arb.pick(both, c);
    ASSERT_GE(w, 0);
    (w == 0 ? wins0 : wins1)++;
  }
  // Deficit credits make the ratio exact over full periods: 3:1.
  EXPECT_EQ(wins0, 30);
  EXPECT_EQ(wins1, 10);
}

TEST(QosArbiters, BandwidthIsWorkConserving) {
  BandwidthArbiter arb({1, 7});
  // A requester with a tiny share still wins immediately when alone.
  EXPECT_EQ(arb.pick({true, false}, 0), 0);
  EXPECT_EQ(arb.pick({false, true}, 1), 1);
  EXPECT_EQ(arb.pick({false, false}, 2), -1);
}

TEST(QosArbiters, PlatformsMapAndCompleteUnderQosArbitration) {
  expl::Explorer ex([](core::SystemGraph& g,
                       std::vector<std::unique_ptr<core::ProcessingElement>>&
                           o) {
    auto p0 = std::make_unique<expl::ProducerPe>("p0", 6, 64, 20);
    auto p1 = std::make_unique<expl::ProducerPe>("p1", 6, 64, 20);
    auto s0 = std::make_unique<expl::SinkPe>("s0", 6);
    auto s1 = std::make_unique<expl::SinkPe>("s1", 6);
    g.add_pe(*p0);
    g.add_pe(*p1);
    g.add_pe(*s0);
    g.add_pe(*s1);
    g.connect("ch0", *p0, "out", *s0, "in", 2);
    g.connect("ch1", *p1, "out", *s1, "in", 2);
    o.push_back(std::move(p0));
    o.push_back(std::move(p1));
    o.push_back(std::move(s0));
    o.push_back(std::move(s1));
  });
  core::Platform aging;
  aging.name = "plb-aging";
  aging.arb = core::ArbKind::PriorityAging;
  aging.aging_cycles = 8;
  core::Platform bw;
  bw.name = "plb-bandwidth";
  bw.arb = core::ArbKind::Bandwidth;
  bw.qos_shares = {4, 1, 1, 1};
  for (const auto* p : {&aging, &bw}) {
    const auto row = ex.evaluate(*p, 50_ms);
    EXPECT_TRUE(row.completed) << p->name;
    EXPECT_GT(row.transactions, 0u) << p->name;
  }
  EXPECT_STREQ(core::arb_kind_name(core::ArbKind::PriorityAging), "aging");
  EXPECT_STREQ(core::arb_kind_name(core::ArbKind::Bandwidth), "bandwidth");
}

// --------------------------------------- outcome conservation property ----

namespace {

expl::Explorer::GraphFactory faulted_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto p0 = std::make_unique<expl::ProducerPe>("p0", 10, 96, 20);
    auto p1 = std::make_unique<expl::ProducerPe>("p1", 10, 96, 20);
    auto s0 = std::make_unique<expl::SinkPe>("s0", 10);
    auto s1 = std::make_unique<expl::SinkPe>("s1", 10);
    g.add_pe(*p0);
    g.add_pe(*p1);
    g.add_pe(*s0);
    g.add_pe(*s1);
    g.connect("ch0", *p0, "out", *s0, "in", 2);
    g.connect("ch1", *p1, "out", *s1, "in", 2);
    o.push_back(std::move(p0));
    o.push_back(std::move(p1));
    o.push_back(std::move(s0));
    o.push_back(std::move(s1));
  };
}

fault::FaultProfile canonical_fault() {
  fault::FaultProfile fp;
  fp.name = "flaky";
  fp.seed = 0xfau;
  fp.error_rate = 0.05;
  fp.spike_rate = 0.03;
  fp.spike_cycles = 4;
  fp.stall_rate = 0.02;
  fp.stall_cycles = 2;
  return fp;
}

fault::RetrySpec canonical_retry() {
  fault::RetrySpec rs;
  rs.name = "r6";
  // Budget deep enough that retry exhaustion is unreachable at the 5%
  // error rate (0.05^7 per logical txn) — the conservation property can
  // then require every logical transaction to settle Ok.
  rs.max_retries = 6;
  rs.backoff_cycles = 2;
  return rs;
}

struct FaultedRun {
  bool completed = false;
  std::string report;
  std::string csv;
  std::string trace_json;
  std::vector<trace::TxnRecord> bus_rows;
  core::MappedSystem::FailureTotals totals;
  std::uint64_t fast_hits = 0;
  Time end;
};

FaultedRun run_faulted(const core::Platform& p, Time max_time = 200_ms) {
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  faulted_factory()(graph, owned);
  graph.discover_roles();
  Simulator sim;
  obs::TraceSession ts;
  ts.attach(sim);
  auto ms = core::Mapper::map(sim, graph, p, core::AbstractionLevel::Cam);
  FaultedRun out;
  out.completed = ms->run_until_done(max_time);
  out.end = sim.now();
  std::ostringstream r, c, t;
  ms->report(r);
  ms->txn_log().dump_csv(c);
  ts.detach();
  ts.write_json(t);
  out.report = r.str();
  out.csv = c.str();
  out.trace_json = t.str();
  const trace::TxnLogger& log = ms->txn_log();
  const std::string bus_channel = ms->bus() ? ms->bus()->name() : "";
  for (const auto& rec : log.records()) {
    if (log.channel_name(rec.channel) == bus_channel) {
      out.bus_rows.push_back(rec);
    }
  }
  out.totals = ms->failure_totals();
  if (ms->bus()) out.fast_hits = ms->bus()->stats().counter("fast_path_hits");
  return out;
}

// Txn ids come from a process-wide counter, so two identical runs inside
// one test process occupy shifted id ranges even when every timestamp,
// status and retry count matches. Renumber ids densely in order of first
// appearance: after normalisation the comparison pins everything except
// that global offset. (Cross-process runs — the CI determinism gate —
// compare raw bytes; this is purely an in-process artefact.)
std::string normalize_csv_ids(const std::string& csv) {
  std::map<std::string, std::uint64_t> remap;
  std::ostringstream out;
  std::istringstream in(csv);
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      out << line << '\n';
      header = false;
      continue;
    }
    std::vector<std::string> f;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t c = line.find(',', pos);
      f.push_back(line.substr(pos, c == std::string::npos ? c : c - pos));
      if (c == std::string::npos) break;
      pos = c + 1;
    }
    if (f.size() > 8) {  // field 8 of the v3 schema is the txn id
      const auto it = remap.emplace(f[8], remap.size()).first;
      f[8] = std::to_string(it->second);
    }
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (i != 0) out << ',';
      out << f[i];
    }
    out << '\n';
  }
  return out.str();
}

std::string normalize_trace_ids(const std::string& json) {
  static const std::string kKey = "\"id\":";
  std::map<std::string, std::uint64_t> remap;
  std::string out;
  out.reserve(json.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t k = json.find(kKey, pos);
    if (k == std::string::npos) {
      out.append(json, pos, std::string::npos);
      break;
    }
    const std::size_t digits = k + kKey.size();
    std::size_t end = digits;
    while (end < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[end])) != 0) {
      ++end;
    }
    out.append(json, pos, digits - pos);
    const auto it =
        remap.emplace(json.substr(digits, end - digits), remap.size()).first;
    out += std::to_string(it->second);
    pos = end;
  }
  return out;
}

// Every issued transaction settles exactly once with exactly one final
// status: per txn id, every non-final log row is a retried Error attempt
// and the final row is Ok (the retry budget makes aborts unreachable).
void expect_outcomes_conserved(const FaultedRun& run, const char* label) {
  ASSERT_TRUE(run.completed) << label;
  EXPECT_EQ(run.totals.aborts, 0u) << label;
  std::map<std::uint64_t, std::vector<const trace::TxnRecord*>> by_id;
  for (const auto& r : run.bus_rows) by_id[r.txn].push_back(&r);
  std::uint64_t error_rows = 0, retried_rows = 0;
  for (const auto& [id, rows] : by_id) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const bool final_row = i + 1 == rows.size();
      // Attempt numbers count up from 0 — the id groups all attempts of
      // one logical transaction (Txn::rearm_retry keeps the id).
      EXPECT_EQ(rows[i]->retries, i) << label << " txn " << id;
      if (final_row) {
        EXPECT_EQ(rows[i]->status, trace::TxnStatus::Ok)
            << label << " txn " << id << " settled more than once or not Ok";
      } else {
        EXPECT_EQ(rows[i]->status, trace::TxnStatus::Error)
            << label << " txn " << id << " non-final row not an Error";
      }
      if (rows[i]->status == trace::TxnStatus::Error) ++error_rows;
      if (rows[i]->retries > 0) ++retried_rows;
    }
  }
  // Book-keeping closes: every injected error surfaced as exactly one
  // Error row, every Error row was seen by a policy, and every policy
  // re-issue produced exactly one additional row.
  EXPECT_EQ(error_rows, run.totals.injected_errors) << label;
  EXPECT_EQ(run.totals.errors_seen, run.totals.injected_errors) << label;
  EXPECT_EQ(retried_rows, run.totals.retries_issued) << label;
  EXPECT_GT(run.totals.injected_errors, 0u)
      << label << ": the profile never fired — the property was vacuous";
}

core::Platform faulted_platform(const char* name) {
  core::Platform p;
  p.name = name;
  p.fault = canonical_fault();
  p.retry = canonical_retry();
  return p;
}

}  // namespace

TEST(FaultConservation, AtomicBusConservesOutcomes) {
  expect_outcomes_conserved(run_faulted(faulted_platform("plb-atomic")),
                            "atomic");
}

TEST(FaultConservation, SplitBusConservesOutcomes) {
  auto p = faulted_platform("plb-split");
  p.split_txns = true;
  p.max_outstanding = 4;
  expect_outcomes_conserved(run_faulted(p), "split");
}

TEST(FaultConservation, FastPathPlatformConservesOutcomesAndVetoesFastPath) {
  auto p = faulted_platform("plb-fast");
  p.fast_targets = true;
  const auto run = run_faulted(p);
  expect_outcomes_conserved(run, "fast");
  // An attached injector disables the fast path wholesale: injected
  // spikes break its fixed-latency merged-completion contract.
  EXPECT_EQ(run.fast_hits, 0u);
}

TEST(FaultConservation, CrossbarConservesOutcomes) {
  auto p = faulted_platform("xbar");
  p.bus = core::BusKind::Crossbar;
  expect_outcomes_conserved(run_faulted(p), "crossbar");
}

// ------------------------------------------- determinism / bit-identity ----

TEST(FaultDeterminism, SameSeedRunsAreByteIdentical) {
  const auto p = faulted_platform("plb-det");
  const auto a = run_faulted(p);
  const auto b = run_faulted(p);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(normalize_csv_ids(a.csv), normalize_csv_ids(b.csv));
  EXPECT_EQ(normalize_trace_ids(a.trace_json),
            normalize_trace_ids(b.trace_json));
}

TEST(FaultDeterminism, TraceCarriesFailureInstants) {
  auto p = faulted_platform("plb-instants");
  p.retry.timeout = 400_ns;  // tight enough that spikes miss deadlines
  const auto run = run_faulted(p);
  ASSERT_TRUE(run.completed);
  EXPECT_NE(run.trace_json.find("\"fault\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"retry\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"watchdog\""), std::string::npos);
}

TEST(FaultBitIdentity, InactiveProfileOnTheBusMatchesTheSeedAnchor) {
  // The bench_cam contention anchor (8 masters x 200 64-byte writes,
  // priority PLB @ 10 ns) must hold with an attached-but-all-zero
  // injector: zero-rate knobs compile to exact seed behaviour.
  auto run = [](fault::Injector* inj) {
    Simulator sim;
    PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
    if (inj != nullptr) bus.set_fault_injector(inj);
    ocp::MemorySlave mem("mem", 0, 1 << 20, Time::zero());
    bus.attach_slave(mem, {0, 1 << 20}, "mem");
    for (std::size_t m = 0; m < 8; ++m) {
      const std::size_t idx = bus.add_master("m" + std::to_string(m));
      sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
        std::vector<std::uint8_t> payload(64, static_cast<std::uint8_t>(m));
        Txn t;
        for (int i = 0; i < 200; ++i) {
          const std::uint64_t addr =
              (m << 12) + static_cast<std::uint64_t>(i % 32) * 64;
          t.begin_write(addr, payload.data(), payload.size());
          bus.master_port(idx).transport(t);
        }
      });
    }
    sim.run();
    return sim.now();
  };
  EXPECT_EQ(run(nullptr), Time::ns(128020));
  fault::Injector idle{fault::FaultProfile{}};
  EXPECT_EQ(run(&idle), Time::ns(128020));
  EXPECT_EQ(idle.injected_errors(), 0u);
}

TEST(FaultBitIdentity, InactiveAxesReproduceTheFaultFreeRun) {
  // A named-but-zero-rate profile and a watchdog-only retry spec with a
  // deadline nothing can miss must not move a femtosecond or a byte of
  // the transaction log relative to the plain platform.
  core::Platform plain;
  const auto base = run_faulted(plain);

  core::Platform inactive;
  inactive.fault.name = "noop";  // named, but inactive (all-zero rates)
  ASSERT_FALSE(inactive.fault.active());
  const auto same = run_faulted(inactive);
  ASSERT_TRUE(base.completed);
  EXPECT_EQ(same.end, base.end);
  EXPECT_EQ(normalize_csv_ids(same.csv), normalize_csv_ids(base.csv));
  EXPECT_EQ(same.report, base.report);

  core::Platform watchdog_only;
  watchdog_only.retry.timeout = 1_ms;  // active, but never fires
  const auto watched = run_faulted(watchdog_only);
  ASSERT_TRUE(watched.completed);
  EXPECT_EQ(watched.end, base.end);
  EXPECT_EQ(normalize_csv_ids(watched.csv), normalize_csv_ids(base.csv));
  EXPECT_EQ(watched.totals.timeouts, 0u);
}

// -------------------------------------------------- exploration surface ----

TEST(FaultExplore, GridAxesMultiplyAndSuffixNames) {
  expl::GridSpec spec;
  spec.faults.push_back(canonical_fault());
  spec.retries.push_back(canonical_retry());
  const auto cands = expl::grid_candidates(spec);
  EXPECT_EQ(cands.size(), 108u * 4u);
  std::set<std::string> names;
  for (const auto& p : cands) names.insert(p.name);
  EXPECT_EQ(names.size(), cands.size()) << "grid names must stay unique";
  // Inactive axis entries leave names untouched; active ones suffix.
  EXPECT_TRUE(names.count("plb-priority-10ns-64b"));
  EXPECT_TRUE(names.count("plb-priority-10ns-64b-flaky"));
  EXPECT_TRUE(names.count("plb-priority-10ns-64b-r6"));
  EXPECT_TRUE(names.count("plb-priority-10ns-64b-flaky-r6"));
  // The default spec is unchanged: exactly the 108 fault-free points.
  EXPECT_EQ(expl::grid_candidates().size(), 108u);
}

TEST(FaultExplore, RowCarriesFailureColumns) {
  expl::Explorer ex(faulted_factory());
  const auto p = faulted_platform("plb-columns");
  const auto row = ex.evaluate(p, 200_ms);
  ASSERT_TRUE(row.completed);
  EXPECT_GT(row.error_rate, 0.0);
  EXPECT_LT(row.error_rate, 1.0);
  EXPECT_GT(row.retries, 0u);
  EXPECT_EQ(row.aborted, 0u);
  EXPECT_GT(row.goodput_mbps, 0.0);
  // Goodput counts Ok-status payload only, so it must undercut the raw
  // byte rate whenever errors were injected.
  EXPECT_LT(row.goodput_mbps,
            static_cast<double>(row.bytes) / row.sim_time_us);
  EXPECT_EQ(row.slo_miss_pct, 0.0);  // no SLO configured

  expl::Explorer strict(faulted_factory());
  strict.set_slo(Time::ns(1));  // nothing on a real bus is this fast
  const auto missed = strict.evaluate(p, 200_ms);
  EXPECT_EQ(missed.slo_miss_pct, 100.0);
  strict.set_slo(1_ms);  // nothing is this slow either
  EXPECT_EQ(strict.evaluate(p, 200_ms).slo_miss_pct, 0.0);
}

TEST(FaultExplore, FaultFreeRowsAreUnchangedByTheNewColumns) {
  expl::Explorer ex(faulted_factory());
  const auto row = ex.evaluate(core::Platform{}, 200_ms);
  ASSERT_TRUE(row.completed);
  EXPECT_EQ(row.error_rate, 0.0);
  EXPECT_EQ(row.retries, 0u);
  EXPECT_EQ(row.timeouts, 0u);
  EXPECT_EQ(row.aborted, 0u);
  EXPECT_EQ(row.slo_miss_pct, 0.0);
  EXPECT_GT(row.goodput_mbps, 0.0);
  // With zero faults every byte is goodput.
  EXPECT_NEAR(row.goodput_mbps,
              static_cast<double>(row.bytes) / row.sim_time_us, 1e-9);
}

TEST(FaultExplore, TableRendersFailureColumns) {
  expl::Explorer ex(faulted_factory());
  const auto rows = ex.sweep({faulted_platform("plb-table")}, 200_ms);
  std::ostringstream os;
  expl::Explorer::print_table(os, rows);
  const std::string t = os.str();
  EXPECT_NE(t.find("err_rate"), std::string::npos);
  EXPECT_NE(t.find("goodput_mbs"), std::string::npos);
  EXPECT_NE(t.find("slo_miss"), std::string::npos);
}

TEST(FaultExplore, PerChannelStatsCountFailureOutcomes) {
  const auto run = run_faulted(faulted_platform("plb-channels"));
  ASSERT_TRUE(run.completed);
  trace::TxnLogger log;
  std::istringstream is(run.csv);
  log.load_csv(is);
  const auto channels = trace::per_channel_stats(log);
  std::uint64_t errors = 0, retried = 0;
  for (const auto& c : channels) {
    errors += c.dist.errors;
    retried += c.dist.retried;
  }
  // Bus rows are duplicated on per-master channels, so the totals fold
  // each outcome twice — nonzero is the contract here.
  EXPECT_GT(errors, 0u);
  EXPECT_GT(retried, 0u);
  std::ostringstream os;
  trace::print_channel_table(os, channels);
  EXPECT_NE(os.str().find("err"), std::string::npos);
  EXPECT_NE(os.str().find("rty"), std::string::npos);
}

// ------------------------------------------------- CSV schema round trip ----

TEST(FaultCsv, V3RoundTripsStatusAndRetries) {
  trace::TxnLogger log;
  const auto ch = log.intern("bus");
  log.record(ch, trace::TxnKind::Write, 7, 64, 0_ns, 100_ns, 10_ns, 20_ns,
             trace::TxnStatus::Error, 0);
  log.record(ch, trace::TxnKind::Write, 7, 64, 120_ns, 200_ns, 130_ns, 140_ns,
             trace::TxnStatus::Ok, 1);
  log.record(ch, trace::TxnKind::Read, 8, 32, 50_ns, 300_ns, 60_ns, 70_ns,
             trace::TxnStatus::Timeout, 0);
  std::ostringstream os;
  log.dump_csv(os);
  EXPECT_NE(os.str().find("status,retries"), std::string::npos);
  EXPECT_NE(os.str().find("error"), std::string::npos);
  EXPECT_NE(os.str().find("timeout"), std::string::npos);

  trace::TxnLogger loaded;
  std::istringstream is(os.str());
  loaded.load_csv(is);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.records()[0].status, trace::TxnStatus::Error);
  EXPECT_EQ(loaded.records()[0].retries, 0u);
  EXPECT_EQ(loaded.records()[1].status, trace::TxnStatus::Ok);
  EXPECT_EQ(loaded.records()[1].retries, 1u);
  EXPECT_EQ(loaded.records()[2].status, trace::TxnStatus::Timeout);
  // The round trip is bit-identical: dumping again matches byte for byte.
  std::ostringstream os2;
  loaded.dump_csv(os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(FaultCsv, OlderSchemasStillLoadWithDefaults) {
  // v1: no phase and no status columns.
  const std::string v1 =
      "channel,kind,bytes,start_fs,end_fs,latency_ns,txn\n"
      "bus,write,64,0,100000000,100.0,7\n";
  trace::TxnLogger l1;
  std::istringstream is1(v1);
  l1.load_csv(is1);
  ASSERT_EQ(l1.size(), 1u);
  EXPECT_EQ(l1.records()[0].status, trace::TxnStatus::Ok);
  EXPECT_EQ(l1.records()[0].retries, 0u);
  EXPECT_EQ(l1.records()[0].grant, l1.records()[0].start);

  // v2: phase columns but no status columns.
  const std::string v2 =
      "channel,kind,bytes,start_fs,grant_fs,data_fs,end_fs,latency_ns,txn\n"
      "bus,write,64,0,10000000,20000000,100000000,100.0,7\n";
  trace::TxnLogger l2;
  std::istringstream is2(v2);
  l2.load_csv(is2);
  ASSERT_EQ(l2.size(), 1u);
  EXPECT_EQ(l2.records()[0].status, trace::TxnStatus::Ok);
  EXPECT_EQ(l2.records()[0].retries, 0u);
}

TEST(FaultCsv, StatusNamesRoundTrip) {
  using trace::TxnStatus;
  for (auto s : {TxnStatus::Ok, TxnStatus::Error, TxnStatus::Timeout,
                 TxnStatus::Aborted}) {
    TxnStatus out;
    ASSERT_TRUE(trace::txn_status_from_name(trace::txn_status_name(s), out));
    EXPECT_EQ(out, s);
  }
  trace::TxnStatus out;
  EXPECT_FALSE(trace::txn_status_from_name("bogus", out));
}

TEST(FaultCsv, FaultedCaptureReplaysWithinTolerance) {
  // SHIP-level rows (send/request/reply) only exist in CCATB-level
  // captures — the CAM mapping refines channels into bus wrappers, so a
  // CAM log carries bus rows only. Capture the workload at CCATB, port
  // it through CSV, regenerate it with replay_factory, then run the
  // regenerated traffic twice on the faulted CAM platform. The faulted
  // replay's capture must validate against its same-seed re-run: the
  // injector draws the same fault sequence for identical traffic, so
  // the two distributions agree to within rounding.
  trace::TxnLogger ship_capture;
  {
    std::vector<std::unique_ptr<core::ProcessingElement>> owned;
    core::SystemGraph graph;
    faulted_factory()(graph, owned);
    graph.discover_roles();
    Simulator sim;
    auto ms = core::Mapper::map(sim, graph, core::Platform{},
                                core::AbstractionLevel::Ccatb);
    ASSERT_TRUE(ms->run_until_done(200_ms));
    std::ostringstream os;
    ms->txn_log().dump_csv(os);
    std::istringstream is(os.str());
    ship_capture.load_csv(is);
  }
  ASSERT_GT(ship_capture.size(), 0u);

  const auto p = faulted_platform("plb-replay");
  auto replay_csv = [&]() -> std::string {
    std::vector<std::unique_ptr<core::ProcessingElement>> owned;
    core::SystemGraph graph;
    workload::replay_factory(ship_capture)(graph, owned);
    graph.discover_roles();
    Simulator sim;
    auto ms = core::Mapper::map(sim, graph, p, core::AbstractionLevel::Cam);
    EXPECT_TRUE(ms->run_until_done(500_ms));
    EXPECT_GT(ms->failure_totals().injected_errors, 0u)
        << "faulted replay never drew an error — the check is vacuous";
    std::ostringstream os;
    ms->txn_log().dump_csv(os);
    return os.str();
  };
  trace::TxnLogger first, second;
  {
    std::istringstream is(replay_csv());
    first.load_csv(is);
  }
  {
    std::istringstream is(replay_csv());
    second.load_csv(is);
  }
  workload::ValidateConfig cfg;
  cfg.ship_rows_only = false;  // CAM captures carry bus rows only
  cfg.rel_tolerance = 0.01;
  cfg.abs_floor_ns = 1.0;
  const auto v = workload::validate_replay(first, second, cfg);
  EXPECT_TRUE(v.ok) << v.report();
}
