// Error-path and misuse tests across the flow: the library must fail
// loudly and precisely when a system is mis-specified — unmapped
// channels, role conflicts surfacing after refinement, exhausted
// resources, malformed platforms.
#include <gtest/gtest.h>

#include "cam/cam.hpp"
#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::core;
using namespace stlm::time_literals;

TEST(FlowErrors, UnknownPeInConnectThrows) {
  LambdaPe a("a", [](ExecContext&) {});
  LambdaPe b("b", [](ExecContext&) {});
  SystemGraph g;
  g.add_pe(a);
  // b never registered.
  EXPECT_THROW(g.connect("c", a, b), SimulationError);
}

TEST(FlowErrors, DoubleRegistrationThrows) {
  LambdaPe a("a", [](ExecContext&) {});
  SystemGraph g;
  g.add_pe(a);
  EXPECT_THROW(g.add_pe(a), SimulationError);
}

TEST(FlowErrors, PartitionQueryForUnknownPeThrows) {
  LambdaPe a("a", [](ExecContext&) {});
  SystemGraph g;
  EXPECT_THROW(g.partition(a), SimulationError);
  EXPECT_THROW(g.set_partition(a, Partition::Software), SimulationError);
}

TEST(FlowErrors, PeAskingForWrongPortNameThrows) {
  LambdaPe a("a", [](ExecContext& ctx) {
    ctx.channel("typo");  // declared as "out"
  });
  LambdaPe b("b", [](ExecContext& ctx) {
    ship::PodMsg<int> m;
    ctx.channel("in").recv(m);
  });
  SystemGraph g;
  g.add_pe(a);
  g.add_pe(b);
  g.connect("ch", a, "out", b, "in");
  Simulator sim;
  auto ms = Mapper::map(sim, g, Platform{},
                        AbstractionLevel::ComponentAssembly);
  EXPECT_THROW(sim.run(), ElaborationError);
}

TEST(FlowErrors, RoleConflictSurfacesAtCamLevelToo) {
  // Roles declared master for terminal a, but the PE actually behaves as
  // a slave: the wrapper rejects the first slave call.
  LambdaPe a("a", [](ExecContext& ctx) {
    ship::PodMsg<int> m;
    ctx.channel("p").recv(m);  // slave behaviour on a master wrapper
  });
  LambdaPe b("b", [](ExecContext& ctx) {
    ship::PodMsg<int> m(1);
    ctx.channel("p").send(m);
  });
  SystemGraph g;
  g.add_pe(a);
  g.add_pe(b);
  g.connect("ch", a, "p", b, "p", 1, ship::Role::Master);  // wrong
  Simulator sim;
  auto ms = Mapper::map(sim, g, Platform{}, AbstractionLevel::Cam);
  EXPECT_THROW(ms->run_until_done(10_ms), ProtocolError);
}

TEST(FlowErrors, MailboxWindowsDoNotOverlapAcrossChannels) {
  // Many channels: every mailbox gets a distinct window; elaboration of
  // the CAM address map must not throw.
  std::vector<std::unique_ptr<ProcessingElement>> owned;
  SystemGraph g;
  for (int i = 0; i < 8; ++i) {
    auto p = std::make_unique<expl::ProducerPe>("p" + std::to_string(i), 2, 16);
    auto s = std::make_unique<expl::SinkPe>("s" + std::to_string(i), 2);
    g.add_pe(*p);
    g.add_pe(*s);
    g.connect("ch" + std::to_string(i), *p, "out", *s, "in", 1,
              ship::Role::Master);
    owned.push_back(std::move(p));
    owned.push_back(std::move(s));
  }
  Simulator sim;
  auto ms = Mapper::map(sim, g, Platform{}, AbstractionLevel::Cam);
  EXPECT_TRUE(ms->run_until_done(100_ms));
  EXPECT_EQ(ms->bus()->address_map().size(), 8u);
}

TEST(FlowErrors, ExplorationSurvivesIncompleteWorkload) {
  // A sink expecting more messages than the producer sends: the run hits
  // the time budget; the row reports completed == false instead of
  // hanging or throwing.
  expl::Explorer ex([](SystemGraph& g,
                       std::vector<std::unique_ptr<ProcessingElement>>& o) {
    auto p = std::make_unique<expl::ProducerPe>("p", 2, 16);
    auto s = std::make_unique<expl::SinkPe>("s", 99);
    g.add_pe(*p);
    g.add_pe(*s);
    g.connect("ch", *p, "out", *s, "in", 1, ship::Role::Master);
    o.push_back(std::move(p));
    o.push_back(std::move(s));
  });
  const auto row = ex.evaluate(Platform{}, 1_ms);
  EXPECT_FALSE(row.completed);
}

TEST(FlowErrors, ZeroCycleBusRejected) {
  Simulator sim;
  EXPECT_THROW(cam::PlbCam(sim, "plb", Time::zero(),
                           std::make_unique<cam::PriorityArbiter>()),
               SimulationError);
  EXPECT_THROW(cam::CrossbarCam(sim, "xbar", Time::zero()), SimulationError);
}

TEST(FlowErrors, WrapperBusErrorBecomesProtocolError) {
  // A master wrapper pointed at an address with no slave behind it.
  Simulator sim;
  cam::PlbCam bus(sim, "plb", 10_ns, std::make_unique<cam::PriorityArbiter>());
  cam::MailboxLayout layout{0x4000, 64};
  // Intentionally: no attach_slave.
  cam::ShipMasterWrapper master(sim, "m", bus, bus.add_master("pe"), layout,
                                100_ns);
  sim.spawn_thread("pe", [&] {
    ship::PodMsg<int> m(1);
    master.send(m);
  });
  EXPECT_THROW(sim.run(), ProtocolError);
}
