// Tests for the pin-accurate OCP master/slave FSMs and the protocol
// monitor: cycle counts, data integrity, wait states, and error responses.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"
#include "ocp/ocp.hpp"

using namespace stlm;
using namespace stlm::ocp;
using namespace stlm::time_literals;

namespace {

struct PinFixture {
  Simulator sim;
  Clock clk{sim, "clk", 10_ns};
  OcpPins pins{sim, "pins"};
  MemorySlave mem{"mem", 0, 4096};
  OcpPinMaster master{sim, "master", pins, clk};
  OcpPinSlave slave{sim, "slave", pins, clk, mem};
  OcpMonitor monitor{sim, "mon", pins, clk};
};

}  // namespace

TEST(OcpPin, SingleWordWriteRead) {
  PinFixture f;
  std::vector<std::uint8_t> got;
  f.sim.spawn_thread("pe", [&] {
    auto wr = f.master.transport(Request::write(0x10, {0xde, 0xad, 0xbe, 0xef}));
    EXPECT_TRUE(wr.good());
    auto rd = f.master.transport(Request::read(0x10, 4));
    EXPECT_TRUE(rd.good());
    got = rd.data;
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(f.mem.peek(0x10), 0xde);
  EXPECT_EQ(f.mem.peek(0x13), 0xef);
}

TEST(OcpPin, BurstWritePreservesByteOrder) {
  PinFixture f;
  std::vector<std::uint8_t> payload(32);
  std::iota(payload.begin(), payload.end(), 0);
  f.sim.spawn_thread("pe", [&] {
    f.master.transport(Request::write(0x100, payload));
    auto rd = f.master.transport(Request::read(0x100, 32));
    EXPECT_EQ(rd.data, payload);
    f.sim.stop();
  });
  f.sim.run();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(f.mem.peek(0x100 + i), payload[i]);
  }
}

TEST(OcpPin, NonWordSizedPayloadTrimmed) {
  PinFixture f;
  f.sim.spawn_thread("pe", [&] {
    f.master.transport(Request::write(0x20, {1, 2, 3, 4, 5, 6, 7}));
    auto rd = f.master.transport(Request::read(0x20, 7));
    EXPECT_EQ(rd.data.size(), 7u);
    EXPECT_EQ(rd.data, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7}));
    f.sim.stop();
  });
  f.sim.run();
}

TEST(OcpPin, WriteTakesExpectedCycles) {
  PinFixture f;
  Time done;
  f.sim.spawn_thread("pe", [&] {
    // 1-beat write: beat accepted at edge0, response DVA sampled at edge2
    // (slave drives DVA after edge0's capture; master samples at the next
    // edge it reaches). Protocol overhead is deterministic.
    f.master.transport(Request::write(0x0, {1, 2, 3, 4}));
    done = f.sim.now();
    f.sim.stop();
  });
  f.sim.run();
  // Deterministic small cycle count (not TL-instant, not unbounded).
  EXPECT_GE(done, 10_ns);
  EXPECT_LE(done, 40_ns);
}

TEST(OcpPin, ReadLatencyScalesWithBurstLength) {
  PinFixture f;
  Time t1, t8;
  f.sim.spawn_thread("pe", [&] {
    // Warm-up transaction so both measurements start from the same
    // steady-state bus-turnaround alignment.
    f.master.transport(Request::read(0x0, 4));
    const Time s1 = f.sim.now();
    f.master.transport(Request::read(0x0, 4));
    t1 = f.sim.now() - s1;
    const Time s8 = f.sim.now();
    f.master.transport(Request::read(0x0, 32));
    t8 = f.sim.now() - s8;
    f.sim.stop();
  });
  f.sim.run();
  // 8-beat read must cost exactly 7 more data cycles than 1-beat.
  EXPECT_EQ(t8 - t1, 7 * 10_ns);
}

TEST(OcpPin, DeviceWaitStatesStallMaster) {
  Simulator sim;
  Clock clk(sim, "clk", 10_ns);
  OcpPins pins(sim, "pins");
  MemorySlave mem("mem", 0, 64);
  OcpPinMaster master(sim, "m", pins, clk);
  OcpPinSlave slave(sim, "s", pins, clk, mem, /*device_latency_cycles=*/5);
  Time fast_done, slow_done;
  sim.spawn_thread("pe", [&] {
    const Time s = sim.now();
    master.transport(Request::read(0, 4));
    slow_done = sim.now() - s;
    sim.stop();
  });
  sim.run();

  Simulator sim2;
  Clock clk2(sim2, "clk", 10_ns);
  OcpPins pins2(sim2, "pins");
  MemorySlave mem2("mem", 0, 64);
  OcpPinMaster master2(sim2, "m", pins2, clk2);
  OcpPinSlave slave2(sim2, "s", pins2, clk2, mem2, 0);
  sim2.spawn_thread("pe", [&] {
    const Time s = sim2.now();
    master2.transport(Request::read(0, 4));
    fast_done = sim2.now() - s;
    sim2.stop();
  });
  sim2.run();
  EXPECT_EQ(slow_done - fast_done, 5 * 10_ns);
}

TEST(OcpPin, ErrorResponsePropagates) {
  PinFixture f;
  RespCode got = RespCode::Null;
  f.sim.spawn_thread("pe", [&] {
    got = f.master.transport(Request::read(0x10000, 4)).resp;  // out of range
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_EQ(got, RespCode::Err);
}

TEST(OcpPin, BackToBackTransactionsFromTwoThreads) {
  PinFixture f;
  int done = 0;
  auto pe = [&](std::uint64_t base) {
    for (int i = 0; i < 5; ++i) {
      std::vector<std::uint8_t> v(4, static_cast<std::uint8_t>(base + i));
      f.master.transport(Request::write(base + 4 * i, v));
    }
    ++done;
    if (done == 2) f.sim.stop();
  };
  f.sim.spawn_thread("pe0", [&] { pe(0x000); });
  f.sim.spawn_thread("pe1", [&] { pe(0x200); });
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(f.mem.peek(0x000), 0x00);
  EXPECT_EQ(f.mem.peek(0x204), 0x01 + 0x200 % 256);
}

TEST(OcpPin, MonitorCountsBeatsAndSeesNoViolations) {
  PinFixture f;
  f.sim.spawn_thread("pe", [&] {
    f.master.transport(Request::write(0, {1, 2, 3, 4, 5, 6, 7, 8}));  // 2 beats
    f.master.transport(Request::read(0, 8));                          // 2 beats
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_EQ(f.monitor.violations(), 0u);
  // 2 write cmd beats + 1 read cmd beat.
  EXPECT_EQ(f.monitor.command_beats(), 3u);
  // 1 write ack + 2 read data beats.
  EXPECT_EQ(f.monitor.response_beats(), 3u);
}

TEST(OcpPin, MasterCountsTransactions) {
  PinFixture f;
  f.sim.spawn_thread("pe", [&] {
    f.master.transport(Request::write(0, {1}));
    f.master.transport(Request::read(0, 1));
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_EQ(f.master.transactions(), 2u);
  EXPECT_EQ(f.slave.transactions(), 2u);
}

// Property: pin-level and TL-level produce identical memory images for
// randomized write sequences (refinement equivalence).
class PinVsTl : public ::testing::TestWithParam<unsigned> {};

TEST_P(PinVsTl, SameMemoryImage) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> len(1, 24);
  std::uniform_int_distribution<int> addr(0, 960);
  std::uniform_int_distribution<int> byte(0, 255);

  // Record a workload.
  struct Op {
    std::uint64_t addr;
    std::vector<std::uint8_t> data;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 20; ++i) {
    Op op;
    op.addr = static_cast<std::uint64_t>(addr(rng));
    op.data.resize(static_cast<std::size_t>(len(rng)));
    for (auto& b : op.data) b = static_cast<std::uint8_t>(byte(rng));
    ops.push_back(std::move(op));
  }

  // Run at pin level.
  PinFixture pin;
  pin.sim.spawn_thread("pe", [&] {
    for (const auto& op : ops) {
      pin.master.transport(Request::write(op.addr, op.data));
    }
    pin.sim.stop();
  });
  pin.sim.run();

  // Run at TL.
  Simulator sim;
  MemorySlave mem("mem", 0, 4096);
  OcpTlChannel ch(sim, "ch", mem);
  sim.spawn_thread("pe", [&] {
    for (const auto& op : ops) ch.transport(Request::write(op.addr, op.data));
  });
  sim.run();

  for (std::uint64_t a = 0; a < 1024; ++a) {
    ASSERT_EQ(pin.mem.peek(a), mem.peek(a)) << "addr " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PinVsTl, ::testing::Values(11u, 22u, 33u));
