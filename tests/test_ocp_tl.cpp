// Tests for OCP TL types, the point-to-point TL channel, and the memory
// target device.
#include <gtest/gtest.h>

#include <numeric>

#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"
#include "ocp/ocp.hpp"

using namespace stlm;
using namespace stlm::ocp;
using namespace stlm::time_literals;

TEST(OcpTypes, BeatsRoundUpToWords) {
  EXPECT_EQ(Request::read(0, 1).beats(), 1u);
  EXPECT_EQ(Request::read(0, 4).beats(), 1u);
  EXPECT_EQ(Request::read(0, 5).beats(), 2u);
  EXPECT_EQ(Request::write(0, std::vector<std::uint8_t>(12)).beats(), 3u);
  EXPECT_EQ(Request::write(0, {}).beats(), 1u);  // command-only still 1 beat
}

TEST(OcpTypes, FactoryHelpers) {
  auto r = Request::read(0x100, 8, 3);
  EXPECT_EQ(r.cmd, Cmd::Read);
  EXPECT_EQ(r.addr, 0x100u);
  EXPECT_EQ(r.read_bytes, 8u);
  EXPECT_EQ(r.master_id, 3u);
  EXPECT_EQ(r.payload_bytes(), 8u);

  auto w = Request::write(0x200, {1, 2, 3});
  EXPECT_EQ(w.cmd, Cmd::Write);
  EXPECT_EQ(w.payload_bytes(), 3u);
  EXPECT_TRUE(Response::ok().good());
  EXPECT_FALSE(Response::error().good());
}

TEST(OcpTl, WriteThenReadRoundtrip) {
  Simulator sim;
  MemorySlave mem("mem", 0x1000, 256);
  OcpTlChannel ch(sim, "ch", mem);
  std::vector<std::uint8_t> got;
  sim.spawn_thread("master", [&] {
    std::vector<std::uint8_t> payload{10, 20, 30, 40, 50};
    auto wr = ch.transport(Request::write(0x1010, payload));
    EXPECT_TRUE(wr.good());
    auto rd = ch.transport(Request::read(0x1010, 5));
    EXPECT_TRUE(rd.good());
    got = rd.data;
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{10, 20, 30, 40, 50}));
  EXPECT_EQ(mem.reads(), 1u);
  EXPECT_EQ(mem.writes(), 1u);
  EXPECT_EQ(ch.transactions(), 2u);
}

TEST(OcpTl, CcatbTimingAtBoundaries) {
  Simulator sim;
  MemorySlave mem("mem", 0, 1024);
  TlTiming t;
  t.cycle = 10_ns;
  t.request_cycles = 2;
  t.cycles_per_beat = 1;
  t.response_cycles = 1;
  OcpTlChannel ch(sim, "ch", mem, t);
  Time done;
  sim.spawn_thread("master", [&] {
    // 8 bytes = 2 beats: 2 + 2 + 1 = 5 cycles = 50 ns.
    ch.transport(Request::read(0, 8));
    done = sim.now();
  });
  sim.run();
  EXPECT_EQ(done, 50_ns);
}

TEST(OcpTl, DeviceAccessTimeAddsWaitStates) {
  Simulator sim;
  MemorySlave mem("mem", 0, 64, /*access_time=*/25_ns);
  OcpTlChannel ch(sim, "ch", mem);  // default 1+1+1 cycles @10ns
  Time done;
  sim.spawn_thread("master", [&] {
    ch.transport(Request::read(0, 4));
    done = sim.now();
  });
  sim.run();
  EXPECT_EQ(done, 30_ns + 25_ns);
}

TEST(OcpTl, OutOfRangeAccessReturnsError) {
  Simulator sim;
  MemorySlave mem("mem", 0x1000, 16);
  OcpTlChannel ch(sim, "ch", mem);
  RespCode got = RespCode::Null;
  sim.spawn_thread("master", [&] {
    got = ch.transport(Request::read(0x2000, 4)).resp;
    // Straddling the top boundary also fails.
    auto r2 = ch.transport(Request::write(0x100e, {1, 2, 3, 4}));
    EXPECT_FALSE(r2.good());
  });
  sim.run();
  EXPECT_EQ(got, RespCode::Err);
}

TEST(OcpTl, ConcurrentMastersAreSerialized) {
  Simulator sim;
  MemorySlave mem("mem", 0, 1024);
  TlTiming t;  // 3 cycles @ 10 ns per single-beat txn
  OcpTlChannel ch(sim, "ch", mem, t);
  std::vector<Time> completions;
  auto master = [&](std::uint64_t addr) {
    ch.transport(Request::write(addr, {1, 2, 3, 4}));
    completions.push_back(sim.now());
  };
  sim.spawn_thread("m0", [&] { master(0); });
  sim.spawn_thread("m1", [&] { master(64); });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 30_ns);
  EXPECT_EQ(completions[1], 60_ns);  // second master waited for the mutex
}

TEST(OcpTl, IdleTransportRejected) {
  Simulator sim;
  MemorySlave mem("mem", 0, 16);
  OcpTlChannel ch(sim, "ch", mem);
  sim.spawn_thread("master", [&] {
    Request r;  // Idle
    ch.transport(r);
  });
  EXPECT_THROW(sim.run(), SimulationError);
}

TEST(OcpTl, TxnLoggerSeesReadsAndWrites) {
  Simulator sim;
  trace::TxnLogger log;
  MemorySlave mem("mem", 0, 64);
  OcpTlChannel ch(sim, "ch", mem);
  ch.set_txn_logger(&log);
  sim.spawn_thread("m", [&] {
    ch.transport(Request::write(0, {1, 2}));
    ch.transport(Request::read(0, 2));
  });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].kind, trace::TxnKind::Write);
  EXPECT_EQ(log.records()[1].kind, trace::TxnKind::Read);
}

TEST(OcpTl, MemoryBackdoor) {
  MemorySlave mem("mem", 0x40, 8);
  mem.poke(0x41, 0xab);
  EXPECT_EQ(mem.peek(0x41), 0xab);
  EXPECT_THROW(mem.poke(0x100, 1), std::out_of_range);
}

// Property: payload sizes sweep — data integrity and beat math hold.
class TlPayloadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TlPayloadSweep, WriteReadIntegrity) {
  const std::uint32_t n = GetParam();
  Simulator sim;
  MemorySlave mem("mem", 0, 1 << 16);
  OcpTlChannel ch(sim, "ch", mem);
  bool ok = false;
  sim.spawn_thread("m", [&] {
    std::vector<std::uint8_t> payload(n);
    std::iota(payload.begin(), payload.end(), 1);
    ch.transport(Request::write(0x80, payload));
    auto rd = ch.transport(Request::read(0x80, n));
    ok = rd.good() && rd.data == payload;
  });
  sim.run();
  EXPECT_TRUE(ok) << "payload size " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlPayloadSweep,
                         ::testing::Values(1u, 3u, 4u, 5u, 64u, 1000u, 4096u));
