// Tests for address map, arbiters, and CAM decode/stat behaviour.
#include <gtest/gtest.h>

#include "cam/cam.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::time_literals;

TEST(AddressMap, DecodeAndOverlapRejection) {
  AddressMap m;
  EXPECT_EQ(m.add({0x1000, 0x100}, "a"), 0u);
  EXPECT_EQ(m.add({0x2000, 0x100}, "b"), 1u);
  EXPECT_EQ(m.decode(0x1000), std::optional<std::size_t>(0));
  EXPECT_EQ(m.decode(0x10ff), std::optional<std::size_t>(0));
  EXPECT_EQ(m.decode(0x2080, 0x80), std::optional<std::size_t>(1));
  EXPECT_EQ(m.decode(0x1100), std::nullopt);
  EXPECT_EQ(m.decode(0x10f0, 0x20), std::nullopt);  // straddles the end
  EXPECT_THROW(m.add({0x10f0, 0x20}, "c"), ElaborationError);
  EXPECT_THROW(m.add({0x1000, 0}, "d"), SimulationError);
}

TEST(AddressMap, FindFreeRespectsAlignmentAndGaps) {
  AddressMap m;
  m.add({0x0, 0x100}, "a");
  m.add({0x200, 0x100}, "b");
  EXPECT_EQ(m.find_free(0x80, 0x100), 0x100u);   // gap between a and b
  EXPECT_EQ(m.find_free(0x180, 0x100), 0x300u);  // too big for the gap
  EXPECT_EQ(m.find_free(0x10, 0x10, 0x250), 0x300u);
}

TEST(Arbiter, PriorityPrefersLowestIndex) {
  PriorityArbiter a;
  EXPECT_EQ(a.pick({false, true, true}, 0), 1);
  EXPECT_EQ(a.pick({true, true, true}, 5), 0);
  EXPECT_EQ(a.pick({false, false, false}, 0), -1);
}

TEST(Arbiter, RoundRobinRotates) {
  RoundRobinArbiter a;
  std::vector<bool> all{true, true, true};
  EXPECT_EQ(a.pick(all, 0), 1);  // starts after index 0
  EXPECT_EQ(a.pick(all, 0), 2);
  EXPECT_EQ(a.pick(all, 0), 0);
  EXPECT_EQ(a.pick(all, 0), 1);
  EXPECT_EQ(a.pick({true, false, false}, 0), 0);
  EXPECT_EQ(a.pick({false, false, false}, 0), -1);
}

TEST(Arbiter, TdmaOwnsSlotsWithReclamation) {
  TdmaArbiter a({0, 1}, /*slot_cycles=*/10);
  // Cycle 0-9: slot of master 0.
  EXPECT_EQ(a.pick({true, true}, 0), 0);
  // Cycle 10-19: slot of master 1.
  EXPECT_EQ(a.pick({true, true}, 10), 1);
  // Owner idle: reclaimed by the other master.
  EXPECT_EQ(a.pick({true, false}, 10), 0);
  EXPECT_THROW(TdmaArbiter({}, 10), SimulationError);
  EXPECT_THROW(TdmaArbiter({0}, 0), SimulationError);
}

TEST(Cam, DecodeErrorReturnsErrResponse) {
  Simulator sim;
  SharedBusCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0x1000, 0x100);
  bus.attach_slave(mem, {0x1000, 0x100}, "mem");
  const std::size_t m = bus.add_master("pe");
  ocp::RespCode got = ocp::RespCode::Null;
  sim.spawn_thread("pe", [&] {
    got = bus.master_port(m).transport(ocp::Request::read(0x9000, 4)).resp;
  });
  sim.run();
  EXPECT_EQ(got, ocp::RespCode::Err);
  EXPECT_EQ(bus.stats().counter("decode_errors"), 1u);
}

TEST(Cam, SharedBusTimingIsCycleAccurateAtBoundary) {
  Simulator sim;
  SharedBusCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x1000);
  bus.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = bus.add_master("pe");
  Time done;
  sim.spawn_thread("pe", [&] {
    // 8 bytes = 2 beats (32-bit): 2 + 2 + 1 = 5 cycles = 50 ns.
    bus.master_port(m).transport(ocp::Request::read(0, 8));
    done = sim.now();
  });
  sim.run();
  EXPECT_EQ(done, 50_ns);
}

TEST(Cam, PlbWiderBusNeedsFewerBeats) {
  Simulator sim;
  PlbCam plb(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x1000);
  plb.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = plb.add_master("pe");
  Time done;
  sim.spawn_thread("pe", [&] {
    // 64 bytes on a 64-bit bus = 8 beats; +2 setup = 10 cycles = 100 ns.
    plb.master_port(m).transport(
        ocp::Request::write(0, std::vector<std::uint8_t>(64, 1)));
    done = sim.now();
  });
  sim.run();
  EXPECT_EQ(done, 100_ns);
}

TEST(Cam, PlbPipeliningHidesSetupWhenBackToBack) {
  Simulator sim;
  PlbCam plb(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x1000);
  plb.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m0 = plb.add_master("pe0");
  const std::size_t m1 = plb.add_master("pe1");
  std::vector<Time> done(2);
  // Both issue at t=0; the second grant is back-to-back and loses the
  // 2-cycle setup: total = (2+1) + 1 = 4 cycles, not 6.
  sim.spawn_thread("pe0", [&] {
    plb.master_port(m0).transport(ocp::Request::write(0, {1, 2, 3, 4}));
    done[0] = sim.now();
  });
  sim.spawn_thread("pe1", [&] {
    plb.master_port(m1).transport(ocp::Request::write(8, {1, 2, 3, 4}));
    done[1] = sim.now();
  });
  sim.run();
  EXPECT_EQ(done[0], 30_ns);
  EXPECT_EQ(done[1], 40_ns);
}

TEST(Cam, OpbSlowerThanPlbForSamePayload) {
  Simulator sim;
  PlbCam plb(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  OpbCam opb(sim, "opb", 20_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem_a("a", 0, 0x1000), mem_b("b", 0, 0x1000);
  plb.attach_slave(mem_a, {0, 0x1000}, "a");
  opb.attach_slave(mem_b, {0, 0x1000}, "b");
  const std::size_t mp = plb.add_master("pe");
  const std::size_t mo = opb.add_master("pe");
  Time t_plb, t_opb;
  sim.spawn_thread("pe", [&] {
    Time s = sim.now();
    plb.master_port(mp).transport(
        ocp::Request::write(0, std::vector<std::uint8_t>(32, 1)));
    t_plb = sim.now() - s;
    s = sim.now();
    opb.master_port(mo).transport(
        ocp::Request::write(0, std::vector<std::uint8_t>(32, 1)));
    t_opb = sim.now() - s;
  });
  sim.run();
  EXPECT_LT(t_plb, t_opb);
  // PLB: (2+4)*10 = 60 ns; OPB: (2+2*8)*20 = 360 ns.
  EXPECT_EQ(t_plb, 60_ns);
  EXPECT_EQ(t_opb, 360_ns);
}

TEST(Cam, PriorityArbitrationStarvesLowPriorityUnderLoad) {
  Simulator sim;
  SharedBusCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x10000);
  bus.attach_slave(mem, {0, 0x10000}, "mem");
  const std::size_t hi = bus.add_master("hi");
  const std::size_t lo = bus.add_master("lo");
  int hi_done = 0, lo_done = 0;
  sim.spawn_thread("hi", [&] {
    for (int i = 0; i < 50; ++i) {
      bus.master_port(hi).transport(ocp::Request::write(0, {1, 2, 3, 4}));
      ++hi_done;
    }
  });
  sim.spawn_thread("lo", [&] {
    for (int i = 0; i < 50; ++i) {
      bus.master_port(lo).transport(ocp::Request::write(64, {1, 2, 3, 4}));
      ++lo_done;
    }
  });
  sim.run_for(25 * 40_ns + 5_ns);  // enough for ~25 single-beat txns
  EXPECT_GT(hi_done, lo_done);    // priority master dominates
}

TEST(Cam, RoundRobinIsFair) {
  Simulator sim;
  SharedBusCam bus(sim, "bus", 10_ns, std::make_unique<RoundRobinArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x10000);
  bus.attach_slave(mem, {0, 0x10000}, "mem");
  const std::size_t a = bus.add_master("a");
  const std::size_t b = bus.add_master("b");
  int a_done = 0, b_done = 0;
  sim.spawn_thread("a", [&] {
    for (int i = 0; i < 100; ++i) {
      bus.master_port(a).transport(ocp::Request::write(0, {1, 2, 3, 4}));
      ++a_done;
    }
  });
  sim.spawn_thread("b", [&] {
    for (int i = 0; i < 100; ++i) {
      bus.master_port(b).transport(ocp::Request::write(64, {1, 2, 3, 4}));
      ++b_done;
    }
  });
  sim.run_for(20 * 40_ns);
  EXPECT_NEAR(a_done, b_done, 1);
}

TEST(Cam, CrossbarParallelLanesOutperformSharedBus) {
  // Two masters hitting two different slaves: crossbar should overlap.
  Simulator sim;
  CrossbarCam xbar(sim, "xbar", 10_ns);
  ocp::MemorySlave mem0("m0", 0x0000, 0x1000), mem1("m1", 0x1000, 0x1000);
  xbar.attach_slave(mem0, {0x0000, 0x1000}, "m0");
  xbar.attach_slave(mem1, {0x1000, 0x1000}, "m1");
  const std::size_t a = xbar.add_master("a");
  const std::size_t b = xbar.add_master("b");
  std::vector<Time> done(2);
  sim.spawn_thread("a", [&] {
    xbar.master_port(a).transport(
        ocp::Request::write(0x0000, std::vector<std::uint8_t>(64, 1)));
    done[0] = sim.now();
  });
  sim.spawn_thread("b", [&] {
    xbar.master_port(b).transport(
        ocp::Request::write(0x1000, std::vector<std::uint8_t>(64, 1)));
    done[1] = sim.now();
  });
  sim.run();
  // Both complete at the same time: (1 + 8 beats) * 10 ns = 90 ns.
  EXPECT_EQ(done[0], 90_ns);
  EXPECT_EQ(done[1], 90_ns);
}

TEST(Cam, CrossbarSameLaneSerializes) {
  Simulator sim;
  CrossbarCam xbar(sim, "xbar", 10_ns);
  ocp::MemorySlave mem0("m0", 0x0000, 0x1000);
  xbar.attach_slave(mem0, {0x0000, 0x1000}, "m0");
  const std::size_t a = xbar.add_master("a");
  const std::size_t b = xbar.add_master("b");
  std::vector<Time> done(2);
  sim.spawn_thread("a", [&] {
    xbar.master_port(a).transport(
        ocp::Request::write(0x0000, std::vector<std::uint8_t>(64, 1)));
    done[0] = sim.now();
  });
  sim.spawn_thread("b", [&] {
    xbar.master_port(b).transport(
        ocp::Request::write(0x0100, std::vector<std::uint8_t>(64, 1)));
    done[1] = sim.now();
  });
  sim.run();
  EXPECT_EQ(done[0], 90_ns);
  EXPECT_EQ(done[1], 180_ns);
}

TEST(Cam, BridgeForwardsToDownstreamBus) {
  Simulator sim;
  PlbCam plb(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  OpbCam opb(sim, "opb", 20_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave fast("fast", 0x0000, 0x1000);
  ocp::MemorySlave slow("slow", 0x8000, 0x1000);
  plb.attach_slave(fast, {0x0000, 0x1000}, "fast");
  opb.attach_slave(slow, {0x8000, 0x1000}, "slow");
  BusBridge bridge(sim, "bridge", opb, /*crossing_cycles=*/2);
  plb.attach_slave(bridge, {0x8000, 0x1000}, "bridge");
  const std::size_t m = plb.add_master("cpu");
  bool ok = false;
  sim.spawn_thread("cpu", [&] {
    plb.master_port(m).transport(
        ocp::Request::write(0x8010, {0xaa, 0xbb, 0xcc, 0xdd}));
    auto rd = plb.master_port(m).transport(ocp::Request::read(0x8010, 4));
    ok = rd.good() && rd.data == std::vector<std::uint8_t>{0xaa, 0xbb, 0xcc, 0xdd};
  });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(bridge.forwarded(), 2u);
  EXPECT_EQ(slow.writes(), 1u);
}

TEST(Cam, UtilizationAccountsBusyCycles) {
  Simulator sim;
  SharedBusCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x1000);
  bus.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = bus.add_master("pe");
  sim.spawn_thread("pe", [&] {
    bus.master_port(m).transport(ocp::Request::write(0, {1, 2, 3, 4}));  // 40 ns
    wait(60_ns);  // idle
  });
  sim.run();
  EXPECT_NEAR(bus.utilization(), 0.4, 1e-9);
}
