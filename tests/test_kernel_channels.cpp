// Tests for Signal update semantics and the primitive blocking channels.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

TEST(Signal, WriteVisibleNextDelta) {
  Simulator sim;
  Signal<int> s(sim, "s", 0);
  int seen_before = -1, seen_after = -1;
  sim.spawn_thread("writer", [&] {
    s.write(7);
    seen_before = s.read();  // old value: update not applied yet
    wait(s.value_changed_event());
    seen_after = s.read();
  });
  sim.run();
  EXPECT_EQ(seen_before, 0);
  EXPECT_EQ(seen_after, 7);
}

TEST(Signal, NoEventWhenValueUnchanged) {
  Simulator sim;
  Signal<int> s(sim, "s", 5);
  bool changed = false;
  sim.spawn_thread("watch", [&] {
    wait(s.value_changed_event());
    changed = true;
  });
  sim.spawn_thread("writer", [&] {
    wait(1_ns);
    s.write(5);  // same value: no notification
  });
  sim.run();
  EXPECT_FALSE(changed);
}

TEST(Signal, LastWriteInDeltaWins) {
  Simulator sim;
  Signal<int> s(sim, "s", 0);
  sim.spawn_thread("w1", [&] { s.write(1); });
  sim.spawn_thread("w2", [&] { s.write(2); });
  sim.run();
  EXPECT_EQ(s.read(), 2);
}

TEST(Signal, BoolEdgesFire) {
  Simulator sim;
  Signal<bool> s(sim, "s", false);
  std::vector<std::string> edges;
  sim.spawn_thread("pos", [&] {
    for (;;) {
      wait(s.posedge_event());
      edges.push_back("pos");
    }
  });
  sim.spawn_thread("neg", [&] {
    for (;;) {
      wait(s.negedge_event());
      edges.push_back("neg");
    }
  });
  sim.spawn_thread("driver", [&] {
    wait(1_ns);
    s.write(true);
    wait(1_ns);
    s.write(false);
    wait(1_ns);
    s.write(true);
    wait(1_ns);
    sim.stop();
  });
  sim.run();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], "pos");
  EXPECT_EQ(edges[1], "neg");
  EXPECT_EQ(edges[2], "pos");
}

TEST(Fifo, BlockingReadWaitsForData) {
  Simulator sim;
  Fifo<int> f(sim, "f", 4);
  int got = 0;
  Time got_at;
  sim.spawn_thread("reader", [&] {
    got = f.read();
    got_at = sim.now();
  });
  sim.spawn_thread("writer", [&] {
    wait(15_ns);
    f.write(99);
  });
  sim.run();
  EXPECT_EQ(got, 99);
  EXPECT_EQ(got_at, 15_ns);
}

TEST(Fifo, BlockingWriteWaitsForSpace) {
  Simulator sim;
  Fifo<int> f(sim, "f", 2);
  std::vector<int> got;
  sim.spawn_thread("writer", [&] {
    for (int i = 0; i < 4; ++i) f.write(i);  // blocks after 2
  });
  sim.spawn_thread("reader", [&] {
    wait(10_ns);
    for (int i = 0; i < 4; ++i) got.push_back(f.read());
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Fifo, PreservesOrderUnderConcurrency) {
  Simulator sim;
  Fifo<int> f(sim, "f", 3);
  std::vector<int> got;
  sim.spawn_thread("writer", [&] {
    for (int i = 0; i < 100; ++i) {
      f.write(i);
      if (i % 7 == 0) wait(1_ns);
    }
  });
  sim.spawn_thread("reader", [&] {
    for (int i = 0; i < 100; ++i) {
      got.push_back(f.read());
      if (i % 5 == 0) wait(2_ns);
    }
  });
  sim.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Fifo, NonBlockingVariants) {
  Simulator sim;
  Fifo<int> f(sim, "f", 1);
  sim.spawn_thread("t", [&] {
    int v = -1;
    EXPECT_FALSE(f.nb_read(v));
    EXPECT_TRUE(f.nb_write(5));
    EXPECT_FALSE(f.nb_write(6));  // full
    EXPECT_EQ(f.num_available(), 1u);
    EXPECT_EQ(f.num_free(), 0u);
    EXPECT_TRUE(f.nb_read(v));
    EXPECT_EQ(v, 5);
  });
  sim.run();
}

TEST(Fifo, ZeroCapacityRejected) {
  Simulator sim;
  EXPECT_THROW(Fifo<int>(sim, "f", 0), SimulationError);
}

TEST(Mutex, ProvidesMutualExclusion) {
  Simulator sim;
  Mutex m(sim, "m");
  int inside = 0;
  int max_inside = 0;
  auto worker = [&] {
    for (int i = 0; i < 10; ++i) {
      LockGuard g(m);
      ++inside;
      max_inside = std::max(max_inside, inside);
      wait(1_ns);  // hold the lock across a wait
      --inside;
    }
  };
  sim.spawn_thread("w1", worker);
  sim.spawn_thread("w2", worker);
  sim.spawn_thread("w3", worker);
  sim.run();
  EXPECT_EQ(max_inside, 1);
}

TEST(Mutex, TryLockAndDoubleUnlock) {
  Simulator sim;
  Mutex m(sim, "m");
  sim.spawn_thread("t", [&] {
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_THROW(m.unlock(), SimulationError);
  });
  sim.run();
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2, "sem");
  int inside = 0, max_inside = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn_thread("w" + std::to_string(i), [&] {
      sem.acquire();
      ++inside;
      max_inside = std::max(max_inside, inside);
      wait(5_ns);
      --inside;
      sem.release();
    });
  }
  sim.run();
  EXPECT_EQ(max_inside, 2);
  EXPECT_EQ(sem.value(), 2);
}

TEST(Semaphore, TryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 1, "sem");
  sim.spawn_thread("t", [&] {
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_TRUE(sem.try_acquire());
  });
  sim.run();
}

TEST(Semaphore, NegativeInitialRejected) {
  Simulator sim;
  EXPECT_THROW(Semaphore(sim, -1, "sem"), SimulationError);
}

// Parameterized producer/consumer capacity sweep: total transferred data
// is invariant under fifo depth.
class FifoSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FifoSweep, TransfersEverythingAtAnyDepth) {
  Simulator sim;
  Fifo<int> f(sim, "f", GetParam());
  long sum = 0;
  sim.spawn_thread("producer", [&] {
    for (int i = 1; i <= 200; ++i) f.write(i);
  });
  sim.spawn_thread("consumer", [&] {
    for (int i = 0; i < 200; ++i) sum += f.read();
  });
  sim.run();
  EXPECT_EQ(sum, 200L * 201 / 2);
}

INSTANTIATE_TEST_SUITE_P(Depths, FifoSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 64u, 1024u));
