// Tests for the CPU model, interrupt controller, and RTOS substrate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cam/cam.hpp"
#include "cpu/cpu.hpp"
#include "cpu/irq.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"
#include "rtos/rtos.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

struct CpuFixture {
  Simulator sim;
  Clock clk{sim, "clk", 10_ns};
  cam::SharedBusCam bus{sim, "bus", 10_ns,
                        std::make_unique<cam::PriorityArbiter>()};
  ocp::MemorySlave mem{"mem", 0x0, 0x10000};
  cpu::CpuModel cpu{sim, "cpu", clk};

  CpuFixture() {
    bus.attach_slave(mem, {0x0, 0x10000}, "mem");
    cpu.bus().bind(bus.master_port(bus.add_master("cpu")));
  }
};

}  // namespace

TEST(Cpu, ConsumeAdvancesTimeByCycles) {
  CpuFixture f;
  Time done;
  f.sim.spawn_thread("prog", [&] {
    f.cpu.consume(100);
    done = f.sim.now();
    f.sim.stop();  // the free-running clock would keep run() alive
  });
  f.sim.run();
  EXPECT_EQ(done, 1000_ns);
  EXPECT_EQ(f.cpu.cycles_consumed(), 100u);
}

TEST(Cpu, MmioWordRoundtrip) {
  CpuFixture f;
  std::uint32_t got = 0;
  f.sim.spawn_thread("prog", [&] {
    f.cpu.mmio_write32(0x100, 0xcafebabe);
    got = f.cpu.mmio_read32(0x100);
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_EQ(got, 0xcafebabeu);
  EXPECT_EQ(f.cpu.bus_transactions(), 2u);
}

TEST(Cpu, MmioBusErrorThrows) {
  CpuFixture f;
  f.sim.spawn_thread("prog", [&] { f.cpu.mmio_read32(0xdead0000); });
  EXPECT_THROW(f.sim.run(), ProtocolError);
}

TEST(Irq, EdgeLatchedAndClaimed) {
  Simulator sim;
  Signal<bool> line(sim, "line", false);
  cpu::IrqController ic(sim, "ic");
  ic.attach(line, 3);
  int claimed = -2;
  sim.spawn_thread("isr", [&] {
    wait(ic.irq_event());
    claimed = ic.claim();
  });
  sim.spawn_thread("hw", [&] {
    wait(5_ns);
    line.write(true);
    wait(5_ns);
    line.write(false);
  });
  sim.run();
  EXPECT_EQ(claimed, 3);
  EXPECT_EQ(ic.pending(), 0u);
  EXPECT_EQ(ic.claim(), -1);
  EXPECT_EQ(ic.interrupts_taken(), 1u);
}

TEST(Rtos, TasksRunByPriority) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, 0});
  std::vector<std::string> order;
  os.create_task("low", 1, [&] { order.push_back("low"); });
  os.create_task("high", 9, [&] { order.push_back("high"); });
  os.create_task("mid", 5, [&] { order.push_back("mid"); });
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(1_us);
    f.sim.stop();
  });
  f.sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "low");
}

TEST(Rtos, DelayTicksWakesOnTime) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, 0});
  Time woke;
  os.create_task("sleeper", 1, [&] {
    os.delay_ticks(5);
    woke = f.sim.now();
  });
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(1_us);
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_EQ(woke, 5_us);
}

TEST(Rtos, YieldRotatesEqualPriorityTasks) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, 0});
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    os.create_task("t" + std::to_string(id), 1, [&, id] {
      for (int i = 0; i < 3; ++i) {
        order.push_back(id);
        os.yield();
      }
    });
  }
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(1_us);
    f.sim.stop();
  });
  f.sim.run();
  ASSERT_EQ(order.size(), 6u);
  // Tasks alternate: 0 1 0 1 0 1.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Rtos, SemaphoreBlocksAndHandsOff) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, 0});
  rtos::Semaphore sem(os, "sem", 0);
  std::vector<std::string> order;
  os.create_task("waiter", 5, [&] {
    order.push_back("wait-start");
    sem.wait();
    order.push_back("wait-done");
  });
  os.create_task("poster", 1, [&] {
    order.push_back("post");
    sem.post();
    os.yield();
  });
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(1_us);
    f.sim.stop();
  });
  f.sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "wait-start");  // high prio runs first, blocks
  EXPECT_EQ(order[1], "post");
  EXPECT_EQ(order[2], "wait-done");   // woken, preempts at post's yield
}

TEST(Rtos, QueueTransfersInOrder) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, 0});
  rtos::Queue<int> q(os, "q", 4);
  std::vector<int> got;
  os.create_task("producer", 2, [&] {
    for (int i = 0; i < 20; ++i) q.send(i);
  });
  os.create_task("consumer", 1, [&] {
    for (int i = 0; i < 20; ++i) got.push_back(q.recv());
  });
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(1_us);
    f.sim.stop();
  });
  f.sim.run();
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Rtos, ContextSwitchCostIsCharged) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, 100});
  os.create_task("a", 1, [&] { os.yield(); });
  os.create_task("b", 1, [&] { os.yield(); });
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(10_us);
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_GE(os.context_switches(), 4u);
  EXPECT_GE(f.cpu.cycles_consumed(), 100u * os.context_switches());
}

TEST(Rtos, IsrWakesBlockedTask) {
  CpuFixture f;
  Signal<bool> line(f.sim, "line", false);
  cpu::IrqController ic(f.sim, "ic");
  ic.attach(line, 0);
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, 10});
  rtos::Semaphore sem(os, "sem", 0);
  Time woke;
  os.create_task("waiter", 5, [&] {
    sem.wait();
    woke = f.sim.now();
  });
  os.attach_isr(ic, [&](int l) {
    if (l == 0) sem.post_from_isr();
  });
  f.sim.spawn_thread("hw", [&] {
    wait(100_us);
    line.write(true);
    wait(1_us);
    line.write(false);
  });
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(10_us);
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_GE(woke, 100_us);
  EXPECT_LT(woke, 110_us);
  EXPECT_EQ(ic.interrupts_taken(), 1u);
}

TEST(Rtos, ApiOutsideTaskContextThrows) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu);
  rtos::Semaphore sem(os, "sem", 1);
  f.sim.spawn_thread("not_a_task", [&] { sem.wait(); });
  EXPECT_THROW(f.sim.run(), SimulationError);
}

// Property: N producer/consumer task pairs over queues always deliver all
// items, for several context-switch costs.
class RtosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtosSweep, ProducerConsumerPairsComplete) {
  CpuFixture f;
  rtos::Rtos os(f.sim, "os", f.cpu, {1_us, GetParam()});
  constexpr int kPairs = 3, kItems = 10;
  std::vector<std::unique_ptr<rtos::Queue<int>>> queues;
  int delivered = 0;
  for (int p = 0; p < kPairs; ++p) {
    queues.push_back(std::make_unique<rtos::Queue<int>>(
        os, "q" + std::to_string(p), 2));
  }
  for (int p = 0; p < kPairs; ++p) {
    auto& q = *queues[static_cast<size_t>(p)];
    os.create_task("prod" + std::to_string(p), 2, [&] {
      for (int i = 0; i < kItems; ++i) q.send(i);
    });
    os.create_task("cons" + std::to_string(p), 1, [&] {
      for (int i = 0; i < kItems; ++i) {
        if (q.recv() == i) ++delivered;
      }
    });
  }
  f.sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated()) wait(10_us);
    f.sim.stop();
  });
  f.sim.run();
  EXPECT_EQ(delivered, kPairs * kItems);
}

INSTANTIATE_TEST_SUITE_P(SwitchCosts, RtosSweep,
                         ::testing::Values(0u, 20u, 500u));
