// Tests for the kernel determinism auditor (kernel/audit.hpp): a
// deliberately racy fixture is flagged, causally ordered fixtures are
// not, the canonical exploration grid is conflict-free, and auditing a
// run never perturbs its simulated results (checked at the fast-path
// occupancy boundary, the spot a scheduler-order bug would surface
// first).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cam/cam.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "ocp/banked_memory.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::core;
using namespace stlm::expl;
using namespace stlm::time_literals;

namespace {

// Restores the process-wide audit default on scope exit so grid tests
// can't leak auditing into unrelated tests.
struct AuditDefaultGuard {
  AuditDefaultGuard() : prev_(audit::default_enabled()) {}
  ~AuditDefaultGuard() { audit::set_default_enabled(prev_); }
  bool prev_;
};

}  // namespace

TEST(Audit, DisabledSimulatorReportsNothing) {
  Simulator sim;
  EXPECT_FALSE(sim.audit_enabled());
  const auto r = sim.audit_report();
  EXPECT_FALSE(r.enabled);
  EXPECT_EQ(r.conflicts.size(), 0u);
  EXPECT_TRUE(r.table().empty());
}

// Two processes, both runnable from time zero, both pushing into one
// FIFO in the same delta cycle: the runnable queue's FIFO policy — not
// simulated causality — decides whose value lands first. That is the
// exact hazard the auditor exists to flag.
TEST(Audit, CoRunnableWritersAreFlagged) {
  if (!audit::compiled_in()) GTEST_SKIP() << "built without STLM_AUDIT";
  Simulator sim;
  sim.set_audit_enabled(true);
  Fifo<int> f(sim, "f", 4);
  sim.spawn_thread("w1", [&] { f.nb_write(1); });
  sim.spawn_thread("w2", [&] { f.nb_write(2); });
  sim.run();
  const auto r = sim.audit_report();
  EXPECT_TRUE(r.enabled);
  ASSERT_EQ(r.conflicts.size(), 1u) << r.table();
  const auto& c = r.conflicts.front();
  EXPECT_EQ(c.object, "fifo.tail:f");
  EXPECT_EQ(c.first, "w1");
  EXPECT_EQ(c.second, "w2");
  EXPECT_EQ(c.first_mode, audit::Mode::Write);
  EXPECT_EQ(c.second_mode, audit::Mode::Write);
  const std::string table = r.table();
  EXPECT_NE(table.find("fifo.tail:f"), std::string::npos) << table;
  EXPECT_NE(table.find("w1"), std::string::npos) << table;
  EXPECT_NE(table.find("w2"), std::string::npos) << table;
}

// The same shape repeated in a loop must report one conflict pair with a
// multiplicity, not one row per occurrence.
TEST(Audit, RepeatedConflictAggregatesCount) {
  if (!audit::compiled_in()) GTEST_SKIP() << "built without STLM_AUDIT";
  Simulator sim;
  sim.set_audit_enabled(true);
  Fifo<int> f(sim, "f", 64);
  sim.spawn_thread("w1", [&] {
    for (int i = 0; i < 3; ++i) {
      f.nb_write(i);
      wait(10_ns);
    }
  });
  sim.spawn_thread("w2", [&] {
    for (int i = 0; i < 3; ++i) {
      f.nb_write(-i);
      wait(10_ns);
    }
  });
  sim.run();
  const auto r = sim.audit_report();
  ASSERT_EQ(r.conflicts.size(), 1u) << r.table();
  EXPECT_GE(r.conflicts.front().count, 3u);
  EXPECT_EQ(r.conflict_events, r.conflicts.front().count);
}

// Blocking producer/consumer through one FIFO: the pop side only runs
// because the push side woke it (and the sides audit as separate keys),
// so a clean handshake must stay quiet.
TEST(Audit, CausalProducerConsumerIsClean) {
  if (!audit::compiled_in()) GTEST_SKIP() << "built without STLM_AUDIT";
  Simulator sim;
  sim.set_audit_enabled(true);
  Fifo<int> f(sim, "f", 2);
  int sum = 0;
  sim.spawn_thread("producer", [&] {
    for (int i = 1; i <= 16; ++i) f.write(i);
  });
  sim.spawn_thread("consumer", [&] {
    for (int i = 0; i < 16; ++i) sum += f.read();
  });
  sim.run();
  EXPECT_EQ(sum, 136);
  const auto r = sim.audit_report();
  EXPECT_GT(r.accesses, 0u);
  EXPECT_EQ(r.conflicts.size(), 0u) << r.table();
}

// One process touching an object repeatedly within a dispatch is not a
// race with itself.
TEST(Audit, SingleProcessIsClean) {
  if (!audit::compiled_in()) GTEST_SKIP() << "built without STLM_AUDIT";
  Simulator sim;
  sim.set_audit_enabled(true);
  Fifo<int> f(sim, "f", 8);
  sim.spawn_thread("solo", [&] {
    for (int i = 0; i < 8; ++i) f.nb_write(i);
    int v = 0;
    while (f.nb_read(v)) {
    }
  });
  sim.run();
  const auto r = sim.audit_report();
  EXPECT_EQ(r.conflicts.size(), 0u) << r.table();
}

// The tentpole acceptance claim: the canonical 108-platform x 5-workload
// grid — every bus protocol, split engines, fast targets, TDMA, NoC-ish
// crossbars — runs with zero determinism conflicts. A regression here
// means somebody introduced scheduler-order-dependent state.
TEST(Audit, CanonicalGridIsConflictFree) {
  if (!audit::compiled_in()) GTEST_SKIP() << "built without STLM_AUDIT";
  AuditDefaultGuard guard;
  audit::set_default_enabled(true);  // sampled by the sweep's simulators

  const auto plats = grid_candidates();
  const auto loads = workload_candidates();
  ASSERT_EQ(plats.size(), 108u);
  ASSERT_EQ(loads.size(), 5u);
  Explorer ex(loads.front().factory);
  std::uint64_t audited_cells = 0;
  for (const auto& p : plats) {
    for (const auto& w : loads) {
      const auto row = ex.evaluate(p, w, 200_ms);
      EXPECT_TRUE(row.completed) << p.name << "/" << w.name;
      EXPECT_EQ(row.audit_conflicts, 0u) << p.name << "/" << w.name;
      ++audited_cells;
    }
  }
  EXPECT_EQ(audited_cells, 540u);
}

// PR 6 carry-over, now under the auditor: at the occupancy-end boundary
// instant the fast path must fall back to the engine, stay bit-identical
// to a pure-engine run — and enabling the auditor must neither perturb
// those results nor report a conflict.
TEST(Audit, FastPathBoundaryBitIdenticalUnderAuditor) {
  struct Result {
    double end_ns = 0, latency_sum = 0, service_sum = 0;
    std::uint64_t transactions = 0, bytes = 0, fast_hits = 0,
                  conflicts = 0;
  };
  auto run = [](bool fast, bool auditing) {
    Simulator sim;
    if (auditing) sim.set_audit_enabled(true);
    PlbCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{}, fast);
    ocp::BankedMemorySlave mem("dram", 0, 1 << 18);
    bus.attach_slave(mem, {0, 1 << 18}, "dram");
    const std::size_t m0 = bus.add_master("a");
    const std::size_t m1 = bus.add_master("b");
    // PLB @10ns, 8-byte width, 64-byte payload: a non-back-to-back write
    // occupies 100 ns; b's pre-registered wake lands exactly at an
    // occupancy end, forcing the boundary-instant engine fallback.
    sim.spawn_thread("b", [&] {
      wait(100_ns);
      std::vector<std::uint8_t> p(64, 2);
      Txn t;
      for (int i = 0; i < 6; ++i) {
        t.begin_write(0x8000 + static_cast<std::uint64_t>(i) * 64, p.data(),
                      p.size());
        bus.master_port(m1).transport(t);
      }
    });
    sim.spawn_thread("a", [&] {
      std::vector<std::uint8_t> p(64, 1);
      Txn t;
      for (int i = 0; i < 6; ++i) {
        t.begin_write(static_cast<std::uint64_t>(i) * 256, p.data(),
                      p.size());
        bus.master_port(m0).transport(t);
        wait(40_ns);
      }
    });
    sim.run();
    Result r;
    r.end_ns = sim.now().to_ns();
    auto& st = bus.stats();
    r.latency_sum = st.acc("latency_ns").sum();
    r.service_sum = st.acc("service_ns").sum();
    r.transactions = st.counter("transactions");
    r.bytes = st.counter("bytes");
    r.fast_hits = bus.fast_path_hits();
    r.conflicts = sim.audit_report().conflicts.size();
    return r;
  };
  const Result engine = run(false, true);
  const Result fast = run(true, true);
  const Result fast_unaudited = run(true, false);

  // Bit-identity across the fast-path boundary (doubles compared exactly
  // on purpose — "close" would hide order bugs).
  EXPECT_EQ(fast.end_ns, engine.end_ns);
  EXPECT_EQ(fast.latency_sum, engine.latency_sum);
  EXPECT_EQ(fast.service_sum, engine.service_sum);
  EXPECT_EQ(fast.transactions, engine.transactions);
  EXPECT_EQ(fast.bytes, engine.bytes);
  EXPECT_GT(fast.fast_hits, 0u);
  EXPECT_LT(fast.fast_hits, fast.transactions)
      << "the boundary-instant issue must fall back to the engine";

  // The auditor observes; it must not perturb.
  EXPECT_EQ(fast.end_ns, fast_unaudited.end_ns);
  EXPECT_EQ(fast.latency_sum, fast_unaudited.latency_sum);
  EXPECT_EQ(fast.transactions, fast_unaudited.transactions);

  if (audit::compiled_in()) {
    EXPECT_EQ(engine.conflicts, 0u);
    EXPECT_EQ(fast.conflicts, 0u);
  }
}

// Crossbar stat shards: the per-lane accumulators must fold into the
// same published slots a single shared StatSet used to carry, and the
// fold must be stable across repeated stats() reads.
TEST(Audit, CrossbarShardedStatsFoldDeterministically) {
  Simulator sim;
  sim.set_audit_enabled(true);
  CrossbarCam xbar(sim, "xbar", 10_ns, 8);
  ocp::BankedMemorySlave mem0("m0", 0, 1 << 12);
  ocp::BankedMemorySlave mem1("m1", 0, 1 << 12);
  xbar.attach_slave(mem0, {0, 1 << 12}, "m0");
  xbar.attach_slave(mem1, {1 << 12, 2 << 12}, "m1");
  const std::size_t a = xbar.add_master("a");
  const std::size_t b = xbar.add_master("b");
  sim.spawn_thread("a", [&] {
    std::vector<std::uint8_t> p(32, 1);
    Txn t;
    for (int i = 0; i < 5; ++i) {
      t.begin_write(static_cast<std::uint64_t>(i) * 64, p.data(), p.size());
      xbar.master_port(a).transport(t);
    }
  });
  sim.spawn_thread("b", [&] {
    std::vector<std::uint8_t> p(32, 2);
    Txn t;
    for (int i = 0; i < 5; ++i) {
      t.begin_write((1 << 12) + static_cast<std::uint64_t>(i) * 64, p.data(),
                    p.size());
      xbar.master_port(b).transport(t);
    }
  });
  sim.run();
  auto& st = xbar.stats();
  EXPECT_EQ(st.counter("transactions"), 10u);
  EXPECT_EQ(st.counter("bytes"), 320u);
  EXPECT_EQ(st.acc("latency_ns").count(), 10u);
  EXPECT_EQ(st.acc("master_a_latency_ns").count(), 5u);
  EXPECT_EQ(st.acc("master_b_latency_ns").count(), 5u);
  const double first_sum = st.acc("latency_ns").sum();
  const double first_sd = st.acc("latency_ns").stddev();
  // Re-reading refolds from the shards; the result must not drift.
  auto& again = xbar.stats();
  EXPECT_EQ(again.acc("latency_ns").sum(), first_sum);
  EXPECT_EQ(again.acc("latency_ns").stddev(), first_sd);
  if (audit::compiled_in()) {
    EXPECT_EQ(sim.audit_report().conflicts.size(), 0u)
        << sim.audit_report().table();
  }
}
