// Cross-module integration tests: whole-system scenarios that combine
// the mapper, CAM library, wrappers, HW/SW interface, RTOS, and
// exploration engine — the flows a user of the library actually runs.
#include <gtest/gtest.h>

#include <array>

#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::core;
using namespace stlm::time_literals;

namespace {

// Three-stage pipeline with a checksum so corruption anywhere shows up.
struct Pipeline {
  std::vector<std::unique_ptr<ProcessingElement>> owned;
  SystemGraph graph;
  long* checksum;

  explicit Pipeline(long* sum, int blocks = 10) : checksum(sum) {
    auto src = std::make_unique<LambdaPe>("src", [blocks](ExecContext& ctx) {
      ship::ship_if& out = ctx.channel("out");
      for (int b = 0; b < blocks; ++b) {
        ship::VectorMsg<std::uint32_t> m;
        m.data.resize(16);
        for (int i = 0; i < 16; ++i) {
          m.data[static_cast<std::size_t>(i)] =
              static_cast<std::uint32_t>(b * 100 + i);
        }
        ctx.consume(50);
        out.send(m);
      }
    });
    auto mid = std::make_unique<LambdaPe>("mid", [blocks](ExecContext& ctx) {
      ship::ship_if& in = ctx.channel("in");
      ship::ship_if& out = ctx.channel("out");
      for (int b = 0; b < blocks; ++b) {
        ship::VectorMsg<std::uint32_t> m;
        in.recv(m);
        for (auto& v : m.data) v = v * 2 + 1;
        ctx.consume(100);
        out.send(m);
      }
    });
    auto dst = std::make_unique<LambdaPe>("dst", [blocks, sum](ExecContext& ctx) {
      ship::ship_if& in = ctx.channel("in");
      for (int b = 0; b < blocks; ++b) {
        ship::VectorMsg<std::uint32_t> m;
        in.recv(m);
        for (auto v : m.data) *sum += v;
      }
    });
    graph.add_pe(*src);
    graph.add_pe(*mid);
    graph.add_pe(*dst);
    graph.connect("s2m", *src, "out", *mid, "in", 2);
    graph.connect("m2d", *mid, "out", *dst, "in", 2);
    owned.push_back(std::move(src));
    owned.push_back(std::move(mid));
    owned.push_back(std::move(dst));
  }
};

long expected_checksum(int blocks = 10) {
  long sum = 0;
  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < 16; ++i) sum += (b * 100 + i) * 2 + 1;
  }
  return sum;
}

}  // namespace

TEST(Integration, PipelineChecksumIdenticalAcrossLevels) {
  for (auto level : {AbstractionLevel::ComponentAssembly,
                     AbstractionLevel::Ccatb, AbstractionLevel::Cam}) {
    long sum = 0;
    Pipeline pl(&sum);
    pl.graph.discover_roles();
    sum = 0;  // discovery probe counted too
    Simulator sim;
    auto ms = Mapper::map(sim, pl.graph, Platform{}, level);
    ASSERT_TRUE(ms->run_until_done(100_ms)) << level_name(level);
    EXPECT_EQ(sum, expected_checksum()) << level_name(level);
  }
}

TEST(Integration, PipelineChecksumWithMiddleStageInSoftware) {
  long sum = 0;
  Pipeline pl(&sum);
  pl.graph.set_partition(*pl.graph.pes()[1], Partition::Software);
  pl.graph.discover_roles();
  sum = 0;
  Simulator sim;
  auto ms = Mapper::map(sim, pl.graph, Platform{}, AbstractionLevel::Cam);
  ASSERT_TRUE(ms->run_until_done(200_ms));
  EXPECT_EQ(sum, expected_checksum());
  // The SW stage's traffic crossed the HW/SW interface: two adapters on
  // the bus, both interrupt-driven.
  EXPECT_GT(ms->cpu_model()->bus_transactions(), 0u);
}

TEST(Integration, PipelineFullySoftware) {
  long sum = 0;
  Pipeline pl(&sum);
  for (auto* pe : pl.graph.pes()) {
    pl.graph.set_partition(*pe, Partition::Software);
  }
  pl.graph.discover_roles();
  sum = 0;
  Simulator sim;
  auto ms = Mapper::map(sim, pl.graph, Platform{}, AbstractionLevel::Cam);
  ASSERT_TRUE(ms->run_until_done(200_ms));
  EXPECT_EQ(sum, expected_checksum());
  // Everything is RTOS-local: no bus transactions at all.
  EXPECT_EQ(ms->bus()->stats().counter("transactions"), 0u);
  EXPECT_GE(ms->os()->context_switches(), 3u);
}

TEST(Integration, PlatformSweepPreservesFunction) {
  for (const auto& p : expl::default_candidates()) {
    long sum = 0;
    Pipeline pl(&sum);
    pl.graph.discover_roles();
    sum = 0;
    Simulator sim;
    auto ms = Mapper::map(sim, pl.graph, p, AbstractionLevel::Cam);
    ASSERT_TRUE(ms->run_until_done(200_ms)) << p.name;
    EXPECT_EQ(sum, expected_checksum()) << p.name;
  }
}

TEST(Integration, MixedRpcAndStreamOnOneBus) {
  // A streaming pair and an RPC pair share one PLB; both finish and both
  // are functionally intact.
  std::vector<std::unique_ptr<ProcessingElement>> owned;
  SystemGraph g;
  int rpc_sum = 0;
  auto prod = std::make_unique<expl::ProducerPe>("prod", 20, 128, 10);
  auto sink = std::make_unique<expl::SinkPe>("sink", 20);
  auto client = std::make_unique<LambdaPe>("client", [&](ExecContext& ctx) {
    ship::ship_if& out = ctx.channel("out");
    for (int i = 0; i < 10; ++i) {
      ship::PodMsg<int> req(i), resp;
      out.request(req, resp);
      rpc_sum += resp.value;
    }
  });
  auto server = std::make_unique<LambdaPe>("server", [](ExecContext& ctx) {
    ship::ship_if& in = ctx.channel("in");
    for (int i = 0; i < 10; ++i) {
      ship::PodMsg<int> req;
      in.recv(req);
      ship::PodMsg<int> resp(req.value * req.value);
      ctx.consume(30);
      in.reply(resp);
    }
  });
  expl::SinkPe* sink_ptr = sink.get();
  g.add_pe(*prod);
  g.add_pe(*sink);
  g.add_pe(*client);
  g.add_pe(*server);
  g.connect("stream", *prod, "out", *sink, "in", 2);
  g.connect("rpc", *client, "out", *server, "in");
  owned.push_back(std::move(prod));
  owned.push_back(std::move(sink));
  owned.push_back(std::move(client));
  owned.push_back(std::move(server));

  g.discover_roles();
  rpc_sum = 0;
  Simulator sim;
  auto ms = Mapper::map(sim, g, Platform{}, AbstractionLevel::Cam);
  ASSERT_TRUE(ms->run_until_done(200_ms));
  EXPECT_EQ(sink_ptr->received(), 20u);
  EXPECT_EQ(rpc_sum, 0 + 1 + 4 + 9 + 16 + 25 + 36 + 49 + 64 + 81);
}

TEST(Integration, TimingRefinesMonotonically) {
  // Simulated completion time must not decrease as the model refines.
  std::array<Time, 3> times{};
  int idx = 0;
  for (auto level : {AbstractionLevel::ComponentAssembly,
                     AbstractionLevel::Ccatb, AbstractionLevel::Cam}) {
    long sum = 0;
    Pipeline pl(&sum, 20);
    pl.graph.discover_roles();
    Simulator sim;
    auto ms = Mapper::map(sim, pl.graph, Platform{}, level);
    ASSERT_TRUE(ms->run_until_done(200_ms));
    times[static_cast<std::size_t>(idx++)] = sim.now();
  }
  EXPECT_LE(times[0], times[1]);
  EXPECT_LE(times[1], times[2]);
}

TEST(Integration, ExplorerAgreesWithDirectMapping) {
  // The explorer's reported sim time matches a hand-built run.
  expl::Explorer ex([](SystemGraph& g,
                       std::vector<std::unique_ptr<ProcessingElement>>& o) {
    auto prod = std::make_unique<expl::ProducerPe>("p", 8, 64, 10);
    auto sink = std::make_unique<expl::SinkPe>("s", 8);
    g.add_pe(*prod);
    g.add_pe(*sink);
    g.connect("ch", *prod, "out", *sink, "in", 2);
    o.push_back(std::move(prod));
    o.push_back(std::move(sink));
  });
  Platform p;
  const auto row = ex.evaluate(p, 50_ms);
  ASSERT_TRUE(row.completed);

  long dummy = 0;
  (void)dummy;
  std::vector<std::unique_ptr<ProcessingElement>> owned;
  SystemGraph g;
  auto prod = std::make_unique<expl::ProducerPe>("p", 8, 64, 10);
  auto sink = std::make_unique<expl::SinkPe>("s", 8);
  g.add_pe(*prod);
  g.add_pe(*sink);
  g.connect("ch", *prod, "out", *sink, "in", 2);
  owned.push_back(std::move(prod));
  owned.push_back(std::move(sink));
  g.discover_roles();
  Simulator sim;
  auto ms = Mapper::map(sim, g, p, AbstractionLevel::Cam);
  ASSERT_TRUE(ms->run_until_done(50_ms));
  EXPECT_NEAR(row.sim_time_us, sim.now().to_seconds() * 1e6, 1e-6);
}
