// Tests for the observability layer (src/obs): trace-exporter schema and
// determinism, the fast-path tracing blind-spot regression, the kernel
// profiler, metrics sampling, and the report/explorer surfacing.
//
// Txn ids come from a process-global counter, so two runs inside one test
// binary get different ids; byte-identity is asserted on id-free traces
// and on id-normalized full traces. Cross-process byte-identity (fresh
// counters) is what CI checks by running the example twice.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cam/cam.hpp"
#include "core/core.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "obs/obs.hpp"
#include "ocp/memory.hpp"
#include "ocp/ocp.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// All "ts" values in file order (the fixed-point rendering parses exactly
// back through strtod for the magnitudes the tests produce).
std::vector<double> timestamps(const std::string& json) {
  std::vector<double> out;
  const std::string key = "\"ts\":";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    out.push_back(std::strtod(json.c_str() + pos + key.size(), nullptr));
  }
  return out;
}

// Blank out every `"id":<digits>` so traces from runs with different
// global txn-id offsets can be compared for structural identity.
std::string strip_ids(std::string json) {
  const std::string key = "\"id\":";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    std::size_t i = pos + key.size();
    while (i < json.size() && std::isdigit(static_cast<unsigned char>(json[i]))) {
      json[i++] = '#';
    }
  }
  return json;
}

// A two-master workload against a PLB with optional fast targets: enough
// contention that fast runs mix fast-path completions and engine
// fallbacks, which is exactly the coverage the blind-spot test needs.
struct TraceRun {
  std::string json;
  std::uint64_t fast_hits = 0;
  std::uint64_t transactions = 0;
};

TraceRun run_traced_plb(bool fast, obs::TraceSession::Options opts = {}) {
  Simulator sim;
  obs::TraceSession trace(opts);
  trace.attach(sim);
  cam::PlbCam bus(sim, "plb", 10_ns, std::make_unique<cam::PriorityArbiter>(),
                  0, cam::SplitConfig{}, fast);
  ocp::MemorySlave mem("mem", 0, 1 << 16, 30_ns);
  bus.attach_slave(mem, {0, 1 << 16}, "mem");
  const std::size_t m0 = bus.add_master("a");
  const std::size_t m1 = bus.add_master("b");
  sim.spawn_thread("a", [&] {
    std::vector<std::uint8_t> p(64, 1);
    Txn t;
    for (int i = 0; i < 10; ++i) {
      t.begin_write(static_cast<std::uint64_t>(i % 8) * 64, p.data(),
                    p.size());
      bus.master_port(m0).transport(t);
      wait(40_ns);
    }
  });
  sim.spawn_thread("b", [&] {
    wait(15_ns);
    std::vector<std::uint8_t> p(32, 2);
    Txn t;
    for (int i = 0; i < 10; ++i) {
      t.begin_read(0x1000 + static_cast<std::uint64_t>(i % 4) * 32, 32);
      bus.master_port(m1).transport(t);
      wait(25_ns);
    }
  });
  sim.run();
  TraceRun r;
  r.fast_hits = bus.fast_path_hits();
  r.transactions = bus.stats().counter("transactions");
  std::ostringstream os;
  trace.write_json(os);
  r.json = os.str();
  return r;
}

expl::Explorer::GraphFactory tiny_factory() {
  return [](core::SystemGraph& g,
            std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    auto prod = std::make_unique<expl::ProducerPe>("prod", 8, 64, 100);
    auto sink = std::make_unique<expl::SinkPe>("sink", 8);
    g.add_pe(*prod);
    g.add_pe(*sink);
    g.connect("ch", *prod, "out", *sink, "in", 1);
    o.push_back(std::move(prod));
    o.push_back(std::move(sink));
  };
}

core::Platform fast_plb_platform() {
  core::Platform p;
  p.name = "plb-fast";
  p.bus = core::BusKind::Plb;
  p.arb = core::ArbKind::Priority;
  p.fast_targets = true;
  return p;
}

}  // namespace

// The exporter emits a well-formed Chrome Trace Event document: metadata
// names every track, duration pairs balance, async pairs balance, and
// timestamps are monotonically non-decreasing in file order.
TEST(ObsTrace, SchemaBalanceAndMonotonicity) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with -DSTLM_OBS=OFF";
  const TraceRun r = run_traced_plb(/*fast=*/false);
  const std::string& j = r.json;

  EXPECT_EQ(j.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_GE(count_of(j, "\"ph\":\"M\""), 3u);  // process + >=2 thread names
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"plb\""), std::string::npos);

  // Balanced pairs.
  const std::size_t b = count_of(j, "\"ph\":\"B\"");
  const std::size_t e = count_of(j, "\"ph\":\"E\"");
  EXPECT_GT(b, 0u);
  EXPECT_EQ(b, e);
  const std::size_t ab = count_of(j, "\"ph\":\"b\"");
  const std::size_t ae = count_of(j, "\"ph\":\"e\"");
  EXPECT_EQ(ab, ae);
  // Two async spans (queue + service) per completed transaction; each
  // span's name appears on both its 'b' and its 'e' event.
  EXPECT_EQ(ab, 2 * r.transactions);
  EXPECT_EQ(count_of(j, "\"name\":\"queue\""), 2 * r.transactions);
  EXPECT_EQ(count_of(j, "\"name\":\"service\""), 2 * r.transactions);

  const std::vector<double> ts = timestamps(j);
  ASSERT_GT(ts.size(), 4u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    ASSERT_GE(ts[i], ts[i - 1]) << "ts regression at event " << i;
  }
}

// Determinism: identical runs export byte-identical JSON once the
// process-global txn-id offset is masked out — and exactly identical when
// txn spans (the only id-carrying events) are disabled.
TEST(ObsTrace, ExportIsDeterministic) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with -DSTLM_OBS=OFF";
  const TraceRun full1 = run_traced_plb(false);
  const TraceRun full2 = run_traced_plb(false);
  EXPECT_EQ(strip_ids(full1.json), strip_ids(full2.json));

  obs::TraceSession::Options no_txn;
  no_txn.txn_spans = false;
  const TraceRun lean1 = run_traced_plb(false, no_txn);
  const TraceRun lean2 = run_traced_plb(false, no_txn);
  EXPECT_EQ(lean1.json, lean2.json);
  EXPECT_EQ(count_of(lean1.json, "\"ph\":\"b\""), 0u);
}

// Fast-path blind-spot regression: transactions completed on the fast
// path (no grant-engine involvement) must still appear in the trace.
// A fast run and an engine-only run of the same workload agree on the
// transaction-span count, and the fast run demonstrably used both paths.
TEST(ObsTrace, FastPathTransactionsAreTraced) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with -DSTLM_OBS=OFF";
  const TraceRun slow = run_traced_plb(/*fast=*/false);
  const TraceRun fast = run_traced_plb(/*fast=*/true);

  EXPECT_EQ(slow.fast_hits, 0u);
  EXPECT_GT(fast.fast_hits, 0u);
  EXPECT_LT(fast.fast_hits, fast.transactions)
      << "need a mix of fast completions and engine fallbacks";

  EXPECT_EQ(fast.transactions, slow.transactions);
  EXPECT_EQ(count_of(fast.json, "\"name\":\"queue\""),
            count_of(slow.json, "\"name\":\"queue\""));
  EXPECT_EQ(count_of(fast.json, "\"name\":\"service\""),
            count_of(slow.json, "\"name\":\"service\""));
  // Fallbacks under contention are marked so the timeline explains them.
  EXPECT_GT(count_of(fast.json, "\"name\":\"fast_fallback\""), 0u);
  EXPECT_EQ(count_of(slow.json, "\"name\":\"fast_fallback\""), 0u);
}

// The event cap drops whole spans, never half of one: B/E stay balanced
// and the drop counter owns everything that fell off the end.
TEST(ObsTrace, EventCapKeepsPairsBalanced) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with -DSTLM_OBS=OFF";
  obs::TraceSession::Options tiny;
  tiny.max_events = 16;
  const TraceRun r = run_traced_plb(false, tiny);
  obs::TraceSession probe(tiny);  // options round-trip
  EXPECT_EQ(probe.options().max_events, 16u);

  EXPECT_EQ(count_of(r.json, "\"ph\":\"B\""), count_of(r.json, "\"ph\":\"E\""));
  EXPECT_EQ(count_of(r.json, "\"ph\":\"b\""), count_of(r.json, "\"ph\":\"e\""));
  const TraceRun uncapped = run_traced_plb(false);
  EXPECT_LT(count_of(r.json, "\"ph\":"), count_of(uncapped.json, "\"ph\":"));
}

// Profiler: dispatch hooks attribute wall time and dispatch counts per
// process, kernel counters flow into the snapshot, and bus sample
// callbacks produce the fast-hit rate. The JSON export carries the same.
TEST(ObsProfiler, AttributesDispatchesAndCounters) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with -DSTLM_OBS=OFF";
  Simulator sim;
  obs::Profiler prof;
  prof.attach(sim);
  cam::PlbCam bus(sim, "plb", 10_ns, std::make_unique<cam::PriorityArbiter>(),
                  0, cam::SplitConfig{}, /*fast=*/true);
  ocp::MemorySlave mem("mem", 0, 1 << 16);
  bus.attach_slave(mem, {0, 1 << 16}, "mem");
  const std::size_t m = bus.add_master("cpu");
  prof.add_bus("plb", [&bus] {
    obs::Profiler::BusSample s;
    s.transactions = bus.stats().counter("transactions");
    s.fast_hits = bus.fast_path_hits();
    return s;
  });
  sim.spawn_thread("cpu", [&] {
    std::vector<std::uint8_t> p(64, 3);
    Txn t;
    for (int i = 0; i < 8; ++i) {
      t.begin_write(static_cast<std::uint64_t>(i) * 64, p.data(), p.size());
      bus.master_port(m).transport(t);
      wait(10_ns);
    }
  });
  sim.run();

  const obs::Profiler::Snapshot s = prof.snapshot();
  EXPECT_GT(s.ctx_switches, 0u);
  EXPECT_EQ(s.ctx_switches, sim.ctx_switches());
  ASSERT_EQ(s.buses.size(), 1u);
  EXPECT_EQ(s.buses[0].transactions, 8u);
  EXPECT_EQ(s.buses[0].fast_hits, 8u);
  EXPECT_DOUBLE_EQ(s.fast_hit_rate, 1.0);
  ASSERT_FALSE(s.processes.empty());
  std::uint64_t cpu_dispatches = 0;
  for (const auto& p : s.processes) {
    if (p.name == "cpu") cpu_dispatches = p.dispatches;
    EXPECT_GE(p.wall_ns, 0.0);
  }
  EXPECT_GT(cpu_dispatches, 0u);

  std::ostringstream table, json;
  prof.write_table(table);
  prof.write_json(json);
  EXPECT_NE(table.str().find("ctx switches"), std::string::npos);
  EXPECT_NE(table.str().find("fast-path hit rate"), std::string::npos);
  EXPECT_NE(json.str().find("\"ctx_switches\""), std::string::npos);
  EXPECT_NE(json.str().find("\"fast_hit_rate\": 1"), std::string::npos);
}

// The wheel and stack-pool internals the profiler snapshots move when the
// kernel actually schedules timed work across coroutine stacks.
TEST(ObsProfiler, KernelInternalCountersMove) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with -DSTLM_OBS=OFF";
  Simulator sim;
  obs::Profiler prof;
  prof.attach(sim);
  for (int i = 0; i < 4; ++i) {
    sim.spawn_thread("w" + std::to_string(i), [i] {
      for (int k = 0; k < 5; ++k) wait(Time::ns(10 + 7 * i));
    });
  }
  sim.run();
  const obs::Profiler::Snapshot s = prof.snapshot();
  EXPECT_GT(s.wheel_pushes, 0u);
  EXPECT_GT(s.wheel_peak_size, 0u);
  EXPECT_EQ(s.wheel_size, 0u) << "run() drains the wheel";
  EXPECT_GT(s.stack_peak_in_use, 0u);
  EXPECT_GE(s.ctx_switches, 4u);
}

// A single runner with nothing else live advances time inline instead of
// taking a scheduler round trip; the kernel counts those separately.
TEST(ObsProfiler, InlineAdvancesCounted) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with -DSTLM_OBS=OFF";
  Simulator sim;
  sim.spawn_thread("lone", [] {
    for (int i = 0; i < 10; ++i) wait(5_ns);
  });
  sim.run();
  EXPECT_GT(sim.inline_advances(), 0u);
}

// Metrics: the periodic sampler reads every gauge on a fixed simulated
// cadence, rows are stamped with simulated time, and the CSV artifact is
// shaped time_us,<gauges> with byte-identical output across runs.
TEST(ObsMetrics, PeriodicSamplerCadenceAndCsv) {
  auto run = [] {
    Simulator sim;
    obs::MetricsRegistry reg;
    int calls = 0;
    reg.add_gauge("ramp", [&calls] { return static_cast<double>(calls++); });
    reg.add_gauge("konst", [] { return 2.5; });
    obs::PeriodicSampler sampler(sim, reg, 100_ns, "sampler");
    sim.run_for(Time::us(1));
    sampler.stop();
    std::ostringstream os;
    reg.write_csv(os);
    return std::make_pair(os.str(), reg.rows().size());
  };
  const auto [csv1, rows1] = run();
  const auto [csv2, rows2] = run();

  EXPECT_EQ(rows1, 10u) << "1 us / 100 ns interval";
  EXPECT_EQ(csv1, csv2);
  EXPECT_EQ(csv1.rfind("time_us,ramp,konst\n", 0), 0u);
  EXPECT_NE(csv1.find("\n0.100000000,0,2.5\n"), std::string::npos);
  EXPECT_NE(csv1.find("\n1.000000000,9,2.5\n"), std::string::npos);
}

TEST(ObsMetrics, RegistrySamplesOnDemandAndExportsJson) {
  obs::MetricsRegistry reg;
  double v = 1.0;
  reg.add_gauge("g", [&v] { return v; });
  reg.sample(Time::ns(10));
  v = 3.0;
  reg.sample(Time::ns(20));
  ASSERT_EQ(reg.rows().size(), 2u);
  EXPECT_EQ(reg.rows()[0].values[0], 1.0);
  EXPECT_EQ(reg.rows()[1].values[0], 3.0);
  ASSERT_EQ(reg.names().size(), 1u);
  EXPECT_EQ(reg.names()[0], "g");
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"names\":[\"g\"]"), std::string::npos);
  EXPECT_NE(os.str().find("\"t_us\":0.010000000"), std::string::npos);
  reg.clear();
  EXPECT_TRUE(reg.rows().empty());
}

// MappedSystem surfacing: report() prints the kernel observability
// section and the default gauges feed a sampler without any hand-wiring.
TEST(ObsIntegration, MappedSystemReportAndDefaultGauges) {
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  tiny_factory()(graph, owned);
  graph.discover_roles();

  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, fast_plb_platform(),
                              core::AbstractionLevel::Cam);
  obs::MetricsRegistry reg;
  ms->install_default_gauges(reg);
  EXPECT_GE(reg.gauge_count(), 3u);
  obs::PeriodicSampler sampler(sim, reg, 500_ns);
  ASSERT_TRUE(ms->run_until_done(Time::us(300)));
  sampler.stop();

  EXPECT_GT(reg.rows().size(), 0u);
  std::ostringstream os;
  ms->report(os);
  const std::string rep = os.str();
  if (obs::compiled_in()) {
    EXPECT_NE(rep.find("kernel ctx switches"), std::string::npos);
    EXPECT_NE(rep.find("kernel inline advances"), std::string::npos);
    EXPECT_NE(rep.find("bus fast-path hit rate"), std::string::npos);
  } else {
    EXPECT_EQ(rep.find("kernel ctx switches"), std::string::npos);
  }
}

// Attached OCP monitors show up in the report with their full counter set
// (stall cycles, violations, outstanding) — previously those sat unread
// on the monitor object unless a test polled them directly.
TEST(ObsIntegration, ReportSurfacesOcpMonitors) {
  Simulator sim;
  Clock clk(sim, "clk", 10_ns);
  ocp::OcpPins pins(sim, "pins");
  ocp::MemorySlave mem("mem", 0, 4096, 20_ns);
  ocp::OcpPinMaster master(sim, "master", pins, clk);
  ocp::OcpPinSlave slave(sim, "slave", pins, clk, mem);
  ocp::OcpMonitor mon(sim, "mon", pins, clk);
  sim.spawn_thread("pe", [&] {
    master.transport(ocp::Request::write(0x40, {1, 2, 3, 4}));
    master.transport(ocp::Request::read(0x40, 4));
    wait(50_ns);  // let the monitor sample the final response edges
    sim.stop();
  });
  sim.run();
  EXPECT_GT(mon.command_beats(), 0u);
  EXPECT_GE(mon.outstanding(), 0);

  // Monitors registered on a mapped system are reported; this one uses a
  // bare graph (no monitors), so exercise the attach path directly.
  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  tiny_factory()(graph, owned);
  graph.discover_roles();
  Simulator sim2;
  auto ms = core::Mapper::map(sim2, graph, fast_plb_platform(),
                              core::AbstractionLevel::Cam);
  ms->attach_monitor(mon);
  std::ostringstream os;
  ms->report(os);
  EXPECT_NE(os.str().find("ocp monitors:"), std::string::npos);
  EXPECT_NE(os.str().find("stall_cycles="), std::string::npos);
  EXPECT_NE(os.str().find("violations=0"), std::string::npos);
  EXPECT_NE(os.str().find("outstanding="), std::string::npos);
}

// Explorer: rows carry the new kernel columns, the table prints them, and
// the opt-in trace target writes a per-cell trace file.
TEST(ObsIntegration, ExplorerRowsTableAndTraceTarget) {
  const std::string path = "obs_test_cell_trace.json";
  expl::Explorer ex(tiny_factory());
  ex.set_trace_target({"plb-fast", "", path});
  const expl::ExplorationRow row =
      ex.evaluate(fast_plb_platform(), Time::us(300));
  ASSERT_TRUE(row.completed);

  // fast_hit_rate derives from the always-on bus stats counters;
  // ctx_switches is the kernel-side counter maintained under STLM_OBS.
  EXPECT_GT(row.fast_hit_rate, 0.0);
  EXPECT_LE(row.fast_hit_rate, 1.0);
  if (obs::compiled_in()) {
    EXPECT_GT(row.ctx_switches, 0u);
  } else {
    EXPECT_EQ(row.ctx_switches, 0u);
  }

  std::ostringstream table;
  expl::Explorer::print_table(table, {row});
  EXPECT_NE(table.str().find("ctx_sw"), std::string::npos);
  EXPECT_NE(table.str().find("fast_hit"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace target file missing";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  if (obs::compiled_in()) {
    EXPECT_NE(buf.str().find("\"ph\":\"B\""), std::string::npos);
  }
  in.close();
  std::remove(path.c_str());

  // Non-matching target: no file is produced for other cells.
  const std::string other = "obs_test_other_trace.json";
  expl::Explorer ex2(tiny_factory());
  ex2.set_trace_target({"no-such-platform", "", other});
  (void)ex2.evaluate(fast_plb_platform(), Time::us(300));
  std::ifstream none(other);
  EXPECT_FALSE(none.good());
}
