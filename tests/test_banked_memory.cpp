// Tests for the banked memory target: row hit/miss timing, bank-conflict
// serialization, and seeded multi-master contention over a CAM.
#include <gtest/gtest.h>

#include "cam/cam.hpp"
#include "kernel/kernel.hpp"
#include "ocp/banked_memory.hpp"
#include "ocp/memory.hpp"
#include "workload/rng.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::time_literals;

namespace {

ocp::BankedMemoryConfig test_cfg() {
  ocp::BankedMemoryConfig cfg;
  cfg.banks = 4;
  cfg.interleave_bytes = 64;
  cfg.row_bytes = 1024;
  cfg.row_hit = 20_ns;
  cfg.row_miss = 60_ns;
  cfg.bank_busy = 40_ns;
  return cfg;
}

// Issue one write of `n` bytes at `addr` directly (no bus), returning the
// simulated time it took.
Time timed_write(Simulator& sim, ocp::BankedMemorySlave& mem,
                 std::uint64_t addr, std::size_t n) {
  Time elapsed = Time::zero();
  sim.spawn_thread("m", [&] {
    std::vector<std::uint8_t> payload(n, 0xcd);
    Txn t;
    t.begin_write(addr, payload.data(), payload.size());
    const Time start = sim.now();
    mem.handle(t);
    EXPECT_TRUE(t.ok());
    elapsed = sim.now() - start;
  });
  sim.run();
  return elapsed;
}

}  // namespace

TEST(BankedMemory, RowMissThenHitTiming) {
  Simulator sim;
  ocp::BankedMemorySlave mem("ddr", 0x0, 0x10000, test_cfg());
  // First access opens the row: miss. Same row again: hit. Different row,
  // same bank: miss again.
  sim.spawn_thread("m", [&] {
    std::uint8_t b = 1;
    Txn t;
    t.begin_write(0x0, &b, 1);
    Time start = sim.now();
    mem.handle(t);
    EXPECT_EQ((sim.now() - start), 60_ns);  // cold row: miss

    wait(100_ns);  // let the bank go idle
    t.begin_write(0x4, &b, 1);
    start = sim.now();
    mem.handle(t);
    EXPECT_EQ((sim.now() - start), 20_ns);  // open row: hit

    wait(100_ns);
    // Row 4 lands on bank 0 too (4096/64 % 4 == 0) but a different row.
    t.begin_write(0x1000, &b, 1);
    start = sim.now();
    mem.handle(t);
    EXPECT_EQ((sim.now() - start), 60_ns);  // row switch: miss
  });
  sim.run();
  EXPECT_EQ(mem.row_hits(), 1u);
  EXPECT_EQ(mem.row_misses(), 2u);
  EXPECT_EQ(mem.writes(), 3u);
  EXPECT_EQ(mem.bank_conflicts(), 0u);
}

TEST(BankedMemory, BackToBackSameBankPaysConflictPenalty) {
  Simulator sim;
  ocp::BankedMemorySlave same("ddr1", 0x0, 0x10000, test_cfg());
  ocp::BankedMemorySlave spread("ddr2", 0x0, 0x10000, test_cfg());
  sim.spawn_thread("m", [&] {
    std::uint8_t b = 1;
    Txn t;
    // Two immediate accesses to the same bank: the second stalls through
    // the 40 ns recovery window before paying its own latency.
    t.begin_write(0x0, &b, 1);
    same.handle(t);
    const Time start_same = sim.now();
    t.begin_write(0x1000, &b, 1);  // bank 0 again, different row
    same.handle(t);
    const Time same_cost = sim.now() - start_same;

    // Two immediate accesses to different banks: no stall.
    t.begin_write(0x0, &b, 1);
    spread.handle(t);
    const Time start_spread = sim.now();
    t.begin_write(0x40, &b, 1);  // next 64B block -> bank 1
    spread.handle(t);
    const Time spread_cost = sim.now() - start_spread;

    EXPECT_GT(same_cost, spread_cost);
  });
  sim.run();
  EXPECT_EQ(same.bank_conflicts(), 1u);
  EXPECT_GT(same.conflict_stall(), Time::zero());
  EXPECT_EQ(spread.bank_conflicts(), 0u);
}

TEST(BankedMemory, WideAccessSpansBanks) {
  Simulator sim;
  ocp::BankedMemorySlave mem("ddr", 0x0, 0x10000, test_cfg());
  // A 256-byte burst starting at 0 touches all four banks; a follow-up to
  // any of them conflicts.
  const Time first = timed_write(sim, mem, 0x0, 256);
  EXPECT_EQ(first, 60_ns);
  Simulator sim2;  // fresh clock, same memory state semantics don't matter
  ocp::BankedMemorySlave mem2("ddr", 0x0, 0x10000, test_cfg());
  sim2.spawn_thread("m", [&] {
    std::vector<std::uint8_t> payload(256, 0xab);
    Txn t;
    t.begin_write(0x0, payload.data(), payload.size());
    mem2.handle(t);
    std::uint8_t b = 0;
    t.begin_write(0xc0, &b, 1);  // bank 3, still busy
    mem2.handle(t);
  });
  sim2.run();
  EXPECT_EQ(mem2.bank_conflicts(), 1u);
}

TEST(BankedMemory, OutOfRangeRespondsError) {
  Simulator sim;
  ocp::BankedMemorySlave mem("ddr", 0x1000, 0x100, test_cfg());
  sim.spawn_thread("m", [&] {
    std::uint8_t b = 1;
    Txn t;
    t.begin_write(0xfff, &b, 1);
    mem.handle(t);
    EXPECT_FALSE(t.ok());
    t.begin_read(0x10fd, 8);
    mem.handle(t);
    EXPECT_FALSE(t.ok());
    t.begin_write(0x1000, &b, 1);
    mem.handle(t);
    EXPECT_TRUE(t.ok());
  });
  sim.run();
  EXPECT_EQ(mem.writes(), 1u);
}

TEST(BankedMemory, DataRoundTripsThroughBus) {
  Simulator sim;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<RoundRobinArbiter>());
  ocp::BankedMemorySlave mem("ddr", 0x0, 0x10000, test_cfg());
  bus.attach_slave(mem, {0x0, 0x10000}, "ddr");
  const std::size_t idx = bus.add_master("m0");
  sim.spawn_thread("pe", [&] {
    std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
    auto wr = bus.master_port(idx).transport(
        ocp::Request::write(0x80, payload));
    EXPECT_TRUE(wr.good());
    auto rd = bus.master_port(idx).transport(ocp::Request::read(0x80, 8));
    ASSERT_TRUE(rd.good());
    EXPECT_EQ(rd.data, payload);
  });
  sim.run();
  EXPECT_EQ(mem.reads(), 1u);
  EXPECT_EQ(mem.writes(), 1u);
}

TEST(BankedMemory, SeededContentionIsDeterministicAndContended) {
  // Four masters with seeded address streams hammer the banked memory
  // through a shared bus: the run must be deterministic (same seed, same
  // final state) and must exhibit both conflicts and row misses.
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    SharedBusCam bus(sim, "bus", 10_ns,
                     std::make_unique<RoundRobinArbiter>());
    ocp::BankedMemorySlave mem("ddr", 0x0, 0x40000, test_cfg());
    bus.attach_slave(mem, {0x0, 0x40000}, "ddr");
    for (int m = 0; m < 4; ++m) {
      const std::size_t idx = bus.add_master("m" + std::to_string(m));
      sim.spawn_thread("pe" + std::to_string(m), [&, m, idx, seed] {
        workload::SplitMix64 rng(
            workload::SplitMix64::derive(seed, static_cast<std::uint64_t>(m)));
        for (int i = 0; i < 40; ++i) {
          const std::uint64_t addr = rng.uniform(0, 0x3ff) * 64;
          const auto n = static_cast<std::size_t>(rng.uniform(4, 64));
          std::vector<std::uint8_t> payload(n, static_cast<std::uint8_t>(i));
          auto wr = bus.master_port(idx).transport(
              ocp::Request::write(addr, payload));
          EXPECT_TRUE(wr.good());
        }
      });
    }
    sim.run();
    struct Out {
      Time end;
      std::uint64_t conflicts, misses, hits;
    };
    return Out{sim.now(), mem.bank_conflicts(), mem.row_misses(),
               mem.row_hits()};
  };

  const auto a = run_once(99);
  const auto b = run_once(99);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.hits + a.misses, 160u);
  EXPECT_GT(a.misses, 0u);
}

TEST(BankedMemory, SlowerThanFlatMemoryUnderSameTraffic) {
  auto run = [](bool banked) {
    Simulator sim;
    PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
    ocp::BankedMemorySlave bmem("ddr", 0x0, 0x10000, test_cfg());
    ocp::MemorySlave fmem("sram", 0x0, 0x10000, 20_ns);
    if (banked) {
      bus.attach_slave(bmem, {0x0, 0x10000}, "ddr");
    } else {
      bus.attach_slave(fmem, {0x0, 0x10000}, "sram");
    }
    const std::size_t idx = bus.add_master("m0");
    sim.spawn_thread("pe", [&, idx] {
      std::vector<std::uint8_t> payload(32, 0xee);
      for (int i = 0; i < 32; ++i) {
        // Stride through rows on one bank: all misses + conflicts for the
        // banked model, flat cost for the plain one.
        auto r = bus.master_port(idx).transport(
            ocp::Request::write(static_cast<std::uint64_t>(i) * 1024,
                                payload));
        EXPECT_TRUE(r.good());
      }
    });
    sim.run();
    return sim.now();
  };
  EXPECT_GT(run(true), run(false));
}
