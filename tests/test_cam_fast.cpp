// Tests for the kernel fast path (fast-target contract): with
// `fast_targets` on, uncontended transactions to fast-capable slaves
// resolve inline — no grant-engine wakeup, no coroutine switch — and
// every observable (simulated time, stats, per-master channels, bank
// state evolution) stays bit-identical to the engine path. Contention
// falls back to the unchanged engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cam/cam.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "ocp/banked_memory.hpp"
#include "ocp/memory.hpp"
#include "trace/channel_stats.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::time_literals;

namespace {

// Observables a fast run must reproduce bit-identically from a slow run.
struct RunResult {
  Time end = Time::zero();
  double mean_latency_ns = 0.0;
  double mean_service_ns = 0.0;
  double utilization = 0.0;
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
  std::uint64_t fast_hits = 0;
};

enum class BusProto { Shared, Plb, Opb };

std::unique_ptr<CamBase> make_bus(Simulator& sim, BusProto proto, bool fast) {
  switch (proto) {
    case BusProto::Shared:
      return std::make_unique<SharedBusCam>(
          sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
          SplitConfig{}, fast);
    case BusProto::Plb:
      return std::make_unique<PlbCam>(sim, "bus", 10_ns,
                                      std::make_unique<PriorityArbiter>(), 0,
                                      SplitConfig{}, fast);
    case BusProto::Opb:
      return std::make_unique<OpbCam>(sim, "bus", 20_ns,
                                      std::make_unique<PriorityArbiter>(), 0,
                                      SplitConfig{}, fast);
  }
  return nullptr;
}

RunResult collect(Simulator& sim, CamBase& bus) {
  RunResult r;
  r.end = sim.now();
  r.mean_latency_ns = bus.stats().acc("latency_ns").mean();
  r.mean_service_ns = bus.stats().acc("service_ns").mean();
  r.utilization = bus.utilization();
  r.transactions = bus.stats().counter("transactions");
  r.bytes = bus.stats().counter("bytes");
  r.fast_hits = bus.fast_path_hits();
  return r;
}

void expect_identical(const RunResult& fast, const RunResult& slow) {
  EXPECT_EQ(fast.end, slow.end);
  EXPECT_DOUBLE_EQ(fast.mean_latency_ns, slow.mean_latency_ns);
  EXPECT_DOUBLE_EQ(fast.mean_service_ns, slow.mean_service_ns);
  EXPECT_DOUBLE_EQ(fast.utilization, slow.utilization);
  EXPECT_EQ(fast.transactions, slow.transactions);
  EXPECT_EQ(fast.bytes, slow.bytes);
}

// Single blocking master: writes and reads with think-time gaps against
// a memory with real service latency.
RunResult run_single_master(BusProto proto, bool fast, Time access_time) {
  Simulator sim;
  auto bus = make_bus(sim, proto, fast);
  ocp::MemorySlave mem("mem", 0, 1 << 16, access_time);
  bus->attach_slave(mem, {0, 1 << 16}, "mem");
  const std::size_t m = bus->add_master("cpu");
  sim.spawn_thread("cpu", [&] {
    std::vector<std::uint8_t> payload(64, 7);
    Txn txn;
    for (int i = 0; i < 20; ++i) {
      txn.begin_write(static_cast<std::uint64_t>(i % 8) * 64, payload.data(),
                      payload.size());
      bus->master_port(m).transport(txn);
      wait(5_ns);  // think time: the bus goes idle between transactions
      txn.begin_read(static_cast<std::uint64_t>(i % 8) * 64, 64);
      bus->master_port(m).transport(txn);
      wait(5_ns);
    }
  });
  sim.run();
  return collect(sim, *bus);
}

}  // namespace

// Every CamBase protocol: the fast path reproduces the engine's timing
// and statistics bit-identically for uncontended traffic, with and
// without target service latency, and actually engages (hits > 0).
TEST(CamFast, SingleMasterBitIdenticalAcrossProtocols) {
  for (BusProto proto : {BusProto::Shared, BusProto::Plb, BusProto::Opb}) {
    for (Time access : {Time::zero(), Time::ns(50)}) {
      const RunResult slow = run_single_master(proto, false, access);
      const RunResult fast = run_single_master(proto, true, access);
      expect_identical(fast, slow);
      EXPECT_EQ(slow.fast_hits, 0u);
      EXPECT_EQ(fast.fast_hits, fast.transactions)
          << "an uncontended single master must stay on the fast path";
      EXPECT_EQ(fast.transactions, 40u);
    }
  }
}

// The posted (non-blocking) API takes the two-stage timed fast path;
// same bit-identity contract.
TEST(CamFast, PostedTransactionsBitIdentical) {
  auto run = [](bool fast) {
    Simulator sim;
    PlbCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{}, fast);
    ocp::MemorySlave mem("mem", 0, 1 << 16, 30_ns);
    bus.attach_slave(mem, {0, 1 << 16}, "mem");
    const std::size_t m = bus.add_master("cpu");
    sim.spawn_thread("cpu", [&] {
      std::vector<std::uint8_t> payload(32, 3);
      Txn txn;
      for (int i = 0; i < 10; ++i) {
        txn.begin_write(static_cast<std::uint64_t>(i) * 32, payload.data(),
                        payload.size());
        bus.post(m, txn);
        txn.done.wait(sim);
        wait(7_ns);
      }
    });
    sim.run();
    return collect(sim, bus);
  };
  const RunResult slow = run(false);
  const RunResult fast = run(true);
  expect_identical(fast, slow);
  EXPECT_EQ(fast.fast_hits, 10u);
}

// Banked memory: the fast path must evolve the bank state (free_at /
// open row) exactly as the waiting path does — row hits, row misses and
// bank-conflict stalls all land on the same cycle.
TEST(CamFast, BankedMemoryStateEvolutionBitIdentical) {
  auto run = [](bool fast) {
    Simulator sim;
    PlbCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{}, fast);
    ocp::BankedMemorySlave mem("dram", 0, 1 << 18);
    bus.attach_slave(mem, {0, 1 << 18}, "dram");
    const std::size_t m = bus.add_master("cpu");
    sim.spawn_thread("cpu", [&] {
      std::vector<std::uint8_t> payload(64, 5);
      Txn txn;
      // Mix of same-row hits, row switches, and same-bank back-to-back
      // conflicts (stride 256 with 4 banks x 64B interleave revisits
      // bank 0 every iteration).
      for (int i = 0; i < 30; ++i) {
        const std::uint64_t addr =
            (i % 3 == 0) ? static_cast<std::uint64_t>(i) * 256
                         : static_cast<std::uint64_t>(i % 7) * 64;
        txn.begin_write(addr, payload.data(), payload.size());
        bus.master_port(m).transport(txn);
        if (i % 4 == 0) wait(15_ns);
      }
    });
    sim.run();
    return collect(sim, bus);
  };
  const RunResult slow = run(false);
  const RunResult fast = run(true);
  expect_identical(fast, slow);
  EXPECT_GT(fast.fast_hits, 0u);
}

// Contention: while a fast transaction holds the bus, a second master's
// request falls back to the engine, which stalls behind the fast
// occupancy — total timing still bit-identical to the all-engine run.
// (The masters issue at different instants; same-delta issue is the one
// documented divergence and is pinned by FallbackKeepsDeterminism.)
TEST(CamFast, ContendedTrafficFallsBackBitIdentical) {
  auto run = [](bool fast) {
    Simulator sim;
    PlbCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{}, fast);
    ocp::MemorySlave mem("mem", 0, 1 << 16, 40_ns);
    bus.attach_slave(mem, {0, 1 << 16}, "mem");
    const std::size_t m0 = bus.add_master("a");
    const std::size_t m1 = bus.add_master("b");
    sim.spawn_thread("a", [&] {
      std::vector<std::uint8_t> payload(64, 1);
      Txn txn;
      for (int i = 0; i < 12; ++i) {
        txn.begin_write(static_cast<std::uint64_t>(i % 8) * 64,
                        payload.data(), payload.size());
        bus.master_port(m0).transport(txn);
        wait(30_ns);
      }
    });
    sim.spawn_thread("b", [&] {
      wait(15_ns);  // issues mid-occupancy of a's first transaction
      std::vector<std::uint8_t> payload(32, 2);
      Txn txn;
      for (int i = 0; i < 12; ++i) {
        txn.begin_read(0x1000 + static_cast<std::uint64_t>(i % 4) * 32, 32);
        bus.master_port(m1).transport(txn);
        wait(10_ns);
      }
    });
    sim.run();
    return collect(sim, bus);
  };
  const RunResult slow = run(false);
  const RunResult fast = run(true);
  expect_identical(fast, slow);
  // Some transactions ride the fast path (idle windows), some fall back
  // (contended windows) — both must occur for this test to mean much.
  EXPECT_GT(fast.fast_hits, 0u);
  EXPECT_LT(fast.fast_hits, fast.transactions);
}

// Occupancy-end boundary: master b's timed wake is registered *before*
// a's fast transaction exists and lands at exactly the instant a's bus
// occupancy ends — so b runs first at that timestamp, before a's own
// resume. b must still see the bus as taken (the in-flight guard, not
// just the strict fast_busy_until_ check) and fall back to the engine;
// otherwise two fast transactions overlap and bank-state evolution
// diverges from the engine run.
TEST(CamFast, OccupancyEndBoundaryContentionBitIdentical) {
  auto run = [](bool fast) {
    Simulator sim;
    PlbCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{}, fast);
    ocp::BankedMemorySlave mem("dram", 0, 1 << 18);  // variable latency
    bus.attach_slave(mem, {0, 1 << 18}, "dram");
    const std::size_t m0 = bus.add_master("a");
    const std::size_t m1 = bus.add_master("b");
    // PLB @10ns, 8-byte width, 64-byte payload: a non-back-to-back
    // write occupies 2 + 8 = 10 cycles = 100 ns. b is spawned first so
    // its wait(100ns) gets the smaller wheel sequence number and runs
    // before a's occupancy-end resume at the same instant.
    sim.spawn_thread("b", [&] {
      wait(100_ns);
      std::vector<std::uint8_t> p(64, 2);
      Txn t;
      for (int i = 0; i < 6; ++i) {
        t.begin_write(0x8000 + static_cast<std::uint64_t>(i) * 64, p.data(),
                      p.size());
        bus.master_port(m1).transport(t);
      }
    });
    sim.spawn_thread("a", [&] {
      std::vector<std::uint8_t> p(64, 1);
      Txn t;
      for (int i = 0; i < 6; ++i) {
        t.begin_write(static_cast<std::uint64_t>(i) * 256, p.data(),
                      p.size());
        bus.master_port(m0).transport(t);
        wait(40_ns);
      }
    });
    sim.run();
    return collect(sim, bus);
  };
  const RunResult slow = run(false);
  const RunResult fast = run(true);
  expect_identical(fast, slow);
  EXPECT_GT(fast.fast_hits, 0u);
  EXPECT_LT(fast.fast_hits, fast.transactions)
      << "the boundary-instant issue must fall back to the engine";
}

// Completion-instant boundary (fixed-latency target): b wakes at exactly
// the instant a's fast transaction completes, before a's thread resumes.
// b must not read stale last-transaction state — the engine path would
// retire a first and then grant b with back-to-back timing.
TEST(CamFast, CompletionInstantBackToBackBitIdentical) {
  auto run = [](bool fast) {
    Simulator sim;
    PlbCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{}, fast);
    ocp::MemorySlave mem("mem", 0, 1 << 16, 40_ns);  // fixed latency
    bus.attach_slave(mem, {0, 1 << 16}, "mem");
    const std::size_t m0 = bus.add_master("a");
    const std::size_t m1 = bus.add_master("b");
    // a's first write: 10 cycles occupancy (100 ns) + 40 ns service —
    // completes at exactly 140 ns, where b's pre-registered wake lands.
    sim.spawn_thread("b", [&] {
      wait(140_ns);
      std::vector<std::uint8_t> p(64, 2);
      Txn t;
      for (int i = 0; i < 4; ++i) {
        t.begin_write(0x1000 + static_cast<std::uint64_t>(i) * 64, p.data(),
                      p.size());
        bus.master_port(m1).transport(t);
      }
    });
    sim.spawn_thread("a", [&] {
      std::vector<std::uint8_t> p(64, 1);
      Txn t;
      for (int i = 0; i < 4; ++i) {
        t.begin_write(static_cast<std::uint64_t>(i) * 64, p.data(), p.size());
        bus.master_port(m0).transport(t);
        wait(60_ns);
      }
    });
    sim.run();
    return collect(sim, bus);
  };
  const RunResult slow = run(false);
  const RunResult fast = run(true);
  expect_identical(fast, slow);
  EXPECT_GT(fast.fast_hits, 0u);
}

// The documented divergence: two masters issuing in the same delta at
// the same instant are served first-issuer-first with fast on (the
// engine would let the arbiter rank them a delta later). The outcome
// must still be deterministic run-to-run.
TEST(CamFast, FallbackKeepsDeterminism) {
  auto run = [] {
    Simulator sim;
    PlbCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{}, /*fast_targets=*/true);
    ocp::MemorySlave mem("mem", 0, 1 << 16);
    bus.attach_slave(mem, {0, 1 << 16}, "mem");
    const std::size_t m0 = bus.add_master("a");
    const std::size_t m1 = bus.add_master("b");
    sim.spawn_thread("a", [&] {
      std::vector<std::uint8_t> p(64, 1);
      Txn t;
      t.begin_write(0, p.data(), p.size());
      bus.master_port(m0).transport(t);
    });
    sim.spawn_thread("b", [&] {
      std::vector<std::uint8_t> p(64, 2);
      Txn t;
      t.begin_write(0x100, p.data(), p.size());
      bus.master_port(m1).transport(t);
    });
    sim.run();
    return collect(sim, bus);
  };
  const RunResult first = run();
  const RunResult second = run();
  EXPECT_EQ(first.end, second.end);
  EXPECT_EQ(first.fast_hits, second.fast_hits);
  EXPECT_DOUBLE_EQ(first.mean_latency_ns, second.mean_latency_ns);
}

// The crossbar's fast lanes: occupancy and queuing are unchanged (lanes
// already run on coroutines), so fast mode is bit-identical by
// construction — guard it anyway.
TEST(CamFast, CrossbarLanesBitIdentical) {
  auto run = [](bool fast) {
    Simulator sim;
    CrossbarCam xbar(sim, "xbar", 10_ns, 8, SplitConfig{}, fast);
    ocp::MemorySlave m0("m0", 0x0000, 0x1000, 25_ns);
    ocp::MemorySlave m1("m1", 0x1000, 0x1000);
    xbar.attach_slave(m0, {0x0000, 0x1000}, "m0");
    xbar.attach_slave(m1, {0x1000, 0x1000}, "m1");
    const std::size_t a = xbar.add_master("a");
    const std::size_t b = xbar.add_master("b");
    Time end_a, end_b;
    sim.spawn_thread("a", [&] {
      std::vector<std::uint8_t> p(64, 1);
      Txn t;
      for (int i = 0; i < 8; ++i) {
        t.begin_write(static_cast<std::uint64_t>(i % 4) * 64, p.data(),
                      p.size());
        xbar.master_port(a).transport(t);
      }
      end_a = sim.now();
    });
    sim.spawn_thread("b", [&] {
      std::vector<std::uint8_t> p(32, 2);
      Txn t;
      for (int i = 0; i < 8; ++i) {
        t.begin_read(0x1000 + static_cast<std::uint64_t>(i % 4) * 32, 32);
        xbar.master_port(b).transport(t);
      }
      end_b = sim.now();
    });
    sim.run();
    return std::make_pair(end_a, end_b);
  };
  const auto slow = run(false);
  const auto fast = run(true);
  EXPECT_EQ(fast.first, slow.first);
  EXPECT_EQ(fast.second, slow.second);
}

// Per-master latency channels: every bus duplicates its log rows under
// "<bus>.<master>"; per_channel_stats then reports a distribution per
// master, and the explorer's helper tells the supplementary channels
// apart from the bus channel.
TEST(CamFast, PerMasterChannelsCarryLatencyDistributions) {
  Simulator sim;
  trace::TxnLogger log;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  bus.set_txn_logger(&log);
  ocp::MemorySlave mem("mem", 0, 1 << 16);
  bus.attach_slave(mem, {0, 1 << 16}, "mem");
  const std::size_t m0 = bus.add_master("a");
  const std::size_t m1 = bus.add_master("b");
  sim.spawn_thread("a", [&] {
    std::vector<std::uint8_t> p(64, 1);
    Txn t;
    for (int i = 0; i < 3; ++i) {
      t.begin_write(static_cast<std::uint64_t>(i) * 64, p.data(), p.size());
      bus.master_port(m0).transport(t);
      wait(20_ns);
    }
  });
  sim.spawn_thread("b", [&] {
    wait(5_ns);
    std::vector<std::uint8_t> p(32, 2);
    Txn t;
    t.begin_read(0x200, 32);
    bus.master_port(m1).transport(t);
  });
  sim.run();

  const auto stats = trace::per_channel_stats(log);
  const std::vector<std::string> labels{"a", "b"};
  double a_mean = -1.0, b_mean = -1.0;
  std::uint64_t bus_count = 0;
  for (const auto& c : stats) {
    if (c.channel == "plb") bus_count = c.dist.count;
    if (c.channel == "plb.a") a_mean = c.dist.mean_ns;
    if (c.channel == "plb.b") b_mean = c.dist.mean_ns;
    EXPECT_EQ(expl::is_master_channel(c.channel, "plb", labels),
              c.channel != "plb")
        << c.channel;
  }
  // Only registered master labels count: a channel that merely shares
  // the bus-name prefix (a hierarchical child, another module) stays in
  // the overall distribution.
  EXPECT_FALSE(expl::is_master_channel("plb.child", "plb", labels));
  EXPECT_FALSE(expl::is_master_channel("plb2.a", "plb", labels));
  EXPECT_TRUE(expl::is_master_channel("plb.a", "plb", labels));
  EXPECT_EQ(bus_count, 4u);
  // The per-master channel distributions match the per-master stat slots
  // the bus already tracks.
  EXPECT_DOUBLE_EQ(a_mean, bus.stats().acc("master_a_latency_ns").mean());
  EXPECT_DOUBLE_EQ(b_mean, bus.stats().acc("master_b_latency_ns").mean());
  EXPECT_GT(b_mean, a_mean) << "b queued behind a and must show it";
}
