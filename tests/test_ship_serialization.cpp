// Tests for the SHIP serialization framework: roundtrips, wire format,
// error handling, and property-style randomized roundtrips.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ship/messages.hpp"
#include "ship/serialization.hpp"

using namespace stlm;
using namespace stlm::ship;

namespace {

// A nested payload exercising all primitive encoders.
struct VideoFrame final : ship_serializable_if {
  std::uint32_t frame_no = 0;
  std::uint16_t width = 0, height = 0;
  std::string tag;
  std::vector<std::int16_t> pixels;

  void serialize(Serializer& s) const override {
    s.put(frame_no);
    s.put(width);
    s.put(height);
    s.put_string(tag);
    s.put_vector(pixels);
  }
  void deserialize(Deserializer& d) override {
    frame_no = d.get<std::uint32_t>();
    width = d.get<std::uint16_t>();
    height = d.get<std::uint16_t>();
    tag = d.get_string();
    pixels = d.get_vector<std::int16_t>();
  }

  bool operator==(const VideoFrame& o) const {
    return frame_no == o.frame_no && width == o.width && height == o.height &&
           tag == o.tag && pixels == o.pixels;
  }
};

}  // namespace

TEST(Serialization, PodRoundtrip) {
  PodMsg<std::uint64_t> in(0xdeadbeefcafe1234ull), out;
  from_bytes(out, to_bytes(in));
  EXPECT_EQ(out.value, in.value);
}

TEST(Serialization, PodWireSizeIsExact) {
  PodMsg<std::uint32_t> m(7);
  EXPECT_EQ(to_bytes(m).size(), 4u);
  EXPECT_EQ(serialized_size(m), 4u);
}

TEST(Serialization, LittleEndianWireFormat) {
  PodMsg<std::uint32_t> m(0x01020304u);
  const auto b = to_bytes(m);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Serialization, StringRoundtripWithEmbeddedNul) {
  StringMsg in(std::string("ab\0cd", 5)), out;
  from_bytes(out, to_bytes(in));
  EXPECT_EQ(out.text, in.text);
  EXPECT_EQ(out.text.size(), 5u);
}

TEST(Serialization, VectorLengthPrefix) {
  VectorMsg<std::uint8_t> m(std::vector<std::uint8_t>{1, 2, 3});
  const auto b = to_bytes(m);
  ASSERT_EQ(b.size(), 4u + 3u);  // u32 length + payload
  EXPECT_EQ(b[0], 3u);
}

TEST(Serialization, NestedObjectRoundtrip) {
  VideoFrame in;
  in.frame_no = 42;
  in.width = 16;
  in.height = 8;
  in.tag = "I-frame";
  in.pixels.assign(16 * 8, -7);
  VideoFrame out;
  from_bytes(out, to_bytes(in));
  EXPECT_EQ(out, in);
}

TEST(Serialization, UnderrunThrows) {
  PodMsg<std::uint64_t> out;
  std::vector<std::uint8_t> short_buf(3, 0);
  EXPECT_THROW(from_bytes(out, short_buf), ProtocolError);
}

TEST(Serialization, TrailingGarbageThrows) {
  PodMsg<std::uint16_t> in(5), out;
  auto b = to_bytes(in);
  b.push_back(0xff);
  EXPECT_THROW(from_bytes(out, b), ProtocolError);
}

TEST(Serialization, DeserializerTracksRemaining) {
  Serializer s;
  s.put<std::uint32_t>(1);
  s.put<std::uint32_t>(2);
  Deserializer d(s.data());
  EXPECT_EQ(d.remaining(), 8u);
  EXPECT_EQ(d.get<std::uint32_t>(), 1u);
  EXPECT_EQ(d.remaining(), 4u);
  EXPECT_FALSE(d.finished());
  EXPECT_EQ(d.get<std::uint32_t>(), 2u);
  EXPECT_TRUE(d.finished());
}

TEST(Serialization, FloatAndEnumSupport) {
  enum class Cmd : std::uint8_t { Idle = 0, Go = 7 };
  Serializer s;
  s.put(3.5);
  s.put(2.25f);
  s.put(Cmd::Go);
  Deserializer d(s.data());
  EXPECT_DOUBLE_EQ(d.get<double>(), 3.5);
  EXPECT_FLOAT_EQ(d.get<float>(), 2.25f);
  EXPECT_EQ(d.get<Cmd>(), Cmd::Go);
}

// Property: random frames roundtrip losslessly across a size sweep.
class SerializationFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SerializationFuzz, RandomFramesRoundtrip) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> len(0, 4096);
  std::uniform_int_distribution<int> val(-32768, 32767);
  for (int iter = 0; iter < 20; ++iter) {
    VideoFrame in;
    in.frame_no = rng();
    in.width = static_cast<std::uint16_t>(rng());
    in.height = static_cast<std::uint16_t>(rng());
    in.tag.assign(static_cast<std::size_t>(len(rng)) % 64, 'x');
    const int n = len(rng);
    in.pixels.resize(static_cast<std::size_t>(n));
    for (auto& p : in.pixels) p = static_cast<std::int16_t>(val(rng));
    VideoFrame out;
    from_bytes(out, to_bytes(in));
    ASSERT_EQ(out, in) << "seed=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));
