// Tests for split/out-of-order CAM transactions: the GrantEngine's
// bookkeeping, the split engines' pipelining and fairness, per-port OoO
// completion on the crossbar, wrapper burst coalescing — and the
// bit-identical regression guard that pins max_outstanding == 1 to the
// seed's atomic timing.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "cam/cam.hpp"
#include "explore/explore.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::cam;
using namespace stlm::time_literals;

// Rows a CAM records under its own channel. Buses additionally duplicate
// every row under a per-master "<bus>.<master>" channel for per-master
// latency distributions; tests pinning row counts/order look at the bus
// channel only.
static std::vector<trace::TxnRecord> channel_rows(const trace::TxnLogger& log,
                                                  const std::string& channel) {
  std::vector<trace::TxnRecord> out;
  for (const auto& r : log.records()) {
    if (log.channel_name(r.channel) == channel) out.push_back(r);
  }
  return out;
}

// ------------------------------------------------------- GrantEngine ----

TEST(GrantEngine, TracksPendingAndInflightPerMaster) {
  Simulator sim;  // Txn ids only; no processes run
  GrantEngine ge(std::make_unique<PriorityArbiter>(), /*max_outstanding=*/2);
  const std::size_t m0 = ge.add_master();
  const std::size_t m1 = ge.add_master();

  Txn a, b, c;
  a.begin_read(0x0, 4);
  b.begin_read(0x4, 4);
  c.begin_read(0x8, 4);
  ge.enqueue(m0, a);
  ge.enqueue(m0, b);
  ge.enqueue(m1, c);
  EXPECT_TRUE(ge.any_pending());
  EXPECT_EQ(ge.pending_count(m0), 2u);
  EXPECT_EQ(ge.inflight_count(m0), 0u);

  std::size_t g = 99;
  Txn* t = ge.grant(0, &g);
  ASSERT_EQ(t, &a);  // priority: master 0 first, FIFO within the master
  EXPECT_EQ(g, m0);
  EXPECT_EQ(ge.inflight_count(m0), 1u);
  EXPECT_EQ(ge.owner_of(a), m0);

  t = ge.grant(0, &g);
  ASSERT_EQ(t, &b);  // m0 still under its cap of 2
  EXPECT_EQ(ge.inflight_count(m0), 2u);

  // m0 is now at its cap: the next grant must go to m1.
  t = ge.grant(0, &g);
  ASSERT_EQ(t, &c);
  EXPECT_EQ(g, m1);

  // Everything in flight, nothing pending: no grant.
  EXPECT_EQ(ge.grant(0, &g), nullptr);

  ge.retire(m0, a);
  EXPECT_EQ(ge.inflight_count(m0), 1u);
  EXPECT_EQ(ge.owner_of(a), GrantEngine::npos);
  EXPECT_EQ(ge.owner_of(b), m0);
}

TEST(GrantEngine, CapGatesEligibilityNotQueueing) {
  Simulator sim;
  GrantEngine ge(std::make_unique<RoundRobinArbiter>(), 1);
  const std::size_t m = ge.add_master();
  Txn a, b;
  a.begin_read(0, 4);
  b.begin_read(4, 4);
  ge.enqueue(m, a);
  ge.enqueue(m, b);  // queueing beyond the cap is fine
  std::size_t g = 0;
  ASSERT_EQ(ge.grant(0, &g), &a);
  EXPECT_EQ(ge.grant(0, &g), nullptr);  // at cap, b must wait
  ge.retire(m, a);
  EXPECT_EQ(ge.grant(0, &g), &b);
}

// --------------------------------------- bit-identical atomic timing ----

namespace {

// The bench_cam contention scenario (8 masters x 200 64-byte writes on a
// priority PLB @ 10 ns): drives either the blocking transport() path or
// the post()+wait window path with `window` outstanding descriptors.
Time run_plb_contention(SplitConfig split, std::size_t masters,
                        int txns_per_master, std::size_t window,
                        Time slave_latency = Time::zero()) {
  Simulator sim;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>(), 0, split);
  ocp::MemorySlave mem("mem", 0, 1 << 20, slave_latency);
  bus.attach_slave(mem, {0, 1 << 20}, "mem");
  for (std::size_t m = 0; m < masters; ++m) {
    const std::size_t idx = bus.add_master("m" + std::to_string(m));
    sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
      std::vector<std::uint8_t> payload(64, static_cast<std::uint8_t>(m));
      std::vector<Txn> txns(window);
      for (int i = 0; i < txns_per_master; ++i) {
        Txn& t = txns[static_cast<std::size_t>(i) % window];
        if (static_cast<std::size_t>(i) >= window) t.done.wait(sim);
        const std::uint64_t addr =
            (m << 12) + static_cast<std::uint64_t>(i % 32) * 64;
        t.begin_write(addr, payload.data(), payload.size());
        bus.post(idx, t);
      }
      for (auto& t : txns) t.done.wait(sim);
    });
  }
  sim.run();
  return sim.now();
}

}  // namespace

// Split mode off (max_outstanding == 1) must reproduce the seed's atomic
// timing bit-identically — the absolute number is the bench_cam anchor
// from the verify recipe (sim_us = 128.02 for 8/priority/200x64B).
TEST(CamSplit, MaxOutstandingOneIsBitIdenticalToSeedTiming) {
  const Time seed = run_plb_contention({}, 8, 200, 1);
  EXPECT_EQ(seed, Time::ns(128020));  // 10cy + 1599 * 8cy back-to-back

  // split_txns without depth, and depth without split_txns, both stay on
  // the atomic engine and must not move a single picosecond.
  EXPECT_EQ(run_plb_contention({true, 1}, 8, 200, 1), seed);
  EXPECT_EQ(run_plb_contention({false, 8}, 8, 200, 1), seed);
}

TEST(CamSplit, BlockingTransportAndPostAgreeOnAtomicTiming) {
  // post() + immediate wait is the same protocol as transport() for the
  // atomic engine: identical completion time.
  Simulator sim;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  ocp::MemorySlave mem("mem", 0, 0x1000);
  bus.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = bus.add_master("pe");
  Time done_at;
  sim.spawn_thread("pe", [&] {
    Txn t;
    t.begin_write(0, std::vector<std::uint8_t>(64, 1).data(), 64);
    bus.post(m, t);
    t.done.wait(sim);
    done_at = sim.now();
  });
  sim.run();
  EXPECT_EQ(done_at, 100_ns);  // (2 setup + 8 beats) * 10 ns
}

// ----------------------------------------------- split-mode pipelining ----

TEST(CamSplit, SplitModeOverlapsServiceWithBusPhases) {
  // With a 200 ns slave, the atomic bus serializes occupancy + service;
  // the split bus keeps up to 4 requests in service while address and
  // data phases of other transactions use the bus. The pipeline must be
  // at least 2x faster (analytically ~3x: 280 ns/txn -> ~80 ns/txn).
  const Time atomic = run_plb_contention({}, 2, 100, 1, 200_ns);
  const Time split = run_plb_contention({true, 4}, 2, 100, 4, 200_ns);
  EXPECT_LT(split * 2, atomic);
}

TEST(CamSplit, DeeperOutstandingWindowHidesMoreServiceLatency) {
  const Time d1 = run_plb_contention({}, 1, 50, 1, 400_ns);
  const Time d2 = run_plb_contention({true, 2}, 1, 50, 2, 400_ns);
  const Time d4 = run_plb_contention({true, 4}, 1, 50, 4, 400_ns);
  EXPECT_LT(d2, d1);
  EXPECT_LT(d4, d2);
}

TEST(CamSplit, SharedBusSupportsSplitAndOpbIgnoresIt) {
  {
    Simulator sim;
    SharedBusCam bus(sim, "bus", 10_ns, std::make_unique<PriorityArbiter>(),
                     0, SplitConfig{true, 4});
    EXPECT_TRUE(bus.split_active());
    EXPECT_EQ(bus.max_outstanding(), 4u);
  }
  {
    Simulator sim;
    OpbCam bus(sim, "opb", 20_ns, std::make_unique<PriorityArbiter>(), 0,
               SplitConfig{true, 4});
    EXPECT_FALSE(bus.split_active());  // no address pipelining on OPB
    EXPECT_EQ(bus.max_outstanding(), 1u);
  }
}

TEST(CamSplit, SplitTimingIsDeterministicAcrossRuns) {
  const Time a = run_plb_contention({true, 4}, 4, 60, 4, 100_ns);
  const Time b = run_plb_contention({true, 4}, 4, 60, 4, 100_ns);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, Time::zero());
}

// --------------------------------------------------- split fairness ----

namespace {

// `arb_kind`: 0 = round-robin, 2 = TDMA (mirrors bench_cam).
std::vector<int> run_saturated_split(int arb_kind, std::size_t masters,
                                     Time run_time) {
  Simulator sim;
  std::unique_ptr<Arbiter> arb;
  if (arb_kind == 0) {
    arb = std::make_unique<RoundRobinArbiter>();
  } else {
    std::vector<std::size_t> table(masters);
    for (std::size_t i = 0; i < masters; ++i) table[i] = i;
    arb = std::make_unique<TdmaArbiter>(table, 16);
  }
  PlbCam bus(sim, "plb", 10_ns, std::move(arb), 0, SplitConfig{true, 4});
  ocp::MemorySlave mem("mem", 0, 1 << 20, 50_ns);
  bus.attach_slave(mem, {0, 1 << 20}, "mem");
  std::vector<int> done(masters, 0);
  for (std::size_t m = 0; m < masters; ++m) {
    const std::size_t idx = bus.add_master("m" + std::to_string(m));
    sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
      std::vector<std::uint8_t> payload(64, 1);
      Txn t;
      // Saturate until the run_for() horizon cuts the simulation off.
      for (;;) {
        t.begin_write((m << 12), payload.data(), payload.size());
        bus.master_port(idx).transport(t);
        ++done[m];
      }
    });
  }
  sim.run_for(run_time);
  return done;
}

}  // namespace

TEST(CamSplit, RoundRobinStaysFairUnderSplitSaturation) {
  const auto counts = run_saturated_split(0, 3, 200'000_ns);
  ASSERT_EQ(counts.size(), 3u);
  for (int c : counts) EXPECT_GT(c, 0);
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*hi - *lo, 2) << "round-robin split grants drifted apart";
}

TEST(CamSplit, TdmaBoundsShareSkewUnderSplitSaturation) {
  const auto counts = run_saturated_split(2, 3, 200'000_ns);
  ASSERT_EQ(counts.size(), 3u);
  for (int c : counts) EXPECT_GT(c, 0);
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  // TDMA slots rotate; with equal demand the shares stay within a slot
  // of each other.
  EXPECT_LE(*hi - *lo, 4) << "TDMA split shares drifted apart";
}

// ------------------------------------------------- crossbar OoO mode ----

TEST(CamSplit, CrossbarCompletesOutOfOrderAcrossLanes) {
  Simulator sim;
  CrossbarCam xbar(sim, "xbar", 10_ns, 8, SplitConfig{true, 2});
  ocp::MemorySlave slow("slow", 0x0000, 0x1000), fast("fast", 0x1000, 0x1000);
  xbar.attach_slave(slow, {0x0000, 0x1000}, "slow");
  xbar.attach_slave(fast, {0x1000, 0x1000}, "fast");
  const std::size_t m = xbar.add_master("pe");
  Time t_big, t_small;
  sim.spawn_thread("pe", [&] {
    std::vector<std::uint8_t> big(512, 1), small(4, 2);
    Txn a, b;
    a.begin_write(0x0000, big.data(), big.size());    // lane 0: 65 cycles
    b.begin_write(0x1000, small.data(), small.size());  // lane 1: 2 cycles
    xbar.post(m, a);
    xbar.post(m, b);
    b.done.wait(sim);
    t_small = sim.now();
    EXPECT_FALSE(a.done.completed())
        << "big write completed before the small one - no OoO happened";
    a.done.wait(sim);
    t_big = sim.now();
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(b.ok());
  });
  sim.run();
  // Second-issued transaction finishes first: per-port OoO completion.
  EXPECT_EQ(t_small, 20_ns);   // (1 + 1 beat) * 10 ns
  EXPECT_EQ(t_big, 650_ns);    // (1 + 64 beats) * 10 ns
  EXPECT_EQ(slow.writes(), 1u);
  EXPECT_EQ(fast.writes(), 1u);
}

TEST(CamSplit, CrossbarEnforcesOutstandingCapAtPost) {
  Simulator sim;
  CrossbarCam xbar(sim, "xbar", 10_ns, 8, SplitConfig{true, 2});
  ocp::MemorySlave mem("mem", 0, 0x1000);
  xbar.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = xbar.add_master("pe");
  Time third_post_at;
  sim.spawn_thread("pe", [&] {
    std::vector<std::uint8_t> p(64, 1);
    Txn a, b, c;
    a.begin_write(0, p.data(), p.size());
    b.begin_write(0x100, p.data(), p.size());
    c.begin_write(0x200, p.data(), p.size());
    xbar.post(m, a);
    xbar.post(m, b);  // cap of 2 reached
    xbar.post(m, c);  // must block until a slot frees (a completes)
    third_post_at = sim.now();
    a.done.wait(sim);
    b.done.wait(sim);
    c.done.wait(sim);
  });
  sim.run();
  // One 64-byte write on one lane is (1 + 8) * 10 ns = 90 ns; the third
  // post cannot issue before the first completion.
  EXPECT_EQ(third_post_at, 90_ns);
  EXPECT_EQ(mem.writes(), 3u);
}

TEST(CamSplit, PostOnAtomicCrossbarRunsToCompletion) {
  // CamIf::post contract: a bus without split support may complete the
  // transaction before returning, so post()-based initiators work on
  // every grid platform, including the atomic crossbar.
  Simulator sim;
  CrossbarCam xbar(sim, "xbar", 10_ns);  // split off
  EXPECT_FALSE(xbar.split_active());
  EXPECT_EQ(xbar.max_outstanding(), 1u);  // knob clamps when inactive
  ocp::MemorySlave mem("mem", 0, 0x1000);
  xbar.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = xbar.add_master("pe");
  Time done_at;
  sim.spawn_thread("pe", [&] {
    std::vector<std::uint8_t> p(64, 1);
    Txn t;
    t.begin_write(0, p.data(), p.size());
    xbar.post(m, t);
    EXPECT_TRUE(t.done.completed());
    t.done.wait(sim);  // returns immediately
    done_at = sim.now();
    EXPECT_TRUE(t.ok());
  });
  sim.run();
  EXPECT_EQ(done_at, 90_ns);  // same (1 + 8 beats) timing as transport()
  EXPECT_EQ(mem.writes(), 1u);
}

TEST(CamSplit, CrossbarSplitKeepsSameLaneFifo) {
  Simulator sim;
  CrossbarCam xbar(sim, "xbar", 10_ns, 8, SplitConfig{true, 4});
  ocp::MemorySlave mem("mem", 0, 0x1000);
  xbar.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m = xbar.add_master("pe");
  std::vector<int> order;
  sim.spawn_thread("pe", [&] {
    std::vector<std::uint8_t> p(8, 1);
    Txn a, b;
    a.begin_write(0x00, p.data(), p.size());
    b.begin_write(0x40, p.data(), p.size());
    xbar.post(m, a);
    xbar.post(m, b);
    a.done.wait(sim);
    order.push_back(0);
    b.done.wait(sim);
    order.push_back(1);
    EXPECT_EQ(sim.now(), 40_ns);  // two serialized (1+1)-cycle writes
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

// ------------------------------------------- phase-accurate stamping ----

// Atomic engine: address and data phases are fused into one occupancy
// wait, so rows carry grant == data; a second contending master's row
// shows its arbitration wait as queueing delay.
TEST(CamSplit, AtomicEngineStampsFusedPhasesAndQueueing) {
  Simulator sim;
  trace::TxnLogger log;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
  bus.set_txn_logger(&log);
  ocp::MemorySlave mem("mem", 0, 0x1000);
  bus.attach_slave(mem, {0, 0x1000}, "mem");
  const std::size_t m0 = bus.add_master("a");
  const std::size_t m1 = bus.add_master("b");
  std::vector<std::uint8_t> p(64, 1);
  sim.spawn_thread("a", [&] {
    Txn t;
    t.begin_write(0, p.data(), p.size());
    bus.master_port(m0).transport(t);
  });
  sim.spawn_thread("b", [&] {
    Txn t;
    t.begin_write(0x100, p.data(), p.size());
    bus.master_port(m1).transport(t);
  });
  sim.run();

  // One row under the bus channel plus one under each issuing master's
  // "<bus>.<master>" channel.
  const auto rows = channel_rows(log, "plb");
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(channel_rows(log, "plb.a").size(), 1u);
  ASSERT_EQ(channel_rows(log, "plb.b").size(), 1u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.grant, r.data);               // fused phases
    EXPECT_LE(r.start, r.grant);
    EXPECT_LE(r.data, r.end);
    EXPECT_DOUBLE_EQ(r.queue_ns() + r.service_ns(), r.latency_ns());
  }
  // Priority master a granted at 0; b queued behind a's whole occupancy
  // (100 ns) and shows exactly that as queueing delay. b's own service
  // is the back-to-back 8-beat transfer (80 ns): its 180 ns end-to-end
  // latency is mostly queueing, which is precisely what the split
  // metrics exist to say.
  EXPECT_DOUBLE_EQ(rows[0].queue_ns(), 0.0);
  EXPECT_DOUBLE_EQ(rows[1].queue_ns(), 100.0);
  EXPECT_DOUBLE_EQ(rows[1].service_ns(), 80.0);
  // The stats set separates service from end-to-end latency.
  EXPECT_DOUBLE_EQ(bus.stats().acc("service_ns").mean(), 90.0);
  EXPECT_DOUBLE_EQ(bus.stats().acc("latency_ns").mean(), 140.0);
}

// Split engine: the data-phase stamp diverges from the grant stamp, and
// with a slow target the completion order differs from the grant order
// (the OoO signature the one-row-per-transaction logger missed).
TEST(CamSplit, SplitEngineRowsDivergeGrantFromCompletion) {
  Simulator sim;
  trace::TxnLogger log;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>(), 0,
             SplitConfig{true, 4});
  bus.set_txn_logger(&log);
  // Two targets with very different service times on one split bus.
  ocp::MemorySlave slow("slow", 0x0000, 0x1000, 500_ns);
  ocp::MemorySlave fast("fast", 0x1000, 0x1000);
  bus.attach_slave(slow, {0x0000, 0x1000}, "slow");
  bus.attach_slave(fast, {0x1000, 0x1000}, "fast");
  const std::size_t m = bus.add_master("pe");
  std::vector<std::uint8_t> p(64, 1);
  sim.spawn_thread("pe", [&] {
    Txn a, b;
    a.begin_write(0x0000, p.data(), p.size());  // slow target, issued first
    b.begin_write(0x1000, p.data(), p.size());  // fast target, issued second
    bus.post(m, a);
    bus.post(m, b);
    a.done.wait(sim);
    b.done.wait(sim);
  });
  sim.run();

  const auto rows = channel_rows(log, "plb");
  ASSERT_EQ(rows.size(), 2u);
  // Completion order in the log: the fast write's row lands first even
  // though its grant came second.
  const auto& first_done = rows[0];
  const auto& second_done = rows[1];
  EXPECT_GT(first_done.grant, second_done.grant)
      << "completions did not reorder against grants - no OoO captured";
  for (const auto& r : rows) {
    EXPECT_LE(r.start, r.grant);
    EXPECT_LE(r.grant, r.data);  // data phase strictly after the address phase
    EXPECT_LE(r.data, r.end);
  }
  // All rows (bus channel + per-master duplicates) survive the CSV round
  // trip with their phases intact.
  std::ostringstream os;
  log.dump_csv(os);
  trace::TxnLogger back;
  std::istringstream is(os.str());
  back.load_csv(is);
  ASSERT_EQ(back.size(), log.size());
  const auto back_rows = channel_rows(back, "plb");
  ASSERT_EQ(back_rows.size(), 2u);
  EXPECT_EQ(back_rows[0].grant, first_done.grant);
  EXPECT_EQ(back_rows[1].data, second_done.data);
}

// Every row any engine writes respects the phase order invariant — the
// same validation load_csv enforces, checked at the source across a
// saturated multi-master split run with posted windows.
TEST(CamSplit, SplitRunRowsRespectPhaseOrderInvariant) {
  Simulator sim;
  trace::TxnLogger log;
  PlbCam bus(sim, "plb", 10_ns, std::make_unique<RoundRobinArbiter>(), 0,
             SplitConfig{true, 4});
  bus.set_txn_logger(&log);
  ocp::MemorySlave mem("mem", 0, 1 << 20, 100_ns);
  bus.attach_slave(mem, {0, 1 << 20}, "mem");
  for (std::size_t m = 0; m < 3; ++m) {
    const std::size_t idx = bus.add_master("m" + std::to_string(m));
    sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
      std::vector<std::uint8_t> payload(48, static_cast<std::uint8_t>(m));
      std::vector<Txn> window(4);
      for (int i = 0; i < 40; ++i) {
        Txn& t = window[static_cast<std::size_t>(i) % 4];
        if (i >= 4) t.done.wait(sim);
        t.begin_write((m << 12) + static_cast<std::uint64_t>(i % 8) * 64,
                      payload.data(), payload.size());
        bus.post(idx, t);
      }
      for (auto& t : window) t.done.wait(sim);
    });
  }
  sim.run();
  // 120 bus-channel rows plus a per-master duplicate of each.
  ASSERT_EQ(log.size(), 240u);
  const auto rows = channel_rows(log, "plb");
  ASSERT_EQ(rows.size(), 120u);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(channel_rows(log, "plb.m" + std::to_string(m)).size(), 40u);
  }
  std::size_t queued = 0;
  for (const auto& r : rows) {
    ASSERT_LE(r.start, r.grant);
    ASSERT_LE(r.grant, r.data);
    ASSERT_LE(r.data, r.end);
    if (r.queue_ns() > 0.0) ++queued;
  }
  EXPECT_GT(queued, 0u) << "a saturated split bus must show queueing";
}

// ---------------------------------------------- wrapper coalescing ----

TEST(CamSplit, CoalescedWrapperHalvesMailboxWritesAndStaysLossless) {
  auto run = [](bool coalesce) {
    Simulator sim;
    PlbCam bus(sim, "plb", 10_ns, std::make_unique<PriorityArbiter>());
    MailboxLayout layout{0x4000, 256};
    ShipSlaveWrapper slave(sim, "ch.slave", layout);
    bus.attach_slave(slave, layout.range(), "ch");
    ShipMasterWrapper master(sim, "ch.master", bus, bus.add_master("pe"),
                             layout, 100_ns, coalesce);
    std::vector<std::uint8_t> payload(600);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 7);
    }
    std::vector<std::uint8_t> got;
    sim.spawn_thread("p", [&] {
      ship::VectorMsg<> m(payload);
      master.send(m);
    });
    sim.spawn_thread("c", [&] {
      ship::VectorMsg<> m;
      slave.recv(m);
      got = m.data;
    });
    sim.run();
    EXPECT_EQ(got, payload) << (coalesce ? "coalesced" : "plain");
    return std::make_pair(master.bus_transactions(), sim.now());
  };

  const auto [plain_txns, plain_time] = run(false);
  const auto [co_txns, co_time] = run(true);
  // Each chunk's DATA_IN + CTRL pair merges into one burst.
  EXPECT_EQ(co_txns * 2, plain_txns);
  // One bus setup instead of two per chunk: strictly faster.
  EXPECT_LT(co_time, plain_time);
}

// ------------------------------------------- platform-level plumbing ----

TEST(CamSplit, MapperPlumbsSplitKnobsAndSplitPlatformFinishesSooner) {
  using namespace stlm::core;
  using namespace stlm::expl;
  // A 4-stream producer/sink workload on PLB: the split platform
  // pipelines the wrappers' mailbox bursts against each other.
  auto factory = [](SystemGraph& g,
                    std::vector<std::unique_ptr<ProcessingElement>>& o) {
    for (int s = 0; s < 2; ++s) {
      auto p = std::make_unique<ProducerPe>("p" + std::to_string(s), 12, 256,
                                            10);
      auto k = std::make_unique<SinkPe>("s" + std::to_string(s), 12);
      g.add_pe(*p);
      g.add_pe(*k);
      g.connect("ch" + std::to_string(s), *p, "out", *k, "in", 2);
      o.push_back(std::move(p));
      o.push_back(std::move(k));
    }
  };
  Explorer ex(factory);

  Platform atomic;
  atomic.name = "plb-atomic";
  Platform split = atomic;
  split.name = "plb-split4";
  split.split_txns = true;
  split.max_outstanding = 4;
  split.coalesce_bursts = true;

  const auto r_atomic = ex.evaluate(atomic, 100_ms);
  const auto r_split = ex.evaluate(split, 100_ms);
  ASSERT_TRUE(r_atomic.completed);
  ASSERT_TRUE(r_split.completed);
  EXPECT_LT(r_split.sim_time_us, r_atomic.sim_time_us);

  // And the guard the other way: split knobs at depth 1 are a no-op.
  Platform off = atomic;
  off.name = "plb-split-off";
  off.split_txns = true;
  off.max_outstanding = 1;
  const auto r_off = ex.evaluate(off, 100_ms);
  EXPECT_EQ(r_off.sim_time_us, r_atomic.sim_time_us);
  EXPECT_EQ(r_off.transactions, r_atomic.transactions);
  EXPECT_EQ(r_off.bytes, r_atomic.bytes);
  EXPECT_EQ(r_off.mean_latency_ns, r_atomic.mean_latency_ns);
}
