// Tests for the pooled transaction hot path: CompletionEvent semantics,
// TxnQueue/TxnPool mechanics, and the timing-accuracy regression guard
// that pins the CAM hot path to (a) bit-identical simulated timing between
// the value-typed compat API and the reusable-Txn API and (b) zero
// per-transaction event registration or descriptor allocation in steady
// state.
#include <gtest/gtest.h>

#include "cam/cam.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"

using namespace stlm;
using namespace stlm::time_literals;

// ------------------------------------------------------ CompletionEvent --

TEST(CompletionEvent, CompleteWakesWaiterImmediately) {
  Simulator sim;
  CompletionEvent ev;
  std::uint64_t wake_delta = 999;
  sim.spawn_thread("waiter", [&] {
    ev.wait(sim);
    wake_delta = sim.delta_count();
  });
  sim.spawn_thread("completer", [&] { ev.complete(sim); });
  sim.run();
  EXPECT_EQ(wake_delta, 0u);  // immediate, like Event::notify()
}

TEST(CompletionEvent, CompleteBeforeWaitReturnsWithoutBlocking) {
  Simulator sim;
  CompletionEvent ev;
  ev.complete(sim);  // no waiter yet
  bool returned = false;
  sim.spawn_thread("waiter", [&] {
    ev.wait(sim);
    returned = true;
  });
  sim.run();
  EXPECT_TRUE(returned);
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(CompletionEvent, RegistersNoSimulatorEvents) {
  Simulator sim;
  const std::uint64_t before = sim.events_registered_total();
  CompletionEvent ev;
  sim.spawn_thread("waiter", [&] { ev.wait(sim); });
  sim.spawn_thread("completer", [&] {
    wait(5_ns);
    ev.complete(sim);
  });
  sim.run();
  EXPECT_EQ(sim.events_registered_total(), before);
}

// ------------------------------------------------------- queue and pool --

TEST(TxnQueue, FifoOrderAndIntrusiveLinks) {
  TxnQueue q;
  Txn a, b, c;
  EXPECT_TRUE(q.empty());
  q.push_back(a);
  q.push_back(b);
  q.push_back(c);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop_front(), &a);
  EXPECT_EQ(q.pop_front(), &b);
  q.push_back(a);  // relink after pop
  EXPECT_EQ(q.pop_front(), &c);
  EXPECT_EQ(q.pop_front(), &a);
  EXPECT_EQ(q.pop_front(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(TxnPool, RecyclesDescriptorsAndPayloadCapacity) {
  TxnPool pool;
  Txn& a = pool.acquire();
  a.begin_write(0x10, std::vector<std::uint8_t>(256, 1).data(), 256);
  const std::uint8_t* payload_storage = a.data.data();
  pool.release(a);

  Txn& b = pool.acquire();
  EXPECT_EQ(&a, &b);  // free list returns the same descriptor
  EXPECT_TRUE(b.data.empty());
  EXPECT_GE(b.data.capacity(), 256u);  // capacity survived the release
  b.begin_write(0x10, std::vector<std::uint8_t>(256, 2).data(), 256);
  EXPECT_EQ(b.data.data(), payload_storage);  // no reallocation
  pool.release(b);

  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.acquired(), 2u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

// ------------------------------------------- CAM utilization guard ------

TEST(CamUtilization, ZeroBeforeAnySimulatedTime) {
  Simulator sim;
  cam::PlbCam bus(sim, "plb", 10_ns,
                  std::make_unique<cam::RoundRobinArbiter>());
  // No time has elapsed: must report an idle bus, not divide by zero.
  EXPECT_EQ(bus.utilization(), 0.0);
}

// ------------------------------------- pooled hot path regression guard --

namespace {

struct RunResult {
  Time finished;
  std::uint64_t transactions;
  std::uint64_t bytes;
  double latency_sum_ns;
  double latency_mean_ns;
  double utilization;
  std::uint64_t events_registered_during_run;
  std::uint64_t pool_created;
};

constexpr std::size_t kMasters = 4;
constexpr int kTxns = 250;
constexpr std::size_t kPayload = 64;

// Drives kMasters x kTxns 64-byte writes through a PLB-class CAM. When
// `use_txn_api` each master reuses one stack descriptor (the hot path);
// otherwise every transaction goes through the value-typed compat API.
RunResult run_scenario(bool use_txn_api) {
  Simulator sim;
  cam::PlbCam bus(sim, "plb", 10_ns,
                  std::make_unique<cam::RoundRobinArbiter>());
  ocp::MemorySlave mem("mem", 0, 1 << 20);
  bus.attach_slave(mem, {0, 1 << 20}, "mem");
  for (std::size_t m = 0; m < kMasters; ++m) {
    const std::size_t idx = bus.add_master("m" + std::to_string(m));
    sim.spawn_thread("pe" + std::to_string(m), [&, m, idx] {
      std::vector<std::uint8_t> payload(kPayload,
                                        static_cast<std::uint8_t>(m));
      Txn txn;
      for (int i = 0; i < kTxns; ++i) {
        const std::uint64_t addr =
            (m << 12) + static_cast<std::uint64_t>(i % 32) * kPayload;
        if (use_txn_api) {
          txn.begin_write(addr, payload.data(), payload.size());
          bus.master_port(idx).transport(txn);
          ASSERT_TRUE(txn.ok());
        } else {
          auto r = bus.master_port(idx).transport(
              ocp::Request::write(addr, payload));
          ASSERT_TRUE(r.good());
        }
      }
    });
  }
  const std::uint64_t events_before = sim.events_registered_total();
  sim.run();
  RunResult r;
  r.finished = sim.now();
  r.transactions = bus.stats().counter("transactions");
  r.bytes = bus.stats().counter("bytes");
  r.latency_sum_ns = bus.stats().acc("latency_ns").sum();
  r.latency_mean_ns = bus.stats().acc("latency_ns").mean();
  r.utilization = bus.utilization();
  r.events_registered_during_run =
      sim.events_registered_total() - events_before;
  r.pool_created = sim.txn_pool().created();
  return r;
}

}  // namespace

TEST(PooledTxnStress, TimingIsBitIdenticalAcrossApisAndMatchesCcatbModel) {
  const RunResult fast = run_scenario(/*use_txn_api=*/true);
  const RunResult compat = run_scenario(/*use_txn_api=*/false);

  // Identical simulated behaviour regardless of API (the compat shims are
  // views onto the same hot path).
  EXPECT_EQ(fast.finished, compat.finished);
  EXPECT_EQ(fast.transactions, compat.transactions);
  EXPECT_EQ(fast.bytes, compat.bytes);
  EXPECT_DOUBLE_EQ(fast.latency_sum_ns, compat.latency_sum_ns);
  EXPECT_DOUBLE_EQ(fast.latency_mean_ns, compat.latency_mean_ns);
  EXPECT_DOUBLE_EQ(fast.utilization, compat.utilization);

  // Analytic CCATB golden values (PLB, 10 ns cycle, 64-byte writes = 8
  // beats on the 64-bit data path): the first transaction pays 2 setup
  // cycles + 8 beats = 100 ns; every back-to-back successor hides the
  // setup and pays 80 ns. These constants pin the timing model: any
  // refactor that shifts them is a timing-accuracy regression.
  const std::uint64_t total = kMasters * static_cast<std::uint64_t>(kTxns);
  EXPECT_EQ(fast.transactions, total);
  EXPECT_EQ(fast.finished, Time::ns(20 + 80 * total));
  EXPECT_DOUBLE_EQ(fast.utilization, 1.0);
}

TEST(PooledTxnStress, SteadyStateHasZeroEventAndAllocationChurn) {
  const RunResult fast = run_scenario(/*use_txn_api=*/true);
  // The whole run — 1000 transactions — must register zero Events with
  // the simulator (the seed registered/unregistered one per transaction)
  // and must never touch the descriptor pool (masters reuse stack Txns).
  EXPECT_EQ(fast.events_registered_during_run, 0u);
  EXPECT_EQ(fast.pool_created, 0u);

  // The compat API may stage through the pool, but concurrency is bounded
  // by the number of masters, so the pool must not grow past it —
  // i.e. steady-state traffic recycles descriptors instead of allocating.
  const RunResult compat = run_scenario(/*use_txn_api=*/false);
  EXPECT_EQ(compat.events_registered_during_run, 0u);
  EXPECT_LE(compat.pool_created, kMasters);
}

// ------------------------------------------------- bridge nesting guard --

TEST(PooledTxn, BridgeForwardsSameDescriptorThroughNestedCams) {
  // Two-tier CoreConnect topology: the same descriptor crosses PLB ->
  // bridge -> OPB and back, exercising CompletionEvent::NestedScope.
  Simulator sim;
  cam::PlbCam plb(sim, "plb", 10_ns, std::make_unique<cam::PriorityArbiter>());
  cam::OpbCam opb(sim, "opb", 20_ns, std::make_unique<cam::PriorityArbiter>());
  cam::BusBridge bridge(sim, "bridge", opb);
  ocp::MemorySlave mem("mem", 0x8000, 0x1000);
  opb.attach_slave(mem, {0x8000, 0x1000}, "mem");
  plb.attach_slave(bridge, {0x8000, 0x1000}, "opb_window");
  const std::size_t m = plb.add_master("cpu");

  bool ok = false;
  std::vector<std::uint8_t> readback;
  sim.spawn_thread("cpu", [&] {
    Txn txn;
    txn.begin_write(0x8010, std::vector<std::uint8_t>{1, 2, 3, 4}.data(), 4);
    plb.master_port(m).transport(txn);
    ok = txn.ok();
    txn.begin_read(0x8010, 4);
    plb.master_port(m).transport(txn);
    ok = ok && txn.ok();
    readback = txn.resp_data;
  });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(readback, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(bridge.forwarded(), 2u);
  EXPECT_EQ(plb.stats().counter("transactions"), 2u);
  EXPECT_EQ(opb.stats().counter("transactions"), 2u);
}
