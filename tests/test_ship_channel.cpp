// Tests for the SHIP channel: the four blocking calls, master/slave
// detection, role conflicts, queue depths, and timing policies.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::ship;
using namespace stlm::time_literals;

TEST(ShipChannel, SendRecvTransfersPayload) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  std::string got;
  sim.spawn_thread("producer", [&] {
    StringMsg m("hello ship");
    ch.a().send(m);
  });
  sim.spawn_thread("consumer", [&] {
    StringMsg m;
    ch.b().recv(m);
    got = m.text;
  });
  sim.run();
  EXPECT_EQ(got, "hello ship");
}

TEST(ShipChannel, RequestReplyRoundTrip) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  std::uint32_t answer = 0;
  sim.spawn_thread("master", [&] {
    PodMsg<std::uint32_t> req(20), resp;
    ch.a().request(req, resp);
    answer = resp.value;
  });
  sim.spawn_thread("slave", [&] {
    PodMsg<std::uint32_t> req;
    ch.b().recv(req);
    PodMsg<std::uint32_t> resp(req.value * 2 + 2);
    ch.b().reply(resp);
  });
  sim.run();
  EXPECT_EQ(answer, 42u);
}

TEST(ShipChannel, AutomaticMasterSlaveDetection) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  EXPECT_EQ(ch.role_a(), Role::Unknown);
  EXPECT_EQ(ch.role_b(), Role::Unknown);
  sim.spawn_thread("m", [&] {
    PodMsg<int> m(1);
    ch.a().send(m);
  });
  sim.spawn_thread("s", [&] {
    PodMsg<int> m;
    ch.b().recv(m);
  });
  sim.run();
  EXPECT_EQ(ch.role_a(), Role::Master);
  EXPECT_EQ(ch.role_b(), Role::Slave);
}

TEST(ShipChannel, RoleConflictOnMixedCallsThrows) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  sim.spawn_thread("confused", [&] {
    PodMsg<int> m(1);
    ch.a().send(m);   // terminal a becomes master
    ch.a().recv(m);   // ... then calls a slave method: protocol error
  });
  sim.spawn_thread("peer", [&] {
    PodMsg<int> m;
    ch.b().recv(m);
  });
  EXPECT_THROW(sim.run(), ProtocolError);
}

TEST(ShipChannel, ReplyWithoutRequestThrows) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  sim.spawn_thread("bad_slave", [&] {
    PodMsg<int> m(0);
    ch.b().reply(m);
  });
  EXPECT_THROW(sim.run(), ProtocolError);
}

TEST(ShipChannel, SendAfterRequestIsAllowedForMaster) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  int recv_count = 0;
  sim.spawn_thread("master", [&] {
    PodMsg<int> req(1), resp;
    ch.a().request(req, resp);
    PodMsg<int> extra(2);
    ch.a().send(extra);  // same role group: fine
  });
  sim.spawn_thread("slave", [&] {
    PodMsg<int> m;
    ch.b().recv(m);
    ch.b().reply(m);
    ch.b().recv(m);
    recv_count = 2;
  });
  sim.run();
  EXPECT_EQ(recv_count, 2);
}

TEST(ShipChannel, QueueDepthBoundsInFlightMessages) {
  Simulator sim;
  ShipChannel ch(sim, "ch", /*queue_depth=*/2);
  std::vector<Time> send_times;
  sim.spawn_thread("producer", [&] {
    PodMsg<int> m(0);
    for (int i = 0; i < 4; ++i) {
      m.value = i;
      ch.a().send(m);
      send_times.push_back(sim.now());
    }
  });
  sim.spawn_thread("consumer", [&] {
    wait(100_ns);
    PodMsg<int> m;
    for (int i = 0; i < 4; ++i) ch.b().recv(m);
  });
  sim.run();
  ASSERT_EQ(send_times.size(), 4u);
  EXPECT_EQ(send_times[0], 0_ns);   // buffered
  EXPECT_EQ(send_times[1], 0_ns);   // buffered (depth 2)
  EXPECT_EQ(send_times[2], 100_ns); // blocked until consumer drains
  EXPECT_EQ(send_times[3], 100_ns);
}

TEST(ShipChannel, UntimedTransferTakesNoSimTime) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  Time done_at = Time::max();
  sim.spawn_thread("p", [&] {
    VectorMsg<> m(4096);
    ch.a().send(m);
  });
  sim.spawn_thread("c", [&] {
    VectorMsg<> m;
    ch.b().recv(m);
    done_at = sim.now();
  });
  sim.run();
  EXPECT_EQ(done_at, 0_ns);
}

TEST(ShipChannel, CcatbTimingChargesSetupPlusBeats) {
  Simulator sim;
  // 10 ns cycle, 4-byte bus, 3 setup cycles.
  ShipChannel ch(sim, "ch", 1,
                 std::make_unique<CcatbModel>(10_ns, 4, 3));
  Time recv_done = Time::zero();
  sim.spawn_thread("p", [&] {
    VectorMsg<> m(16);  // 16 bytes + 4-byte length prefix = 20 bytes
    ch.a().send(m);
  });
  sim.spawn_thread("c", [&] {
    VectorMsg<> m;
    ch.b().recv(m);
    recv_done = sim.now();
  });
  sim.run();
  // 20 bytes over a 4-byte bus = 5 beats; +3 setup = 8 cycles = 80 ns.
  EXPECT_EQ(recv_done, 80_ns);
}

TEST(ShipChannel, SwitchTimingModelInPlace) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  std::vector<Time> arrivals;
  sim.spawn_thread("p", [&] {
    PodMsg<std::uint32_t> m(1);
    ch.a().send(m);             // untimed
    wait(1_ns);
    ch.set_timing(std::make_unique<CcatbModel>(10_ns, 4, 0));
    ch.a().send(m);             // now costs 1 beat = 10 ns
  });
  sim.spawn_thread("c", [&] {
    PodMsg<std::uint32_t> m;
    ch.b().recv(m);
    arrivals.push_back(sim.now());
    ch.b().recv(m);
    arrivals.push_back(sim.now());
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 0_ns);
  EXPECT_EQ(arrivals[1], 11_ns);
}

TEST(ShipChannel, TxnLoggerRecordsTraffic) {
  Simulator sim;
  trace::TxnLogger log;
  ShipChannel ch(sim, "ch");
  ch.set_txn_logger(&log);
  sim.spawn_thread("m", [&] {
    PodMsg<std::uint32_t> req(1), resp;
    ch.a().request(req, resp);
  });
  sim.spawn_thread("s", [&] {
    PodMsg<std::uint32_t> m;
    ch.b().recv(m);
    ch.b().reply(m);
  });
  sim.run();
  // request + reply legs recorded.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].kind, trace::TxnKind::Request);
  EXPECT_EQ(log.records()[1].kind, trace::TxnKind::Reply);
  EXPECT_EQ(log.summarize().bytes, 8u);
  EXPECT_EQ(ch.messages_transferred(), 2u);
  EXPECT_EQ(ch.bytes_transferred(), 8u);
}

TEST(ShipChannel, MessageAvailableProbe) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  bool before = true, after = false;
  sim.spawn_thread("c", [&] {
    before = ch.b().message_available();
    wait(10_ns);
    after = ch.b().message_available();
    PodMsg<int> m;
    ch.b().recv(m);
  });
  sim.spawn_thread("p", [&] {
    wait(5_ns);
    PodMsg<int> m(9);
    ch.a().send(m);
  });
  sim.run();
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(ShipChannel, DirectionBIsMasterWorksToo) {
  Simulator sim;
  ShipChannel ch(sim, "ch");
  int got = 0;
  sim.spawn_thread("m", [&] {
    PodMsg<int> m(5);
    ch.b().send(m);
  });
  sim.spawn_thread("s", [&] {
    PodMsg<int> m;
    ch.a().recv(m);
    got = m.value;
  });
  sim.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(ch.role_b(), Role::Master);
  EXPECT_EQ(ch.role_a(), Role::Slave);
}

TEST(ShipChannel, ZeroDepthRejected) {
  Simulator sim;
  EXPECT_THROW(ShipChannel(sim, "ch", 0), SimulationError);
}

// Property sweep: many messages of varying size arrive in order and
// byte-identical at several queue depths.
class ShipPipeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShipPipeSweep, OrderedLosslessDelivery) {
  Simulator sim;
  ShipChannel ch(sim, "ch", GetParam());
  constexpr int kCount = 64;
  int errors = 0;
  sim.spawn_thread("p", [&] {
    for (int i = 0; i < kCount; ++i) {
      VectorMsg<std::uint32_t> m;
      m.data.assign(static_cast<std::size_t>(i % 17 + 1),
                    static_cast<std::uint32_t>(i));
      ch.a().send(m);
    }
  });
  sim.spawn_thread("c", [&] {
    for (int i = 0; i < kCount; ++i) {
      VectorMsg<std::uint32_t> m;
      ch.b().recv(m);
      if (m.data.size() != static_cast<std::size_t>(i % 17 + 1)) ++errors;
      for (auto v : m.data) {
        if (v != static_cast<std::uint32_t>(i)) ++errors;
      }
    }
  });
  sim.run();
  EXPECT_EQ(errors, 0);
}

INSTANTIATE_TEST_SUITE_P(Depths, ShipPipeSweep,
                         ::testing::Values(1u, 2u, 4u, 32u));
