// Tests for the design flow: system graph, role discovery, and the
// automatic mapper at all three abstraction levels. The central property
// is the paper's promise — identical PE code and identical results at
// every level, with timing refined underneath.
#include <gtest/gtest.h>

#include <sstream>

#include "core/core.hpp"
#include "explore/workload.hpp"
#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::core;
using namespace stlm::time_literals;

namespace {

// Producer -> consumer graph with a request/reply service on the side.
struct TestSystem {
  std::vector<std::unique_ptr<ProcessingElement>> owned;
  SystemGraph graph;
  expl::SinkPe* sink = nullptr;

  explicit TestSystem(std::uint64_t messages = 16,
                      std::size_t payload = 64) {
    auto prod = std::make_unique<expl::ProducerPe>("prod", messages, payload,
                                                   /*compute=*/10);
    auto snk = std::make_unique<expl::SinkPe>("sink", messages);
    sink = snk.get();
    graph.add_pe(*prod);
    graph.add_pe(*snk);
    graph.connect("stream", *prod, "out", *snk, "in", /*depth=*/2);
    owned.push_back(std::move(prod));
    owned.push_back(std::move(snk));
  }
};

}  // namespace

TEST(SystemGraph, RegistrationAndPartitioning) {
  LambdaPe a("a", [](ExecContext&) {});
  LambdaPe b("b", [](ExecContext&) {});
  SystemGraph g;
  g.add_pe(a);
  g.add_pe(b, Partition::Software);
  EXPECT_EQ(g.partition(a), Partition::Hardware);
  EXPECT_EQ(g.partition(b), Partition::Software);
  g.set_partition(a, Partition::Software);
  EXPECT_EQ(g.partition(a), Partition::Software);
  g.connect("c", a, b);
  EXPECT_EQ(g.channels().size(), 1u);
  EXPECT_THROW(g.connect("c", a, b), SimulationError);  // duplicate name
  EXPECT_THROW(g.connect("d", a, a), SimulationError);  // self loop
}

TEST(SystemGraph, RoleDiscoveryFindsMasterSlave) {
  TestSystem sys;
  EXPECT_FALSE(sys.graph.roles_known());
  sys.graph.discover_roles();
  EXPECT_TRUE(sys.graph.roles_known());
  // Producer (terminal a) sends: it is the master.
  EXPECT_EQ(sys.graph.channels()[0].role_a, ship::Role::Master);
}

TEST(SystemGraph, DiscoveryFailsForSilentChannel) {
  LambdaPe a("a", [](ExecContext&) {});
  LambdaPe b("b", [](ExecContext&) {});
  SystemGraph g;
  g.add_pe(a);
  g.add_pe(b);
  g.connect("silent", a, b);
  EXPECT_THROW(g.discover_roles(1_us), ElaborationError);
}

TEST(Mapper, ComponentAssemblyRunsUntimed) {
  TestSystem sys;
  Simulator sim;
  auto ms = Mapper::map(sim, sys.graph, Platform{},
                        AbstractionLevel::ComponentAssembly);
  EXPECT_TRUE(ms->run_until_done(1_ms));
  EXPECT_EQ(sys.sink->received(), 16u);
  // Untimed communication, but PE compute still advances time.
  EXPECT_GT(sim.now(), 0_ns);
}

TEST(Mapper, CcatbChargesCommunicationTime) {
  TestSystem ca_sys, ccatb_sys;
  Simulator sim_ca, sim_ccatb;
  auto ca = Mapper::map(sim_ca, ca_sys.graph, Platform{},
                        AbstractionLevel::ComponentAssembly);
  auto cc = Mapper::map(sim_ccatb, ccatb_sys.graph, Platform{},
                        AbstractionLevel::Ccatb);
  ASSERT_TRUE(ca->run_until_done(10_ms));
  ASSERT_TRUE(cc->run_until_done(10_ms));
  EXPECT_EQ(ca_sys.sink->received(), 16u);
  EXPECT_EQ(ccatb_sys.sink->received(), 16u);
  // Same results, more simulated time at the lower level.
  EXPECT_GT(sim_ccatb.now(), sim_ca.now());
}

TEST(Mapper, CamLevelRequiresRoles) {
  TestSystem sys;
  Simulator sim;
  EXPECT_THROW(Mapper::map(sim, sys.graph, Platform{}, AbstractionLevel::Cam),
               ElaborationError);
}

TEST(Mapper, CamLevelHwHwViaWrappers) {
  TestSystem sys;
  sys.graph.discover_roles();
  Simulator sim;
  auto ms = Mapper::map(sim, sys.graph, Platform{}, AbstractionLevel::Cam);
  ASSERT_TRUE(ms->run_until_done(10_ms));
  EXPECT_EQ(sys.sink->received(), 16u);
  ASSERT_NE(ms->bus(), nullptr);
  EXPECT_GT(ms->bus()->stats().counter("transactions"), 0u);
  // CAM level must be slower than CCATB for the same workload.
  TestSystem ref;
  Simulator sim_ref;
  auto cc = Mapper::map(sim_ref, ref.graph, Platform{}, AbstractionLevel::Ccatb);
  ASSERT_TRUE(cc->run_until_done(10_ms));
  EXPECT_GT(sim.now(), sim_ref.now());
}

TEST(Mapper, CamLevelHwSwViaAdapterAndDriver) {
  TestSystem sys(8, 32);
  sys.graph.set_partition(*sys.graph.pes()[0], Partition::Software);  // prod
  sys.graph.discover_roles();
  Simulator sim;
  auto ms = Mapper::map(sim, sys.graph, Platform{}, AbstractionLevel::Cam);
  ASSERT_TRUE(ms->run_until_done(50_ms));
  EXPECT_EQ(sys.sink->received(), 8u);
  ASSERT_NE(ms->cpu_model(), nullptr);
  ASSERT_NE(ms->os(), nullptr);
  EXPECT_GT(ms->cpu_model()->bus_transactions(), 0u);
}

TEST(Mapper, CamLevelSwSwViaRtosQueues) {
  TestSystem sys(8, 32);
  sys.graph.set_partition(*sys.graph.pes()[0], Partition::Software);
  sys.graph.set_partition(*sys.graph.pes()[1], Partition::Software);
  sys.graph.discover_roles();
  Simulator sim;
  auto ms = Mapper::map(sim, sys.graph, Platform{}, AbstractionLevel::Cam);
  ASSERT_TRUE(ms->run_until_done(50_ms));
  EXPECT_EQ(sys.sink->received(), 8u);
  // SW-local channel: the bus must carry no mailbox traffic.
  EXPECT_EQ(ms->bus()->stats().counter("transactions"), 0u);
}

TEST(Mapper, RequestReplyWorksAtEveryLevel) {
  for (auto level : {AbstractionLevel::ComponentAssembly,
                     AbstractionLevel::Ccatb, AbstractionLevel::Cam}) {
    std::vector<std::unique_ptr<ProcessingElement>> owned;
    SystemGraph g;
    auto req = std::make_unique<expl::RequesterPe>("req", 6, 16);
    auto srv = std::make_unique<expl::EchoServerPe>("srv", 6, 5);
    g.add_pe(*req);
    g.add_pe(*srv);
    g.connect("rpc", *req, "out", *srv, "in");
    owned.push_back(std::move(req));
    owned.push_back(std::move(srv));
    g.discover_roles();
    Simulator sim;
    auto ms = Mapper::map(sim, g, Platform{}, level);
    EXPECT_TRUE(ms->run_until_done(50_ms)) << level_name(level);
  }
}

TEST(Mapper, ReportMentionsMappingDecisions) {
  TestSystem sys;
  sys.graph.set_partition(*sys.graph.pes()[0], Partition::Software);
  sys.graph.discover_roles();
  Simulator sim;
  auto ms = Mapper::map(sim, sys.graph, Platform{}, AbstractionLevel::Cam);
  ms->run_until_done(50_ms);
  std::ostringstream os;
  ms->report(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("HW/SW interface"), std::string::npos);
  EXPECT_NE(text.find("eSW task"), std::string::npos);
}

// Property: the pipeline result is identical at all three levels for
// several payload sizes (refinement preserves function).
class LevelEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LevelEquivalence, SinkReceivesAllMessages) {
  for (auto level : {AbstractionLevel::ComponentAssembly,
                     AbstractionLevel::Ccatb, AbstractionLevel::Cam}) {
    TestSystem sys(12, GetParam());
    sys.graph.discover_roles();
    Simulator sim;
    auto ms = Mapper::map(sim, sys.graph, Platform{}, level);
    ASSERT_TRUE(ms->run_until_done(100_ms))
        << level_name(level) << " payload " << GetParam();
    EXPECT_EQ(sys.sink->received(), 12u);
  }
}

INSTANTIATE_TEST_SUITE_P(Payloads, LevelEquivalence,
                         ::testing::Values(4u, 64u, 300u, 1024u));
