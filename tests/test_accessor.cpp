// Tests for the RTL accessor stack: pin-level PE <-> pin-level bus,
// multi-master arbitration on wires, and equivalence with the TL path.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "accessor/accessor.hpp"
#include "kernel/kernel.hpp"
#include "ocp/memory.hpp"
#include "ocp/ocp.hpp"

using namespace stlm;
using namespace stlm::accessor;
using namespace stlm::time_literals;

namespace {

// A full pin-level prototype: one or two master PEs (driving their own
// OCP pin bundles through OcpPinMaster) and one memory PE behind a slave
// accessor (driven through an OcpPinSlave).
struct Proto {
  Simulator sim;
  Clock clk{sim, "clk", 10_ns};
  BusPins bus{sim, "bus"};
  RtlArbiter arb{sim, "arb", bus, clk};

  // Master PE 0.
  ocp::OcpPins pe0_pins{sim, "pe0"};
  ocp::OcpPinMaster pe0{sim, "pe0.m", pe0_pins, clk};
  MasterAccessor acc0{sim, "acc0", pe0_pins, bus, arb, clk};

  // Master PE 1.
  ocp::OcpPins pe1_pins{sim, "pe1"};
  ocp::OcpPinMaster pe1{sim, "pe1.m", pe1_pins, clk};
  MasterAccessor acc1{sim, "acc1", pe1_pins, bus, arb, clk};

  // Slave PE: a memory exposed as a pin-level OCP slave.
  ocp::OcpPins mem_pins{sim, "mem"};
  ocp::MemorySlave mem{"mem", 0x0, 0x4000};
  ocp::OcpPinSlave mem_pe{sim, "mem.s", mem_pins, clk, mem};
  SlaveAccessor sacc{sim, "sacc", mem_pins, bus, clk, {0x0, 0x4000}};
};

}  // namespace

TEST(Accessor, SingleMasterWriteRead) {
  Proto p;
  std::vector<std::uint8_t> got;
  p.sim.spawn_thread("sw", [&] {
    auto wr = p.pe0.transport(ocp::Request::write(0x100, {1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_TRUE(wr.good());
    auto rd = p.pe0.transport(ocp::Request::read(0x100, 8));
    EXPECT_TRUE(rd.good());
    got = rd.data;
    p.sim.stop();
  });
  p.sim.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(p.mem.peek(0x103), 4);
  EXPECT_EQ(p.acc0.transactions(), 2u);
  EXPECT_EQ(p.sacc.transactions(), 2u);
  EXPECT_EQ(p.arb.grants(), 2u);
}

TEST(Accessor, TwoMastersAreArbitratedWithoutCorruption) {
  Proto p;
  int done = 0;
  auto worker = [&](ocp::OcpPinMaster& pe, std::uint64_t base,
                    std::uint8_t tag) {
    for (int i = 0; i < 8; ++i) {
      std::vector<std::uint8_t> v(8, static_cast<std::uint8_t>(tag + i));
      auto wr = pe.transport(
          ocp::Request::write(base + static_cast<std::uint64_t>(8 * i), v));
      EXPECT_TRUE(wr.good());
    }
    if (++done == 2) p.sim.stop();
  };
  p.sim.spawn_thread("sw0", [&] { worker(p.pe0, 0x0000, 0x10); });
  p.sim.spawn_thread("sw1", [&] { worker(p.pe1, 0x2000, 0x80); });
  p.sim.run();
  ASSERT_EQ(done, 2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(p.mem.peek(static_cast<std::uint64_t>(8 * i)), 0x10 + i);
    EXPECT_EQ(p.mem.peek(0x2000 + static_cast<std::uint64_t>(8 * i)), 0x80 + i);
  }
  EXPECT_EQ(p.arb.grants(), 16u);
}

TEST(Accessor, ReadLatencyGrowsWithBurstLength) {
  Proto p;
  Time t1, t4;
  p.sim.spawn_thread("sw", [&] {
    p.pe0.transport(ocp::Request::read(0, 4));  // warm-up
    Time s = p.sim.now();
    p.pe0.transport(ocp::Request::read(0, 4));
    t1 = p.sim.now() - s;
    s = p.sim.now();
    p.pe0.transport(ocp::Request::read(0, 16));
    t4 = p.sim.now() - s;
    p.sim.stop();
  });
  p.sim.run();
  // 3 extra data beats on each of the three pin-level hops: requesting
  // PE -> master accessor, bus, slave accessor -> memory PE.
  EXPECT_EQ(t4 - t1, 9 * 10_ns);
}

TEST(Accessor, PinPrototypeMatchesMemoryImageOfTlRun) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> addr(0, 1000);
  std::uniform_int_distribution<int> len(1, 16);
  std::uniform_int_distribution<int> byte(0, 255);
  struct Op {
    std::uint64_t addr;
    std::vector<std::uint8_t> data;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 12; ++i) {
    Op op;
    op.addr = static_cast<std::uint64_t>(addr(rng));
    op.data.resize(static_cast<std::size_t>(len(rng)));
    for (auto& b : op.data) b = static_cast<std::uint8_t>(byte(rng));
    ops.push_back(op);
  }

  Proto p;
  p.sim.spawn_thread("sw", [&] {
    for (const auto& op : ops) {
      p.pe0.transport(ocp::Request::write(op.addr, op.data));
    }
    p.sim.stop();
  });
  p.sim.run();

  // Reference: plain TL memory.
  ocp::MemorySlave ref("ref", 0, 0x4000);
  {
    Simulator sim2;
    ocp::OcpTlChannel ch(sim2, "ch", ref);
    sim2.spawn_thread("sw", [&] {
      for (const auto& op : ops) ch.transport(ocp::Request::write(op.addr, op.data));
    });
    sim2.run();
  }
  for (std::uint64_t a = 0; a < 1024; ++a) {
    ASSERT_EQ(p.mem.peek(a), ref.peek(a)) << "addr " << a;
  }
}

TEST(Accessor, ArbitrationIsPriorityOrdered) {
  Proto p;
  std::vector<int> completion_order;
  // Both masters request in the same cycle; accessor 0 has priority.
  p.sim.spawn_thread("sw0", [&] {
    p.pe0.transport(ocp::Request::write(0x0, std::vector<std::uint8_t>(32, 1)));
    completion_order.push_back(0);
  });
  p.sim.spawn_thread("sw1", [&] {
    p.pe1.transport(ocp::Request::write(0x40, std::vector<std::uint8_t>(32, 2)));
    completion_order.push_back(1);
    p.sim.stop();
  });
  p.sim.run();
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], 0);
  EXPECT_EQ(completion_order[1], 1);
}
