// Unit tests for stlm::Time.
#include <gtest/gtest.h>

#include "kernel/time.hpp"

using namespace stlm;

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t, Time::zero());
  EXPECT_EQ(t.femtoseconds(), 0u);
}

TEST(Time, NamedConstructorsScaleCorrectly) {
  EXPECT_EQ(Time::fs(1).femtoseconds(), 1u);
  EXPECT_EQ(Time::ps(1).femtoseconds(), 1'000u);
  EXPECT_EQ(Time::ns(1).femtoseconds(), 1'000'000u);
  EXPECT_EQ(Time::us(1).femtoseconds(), 1'000'000'000u);
  EXPECT_EQ(Time::ms(1).femtoseconds(), 1'000'000'000'000u);
  EXPECT_EQ(Time::sec(1).femtoseconds(), 1'000'000'000'000'000u);
}

TEST(Time, Literals) {
  using namespace stlm::time_literals;
  EXPECT_EQ(10_ns, Time::ns(10));
  EXPECT_EQ(5_us, Time::us(5));
  EXPECT_EQ(1_sec, Time::sec(1));
  EXPECT_EQ(500_ps + 500_ps, 1_ns);
}

TEST(Time, Arithmetic) {
  using namespace stlm::time_literals;
  EXPECT_EQ(3_ns + 2_ns, 5_ns);
  EXPECT_EQ(5_ns - 2_ns, 3_ns);
  EXPECT_EQ(3_ns * 4, 12_ns);
  EXPECT_EQ(4 * 3_ns, 12_ns);
  EXPECT_EQ(12_ns / 4, 3_ns);
  EXPECT_EQ(12_ns / 3_ns, 4u);
  EXPECT_EQ(13_ns % 5_ns, 3_ns);
}

TEST(Time, CompoundAssignment) {
  using namespace stlm::time_literals;
  Time t = 10_ns;
  t += 5_ns;
  EXPECT_EQ(t, 15_ns);
  t -= 3_ns;
  EXPECT_EQ(t, 12_ns);
  t *= 2;
  EXPECT_EQ(t, 24_ns);
  t /= 8;
  EXPECT_EQ(t, 3_ns);
}

TEST(Time, Ordering) {
  using namespace stlm::time_literals;
  EXPECT_LT(1_ns, 1_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_LE(5_ns, 5_ns);
  EXPECT_NE(1_ns, 1_ps);
}

TEST(Time, MaxSentinel) {
  EXPECT_TRUE(Time::max().is_max());
  EXPECT_GT(Time::max(), Time::sec(10000));
}

TEST(Time, Conversions) {
  using namespace stlm::time_literals;
  EXPECT_DOUBLE_EQ((1_ns).to_seconds(), 1e-9);
  EXPECT_DOUBLE_EQ((2500_ps).to_ns(), 2.5);
}

TEST(Time, ToStringPicksUnit) {
  using namespace stlm::time_literals;
  EXPECT_EQ((10_ns).to_string(), "10 ns");
  EXPECT_EQ((2500_ps).to_string(), "2.5 ns");
  EXPECT_EQ((1_sec).to_string(), "1 s");
  EXPECT_EQ(Time::zero().to_string(), "0 s");
  EXPECT_EQ((500_fs).to_string(), "500 fs");
}
