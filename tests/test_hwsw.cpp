// Tests for the HW/SW interface: SHIP communication across the partition
// boundary through the HW adapter (mailbox + sideband IRQ) and the SW
// driver (device driver + communication library on the RTOS).
#include <gtest/gtest.h>

#include <numeric>

#include "cam/cam.hpp"
#include "cpu/cpu.hpp"
#include "cpu/irq.hpp"
#include "hwsw/hwsw.hpp"
#include "kernel/kernel.hpp"
#include "ocp/banked_memory.hpp"
#include "ocp/memory.hpp"
#include "rtos/rtos.hpp"
#include "ship/ship.hpp"

using namespace stlm;
using namespace stlm::time_literals;

namespace {

// A complete HW/SW platform: CPU + RTOS + driver on one side, HW adapter
// on a PLB on the other, sideband IRQ in between.
struct HwSwFixture {
  Simulator sim;
  Clock clk{sim, "clk", 10_ns};
  cam::PlbCam bus{sim, "plb", 10_ns, std::make_unique<cam::PriorityArbiter>()};
  cam::MailboxLayout layout{0x8000, 256};
  hwsw::HwAdapter adapter{sim, "hwacc", layout, 10_ns};
  cpu::CpuModel cpu{sim, "cpu", clk};
  cpu::IrqController ic{sim, "ic"};
  rtos::Rtos os{sim, "os", cpu, {1_us, 20}};
  hwsw::ShipDriver drv{"drv", os, cpu, layout};

  HwSwFixture() {
    bus.attach_slave(adapter, layout.range(), "hwacc");
    cpu.bus().bind(bus.master_port(bus.add_master("cpu")));
    ic.attach(adapter.irq(), 0);
    os.attach_isr(ic, [this](int line) {
      if (line == 0) drv.on_irq();
    });
  }

  void run_until_tasks_done() {
    sim.spawn_thread("watch", [this] {
      while (!os.all_tasks_terminated()) wait(10_us);
      sim.stop();
    });
    sim.run();
  }
};

}  // namespace

TEST(HwSw, SwMasterSendsToHwSlave) {
  HwSwFixture f;
  std::string got;
  f.os.create_task("app", 1, [&] {
    ship::StringMsg m("hello hardware");
    f.drv.send(m);
  });
  f.sim.spawn_thread("hw_pe", [&] {
    ship::StringMsg m;
    f.adapter.recv(m);
    got = m.text;
  });
  f.run_until_tasks_done();
  EXPECT_EQ(got, "hello hardware");
  EXPECT_EQ(f.adapter.messages_from_sw(), 1u);
}

TEST(HwSw, SwRequestHwReplyRoundTrip) {
  HwSwFixture f;
  std::uint32_t answer = 0;
  f.os.create_task("app", 1, [&] {
    ship::PodMsg<std::uint32_t> req(7), resp;
    f.drv.request(req, resp);
    answer = resp.value;
  });
  f.sim.spawn_thread("hw_pe", [&] {
    ship::PodMsg<std::uint32_t> req;
    f.adapter.recv(req);
    ship::PodMsg<std::uint32_t> resp(req.value * 6);
    f.adapter.reply(resp);
  });
  f.run_until_tasks_done();
  EXPECT_EQ(answer, 42u);
  EXPECT_GE(f.adapter.irq_count(), 1u);   // reply delivered by interrupt
  EXPECT_GE(f.drv.isr_count(), 1u);
}

TEST(HwSw, HwMasterSendsToSwSlave) {
  HwSwFixture f;
  std::string got;
  f.os.create_task("app", 1, [&] {
    ship::StringMsg m;
    f.drv.recv(m);
    got = m.text;
  });
  f.sim.spawn_thread("hw_pe", [&] {
    wait(5_us);
    ship::StringMsg m("hello software");
    f.adapter.send(m);
  });
  f.run_until_tasks_done();
  EXPECT_EQ(got, "hello software");
  EXPECT_EQ(f.adapter.messages_to_sw(), 1u);
  EXPECT_GE(f.adapter.irq_count(), 1u);
}

TEST(HwSw, HwRequestSwReplyRoundTrip) {
  HwSwFixture f;
  std::uint32_t answer = 0;
  f.os.create_task("app", 1, [&] {
    ship::PodMsg<std::uint32_t> req;
    f.drv.recv(req);
    ship::PodMsg<std::uint32_t> resp(req.value + 100);
    f.drv.reply(resp);
  });
  f.sim.spawn_thread("hw_pe", [&] {
    wait(2_us);
    ship::PodMsg<std::uint32_t> req(11), resp;
    f.adapter.request(req, resp);
    answer = resp.value;
  });
  f.run_until_tasks_done();
  EXPECT_EQ(answer, 111u);
}

TEST(HwSw, LargePayloadCrossesBoundaryChunked) {
  HwSwFixture f;  // 256-byte window
  std::vector<std::uint8_t> payload(3000);
  std::iota(payload.begin(), payload.end(), 0);
  std::vector<std::uint8_t> got;
  f.os.create_task("app", 1, [&] {
    ship::VectorMsg<> m(payload);
    f.drv.send(m);
  });
  f.sim.spawn_thread("hw_pe", [&] {
    ship::VectorMsg<> m;
    f.adapter.recv(m);
    got = m.data;
  });
  f.run_until_tasks_done();
  EXPECT_EQ(got, payload);
}

TEST(HwSw, LargeReplyDrainedByIsr) {
  HwSwFixture f;
  std::vector<std::uint8_t> reply_payload(1200, 0x3c);
  std::vector<std::uint8_t> got;
  f.os.create_task("app", 1, [&] {
    ship::PodMsg<std::uint8_t> req(1);
    ship::VectorMsg<> resp;
    f.drv.request(req, resp);
    got = resp.data;
  });
  f.sim.spawn_thread("hw_pe", [&] {
    ship::PodMsg<std::uint8_t> req;
    f.adapter.recv(req);
    ship::VectorMsg<> resp(reply_payload);
    f.adapter.reply(resp);
  });
  f.run_until_tasks_done();
  EXPECT_EQ(got, reply_payload);
}

TEST(HwSw, BackToBackMessagesAllArrive) {
  HwSwFixture f;
  constexpr int kCount = 10;
  int matches = 0;
  f.os.create_task("app", 1, [&] {
    for (int i = 0; i < kCount; ++i) {
      ship::PodMsg<int> m;
      f.drv.recv(m);
      if (m.value == i) ++matches;
    }
  });
  f.sim.spawn_thread("hw_pe", [&] {
    for (int i = 0; i < kCount; ++i) {
      ship::PodMsg<int> m(i);
      f.adapter.send(m);
    }
  });
  f.run_until_tasks_done();
  EXPECT_EQ(matches, kCount);
}

TEST(HwSw, RoleConflictsDetectedOnBothSides) {
  {
    HwSwFixture f;
    f.sim.spawn_thread("hw_pe", [&] {
      ship::PodMsg<int> m(1);
      f.adapter.send(m);
      f.adapter.recv(m);  // conflict: master then slave call
    });
    EXPECT_THROW(f.sim.run(), ProtocolError);
  }
  {
    HwSwFixture f;
    f.os.create_task("app", 1, [&] {
      ship::PodMsg<int> m(1);
      f.drv.send(m);
      f.drv.recv(m);  // conflict on the SW side
    });
    bool threw = false;
    try {
      f.run_until_tasks_done();
    } catch (const ProtocolError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }
}

TEST(HwSw, ReplyWithoutRequestThrowsOnDriver) {
  HwSwFixture f;
  f.os.create_task("app", 1, [&] {
    ship::PodMsg<int> m(1);
    f.drv.reply(m);
  });
  EXPECT_THROW(f.run_until_tasks_done(), ProtocolError);
}

// The ROADMAP item "exercise post() windows from the HW/SW driver
// path": on a split PLB, the blocking driver/ISR path (CPU mmio reads
// draining the adapter mailbox) shares the bus with a DMA master that
// keeps a posted window of writes in flight against targets with very
// different service times. The bus genuinely completes the DMA's
// transactions out of issue order, and the driver's mailbox protocol
// must still deliver every message to the RTOS task in order and
// intact.
TEST(HwSw, PostedDmaWindowsDoNotPerturbInOrderDriverDelivery) {
  Simulator sim;
  Clock clk{sim, "clk", 10_ns};
  cam::PlbCam bus{sim, "plb", 10_ns, std::make_unique<cam::PriorityArbiter>(),
                  0, cam::SplitConfig{true, 4}};
  ASSERT_TRUE(bus.split_active());
  cam::MailboxLayout layout{0x8000, 256};
  hwsw::HwAdapter adapter{sim, "hwacc", layout, 10_ns};
  cpu::CpuModel cpu{sim, "cpu", clk};
  cpu::IrqController ic{sim, "ic"};
  rtos::Rtos os{sim, "os", cpu, {1_us, 20}};
  hwsw::ShipDriver drv{"drv", os, cpu, layout};
  bus.attach_slave(adapter, layout.range(), "hwacc");
  // Two DMA targets with wildly different service times: a slow flat
  // memory and a banked DRAM — the recipe for OoO completion.
  ocp::MemorySlave slowmem("slowmem", 0x100000, 0x1000, 500_ns);
  ocp::BankedMemorySlave dram("dram", 0x200000, 0x10000);
  bus.attach_slave(slowmem, {0x100000, 0x1000}, "slowmem");
  bus.attach_slave(dram, {0x200000, 0x10000}, "dram");
  cpu.bus().bind(bus.master_port(bus.add_master("cpu")));
  const std::size_t dma_idx = bus.add_master("dma");
  ic.attach(adapter.irq(), 0);
  os.attach_isr(ic, [&](int line) {
    if (line == 0) drv.on_irq();
  });

  constexpr int kCount = 12;
  std::vector<int> got;
  os.create_task("app", 1, [&] {
    for (int i = 0; i < kCount; ++i) {
      ship::PodMsg<int> m;
      drv.recv(m);
      got.push_back(m.value);
    }
  });
  sim.spawn_thread("hw_pe", [&] {
    for (int i = 0; i < kCount; ++i) {
      ship::PodMsg<int> m(i);
      adapter.send(m);
    }
  });

  bool ooo_seen = false;
  bool dma_done = false;
  int dma_completed = 0;
  sim.spawn_thread("dma", [&] {
    std::vector<std::uint8_t> big(256, 0xd1), small(8, 0xd2);
    for (int i = 0; i < 16; ++i) {
      Txn a, b;
      a.begin_write(0x100000 + static_cast<std::uint64_t>(i % 8) * 64,
                    big.data(), big.size());       // slow target, issued first
      b.begin_write(0x200000 + static_cast<std::uint64_t>(i) * 64,
                    small.data(), small.size());   // fast target, issued second
      bus.post(dma_idx, a);
      bus.post(dma_idx, b);
      b.done.wait(sim);
      if (!a.done.completed()) ooo_seen = true;  // b overtook a on the bus
      a.done.wait(sim);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      dma_completed += 2;
    }
    dma_done = true;
  });

  sim.spawn_thread("watch", [&] {
    while (!os.all_tasks_terminated() || !dma_done) wait(10_us);
    sim.stop();
  });
  sim.run();

  // In-order, intact delivery to the RTOS side...
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  // ...while the bus demonstrably completed the posted window OoO.
  EXPECT_TRUE(ooo_seen) << "posted window never reordered - not a split bus?";
  EXPECT_EQ(dma_completed, 32);
  EXPECT_EQ(slowmem.writes(), 16u);
  EXPECT_EQ(dram.writes(), 16u);
}

TEST(HwSw, CommunicationConsumesCpuAndBusTime) {
  HwSwFixture f;
  Time req_latency;
  f.os.create_task("app", 1, [&] {
    ship::PodMsg<std::uint32_t> req(1), resp;
    const Time s = f.sim.now();
    f.drv.request(req, resp);
    req_latency = f.sim.now() - s;
  });
  f.sim.spawn_thread("hw_pe", [&] {
    ship::PodMsg<std::uint32_t> req;
    f.adapter.recv(req);
    ship::PodMsg<std::uint32_t> resp(req.value);
    f.adapter.reply(resp);
  });
  f.run_until_tasks_done();
  // Round trip includes driver overhead + bus writes + IRQ + ISR reads.
  EXPECT_GT(req_latency, 1_us);
  EXPECT_GT(f.cpu.bus_transactions(), 4u);
}
