// Scheduler-semantics tests: method processes, static sensitivity for
// threads (wait_static), update-phase ordering, and determinism — the
// kernel behaviours the pin-level FSMs, monitors, and arbiters rely on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/kernel.hpp"

using namespace stlm;
using namespace stlm::time_literals;

TEST(Scheduler, MethodSeesPreUpdateValueInItsDelta) {
  // A method sensitive to a signal's change event samples the *updated*
  // value (it runs in the delta after the update phase).
  Simulator sim;
  Signal<int> s(sim, "s", 0);
  int sampled = -1;
  sim.spawn_method("watch", [&] { sampled = s.read(); },
                   {&s.value_changed_event()}, /*run_at_start=*/false);
  sim.spawn_thread("drive", [&] {
    wait(1_ns);
    s.write(7);
  });
  sim.run();
  EXPECT_EQ(sampled, 7);
}

TEST(Scheduler, MethodWritingSignalTriggersDownstreamMethod) {
  // Method chains through the update phase: m1 writes a, m2 is sensitive
  // to a and writes b, m3 observes b — three deltas, same timestamp.
  Simulator sim;
  Signal<int> a(sim, "a", 0), b(sim, "b", 0);
  Event start(sim, "start");
  int final_b = -1;
  Time at;
  sim.spawn_method("m1", [&] { a.write(1); }, {&start},
                   /*run_at_start=*/false);
  sim.spawn_method("m2", [&] { b.write(a.read() + 10); },
                   {&a.value_changed_event()}, false);
  sim.spawn_method("m3",
                   [&] {
                     final_b = b.read();
                     at = sim.now();
                   },
                   {&b.value_changed_event()}, false);
  sim.spawn_thread("kick", [&] {
    wait(5_ns);
    start.notify();
  });
  sim.run();
  EXPECT_EQ(final_b, 11);
  EXPECT_EQ(at, 5_ns);  // all within one timestep
}

TEST(Scheduler, WaitStaticUsesSensitivityList) {
  Simulator sim;
  Event ev_a(sim, "a"), ev_b(sim, "b");
  std::vector<std::string> wakes;
  Process& p = sim.spawn_thread("t", [&] {
    for (int i = 0; i < 2; ++i) {
      wait_static();
      wakes.push_back(Simulator::current()->current_process()
                          ->last_wake_event()
                          ->name());
    }
  });
  p.set_static_sensitivity({&ev_a, &ev_b});
  sim.spawn_thread("driver", [&] {
    wait(1_ns);
    ev_b.notify();
    wait(1_ns);
    ev_a.notify();
  });
  sim.run();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], "b");
  EXPECT_EQ(wakes[1], "a");
}

TEST(Scheduler, WaitStaticWithoutSensitivityThrows) {
  Simulator sim;
  sim.spawn_thread("t", [&] { wait_static(); });
  EXPECT_THROW(sim.run(), SimulationError);
}

TEST(Scheduler, MethodSpawnedDuringSimulationRuns) {
  Simulator sim;
  Event ev(sim, "ev");
  int runs = 0;
  sim.spawn_thread("spawner", [&] {
    wait(5_ns);
    sim.spawn_method("late", [&] { ++runs; }, {&ev}, /*run_at_start=*/true);
    wait(5_ns);
    ev.notify();
    wait(1_ns);
  });
  sim.run();
  EXPECT_EQ(runs, 2);  // once at (late) start, once on the event
}

TEST(Scheduler, MethodExceptionPropagates) {
  Simulator sim;
  Event ev(sim, "ev");
  sim.spawn_method("bad", [&] { throw ProtocolError("method boom"); }, {&ev},
                   /*run_at_start=*/false);
  sim.spawn_thread("kick", [&] {
    wait(1_ns);
    ev.notify();
  });
  EXPECT_THROW(sim.run(), ProtocolError);
}

TEST(Scheduler, RunsAreResumable) {
  // run_for segments must stitch together seamlessly.
  Simulator sim;
  std::vector<Time> ticks;
  sim.spawn_thread("ticker", [&] {
    for (int i = 0; i < 6; ++i) {
      wait(10_ns);
      ticks.push_back(sim.now());
    }
  });
  sim.run_for(25_ns);
  EXPECT_EQ(ticks.size(), 2u);
  EXPECT_EQ(sim.now(), 25_ns);
  sim.run_for(25_ns);
  EXPECT_EQ(ticks.size(), 5u);
  sim.run();
  ASSERT_EQ(ticks.size(), 6u);
  EXPECT_EQ(ticks.back(), 60_ns);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  // Two identical simulations produce identical interleavings.
  auto run_once = [] {
    Simulator sim;
    Fifo<int> f(sim, "f", 2);
    std::vector<int> order;
    for (int id = 0; id < 3; ++id) {
      sim.spawn_thread("p" + std::to_string(id), [&, id] {
        for (int i = 0; i < 5; ++i) {
          f.write(id * 10 + i);
          wait(Time::ns(static_cast<std::uint64_t>(1 + id)));
        }
      });
    }
    sim.spawn_thread("c", [&] {
      for (int i = 0; i < 15; ++i) order.push_back(f.read());
    });
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, ModuleSpawnedMethodWithParentHierarchy) {
  Simulator sim;
  Module top(sim, "top");
  Module child(sim, "child", &top);
  Event ev(sim, "ev");
  int runs = 0;
  MethodProcess& m =
      child.spawn_method("fsm", [&] { ++runs; }, {&ev}, false);
  EXPECT_EQ(m.name(), "top.child.fsm");
  sim.spawn_thread("kick", [&] {
    ev.notify(3_ns);
    wait(10_ns);
  });
  sim.run();
  EXPECT_EQ(runs, 1);
}

TEST(Scheduler, IdleDetection) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  Event ev(sim, "ev");
  sim.spawn_thread("t", [&] { wait(5_ns); });
  sim.run();
  EXPECT_TRUE(sim.idle());
}
