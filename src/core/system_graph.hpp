#pragma once
// System graph: the abstract system the flow maps.
//
// Nodes are processing elements (with a HW/SW partition attribute);
// edges are named SHIP channels. Channel master/slave roles are either
// declared up front or *discovered automatically* by executing the
// component-assembly model and reading the roles the SHIP channels
// recorded (paper §2's automatic master/slave detection feeding §3/§4's
// mapping).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/pe.hpp"
#include "kernel/time.hpp"
#include "ocp/banked_memory.hpp"
#include "ship/channel.hpp"

namespace stlm::core {

// An addressable memory target the mapper attaches to the CAM, plus the
// PEs that access it directly over the bus (they receive a master port
// through ExecContext::mem_bus()/mem_master() at the CAM level; at the
// abstract levels there is no interconnect and clients model their
// accesses as compute). Declared on the graph so the same workload
// factory maps onto every candidate platform — behind a split PLB the
// banked target's unequal service times are what make OoO completion
// actually reorder.
struct MemorySpec {
  std::string name = "mem";
  std::uint64_t base = 0x80000000;
  std::size_t size = 1 << 16;
  ocp::BankedMemoryConfig cfg{};
  std::vector<ProcessingElement*> clients;  // must be add_pe()'d, HW part.
};

struct ChannelSpec {
  std::string name;
  ProcessingElement* a = nullptr;
  ProcessingElement* b = nullptr;
  // PE-local port names: what each endpoint passes to
  // ExecContext::channel(). Default to the channel name.
  std::string port_a;
  std::string port_b;
  std::size_t queue_depth = 1;
  // Role of terminal a (terminal b has the complement). Unknown until
  // declared or discovered.
  ship::Role role_a = ship::Role::Unknown;
};

class SystemGraph {
public:
  // Register a PE (default partition: hardware).
  void add_pe(ProcessingElement& pe, Partition part = Partition::Hardware);
  void set_partition(ProcessingElement& pe, Partition part);
  Partition partition(const ProcessingElement& pe) const;

  // Connect two registered PEs with a named SHIP channel. `port_a`/
  // `port_b` are the PE-local names the endpoints use in
  // ExecContext::channel() (empty = use the channel name). `role_a`
  // may be declared here; otherwise run discover_roles() before mapping
  // to a communication architecture.
  void connect(const std::string& channel, ProcessingElement& a,
               const std::string& port_a, ProcessingElement& b,
               const std::string& port_b, std::size_t queue_depth = 1,
               ship::Role role_a = ship::Role::Unknown);
  // Shorthand: both PEs use the channel's own name as port name.
  void connect(const std::string& channel, ProcessingElement& a,
               ProcessingElement& b, std::size_t queue_depth = 1,
               ship::Role role_a = ship::Role::Unknown);

  // Register an addressable memory target. Clients must already be
  // add_pe()'d; their range must not collide with the platform's mailbox
  // windows (the default base leaves the low half of the map to them).
  void add_memory(MemorySpec spec);
  const std::vector<MemorySpec>& memories() const { return memories_; }

  const std::vector<ProcessingElement*>& pes() const { return pes_; }
  const std::vector<ChannelSpec>& channels() const { return channels_; }
  std::vector<ChannelSpec>& channels() { return channels_; }

  // Execute the component-assembly model in a scratch simulator for
  // `budget` of simulated activity and record each channel's detected
  // roles. Throws ElaborationError if any channel's roles remain unknown
  // afterwards (e.g. a PE that never communicated within the budget).
  void discover_roles(Time budget = Time::us(100));

  // True once every channel has known roles.
  bool roles_known() const;

private:
  std::vector<ProcessingElement*> pes_;
  std::map<const ProcessingElement*, Partition> partitions_;
  std::vector<ChannelSpec> channels_;
  std::vector<MemorySpec> memories_;
};

}  // namespace stlm::core
