#include "core/system_graph.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "core/esw.hpp"
#include "ship/timing.hpp"

namespace stlm::core {

void SystemGraph::add_pe(ProcessingElement& pe, Partition part) {
  STLM_ASSERT(std::find(pes_.begin(), pes_.end(), &pe) == pes_.end(),
              "PE registered twice: " + pe.name());
  pes_.push_back(&pe);
  partitions_[&pe] = part;
}

void SystemGraph::set_partition(ProcessingElement& pe, Partition part) {
  STLM_ASSERT(partitions_.contains(&pe), "unknown PE: " + pe.name());
  partitions_[&pe] = part;
}

Partition SystemGraph::partition(const ProcessingElement& pe) const {
  auto it = partitions_.find(&pe);
  STLM_ASSERT(it != partitions_.end(), "unknown PE: " + pe.name());
  return it->second;
}

void SystemGraph::connect(const std::string& channel, ProcessingElement& a,
                          const std::string& port_a, ProcessingElement& b,
                          const std::string& port_b, std::size_t queue_depth,
                          ship::Role role_a) {
  STLM_ASSERT(partitions_.contains(&a), "connect: unknown PE " + a.name());
  STLM_ASSERT(partitions_.contains(&b), "connect: unknown PE " + b.name());
  STLM_ASSERT(&a != &b, "channel endpoints must differ: " + channel);
  for (const auto& c : channels_) {
    STLM_ASSERT(c.name != channel, "duplicate channel name: " + channel);
  }
  channels_.push_back(ChannelSpec{channel, &a, &b,
                                  port_a.empty() ? channel : port_a,
                                  port_b.empty() ? channel : port_b,
                                  queue_depth, role_a});
}

void SystemGraph::connect(const std::string& channel, ProcessingElement& a,
                          ProcessingElement& b, std::size_t queue_depth,
                          ship::Role role_a) {
  connect(channel, a, channel, b, channel, queue_depth, role_a);
}

void SystemGraph::add_memory(MemorySpec spec) {
  STLM_ASSERT(spec.size > 0, "memory target needs a size: " + spec.name);
  for (const auto& m : memories_) {
    STLM_ASSERT(m.name != spec.name, "duplicate memory name: " + spec.name);
  }
  for (ProcessingElement* pe : spec.clients) {
    STLM_ASSERT(pe != nullptr, "null client on memory " + spec.name);
    STLM_ASSERT(partitions_.contains(pe),
                "add_memory: unknown client PE " + pe->name());
  }
  memories_.push_back(std::move(spec));
}

bool SystemGraph::roles_known() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const ChannelSpec& c) {
                       return c.role_a != ship::Role::Unknown;
                     });
}

void SystemGraph::discover_roles(Time budget) {
  if (roles_known()) return;

  // Scratch component-assembly run. A minimal CCATB timing (one cycle per
  // message) guarantees simulated time advances, so the budget bounds the
  // run even for PEs that never wait.
  Simulator scratch;
  std::vector<std::unique_ptr<ship::ShipChannel>> chans;
  std::vector<std::unique_ptr<HwExecContext>> ctxs;
  std::map<const ProcessingElement*, HwExecContext*> ctx_of;

  for (ProcessingElement* pe : pes_) {
    ctxs.push_back(std::make_unique<HwExecContext>(scratch, Time::ns(1)));
    ctx_of[pe] = ctxs.back().get();
  }
  for (const ChannelSpec& spec : channels_) {
    chans.push_back(std::make_unique<ship::ShipChannel>(
        scratch, spec.name, spec.queue_depth,
        std::make_unique<ship::CcatbModel>(Time::ns(1), 4, 1)));
    ctx_of[spec.a]->add_channel(spec.port_a, chans.back()->a());
    ctx_of[spec.b]->add_channel(spec.port_b, chans.back()->b());
  }
  for (ProcessingElement* pe : pes_) {
    HwExecContext* ctx = ctx_of[pe];
    scratch.spawn_thread("probe." + pe->name(), [pe, ctx] { pe->run(*ctx); });
  }
  scratch.run_for(budget);

  for (std::size_t i = 0; i < channels_.size(); ++i) {
    ChannelSpec& spec = channels_[i];
    if (spec.role_a != ship::Role::Unknown) continue;
    const ship::Role a = chans[i]->role_a();
    const ship::Role b = chans[i]->role_b();
    if (a != ship::Role::Unknown) {
      spec.role_a = a;
    } else if (b != ship::Role::Unknown) {
      spec.role_a = b == ship::Role::Master ? ship::Role::Slave
                                            : ship::Role::Master;
    } else {
      throw ElaborationError(
          "role discovery: channel '" + spec.name +
          "' saw no traffic within the budget; declare its roles in "
          "connect()");
    }
  }
}

}  // namespace stlm::core
