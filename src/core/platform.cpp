#include "core/platform.hpp"

#include <algorithm>
#include <cstddef>

namespace stlm::core {

const char* bus_kind_name(BusKind b) {
  switch (b) {
    case BusKind::SharedBus: return "shared-bus";
    case BusKind::Plb: return "plb";
    case BusKind::Opb: return "opb";
    case BusKind::Crossbar: return "crossbar";
  }
  return "?";
}

const char* arb_kind_name(ArbKind a) {
  switch (a) {
    case ArbKind::Priority: return "priority";
    case ArbKind::RoundRobin: return "round-robin";
    case ArbKind::Tdma: return "tdma";
    case ArbKind::PriorityAging: return "aging";
    case ArbKind::Bandwidth: return "bandwidth";
  }
  return "?";
}

double Platform::cost_proxy() const {
  const double bits = static_cast<double>(bus_width_bytes()) * 8.0;
  // Guard a zero cycle (never produced by the grid) so the proxy stays
  // finite for hand-built platforms.
  const double cycle_ns = std::max(bus_cycle.to_ns(), 1e-3);
  double cost = bits * (1e3 / cycle_ns);
  // A crossbar replicates the datapath across routes.
  if (bus == BusKind::Crossbar) cost *= 4.0;
  // Split mode pays per-slot outstanding-transaction tracking.
  if (split_active()) {
    cost *= 1.0 + 0.25 * static_cast<double>(max_outstanding - 1);
  }
  return cost;
}

bool knob_point_valid(BusKind bus, std::size_t outstanding, bool fast) {
  // OPB has no address pipelining: only the atomic point exists.
  if (outstanding > 1 && bus == BusKind::Opb) return false;
  // The fast path only engages in atomic mode; a fast split point would
  // duplicate the plain split point.
  if (fast && outstanding > 1) return false;
  return true;
}

std::string grid_point_name(const Platform& p) {
  std::string name = bus_kind_name(p.bus);
  if (p.bus != BusKind::Crossbar) {
    name += '-';
    name += arb_kind_name(p.arb);
  }
  name += '-';
  name += std::to_string(p.bus_cycle / Time::ns(1));
  name += "ns-";
  name += std::to_string(p.bus_width_bytes() * 8);
  name += 'b';
  if (p.split_active()) {
    name += "-split";
    name += std::to_string(p.max_outstanding);
  }
  if (p.fast_targets) name += "-fast";
  // Inactive axis entries (the defaults) leave the name untouched so the
  // fault-free grid is bit-identical to the pre-failure-axes grid.
  if (p.fault.active()) {
    name += '-';
    name += p.fault.name.empty() ? std::string("fault") : p.fault.name;
  }
  if (p.retry.active()) {
    name += '-';
    name += p.retry.name.empty() ? std::string("retry") : p.retry.name;
  }
  return name;
}

namespace {

// Index of `v` in `axis`, or npos when the current setting sits outside
// the axis (hand-built platforms): that axis then contributes nothing.
template <class T, class V>
std::size_t axis_index(const std::vector<T>& axis, const V& v) {
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (axis[i] == v) return i;
  }
  return static_cast<std::size_t>(-1);
}

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

// Apply the split knob pair consistently: depth 1 is the atomic bus.
void set_outstanding(Platform& p, std::size_t k) {
  if (k > 1) {
    p.split_txns = true;
    p.max_outstanding = k;
  } else {
    p.split_txns = false;
    p.max_outstanding = 1;
  }
}

}  // namespace

std::vector<Platform> grid_neighbors(const Platform& p,
                                     const KnobSpace& space) {
  std::vector<Platform> out;
  const std::size_t cur_outstanding = p.split_active() ? p.max_outstanding : 1;

  auto emit = [&](Platform cand) {
    const std::size_t k = cand.split_active() ? cand.max_outstanding : 1;
    if (!knob_point_valid(cand.bus, k, cand.fast_targets)) return;
    // A crossbar has no arbiter and its grid name does not encode one;
    // pin the field so the emitted Platform is a pure function of its
    // name (two parents proposing the same crossbar point must agree).
    if (cand.bus == BusKind::Crossbar && !space.arbs.empty()) {
      cand.arb = space.arbs.front();
    }
    cand.name = grid_point_name(cand);
    out.push_back(std::move(cand));
  };

  // Each axis: step to the adjacent values around the current setting.
  auto step = [](std::size_t i, std::size_t n, auto&& propose) {
    if (i == kNoIndex || n < 2) return;
    if (i > 0) propose(i - 1);
    if (i + 1 < n) propose(i + 1);
  };

  step(axis_index(space.buses, p.bus), space.buses.size(), [&](std::size_t j) {
    Platform c = p;
    c.bus = space.buses[j];
    emit(std::move(c));
  });
  if (p.bus != BusKind::Crossbar) {
    step(axis_index(space.arbs, p.arb), space.arbs.size(),
         [&](std::size_t j) {
           Platform c = p;
           c.arb = space.arbs[j];
           emit(std::move(c));
         });
  }
  step(axis_index(space.bus_cycles, p.bus_cycle), space.bus_cycles.size(),
       [&](std::size_t j) {
         Platform c = p;
         c.bus_cycle = space.bus_cycles[j];
         emit(std::move(c));
       });
  step(axis_index(space.data_widths, p.bus_width_bytes()),
       space.data_widths.size(), [&](std::size_t j) {
         Platform c = p;
         c.data_width_bytes = space.data_widths[j];
         emit(std::move(c));
       });
  step(axis_index(space.max_outstanding, cur_outstanding),
       space.max_outstanding.size(), [&](std::size_t j) {
         Platform c = p;
         set_outstanding(c, space.max_outstanding[j]);
         emit(std::move(c));
       });
  step(axis_index(space.fast_targets, p.fast_targets),
       space.fast_targets.size(), [&](std::size_t j) {
         Platform c = p;
         c.fast_targets = space.fast_targets[j];
         emit(std::move(c));
       });
  return out;
}

}  // namespace stlm::core
