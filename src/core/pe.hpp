#pragma once
// Processing elements and their execution contexts.
//
// The flow's key constraint (paper §4): PEs that may become software must
// use SHIP channels exclusively for communication. We enforce a slightly
// stronger, cleaner discipline: PE behaviour is written once against
// ExecContext — channels by name, computation as cycle budgets — and the
// builder binds it either to kernel primitives (HW partition) or to RTOS
// primitives on the CPU model (SW partition). That binding *is* the
// Herrera-style eSW synthesis step, realized as link-time substitution
// instead of source rewriting.

#include <cstdint>
#include <functional>
#include <string>

#include "kernel/simulator.hpp"
#include "kernel/time.hpp"
#include "ship/channel.hpp"

namespace stlm::cam {
class CamIf;
class RetryPolicy;
}

namespace stlm::core {

enum class Partition : std::uint8_t { Hardware, Software };
const char* partition_name(Partition p);

class ExecContext {
public:
  virtual ~ExecContext() = default;

  // The SHIP endpoint this PE was connected to under `name`.
  virtual ship::ship_if& channel(const std::string& name) = 0;
  // Charge computation time (cycles of the PE's clock / the CPU).
  virtual void consume(std::uint64_t cycles) = 0;
  // Explicit idle time (sensor intervals, frame pacing, ...).
  virtual void idle(Time t) = 0;

  // Direct addressed access to mapped memory, for PEs registered as
  // memory clients (SystemGraph::add_memory). At the CAM level the
  // mapper binds a bus master port here; abstract levels (component
  // assembly, CCATB) have no interconnect and return nullptr — the PE
  // then models its accesses as compute. Issue with
  // `mem_bus()->post(mem_master(), txn)` (OoO window) or a blocking
  // `master_port(mem_master()).transport(txn)`.
  virtual cam::CamIf* mem_bus() { return nullptr; }
  virtual std::size_t mem_master() const { return 0; }
  // Initiator-side failure policy for the memory port, when the platform
  // carries an active RetrySpec. Posted initiators issue through
  // `mem_retry()->post(txn)` and classify with `settle(txn)` after
  // done.wait(); nullptr (the default) means issue directly on mem_bus().
  virtual cam::RetryPolicy* mem_retry() { return nullptr; }

  virtual Simulator& sim() = 0;
};

class ProcessingElement {
public:
  explicit ProcessingElement(std::string name) : name_(std::move(name)) {}
  virtual ~ProcessingElement() = default;

  ProcessingElement(const ProcessingElement&) = delete;
  ProcessingElement& operator=(const ProcessingElement&) = delete;

  const std::string& name() const { return name_; }

  // PE behaviour. May run forever or return when its workload completes.
  // Must be re-entrant: the flow executes it once per built model (role
  // discovery run, then each abstraction level), so all mutable state
  // belongs in locals, not members.
  virtual void run(ExecContext& ctx) = 0;

private:
  std::string name_;
};

// Convenience: a PE defined by a lambda (used by tests and workloads).
class LambdaPe final : public ProcessingElement {
public:
  LambdaPe(std::string name, std::function<void(ExecContext&)> body)
      : ProcessingElement(std::move(name)), body_(std::move(body)) {}

  void run(ExecContext& ctx) override { body_(ctx); }

private:
  std::function<void(ExecContext&)> body_;
};

}  // namespace stlm::core
