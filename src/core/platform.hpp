#pragma once
// Platform description: the target a system graph is mapped onto.
//
// One Platform = one communication architecture choice + its parameters.
// The exploration engine sweeps vectors of these.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "hwsw/driver.hpp"
#include "kernel/time.hpp"
#include "rtos/rtos.hpp"

namespace stlm::core {

enum class BusKind : std::uint8_t { SharedBus, Plb, Opb, Crossbar };
enum class ArbKind : std::uint8_t {
  Priority,
  RoundRobin,
  Tdma,
  PriorityAging,  // QoS: static priority + starvation aging
  Bandwidth,      // QoS: deficit-credit bandwidth reservation
};

const char* bus_kind_name(BusKind b);
const char* arb_kind_name(ArbKind a);

struct Platform {
  std::string name = "plb-priority";
  BusKind bus = BusKind::Plb;
  ArbKind arb = ArbKind::Priority;
  Time bus_cycle = Time::ns(10);          // 100 MHz PLB-class default
  Time pe_clock = Time::ns(10);           // HW PE clock
  Time cpu_clock = Time::ns(10);          // embedded CPU clock

  // Mailbox placement for mapped SHIP channels.
  std::uint64_t mailbox_base = 0x40000000;
  std::uint32_t mailbox_window = 256;     // bytes
  Time poll_interval = Time::ns(200);     // master wrapper RSTATUS polling

  // TDMA parameters (used when arb == Tdma).
  std::uint64_t tdma_slot_cycles = 16;

  // QoS arbitration parameters. `aging_cycles` (arb == PriorityAging):
  // a requester starved that many bus cycles preempts the static
  // priority order. `qos_shares` (arb == Bandwidth): per-master-index
  // bandwidth shares; masters beyond the table default to share 1.
  std::uint64_t aging_cycles = 64;
  std::vector<std::uint32_t> qos_shares;

  // Failure semantics. `fault` seeds a deterministic fault::Injector on
  // the bus (inactive default = no injector attached, bit-identical to
  // the fault-free build); `retry` parameterizes the initiator-side
  // RetryPolicy shims (inactive default = no shims inserted).
  fault::FaultProfile fault{};
  fault::RetrySpec retry{};

  // SW partition runtime.
  rtos::RtosConfig rtos_cfg{};
  hwsw::DriverConfig driver_cfg{};

  // CCATB approximation used at the mid level: per-message setup cycles.
  std::uint64_t ccatb_setup_cycles = 2;

  // Data-path width in bytes; 0 selects the bus kind's native width
  // (64-bit PLB/crossbar, 32-bit shared bus/OPB). The exploration grid
  // sweeps this axis explicitly.
  std::size_t data_width_bytes = 0;

  // Split/out-of-order transaction mode: when split_txns is true and
  // max_outstanding > 1, split-capable buses (shared bus, PLB, crossbar)
  // decouple the address phase from the data phase, run target service
  // off the bus, and allow up to max_outstanding in-flight transactions
  // per master. max_outstanding == 1 reproduces the atomic timing
  // bit-identically (guarded by tests/test_cam_split.cpp); OPB has no
  // address pipelining and ignores both knobs.
  bool split_txns = false;
  std::size_t max_outstanding = 1;

  // Kernel fast path: let the bus CAM resolve uncontended transactions
  // to fast-capable slaves inline (no grant-engine wakeup, no coroutine
  // switch). Simulated timing is unchanged except for one documented
  // same-delta arbitration corner (see cam/cam_base.hpp); the knob only
  // engages in atomic mode (split_active() forces it off), so the
  // exploration grid sweeps it on atomic design points only.
  bool fast_targets = false;

  // SHIP master wrappers merge each chunk's DATA_IN burst and its CTRL
  // commit into one bus burst (halves the mailbox writes per chunk).
  bool coalesce_bursts = false;

  std::size_t bus_width_bytes() const {
    if (data_width_bytes) return data_width_bytes;
    return bus == BusKind::Plb || bus == BusKind::Crossbar ? 8 : 4;
  }

  bool split_active() const { return split_txns && max_outstanding > 1; }

  // Relative implementation-cost proxy for Pareto exploration: the
  // platform's raw data-path capability — width (bits) x clock (MHz) —
  // scaled by structural multipliers. A crossbar replicates the datapath
  // per route; split mode adds per-slot outstanding-transaction tracking.
  // Dimensionless (comparisons only); deterministic per Platform, so it
  // is a legitimate search objective without running a simulation.
  double cost_proxy() const;
};

// Knob axes of the exploration space: the ordered value lists a search
// may step through, one knob at a time. Mirrors the timing axes of
// expl::GridSpec (see GridSpec::knobs()); failure axes are deliberately
// absent — mutation explores timing knobs and inherits the parent's
// fault/retry configuration unchanged.
struct KnobSpace {
  std::vector<BusKind> buses;
  std::vector<ArbKind> arbs;
  std::vector<Time> bus_cycles;
  std::vector<std::size_t> data_widths;
  std::vector<std::size_t> max_outstanding;
  std::vector<bool> fast_targets;
};

// Structural validity of one grid point: OPB has no address pipelining
// (no split points) and the kernel fast path only engages in atomic
// mode (no fast split points). Shared by grid_candidates() and
// grid_neighbors() so the two can never disagree on the legal space.
bool knob_point_valid(BusKind bus, std::size_t outstanding, bool fast);

// Canonical exploration-grid name for a platform's knob settings:
// "<bus>[-<arb>]-<cycle>ns-<width>b[-split<k>][-fast][-<fault>][-<retry>]".
// grid_candidates() and grid_neighbors() both name through here, so a
// mutated neighbor that lands on an existing grid point gets the grid
// point's exact name (deduplication by name is sound).
std::string grid_point_name(const Platform& p);

// One-knob-at-a-time neighbors of `p` inside `space`: for every axis
// whose value list contains p's current setting, the adjacent values
// (index +/- 1) each yield one candidate, with the remaining knobs held
// fixed. Invalid combinations (knob_point_valid) are skipped, arbiter
// steps apply only to arbitrated buses, and each neighbor is renamed via
// grid_point_name. Deterministic: output order follows axis order, then
// -1 before +1. Axes where p's value is absent contribute nothing.
std::vector<Platform> grid_neighbors(const Platform& p,
                                     const KnobSpace& space);

}  // namespace stlm::core
