#pragma once
// Platform description: the target a system graph is mapped onto.
//
// One Platform = one communication architecture choice + its parameters.
// The exploration engine sweeps vectors of these.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "hwsw/driver.hpp"
#include "kernel/time.hpp"
#include "rtos/rtos.hpp"

namespace stlm::core {

enum class BusKind : std::uint8_t { SharedBus, Plb, Opb, Crossbar };
enum class ArbKind : std::uint8_t {
  Priority,
  RoundRobin,
  Tdma,
  PriorityAging,  // QoS: static priority + starvation aging
  Bandwidth,      // QoS: deficit-credit bandwidth reservation
};

const char* bus_kind_name(BusKind b);
const char* arb_kind_name(ArbKind a);

struct Platform {
  std::string name = "plb-priority";
  BusKind bus = BusKind::Plb;
  ArbKind arb = ArbKind::Priority;
  Time bus_cycle = Time::ns(10);          // 100 MHz PLB-class default
  Time pe_clock = Time::ns(10);           // HW PE clock
  Time cpu_clock = Time::ns(10);          // embedded CPU clock

  // Mailbox placement for mapped SHIP channels.
  std::uint64_t mailbox_base = 0x40000000;
  std::uint32_t mailbox_window = 256;     // bytes
  Time poll_interval = Time::ns(200);     // master wrapper RSTATUS polling

  // TDMA parameters (used when arb == Tdma).
  std::uint64_t tdma_slot_cycles = 16;

  // QoS arbitration parameters. `aging_cycles` (arb == PriorityAging):
  // a requester starved that many bus cycles preempts the static
  // priority order. `qos_shares` (arb == Bandwidth): per-master-index
  // bandwidth shares; masters beyond the table default to share 1.
  std::uint64_t aging_cycles = 64;
  std::vector<std::uint32_t> qos_shares;

  // Failure semantics. `fault` seeds a deterministic fault::Injector on
  // the bus (inactive default = no injector attached, bit-identical to
  // the fault-free build); `retry` parameterizes the initiator-side
  // RetryPolicy shims (inactive default = no shims inserted).
  fault::FaultProfile fault{};
  fault::RetrySpec retry{};

  // SW partition runtime.
  rtos::RtosConfig rtos_cfg{};
  hwsw::DriverConfig driver_cfg{};

  // CCATB approximation used at the mid level: per-message setup cycles.
  std::uint64_t ccatb_setup_cycles = 2;

  // Data-path width in bytes; 0 selects the bus kind's native width
  // (64-bit PLB/crossbar, 32-bit shared bus/OPB). The exploration grid
  // sweeps this axis explicitly.
  std::size_t data_width_bytes = 0;

  // Split/out-of-order transaction mode: when split_txns is true and
  // max_outstanding > 1, split-capable buses (shared bus, PLB, crossbar)
  // decouple the address phase from the data phase, run target service
  // off the bus, and allow up to max_outstanding in-flight transactions
  // per master. max_outstanding == 1 reproduces the atomic timing
  // bit-identically (guarded by tests/test_cam_split.cpp); OPB has no
  // address pipelining and ignores both knobs.
  bool split_txns = false;
  std::size_t max_outstanding = 1;

  // Kernel fast path: let the bus CAM resolve uncontended transactions
  // to fast-capable slaves inline (no grant-engine wakeup, no coroutine
  // switch). Simulated timing is unchanged except for one documented
  // same-delta arbitration corner (see cam/cam_base.hpp); the knob only
  // engages in atomic mode (split_active() forces it off), so the
  // exploration grid sweeps it on atomic design points only.
  bool fast_targets = false;

  // SHIP master wrappers merge each chunk's DATA_IN burst and its CTRL
  // commit into one bus burst (halves the mailbox writes per chunk).
  bool coalesce_bursts = false;

  std::size_t bus_width_bytes() const {
    if (data_width_bytes) return data_width_bytes;
    return bus == BusKind::Plb || bus == BusKind::Crossbar ? 8 : 4;
  }
};

}  // namespace stlm::core
