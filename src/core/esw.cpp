#include "core/esw.hpp"

namespace stlm::core {

const char* partition_name(Partition p) {
  return p == Partition::Hardware ? "HW" : "SW";
}

ship::ship_if& HwExecContext::channel(const std::string& name) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw ElaborationError("PE asked for unbound channel '" + name + "'");
  }
  return *it->second;
}

ship::ship_if& SwExecContext::channel(const std::string& name) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    throw ElaborationError("SW task asked for unbound channel '" + name + "'");
  }
  return *it->second;
}

void SwExecContext::idle(Time t) {
  const Time tick = os_.config().tick;
  const std::uint64_t ticks = (t.femtoseconds() + tick.femtoseconds() - 1) /
                              tick.femtoseconds();
  os_.delay_ticks(ticks == 0 ? 1 : ticks);
}

// --------------------------------------------------------- SW channel --

SwLocalChannel::SwLocalChannel(rtos::Rtos& os, std::string name,
                               std::size_t depth)
    : name_(std::move(name)) {
  STLM_ASSERT(depth > 0, "SW channel depth must be positive: " + name_);
  for (int i = 0; i < 2; ++i) {
    term_[i].ch = this;
    term_[i].index = i;
    dir_[i].items = std::make_unique<rtos::Semaphore>(
        os, name_ + ".items" + std::to_string(i), 0);
    dir_[i].space = std::make_unique<rtos::Semaphore>(
        os, name_ + ".space" + std::to_string(i), static_cast<int>(depth));
  }
}

const std::string& SwLocalChannel::Terminal::channel_name() const {
  return ch->name_;
}

void SwLocalChannel::mark(Terminal& t, ship::Role r, const char* call) {
  if (t.role_ != ship::Role::Unknown && t.role_ != r) {
    throw ProtocolError("SHIP role conflict on SW channel " + name_ +
                        ": terminal called " + call);
  }
  t.role_ = r;
}

void SwLocalChannel::push(Direction& d, Message m) {
  d.space->wait();
  d.queue.push_back(std::move(m));
  d.items->post();
}

SwLocalChannel::Message SwLocalChannel::pop(Direction& d) {
  d.items->wait();
  Message m = std::move(d.queue.front());
  d.queue.pop_front();
  d.space->post();
  return m;
}

void SwLocalChannel::Terminal::send(const ship::ship_serializable_if& msg) {
  ch->mark(*this, ship::Role::Master, "send");
  ch->push(ch->dir_[index], Message{ship::to_bytes(msg), false});
}

void SwLocalChannel::Terminal::recv(ship::ship_serializable_if& msg) {
  ch->mark(*this, ship::Role::Slave, "recv");
  Message m = ch->pop(ch->dir_[1 - index]);
  if (m.is_request) ++pending_replies;
  ship::from_bytes(msg, m.payload);
}

void SwLocalChannel::Terminal::request(const ship::ship_serializable_if& req,
                                       ship::ship_serializable_if& resp) {
  ch->mark(*this, ship::Role::Master, "request");
  ch->push(ch->dir_[index], Message{ship::to_bytes(req), true});
  Message r = ch->pop(ch->dir_[1 - index]);
  ship::from_bytes(resp, r.payload);
}

void SwLocalChannel::Terminal::reply(const ship::ship_serializable_if& resp) {
  ch->mark(*this, ship::Role::Slave, "reply");
  if (pending_replies == 0) {
    throw ProtocolError("SW channel " + ch->name_ +
                        ": reply without outstanding request");
  }
  --pending_replies;
  ch->push(ch->dir_[index], Message{ship::to_bytes(resp), false});
}

bool SwLocalChannel::Terminal::message_available() const {
  return !ch->dir_[1 - index].queue.empty();
}

}  // namespace stlm::core
