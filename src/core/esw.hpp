#pragma once
// Execution-context bindings (the eSW synthesis substitution) and the
// SW-local SHIP channel.
//
//   * HwExecContext    — PE behaviour on kernel primitives: consume() is a
//     timed wait at the PE clock, channels are whatever SHIP endpoint the
//     mapper chose (abstract channel, CAM wrapper, or HW adapter).
//   * SwExecContext    — the same behaviour as an RTOS task: consume()
//     charges CPU cycles, idle() rounds to RTOS ticks, channels resolve
//     to the device driver or to SW-local channels.
//   * SwLocalChannel   — a SHIP channel whose two ends are both RTOS
//     tasks: message queues on RTOS semaphores (no bus traffic), the
//     substitution Herrera et al. prescribe for channel objects.

#include <deque>
#include <map>
#include <string>

#include "core/pe.hpp"
#include "cpu/cpu.hpp"
#include "rtos/rtos.hpp"
#include "ship/channel.hpp"

namespace stlm::core {

class HwExecContext final : public ExecContext {
public:
  HwExecContext(Simulator& sim, Time pe_cycle)
      : sim_(sim), cycle_(pe_cycle) {}

  void add_channel(const std::string& name, ship::ship_if& endpoint) {
    endpoints_[name] = &endpoint;
  }
  // CAM-level mapping only: give this PE a bus master port for direct
  // memory traffic (SystemGraph::add_memory clients). `retry` optionally
  // interposes an initiator-side failure policy (bound to the same bus
  // and master index) for the PE's posted window.
  void bind_memory(cam::CamIf* bus, std::size_t master,
                   cam::RetryPolicy* retry = nullptr) {
    mem_bus_ = bus;
    mem_master_ = master;
    mem_retry_ = retry;
  }

  ship::ship_if& channel(const std::string& name) override;
  void consume(std::uint64_t cycles) override { wait(cycle_ * cycles); }
  void idle(Time t) override { wait(t); }
  cam::CamIf* mem_bus() override { return mem_bus_; }
  std::size_t mem_master() const override { return mem_master_; }
  cam::RetryPolicy* mem_retry() override { return mem_retry_; }
  Simulator& sim() override { return sim_; }

private:
  Simulator& sim_;
  Time cycle_;
  std::map<std::string, ship::ship_if*> endpoints_;
  cam::CamIf* mem_bus_ = nullptr;
  std::size_t mem_master_ = 0;
  cam::RetryPolicy* mem_retry_ = nullptr;
};

class SwExecContext final : public ExecContext {
public:
  SwExecContext(rtos::Rtos& os, cpu::CpuModel& cpu) : os_(os), cpu_(cpu) {}

  void add_channel(const std::string& name, ship::ship_if& endpoint) {
    endpoints_[name] = &endpoint;
  }

  ship::ship_if& channel(const std::string& name) override;
  void consume(std::uint64_t cycles) override { cpu_.consume(cycles); }
  void idle(Time t) override;
  Simulator& sim() override { return os_.sim(); }

private:
  rtos::Rtos& os_;
  cpu::CpuModel& cpu_;
  std::map<std::string, ship::ship_if*> endpoints_;
};

// SHIP channel between two SW tasks on the same CPU.
class SwLocalChannel {
public:
  SwLocalChannel(rtos::Rtos& os, std::string name, std::size_t depth = 1);

  ship::ship_if& a() { return term_[0]; }
  ship::ship_if& b() { return term_[1]; }
  const std::string& name() const { return name_; }

private:
  struct Message {
    std::vector<std::uint8_t> payload;
    bool is_request;
  };

  struct Direction {
    std::unique_ptr<rtos::Semaphore> items;
    std::unique_ptr<rtos::Semaphore> space;
    std::deque<Message> queue;
  };

  struct Terminal final : ship::ship_if {
    void send(const ship::ship_serializable_if& msg) override;
    void recv(ship::ship_serializable_if& msg) override;
    void request(const ship::ship_serializable_if& req,
                 ship::ship_serializable_if& resp) override;
    void reply(const ship::ship_serializable_if& resp) override;
    bool message_available() const override;
    ship::Role role() const override { return role_; }
    const std::string& channel_name() const override;

    SwLocalChannel* ch = nullptr;
    int index = 0;
    ship::Role role_ = ship::Role::Unknown;
    std::uint64_t pending_replies = 0;
  };

  void mark(Terminal& t, ship::Role r, const char* call);
  void push(Direction& d, Message m);
  Message pop(Direction& d);

  std::string name_;
  Terminal term_[2];
  Direction dir_[2];
};

}  // namespace stlm::core
