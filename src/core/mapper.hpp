#pragma once
// Automatic mapping of the communication part of a system onto a given
// architecture (the paper's central flow step).
//
// Mapper::map() consumes a SystemGraph (PEs + SHIP channels + roles) and
// a Platform, and emits a MappedSystem at the requested abstraction
// level:
//
//   * ComponentAssembly — PEs as kernel threads, untimed SHIP channels;
//   * Ccatb             — same structure, SHIP channels annotated with
//                         cycle-count-accurate boundary timing derived
//                         from the platform's bus;
//   * Cam               — the communication architecture model is
//                         instantiated; every channel is refined by kind:
//       HW <-> HW  : SHIP master/slave wrapper pair over the CAM, with an
//                    automatically allocated mailbox address window;
//       HW <-> SW  : HW adapter (mailbox + sideband IRQ) on the CAM plus
//                    device driver / communication library on the RTOS;
//       SW <-> SW  : RTOS-local SHIP channel (no bus traffic).
//
// PE code is untouched across all three levels — only the binding of its
// ExecContext changes.

#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "cam/cam.hpp"
#include "core/esw.hpp"
#include "core/platform.hpp"
#include "core/system_graph.hpp"
#include "cpu/irq.hpp"
#include "hwsw/hwsw.hpp"
#include "kernel/clock.hpp"
#include "obs/metrics.hpp"
#include "ocp/monitor.hpp"

namespace stlm::core {

enum class AbstractionLevel : std::uint8_t { ComponentAssembly, Ccatb, Cam };
const char* level_name(AbstractionLevel l);

class MappedSystem {
public:
  Simulator& sim() { return sim_; }
  const Platform& platform() const { return plat_; }
  AbstractionLevel level() const { return level_; }

  void run_for(Time d) { sim_.run_for(d); }
  // Run in slices until every PE finished (HW threads terminated, RTOS
  // tasks terminated) or `max_time` of simulated time passed. Returns
  // true if the workload completed.
  bool run_until_done(Time max_time, Time slice = Time::us(50));
  // Cooperative abort for adaptive exploration: `should_abort` is polled
  // by the kernel between settled deltas (see Simulator::set_run_guard),
  // so it must be a pure function of simulated state — no wall clock, no
  // global RNG — to preserve the determinism contract. When it fires the
  // run stops at a clean delta boundary and aborted_early() reports true
  // (unless the workload happened to finish at that same instant).
  struct RunBudget {
    std::function<bool(Time)> should_abort;
  };
  bool run_until_done(Time max_time, const RunBudget& budget,
                      Time slice = Time::us(50));
  bool workload_done() const;
  // True when the last budgeted run_until_done was stopped by its budget
  // before the workload completed.
  bool aborted_early() const { return aborted_early_; }

  trace::TxnLogger& txn_log() { return log_; }
  cam::CamIf* bus() { return cam_.get(); }
  cpu::CpuModel* cpu_model() { return cpu_.get(); }
  rtos::Rtos* os() { return rtos_.get(); }
  // Failure-semantics plumbing (non-null / non-empty only when the
  // platform's FaultProfile / RetrySpec are active).
  fault::Injector* injector() { return injector_.get(); }
  const std::vector<std::unique_ptr<cam::RetryPolicy>>& retry_policies()
      const {
    return retries_;
  }
  // Aggregated initiator/injector outcome counters across the system.
  struct FailureTotals {
    std::uint64_t injected_errors = 0;
    std::uint64_t injected_spikes = 0;
    std::uint64_t injected_stalls = 0;
    std::uint64_t errors_seen = 0;
    std::uint64_t retries_issued = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t aborts = 0;
  };
  FailureTotals failure_totals() const;
  // Banked memory targets attached for the graph's MemorySpecs (CAM
  // level only; empty at the abstract levels).
  const std::vector<std::unique_ptr<ocp::BankedMemorySlave>>& memories()
      const {
    return memories_;
  }

  // Human-readable mapping + statistics report.
  void report(std::ostream& os_out) const;

  // Register a protocol monitor so report() surfaces its statistics
  // (stall cycles, violations, outstanding commands). Monitors are built
  // by the harness, not the mapper, hence the explicit attach; the
  // pointer must outlive this MappedSystem.
  void attach_monitor(const ocp::OcpMonitor& mon) {
    monitors_.push_back(&mon);
  }

  // Register the standard time-series gauges for this system with `reg`:
  // bus utilization, outstanding pooled transactions, and queue depth
  // (grant-engine backlog at CAM level, summed SHIP channel depth at the
  // abstract levels). Pair with an obs::PeriodicSampler to capture them
  // over simulated time. The registry's gauges reference this system, so
  // it must outlive `reg`'s sampling.
  void install_default_gauges(obs::MetricsRegistry& reg);

private:
  friend class Mapper;
  MappedSystem(Simulator& sim, const Platform& p, AbstractionLevel l)
      : sim_(sim), plat_(p), level_(l) {}

  Simulator& sim_;
  Platform plat_;
  AbstractionLevel level_;
  bool aborted_early_ = false;
  trace::TxnLogger log_;

  std::vector<std::unique_ptr<ship::ShipChannel>> channels_;
  std::unique_ptr<Clock> clock_;
  std::unique_ptr<cam::CamIf> cam_;
  std::unique_ptr<fault::Injector> injector_;
  std::vector<std::unique_ptr<cam::RetryPolicy>> retries_;
  std::vector<std::unique_ptr<ocp::BankedMemorySlave>> memories_;
  std::vector<std::unique_ptr<cam::ShipSlaveWrapper>> slave_wraps_;
  std::vector<std::unique_ptr<cam::ShipMasterWrapper>> master_wraps_;
  std::vector<std::unique_ptr<hwsw::HwAdapter>> adapters_;
  std::unique_ptr<cpu::CpuModel> cpu_;
  std::unique_ptr<cpu::IrqController> irq_;
  std::unique_ptr<rtos::Rtos> rtos_;
  std::vector<std::unique_ptr<hwsw::ShipDriver>> drivers_;
  std::vector<std::unique_ptr<SwLocalChannel>> sw_channels_;
  std::vector<std::unique_ptr<HwExecContext>> hw_ctx_;
  std::vector<std::unique_ptr<SwExecContext>> sw_ctx_;
  std::vector<Process*> hw_procs_;
  std::vector<std::string> mapping_notes_;
  std::vector<const ocp::OcpMonitor*> monitors_;
};

class Mapper {
public:
  // Build `graph` on `platform` at `level` inside `sim`. For the Cam
  // level, every channel's roles must be known (declared in connect() or
  // found via SystemGraph::discover_roles()).
  static std::unique_ptr<MappedSystem> map(Simulator& sim, SystemGraph& graph,
                                           const Platform& platform,
                                           AbstractionLevel level);

private:
  static void build_abstract(MappedSystem& ms, SystemGraph& g, bool timed);
  static void build_cam(MappedSystem& ms, SystemGraph& g);
  static std::unique_ptr<cam::Arbiter> make_arbiter(const Platform& p);
  static std::unique_ptr<cam::CamIf> make_bus(Simulator& sim,
                                              const Platform& p);
};

}  // namespace stlm::core
