#pragma once
// Umbrella header for the shiptlm design flow (paper's primary
// contribution): PEs, system graph, platform, automatic mapper, and the
// eSW-synthesis execution bindings.

#include "core/esw.hpp"
#include "core/mapper.hpp"
#include "core/pe.hpp"
#include "core/platform.hpp"
#include "core/system_graph.hpp"
