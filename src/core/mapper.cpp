#include "core/mapper.hpp"

#include <map>

#include "obs/obs.hpp"
#include "trace/channel_stats.hpp"

namespace stlm::core {

const char* level_name(AbstractionLevel l) {
  switch (l) {
    case AbstractionLevel::ComponentAssembly: return "component-assembly";
    case AbstractionLevel::Ccatb: return "ccatb";
    case AbstractionLevel::Cam: return "cam";
  }
  return "?";
}

// -------------------------------------------------------- MappedSystem --

MappedSystem::FailureTotals MappedSystem::failure_totals() const {
  FailureTotals t;
  if (injector_) {
    t.injected_errors = injector_->injected_errors();
    t.injected_spikes = injector_->injected_spikes();
    t.injected_stalls = injector_->injected_stalls();
  }
  for (const auto& rp : retries_) {
    t.errors_seen += rp->errors_seen();
    t.retries_issued += rp->retries_issued();
    t.timeouts += rp->timeouts_observed();
    t.aborts += rp->aborts();
  }
  return t;
}

bool MappedSystem::workload_done() const {
  for (const Process* p : hw_procs_) {
    if (!p->terminated()) return false;
  }
  if (rtos_ && !rtos_->all_tasks_terminated()) return false;
  return true;
}

bool MappedSystem::run_until_done(Time max_time, Time slice) {
  const Time deadline = sim_.now() + max_time;
  while (!workload_done() && sim_.now() < deadline) {
    const Time before = sim_.now();
    const Time remaining = deadline - sim_.now();
    sim_.run_for(remaining < slice ? remaining : slice);
    if (sim_.now() == before) {
      // Event starvation before the deadline (e.g. PEs deadlocked on a
      // channel): no further slice can make progress.
      break;
    }
  }
  return workload_done();
}

bool MappedSystem::run_until_done(Time max_time, const RunBudget& budget,
                                  Time slice) {
  aborted_early_ = false;
  if (!budget.should_abort) return run_until_done(max_time, slice);
  // Route the budget through the kernel's run guard so an abort always
  // lands at a settled delta boundary — the slice loop stays byte-for-
  // byte the unbudgeted one up to the abort point.
  bool fired = false;
  sim_.set_run_guard([&](Time now) {
    if (fired) return true;
    fired = budget.should_abort(now);
    return fired;
  });
  const bool done = run_until_done(max_time, slice);
  sim_.clear_run_guard();
  aborted_early_ = fired && !done;
  return done;
}

void MappedSystem::report(std::ostream& out) const {
  // The nested StatSet::report guards itself, but keep the whole report
  // transparent to the caller's stream formatting as well.
  trace::ScopedOstreamFormat guard(out);
  out << "=== mapped system: level=" << level_name(level_)
      << " platform=" << plat_.name << " ===\n";
  for (const auto& note : mapping_notes_) out << "  " << note << "\n";
  const auto s = log_.summarize();
  out << "  simulated time                   " << sim_.now().to_string()
      << "\n"
      << "  logged transactions              " << s.count << "\n"
      << "  logged bytes                     " << s.bytes << "\n"
      << "  mean txn latency                 " << s.mean_latency_ns << " ns\n"
      << "  mean queueing delay              " << s.mean_queue_ns
      << " ns (issue->grant)\n"
      << "  mean service span                " << s.mean_service_ns
      << " ns (grant->completion)\n";
  const auto channels = trace::per_channel_stats(log_);
  if (!channels.empty()) {
    out << "  per-channel latency distributions:\n";
    trace::print_channel_table(out, channels);
  }
  if (cam_) {
    out << "  bus utilization                  "
        << const_cast<cam::CamIf*>(cam_.get())->utilization() << "\n";
    const_cast<cam::CamIf*>(cam_.get())->stats().report(out, "bus statistics");
  }
  // Failure-semantics section: only printed when the platform actually
  // carries an injector or retry shims, so fault-free reports stay
  // byte-identical to the pre-fault builds.
  if (injector_ || !retries_.empty()) {
    const FailureTotals t = failure_totals();
    if (injector_) {
      out << "  injected faults                  errors=" << t.injected_errors
          << " spikes=" << t.injected_spikes
          << " stalls=" << t.injected_stalls << "\n";
    }
    if (!retries_.empty()) {
      out << "  retry policy                     errors=" << t.errors_seen
          << " retries=" << t.retries_issued << " timeouts=" << t.timeouts
          << " aborts=" << t.aborts << "\n";
    }
  }
  if (cpu_) {
    out << "  cpu cycles consumed              " << cpu_->cycles_consumed()
        << "\n"
        << "  cpu bus transactions             " << cpu_->bus_transactions()
        << "\n";
  }
  if (rtos_) {
    out << "  rtos context switches            " << rtos_->context_switches()
        << "\n";
  }
  if (!monitors_.empty()) {
    out << "  ocp monitors:\n";
    for (const ocp::OcpMonitor* m : monitors_) {
      out << "    " << m->name() << ": cmd_beats=" << m->command_beats()
          << " resp_beats=" << m->response_beats()
          << " stall_cycles=" << m->stall_cycles()
          << " violations=" << m->violations()
          << " outstanding=" << m->outstanding() << "\n";
    }
  }
  if constexpr (obs::compiled_in()) {
    // Kernel observability counters (maintained under STLM_OBS; the
    // whole section is omitted when compiled out rather than printing
    // misleading zeros).
    out << "  kernel ctx switches              " << sim_.ctx_switches() << "\n"
        << "  kernel inline advances           " << sim_.inline_advances()
        << "\n";
    if (cam_) {
      auto& st = const_cast<cam::CamIf*>(cam_.get())->stats();
      const std::uint64_t tx = st.counter("transactions");
      if (tx != 0) {
        out << "  bus fast-path hit rate           "
            << static_cast<double>(st.counter("fast_path_hits")) /
                   static_cast<double>(tx)
            << "\n";
      }
    }
  }
}

void MappedSystem::install_default_gauges(obs::MetricsRegistry& reg) {
  reg.add_gauge("bus_utilization",
                [this] { return cam_ ? cam_->utilization() : 0.0; });
  reg.add_gauge("outstanding_txns", [this] {
    return static_cast<double>(sim_.txn_pool().outstanding());
  });
  reg.add_gauge("queue_depth", [this] {
    if (auto* cb = dynamic_cast<cam::CamBase*>(cam_.get())) {
      return static_cast<double>(cb->queued_requests());
    }
    double n = 0.0;
    for (const auto& ch : channels_) {
      n += static_cast<double>(ch->queued_messages());
    }
    return n;
  });
}

// --------------------------------------------------------------- Mapper --

std::unique_ptr<cam::Arbiter> Mapper::make_arbiter(const Platform& p) {
  switch (p.arb) {
    case ArbKind::Priority:
      return std::make_unique<cam::PriorityArbiter>();
    case ArbKind::RoundRobin:
      return std::make_unique<cam::RoundRobinArbiter>();
    case ArbKind::Tdma: {
      // One slot per expected master; the table is resized generously —
      // slots of unknown masters fall back to round robin.
      std::vector<std::size_t> table{0, 1, 2, 3};
      return std::make_unique<cam::TdmaArbiter>(table, p.tdma_slot_cycles);
    }
    case ArbKind::PriorityAging:
      return std::make_unique<cam::AgingPriorityArbiter>(p.aging_cycles);
    case ArbKind::Bandwidth:
      return std::make_unique<cam::BandwidthArbiter>(p.qos_shares);
  }
  return std::make_unique<cam::PriorityArbiter>();
}

std::unique_ptr<cam::CamIf> Mapper::make_bus(Simulator& sim,
                                             const Platform& p) {
  const std::size_t width = p.bus_width_bytes();
  const cam::SplitConfig split{p.split_txns, p.max_outstanding};
  switch (p.bus) {
    case BusKind::SharedBus:
      return std::make_unique<cam::SharedBusCam>(sim, "bus", p.bus_cycle,
                                                 make_arbiter(p), width, split,
                                                 p.fast_targets);
    case BusKind::Plb:
      return std::make_unique<cam::PlbCam>(sim, "plb", p.bus_cycle,
                                           make_arbiter(p), width, split,
                                           p.fast_targets);
    case BusKind::Opb:
      return std::make_unique<cam::OpbCam>(sim, "opb", p.bus_cycle,
                                           make_arbiter(p), width, split,
                                           p.fast_targets);
    case BusKind::Crossbar:
      return std::make_unique<cam::CrossbarCam>(sim, "xbar", p.bus_cycle,
                                                width, split, p.fast_targets);
  }
  throw ElaborationError("unknown bus kind");
}

std::unique_ptr<MappedSystem> Mapper::map(Simulator& sim, SystemGraph& graph,
                                          const Platform& platform,
                                          AbstractionLevel level) {
  std::unique_ptr<MappedSystem> ms(
      new MappedSystem(sim, platform, level));
  switch (level) {
    case AbstractionLevel::ComponentAssembly:
      build_abstract(*ms, graph, /*timed=*/false);
      break;
    case AbstractionLevel::Ccatb:
      build_abstract(*ms, graph, /*timed=*/true);
      break;
    case AbstractionLevel::Cam:
      build_cam(*ms, graph);
      break;
  }
  return ms;
}

void Mapper::build_abstract(MappedSystem& ms, SystemGraph& g, bool timed) {
  const Platform& p = ms.plat_;
  // One execution context per PE; all PEs run as kernel threads at these
  // levels (the partition decision only binds below CCATB).
  std::map<const ProcessingElement*, HwExecContext*> ctx_of;
  for (ProcessingElement* pe : g.pes()) {
    ms.hw_ctx_.push_back(std::make_unique<HwExecContext>(ms.sim_, p.pe_clock));
    ctx_of[pe] = ms.hw_ctx_.back().get();
  }

  for (const ChannelSpec& spec : g.channels()) {
    std::unique_ptr<ship::TimingModel> timing;
    if (timed) {
      timing = std::make_unique<ship::CcatbModel>(
          p.bus_cycle, p.bus_width_bytes(), p.ccatb_setup_cycles);
    }
    ms.channels_.push_back(std::make_unique<ship::ShipChannel>(
        ms.sim_, spec.name, spec.queue_depth, std::move(timing)));
    ship::ShipChannel& ch = *ms.channels_.back();
    ch.set_txn_logger(&ms.log_);
    ctx_of[spec.a]->add_channel(spec.port_a, ch.a());
    ctx_of[spec.b]->add_channel(spec.port_b, ch.b());
    ms.mapping_notes_.push_back("channel " + spec.name + " -> SHIP (" +
                                (timed ? "ccatb" : "untimed") + ")");
  }

  for (ProcessingElement* pe : g.pes()) {
    HwExecContext* ctx = ctx_of[pe];
    ms.hw_procs_.push_back(&ms.sim_.spawn_thread(
        "pe." + pe->name(), [pe, ctx] { pe->run(*ctx); }));
  }
}

void Mapper::build_cam(MappedSystem& ms, SystemGraph& g) {
  const Platform& p = ms.plat_;
  if (!g.roles_known()) {
    throw ElaborationError(
        "CAM mapping needs channel roles: declare them in connect() or run "
        "SystemGraph::discover_roles() first");
  }

  ms.cam_ = make_bus(ms.sim_, p);
  ms.cam_->set_txn_logger(&ms.log_);
  // Failure semantics: attach the seeded injector only when the profile
  // is active, so fault-free platforms run the identical (fast-path
  // capable) configuration as before this subsystem existed.
  if (p.fault.active()) {
    ms.injector_ = std::make_unique<fault::Injector>(p.fault);
    ms.cam_->set_fault_injector(ms.injector_.get());
    ms.mapping_notes_.push_back(
        "fault injector -> seed " + std::to_string(p.fault.seed) +
        (p.fault.name.empty() ? std::string() : " (" + p.fault.name + ")"));
  }
  const bool with_retry = p.retry.active();
  auto make_retry = [&](const std::string& name,
                        std::size_t midx) -> cam::RetryPolicy* {
    ms.retries_.push_back(std::make_unique<cam::RetryPolicy>(
        ms.sim_, name, p.retry, p.bus_cycle));
    cam::RetryPolicy& rp = *ms.retries_.back();
    rp.bind(ms.cam_->master_port(midx));
    rp.bind_posted(*ms.cam_, midx);
    return &rp;
  };

  const bool any_sw = [&] {
    for (ProcessingElement* pe : g.pes()) {
      if (g.partition(*pe) == Partition::Software) return true;
    }
    return false;
  }();

  if (any_sw) {
    ms.clock_ = std::make_unique<Clock>(ms.sim_, "cpu_clk", p.cpu_clock);
    ms.cpu_ = std::make_unique<cpu::CpuModel>(ms.sim_, "cpu", *ms.clock_);
    ms.irq_ = std::make_unique<cpu::IrqController>(ms.sim_, "irq_ctrl");
    ms.rtos_ = std::make_unique<rtos::Rtos>(ms.sim_, "rtos", *ms.cpu_,
                                            p.rtos_cfg);
    const std::size_t cpu_midx = ms.cam_->add_master("cpu");
    if (with_retry) {
      // The driver-level MMIO (HW/SW ShipDriver) rides the CPU's bus
      // port, so one shim in front of it covers the whole SW partition.
      ms.cpu_->bus().bind(*make_retry("cpu.retry", cpu_midx));
    } else {
      ms.cpu_->bus().bind(ms.cam_->master_port(cpu_midx));
    }
  }

  // Execution contexts.
  std::map<const ProcessingElement*, HwExecContext*> hw_ctx_of;
  std::map<const ProcessingElement*, SwExecContext*> sw_ctx_of;
  for (ProcessingElement* pe : g.pes()) {
    if (g.partition(*pe) == Partition::Hardware) {
      ms.hw_ctx_.push_back(
          std::make_unique<HwExecContext>(ms.sim_, p.pe_clock));
      hw_ctx_of[pe] = ms.hw_ctx_.back().get();
    } else {
      ms.sw_ctx_.push_back(std::make_unique<SwExecContext>(*ms.rtos_, *ms.cpu_));
      sw_ctx_of[pe] = ms.sw_ctx_.back().get();
    }
  }

  // Addressable memory targets: attach each as a CAM slave and hand
  // every client PE its own bus master port. Clients issue their own
  // transactions (post()/transport()), so they must run in hardware —
  // the SW partition reaches memory through the CPU model instead.
  for (const MemorySpec& mem : g.memories()) {
    ms.memories_.push_back(std::make_unique<ocp::BankedMemorySlave>(
        mem.name, mem.base, mem.size, mem.cfg));
    ms.cam_->attach_slave(*ms.memories_.back(), {mem.base, mem.size},
                          mem.name);
    for (ProcessingElement* pe : mem.clients) {
      if (g.partition(*pe) != Partition::Hardware) {
        throw ElaborationError("memory client " + pe->name() + " of " +
                               mem.name + " must be a hardware PE");
      }
      const std::size_t midx =
          ms.cam_->add_master(mem.name + "." + pe->name());
      cam::RetryPolicy* rp =
          with_retry ? make_retry(mem.name + "." + pe->name() + ".retry", midx)
                     : nullptr;
      hw_ctx_of.at(pe)->bind_memory(ms.cam_.get(), midx, rp);
    }
    ms.mapping_notes_.push_back(
        "memory " + mem.name + " -> banked OCP slave (" +
        std::to_string(mem.cfg.banks) + " banks, " +
        std::to_string(mem.clients.size()) + " direct masters)");
  }

  auto endpoint_binder = [&](ProcessingElement* pe, const std::string& name,
                             ship::ship_if& ep) {
    if (auto it = hw_ctx_of.find(pe); it != hw_ctx_of.end()) {
      it->second->add_channel(name, ep);
    } else {
      sw_ctx_of.at(pe)->add_channel(name, ep);
    }
  };
  auto port_of = [](const ChannelSpec& spec, const ProcessingElement* pe) {
    return pe == spec.a ? spec.port_a : spec.port_b;
  };

  // Mailbox address allocation: sequential 4 KiB-aligned windows.
  std::uint64_t next_base = p.mailbox_base;
  auto alloc_layout = [&]() {
    cam::MailboxLayout l;
    l.base = next_base;
    l.window_bytes = p.mailbox_window;
    next_base += (l.span() + 0xfffull) & ~0xfffull;
    return l;
  };

  std::uint32_t next_irq_line = 0;
  std::map<int, hwsw::ShipDriver*> isr_routes;

  for (const ChannelSpec& spec : g.channels()) {
    const Partition part_a = g.partition(*spec.a);
    const Partition part_b = g.partition(*spec.b);
    // Terminal roles: role_a is known; master PE is a iff role_a==Master.
    ProcessingElement* master_pe =
        spec.role_a == ship::Role::Master ? spec.a : spec.b;
    ProcessingElement* slave_pe = master_pe == spec.a ? spec.b : spec.a;
    const Partition master_part = g.partition(*master_pe);
    const Partition slave_part = g.partition(*slave_pe);

    if (part_a == Partition::Software && part_b == Partition::Software) {
      ms.sw_channels_.push_back(
          std::make_unique<SwLocalChannel>(*ms.rtos_, spec.name,
                                           spec.queue_depth));
      SwLocalChannel& ch = *ms.sw_channels_.back();
      endpoint_binder(spec.a, spec.port_a, ch.a());
      endpoint_binder(spec.b, spec.port_b, ch.b());
      ms.mapping_notes_.push_back("channel " + spec.name +
                                  " -> RTOS-local queue (SW/SW)");
      continue;
    }

    if (part_a != part_b) {
      // HW/SW crossing: adapter + driver.
      const cam::MailboxLayout layout = alloc_layout();
      ms.adapters_.push_back(std::make_unique<hwsw::HwAdapter>(
          ms.sim_, spec.name + ".hwadapter", layout, p.bus_cycle));
      hwsw::HwAdapter& ad = *ms.adapters_.back();
      ms.cam_->attach_slave(ad, layout.range(), spec.name);
      const std::uint32_t line = next_irq_line++;
      STLM_ASSERT(line < 32, "too many HW/SW channels (IRQ lines exhausted)");
      ms.irq_->attach(ad.irq(), line);
      ms.drivers_.push_back(std::make_unique<hwsw::ShipDriver>(
          spec.name + ".driver", *ms.rtos_, *ms.cpu_, layout, p.driver_cfg));
      hwsw::ShipDriver& drv = *ms.drivers_.back();
      isr_routes[static_cast<int>(line)] = &drv;

      ProcessingElement* hw_pe =
          g.partition(*spec.a) == Partition::Hardware ? spec.a : spec.b;
      ProcessingElement* sw_pe = hw_pe == spec.a ? spec.b : spec.a;
      endpoint_binder(hw_pe, port_of(spec, hw_pe), ad);
      endpoint_binder(sw_pe, port_of(spec, sw_pe), drv);
      ms.mapping_notes_.push_back(
          "channel " + spec.name + " -> HW/SW interface (mailbox @0x" +
          [&] {
            char buf[20];
            std::snprintf(buf, sizeof buf, "%llx",
                          static_cast<unsigned long long>(layout.base));
            return std::string(buf);
          }() +
          ", irq " + std::to_string(line) + ")");
      continue;
    }

    // HW/HW: wrapper pair over the CAM.
    (void)master_part;
    (void)slave_part;
    const cam::MailboxLayout layout = alloc_layout();
    ms.slave_wraps_.push_back(std::make_unique<cam::ShipSlaveWrapper>(
        ms.sim_, spec.name + ".slave", layout));
    cam::ShipSlaveWrapper& sw = *ms.slave_wraps_.back();
    ms.cam_->attach_slave(sw, layout.range(), spec.name);
    const std::size_t midx = ms.cam_->add_master(spec.name + ".m");
    ms.master_wraps_.push_back(std::make_unique<cam::ShipMasterWrapper>(
        ms.sim_, spec.name + ".master", *ms.cam_, midx, layout,
        p.poll_interval, p.coalesce_bursts));
    cam::ShipMasterWrapper& mw = *ms.master_wraps_.back();
    if (with_retry) mw.set_retry(make_retry(spec.name + ".retry", midx));
    endpoint_binder(master_pe, port_of(spec, master_pe), mw);
    endpoint_binder(slave_pe, port_of(spec, slave_pe), sw);
    ms.mapping_notes_.push_back("channel " + spec.name +
                                " -> SHIP/OCP wrappers on " +
                                std::string(bus_kind_name(p.bus)));
  }

  if (ms.rtos_ && !isr_routes.empty()) {
    ms.rtos_->attach_isr(*ms.irq_, [isr_routes](int line) {
      auto it = isr_routes.find(line);
      if (it != isr_routes.end()) it->second->on_irq();
    });
  }

  // Spawn PE execution.
  for (ProcessingElement* pe : g.pes()) {
    if (g.partition(*pe) == Partition::Hardware) {
      HwExecContext* ctx = hw_ctx_of.at(pe);
      ms.hw_procs_.push_back(&ms.sim_.spawn_thread(
          "pe." + pe->name(), [pe, ctx] { pe->run(*ctx); }));
    } else {
      SwExecContext* ctx = sw_ctx_of.at(pe);
      ms.rtos_->create_task(pe->name(), /*priority=*/1,
                            [pe, ctx] { pe->run(*ctx); });
      ms.mapping_notes_.push_back("pe " + pe->name() +
                                  " -> eSW task on RTOS (synthesized)");
    }
  }
}

}  // namespace stlm::core
