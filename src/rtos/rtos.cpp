#include "rtos/rtos.hpp"

namespace stlm::rtos {

// ----------------------------------------------------------- semaphore --

Semaphore::Semaphore(Rtos& os, std::string name, int initial)
    : os_(os), name_(std::move(name)), count_(initial) {
  STLM_ASSERT(initial >= 0, "semaphore initial value must be >= 0: " + name_);
}

void Semaphore::wait() {
  Task& t = os_.require_task("Semaphore::wait");
  if (count_ > 0) {
    --count_;
    return;
  }
  waiters_.push_back(&t);
  os_.block_current(Task::State::Blocked);
  // Ownership was handed over by post(); nothing to decrement here.
}

bool Semaphore::try_wait() {
  os_.require_task("Semaphore::try_wait");
  if (count_ == 0) return false;
  --count_;
  return true;
}

void Semaphore::post() {
  if (!waiters_.empty()) {
    Task* t = waiters_.front();
    waiters_.pop_front();
    os_.ready_task(*t);
    return;
  }
  ++count_;
}

void Semaphore::post_from_isr() { post(); }

// ---------------------------------------------------------------- rtos --

Rtos::Rtos(Simulator& sim, std::string name, cpu::CpuModel& cpu,
           RtosConfig cfg)
    : Module(sim, std::move(name)),
      cpu_(cpu),
      cfg_(cfg),
      sched_wake_(sim, full_name() + ".sched_wake") {
  STLM_ASSERT(!cfg_.tick.is_zero(), "RTOS tick must be positive: " + full_name());
  spawn_thread("scheduler", [this] { scheduler(); });
}

Task& Rtos::create_task(std::string name, int priority,
                        std::function<void()> body) {
  // Task's constructor is private; Rtos is its factory.
  tasks_.push_back(std::unique_ptr<Task>(
      new Task(sim(), full_name() + "." + name, priority)));
  Task& t = *tasks_.back();
  spawn_thread(name, [this, &t, body = std::move(body)] {
    // Wait for the first dispatch.
    wait(t.resume_);
    body();
    t.state_ = Task::State::Terminated;
    current_ = nullptr;
    sched_wake_.notify_delta();
  });
  sched_wake_.notify_delta();
  return t;
}

Task& Rtos::require_task(const char* what) const {
  if (!current_) {
    throw SimulationError(std::string(what) +
                          " may only be called from RTOS task context");
  }
  return *current_;
}

void Rtos::block_current(Task::State why) {
  Task& t = require_task("block_current");
  t.state_ = why;
  current_ = nullptr;
  sched_wake_.notify_delta();
  wait(t.resume_);
}

void Rtos::ready_task(Task& t) {
  if (t.state_ == Task::State::Terminated) return;
  if (t.state_ == Task::State::Ready || t.state_ == Task::State::Running) return;
  t.state_ = Task::State::Ready;
  sched_wake_.notify_delta();
}

void Rtos::yield() {
  Task& t = require_task("yield");
  t.state_ = Task::State::Ready;
  current_ = nullptr;
  sched_wake_.notify_delta();
  wait(t.resume_);
}

void Rtos::delay_ticks(std::uint64_t ticks) {
  Task& t = require_task("delay_ticks");
  t.wake_at_ = sim().now() + cfg_.tick * ticks;
  block_current(Task::State::Sleeping);
}

void Rtos::attach_isr(cpu::IrqController& ic, std::function<void(int)> isr) {
  spawn_thread("isr_dispatch", [this, &ic, isr = std::move(isr)] {
    for (;;) {
      if (ic.pending() == 0) wait(ic.irq_event());
      const int line = ic.claim();
      if (line >= 0) isr(line);
    }
  });
}

bool Rtos::all_tasks_terminated() const {
  for (const auto& t : tasks_) {
    if (t->state_ != Task::State::Terminated) return false;
  }
  return !tasks_.empty();
}

Task* Rtos::pick_ready() {
  Task* best = nullptr;
  for (const auto& t : tasks_) {
    if (t->state_ != Task::State::Ready) continue;
    if (!best || t->prio_ > best->prio_ ||
        (t->prio_ == best->prio_ && t->dispatch_seq_ < best->dispatch_seq_)) {
      best = t.get();
    }
  }
  return best;
}

void Rtos::promote_sleepers() {
  const Time now = sim().now();
  for (const auto& t : tasks_) {
    if (t->state_ == Task::State::Sleeping && t->wake_at_ <= now) {
      t->state_ = Task::State::Ready;
    }
  }
}

Time Rtos::next_wakeup() const {
  Time earliest = Time::max();
  for (const auto& t : tasks_) {
    if (t->state_ == Task::State::Sleeping && t->wake_at_ < earliest) {
      earliest = t->wake_at_;
    }
  }
  return earliest;
}

void Rtos::scheduler() {
  for (;;) {
    promote_sleepers();
    Task* next = pick_ready();
    if (!next) {
      const Time wake = next_wakeup();
      if (wake.is_max()) {
        wait(sched_wake_);  // only an external ready/ISR can help
      } else {
        wait(wake - sim().now(), sched_wake_);
      }
      continue;
    }

    ++switches_;
    next->dispatch_seq_ = ++dispatch_counter_;
    if (cfg_.context_switch_cycles) cpu_.consume(cfg_.context_switch_cycles);
    next->state_ = Task::State::Running;
    current_ = next;
    next->resume_.notify_delta();

    // Sleep until the task reaches a scheduling point.
    do {
      wait(sched_wake_);
    } while (current_ != nullptr && current_->state_ == Task::State::Running);
  }
}

}  // namespace stlm::rtos
