#pragma once
// RTOS substrate for embedded software synthesis.
//
// The paper adopts the Herrera et al. methodology: embedded SW is
// generated from SystemC code "by simply substituting some SystemC
// library elements for behaviourally equivalent procedures based on RTOS
// functions". This module provides those procedures: a preemptive
// priority scheduler with tasks, counting semaphores and message queues,
// running on a CpuModel so that all SW activity is serialized on one
// processor and charged in CPU cycles.
//
// Scheduling model: fixed priority (higher value wins, FIFO within a
// level). Dispatch happens at scheduling points (block/yield/delay/
// terminate); interrupts are delivered by a dispatcher that can ready
// tasks, which then preempt at the running task's next scheduling point.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cpu.hpp"
#include "cpu/irq.hpp"
#include "kernel/module.hpp"

namespace stlm::rtos {

class Rtos;

struct RtosConfig {
  Time tick = Time::us(1);                    // delay granularity
  std::uint64_t context_switch_cycles = 20;   // charged per dispatch
};

class Task {
public:
  enum class State { Ready, Running, Blocked, Sleeping, Terminated };

  const std::string& name() const { return name_; }
  int priority() const { return prio_; }
  State state() const { return state_; }

private:
  friend class Rtos;
  friend class Semaphore;

  Task(Simulator& sim, std::string name, int prio)
      : name_(std::move(name)), prio_(prio), resume_(sim, name_ + ".resume") {}

  std::string name_;
  int prio_;
  State state_ = State::Ready;
  Event resume_;
  Time wake_at_ = Time::zero();
  std::uint64_t dispatch_seq_ = 0;  // round-robin tie-break within a level
};

class Semaphore {
public:
  Semaphore(Rtos& os, std::string name, int initial);

  void wait();            // task context; blocks while the count is zero
  bool try_wait();        // task context; never blocks
  void post();            // task context
  void post_from_isr();   // ISR/any-process context
  int count() const { return count_; }

private:
  Rtos& os_;
  std::string name_;
  int count_;
  std::deque<Task*> waiters_;
};

// Bounded message queue (the RTOS substitute for kernel Fifo channels).
template <class T>
class Queue {
public:
  Queue(Rtos& os, std::string name, std::size_t capacity)
      : items_(os, name + ".items", 0),
        space_(os, name + ".space", static_cast<int>(capacity)) {}

  void send(T v) {
    space_.wait();
    buf_.push_back(std::move(v));
    items_.post();
  }

  T recv() {
    items_.wait();
    T v = std::move(buf_.front());
    buf_.pop_front();
    space_.post();
    return v;
  }

  bool try_recv(T& out) {
    if (!items_.try_wait()) return false;
    out = std::move(buf_.front());
    buf_.pop_front();
    space_.post();
    return true;
  }

  std::size_t size() const { return buf_.size(); }

private:
  Semaphore items_;
  Semaphore space_;
  std::deque<T> buf_;
};

class Rtos final : public Module {
public:
  Rtos(Simulator& sim, std::string name, cpu::CpuModel& cpu,
       RtosConfig cfg = {});

  cpu::CpuModel& cpu() { return cpu_; }
  const RtosConfig& config() const { return cfg_; }

  // Create a task; `body` runs in task context and may use the blocking
  // RTOS API plus cpu().consume().
  Task& create_task(std::string name, int priority, std::function<void()> body);

  // ---- task-context API ----------------------------------------------
  void yield();
  void delay_ticks(std::uint64_t ticks);
  Task* current() const { return current_; }

  // ---- interrupt service ----------------------------------------------
  // Spawns a dispatcher that claims pending lines from `ic` and invokes
  // `isr(line)` (non-task context; use post_from_isr to ready tasks).
  void attach_isr(cpu::IrqController& ic, std::function<void(int)> isr);

  // ---- introspection ----------------------------------------------------
  std::uint64_t context_switches() const { return switches_; }
  bool all_tasks_terminated() const;

  // ---- internal (sync objects) -----------------------------------------
  Task& require_task(const char* what) const;
  void block_current(Task::State why);
  void ready_task(Task& t);

private:
  void scheduler();
  Task* pick_ready();
  void promote_sleepers();
  Time next_wakeup() const;

  cpu::CpuModel& cpu_;
  RtosConfig cfg_;
  std::vector<std::unique_ptr<Task>> tasks_;
  Task* current_ = nullptr;
  Event sched_wake_;
  std::uint64_t switches_ = 0;
  std::uint64_t dispatch_counter_ = 0;
};

}  // namespace stlm::rtos
