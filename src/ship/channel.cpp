#include "ship/channel.hpp"

namespace stlm::ship {

const char* role_name(Role r) {
  switch (r) {
    case Role::Unknown: return "unknown";
    case Role::Master: return "master";
    case Role::Slave: return "slave";
  }
  return "?";
}

ShipChannel::ShipChannel(Simulator& sim, std::string name,
                         std::size_t queue_depth,
                         std::unique_ptr<TimingModel> timing)
    : sim_(sim),
      name_(std::move(name)),
      depth_(queue_depth),
      timing_(timing ? std::move(timing) : std::make_unique<UntimedModel>()) {
  STLM_ASSERT(depth_ > 0, "SHIP queue depth must be positive: " + name_);
  for (int i = 0; i < 2; ++i) {
    term_[i].ch = this;
    term_[i].index = i;
    dir_[i].written =
        std::make_unique<Event>(sim, name_ + ".dir" + std::to_string(i) + ".written");
    dir_[i].consumed =
        std::make_unique<Event>(sim, name_ + ".dir" + std::to_string(i) + ".consumed");
  }
}

void ShipChannel::set_timing(std::unique_ptr<TimingModel> t) {
  STLM_ASSERT(t != nullptr, "null timing model for channel " + name_);
  timing_ = std::move(t);
}

const std::string& ShipChannel::Terminal::channel_name() const {
  return ch->name_;
}

void ShipChannel::mark_master(Terminal& t, const char* call) {
  if (t.role_ == Role::Slave) {
    throw ProtocolError("SHIP role conflict on channel " + name_ +
                        ": slave terminal called " + call);
  }
  t.role_ = Role::Master;
}

void ShipChannel::mark_slave(Terminal& t, const char* call) {
  if (t.role_ == Role::Master) {
    throw ProtocolError("SHIP role conflict on channel " + name_ +
                        ": master terminal called " + call);
  }
  t.role_ = Role::Slave;
}

void ShipChannel::push(Direction& d, Message m, std::size_t depth) {
  while (d.queue.size() >= depth) wait(*d.consumed);
  d.queue.push_back(std::move(m));
  d.written->notify_delta();
}

ShipChannel::Message ShipChannel::pop(Direction& d) {
  while (d.queue.empty()) wait(*d.written);
  Message m = std::move(d.queue.front());
  d.queue.pop_front();
  d.consumed->notify_delta();
  return m;
}

void ShipChannel::log_txn(trace::TxnKind kind, std::size_t bytes, Time start) {
  ++messages_;
  bytes_ += bytes;
  if (log_) log_->record(name_, kind, bytes, start, sim_.now());
}

void ShipChannel::Terminal::send(const ship_serializable_if& msg) {
  ch->mark_master(*this, "send");
  const Time start = ch->sim_.now();
  Message m{to_bytes(msg), /*is_request=*/false};
  const std::size_t n = m.payload.size();
  const Time lat = ch->timing_->transfer_latency(n);
  if (!lat.is_zero()) wait(lat);
  ch->push(ch->dir_[index], std::move(m), ch->depth_);
  ch->log_txn(trace::TxnKind::Send, n, start);
}

void ShipChannel::Terminal::recv(ship_serializable_if& msg) {
  ch->mark_slave(*this, "recv");
  Message m = ch->pop(ch->dir_[1 - index]);
  if (m.is_request) ++pending_replies;
  from_bytes(msg, m.payload);
}

void ShipChannel::Terminal::request(const ship_serializable_if& req,
                                    ship_serializable_if& resp) {
  ch->mark_master(*this, "request");
  const Time start = ch->sim_.now();
  Message m{to_bytes(req), /*is_request=*/true};
  const std::size_t req_bytes = m.payload.size();
  const Time lat = ch->timing_->transfer_latency(req_bytes);
  if (!lat.is_zero()) wait(lat);
  ch->push(ch->dir_[index], std::move(m), ch->depth_);
  ch->log_txn(trace::TxnKind::Request, req_bytes, start);

  // Block for the reply travelling the opposite direction.
  const Time reply_start = ch->sim_.now();
  Message r = ch->pop(ch->dir_[1 - index]);
  if (r.is_request) {
    throw ProtocolError("SHIP channel " + ch->name_ +
                        ": request crossed with opposing request "
                        "(both terminals acting as master)");
  }
  from_bytes(resp, r.payload);
  ch->log_txn(trace::TxnKind::Reply, r.payload.size(), reply_start);
}

void ShipChannel::Terminal::reply(const ship_serializable_if& resp) {
  ch->mark_slave(*this, "reply");
  if (pending_replies == 0) {
    throw ProtocolError("SHIP channel " + ch->name_ +
                        ": reply without outstanding request");
  }
  --pending_replies;
  Message m{to_bytes(resp), /*is_request=*/false};
  const std::size_t n = m.payload.size();
  const Time lat = ch->timing_->transfer_latency(n);
  if (!lat.is_zero()) wait(lat);
  ch->push(ch->dir_[index], std::move(m), ch->depth_);
}

bool ShipChannel::Terminal::message_available() const {
  return !ch->dir_[1 - index].queue.empty();
}

}  // namespace stlm::ship
