#include "ship/channel.hpp"

namespace stlm::ship {

const char* role_name(Role r) {
  switch (r) {
    case Role::Unknown: return "unknown";
    case Role::Master: return "master";
    case Role::Slave: return "slave";
  }
  return "?";
}

ShipChannel::ShipChannel(Simulator& sim, std::string name,
                         std::size_t queue_depth,
                         std::unique_ptr<TimingModel> timing)
    : sim_(sim),
      name_(std::move(name)),
      depth_(queue_depth),
      timing_(timing ? std::move(timing) : std::make_unique<UntimedModel>()) {
  STLM_ASSERT(depth_ > 0, "SHIP queue depth must be positive: " + name_);
  for (int i = 0; i < 2; ++i) {
    term_[i].ch = this;
    term_[i].index = i;
    dir_[i].written =
        std::make_unique<Event>(sim, name_ + ".dir" + std::to_string(i) + ".written");
    dir_[i].consumed =
        std::make_unique<Event>(sim, name_ + ".dir" + std::to_string(i) + ".consumed");
  }
}

void ShipChannel::set_timing(std::unique_ptr<TimingModel> t) {
  STLM_ASSERT(t != nullptr, "null timing model for channel " + name_);
  timing_ = std::move(t);
}

void ShipChannel::set_txn_logger(trace::TxnLogger* log) {
  log_.bind(log, name_);
}

const std::string& ShipChannel::Terminal::channel_name() const {
  return ch->name_;
}

void ShipChannel::mark_master(Terminal& t, const char* call) {
  if (t.role_ == Role::Slave) {
    throw ProtocolError("SHIP role conflict on channel " + name_ +
                        ": slave terminal called " + call);
  }
  t.role_ = Role::Master;
}

void ShipChannel::mark_slave(Terminal& t, const char* call) {
  if (t.role_ == Role::Master) {
    throw ProtocolError("SHIP role conflict on channel " + name_ +
                        ": master terminal called " + call);
  }
  t.role_ = Role::Slave;
}

ShipChannel::Sent ShipChannel::send_msg(Direction& d,
                                        const ship_serializable_if& msg,
                                        bool is_request) {
  // Serialize into a pooled descriptor: the payload buffer's capacity is
  // recycled across messages, so a warmed-up channel moves bytes with no
  // allocation at all.
  Txn& t = sim_.txn_pool().acquire();
  t.begin_msg(is_request ? Txn::kFlagRequest : 0);
  // Issue stamp: when the sender entered the channel. The receiving side
  // reads it back for phase-accurate logging (a reply row spans the
  // reply's own issue -> arrival, not the requester's whole wait).
  t.enqueued = sim_.now();
  const std::size_t n = to_bytes_into(msg, t.data);
  const std::uint64_t id = t.id;
  const Time lat = timing_->transfer_latency(n);
  if (!lat.is_zero()) wait(lat);
  while (d.queue.size() >= depth_) wait(*d.consumed);
  d.queue.push_back(t);
  d.written->notify_delta();
  return Sent{n, id};
}

Txn* ShipChannel::pop(Direction& d) {
  while (d.queue.empty()) wait(*d.written);
  Txn* t = d.queue.pop_front();
  d.consumed->notify_delta();
  return t;
}

void ShipChannel::log_txn(trace::TxnKind kind, std::uint64_t txn_id,
                          std::size_t bytes, Time start) {
  ++messages_;
  bytes_ += bytes;
  if (log_) log_.record(kind, txn_id, bytes, start, sim_.now());
}

void ShipChannel::Terminal::send(const ship_serializable_if& msg) {
  ch->mark_master(*this, "send");
  const Time start = ch->sim_.now();
  const Sent s = ch->send_msg(ch->dir_[index], msg, /*is_request=*/false);
  ch->log_txn(trace::TxnKind::Send, s.id, s.bytes, start);
}

void ShipChannel::Terminal::recv(ship_serializable_if& msg) {
  ch->mark_slave(*this, "recv");
  Txn* t = ch->pop(ch->dir_[1 - index]);
  if (t->is_request()) ++pending_replies;
  from_bytes(msg, t->data);
  ch->sim_.txn_pool().release(*t);
}

void ShipChannel::Terminal::request(const ship_serializable_if& req,
                                    ship_serializable_if& resp) {
  ch->mark_master(*this, "request");
  const Time start = ch->sim_.now();
  const Sent s = ch->send_msg(ch->dir_[index], req, /*is_request=*/true);
  ch->log_txn(trace::TxnKind::Request, s.id, s.bytes, start);

  // Block for the reply travelling the opposite direction.
  Txn* r = ch->pop(ch->dir_[1 - index]);
  if (r->is_request()) {
    ch->sim_.txn_pool().release(*r);
    throw ProtocolError("SHIP channel " + ch->name_ +
                        ": request crossed with opposing request "
                        "(both terminals acting as master)");
  }
  const std::size_t reply_bytes = r->data.size();
  const std::uint64_t reply_id = r->id;
  // Phase-accurate reply row: from the slave's reply() issue (stamped on
  // the descriptor by send_msg) to its arrival here. The server's think
  // time lives *between* the request row's end and this row's start,
  // where trace replay can reproduce it as serve compute.
  const Time reply_issue = r->enqueued;
  from_bytes(resp, r->data);
  ch->sim_.txn_pool().release(*r);
  ch->log_txn(trace::TxnKind::Reply, reply_id, reply_bytes, reply_issue);
}

void ShipChannel::Terminal::reply(const ship_serializable_if& resp) {
  ch->mark_slave(*this, "reply");
  if (pending_replies == 0) {
    throw ProtocolError("SHIP channel " + ch->name_ +
                        ": reply without outstanding request");
  }
  --pending_replies;
  ch->send_msg(ch->dir_[index], resp, /*is_request=*/false);
}

bool ShipChannel::Terminal::message_available() const {
  return !ch->dir_[1 - index].queue.empty();
}

}  // namespace stlm::ship
