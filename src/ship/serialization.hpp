#pragma once
// SHIP serialization framework.
//
// The SHIP channel transfers any C++ object that implements the
// ship_serializable_if interface (paper §2): the channel calls serialize()
// / deserialize() to transform communication objects into flat byte
// streams and back. The byte stream is what the lower abstraction levels
// (CCATB, CAM, HW/SW interface) actually move, so one payload definition
// works unchanged from the component-assembly model down to the prototype.
//
// Encoding: little-endian, fixed-width, no padding; lengths are u32
// prefixes. This keeps the wire format identical between the "SW" and
// "HW" sides of the HW/SW interface.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "kernel/report.hpp"

namespace stlm::ship {

class Serializer {
public:
  Serializer() = default;
  // Adopt an existing buffer (cleared, capacity kept) so hot paths can
  // serialize into pooled transaction payloads without reallocating.
  explicit Serializer(std::vector<std::uint8_t>&& buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void put_bytes(const void* p, std::size_t n) {
    if (n == 0) return;  // empty payloads may pass p == nullptr (UB to use)
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  template <class T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void put(T v) {
    // Assumes a little-endian host (x86/ARM); static-checked below.
    put_bytes(&v, sizeof v);
  }

  void put_string(const std::string& s) {
    put_u32_size(s.size());
    put_bytes(s.data(), s.size());
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put_u32_size(v.size());
    put_bytes(v.data(), v.size() * sizeof(T));
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

private:
  void put_u32_size(std::size_t n) {
    STLM_ASSERT(n <= 0xffffffffu, "serialized container too large");
    put(static_cast<std::uint32_t>(n));
  }
  std::vector<std::uint8_t> buf_;
};

class Deserializer {
public:
  explicit Deserializer(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  void get_bytes(void* p, std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      throw ProtocolError("SHIP deserialization underrun");
    }
    if (n == 0) return;  // empty reads may pass p == nullptr (UB in memcpy)
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
  }

  template <class T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  T get() {
    T v;
    get_bytes(&v, sizeof v);
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    std::string s(n, '\0');
    get_bytes(s.data(), n);
    return s;
  }

  template <class T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    std::vector<T> v;
    get_vector_into(v);
    return v;
  }

  // In-place variant: refills `out`, reusing its capacity (hot receive
  // paths deserialize into the same message object every iteration).
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void get_vector_into(std::vector<T>& out) {
    const auto n = get<std::uint32_t>();
    out.resize(n);
    get_bytes(out.data(), static_cast<std::size_t>(n) * sizeof(T));
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool finished() const { return pos_ == bytes_.size(); }

private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// The paper's interface, under its original name.
class ship_serializable_if {
public:
  virtual ~ship_serializable_if() = default;
  virtual void serialize(Serializer& s) const = 0;
  virtual void deserialize(Deserializer& d) = 0;
};

// Flatten an object to bytes (used by wrappers and the HW/SW adapters).
std::vector<std::uint8_t> to_bytes(const ship_serializable_if& obj);
// Flatten into an existing buffer, reusing its capacity; returns the
// serialized size. This is the hot-path variant feeding pooled Txns.
std::size_t to_bytes_into(const ship_serializable_if& obj,
                          std::vector<std::uint8_t>& out);
// Rebuild an object from bytes; throws ProtocolError on trailing garbage.
void from_bytes(ship_serializable_if& obj, std::span<const std::uint8_t> bytes);
// Serialized size of an object (serializes into a scratch buffer).
std::size_t serialized_size(const ship_serializable_if& obj);

static_assert(std::endian::native == std::endian::little,
              "SHIP wire format assumes a little-endian host");

}  // namespace stlm::ship
