#include "ship/serialization.hpp"

namespace stlm::ship {

std::vector<std::uint8_t> to_bytes(const ship_serializable_if& obj) {
  Serializer s;
  obj.serialize(s);
  return s.take();
}

std::size_t to_bytes_into(const ship_serializable_if& obj,
                          std::vector<std::uint8_t>& out) {
  Serializer s(std::move(out));
  obj.serialize(s);
  out = s.take();
  return out.size();
}

void from_bytes(ship_serializable_if& obj,
                std::span<const std::uint8_t> bytes) {
  Deserializer d(bytes);
  obj.deserialize(d);
  if (!d.finished()) {
    throw ProtocolError("SHIP deserialization left " +
                        std::to_string(d.remaining()) + " trailing bytes");
  }
}

std::size_t serialized_size(const ship_serializable_if& obj) {
  Serializer s;
  obj.serialize(s);
  return s.size();
}

}  // namespace stlm::ship
