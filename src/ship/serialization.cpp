#include "ship/serialization.hpp"

namespace stlm::ship {

std::vector<std::uint8_t> to_bytes(const ship_serializable_if& obj) {
  Serializer s;
  obj.serialize(s);
  return s.take();
}

void from_bytes(ship_serializable_if& obj,
                std::span<const std::uint8_t> bytes) {
  Deserializer d(bytes);
  obj.deserialize(d);
  if (!d.finished()) {
    throw ProtocolError("SHIP deserialization left " +
                        std::to_string(d.remaining()) + " trailing bytes");
  }
}

std::size_t serialized_size(const ship_serializable_if& obj) {
  Serializer s;
  obj.serialize(s);
  return s.size();
}

}  // namespace stlm::ship
