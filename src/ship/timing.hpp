#pragma once
// SHIP channel timing policies.
//
// The same channel object serves two of the paper's abstraction levels:
//   * component-assembly model -> Untimed (delta-cycle delivery only);
//   * CCATB model              -> Approximate (per-message setup cost plus
//                                 per-beat transfer cost derived from a bus
//                                 width and clock period).
// Below CCATB the channel is *replaced* by wrappers routing through a CAM
// (see src/cam/wrappers.hpp), so no further policy exists here.

#include <cstdint>
#include <memory>

#include "kernel/time.hpp"

namespace stlm::ship {

class TimingModel {
public:
  virtual ~TimingModel() = default;
  // Simulated time consumed to transfer a `bytes`-sized message.
  virtual Time transfer_latency(std::size_t bytes) const = 0;
};

// Component-assembly level: communication costs no simulated time.
class UntimedModel final : public TimingModel {
public:
  Time transfer_latency(std::size_t) const override { return Time::zero(); }
};

// CCATB level: `setup + ceil(bytes / bus_width) * cycle` per message —
// cycle-count accurate at the transaction boundary, unsynchronized inside.
class CcatbModel final : public TimingModel {
public:
  CcatbModel(Time cycle, std::size_t bus_width_bytes, std::uint64_t setup_cycles)
      : cycle_(cycle),
        width_(bus_width_bytes ? bus_width_bytes : 1),
        setup_cycles_(setup_cycles) {}

  Time transfer_latency(std::size_t bytes) const override {
    const std::uint64_t beats =
        (bytes + width_ - 1) / width_;
    return cycle_ * (setup_cycles_ + beats);
  }

  Time cycle() const { return cycle_; }
  std::size_t bus_width_bytes() const { return width_; }

private:
  Time cycle_;
  std::size_t width_;
  std::uint64_t setup_cycles_;
};

}  // namespace stlm::ship
