#pragma once
// Umbrella header for the SHIP protocol library.

#include "ship/channel.hpp"
#include "ship/messages.hpp"
#include "ship/serialization.hpp"
#include "ship/timing.hpp"
