#pragma once
// The SHIP channel (paper §2).
//
// A lightweight message-passing channel for directed point-to-point
// connections between two communication entities. It offers four blocking
// interface method calls:
//
//     send(msg)           master, one-way
//     recv(msg)           slave, one-way
//     request(req, resp)  master, round-trip
//     reply(resp)         slave, round-trip
//
// A PE that exclusively uses send/request implicitly is a communication
// master; one that uses recv/reply is a slave. The channel records which
// of its two terminals used which group and exposes the deduced roles —
// this is the paper's "automatic master/slave detection", consumed by the
// mapper (src/core/mapper.*) when it picks wrappers and adapters. Mixing
// master and slave calls on one terminal raises ProtocolError.
//
// Payloads are serialized on send and deserialized on receive, so the
// bytes moved here are exactly the bytes a refined model moves through a
// CAM or across the HW/SW interface.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/simulator.hpp"
#include "ship/serialization.hpp"
#include "ship/timing.hpp"
#include "trace/txn_log.hpp"

namespace stlm::ship {

enum class Role : std::uint8_t { Unknown, Master, Slave };
const char* role_name(Role r);

// The interface a PE port binds to (one per channel terminal).
class ship_if {
public:
  virtual ~ship_if() = default;
  virtual void send(const ship_serializable_if& msg) = 0;
  virtual void recv(ship_serializable_if& msg) = 0;
  virtual void request(const ship_serializable_if& req,
                       ship_serializable_if& resp) = 0;
  virtual void reply(const ship_serializable_if& resp) = 0;

  // Non-blocking probe: is a message waiting for recv()?
  virtual bool message_available() const = 0;
  virtual Role role() const = 0;
  virtual const std::string& channel_name() const = 0;
};

class ShipChannel {
public:
  // `queue_depth` bounds the number of in-flight messages per direction;
  // a full queue blocks the sender (depth 1 = single-buffered handshake).
  ShipChannel(Simulator& sim, std::string name, std::size_t queue_depth = 1,
              std::unique_ptr<TimingModel> timing = nullptr);

  ShipChannel(const ShipChannel&) = delete;
  ShipChannel& operator=(const ShipChannel&) = delete;

  // The two terminals. By convention examples bind the initiating PE to
  // a() — but roles are *detected*, not positional.
  ship_if& a() { return term_[0]; }
  ship_if& b() { return term_[1]; }

  const std::string& name() const { return name_; }
  Role role_a() const { return term_[0].role_; }
  Role role_b() const { return term_[1].role_; }

  // Replace the timing policy (switching abstraction level in place).
  void set_timing(std::unique_ptr<TimingModel> t);
  const TimingModel& timing() const { return *timing_; }

  void set_txn_logger(trace::TxnLogger* log);

  // Lifetime counters.
  std::uint64_t messages_transferred() const { return messages_; }
  std::uint64_t bytes_transferred() const { return bytes_; }
  // Messages currently queued across both directions — an instantaneous
  // depth gauge for obs::MetricsRegistry time series.
  std::size_t queued_messages() const {
    return dir_[0].queue.size() + dir_[1].queue.size();
  }

private:
  struct Terminal final : ship_if {
    void send(const ship_serializable_if& msg) override;
    void recv(ship_serializable_if& msg) override;
    void request(const ship_serializable_if& req,
                 ship_serializable_if& resp) override;
    void reply(const ship_serializable_if& resp) override;
    bool message_available() const override;
    Role role() const override { return role_; }
    const std::string& channel_name() const override;

    ShipChannel* ch = nullptr;
    int index = 0;  // 0 = a, 1 = b
    Role role_ = Role::Unknown;
    // Requests received but not yet replied to (slave side bookkeeping).
    std::uint64_t pending_replies = 0;
  };

  // In-flight messages are pooled Txn descriptors (op == Msg) linked
  // through their intrusive next pointer — no per-message allocation.
  struct Direction {
    TxnQueue queue;
    std::unique_ptr<Event> written;
    std::unique_ptr<Event> consumed;
  };

  void mark_master(Terminal& t, const char* call);
  void mark_slave(Terminal& t, const char* call);
  struct Sent {
    std::size_t bytes;
    std::uint64_t id;  // Txn id of the enqueued descriptor (trace key)
  };
  // Serializes `msg` into a pooled descriptor, charges the timing model,
  // and enqueues; returns the payload size and descriptor id.
  Sent send_msg(Direction& d, const ship_serializable_if& msg,
                bool is_request);
  Txn* pop(Direction& d);
  void log_txn(trace::TxnKind kind, std::uint64_t txn_id, std::size_t bytes,
               Time start);

  Simulator& sim_;
  std::string name_;
  std::size_t depth_;
  std::unique_ptr<TimingModel> timing_;
  Terminal term_[2];
  Direction dir_[2];  // dir_[i]: messages flowing *out of* terminal i
  trace::LogHandle log_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

// Convenience alias for PE ports.
using ShipPort = Port<ship_if>;

}  // namespace stlm::ship
