#pragma once
// Ready-made SHIP payload types.
//
// Most PEs exchange either a POD struct, a buffer, or a string; these
// adapters implement ship_serializable_if for those cases so application
// code only defines custom payload classes when it has nested structure.

#include <cstdint>
#include <string>
#include <vector>

#include "ship/serialization.hpp"

namespace stlm::ship {

// A single trivially copyable value (int, float, packed struct, ...).
template <class T>
  requires std::is_trivially_copyable_v<T>
class PodMsg final : public ship_serializable_if {
public:
  PodMsg() = default;
  explicit PodMsg(T v) : value(std::move(v)) {}

  void serialize(Serializer& s) const override { s.put_bytes(&value, sizeof value); }
  void deserialize(Deserializer& d) override { d.get_bytes(&value, sizeof value); }

  T value{};
};

// A variable-length buffer of trivially copyable elements.
template <class T = std::uint8_t>
  requires std::is_trivially_copyable_v<T>
class VectorMsg final : public ship_serializable_if {
public:
  VectorMsg() = default;
  explicit VectorMsg(std::vector<T> v) : data(std::move(v)) {}
  explicit VectorMsg(std::size_t n, T fill = T{}) : data(n, fill) {}

  void serialize(Serializer& s) const override { s.put_vector(data); }
  void deserialize(Deserializer& d) override { d.get_vector_into(data); }

  std::vector<T> data;
};

class StringMsg final : public ship_serializable_if {
public:
  StringMsg() = default;
  explicit StringMsg(std::string s) : text(std::move(s)) {}

  void serialize(Serializer& s) const override { s.put_string(text); }
  void deserialize(Deserializer& d) override { text = d.get_string(); }

  std::string text;
};

}  // namespace stlm::ship
