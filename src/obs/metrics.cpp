#include "obs/metrics.hpp"

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <utility>

#include "kernel/simulator.hpp"
#include "trace/stats.hpp"

namespace stlm::obs {

namespace {

// Fixed-point microseconds (fs / 1e9) with 9 fractional digits — the same
// byte-deterministic mapping the trace exporter uses, so trace and
// metrics timelines line up exactly.
void write_time_us(std::ostream& os, Time t) {
  const std::uint64_t fs = t.femtoseconds();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%09llu",
                static_cast<unsigned long long>(fs / 1'000'000'000ULL),
                static_cast<unsigned long long>(fs % 1'000'000'000ULL));
  os << buf;
}

}  // namespace

void MetricsRegistry::add_gauge(std::string name, Gauge fn) {
  names_.push_back(std::move(name));
  gauges_.push_back(std::move(fn));
}

void MetricsRegistry::sample(Time now) {
  Row row;
  row.when = now;
  row.values.reserve(gauges_.size());
  for (const Gauge& g : gauges_) row.values.push_back(g ? g() : 0.0);
  rows_.push_back(std::move(row));
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  trace::ScopedOstreamFormat guard(os);
  os << std::setprecision(9);
  os << "time_us";
  for (const std::string& n : names_) os << ',' << n;
  os << '\n';
  for (const Row& r : rows_) {
    write_time_us(os, r.when);
    for (const double v : r.values) os << ',' << v;
    os << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  trace::ScopedOstreamFormat guard(os);
  os << std::setprecision(9);
  os << "{\"names\":[";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << (i ? ",\"" : "\"") << names_[i] << '"';
  }
  os << "],\"rows\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    os << (i ? ",\n" : "\n") << "{\"t_us\":";
    write_time_us(os, r.when);
    os << ",\"values\":[";
    for (std::size_t j = 0; j < r.values.size(); ++j) {
      os << (j ? "," : "") << r.values[j];
    }
    os << "]}";
  }
  os << (rows_.empty() ? "]}" : "\n]}") << '\n';
}

PeriodicSampler::PeriodicSampler(Simulator& sim, MetricsRegistry& reg,
                                 Time interval, std::string name)
    : state_(std::make_shared<State>()) {
  state_->reg = &reg;
  state_->interval = interval.is_zero() ? Time::ns(1) : interval;
  // The body captures the shared state, not `this`: the handle object and
  // the simulator may be destroyed in either order. On teardown the kill
  // unwind throws straight out of wait(), so the loop never observes a
  // dangling registry.
  auto st = state_;
  sim.spawn_thread(std::move(name), [st] {
    for (;;) {
      wait(st->interval);
      if (st->stopped) return;
      st->reg->sample(Simulator::require_current().now());
      ++st->samples;
    }
  });
}

}  // namespace stlm::obs
