#pragma once
// Observability layer umbrella header.
//
// Three pillars, each usable on its own (see the individual headers):
//   * obs::TraceSession    — Chrome Trace Event JSON timeline export
//                            (loadable in Perfetto / chrome://tracing).
//   * obs::Profiler        — host wall-clock + dispatch-count attribution
//                            per process, plus kernel-internal snapshots
//                            (event wheel, stack pool, fast-path hits).
//   * obs::MetricsRegistry — simulated-time series of user gauges sampled
//                            by a PeriodicSampler process into CSV/JSON.
//
// Gating follows the STLM_AUDIT pattern (kernel/audit.hpp): the classes
// are always compiled so tooling can link against them unconditionally,
// but the kernel/CAM hook *call sites* only exist when built with
// -DSTLM_OBS (a CMake option, ON by default). With the option OFF every
// hook compiles to nothing — the perf-gate CI job builds that
// configuration and holds it to the strict benchmark gate. With the
// option ON but no session attached, each hook is a single null-pointer
// test on the owning Simulator.

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_session.hpp"

namespace stlm::obs {

// True when the kernel/CAM observability hooks are compiled in. Tests
// gate hook-driven assertions on this, mirroring audit::compiled_in().
constexpr bool compiled_in() {
#ifdef STLM_OBS
  return true;
#else
  return false;
#endif
}

}  // namespace stlm::obs
