#include "obs/trace_session.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "kernel/process.hpp"
#include "kernel/simulator.hpp"
#include "kernel/txn.hpp"

namespace stlm::obs {

namespace {

// Simulated femtoseconds -> trace microseconds, printed as a fixed-point
// decimal with 9 fractional digits. Fixed-width integer formatting (not
// floating point) so the export is byte-deterministic and lossless for
// the full 64-bit femtosecond range.
void write_ts(std::ostream& os, std::uint64_t fs) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%09llu",
                static_cast<unsigned long long>(fs / 1'000'000'000ULL),
                static_cast<unsigned long long>(fs % 1'000'000'000ULL));
  os << buf;
}

// Minimal JSON string escaping: quotes, backslashes, control characters.
// Track and event names come from module/process names, which are plain
// identifiers in practice, but the exporter must never emit invalid JSON.
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

TraceSession::TraceSession(Options opts) : opts_(opts) {
  // tid 0 is reserved so a zero-initialized tid is visibly "no track".
  strings_.emplace_back();
  track_names_.push_back(0);
}

void TraceSession::attach(Simulator& sim) {
  detach();
  sim_ = &sim;
  sim.set_trace_session(this);
}

void TraceSession::detach() {
  if (sim_ != nullptr && sim_->trace_session() == this) {
    sim_->set_trace_session(nullptr);
  }
  sim_ = nullptr;
}

std::uint32_t TraceSession::intern(const std::string& s) {
  auto [it, inserted] =
      string_ids_.try_emplace(s, static_cast<std::uint32_t>(strings_.size()));
  if (inserted) strings_.push_back(s);
  return it->second;
}

std::uint32_t TraceSession::track_of(const ProcessBase& p) {
  auto [it, inserted] = proc_tracks_.try_emplace(
      &p, static_cast<std::uint32_t>(track_names_.size()));
  if (inserted) track_names_.push_back(intern(p.name()));
  return it->second;
}

std::uint32_t TraceSession::track_of(const std::string& name) {
  auto [it, inserted] = named_tracks_.try_emplace(
      name, static_cast<std::uint32_t>(track_names_.size()));
  if (inserted) track_names_.push_back(intern(name));
  return it->second;
}

bool TraceSession::room(std::size_t n) {
  if (events_.size() + n <= opts_.max_events) return true;
  dropped_ += n;
  return false;
}

void TraceSession::record(char ph, std::uint32_t tid, std::uint32_t name,
                          std::uint64_t ts_fs, std::uint64_t id) {
  events_.push_back(Ev{ts_fs, id, static_cast<std::uint32_t>(events_.size()),
                       tid, name, ph});
}

void TraceSession::process_begin(const ProcessBase& p, Time now) {
  if (!opts_.process_spans) return;
  const std::uint32_t tid = track_of(p);
  if (!room(1)) {
    // Remember the dropped begin so the matching end is dropped too and
    // the recorded stream stays B/E-balanced.
    ++dropped_open_[tid];
    return;
  }
  record('B', tid, intern("run"), now.femtoseconds(), 0);
}

void TraceSession::process_end(const ProcessBase& p, Time now) {
  if (!opts_.process_spans) return;
  const std::uint32_t tid = track_of(p);
  auto it = dropped_open_.find(tid);
  if (it != dropped_open_.end() && it->second > 0) {
    --it->second;
    ++dropped_;
    return;
  }
  // Always recorded (even just past the cap): an unbalanced B would make
  // the trace invalid. Bounded overshoot: at most one open span per track.
  events_.push_back(Ev{now.femtoseconds(), 0,
                       static_cast<std::uint32_t>(events_.size()), tid,
                       intern("run"), 'E'});
}

void TraceSession::txn_phases(const std::string& track, const Txn& txn,
                              Time issue) {
  if (!opts_.txn_spans) return;
  const std::uint32_t tid = track_of(track);
  if (!room(4)) return;
  const std::uint32_t queue = intern("queue");
  const std::uint32_t service = intern("service");
  // Async pairs keyed by the globally unique Txn id: queue covers
  // issue -> grant, service covers grant -> completion. Recorded as an
  // atomic group of four so pairs can never be half-dropped at the cap.
  record('b', tid, queue, issue.femtoseconds(), txn.id);
  record('e', tid, queue, txn.t_grant.femtoseconds(), txn.id);
  record('b', tid, service, txn.t_grant.femtoseconds(), txn.id);
  record('e', tid, service, txn.t_complete.femtoseconds(), txn.id);
}

void TraceSession::async_span(const std::string& track,
                              const std::string& name, std::uint64_t id,
                              Time begin, Time end) {
  if (!opts_.txn_spans) return;
  const std::uint32_t tid = track_of(track);
  if (!room(2)) return;
  const std::uint32_t n = intern(name);
  record('b', tid, n, begin.femtoseconds(), id);
  record('e', tid, n, end.femtoseconds(), id);
}

void TraceSession::instant(const std::string& track, const std::string& name,
                           Time now) {
  if (!opts_.instants) return;
  const std::uint32_t tid = track_of(track);
  if (!room(1)) return;
  record('i', tid, intern(name), now.femtoseconds(), 0);
}

void TraceSession::clear() {
  events_.clear();
  dropped_ = 0;
  dropped_open_.clear();
}

void TraceSession::write_json(std::ostream& os) const {
  // Transaction spans are recorded at completion with start timestamps in
  // the past, so record order is not time order. A stable sort by
  // (timestamp, record order) restores monotonicity while keeping
  // same-timestamp events in record order — which keeps a B before its
  // zero-length E and a queue end before the service begin it abuts.
  std::vector<const Ev*> sorted;
  sorted.reserve(events_.size());
  for (const Ev& e : events_) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Ev* a, const Ev* b) {
                     if (a->ts_fs != b->ts_fs) return a->ts_fs < b->ts_fs;
                     return a->seq < b->seq;
                   });

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"shiptlm\"}}";
  for (std::uint32_t tid = 1; tid < track_names_.size(); ++tid) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":";
    write_escaped(os, strings_[track_names_[tid]]);
    os << "}}";
  }
  for (const Ev* e : sorted) {
    os << ",\n{\"name\":";
    write_escaped(os, strings_[e->name]);
    os << ",\"ph\":\"" << e->ph << "\",\"pid\":1,\"tid\":" << e->tid
       << ",\"ts\":";
    write_ts(os, e->ts_fs);
    if (e->ph == 'b' || e->ph == 'e') {
      os << ",\"cat\":\"txn\",\"id\":" << e->id;
    } else if (e->ph == 'i') {
      os << ",\"s\":\"t\"";
    }
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace stlm::obs
