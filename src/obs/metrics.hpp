#pragma once
// Time-series metrics: named gauges sampled at a fixed simulated-time
// interval into CSV/JSON artifacts — utilization and queue depth *over
// time*, where the existing StatSet counters only give end-of-run
// aggregates. This is the groundwork for saturation/QoS curve sweeps.
//
// A gauge is any callable returning double (bus utilization, outstanding
// transaction count, channel queue depth, ...). The PeriodicSampler is an
// ordinary simulation thread process: it reads every gauge, appends one
// row stamped with the simulated time, and wait()s for the interval.
// Because the sampler is a real process it keeps the simulator non-idle —
// use run_for()/stop() to bound runs, and note that the lone-runner
// inline-advance fast path is naturally off while a sampler coexists with
// the workload (there are two live processes). That is the expected cost
// of opting into time-series capture.
//
// Determinism: rows contain only simulated time and gauge values, so for
// a deterministic simulation the CSV/JSON artifacts are byte-identical
// across runs.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace stlm {

class Simulator;

namespace obs {

class MetricsRegistry {
public:
  using Gauge = std::function<double()>;

  void add_gauge(std::string name, Gauge fn);
  std::size_t gauge_count() const { return gauges_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  // Read every gauge once and append a row stamped `now`.
  void sample(Time now);

  struct Row {
    Time when;
    std::vector<double> values;
  };
  const std::vector<Row>& rows() const { return rows_; }
  void clear() { rows_.clear(); }

  // CSV: header `time_us,<gauge>,...`, one row per sample; times rendered
  // as fixed-point microseconds (same mapping as the trace exporter).
  void write_csv(std::ostream& os) const;
  // JSON: {"names":[...],"rows":[{"t_us":...,"values":[...]},...]}.
  void write_json(std::ostream& os) const;

private:
  std::vector<std::string> names_;
  std::vector<Gauge> gauges_;
  std::vector<Row> rows_;
};

// Spawns a sim-owned thread process that samples `reg` every `interval`
// of simulated time (first sample at spawn time + interval). The process
// holds its state through a shared_ptr, so the PeriodicSampler handle may
// be destroyed in any order relative to the Simulator.
class PeriodicSampler {
public:
  PeriodicSampler(Simulator& sim, MetricsRegistry& reg, Time interval,
                  std::string name = "obs_sampler");

  // Stop sampling at the next wakeup (the process then terminates).
  void stop() { state_->stopped = true; }
  std::uint64_t samples() const { return state_->samples; }
  Time interval() const { return state_->interval; }

private:
  struct State {
    MetricsRegistry* reg;
    Time interval;
    bool stopped = false;
    std::uint64_t samples = 0;
  };
  std::shared_ptr<State> state_;
};

}  // namespace obs
}  // namespace stlm
