#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

#include "kernel/process.hpp"
#include "kernel/simulator.hpp"
#include "kernel/stack_pool.hpp"
#include "trace/stats.hpp"

namespace stlm::obs {

namespace {

std::uint64_t wall_now_ns() {
  // stlm-lint: allow(determinism-wall-clock): the profiler's entire job
  // is measuring host wall time; its output goes to a separate profile
  // artifact and never feeds back into simulated state or the trace.
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

}  // namespace

void Profiler::attach(Simulator& sim) {
  detach();
  sim_ = &sim;
  sim.set_profiler(this);
}

void Profiler::detach() {
  if (sim_ != nullptr && sim_->profiler() == this) {
    sim_->set_profiler(nullptr);
  }
  sim_ = nullptr;
  active_ = nullptr;
}

void Profiler::add_bus(std::string name, BusSampleFn sample) {
  buses_.emplace_back(std::move(name), std::move(sample));
}

void Profiler::dispatch_begin(const ProcessBase& p) {
  auto [it, inserted] = procs_.try_emplace(&p);
  if (inserted) it->second.name = p.name();
  ++it->second.dispatches;
  active_ = &p;
  t0_ns_ = wall_now_ns();
}

void Profiler::dispatch_end(const ProcessBase& p) {
  if (active_ != &p) return;  // begin was missed (attached mid-dispatch)
  active_ = nullptr;
  auto it = procs_.find(&p);
  if (it == procs_.end()) return;
  it->second.wall_ns += static_cast<double>(wall_now_ns() - t0_ns_);
}

Profiler::Snapshot Profiler::snapshot() const {
  Snapshot s;
  if (sim_ != nullptr) {
    s.ctx_switches = sim_->ctx_switches();
    s.inline_advances = sim_->inline_advances();
    const auto& wheel = sim_->timed_queue();
    const auto& ws = wheel.stats();
    s.wheel_pushes = ws.pushes;
    s.wheel_overflow_pushes = ws.overflow_pushes;
    s.wheel_rebases = ws.rebases;
    s.wheel_peak_size = ws.peak_size;
    s.wheel_size = wheel.size();
  }
  const auto& pool = detail::StackPool::local();
  s.stack_maps = pool.maps();
  s.stack_reuses = pool.reuses();
  s.stack_peak_in_use = pool.peak_in_use_blocks();
  for (const auto& [name, fn] : buses_) {
    const BusSample bs = fn ? fn() : BusSample{};
    Snapshot::Bus b;
    b.name = name;
    b.transactions = bs.transactions;
    b.fast_hits = bs.fast_hits;
    b.fast_hit_rate =
        bs.transactions != 0
            ? static_cast<double>(bs.fast_hits) /
                  static_cast<double>(bs.transactions)
            : 0.0;
    s.total_transactions += bs.transactions;
    s.total_fast_hits += bs.fast_hits;
    s.buses.push_back(std::move(b));
  }
  s.fast_hit_rate = s.total_transactions != 0
                        ? static_cast<double>(s.total_fast_hits) /
                              static_cast<double>(s.total_transactions)
                        : 0.0;
  for (const auto& [key, slot] : procs_) {
    s.processes.push_back(slot);
    s.total_wall_ns += slot.wall_ns;
  }
  std::sort(s.processes.begin(), s.processes.end(),
            [](const ProcessSlot& a, const ProcessSlot& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              return a.name < b.name;
            });
  return s;
}

void Profiler::write_table(std::ostream& os) const {
  const Snapshot s = snapshot();
  trace::ScopedOstreamFormat guard(os);
  os << "kernel profile\n";
  os << "  ctx switches            " << s.ctx_switches << "\n";
  os << "  inline advances         " << s.inline_advances << "\n";
  os << "  wheel pushes            " << s.wheel_pushes << " (overflow "
     << s.wheel_overflow_pushes << ", rebases " << s.wheel_rebases << ")\n";
  os << "  wheel occupancy         " << s.wheel_size << " (peak "
     << s.wheel_peak_size << ")\n";
  os << "  stack maps              " << s.stack_maps << " (reuses "
     << s.stack_reuses << ", peak in use " << s.stack_peak_in_use << ")\n";
  os << std::fixed << std::setprecision(3);
  os << "  fast-path hit rate      " << s.fast_hit_rate << " ("
     << s.total_fast_hits << "/" << s.total_transactions << ")\n";
  if (!s.buses.empty()) {
    os << "  buses:\n";
    for (const auto& b : s.buses) {
      os << "    " << std::left << std::setw(24) << b.name << std::right
         << std::setw(12) << b.transactions << " txns" << std::setw(12)
         << b.fast_hits << " fast  rate " << b.fast_hit_rate << "\n";
    }
  }
  if (!s.processes.empty()) {
    os << "  processes by wall time:\n";
    for (const auto& p : s.processes) {
      const double share =
          s.total_wall_ns > 0.0 ? 100.0 * p.wall_ns / s.total_wall_ns : 0.0;
      os << "    " << std::left << std::setw(24) << p.name << std::right
         << std::setw(12) << p.dispatches << " disp" << std::setw(12)
         << std::setprecision(3) << p.wall_ns / 1e6 << " ms  "
         << std::setprecision(1) << std::setw(5) << share << "%\n";
    }
  }
}

void Profiler::write_json(std::ostream& os) const {
  const Snapshot s = snapshot();
  trace::ScopedOstreamFormat guard(os);
  os << std::setprecision(17);
  os << "{\n";
  os << "  \"ctx_switches\": " << s.ctx_switches << ",\n";
  os << "  \"inline_advances\": " << s.inline_advances << ",\n";
  os << "  \"wheel_pushes\": " << s.wheel_pushes << ",\n";
  os << "  \"wheel_overflow_pushes\": " << s.wheel_overflow_pushes << ",\n";
  os << "  \"wheel_rebases\": " << s.wheel_rebases << ",\n";
  os << "  \"wheel_peak_size\": " << s.wheel_peak_size << ",\n";
  os << "  \"stack_maps\": " << s.stack_maps << ",\n";
  os << "  \"stack_reuses\": " << s.stack_reuses << ",\n";
  os << "  \"stack_peak_in_use\": " << s.stack_peak_in_use << ",\n";
  os << "  \"transactions\": " << s.total_transactions << ",\n";
  os << "  \"fast_hits\": " << s.total_fast_hits << ",\n";
  os << "  \"fast_hit_rate\": " << s.fast_hit_rate << ",\n";
  os << "  \"buses\": [";
  for (std::size_t i = 0; i < s.buses.size(); ++i) {
    const auto& b = s.buses[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << b.name
       << "\", \"transactions\": " << b.transactions
       << ", \"fast_hits\": " << b.fast_hits
       << ", \"fast_hit_rate\": " << b.fast_hit_rate << "}";
  }
  os << (s.buses.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"processes\": [";
  for (std::size_t i = 0; i < s.processes.size(); ++i) {
    const auto& p = s.processes[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << p.name
       << "\", \"dispatches\": " << p.dispatches
       << ", \"wall_ns\": " << p.wall_ns << "}";
  }
  os << (s.processes.empty() ? "]" : "\n  ]") << "\n";
  os << "}\n";
}

}  // namespace stlm::obs
