#pragma once
// Kernel self-profiler: answers "where does host wall-clock go" for a
// run, and exposes kernel internals that are otherwise invisible.
//
// Two data sources:
//   * Scheduler hooks — every dispatch of a process (thread resume or
//     method run) is bracketed, attributing host wall-clock and a
//     dispatch count to that process. The wall clock is intentionally
//     kept OUT of the trace/metrics artifacts: those must be
//     byte-deterministic across runs, and host timing never is.
//   * snapshot() — pulls counters the kernel maintains under STLM_OBS:
//     context switches and lone-runner inline advances from the
//     Simulator, push/overflow/rebase/occupancy statistics from the
//     EventWheel, map/reuse/high-water counts from the calling thread's
//     StackPool, plus per-bus transaction and fast-path-hit counters
//     registered by the harness — one registry instead of four ad-hoc
//     accessors.
//
// Output: write_table() renders a human-readable report; write_json()
// emits a machine-readable dump for CI artifacts and bench history.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace stlm {

class Simulator;
class ProcessBase;

namespace obs {

class Profiler {
public:
  // Per-bus counters sampled at snapshot time. Registered as a callback
  // so CAMs that fold sharded counters lazily (the crossbar) are read
  // fresh, and so this header needs no CAM dependency.
  struct BusSample {
    std::uint64_t transactions = 0;
    std::uint64_t fast_hits = 0;
  };
  using BusSampleFn = std::function<BusSample()>;

  // Per-process attribution accumulated by the scheduler hooks.
  struct ProcessSlot {
    std::string name;
    std::uint64_t dispatches = 0;
    double wall_ns = 0.0;
  };

  struct Snapshot {
    // Scheduler.
    std::uint64_t ctx_switches = 0;    // thread-coroutine resumes
    std::uint64_t inline_advances = 0; // lone-runner wait() fast path
    // Event wheel.
    std::uint64_t wheel_pushes = 0;
    std::uint64_t wheel_overflow_pushes = 0;
    std::uint64_t wheel_rebases = 0;
    std::size_t wheel_peak_size = 0;
    std::size_t wheel_size = 0;
    // Stack pool (the calling thread's pool).
    std::uint64_t stack_maps = 0;
    std::uint64_t stack_reuses = 0;
    std::size_t stack_peak_in_use = 0;
    // Buses.
    struct Bus {
      std::string name;
      std::uint64_t transactions = 0;
      std::uint64_t fast_hits = 0;
      double fast_hit_rate = 0.0;
    };
    std::vector<Bus> buses;
    std::uint64_t total_transactions = 0;
    std::uint64_t total_fast_hits = 0;
    double fast_hit_rate = 0.0;
    // Processes, sorted by wall_ns descending (name tie-break).
    std::vector<ProcessSlot> processes;
    double total_wall_ns = 0.0;
  };

  // Register with `sim` so scheduler hooks feed this profiler.
  void attach(Simulator& sim);
  void detach();
  Simulator* simulator() const { return sim_; }

  void add_bus(std::string name, BusSampleFn sample);

  // --- scheduler hooks (called by the kernel under STLM_OBS) ------------
  void dispatch_begin(const ProcessBase& p);
  void dispatch_end(const ProcessBase& p);

  // Aggregate everything currently known. Reads the attached Simulator's
  // counters (zeroes if detached) and the calling thread's StackPool, so
  // call it on the thread that ran the simulation.
  Snapshot snapshot() const;

  void write_table(std::ostream& os) const;
  void write_json(std::ostream& os) const;

private:
  Simulator* sim_ = nullptr;
  std::unordered_map<const void*, ProcessSlot> procs_;
  std::vector<std::pair<std::string, BusSampleFn>> buses_;
  const void* active_ = nullptr;
  std::uint64_t t0_ns_ = 0;  // dispatch start, steady-clock nanoseconds
};

}  // namespace obs
}  // namespace stlm
