#pragma once
// Timeline tracing: records kernel and CAM activity as Chrome Trace Event
// JSON (the format Perfetto and chrome://tracing load directly).
//
// Event model:
//   * Process run-spans — one trace thread ("track") per simulation
//     process; a B/E duration pair brackets every scheduler dispatch.
//     Spans on one track are strictly sequential (the scheduler runs one
//     process at a time), so B/E pairs always balance and nest trivially.
//   * Transaction phase spans — per bus/channel track, one async "b"/"e"
//     pair per Txn phase: "queue" covers enqueued → t_grant and "service"
//     covers t_grant → t_complete, built from the per-phase timestamps
//     the Txn already carries. Async events are used because split/
//     pipelined buses keep several transactions in flight on one track at
//     once, which plain B/E nesting cannot express; each pair is keyed by
//     the Txn's globally unique id.
//   * Instant events — determinism-audit conflicts and fast-path
//     fallbacks, so "why did this run deviate / slow down" is visible at
//     the exact simulated time it happened.
//
// Simulated femtoseconds map to trace microseconds (ts = fs / 1e9),
// rendered with a fixed 9 fractional digits so the export is
// byte-deterministic. The exporter stable-sorts by (ts, record order)
// before writing, because transaction spans are recorded at completion
// time with start timestamps in the past; the resulting file is
// monotonic, which tools/check_trace.py verifies.
//
// Determinism contract: a TraceSession records nothing host-dependent
// (no wall clock, no pointers); two identical runs in fresh processes
// produce byte-identical JSON. The Profiler owns all wall-clock output.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/time.hpp"

namespace stlm {

class Simulator;
class ProcessBase;
struct Txn;

namespace obs {

class TraceSession {
public:
  struct Options {
    bool process_spans = true;  // B/E span per scheduler dispatch
    bool txn_spans = true;      // async queue/service spans per Txn
    bool instants = true;       // audit conflicts, fast-path fallbacks
    // Hard cap on stored events; once reached, new spans are dropped
    // (and counted) instead of growing without bound on long runs.
    std::size_t max_events = 1u << 20;
  };

  TraceSession() : TraceSession(Options{}) {}
  explicit TraceSession(Options opts);

  // Register with `sim` so the kernel/CAM hooks see this session. One
  // session per simulator; attach replaces any previous one.
  void attach(Simulator& sim);
  void detach();
  Simulator* simulator() const { return sim_; }

  // --- recording hooks (called by the kernel/CAM under STLM_OBS) --------
  void process_begin(const ProcessBase& p, Time now);
  void process_end(const ProcessBase& p, Time now);
  // Queue + service async spans for a completed transaction on the track
  // named `track` (the bus/channel full name). `issue` is when the
  // request entered the fabric — the Txn's own `enqueued` stamp for flat
  // buses, the outer arrival time for hierarchical routes that re-stamp
  // the descriptor per hop.
  void txn_phases(const std::string& track, const Txn& txn, Time issue);
  void instant(const std::string& track, const std::string& name, Time now);
  // Retrospective async span (e.g. a retry policy's "watchdog" window,
  // recorded when the transaction settles): one balanced "b"/"e" pair on
  // `track`, keyed by `id` like txn_phases — always recorded atomically,
  // so exported async spans can never be half-dropped at the event cap.
  void async_span(const std::string& track, const std::string& name,
                  std::uint64_t id, Time begin, Time end);

  // --- inspection / export ----------------------------------------------
  std::size_t event_count() const { return events_.size(); }
  std::uint64_t dropped_events() const { return dropped_; }
  const Options& options() const { return opts_; }
  void clear();

  // Write the full trace as {"displayTimeUnit":"ns","traceEvents":[...]}.
  // Stable-sorted by (ts, record order); metadata thread_name records
  // name every track. Byte-deterministic for a deterministic run.
  void write_json(std::ostream& os) const;

private:
  // Compact in-memory record; strings are interned so a span costs two
  // small structs, not two heap strings.
  struct Ev {
    std::uint64_t ts_fs;
    std::uint64_t id;    // async pair key (Txn id); 0 for sync events
    std::uint32_t seq;   // record order: stable-sort tie-break
    std::uint32_t tid;   // track
    std::uint32_t name;  // interned string index
    char ph;             // 'B','E','b','e','i'
  };

  std::uint32_t intern(const std::string& s);
  std::uint32_t track_of(const ProcessBase& p);
  std::uint32_t track_of(const std::string& name);
  bool room(std::size_t n);
  void record(char ph, std::uint32_t tid, std::uint32_t name,
              std::uint64_t ts_fs, std::uint64_t id);

  Options opts_;
  Simulator* sim_ = nullptr;
  std::vector<Ev> events_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> string_ids_;
  std::unordered_map<const void*, std::uint32_t> proc_tracks_;
  std::unordered_map<std::string, std::uint32_t> named_tracks_;
  std::vector<std::uint32_t> track_names_;  // tid -> interned name
  // Per-track count of dispatch begins dropped at the event cap; the
  // matching end is dropped too, so recorded B/E pairs always balance.
  std::unordered_map<std::uint32_t, std::uint32_t> dropped_open_;
  std::uint64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace stlm
