#pragma once
// Failure-semantics configuration and the seeded fault injector.
//
// A FaultProfile describes how a platform misbehaves: per-slave error
// probability (targets answer with Status::Error), latency-spike windows
// (a slave occasionally takes extra bus cycles to answer), and
// grant-stall bursts (the arbiter occasionally withholds a grant for a
// few cycles). A RetrySpec describes how initiators respond: bounded
// retries with exponential backoff in simulated time, per-transaction
// timeout watchdogs, abort on exhaustion (see cam/retry.hpp).
//
// Determinism contract: the Injector draws from splitmix64 streams
// derived from the profile seed — one stream per slave index plus one
// grant stream — and is consulted in simulation order (the kernel's
// dispatch order is deterministic), so same-seed runs reproduce the
// exact same fault sequence byte for byte. Zero-rate knobs perform no
// draw at all: an attached all-zero profile behaves exactly like no
// injector, and the Mapper only attaches active() profiles in the first
// place, so fault-free platforms stay bit-identical to the seed anchors.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kernel/time.hpp"
#include "workload/rng.hpp"

namespace stlm::fault {

struct FaultProfile {
  // Suffix appended to platform names in the exploration grid ("-<name>");
  // empty plus all-zero rates is the inactive default axis entry.
  std::string name;
  std::uint64_t seed = 1;
  // Per-access probability that the routed slave responds Status::Error.
  double error_rate = 0.0;
  // Per-access probability of a latency spike, and its size in bus cycles.
  double spike_rate = 0.0;
  std::uint64_t spike_cycles = 0;
  // Per-grant probability of an arbiter stall, and its size in bus cycles.
  double stall_rate = 0.0;
  std::uint64_t stall_cycles = 0;

  bool active() const {
    return error_rate > 0.0 || (spike_rate > 0.0 && spike_cycles > 0) ||
           (stall_rate > 0.0 && stall_cycles > 0);
  }
};

// Initiator-side failure policy knobs (consumed by cam::RetryPolicy).
struct RetrySpec {
  // Suffix appended to platform names in the exploration grid; empty plus
  // zero knobs is the inactive default axis entry.
  std::string name;
  // Re-issues allowed after an Error response (0 = report the Error).
  std::uint32_t max_retries = 0;
  // Backoff before re-issue k is backoff_cycles << (k-1) bus cycles.
  std::uint64_t backoff_cycles = 1;
  // Watchdog deadline per attempt; zero disables the watchdog.
  Time timeout = Time::zero();

  bool active() const {
    return max_retries > 0 || timeout != Time::zero();
  }
};

// Seeded fault source consulted by the CAM engines. One Injector per
// mapped system (the Mapper owns it); per-slave streams keep the draw
// sequence independent of how traffic interleaves across targets.
class Injector {
public:
  explicit Injector(FaultProfile profile) : profile_(std::move(profile)) {
    grant_ = workload::SplitMix64(
        workload::SplitMix64::derive(profile_.seed, 0));
  }

  struct Access {
    bool error = false;
    std::uint64_t spike_cycles = 0;
  };

  /// Draw the fault outcome for one access to slave `slave`. Zero-rate
  /// knobs skip their draw entirely (stream untouched).
  Access on_access(std::size_t slave) {
    Access a;
    if (profile_.error_rate <= 0.0 && profile_.spike_rate <= 0.0) return a;
    auto& rng = slave_stream(slave);
    if (profile_.error_rate > 0.0 &&
        rng.uniform01() < profile_.error_rate) {
      a.error = true;
      ++errors_;
      return a;  // an erroring access doesn't also spike
    }
    if (profile_.spike_rate > 0.0 && profile_.spike_cycles > 0 &&
        rng.uniform01() < profile_.spike_rate) {
      a.spike_cycles = profile_.spike_cycles;
      ++spikes_;
    }
    return a;
  }

  /// Draw the stall (in bus cycles) charged before one arbitration grant.
  std::uint64_t on_grant() {
    if (profile_.stall_rate <= 0.0 || profile_.stall_cycles == 0) return 0;
    if (grant_.uniform01() < profile_.stall_rate) {
      ++stalls_;
      return profile_.stall_cycles;
    }
    return 0;
  }

  const FaultProfile& profile() const { return profile_; }
  std::uint64_t injected_errors() const { return errors_; }
  std::uint64_t injected_spikes() const { return spikes_; }
  std::uint64_t injected_stalls() const { return stalls_; }

private:
  workload::SplitMix64& slave_stream(std::size_t slave) {
    if (slave >= streams_.size()) {
      for (std::size_t i = streams_.size(); i <= slave; ++i) {
        // Index 0 is the grant stream; slave i uses derivation index i+1.
        streams_.emplace_back(workload::SplitMix64::derive(
            profile_.seed, static_cast<std::uint64_t>(i) + 1));
      }
    }
    return streams_[slave];
  }

  FaultProfile profile_;
  workload::SplitMix64 grant_{0};
  std::vector<workload::SplitMix64> streams_;
  std::uint64_t errors_ = 0;
  std::uint64_t spikes_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace stlm::fault
