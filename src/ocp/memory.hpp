#pragma once
// Generic memory target device (OCP TL slave).
//
// Serves reads/writes inside [base, base+size); out-of-range accesses
// return an error response. Usable behind an OcpTlChannel, a CAM slave
// port, or an OcpPinSlave FSM — one model across all abstraction levels.

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "kernel/time.hpp"
#include "ocp/tl_if.hpp"

namespace stlm::ocp {

class MemorySlave final : public ocp_tl_slave_if {
public:
  MemorySlave(std::string name, std::uint64_t base, std::size_t size,
              Time access_time = Time::zero())
      : name_(std::move(name)),
        base_(base),
        mem_(size, 0),
        access_time_(access_time) {}

  Response handle(const Request& req) override {
    if (!access_time_.is_zero()) wait(access_time_);
    const std::size_t len = req.payload_bytes();
    if (req.addr < base_ || req.addr + len > base_ + mem_.size()) {
      return Response::error();
    }
    const std::size_t off = static_cast<std::size_t>(req.addr - base_);
    if (req.cmd == Cmd::Write) {
      std::copy(req.data.begin(), req.data.end(), mem_.begin() + off);
      ++writes_;
      return Response::ok();
    }
    ++reads_;
    return Response::ok_with(std::vector<std::uint8_t>(
        mem_.begin() + off, mem_.begin() + off + len));
  }

  // Test/back-door access (no simulated time).
  std::uint8_t peek(std::uint64_t addr) const { return mem_.at(addr - base_); }
  void poke(std::uint64_t addr, std::uint8_t v) { mem_.at(addr - base_) = v; }

  std::uint64_t base() const { return base_; }
  std::size_t size() const { return mem_.size(); }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::uint64_t base_;
  std::vector<std::uint8_t> mem_;
  Time access_time_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace stlm::ocp
