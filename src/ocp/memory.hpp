#pragma once
// Generic memory target device (OCP TL slave).
//
// Serves reads/writes inside [base, base+size); out-of-range accesses
// return an error response. Usable behind an OcpTlChannel, a CAM slave
// port, or an OcpPinSlave FSM — one model across all abstraction levels.

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "kernel/time.hpp"
#include "ocp/tl_if.hpp"

namespace stlm::ocp {

class MemorySlave final : public ocp_tl_slave_if {
public:
  MemorySlave(std::string name, std::uint64_t base, std::size_t size,
              Time access_time = Time::zero())
      : name_(std::move(name)),
        base_(base),
        mem_(size, 0),
        access_time_(access_time) {}

  using ocp_tl_slave_if::handle;
  void handle(Txn& txn) override {
    if (!access_time_.is_zero()) wait(access_time_);
    access(txn);
  }

  // Fast path: a flat memory is a pure function of (state, txn) plus a
  // constant leading latency, so it can run from the initiator's
  // context with the latency returned instead of wait()ed.
  bool fast_capable() const override { return true; }
  Time fast_handle(Txn& txn) override {
    access(txn);
    return access_time_;
  }
  // The latency is one configured constant and access() is a pure
  // state/txn function — the merged-completion contract holds.
  std::optional<Time> fast_fixed_latency() const override {
    return access_time_;
  }

  // Test/back-door access (no simulated time).
  std::uint8_t peek(std::uint64_t addr) const { return mem_.at(addr - base_); }
  void poke(std::uint64_t addr, std::uint8_t v) { mem_.at(addr - base_) = v; }

  std::uint64_t base() const { return base_; }
  std::size_t size() const { return mem_.size(); }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  const std::string& name() const { return name_; }

private:
  // The untimed access itself (both paths; the error response also pays
  // the full access time, matching the pre-fast-path behaviour).
  void access(Txn& txn) {
    const std::size_t len = txn.payload_bytes();
    if (txn.addr < base_ || txn.addr + len > base_ + mem_.size()) {
      txn.respond_error();
      return;
    }
    const std::size_t off = static_cast<std::size_t>(txn.addr - base_);
    if (txn.op == Txn::Op::Write) {
      std::copy(txn.data.begin(), txn.data.end(), mem_.begin() + off);
      ++writes_;
      txn.respond_ok();
      return;
    }
    ++reads_;
    txn.respond_data(mem_.data() + off, len);
  }

  std::string name_;
  std::uint64_t base_;
  std::vector<std::uint8_t> mem_;
  Time access_time_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace stlm::ocp
