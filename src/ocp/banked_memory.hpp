#pragma once
// Banked memory target (OCP TL slave) — a realistically contended
// endpoint for workload-driven exploration.
//
// The flat MemorySlave charges one fixed access time; real memory
// controllers don't. This model adds the two effects that dominate
// contention studies:
//
//   * N independent banks, interleaved every `interleave_bytes`: an
//     access must wait until its bank's previous access released it
//     (bank-conflict penalty — back-to-back hits to one bank serialize,
//     accesses spread across banks pipeline);
//   * one open row per bank: hitting the open row costs `row_hit`,
//     switching rows costs `row_miss`.
//
// An access spanning several banks (burst longer than the interleave)
// occupies every bank it touches and pays the worst per-bank timing —
// CCATB-style: the total is charged as one timed wait at transaction
// granularity, no per-beat activity.

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/report.hpp"
#include "kernel/simulator.hpp"
#include "kernel/time.hpp"
#include "ocp/tl_if.hpp"

namespace stlm::ocp {

struct BankedMemoryConfig {
  std::size_t banks = 4;
  std::size_t interleave_bytes = 64;  // consecutive 64B blocks rotate banks
  std::size_t row_bytes = 1024;       // open-row granularity
  Time row_hit = Time::ns(20);
  Time row_miss = Time::ns(60);
  // Recovery window: a bank stays busy this long after an access
  // completes (precharge/writeback); the next access touching it stalls
  // until the window closes (the conflict penalty).
  Time bank_busy = Time::ns(40);
};

class BankedMemorySlave final : public ocp_tl_slave_if {
public:
  BankedMemorySlave(std::string name, std::uint64_t base, std::size_t size,
                    BankedMemoryConfig cfg = {})
      : name_(std::move(name)),
        base_(base),
        mem_(size, 0),
        cfg_(cfg),
        banks_(cfg.banks) {
    STLM_ASSERT(cfg_.banks > 0, "banked memory needs at least one bank: " +
                                    name_);
    STLM_ASSERT(cfg_.interleave_bytes > 0,
                "banked memory interleave must be positive: " + name_);
    STLM_ASSERT(cfg_.row_bytes > 0,
                "banked memory row size must be positive: " + name_);
  }

  using ocp_tl_slave_if::handle;
  void handle(Txn& txn) override {
    const std::size_t len = txn.payload_bytes();
    if (txn.addr < base_ || txn.addr + len > base_ + mem_.size()) {
      txn.respond_error();
      return;
    }
    const Time latency = access_latency(txn.addr - base_, len ? len : 1);
    if (!latency.is_zero()) wait(latency);
    access(txn);
  }

  // Fast path: bank state (free_at, open_row) evolves as a pure function
  // of (current time, offset, length) — the wait in the slow path never
  // changes what the *next* access observes, because free_at is stamped
  // before waiting. So the same evolution can run from the initiator's
  // context with the latency returned instead of wait()ed.
  bool fast_capable() const override { return true; }
  Time fast_handle(Txn& txn) override {
    const std::size_t len = txn.payload_bytes();
    if (txn.addr < base_ || txn.addr + len > base_ + mem_.size()) {
      txn.respond_error();
      return Time::zero();
    }
    const Time latency = access_latency(txn.addr - base_, len ? len : 1);
    access(txn);
    return latency;
  }

  // Test/back-door access (no simulated time).
  std::uint8_t peek(std::uint64_t addr) const { return mem_.at(addr - base_); }
  void poke(std::uint64_t addr, std::uint8_t v) { mem_.at(addr - base_) = v; }

  std::uint64_t base() const { return base_; }
  std::size_t size() const { return mem_.size(); }
  const std::string& name() const { return name_; }
  const BankedMemoryConfig& config() const { return cfg_; }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t row_misses() const { return row_misses_; }
  std::uint64_t bank_conflicts() const { return bank_conflicts_; }
  // Total simulated time accesses spent stalled on busy banks.
  Time conflict_stall() const { return conflict_stall_; }

private:
  struct Bank {
    Time free_at = Time::zero();
    std::uint64_t open_row = ~0ull;  // no row open yet
  };

  // Evolve the bank timing state for an access starting now and return
  // its service latency (stall-until-free + hit/miss). Does not wait:
  // the slow path waits the result, the fast path returns it upward.
  Time access_latency(std::uint64_t offset, std::size_t len) {
    Simulator& sim = Simulator::require_current();
    const Time now = sim.now();
    const std::size_t first =
        static_cast<std::size_t>(offset / cfg_.interleave_bytes) %
        cfg_.banks;
    const std::size_t span =
        (static_cast<std::size_t>(offset % cfg_.interleave_bytes) + len +
         cfg_.interleave_bytes - 1) /
        cfg_.interleave_bytes;
    const std::size_t touched = span < cfg_.banks ? span : cfg_.banks;
    const std::uint64_t row = offset / cfg_.row_bytes;

    // Stall until every touched bank is free, then pay the worst
    // hit/miss latency among them.
    Time ready = now;
    bool miss = false;
    bool conflict = false;
    for (std::size_t i = 0; i < touched; ++i) {
      Bank& b = banks_[(first + i) % cfg_.banks];
      if (b.free_at > ready) {
        ready = b.free_at;
        conflict = true;
      }
      if (b.open_row != row) miss = true;
    }
    if (conflict) {
      ++bank_conflicts_;
      conflict_stall_ += ready - now;
    }
    if (miss) {
      ++row_misses_;
    } else {
      ++row_hits_;
    }

    const Time done = ready + (miss ? cfg_.row_miss : cfg_.row_hit);
    for (std::size_t i = 0; i < touched; ++i) {
      Bank& b = banks_[(first + i) % cfg_.banks];
      b.free_at = done + cfg_.bank_busy;
      b.open_row = row;
    }
    return done - now;
  }

  // The untimed copy/respond half, shared by both paths.
  void access(Txn& txn) {
    const std::size_t len = txn.payload_bytes();
    const std::size_t off = static_cast<std::size_t>(txn.addr - base_);
    if (txn.op == Txn::Op::Write) {
      std::copy(txn.data.begin(), txn.data.end(), mem_.begin() + off);
      ++writes_;
      txn.respond_ok();
      return;
    }
    ++reads_;
    txn.respond_data(mem_.data() + off, len);
  }

  std::string name_;
  std::uint64_t base_;
  std::vector<std::uint8_t> mem_;
  BankedMemoryConfig cfg_;
  std::vector<Bank> banks_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  std::uint64_t bank_conflicts_ = 0;
  Time conflict_stall_ = Time::zero();
};

}  // namespace stlm::ocp
