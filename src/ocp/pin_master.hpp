#pragma once
// Pin-level OCP master adapter.
//
// Exposes the blocking ocp_tl_master_if upward (so PE code is identical at
// TL and pin level) and executes the cycle-accurate pin protocol downward
// in the calling process. Concurrent callers are serialized — the pin
// bundle is a single physical port.

#include <string>

#include "kernel/channels.hpp"
#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "ocp/pins.hpp"
#include "ocp/tl_if.hpp"

namespace stlm::ocp {

class OcpPinMaster final : public Module, public ocp_tl_master_if {
public:
  OcpPinMaster(Simulator& sim, std::string name, OcpPins& pins, Clock& clk,
               Module* parent = nullptr);

  using ocp_tl_master_if::transport;
  void transport(Txn& txn) override;

  std::uint64_t transactions() const { return transactions_; }

private:
  static std::uint32_t word_at(const std::vector<std::uint8_t>& bytes,
                               std::size_t beat);

  OcpPins& pins_;
  Clock& clk_;
  Mutex busy_;
  std::uint64_t transactions_ = 0;
};

}  // namespace stlm::ocp
