#pragma once
// Pin-level OCP protocol monitor.
//
// Passively samples a pin bundle on every rising clock edge, counts
// command and response beats, and checks basic protocol legality (valid
// MCmd/SResp encodings, no response without a preceding command). Used by
// the test suite to validate the pin FSMs and the accessors.

#include <cstdint>
#include <string>

#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "ocp/pins.hpp"
#include "ocp/types.hpp"

namespace stlm::ocp {

class OcpMonitor final : public Module {
public:
  OcpMonitor(Simulator& sim, std::string name, OcpPins& pins, Clock& clk,
             Module* parent = nullptr);

  std::uint64_t command_beats() const { return cmd_beats_; }
  std::uint64_t response_beats() const { return resp_beats_; }
  std::uint64_t violations() const { return violations_; }
  // Edges where a command was pending but not accepted (wait cycles).
  std::uint64_t stall_cycles() const { return stalls_; }
  // Commands accepted but not yet responded to at the last sampled edge.
  std::int64_t outstanding() const { return outstanding_; }

private:
  void sample();

  OcpPins& pins_;
  std::uint64_t cmd_beats_ = 0;
  std::uint64_t resp_beats_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t violations_ = 0;
  std::int64_t outstanding_ = 0;
};

}  // namespace stlm::ocp
