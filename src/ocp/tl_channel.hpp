#pragma once
// Point-to-point OCP TL channel with CCATB timing.
//
// Connects one master port directly to one slave device without a bus —
// the configuration used when a PE talks to a private peripheral, and the
// reference for the CAM models' boundary timing: the channel charges
//   request_cycles + beats * cycles_per_beat + response_cycles
// of simulated time per transaction in a single wait() at the transaction
// boundary (cycle-count accurate at the boundaries, untimed inside).

#include <cstdint>
#include <string>

#include "kernel/channels.hpp"
#include "kernel/simulator.hpp"
#include "kernel/time.hpp"
#include "ocp/tl_if.hpp"
#include "trace/txn_log.hpp"

namespace stlm::ocp {

struct TlTiming {
  Time cycle = Time::ns(10);
  std::uint32_t request_cycles = 1;   // address/command phase
  std::uint32_t cycles_per_beat = 1;  // per 32-bit data beat
  std::uint32_t response_cycles = 1;  // response phase
};

class OcpTlChannel final : public ocp_tl_master_if {
public:
  OcpTlChannel(Simulator& sim, std::string name, ocp_tl_slave_if& slave,
               TlTiming timing = {});

  using ocp_tl_master_if::transport;
  void transport(Txn& txn) override;

  void set_txn_logger(trace::TxnLogger* log);
  const std::string& name() const { return name_; }
  std::uint64_t transactions() const { return transactions_; }
  const TlTiming& timing() const { return timing_; }

private:
  Simulator& sim_;
  std::string name_;
  ocp_tl_slave_if& slave_;
  TlTiming timing_;
  Mutex busy_;  // serializes masters sharing this channel
  trace::LogHandle log_;
  std::uint64_t transactions_ = 0;
};

}  // namespace stlm::ocp
