#pragma once
// Umbrella header for the OCP library (TL + pin level).

#include "ocp/monitor.hpp"
#include "ocp/pin_master.hpp"
#include "ocp/pin_slave.hpp"
#include "ocp/pins.hpp"
#include "ocp/tl_channel.hpp"
#include "ocp/tl_if.hpp"
#include "ocp/types.hpp"
