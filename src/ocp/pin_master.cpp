#include "ocp/pin_master.hpp"

namespace stlm::ocp {

OcpPinMaster::OcpPinMaster(Simulator& sim, std::string name, OcpPins& pins,
                           Clock& clk, Module* parent)
    : Module(sim, std::move(name), parent),
      pins_(pins),
      clk_(clk),
      busy_(sim, full_name() + ".busy") {}

std::uint32_t OcpPinMaster::word_at(const std::vector<std::uint8_t>& bytes,
                                    std::size_t beat) {
  std::uint32_t w = 0;
  for (std::size_t i = 0; i < kWordBytes; ++i) {
    const std::size_t idx = beat * kWordBytes + i;
    if (idx < bytes.size()) {
      w |= static_cast<std::uint32_t>(bytes[idx]) << (8 * i);
    }
  }
  return w;
}

void OcpPinMaster::transport(Txn& txn) {
  STLM_ASSERT(txn.op != Txn::Op::Msg,
              "pin-level transport needs a read/write txn on " + full_name());
  STLM_ASSERT(txn.beats() <= 255, "pin-level burst longer than MBurstLen: " +
                                      full_name());
  LockGuard g(busy_);
  const std::uint32_t beats = txn.beats();
  Event& edge = clk_.posedge_event();

  pins_.MAddr.write(static_cast<std::uint32_t>(txn.addr));
  pins_.MBurstLen.write(static_cast<std::uint8_t>(beats));
  pins_.MByteCnt.write(static_cast<std::uint32_t>(txn.payload_bytes()));

  if (txn.op == Txn::Op::Write) {
    // Command/data phase: one beat per accepted edge.
    for (std::uint32_t beat = 0; beat < beats;) {
      pins_.MCmd.write(static_cast<std::uint8_t>(Cmd::Write));
      pins_.MData.write(word_at(txn.data, beat));
      wait(edge);
      if (pins_.SCmdAccept.read()) ++beat;
    }
    pins_.MCmd.write(static_cast<std::uint8_t>(Cmd::Idle));
    // Response phase: wait for the slave's write acknowledge.
    for (;;) {
      wait(edge);
      const auto r = static_cast<RespCode>(pins_.SResp.read());
      if (r == RespCode::DVA) break;
      if (r == RespCode::Err || r == RespCode::Fail) {
        ++transactions_;
        txn.respond_error();
        return;
      }
    }
    ++transactions_;
    txn.respond_ok();
    return;
  }

  // Read: command phase.
  pins_.MCmd.write(static_cast<std::uint8_t>(Cmd::Read));
  do {
    wait(edge);
  } while (!pins_.SCmdAccept.read());
  pins_.MCmd.write(static_cast<std::uint8_t>(Cmd::Idle));

  // Response phase: capture one word per DVA edge, straight into the
  // transaction's (capacity-retaining) response buffer.
  std::vector<std::uint8_t>& bytes = txn.resp_data;
  bytes.clear();
  bytes.reserve(static_cast<std::size_t>(beats) * kWordBytes);
  for (std::uint32_t beat = 0; beat < beats;) {
    wait(edge);
    const auto r = static_cast<RespCode>(pins_.SResp.read());
    if (r == RespCode::Err || r == RespCode::Fail) {
      ++transactions_;
      txn.respond_error();
      return;
    }
    if (r != RespCode::DVA) continue;
    const std::uint32_t w = pins_.SData.read();
    for (std::size_t i = 0; i < kWordBytes; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
    ++beat;
  }
  bytes.resize(txn.read_bytes);  // trim padding of the final word
  txn.status = Txn::Status::Ok;
  ++transactions_;
}

}  // namespace stlm::ocp
