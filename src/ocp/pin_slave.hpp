#pragma once
// Pin-level OCP slave adapter.
//
// A clocked FSM that speaks the pin protocol toward the master and calls
// an ocp_tl_slave_if device callback — so the same device model serves at
// TL (behind OcpTlChannel or a CAM) and at pin level (behind this FSM),
// which is exactly the refinement step the paper's accessors rely on.

#include <string>

#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "ocp/pins.hpp"
#include "ocp/tl_if.hpp"

namespace stlm::ocp {

class OcpPinSlave final : public Module {
public:
  // `device_latency_cycles` adds wait states between command capture and
  // response (on top of whatever time the device's handle() consumes).
  OcpPinSlave(Simulator& sim, std::string name, OcpPins& pins, Clock& clk,
              ocp_tl_slave_if& device, std::uint32_t device_latency_cycles = 0,
              Module* parent = nullptr);

  std::uint64_t transactions() const { return transactions_; }

private:
  void fsm();
  static std::uint32_t word_at(const std::vector<std::uint8_t>& bytes,
                               std::size_t beat);

  OcpPins& pins_;
  Clock& clk_;
  ocp_tl_slave_if& device_;
  std::uint32_t latency_;
  std::uint64_t transactions_ = 0;
  Txn txn_;  // reusable descriptor (the FSM runs one transaction at a time)
};

}  // namespace stlm::ocp
