#include "ocp/tl_if.hpp"

#include "kernel/simulator.hpp"

namespace stlm::ocp {

// Value-typed convenience shims: stage the request in a pooled descriptor,
// run the Txn hot path, copy the response out. Edge-only cost; the layers
// below never copy.

Response ocp_tl_master_if::transport(const Request& req) {
  PooledTxn t(Simulator::require_current().txn_pool());
  request_to_txn(req, *t);
  transport(*t);
  return response_from_txn(*t);
}

Response ocp_tl_slave_if::handle(const Request& req) {
  PooledTxn t(Simulator::require_current().txn_pool());
  request_to_txn(req, *t);
  handle(*t);
  return response_from_txn(*t);
}

}  // namespace stlm::ocp
