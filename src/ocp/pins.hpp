#pragma once
// Pin-accurate OCP signal bundle (basic profile, 32-bit data).
//
// This is the interface the paper's *accessors* and the HW adapter of the
// HW/SW interface attach to: a PE refined to RTL exposes exactly these
// wires. Handshake: a request beat transfers on a rising clock edge where
// MCmd != IDLE and SCmdAccept is high; a response beat transfers where
// SResp == DVA.

#include <cstdint>
#include <string>

#include "kernel/signal.hpp"
#include "kernel/simulator.hpp"

namespace stlm::ocp {

struct OcpPins {
  OcpPins(Simulator& sim, const std::string& name)
      : MCmd(sim, name + ".MCmd", 0),
        MAddr(sim, name + ".MAddr", 0),
        MData(sim, name + ".MData", 0),
        MBurstLen(sim, name + ".MBurstLen", 1),
        MByteCnt(sim, name + ".MByteCnt", 0),
        SCmdAccept(sim, name + ".SCmdAccept", true),
        SResp(sim, name + ".SResp", 0),
        SData(sim, name + ".SData", 0) {}

  OcpPins(const OcpPins&) = delete;
  OcpPins& operator=(const OcpPins&) = delete;

  // Master -> slave request group.
  Signal<std::uint8_t> MCmd;        // Cmd encoding
  Signal<std::uint32_t> MAddr;
  Signal<std::uint32_t> MData;
  Signal<std::uint8_t> MBurstLen;   // data beats in this transaction
  Signal<std::uint32_t> MByteCnt;   // exact payload bytes (MReqInfo sideband)

  // Slave -> master.
  Signal<bool> SCmdAccept;
  Signal<std::uint8_t> SResp;       // RespCode encoding
  Signal<std::uint32_t> SData;
};

}  // namespace stlm::ocp
