#include "ocp/types.hpp"

namespace stlm::ocp {

const char* cmd_name(Cmd c) {
  switch (c) {
    case Cmd::Idle: return "IDLE";
    case Cmd::Write: return "WR";
    case Cmd::Read: return "RD";
  }
  return "?";
}

const char* resp_name(RespCode r) {
  switch (r) {
    case RespCode::Null: return "NULL";
    case RespCode::DVA: return "DVA";
    case RespCode::Fail: return "FAIL";
    case RespCode::Err: return "ERR";
  }
  return "?";
}

}  // namespace stlm::ocp
