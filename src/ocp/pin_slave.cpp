#include "ocp/pin_slave.hpp"

namespace stlm::ocp {

OcpPinSlave::OcpPinSlave(Simulator& sim, std::string name, OcpPins& pins,
                         Clock& clk, ocp_tl_slave_if& device,
                         std::uint32_t device_latency_cycles, Module* parent)
    : Module(sim, std::move(name), parent),
      pins_(pins),
      clk_(clk),
      device_(device),
      latency_(device_latency_cycles) {
  spawn_thread("fsm", [this] { fsm(); });
}

std::uint32_t OcpPinSlave::word_at(const std::vector<std::uint8_t>& bytes,
                                   std::size_t beat) {
  std::uint32_t w = 0;
  for (std::size_t i = 0; i < kWordBytes; ++i) {
    const std::size_t idx = beat * kWordBytes + i;
    if (idx < bytes.size()) {
      w |= static_cast<std::uint32_t>(bytes[idx]) << (8 * i);
    }
  }
  return w;
}

void OcpPinSlave::fsm() {
  Event& edge = clk_.posedge_event();
  for (;;) {
    wait(edge);
    const auto cmd = static_cast<Cmd>(pins_.MCmd.read());
    if (cmd == Cmd::Idle || !pins_.SCmdAccept.read()) continue;

    const std::uint32_t addr = pins_.MAddr.read();
    const std::uint32_t beats = pins_.MBurstLen.read();
    const std::uint32_t byte_cnt = pins_.MByteCnt.read();

    if (cmd == Cmd::Write) {
      // Capture beat 0 at this edge, remaining beats on following edges —
      // straight into the reusable descriptor's payload buffer.
      txn_.begin_write(addr, nullptr, 0);
      std::vector<std::uint8_t>& bytes = txn_.data;
      bytes.reserve(static_cast<std::size_t>(beats) * kWordBytes);
      std::uint32_t w = pins_.MData.read();
      for (std::uint32_t beat = 0;;) {
        for (std::size_t i = 0; i < kWordBytes; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
        }
        if (++beat >= beats) break;
        wait(edge);
        w = pins_.MData.read();
      }
      bytes.resize(byte_cnt);  // drop final-word padding
      pins_.SCmdAccept.write(false);
      for (std::uint32_t i = 0; i < latency_; ++i) wait(edge);
      device_.handle(txn_);
      pins_.SResp.write(static_cast<std::uint8_t>(
          txn_.ok() ? RespCode::DVA : RespCode::Err));
      wait(edge);
      pins_.SResp.write(static_cast<std::uint8_t>(RespCode::Null));
      pins_.SCmdAccept.write(true);
      ++transactions_;
      continue;
    }

    // Read.
    pins_.SCmdAccept.write(false);
    for (std::uint32_t i = 0; i < latency_; ++i) wait(edge);
    txn_.begin_read(addr, byte_cnt);
    device_.handle(txn_);
    if (!txn_.ok()) {
      pins_.SResp.write(static_cast<std::uint8_t>(RespCode::Err));
      wait(edge);
    } else {
      for (std::uint32_t beat = 0; beat < beats; ++beat) {
        pins_.SData.write(word_at(txn_.resp_data, beat));
        pins_.SResp.write(static_cast<std::uint8_t>(RespCode::DVA));
        wait(edge);
      }
    }
    pins_.SResp.write(static_cast<std::uint8_t>(RespCode::Null));
    pins_.SCmdAccept.write(true);
    ++transactions_;
  }
}

}  // namespace stlm::ocp
