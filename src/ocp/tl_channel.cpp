#include "ocp/tl_channel.hpp"

namespace stlm::ocp {

OcpTlChannel::OcpTlChannel(Simulator& sim, std::string name,
                           ocp_tl_slave_if& slave, TlTiming timing)
    : sim_(sim),
      name_(std::move(name)),
      slave_(slave),
      timing_(timing),
      busy_(sim, name_ + ".busy") {
  STLM_ASSERT(!timing_.cycle.is_zero(), "OCP TL cycle must be positive: " + name_);
}

void OcpTlChannel::set_txn_logger(trace::TxnLogger* log) {
  log_.bind(log, name_);
}

void OcpTlChannel::transport(Txn& txn) {
  const Time start = sim_.now();
  LockGuard g(busy_);

  const std::uint64_t cycles = timing_.request_cycles +
                               static_cast<std::uint64_t>(txn.beats()) *
                                   timing_.cycles_per_beat +
                               timing_.response_cycles;
  wait(timing_.cycle * cycles);
  slave_.handle(txn);  // may consume further wait states

  ++transactions_;
  if (log_) {
    log_.record(txn.op == Txn::Op::Read ? trace::TxnKind::Read
                                        : trace::TxnKind::Write,
                txn.id, txn.payload_bytes(), start, sim_.now());
  }
}

}  // namespace stlm::ocp
