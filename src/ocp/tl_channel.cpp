#include "ocp/tl_channel.hpp"

namespace stlm::ocp {

OcpTlChannel::OcpTlChannel(Simulator& sim, std::string name,
                           ocp_tl_slave_if& slave, TlTiming timing)
    : sim_(sim),
      name_(std::move(name)),
      slave_(slave),
      timing_(timing),
      busy_(sim, name_ + ".busy") {
  STLM_ASSERT(!timing_.cycle.is_zero(), "OCP TL cycle must be positive: " + name_);
}

Response OcpTlChannel::transport(const Request& req) {
  STLM_ASSERT(req.cmd != Cmd::Idle, "transport of IDLE request on " + name_);
  const Time start = sim_.now();
  LockGuard g(busy_);

  const std::uint64_t cycles = timing_.request_cycles +
                               static_cast<std::uint64_t>(req.beats()) *
                                   timing_.cycles_per_beat +
                               timing_.response_cycles;
  wait(timing_.cycle * cycles);
  Response resp = slave_.handle(req);  // may consume further wait states

  ++transactions_;
  if (log_) {
    log_->record(name_,
                 req.cmd == Cmd::Read ? trace::TxnKind::Read
                                      : trace::TxnKind::Write,
                 req.payload_bytes(), start, sim_.now());
  }
  return resp;
}

}  // namespace stlm::ocp
