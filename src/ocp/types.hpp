#pragma once
// OCP transaction types shared by the TL channel, the CAMs, the pin-level
// FSMs, and the accessors.
//
// The paper attaches PEs to communication architecture models through
// "OCP TLM interfaces" and refines them to "pin-level OCP". This module
// models the OCP basic profile: single request group (MCmd/MAddr/MData),
// single response group (SResp/SData), word size 32 bit, precise bursts.
//
// Since the pooled-transaction refactor, the descriptor that actually
// crosses every layer is stlm::Txn (kernel/txn.hpp): layers hand the same
// Txn through the TL channel, the CAM grant engine, and the pin adapters
// without copying payloads. Request/Response survive as convenience value
// types for edge code (PE bodies, tests); the conversion helpers below
// map them onto a Txn at the boundary.

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/report.hpp"
#include "kernel/txn.hpp"

namespace stlm::ocp {

inline constexpr std::size_t kWordBytes = Txn::kWordBytes;

// Little-endian 32-bit wire helpers shared by the MMIO/mailbox register
// codecs (CPU model, HW adapter, SHIP wrappers).
inline std::uint32_t u32_from_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void u32_to_le(std::uint32_t v, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

enum class Cmd : std::uint8_t { Idle = 0, Write = 1, Read = 2 };
enum class RespCode : std::uint8_t { Null = 0, DVA = 1, Fail = 2, Err = 3 };

const char* cmd_name(Cmd c);
const char* resp_name(RespCode r);

struct Request {
  Cmd cmd = Cmd::Idle;
  std::uint64_t addr = 0;
  std::vector<std::uint8_t> data;  // write payload (empty for reads)
  std::uint32_t read_bytes = 0;    // requested bytes (reads only)
  std::uint32_t master_id = 0;     // initiator id for arbitration/stats

  static Request read(std::uint64_t addr, std::uint32_t bytes,
                      std::uint32_t master_id = 0) {
    Request r;
    r.cmd = Cmd::Read;
    r.addr = addr;
    r.read_bytes = bytes;
    r.master_id = master_id;
    return r;
  }

  static Request write(std::uint64_t addr, std::vector<std::uint8_t> bytes,
                       std::uint32_t master_id = 0) {
    Request r;
    r.cmd = Cmd::Write;
    r.addr = addr;
    r.data = std::move(bytes);
    r.master_id = master_id;
    return r;
  }

  // Payload size in bytes (direction-dependent).
  std::size_t payload_bytes() const {
    return cmd == Cmd::Read ? read_bytes : data.size();
  }
  // Number of 32-bit data beats this transaction occupies.
  std::uint32_t beats() const {
    const std::size_t b = payload_bytes();
    return b == 0 ? 1
                  : static_cast<std::uint32_t>((b + kWordBytes - 1) / kWordBytes);
  }
};

struct Response {
  RespCode resp = RespCode::Null;
  std::vector<std::uint8_t> data;  // read payload

  static Response ok() {
    Response r;
    r.resp = RespCode::DVA;
    return r;
  }
  static Response ok_with(std::vector<std::uint8_t> bytes) {
    Response r;
    r.resp = RespCode::DVA;
    r.data = std::move(bytes);
    return r;
  }
  static Response error() {
    Response r;
    r.resp = RespCode::Err;
    return r;
  }
  bool good() const { return resp == RespCode::DVA; }
};

// ---- Txn <-> Request/Response boundary conversion -----------------------

inline Cmd txn_cmd(const Txn& t) {
  return t.op == Txn::Op::Read ? Cmd::Read : Cmd::Write;
}

inline RespCode txn_resp_code(const Txn& t) {
  switch (t.status) {
    case Txn::Status::Ok: return RespCode::DVA;
    // Late-but-valid data still carries DVA on the wire; the Timeout
    // verdict lives in the initiator-side descriptor, not the protocol.
    case Txn::Status::Timeout: return RespCode::DVA;
    case Txn::Status::Error: return RespCode::Err;
    case Txn::Status::Aborted: return RespCode::Err;
    case Txn::Status::Pending: return RespCode::Null;
  }
  return RespCode::Null;
}

inline void request_to_txn(const Request& req, Txn& t) {
  STLM_ASSERT(req.cmd != Cmd::Idle, "transport of IDLE request");
  if (req.cmd == Cmd::Read) {
    t.begin_read(req.addr, req.read_bytes, req.master_id);
  } else {
    t.begin_write(req.addr, req.data.data(), req.data.size(), req.master_id);
  }
}

inline Response response_from_txn(const Txn& t) {
  Response r;
  r.resp = txn_resp_code(t);
  r.data = t.resp_data;  // copy out; the pooled buffer keeps its capacity
  return r;
}

}  // namespace stlm::ocp
