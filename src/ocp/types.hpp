#pragma once
// OCP transaction types shared by the TL channel, the CAMs, the pin-level
// FSMs, and the accessors.
//
// The paper attaches PEs to communication architecture models through
// "OCP TLM interfaces" and refines them to "pin-level OCP". This module
// models the OCP basic profile: single request group (MCmd/MAddr/MData),
// single response group (SResp/SData), word size 32 bit, precise bursts.

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/report.hpp"

namespace stlm::ocp {

inline constexpr std::size_t kWordBytes = 4;

enum class Cmd : std::uint8_t { Idle = 0, Write = 1, Read = 2 };
enum class RespCode : std::uint8_t { Null = 0, DVA = 1, Fail = 2, Err = 3 };

const char* cmd_name(Cmd c);
const char* resp_name(RespCode r);

struct Request {
  Cmd cmd = Cmd::Idle;
  std::uint64_t addr = 0;
  std::vector<std::uint8_t> data;  // write payload (empty for reads)
  std::uint32_t read_bytes = 0;    // requested bytes (reads only)
  std::uint32_t master_id = 0;     // initiator id for arbitration/stats

  static Request read(std::uint64_t addr, std::uint32_t bytes,
                      std::uint32_t master_id = 0) {
    Request r;
    r.cmd = Cmd::Read;
    r.addr = addr;
    r.read_bytes = bytes;
    r.master_id = master_id;
    return r;
  }

  static Request write(std::uint64_t addr, std::vector<std::uint8_t> bytes,
                       std::uint32_t master_id = 0) {
    Request r;
    r.cmd = Cmd::Write;
    r.addr = addr;
    r.data = std::move(bytes);
    r.master_id = master_id;
    return r;
  }

  // Payload size in bytes (direction-dependent).
  std::size_t payload_bytes() const {
    return cmd == Cmd::Read ? read_bytes : data.size();
  }
  // Number of 32-bit data beats this transaction occupies.
  std::uint32_t beats() const {
    const std::size_t b = payload_bytes();
    return b == 0 ? 1
                  : static_cast<std::uint32_t>((b + kWordBytes - 1) / kWordBytes);
  }
};

struct Response {
  RespCode resp = RespCode::Null;
  std::vector<std::uint8_t> data;  // read payload

  static Response ok() {
    Response r;
    r.resp = RespCode::DVA;
    return r;
  }
  static Response ok_with(std::vector<std::uint8_t> bytes) {
    Response r;
    r.resp = RespCode::DVA;
    r.data = std::move(bytes);
    return r;
  }
  static Response error() {
    Response r;
    r.resp = RespCode::Err;
    return r;
  }
  bool good() const { return resp == RespCode::DVA; }
};

}  // namespace stlm::ocp
