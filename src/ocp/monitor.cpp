#include "ocp/monitor.hpp"

namespace stlm::ocp {

OcpMonitor::OcpMonitor(Simulator& sim, std::string name, OcpPins& pins,
                       Clock& clk, Module* parent)
    : Module(sim, std::move(name), parent), pins_(pins) {
  spawn_method("sample", [this] { sample(); }, {&clk.posedge_event()},
               /*run_at_start=*/false);
}

void OcpMonitor::sample() {
  const auto cmd = static_cast<Cmd>(pins_.MCmd.read());
  const auto resp = static_cast<RespCode>(pins_.SResp.read());

  if (pins_.MCmd.read() > 2 || pins_.SResp.read() > 3) {
    ++violations_;
    return;
  }
  if (cmd != Cmd::Idle) {
    if (pins_.SCmdAccept.read()) {
      ++cmd_beats_;
      ++outstanding_;
    } else {
      ++stalls_;
    }
  }
  if (resp == RespCode::DVA || resp == RespCode::Err ||
      resp == RespCode::Fail) {
    ++resp_beats_;
    if (outstanding_ <= 0 && resp_beats_ > cmd_beats_ * 64) {
      // A response stream with no commands at all is a violation; burst
      // reads legally produce many DVA beats per command beat.
      ++violations_;
    }
  }
}

}  // namespace stlm::ocp
