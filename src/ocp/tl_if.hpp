#pragma once
// OCP transaction-level interfaces.
//
//   * ocp_tl_master_if — what a master-side port binds to: a blocking
//     transport() that carries one request to completion. CAMs, TL
//     channels, pin-level master adapters and accessor stacks all expose
//     this, so a PE refined from SHIP to OCP never changes again while
//     the fabric below it is swapped (the paper's exploration story).
//   * ocp_tl_slave_if  — the device-side callback a target implements.
//     handle() may consume simulated time with wait() to model wait
//     states.
//
// The virtual hot path moves a pooled stlm::Txn by reference through
// every layer — no payload copies, no per-transaction events or heap
// allocation. The Request/Response overloads are non-virtual convenience
// shims for edge code; they route through a pooled descriptor and copy at
// the boundary only. Implementations that are poked directly by tests
// (rather than through this interface) should `using` the base overloads
// so both spellings stay visible.

#include "kernel/module.hpp"
#include "ocp/types.hpp"

namespace stlm::ocp {

class ocp_tl_master_if {
public:
  virtual ~ocp_tl_master_if() = default;
  virtual void transport(Txn& txn) = 0;
  Response transport(const Request& req);
};

class ocp_tl_slave_if {
public:
  virtual ~ocp_tl_slave_if() = default;
  virtual void handle(Txn& txn) = 0;
  Response handle(const Request& req);
};

using OcpMasterPort = Port<ocp_tl_master_if>;
using OcpSlavePort = Port<ocp_tl_slave_if>;

}  // namespace stlm::ocp
