#pragma once
// OCP transaction-level interfaces.
//
//   * ocp_tl_master_if — what a master-side port binds to: a blocking
//     transport() that carries one request to completion. CAMs, TL
//     channels, pin-level master adapters and accessor stacks all expose
//     this, so a PE refined from SHIP to OCP never changes again while
//     the fabric below it is swapped (the paper's exploration story).
//   * ocp_tl_slave_if  — the device-side callback a target implements.
//     handle() may consume simulated time with wait() to model wait
//     states.
//
// The virtual hot path moves a pooled stlm::Txn by reference through
// every layer — no payload copies, no per-transaction events or heap
// allocation. The Request/Response overloads are non-virtual convenience
// shims for edge code; they route through a pooled descriptor and copy at
// the boundary only. Implementations that are poked directly by tests
// (rather than through this interface) should `using` the base overloads
// so both spellings stay visible.

#include <optional>

#include "kernel/module.hpp"
#include "kernel/time.hpp"
#include "ocp/types.hpp"

namespace stlm::ocp {

class ocp_tl_master_if {
public:
  virtual ~ocp_tl_master_if() = default;
  virtual void transport(Txn& txn) = 0;
  Response transport(const Request& req);
};

class ocp_tl_slave_if {
public:
  virtual ~ocp_tl_slave_if() = default;
  virtual void handle(Txn& txn) = 0;
  Response handle(const Request& req);

  // --- fast-target contract (kernel fast path) ---------------------------
  //
  // A CAM may bypass its grant-engine process for an uncontended access
  // and service the target inline from the initiator's coroutine. That
  // is only legal for targets whose handle() never blocks mid-state —
  // i.e. pure functions of (state, txn, current time) plus an optional
  // leading service latency. Such a target opts in by overriding
  // fast_capable() to return true, and fast_handle() to perform the
  // access *without waiting* and return the service latency the caller
  // must account for (the engine path's handle() would have wait()ed
  // it).
  //
  // fast_handle() is invoked at the same simulated time the engine
  // path would have invoked handle(): after bus occupancy, before the
  // target's own service latency elapses. Any events it notifies are
  // therefore indistinguishable from the slow path. It must not call
  // wait() and must always complete the txn (error responses included) —
  // eligibility is decided entirely before side effects happen, so
  // there is no fallback after this point.
  virtual bool fast_capable() const { return false; }
  virtual Time fast_handle(Txn& txn) {
    handle(txn);
    return Time::zero();
  }

  // Stronger, optional contract on top of fast_capable(): a target whose
  // service latency is one constant — independent of simulated time,
  // transaction content and access history (the access-cycles-table
  // case) — returns it here. The CAM may then invoke fast_handle() at
  // grant time rather than at the effective access instant and schedule
  // one merged occupancy+latency completion instead of two stages. Only
  // legal when fast_handle() neither reads the clock, evolves timing
  // state, nor notifies events: the reordering is unobservable solely
  // because the bus is held for the whole occupancy+latency span.
  // Targets that cannot promise this keep the nullopt default and get
  // the effective-access-instant invocation.
  virtual std::optional<Time> fast_fixed_latency() const {
    return std::nullopt;
  }
};

using OcpMasterPort = Port<ocp_tl_master_if>;
using OcpSlavePort = Port<ocp_tl_slave_if>;

}  // namespace stlm::ocp
