#pragma once
// OCP transaction-level interfaces.
//
//   * ocp_tl_master_if — what a master-side port binds to: a blocking
//     transport() that carries one request to completion. CAMs, TL
//     channels, pin-level master adapters and accessor stacks all expose
//     this, so a PE refined from SHIP to OCP never changes again while
//     the fabric below it is swapped (the paper's exploration story).
//   * ocp_tl_slave_if  — the device-side callback a target implements.
//     handle() may consume simulated time with wait() to model wait
//     states.

#include "kernel/module.hpp"
#include "ocp/types.hpp"

namespace stlm::ocp {

class ocp_tl_master_if {
public:
  virtual ~ocp_tl_master_if() = default;
  virtual Response transport(const Request& req) = 0;
};

class ocp_tl_slave_if {
public:
  virtual ~ocp_tl_slave_if() = default;
  virtual Response handle(const Request& req) = 0;
};

using OcpMasterPort = Port<ocp_tl_master_if>;
using OcpSlavePort = Port<ocp_tl_slave_if>;

}  // namespace stlm::ocp
