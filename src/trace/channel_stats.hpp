#pragma once
// Per-channel latency distributions derived from a TxnLogger.
//
// The mean/max pair in TxnLogger::Summary cannot rank platforms whose
// split engines reorder completions: a split bus often *improves* the
// mean while a handful of capacity-starved transactions blow out the
// tail. LatencyDist carries the full picture per channel — exact
// nearest-rank percentiles (p50/p95/p99), the queueing/service split
// (queue = grant − issue, service = completion − grant), and a
// trace::Histogram of the latency shape for reports.
//
// All numbers are derived purely from recorded timestamps, so they are
// bit-identical run-to-run and across sweep vs. sweep_parallel like
// every other simulated metric.

#include <ostream>
#include <string>
#include <vector>

#include "trace/stats.hpp"
#include "trace/txn_log.hpp"

namespace stlm::trace {

// Nearest-rank percentile (pct in (0, 100]) over `samples`. Partially
// sorts the buffer in place; returns 0 for an empty buffer.
double percentile(std::vector<double>& samples, double pct);

// Latency distribution over a set of records.
struct LatencyDist {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double mean_ns = 0.0;
  double max_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  // Queueing delay (issue -> grant) and service span (grant -> end).
  double mean_queue_ns = 0.0;
  double max_queue_ns = 0.0;
  double p95_queue_ns = 0.0;
  double mean_service_ns = 0.0;
  // Failure-semantics tallies (schema v3 record fields): final-status
  // counts and how many records settled only after at least one retry.
  // All zero on channels without failure semantics.
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retried = 0;
  // Latency shape over [0, max_ns] (kHistBins fixed-width bins).
  Histogram hist{0.0, 1.0, 1};

  static constexpr std::size_t kHistBins = 16;
};

// Distribution over every record in the log.
LatencyDist latency_dist(const std::vector<TxnRecord>& records);

struct ChannelStats {
  std::string channel;
  LatencyDist dist;
};

// One ChannelStats per channel that logged at least one record, in
// interning order (wiring order — deterministic for a given build).
std::vector<ChannelStats> per_channel_stats(const TxnLogger& log);

// Aligned per-channel table: count, bytes, mean/p50/p95/p99 latency,
// mean queueing delay, mean service span, error/timeout/retry tallies.
// Restores stream formatting.
void print_channel_table(std::ostream& os,
                         const std::vector<ChannelStats>& rows);

}  // namespace stlm::trace
