#include "trace/vcd.hpp"

#include <algorithm>

#include "kernel/report.hpp"

namespace stlm::trace {

VcdWriter::VcdWriter(Simulator& sim, const std::string& path) : out_(path) {
  if (!out_) throw SimulationError("cannot open VCD file: " + path);
  sim.add_post_delta_hook([this](Time now) { on_delta(now); });
}

VcdWriter::~VcdWriter() { out_.flush(); }

void VcdWriter::add_entry(std::string name, int width,
                          std::function<std::uint64_t()> sampler) {
  STLM_ASSERT(!header_written_, "VCD signals must be added before running");
  STLM_ASSERT(width >= 1 && width <= 64, "VCD width out of range: " + name);
  // VCD identifiers must be unique; names become GTKWave-safe.
  std::replace(name.begin(), name.end(), ' ', '_');
  entries_.push_back(Entry{std::move(name), make_id(entries_.size()), width,
                           std::move(sampler), 0, false});
}

std::string VcdWriter::make_id(std::size_t index) {
  // Printable identifier alphabet '!'(33) .. '~'(126).
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

void VcdWriter::write_header() {
  header_written_ = true;
  out_ << "$timescale 1ps $end\n$scope module shiptlm $end\n";
  for (const auto& e : entries_) {
    out_ << "$var wire " << e.width << " " << e.id << " " << e.name
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::emit(const Entry& e, std::uint64_t value) {
  if (e.width == 1) {
    out_ << (value & 1) << e.id << "\n";
    return;
  }
  out_ << "b";
  bool started = false;
  for (int bit = e.width - 1; bit >= 0; --bit) {
    const bool v = (value >> bit) & 1;
    if (v) started = true;
    if (started || bit == 0) out_ << (v ? '1' : '0');
  }
  out_ << " " << e.id << "\n";
}

void VcdWriter::on_delta(Time now) {
  if (!header_written_) write_header();
  const std::uint64_t ps = now.femtoseconds() / 1000;
  bool stamped = false;
  for (auto& e : entries_) {
    const std::uint64_t v = e.sample();
    if (e.valid && v == e.last) continue;
    if (!stamped && (!any_emitted_ || ps != last_emitted_ps_)) {
      out_ << "#" << ps << "\n";
      last_emitted_ps_ = ps;
      any_emitted_ = true;
      stamped = true;
    } else if (!stamped) {
      stamped = true;  // same timestamp, already emitted
    }
    e.last = v;
    e.valid = true;
    emit(e, v);
  }
}

}  // namespace stlm::trace
