#include "trace/txn_log.hpp"

#include <algorithm>

namespace stlm::trace {

const char* txn_kind_name(TxnKind k) {
  switch (k) {
    case TxnKind::Send: return "send";
    case TxnKind::Request: return "request";
    case TxnKind::Reply: return "reply";
    case TxnKind::Read: return "read";
    case TxnKind::Write: return "write";
  }
  return "?";
}

std::uint32_t TxnLogger::intern(const std::string& channel) {
  const auto it = std::find(channels_.begin(), channels_.end(), channel);
  if (it != channels_.end()) {
    return static_cast<std::uint32_t>(it - channels_.begin());
  }
  channels_.push_back(channel);
  return static_cast<std::uint32_t>(channels_.size() - 1);
}

const std::string& TxnLogger::channel_name(std::uint32_t id) const {
  static const std::string unknown = "?";
  return id < channels_.size() ? channels_[id] : unknown;
}

void TxnLogger::record(std::uint32_t channel_id, TxnKind kind,
                       std::uint64_t txn_id, std::uint64_t bytes, Time start,
                       Time end) {
  if (!enabled_) return;
  records_.push_back(TxnRecord{channel_id, kind, txn_id, bytes, start, end});
}

void TxnLogger::record(const std::string& channel, TxnKind kind,
                       std::uint64_t bytes, Time start, Time end) {
  if (!enabled_) return;
  record(intern(channel), kind, /*txn_id=*/0, bytes, start, end);
}

TxnLogger::Summary TxnLogger::summarize() const {
  Summary s;
  double total_ns = 0.0;
  for (const auto& r : records_) {
    ++s.count;
    s.bytes += r.bytes;
    const double lat = (r.end - r.start).to_ns();
    total_ns += lat;
    if (lat > s.max_latency_ns) s.max_latency_ns = lat;
  }
  if (s.count) s.mean_latency_ns = total_ns / static_cast<double>(s.count);
  return s;
}

void TxnLogger::dump_csv(std::ostream& os) const {
  os << "channel,kind,bytes,start_ns,end_ns,latency_ns,txn\n";
  for (const auto& r : records_) {
    os << channel_name(r.channel) << "," << txn_kind_name(r.kind) << ","
       << r.bytes << "," << r.start.to_ns() << "," << r.end.to_ns() << ","
       << (r.end - r.start).to_ns() << "," << r.txn << "\n";
  }
}

}  // namespace stlm::trace
