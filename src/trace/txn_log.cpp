#include "trace/txn_log.hpp"

#include <charconv>

#include "kernel/report.hpp"

namespace stlm::trace {

const char* txn_kind_name(TxnKind k) {
  switch (k) {
    case TxnKind::Send: return "send";
    case TxnKind::Request: return "request";
    case TxnKind::Reply: return "reply";
    case TxnKind::Read: return "read";
    case TxnKind::Write: return "write";
  }
  return "?";
}

bool txn_kind_from_name(const std::string& name, TxnKind& out) {
  for (TxnKind k : {TxnKind::Send, TxnKind::Request, TxnKind::Reply,
                    TxnKind::Read, TxnKind::Write}) {
    if (name == txn_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

const char* txn_status_name(TxnStatus s) {
  switch (s) {
    case TxnStatus::Ok: return "ok";
    case TxnStatus::Error: return "error";
    case TxnStatus::Timeout: return "timeout";
    case TxnStatus::Aborted: return "aborted";
  }
  return "?";
}

bool txn_status_from_name(const std::string& name, TxnStatus& out) {
  for (TxnStatus s : {TxnStatus::Ok, TxnStatus::Error, TxnStatus::Timeout,
                      TxnStatus::Aborted}) {
    if (name == txn_status_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

std::uint32_t TxnLogger::intern(const std::string& channel) {
  if (const auto it = channel_index_.find(channel);
      it != channel_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(channels_.size());
  channels_.push_back(channel);
  channel_index_.emplace(channel, id);
  return id;
}

const std::string& TxnLogger::channel_name(std::uint32_t id) const {
  static const std::string unknown = "?";
  return id < channels_.size() ? channels_[id] : unknown;
}

void TxnLogger::record(std::uint32_t channel_id, TxnKind kind,
                       std::uint64_t txn_id, std::uint64_t bytes, Time start,
                       Time end) {
  // Phase-less layer: the row's grant/data stamps collapse onto issue.
  record(channel_id, kind, txn_id, bytes, start, end, start, start);
}

void TxnLogger::record(std::uint32_t channel_id, TxnKind kind,
                       std::uint64_t txn_id, std::uint64_t bytes, Time start,
                       Time end, Time grant, Time data, TxnStatus status,
                       std::uint32_t retries) {
  if (!enabled_) return;
  records_.push_back(TxnRecord{channel_id, kind, txn_id, bytes, start, end,
                               grant, data, status, retries});
}

void TxnLogger::record(const std::string& channel, TxnKind kind,
                       std::uint64_t bytes, Time start, Time end) {
  if (!enabled_) return;
  record(intern(channel), kind, /*txn_id=*/0, bytes, start, end);
}

void TxnLogger::record(const std::string& channel, TxnKind kind,
                       std::uint64_t bytes, Time start, Time end, Time grant,
                       Time data) {
  if (!enabled_) return;
  record(intern(channel), kind, /*txn_id=*/0, bytes, start, end, grant, data);
}

TxnLogger::Summary TxnLogger::summarize() const {
  Summary s;
  double total_ns = 0.0, total_queue = 0.0, total_service = 0.0;
  for (const auto& r : records_) {
    ++s.count;
    s.bytes += r.bytes;
    const double lat = r.latency_ns();
    const double queue = r.queue_ns();
    const double service = r.service_ns();
    total_ns += lat;
    total_queue += queue;
    total_service += service;
    if (lat > s.max_latency_ns) s.max_latency_ns = lat;
    if (queue > s.max_queue_ns) s.max_queue_ns = queue;
    if (service > s.max_service_ns) s.max_service_ns = service;
  }
  if (s.count) {
    const auto n = static_cast<double>(s.count);
    s.mean_latency_ns = total_ns / n;
    s.mean_queue_ns = total_queue / n;
    s.mean_service_ns = total_service / n;
  }
  return s;
}

namespace {

// The header line is the format version. v3 adds the failure-semantics
// columns; v2 (phase columns, no status) loads with status = ok and
// retries = 0; v1 (pre-phase traces) additionally defaults
// grant = data = start.
constexpr const char* kCsvHeaderV3 =
    "channel,kind,bytes,start_fs,grant_fs,data_fs,end_fs,latency_ns,txn,"
    "status,retries";
constexpr const char* kCsvHeaderV2 =
    "channel,kind,bytes,start_fs,grant_fs,data_fs,end_fs,latency_ns,txn";
constexpr const char* kCsvHeaderV1 =
    "channel,kind,bytes,start_fs,end_fs,latency_ns,txn";

// RFC4180 quoting: only names carrying a delimiter, quote, or line break
// get wrapped (quotes inside doubled), so typical dumps stay byte-for-byte
// what they were before escaping existed.
void write_csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

// Split one CSV line (no trailing newline) into fields, honouring quoting.
// Returns false on a malformed line (unbalanced quote, garbage after a
// closing quote) with `err` describing the problem.
bool split_csv_line(const std::string& line, std::vector<std::string>& out,
                    std::string& err) {
  out.clear();
  std::string field;
  bool quoted = false;   // inside an open quote
  bool was_quoted = false;  // current field started with a quote
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!field.empty() || was_quoted) {
        err = "unexpected quote inside unquoted field";
        return false;
      }
      quoted = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    if (was_quoted) {
      err = "garbage after closing quote";
      return false;
    }
    field += c;
    ++i;
  }
  if (quoted) {
    err = "unterminated quote";
    return false;
  }
  out.push_back(std::move(field));
  return true;
}

// Read one logical CSV record: a newline inside an open quote belongs to
// the record (dump_csv writes channel names containing line breaks
// verbatim inside quotes), the first newline outside quotes terminates
// it. A carriage return directly before the terminator (or EOF) is
// treated as part of the line ending. Returns false at end of input.
bool read_csv_record(std::istream& is, std::string& out) {
  out.clear();
  bool quoted = false;
  bool any = false;
  int c;
  while ((c = is.get()) != std::char_traits<char>::eof()) {
    any = true;
    if (c == '\n' && !quoted) {
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return true;
    }
    if (c == '"') quoted = !quoted;  // doubled quotes toggle twice: no-op
    out += static_cast<char>(c);
  }
  if (!any) return false;
  if (!quoted && !out.empty() && out.back() == '\r') out.pop_back();
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out);
  return res.ec == std::errc{} && res.ptr == last;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out);
  return res.ec == std::errc{} && res.ptr == last;
}

[[noreturn]] void csv_error(std::size_t line_no, const std::string& what) {
  throw SimulationError("TxnLogger::load_csv: line " +
                        std::to_string(line_no) + ": " + what);
}

}  // namespace

void TxnLogger::dump_csv(std::ostream& os) const {
  os << kCsvHeaderV3 << "\n";
  for (const auto& r : records_) {
    write_csv_field(os, channel_name(r.channel));
    os << "," << txn_kind_name(r.kind) << "," << r.bytes << ","
       << r.start.femtoseconds() << "," << r.grant.femtoseconds() << ","
       << r.data.femtoseconds() << "," << r.end.femtoseconds() << ","
       << (r.end - r.start).to_ns() << "," << r.txn << ","
       << txn_status_name(r.status) << "," << r.retries << "\n";
  }
}

void TxnLogger::load_csv(std::istream& is) {
  records_.clear();
  channels_.clear();
  channel_index_.clear();
  try {
    load_csv_impl(is);
  } catch (...) {
    records_.clear();
    channels_.clear();
    channel_index_.clear();
    throw;
  }
}

void TxnLogger::load_csv_impl(std::istream& is) {
  std::string line;
  if (!read_csv_record(is, line)) {
    throw SimulationError("TxnLogger::load_csv: empty input (missing header)");
  }
  const bool v3 = line == kCsvHeaderV3;
  const bool v2 = line == kCsvHeaderV2;
  if (!v3 && !v2 && line != kCsvHeaderV1) {
    throw SimulationError(
        "TxnLogger::load_csv: unrecognized header '" + line +
        "' (expected '" + kCsvHeaderV3 + "', the v2 header '" +
        kCsvHeaderV2 + "', or the v1 header '" + kCsvHeaderV1 + "')");
  }
  const std::size_t n_fields = v3 ? 11 : (v2 ? 9 : 7);

  std::vector<std::string> fields;
  std::string err;
  std::size_t line_no = 1;
  while (read_csv_record(is, line)) {
    ++line_no;
    if (line.empty()) continue;  // tolerate a trailing blank line
    if (!split_csv_line(line, fields, err)) csv_error(line_no, err);
    if (fields.size() != n_fields) {
      csv_error(line_no, "expected " + std::to_string(n_fields) +
                             " fields, got " + std::to_string(fields.size()));
    }
    TxnRecord r{};
    r.channel = intern(fields[0]);
    if (!txn_kind_from_name(fields[1], r.kind)) {
      csv_error(line_no, "unknown kind '" + fields[1] + "'");
    }
    // Field layout after (channel, kind, bytes):
    //   v3: start_fs grant_fs data_fs end_fs latency_ns txn status retries
    //   v2: start_fs grant_fs data_fs end_fs latency_ns txn
    //   v1: start_fs end_fs latency_ns txn   (phases default to start)
    std::uint64_t bytes = 0, start_fs = 0, grant_fs = 0, data_fs = 0,
                  end_fs = 0, txn = 0;
    if (!parse_u64(fields[2], bytes)) {
      csv_error(line_no, "bad bytes '" + fields[2] + "'");
    }
    if (!parse_u64(fields[3], start_fs)) {
      csv_error(line_no, "bad start_fs '" + fields[3] + "'");
    }
    std::size_t f = 4;
    if (v3 || v2) {
      if (!parse_u64(fields[4], grant_fs)) {
        csv_error(line_no, "bad grant_fs '" + fields[4] + "'");
      }
      if (!parse_u64(fields[5], data_fs)) {
        csv_error(line_no, "bad data_fs '" + fields[5] + "'");
      }
      f = 6;
    } else {
      grant_fs = start_fs;
      data_fs = start_fs;
    }
    if (!parse_u64(fields[f], end_fs)) {
      csv_error(line_no, "bad end_fs '" + fields[f] + "'");
    }
    double latency_ns = 0.0;
    if (!parse_double(fields[f + 1], latency_ns)) {
      csv_error(line_no, "bad latency_ns '" + fields[f + 1] + "'");
    }
    if (!parse_u64(fields[f + 2], txn)) {
      csv_error(line_no, "bad txn '" + fields[f + 2] + "'");
    }
    TxnStatus status = TxnStatus::Ok;
    std::uint64_t retries = 0;
    if (v3) {
      if (!txn_status_from_name(fields[f + 3], status)) {
        csv_error(line_no, "unknown status '" + fields[f + 3] + "'");
      }
      if (!parse_u64(fields[f + 4], retries)) {
        csv_error(line_no, "bad retries '" + fields[f + 4] + "'");
      }
    }
    if (end_fs < start_fs) {
      csv_error(line_no, "end_fs precedes start_fs");
    }
    if (grant_fs < start_fs || data_fs < grant_fs || end_fs < data_fs) {
      csv_error(line_no,
                "phase order violated (need start <= grant <= data <= end)");
    }
    r.bytes = bytes;
    r.start = Time::fs(start_fs);
    r.grant = Time::fs(grant_fs);
    r.data = Time::fs(data_fs);
    r.end = Time::fs(end_fs);
    r.txn = txn;
    r.status = status;
    r.retries = static_cast<std::uint32_t>(retries);
    records_.push_back(r);
  }
}

}  // namespace stlm::trace
