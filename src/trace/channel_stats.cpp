#include "trace/channel_stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>

namespace stlm::trace {

double percentile(std::vector<double>& samples, double pct) {
  if (samples.empty()) return 0.0;
  if (!(pct > 0.0)) pct = 0.0;  // also catches NaN
  if (pct > 100.0) pct = 100.0;
  // Nearest-rank: the smallest value with at least pct% of samples at or
  // below it. rank is 1-based; pct == 0 degenerates to the minimum.
  const auto n = samples.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  auto nth = samples.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

LatencyDist latency_dist(const std::vector<TxnRecord>& records) {
  LatencyDist d;
  if (records.empty()) return d;

  std::vector<double> lat, queue;
  lat.reserve(records.size());
  queue.reserve(records.size());
  double sum_lat = 0.0, sum_queue = 0.0, sum_service = 0.0;
  for (const auto& r : records) {
    ++d.count;
    d.bytes += r.bytes;
    const double l = r.latency_ns();
    const double q = r.queue_ns();
    lat.push_back(l);
    queue.push_back(q);
    sum_lat += l;
    sum_queue += q;
    sum_service += r.service_ns();
    if (l > d.max_ns) d.max_ns = l;
    if (q > d.max_queue_ns) d.max_queue_ns = q;
    switch (r.status) {
      case TxnStatus::Error: ++d.errors; break;
      case TxnStatus::Timeout: ++d.timeouts; break;
      case TxnStatus::Aborted: ++d.aborted; break;
      case TxnStatus::Ok: break;
    }
    if (r.retries > 0) ++d.retried;
  }
  const auto n = static_cast<double>(d.count);
  d.mean_ns = sum_lat / n;
  d.mean_queue_ns = sum_queue / n;
  d.mean_service_ns = sum_service / n;
  d.p50_ns = percentile(lat, 50.0);
  d.p95_ns = percentile(lat, 95.0);
  d.p99_ns = percentile(lat, 99.0);
  d.p95_queue_ns = percentile(queue, 95.0);

  d.hist = Histogram(0.0, d.max_ns, LatencyDist::kHistBins);
  for (double l : lat) d.hist.add(l);
  return d;
}

std::vector<ChannelStats> per_channel_stats(const TxnLogger& log) {
  // Bucket the records per channel id, then build one dist per bucket in
  // id (interning) order.
  std::map<std::uint32_t, std::vector<TxnRecord>> by_channel;
  for (const auto& r : log.records()) by_channel[r.channel].push_back(r);

  std::vector<ChannelStats> out;
  out.reserve(by_channel.size());
  for (auto& [id, records] : by_channel) {
    out.push_back(ChannelStats{log.channel_name(id), latency_dist(records)});
  }
  return out;
}

void print_channel_table(std::ostream& os,
                         const std::vector<ChannelStats>& rows) {
  ScopedOstreamFormat guard(os);
  std::size_t name_w = 8;
  for (const auto& r : rows) name_w = std::max(name_w, r.channel.size());
  const int nw = static_cast<int>(name_w + 2);
  os << std::left << std::setw(nw) << "channel" << std::right << std::setw(8)
     << "txns" << std::setw(12) << "bytes" << std::setw(12) << "mean_ns"
     << std::setw(12) << "p50_ns" << std::setw(12) << "p95_ns" << std::setw(12)
     << "p99_ns" << std::setw(12) << "queue_ns" << std::setw(12) << "svc_ns"
     << std::setw(8) << "err" << std::setw(8) << "tmo" << std::setw(8) << "abrt"
     << std::setw(8) << "rty"
     << "\n";
  os << std::string(static_cast<std::size_t>(nw) + 124, '-') << "\n";
  for (const auto& r : rows) {
    const LatencyDist& d = r.dist;
    os << std::left << std::setw(nw) << r.channel << std::right << std::setw(8)
       << d.count << std::setw(12) << d.bytes << std::fixed
       << std::setprecision(1) << std::setw(12) << d.mean_ns << std::setw(12)
       << d.p50_ns << std::setw(12) << d.p95_ns << std::setw(12) << d.p99_ns
       << std::setw(12) << d.mean_queue_ns << std::setw(12)
       << d.mean_service_ns << std::setw(8) << d.errors << std::setw(8)
       << d.timeouts << std::setw(8) << d.aborted << std::setw(8) << d.retried
       << "\n";
  }
}

}  // namespace stlm::trace
