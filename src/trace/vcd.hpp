#pragma once
// VCD (Value Change Dump) waveform writer.
//
// Signals are registered before the simulation runs; the writer samples
// them after every delta cycle (via the simulator's post-delta hook) and
// emits changes with picosecond timestamps. Output is viewable in GTKWave.

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "kernel/signal.hpp"
#include "kernel/simulator.hpp"
#include "kernel/time.hpp"

namespace stlm::trace {

class VcdWriter {
public:
  // Opens `path` for writing; the header is emitted on first sample.
  VcdWriter(Simulator& sim, const std::string& path);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  // Register a signal under `name` (defaults to the signal's own name).
  // Supported: bool (1-bit wire) and integral types (vector wires).
  template <class T>
  void add(Signal<T>& sig, std::string name = "", int width = 8 * sizeof(T)) {
    static_assert(std::is_integral_v<T>, "VCD tracing needs integral signals");
    if (name.empty()) name = sig.name();
    if constexpr (std::is_same_v<T, bool>) width = 1;
    add_entry(std::move(name), width,
              [&sig]() { return static_cast<std::uint64_t>(sig.read()); });
  }

  // Register an arbitrary sampled value (e.g. an FSM state).
  void add_sampled(std::string name, int width,
                   std::function<std::uint64_t()> sampler) {
    add_entry(std::move(name), width, std::move(sampler));
  }

  std::size_t signal_count() const { return entries_.size(); }

  // Push buffered output to disk (also done on destruction).
  void flush() { out_.flush(); }

private:
  struct Entry {
    std::string name;
    std::string id;      // VCD short identifier
    int width;
    std::function<std::uint64_t()> sample;
    std::uint64_t last;
    bool valid;          // last holds a sampled value
  };

  void add_entry(std::string name, int width,
                 std::function<std::uint64_t()> sampler);
  void write_header();
  void on_delta(Time now);
  void emit(const Entry& e, std::uint64_t value);
  static std::string make_id(std::size_t index);

  std::ofstream out_;
  std::vector<Entry> entries_;
  bool header_written_ = false;
  std::uint64_t last_emitted_ps_ = 0;
  bool any_emitted_ = false;
};

}  // namespace stlm::trace
