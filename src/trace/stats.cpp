#include "trace/stats.hpp"

#include <iomanip>

namespace stlm::trace {

void StatSet::report(std::ostream& os, const std::string& title) const {
  ScopedOstreamFormat guard(os);
  os << "=== " << title << " ===\n";
  for (const auto& [name, c] : counters_) {
    os << "  " << std::left << std::setw(32) << name << " " << c << "\n";
  }
  for (const auto& [name, a] : accs_) {
    os << "  " << std::left << std::setw(32) << name << " n=" << a.count()
       << " mean=" << a.mean() << " min=" << a.min() << " max=" << a.max()
       << " sd=" << a.stddev() << "\n";
  }
}

}  // namespace stlm::trace
