#pragma once
// Transaction logger: every communication layer (SHIP channels, OCP
// channels, CAMs, the HW/SW interface) can record begin/end of
// transactions here. The log powers the per-architecture tables produced
// by the exploration engine and the CSV dumps used in EXPERIMENTS.md.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "trace/stats.hpp"

namespace stlm::trace {

enum class TxnKind : std::uint8_t {
  Send,      // SHIP one-way
  Request,   // SHIP round-trip, request half
  Reply,     // SHIP round-trip, reply half
  Read,      // OCP/bus read
  Write,     // OCP/bus write
};

const char* txn_kind_name(TxnKind k);

struct TxnRecord {
  std::string channel;
  TxnKind kind;
  std::uint64_t bytes;
  Time start;
  Time end;
};

class TxnLogger {
public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(const std::string& channel, TxnKind kind, std::uint64_t bytes,
              Time start, Time end);

  const std::vector<TxnRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  // Aggregate view: count, bytes, mean/max latency in ns.
  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    double mean_latency_ns = 0.0;
    double max_latency_ns = 0.0;
  };
  Summary summarize() const;

  void dump_csv(std::ostream& os) const;

private:
  bool enabled_ = true;
  std::vector<TxnRecord> records_;
};

}  // namespace stlm::trace
