#pragma once
// Transaction logger: every communication layer (SHIP channels, OCP
// channels, CAMs, the HW/SW interface) can record begin/end of
// transactions here. The log powers the per-architecture tables produced
// by the exploration engine and the CSV dumps used in EXPERIMENTS.md.
//
// Hot-path design: channels intern their name once (intern()) and then
// record fixed-width rows only — a record carries the interned channel
// id and the pooled transaction's id instead of copying strings per
// transaction.

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/time.hpp"
#include "trace/stats.hpp"

namespace stlm::trace {

enum class TxnKind : std::uint8_t {
  Send,      // SHIP one-way
  Request,   // SHIP round-trip, request half
  Reply,     // SHIP round-trip, reply half
  Read,      // OCP/bus read
  Write,     // OCP/bus write
};

const char* txn_kind_name(TxnKind k);
// Inverse of txn_kind_name. Returns false if `name` is no known kind.
bool txn_kind_from_name(const std::string& name, TxnKind& out);

// Final transaction outcome (schema v3). Mirrors the completed half of
// stlm::Txn::Status — a logged row is by definition no longer Pending.
enum class TxnStatus : std::uint8_t {
  Ok,
  Error,    // target (or injector) answered with an error response
  Timeout,  // completed, but after its armed watchdog deadline
  Aborted,  // initiator's retry policy exhausted its budget and gave up
};

const char* txn_status_name(TxnStatus s);
// Inverse of txn_status_name. Returns false if `name` is no known status.
bool txn_status_from_name(const std::string& name, TxnStatus& out);

struct TxnRecord {
  std::uint32_t channel;  // interned channel id (see TxnLogger::intern)
  TxnKind kind;
  std::uint64_t txn;      // stlm::Txn::id of the pooled descriptor (0 = n/a)
  std::uint64_t bytes;
  Time start;             // issue: the initiator handed the txn to the layer
  Time end;               // completion visible to the initiator
  // Phase timestamps (schema v2). Layers without distinguishable phases
  // (SHIP channels, point-to-point OCP TL) record grant == data == start,
  // which keeps their queueing delay at zero by construction. Split bus
  // engines diverge them: grant is when arbitration was won, data is when
  // the response claimed the data channel — on an OoO bus the order of
  // `end` across records no longer follows the order of `grant`.
  Time grant;
  Time data;
  // Failure semantics (schema v3): the row's final outcome and how many
  // re-issues preceded this attempt (0 = first issue). Layers without
  // failure semantics record Ok/0 by construction.
  TxnStatus status = TxnStatus::Ok;
  std::uint32_t retries = 0;

  double latency_ns() const { return (end - start).to_ns(); }
  // Queueing delay: issue -> grant (arbitration / outstanding-cap wait).
  double queue_ns() const { return (grant - start).to_ns(); }
  // Service span: grant -> completion (bus occupancy + target service).
  double service_ns() const { return (end - grant).to_ns(); }
};

class TxnLogger {
public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Register (or look up) a channel name; the returned id is stable for
  // the logger's lifetime. Channels call this once at wiring time.
  std::uint32_t intern(const std::string& channel);
  const std::string& channel_name(std::uint32_t id) const;
  // Number of interned channels; valid ids are [0, channel_count()).
  // Lets consumers classify channels once instead of per record.
  std::uint32_t channel_count() const {
    return static_cast<std::uint32_t>(channels_.size());
  }

  // Hot path: fixed-width row, no string traffic. The phase-less
  // overload records grant == data == start (no distinguishable phases
  // on that layer); the phase-accurate overload carries the grant and
  // data-phase timestamps stamped by the CAM engines.
  void record(std::uint32_t channel_id, TxnKind kind, std::uint64_t txn_id,
              std::uint64_t bytes, Time start, Time end);
  void record(std::uint32_t channel_id, TxnKind kind, std::uint64_t txn_id,
              std::uint64_t bytes, Time start, Time end, Time grant,
              Time data, TxnStatus status = TxnStatus::Ok,
              std::uint32_t retries = 0);
  // Convenience overload for edge/test code; interns per call.
  void record(const std::string& channel, TxnKind kind, std::uint64_t bytes,
              Time start, Time end);
  // Phase-accurate convenience overload (interns per call).
  void record(const std::string& channel, TxnKind kind, std::uint64_t bytes,
              Time start, Time end, Time grant, Time data);

  const std::vector<TxnRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  // Aggregate view. `mean/max_latency_ns` are the end-to-end
  // issue→completion spans (unchanged definition). The queue/service
  // split decomposes that end-to-end latency per record:
  //
  //   latency = queue (issue→grant) + service (grant→completion)
  //
  // On a split bus a deep outstanding window inflates queue while
  // service stays flat — compare service, not total latency, when asking
  // whether split mode made the bus itself slower.
  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    double mean_latency_ns = 0.0;
    double max_latency_ns = 0.0;
    double mean_queue_ns = 0.0;
    double max_queue_ns = 0.0;
    double mean_service_ns = 0.0;
    double max_service_ns = 0.0;
  };
  Summary summarize() const;

  // CSV schema v3 (one header line, then one line per record):
  //
  //   channel,kind,bytes,start_fs,grant_fs,data_fs,end_fs,latency_ns,txn,
  //   status,retries
  //
  // Timestamps are integer femtoseconds, so dump_csv -> load_csv
  // round-trips records bit-identically including the phase columns;
  // latency_ns is a derived human-readable column that load_csv validates
  // syntactically but does not store. `status` is a txn_status_name
  // (ok/error/timeout/aborted), `retries` the attempt's re-issue count.
  // Channel names containing commas, quotes, or newlines are
  // RFC4180-quoted.
  //
  // The header line doubles as the format version: load_csv also accepts
  // the v2 header (without status/retries, defaulted to ok/0) and the v1
  // header (channel,kind,bytes,start_fs,end_fs,latency_ns,txn; phase
  // columns defaulted to grant = data = start), so traces captured before
  // either schema extension stay loadable.
  void dump_csv(std::ostream& os) const;

  // Replace this logger's records (and channel table) with the contents
  // of a dump_csv stream (either schema version). Validates the header
  // and every row (including phase ordering start <= grant <= data <=
  // end); throws SimulationError naming the offending line and field on
  // malformed input, leaving the logger empty.
  void load_csv(std::istream& is);

private:
  void load_csv_impl(std::istream& is);

  bool enabled_ = true;
  std::vector<std::string> channels_;
  std::unordered_map<std::string, std::uint32_t> channel_index_;
  std::vector<TxnRecord> records_;
};

// A channel's bound view of a TxnLogger: pairs the logger pointer with
// the channel's interned id so every logging layer carries one member and
// one wiring call instead of repeating the intern boilerplate.
class LogHandle {
public:
  void bind(TxnLogger* log, const std::string& channel) {
    log_ = log;
    if (log_) channel_ = log_->intern(channel);
  }
  explicit operator bool() const { return log_ != nullptr; }
  void record(TxnKind kind, std::uint64_t txn_id, std::uint64_t bytes,
              Time start, Time end) const {
    log_->record(channel_, kind, txn_id, bytes, start, end);
  }
  void record(TxnKind kind, std::uint64_t txn_id, std::uint64_t bytes,
              Time start, Time end, Time grant, Time data,
              TxnStatus status = TxnStatus::Ok,
              std::uint32_t retries = 0) const {
    log_->record(channel_, kind, txn_id, bytes, start, end, grant, data,
                 status, retries);
  }

private:
  TxnLogger* log_ = nullptr;
  std::uint32_t channel_ = 0;
};

}  // namespace stlm::trace
