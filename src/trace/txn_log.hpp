#pragma once
// Transaction logger: every communication layer (SHIP channels, OCP
// channels, CAMs, the HW/SW interface) can record begin/end of
// transactions here. The log powers the per-architecture tables produced
// by the exploration engine and the CSV dumps used in EXPERIMENTS.md.
//
// Hot-path design: channels intern their name once (intern()) and then
// record fixed-width rows only — a record carries the interned channel
// id and the pooled transaction's id instead of copying strings per
// transaction.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "trace/stats.hpp"

namespace stlm::trace {

enum class TxnKind : std::uint8_t {
  Send,      // SHIP one-way
  Request,   // SHIP round-trip, request half
  Reply,     // SHIP round-trip, reply half
  Read,      // OCP/bus read
  Write,     // OCP/bus write
};

const char* txn_kind_name(TxnKind k);

struct TxnRecord {
  std::uint32_t channel;  // interned channel id (see TxnLogger::intern)
  TxnKind kind;
  std::uint64_t txn;      // stlm::Txn::id of the pooled descriptor (0 = n/a)
  std::uint64_t bytes;
  Time start;
  Time end;
};

class TxnLogger {
public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Register (or look up) a channel name; the returned id is stable for
  // the logger's lifetime. Channels call this once at wiring time.
  std::uint32_t intern(const std::string& channel);
  const std::string& channel_name(std::uint32_t id) const;

  // Hot path: fixed-width row, no string traffic.
  void record(std::uint32_t channel_id, TxnKind kind, std::uint64_t txn_id,
              std::uint64_t bytes, Time start, Time end);
  // Convenience overload for edge/test code; interns per call.
  void record(const std::string& channel, TxnKind kind, std::uint64_t bytes,
              Time start, Time end);

  const std::vector<TxnRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  // Aggregate view: count, bytes, mean/max latency in ns.
  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    double mean_latency_ns = 0.0;
    double max_latency_ns = 0.0;
  };
  Summary summarize() const;

  void dump_csv(std::ostream& os) const;

private:
  bool enabled_ = true;
  std::vector<std::string> channels_;
  std::vector<TxnRecord> records_;
};

// A channel's bound view of a TxnLogger: pairs the logger pointer with
// the channel's interned id so every logging layer carries one member and
// one wiring call instead of repeating the intern boilerplate.
class LogHandle {
public:
  void bind(TxnLogger* log, const std::string& channel) {
    log_ = log;
    if (log_) channel_ = log_->intern(channel);
  }
  explicit operator bool() const { return log_ != nullptr; }
  void record(TxnKind kind, std::uint64_t txn_id, std::uint64_t bytes,
              Time start, Time end) const {
    log_->record(channel_, kind, txn_id, bytes, start, end);
  }

private:
  TxnLogger* log_ = nullptr;
  std::uint32_t channel_ = 0;
};

}  // namespace stlm::trace
