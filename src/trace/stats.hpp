#pragma once
// Lightweight statistics used by the CAMs, the HW/SW interface, and the
// exploration engine: scalar accumulators, counters, and named registries
// whose contents render as report tables.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace stlm::trace {

// Restores a stream's formatting state (flags, precision, fill) on scope
// exit. Every report/table printer in the library uses manipulators such
// as std::fixed and std::setprecision; without this guard they would leak
// that state into the caller's stream permanently.
class ScopedOstreamFormat {
public:
  explicit ScopedOstreamFormat(std::ostream& os)
      : os_(os), flags_(os.flags()), precision_(os.precision()),
        fill_(os.fill()) {}
  ~ScopedOstreamFormat() {
    os_.flags(flags_);
    os_.precision(precision_);
    os_.fill(fill_);
  }
  ScopedOstreamFormat(const ScopedOstreamFormat&) = delete;
  ScopedOstreamFormat& operator=(const ScopedOstreamFormat&) = delete;

private:
  std::ostream& os_;
  std::ios_base::fmtflags flags_;
  std::streamsize precision_;
  char fill_;
};

// Streaming accumulator: count / sum / min / max / mean / stddev.
//
// The variance is maintained with Welford's online algorithm: the naive
// sum-of-squares formula cancels catastrophically once the mean dwarfs the
// spread (e.g. nanosecond latencies offset by seconds of simulated time),
// returning 0 or NaN where the true stddev is well-defined.
class Accumulator {
public:
  void add(double v) {
    ++n_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double stddev() const {
    if (n_ < 2) return 0.0;
    const double var = m2_ / static_cast<double>(n_ - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  // Fold another accumulator into this one (Chan's parallel variant of
  // Welford's update). Lets producers accumulate into per-shard
  // accumulators — one per lane/worker, each updated by a single ordered
  // producer — and combine them in a *fixed* shard order at read time,
  // so the folded sums never depend on how the scheduler interleaved the
  // producers (the hazard the determinism auditor flags on shared slots).
  void merge(const Accumulator& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::uint64_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta *
                       (static_cast<double>(n_) * static_cast<double>(o.n_) /
                        static_cast<double>(n));
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
  }

  void reset() { *this = Accumulator{}; }

private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width bin histogram over [lo, hi); out-of-range values clamp into
// the edge bins. Degenerate shapes are repaired at construction: zero bins
// becomes one bin, and a non-increasing range (hi <= lo, or NaN bounds)
// collapses to the unit interval above `lo` — so add() can never divide
// by zero or clamp over an inverted range (both undefined behavior).
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo),
        // Pure comparison — no `hi - lo` arithmetic, which would overflow
        // to inf for valid ranges spanning most of the double domain and
        // misclassify them as degenerate. NaN compares false and repairs.
        hi_(hi > lo ? hi : lo + 1.0),
        counts_(bins ? bins : 1, 0) {}

  void add(double v) {
    // Halved operands keep the span finite even for ranges approaching
    // the full double domain (hi - lo would overflow to inf and send
    // every sample to bin 0).
    const double t = (v * 0.5 - lo_ * 0.5) / (hi_ * 0.5 - lo_ * 0.5);
    // Clamp in floating point *before* the integer conversion: casting a
    // NaN or an out-of-int64-range product is undefined behavior.
    const double bins_d = static_cast<double>(counts_.size());
    double scaled = t * bins_d;
    if (!(scaled > 0.0)) scaled = 0.0;  // also catches NaN
    if (scaled > bins_d - 1.0) scaled = bins_d - 1.0;
    ++counts_[static_cast<std::size_t>(scaled)];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Named scalar statistics, rendered as an aligned two-column table.
class StatSet {
public:
  Accumulator& acc(const std::string& name) { return accs_[name]; }
  void count(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  // Stable reference to a counter's storage (map nodes never move): hot
  // paths look the slot up once and bump it without string hashing.
  std::uint64_t& counter_slot(const std::string& name) {
    return counters_[name];
  }
  std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, Accumulator>& accumulators() const {
    return accs_;
  }
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  void report(std::ostream& os, const std::string& title) const;
  // Zeroes every statistic IN PLACE (keys survive): hot paths cache
  // references to the map nodes via acc()/counter_slot(), so reset must
  // never erase nodes out from under them.
  void reset() {
    for (auto& [name, a] : accs_) a.reset();
    for (auto& [name, v] : counters_) v = 0;
  }

private:
  std::map<std::string, Accumulator> accs_;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace stlm::trace
