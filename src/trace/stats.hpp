#pragma once
// Lightweight statistics used by the CAMs, the HW/SW interface, and the
// exploration engine: scalar accumulators, counters, and named registries
// whose contents render as report tables.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace stlm::trace {

// Streaming accumulator: count / sum / min / max / mean / stddev.
class Accumulator {
public:
  void add(double v) {
    ++n_;
    sum_ += v;
    sum2_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double stddev() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double var =
        (sum2_ - static_cast<double>(n_) * m * m) / static_cast<double>(n_ - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  void reset() { *this = Accumulator{}; }

private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width bin histogram over [lo, hi); out-of-range values clamp into
// the edge bins.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double v) {
    const double t = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Named scalar statistics, rendered as an aligned two-column table.
class StatSet {
public:
  Accumulator& acc(const std::string& name) { return accs_[name]; }
  void count(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  // Stable reference to a counter's storage (map nodes never move): hot
  // paths look the slot up once and bump it without string hashing.
  std::uint64_t& counter_slot(const std::string& name) {
    return counters_[name];
  }
  std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, Accumulator>& accumulators() const {
    return accs_;
  }
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  void report(std::ostream& os, const std::string& title) const;
  // Zeroes every statistic IN PLACE (keys survive): hot paths cache
  // references to the map nodes via acc()/counter_slot(), so reset must
  // never erase nodes out from under them.
  void reset() {
    for (auto& [name, a] : accs_) a.reset();
    for (auto& [name, v] : counters_) v = 0;
  }

private:
  std::map<std::string, Accumulator> accs_;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace stlm::trace
