#include "explore/pool.hpp"

#include <utility>

namespace stlm::expl {

namespace {
// Which pool/worker the current thread is executing a task for, so
// submit() from inside a task can route to the worker's own deque.
thread_local WorkPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;
}  // namespace

WorkPool::WorkPool(unsigned n_threads, ThreadFactory factory)
    : requested_(n_threads > 1 ? n_threads - 1 : 0),
      factory_(std::move(factory)) {
  if (!factory_) {
    factory_ = [](std::function<void()> body) {
      return std::thread(std::move(body));
    };
  }
  queues_.resize(static_cast<std::size_t>(requested_) + 1);
}

void WorkPool::submit(Task t) {
  {
    std::lock_guard<std::mutex> lock(m_);
    ++pending_;
    if (tls_pool == this) {
      queues_[tls_worker].push_back(std::move(t));
    } else {
      inject_.push_back(std::move(t));
    }
  }
  cv_.notify_one();
}

WorkPool::Task WorkPool::take_locked(std::size_t w) {
  // Own deque from the back: LIFO keeps a worker's freshly discovered
  // neighbors (mutation proposals) on the worker that proposed them.
  if (!queues_[w].empty()) {
    Task t = std::move(queues_[w].back());
    queues_[w].pop_back();
    return t;
  }
  if (!inject_.empty()) {
    Task t = std::move(inject_.front());
    inject_.pop_front();
    return t;
  }
  // Steal from the front of a victim: the oldest task is the one the
  // owner is least likely to touch next.
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    const std::size_t victim = (w + i) % queues_.size();
    if (!queues_[victim].empty()) {
      Task t = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      return t;
    }
  }
  return nullptr;
}

void WorkPool::worker_loop(std::size_t w) {
  WorkPool* const prev_pool = tls_pool;
  const std::size_t prev_worker = tls_worker;
  tls_pool = this;
  tls_worker = w;

  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    if (Task t = take_locked(w)) {
      const bool skip = abort_;
      lock.unlock();
      if (!skip) {
        try {
          t();
        } catch (...) {
          std::lock_guard<std::mutex> elock(m_);
          if (!first_error_) first_error_ = std::current_exception();
          abort_ = true;
        }
      }
      t = nullptr;  // destroy the closure outside the relock below
      lock.lock();
      if (--pending_ == 0) cv_.notify_all();
      continue;
    }
    if (pending_ == 0) break;
    // Work exists but is all in flight (or was just submitted); sleep
    // until a submit or the final completion wakes us.
    cv_.wait(lock);
  }

  tls_pool = prev_pool;
  tls_worker = prev_worker;
}

void WorkPool::run() {
  {
    std::lock_guard<std::mutex> lock(m_);
    abort_ = false;
    first_error_ = nullptr;
    spawn_failures_ = 0;
  }
  std::vector<std::thread> helpers;
  helpers.reserve(requested_);
  for (unsigned h = 0; h < requested_; ++h) {
    const std::size_t w = static_cast<std::size_t>(h) + 1;
    try {
      helpers.push_back(factory_([this, w] { worker_loop(w); }));
    } catch (...) {
      // Thread creation can fail (EAGAIN under a thread limit). The
      // caller still participates below, so the run always completes;
      // record the degradation instead of losing it (run_sharded's old
      // partial-pool bug) or letting ~thread() terminate the process.
      std::lock_guard<std::mutex> lock(m_);
      ++spawn_failures_;
    }
  }
  worker_loop(0);
  for (auto& th : helpers) th.join();
}

}  // namespace stlm::expl
