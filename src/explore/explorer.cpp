#include "explore/explorer.hpp"

#include <chrono>
#include <iomanip>

namespace stlm::expl {

ExplorationRow Explorer::evaluate(const core::Platform& platform,
                                  Time max_time) {
  ExplorationRow row;
  row.platform = platform.name;

  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  factory_(graph, owned);
  graph.discover_roles();

  Simulator sim;
  auto ms = core::Mapper::map(sim, graph, platform,
                              core::AbstractionLevel::Cam);
  const auto wall_start = std::chrono::steady_clock::now();
  row.completed = ms->run_until_done(max_time);
  const auto wall_end = std::chrono::steady_clock::now();

  row.sim_time_us = sim.now().to_seconds() * 1e6;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  const auto s = ms->txn_log().summarize();
  row.mean_latency_ns = s.mean_latency_ns;
  row.transactions = s.count;
  row.bytes = s.bytes;
  if (ms->bus()) row.bus_utilization = ms->bus()->utilization();
  return row;
}

std::vector<ExplorationRow> Explorer::sweep(
    const std::vector<core::Platform>& cands, Time max_time) {
  std::vector<ExplorationRow> rows;
  rows.reserve(cands.size());
  for (const auto& p : cands) rows.push_back(evaluate(p, max_time));
  return rows;
}

void Explorer::print_table(std::ostream& os,
                           const std::vector<ExplorationRow>& rows) {
  os << std::left << std::setw(24) << "platform" << std::right << std::setw(6)
     << "done" << std::setw(14) << "sim_time_us" << std::setw(12) << "wall_ms"
     << std::setw(14) << "mean_lat_ns" << std::setw(10) << "bus_util"
     << std::setw(10) << "txns" << std::setw(12) << "bytes" << "\n";
  os << std::string(102, '-') << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(24) << r.platform << std::right
       << std::setw(6) << (r.completed ? "yes" : "NO") << std::setw(14)
       << std::fixed << std::setprecision(2) << r.sim_time_us << std::setw(12)
       << std::setprecision(2) << r.wall_ms << std::setw(14)
       << std::setprecision(1) << r.mean_latency_ns << std::setw(10)
       << std::setprecision(3) << r.bus_utilization << std::setw(10)
       << r.transactions << std::setw(12) << r.bytes << "\n";
  }
}

std::vector<core::Platform> default_candidates() {
  std::vector<core::Platform> cands;
  {
    core::Platform p;
    p.name = "shared-bus-priority";
    p.bus = core::BusKind::SharedBus;
    p.arb = core::ArbKind::Priority;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-priority";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::Priority;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-round-robin";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::RoundRobin;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-tdma";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::Tdma;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "opb-round-robin";
    p.bus = core::BusKind::Opb;
    p.arb = core::ArbKind::RoundRobin;
    p.bus_cycle = Time::ns(20);  // OPB-class clock
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "crossbar";
    p.bus = core::BusKind::Crossbar;
    cands.push_back(p);
  }
  return cands;
}

}  // namespace stlm::expl
