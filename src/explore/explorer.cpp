#include "explore/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/obs.hpp"
#include "trace/channel_stats.hpp"
#include "trace/stats.hpp"

namespace stlm::expl {

ExplorationRow Explorer::evaluate_with(const GraphFactory& factory,
                                       const std::string& workload_name,
                                       const core::Platform& platform,
                                       Time max_time) {
  STLM_ASSERT(factory != nullptr, "Explorer: no workload factory bound");
  ExplorationRow row;
  row.platform = platform.name;
  row.workload = workload_name;

  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  factory(graph, owned);
  graph.discover_roles();

  Simulator sim;
  // Opt-in per-cell timeline trace (see TraceTarget in the header).
  std::optional<obs::TraceSession> cell_trace;
  if (!trace_target_.path.empty() && trace_target_.platform == platform.name &&
      trace_target_.workload == workload_name) {
    cell_trace.emplace();
    cell_trace->attach(sim);
  }
  auto ms = core::Mapper::map(sim, graph, platform,
                              core::AbstractionLevel::Cam);
  // stlm-lint: allow(determinism-wall-clock): measures host wall time for
  // the row's wall_ms speed metric; never feeds back into simulated state
  const auto wall_start = std::chrono::steady_clock::now();
  row.completed = ms->run_until_done(max_time);
  // stlm-lint: allow(determinism-wall-clock): second endpoint of the
  // wall_ms measurement above; reporting-only
  const auto wall_end = std::chrono::steady_clock::now();

  row.sim_time_us = sim.now().to_seconds() * 1e6;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  // Split the log: per-master "<bus>.<master>" channels duplicate the
  // bus rows, so the overall distribution excludes them (its meaning is
  // unchanged from before per-master channels existed) and they feed the
  // worst-master tail column instead.
  const trace::TxnLogger& log = ms->txn_log();
  const std::string bus_channel =
      ms->bus() ? ms->bus()->name() : std::string();
  std::vector<std::string> master_labels;
  if (ms->bus()) {
    master_labels.reserve(ms->bus()->master_count());
    for (std::size_t i = 0; i < ms->bus()->master_count(); ++i) {
      master_labels.push_back(ms->bus()->master_label(i));
    }
  }
  std::vector<trace::TxnRecord> overall;
  overall.reserve(log.size());
  std::map<std::uint32_t, std::vector<trace::TxnRecord>> per_master;
  // Classify channels once up front — string compares per channel, not
  // per record (logs carry hundreds of records over a handful of
  // channels).
  std::vector<char> is_master(log.channel_count(), 0);
  if (!bus_channel.empty()) {
    for (std::uint32_t id = 0; id < log.channel_count(); ++id) {
      is_master[id] =
          is_master_channel(log.channel_name(id), bus_channel, master_labels);
    }
  }
  for (const auto& r : log.records()) {
    if (r.channel < is_master.size() && is_master[r.channel]) {
      per_master[r.channel].push_back(r);
    } else {
      overall.push_back(r);
    }
  }
  const auto dist = trace::latency_dist(overall);
  row.mean_latency_ns = dist.mean_ns;
  row.p50_latency_ns = dist.p50_ns;
  row.p95_latency_ns = dist.p95_ns;
  row.p99_latency_ns = dist.p99_ns;
  row.mean_queue_ns = dist.mean_queue_ns;
  row.transactions = dist.count;
  row.bytes = dist.bytes;
  // Failure-semantics columns from the same de-duplicated record set.
  {
    std::uint64_t not_ok = 0;
    std::uint64_t ok_bytes = 0;
    std::uint64_t slo_missed = 0;
    const double slo_ns = slo_.to_ns();
    for (const auto& r : overall) {
      if (r.status == trace::TxnStatus::Ok) {
        ok_bytes += r.bytes;
      } else {
        ++not_ok;
      }
      if (r.retries > 0) ++row.retries;
      if (slo_ns > 0.0 && r.latency_ns() > slo_ns) ++slo_missed;
    }
    if (!overall.empty()) {
      row.error_rate =
          static_cast<double>(not_ok) / static_cast<double>(overall.size());
      row.slo_miss_pct = 100.0 * static_cast<double>(slo_missed) /
                         static_cast<double>(overall.size());
    }
    if (row.sim_time_us > 0.0) {
      // MB/s of Ok-status payload: bytes / us == MB/s.
      row.goodput_mbps = static_cast<double>(ok_bytes) / row.sim_time_us;
    }
    const auto totals = ms->failure_totals();
    row.timeouts = totals.timeouts;
    row.aborted = totals.aborts;
  }
  for (auto& [id, rows] : per_master) {
    row.worst_master_p99_ns =
        std::max(row.worst_master_p99_ns, trace::latency_dist(rows).p99_ns);
  }
  if (ms->bus()) {
    row.bus_utilization = ms->bus()->utilization();
    // stats() folds sharded counters (crossbar), so read it once here.
    const trace::StatSet& st = ms->bus()->stats();
    const std::uint64_t tx = st.counter("transactions");
    if (tx != 0) {
      row.fast_hit_rate = static_cast<double>(st.counter("fast_path_hits")) /
                          static_cast<double>(tx);
    }
  }
  row.ctx_switches = sim.ctx_switches();
  // With auditing on (audit::set_default_enabled before the sweep), fold
  // this cell's conflict-pair count into the row so grid tests can assert
  // a clean sweep without reaching into worker-thread simulators.
  row.audit_conflicts = sim.audit_report().conflicts.size();
  if (cell_trace) {
    cell_trace->detach();
    std::ofstream trace_out(trace_target_.path);
    cell_trace->write_json(trace_out);
  }
  return row;
}

ExplorationRow Explorer::evaluate(const core::Platform& platform,
                                  Time max_time) {
  return evaluate_with(factory_, "", platform, max_time);
}

ExplorationRow Explorer::evaluate(const core::Platform& platform,
                                  const WorkloadCase& workload,
                                  Time max_time) {
  return evaluate_with(workload.factory, workload.name, platform, max_time);
}

std::vector<ExplorationRow> Explorer::sweep(
    const std::vector<core::Platform>& cands, Time max_time) {
  std::vector<ExplorationRow> rows;
  rows.reserve(cands.size());
  for (const auto& p : cands) rows.push_back(evaluate(p, max_time));
  return rows;
}

std::vector<ExplorationRow> Explorer::sweep(
    const std::vector<core::Platform>& cands,
    const std::vector<WorkloadCase>& workloads, Time max_time) {
  std::vector<ExplorationRow> rows;
  rows.reserve(cands.size() * workloads.size());
  for (const auto& p : cands) {
    for (const auto& w : workloads) rows.push_back(evaluate(p, w, max_time));
  }
  return rows;
}

void Explorer::run_sharded(std::size_t n, unsigned n_threads,
                           const std::function<void(std::size_t)>& eval) {
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        eval(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Park the cursor past the end so every worker drains promptly
        // instead of evaluating candidates whose results will be thrown
        // away.
        next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(n_threads, n));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::exception_ptr spawn_error;
  for (unsigned t = 0; t < workers; ++t) {
    try {
      pool.emplace_back(worker);
    } catch (...) {
      // Thread creation can fail (EAGAIN under a thread limit). Stop
      // spawning, let the already-started workers drain the remaining
      // candidates, and report the failure as an exception rather than
      // letting ~thread() terminate the process. With zero workers
      // started there is nobody to finish the sweep — propagate.
      spawn_error = std::current_exception();
      break;
    }
  }
  for (auto& th : pool) th.join();

  if (pool.empty() && spawn_error) std::rethrow_exception(spawn_error);
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExplorationRow> Explorer::sweep_parallel(
    const std::vector<core::Platform>& cands, Time max_time,
    unsigned n_threads) {
  const std::size_t n = cands.size();
  if (n_threads <= 1 || n <= 1) return sweep(cands, max_time);

  std::vector<ExplorationRow> rows(n);
  run_sharded(n, n_threads,
              [&](std::size_t i) { rows[i] = evaluate(cands[i], max_time); });
  return rows;
}

std::vector<ExplorationRow> Explorer::sweep_parallel(
    const std::vector<core::Platform>& cands,
    const std::vector<WorkloadCase>& workloads, Time max_time,
    unsigned n_threads) {
  const std::size_t nw = workloads.size();
  const std::size_t n = cands.size() * nw;
  if (n_threads <= 1 || n <= 1) return sweep(cands, workloads, max_time);

  std::vector<ExplorationRow> rows(n);
  run_sharded(n, n_threads, [&](std::size_t i) {
    rows[i] = evaluate(cands[i / nw], workloads[i % nw], max_time);
  });
  return rows;
}

void Explorer::print_table(std::ostream& os,
                           const std::vector<ExplorationRow>& rows) {
  trace::ScopedOstreamFormat guard(os);
  // Size the name column to the longest platform (the grid generator
  // produces names well past the old fixed 24 columns). The workload
  // column only appears when a row carries a workload name.
  std::size_t name_w = 20;
  std::size_t wl_w = 0;
  for (const auto& r : rows) {
    name_w = std::max(name_w, r.platform.size());
    wl_w = std::max(wl_w, r.workload.size());
  }
  const bool with_workload = wl_w > 0;
  const int nw = static_cast<int>(name_w + 2);
  const int ww = static_cast<int>(std::max<std::size_t>(wl_w, 8) + 2);
  os << std::left << std::setw(nw) << "platform";
  if (with_workload) os << std::setw(ww) << "workload";
  os << std::right << std::setw(6)
     << "done" << std::setw(14) << "sim_time_us" << std::setw(12) << "wall_ms"
     << std::setw(14) << "mean_lat_ns" << std::setw(12) << "p50_ns"
     << std::setw(12) << "p95_ns" << std::setw(12) << "p99_ns"
     << std::setw(12) << "queue_ns" << std::setw(12) << "wm_p99_ns"
     << std::setw(10) << "bus_util"
     << std::setw(10) << "txns" << std::setw(12) << "bytes"
     << std::setw(12) << "ctx_sw" << std::setw(10) << "fast_hit"
     << std::setw(10) << "err_rate" << std::setw(10) << "retried"
     << std::setw(8) << "tmo" << std::setw(8) << "abrt"
     << std::setw(12) << "goodput_mbs" << std::setw(10) << "slo_miss"
     << "\n";
  os << std::string(static_cast<std::size_t>(nw) +
                        (with_workload ? static_cast<std::size_t>(ww) : 0) +
                        218,
                    '-')
     << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(nw) << r.platform;
    if (with_workload) os << std::setw(ww) << r.workload;
    os << std::right
       << std::setw(6) << (r.completed ? "yes" : "NO") << std::setw(14)
       << std::fixed << std::setprecision(2) << r.sim_time_us << std::setw(12)
       << std::setprecision(2) << r.wall_ms << std::setw(14)
       << std::setprecision(1) << r.mean_latency_ns << std::setw(12)
       << r.p50_latency_ns << std::setw(12) << r.p95_latency_ns
       << std::setw(12) << r.p99_latency_ns << std::setw(12) << r.mean_queue_ns
       << std::setw(12) << r.worst_master_p99_ns
       << std::setw(10) << std::setprecision(3) << r.bus_utilization
       << std::setw(10) << r.transactions << std::setw(12) << r.bytes
       << std::setw(12) << r.ctx_switches
       << std::setw(10) << std::setprecision(3) << r.fast_hit_rate
       << std::setw(10) << std::setprecision(4) << r.error_rate
       << std::setw(10) << r.retries
       << std::setw(8) << r.timeouts << std::setw(8) << r.aborted
       << std::setw(12) << std::setprecision(1) << r.goodput_mbps
       << std::setw(10) << std::setprecision(2) << r.slo_miss_pct << "\n";
  }
}

std::vector<core::Platform> default_candidates() {
  std::vector<core::Platform> cands;
  {
    core::Platform p;
    p.name = "shared-bus-priority";
    p.bus = core::BusKind::SharedBus;
    p.arb = core::ArbKind::Priority;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-priority";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::Priority;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-round-robin";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::RoundRobin;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-tdma";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::Tdma;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "opb-round-robin";
    p.bus = core::BusKind::Opb;
    p.arb = core::ArbKind::RoundRobin;
    p.bus_cycle = Time::ns(20);  // OPB-class clock
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "crossbar";
    p.bus = core::BusKind::Crossbar;
    cands.push_back(p);
  }
  return cands;
}

std::vector<core::Platform> grid_candidates(const GridSpec& spec) {
  std::vector<core::Platform> cands;
  for (core::BusKind bus : spec.buses) {
    const bool arbitrated = bus != core::BusKind::Crossbar;
    // OPB has no address pipelining: only the atomic point exists.
    const bool split_capable = bus != core::BusKind::Opb;
    const std::size_t arb_count = arbitrated ? spec.arbs.size() : 1;
    for (std::size_t ai = 0; ai < arb_count; ++ai) {
      for (Time cycle : spec.bus_cycles) {
        for (std::size_t width : spec.data_widths) {
          for (std::size_t outstanding : spec.max_outstanding) {
            if (outstanding > 1 && !split_capable) continue;
            for (bool fast : spec.fast_targets) {
              // The fast path only engages in atomic mode; a fast split
              // point would duplicate the plain split point.
              if (fast && outstanding > 1) continue;
              for (const fault::FaultProfile& fp : spec.faults) {
                for (const fault::RetrySpec& rs : spec.retries) {
                  core::Platform p;
                  p.bus = bus;
                  p.bus_cycle = cycle;
                  p.data_width_bytes = width;
                  if (outstanding > 1) {
                    p.split_txns = true;
                    p.max_outstanding = outstanding;
                  }
                  p.fast_targets = fast;
                  p.fault = fp;
                  p.retry = rs;
                  p.name = core::bus_kind_name(bus);
                  if (arbitrated) {
                    p.arb = spec.arbs[ai];
                    p.name += '-';
                    p.name += core::arb_kind_name(p.arb);
                  }
                  p.name += '-';
                  p.name += std::to_string(cycle / Time::ns(1));
                  p.name += "ns-";
                  p.name += std::to_string(width * 8);
                  p.name += 'b';
                  if (outstanding > 1) {
                    p.name += "-split";
                    p.name += std::to_string(outstanding);
                  }
                  if (fast) p.name += "-fast";
                  // Inactive axis entries (the defaults) leave the name
                  // untouched so the fault-free grid is bit-identical to
                  // the pre-failure-axes grid.
                  if (fp.active()) {
                    p.name += '-';
                    p.name += fp.name.empty() ? std::string("fault") : fp.name;
                  }
                  if (rs.active()) {
                    p.name += '-';
                    p.name += rs.name.empty() ? std::string("retry") : rs.name;
                  }
                  cands.push_back(std::move(p));
                }
              }
            }
          }
        }
      }
    }
  }
  return cands;
}

}  // namespace stlm::expl
