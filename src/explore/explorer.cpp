#include "explore/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>

#include "obs/obs.hpp"
#include "trace/channel_stats.hpp"
#include "trace/stats.hpp"

namespace stlm::expl {

ExplorationRow Explorer::evaluate_with(const GraphFactory& factory,
                                       const std::string& workload_name,
                                       const core::Platform& platform,
                                       Time max_time,
                                       const EvalBudget& budget) {
  STLM_ASSERT(factory != nullptr, "Explorer: no workload factory bound");
  ExplorationRow row;
  row.platform = platform.name;
  row.workload = workload_name;
  row.cost = platform.cost_proxy();

  std::vector<std::unique_ptr<core::ProcessingElement>> owned;
  core::SystemGraph graph;
  factory(graph, owned);
  graph.discover_roles();

  Simulator sim;
  // Opt-in per-cell timeline trace (see TraceTarget in the header).
  std::optional<obs::TraceSession> cell_trace;
  if (!trace_target_.path.empty() && trace_target_.platform == platform.name &&
      trace_target_.workload == workload_name) {
    cell_trace.emplace();
    cell_trace->attach(sim);
  }
  auto ms = core::Mapper::map(sim, graph, platform,
                              core::AbstractionLevel::Cam);
  // stlm-lint: allow(determinism-wall-clock): measures host wall time for
  // the row's wall_ms speed metric; never feeds back into simulated state
  const auto wall_start = std::chrono::steady_clock::now();
  if (budget.should_abort) {
    core::MappedSystem::RunBudget rb;
    core::MappedSystem* const sys = ms.get();
    rb.should_abort = [&budget, sys](Time now) {
      return budget.should_abort(now, sys->txn_log().size());
    };
    row.completed = ms->run_until_done(max_time, rb);
    row.pruned = ms->aborted_early();
  } else {
    row.completed = ms->run_until_done(max_time);
  }
  // stlm-lint: allow(determinism-wall-clock): second endpoint of the
  // wall_ms measurement above; reporting-only
  const auto wall_end = std::chrono::steady_clock::now();

  row.sim_time_us = sim.now().to_seconds() * 1e6;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  // Split the log: per-master "<bus>.<master>" channels duplicate the
  // bus rows, so the overall distribution excludes them (its meaning is
  // unchanged from before per-master channels existed) and they feed the
  // worst-master tail column instead.
  const trace::TxnLogger& log = ms->txn_log();
  const std::string bus_channel =
      ms->bus() ? ms->bus()->name() : std::string();
  std::vector<std::string> master_labels;
  if (ms->bus()) {
    master_labels.reserve(ms->bus()->master_count());
    for (std::size_t i = 0; i < ms->bus()->master_count(); ++i) {
      master_labels.push_back(ms->bus()->master_label(i));
    }
  }
  std::vector<trace::TxnRecord> overall;
  overall.reserve(log.size());
  std::map<std::uint32_t, std::vector<trace::TxnRecord>> per_master;
  // Classify channels once up front — string compares per channel, not
  // per record (logs carry hundreds of records over a handful of
  // channels).
  std::vector<char> is_master(log.channel_count(), 0);
  if (!bus_channel.empty()) {
    for (std::uint32_t id = 0; id < log.channel_count(); ++id) {
      is_master[id] =
          is_master_channel(log.channel_name(id), bus_channel, master_labels);
    }
  }
  for (const auto& r : log.records()) {
    if (r.channel < is_master.size() && is_master[r.channel]) {
      per_master[r.channel].push_back(r);
    } else {
      overall.push_back(r);
    }
  }
  const auto dist = trace::latency_dist(overall);
  row.mean_latency_ns = dist.mean_ns;
  row.p50_latency_ns = dist.p50_ns;
  row.p95_latency_ns = dist.p95_ns;
  row.p99_latency_ns = dist.p99_ns;
  row.mean_queue_ns = dist.mean_queue_ns;
  row.transactions = dist.count;
  row.bytes = dist.bytes;
  // Failure-semantics columns from the same de-duplicated record set.
  {
    std::uint64_t not_ok = 0;
    std::uint64_t valid_bytes = 0;
    std::uint64_t slo_missed = 0;
    const double slo_ns = slo_.to_ns();
    for (const auto& r : overall) {
      if (r.status != trace::TxnStatus::Ok) ++not_ok;
      // Goodput follows Transaction::data_valid(): Ok plus late-but-
      // correct Timeout — the watchdog fired but the payload arrived, so
      // the bytes were delivered (they still count toward error_rate).
      if (r.status == trace::TxnStatus::Ok ||
          r.status == trace::TxnStatus::Timeout) {
        valid_bytes += r.bytes;
      }
      if (r.retries > 0) ++row.retries;
      if (slo_ns > 0.0 && r.latency_ns() > slo_ns) ++slo_missed;
    }
    if (!overall.empty()) {
      row.error_rate =
          static_cast<double>(not_ok) / static_cast<double>(overall.size());
      row.slo_miss_pct = 100.0 * static_cast<double>(slo_missed) /
                         static_cast<double>(overall.size());
    }
    if (row.sim_time_us > 0.0) {
      // MB/s of delivered payload: bytes / us == MB/s.
      row.goodput_mbps = static_cast<double>(valid_bytes) / row.sim_time_us;
    }
    const auto totals = ms->failure_totals();
    row.timeouts = totals.timeouts;
    row.aborted = totals.aborts;
  }
  for (auto& [id, rows] : per_master) {
    row.worst_master_p99_ns =
        std::max(row.worst_master_p99_ns, trace::latency_dist(rows).p99_ns);
  }
  if (ms->bus()) {
    row.bus_utilization = ms->bus()->utilization();
    // stats() folds sharded counters (crossbar), so read it once here.
    const trace::StatSet& st = ms->bus()->stats();
    const std::uint64_t tx = st.counter("transactions");
    if (tx != 0) {
      row.fast_hit_rate = static_cast<double>(st.counter("fast_path_hits")) /
                          static_cast<double>(tx);
    }
  }
  row.ctx_switches = sim.ctx_switches();
  // With auditing on (audit::set_default_enabled before the sweep), fold
  // this cell's conflict-pair count into the row so grid tests can assert
  // a clean sweep without reaching into worker-thread simulators.
  row.audit_conflicts = sim.audit_report().conflicts.size();
  if (cell_trace) {
    cell_trace->detach();
    std::ofstream trace_out(trace_target_.path);
    cell_trace->write_json(trace_out);
  }
  return row;
}

ExplorationRow Explorer::evaluate(const core::Platform& platform,
                                  Time max_time) {
  return evaluate_with(factory_, "", platform, max_time, {});
}

ExplorationRow Explorer::evaluate(const core::Platform& platform,
                                  const WorkloadCase& workload,
                                  Time max_time) {
  return evaluate_with(workload.factory, workload.name, platform, max_time,
                       {});
}

ExplorationRow Explorer::evaluate(const core::Platform& platform,
                                  Time max_time, const EvalBudget& budget) {
  return evaluate_with(factory_, "", platform, max_time, budget);
}

ExplorationRow Explorer::evaluate(const core::Platform& platform,
                                  const WorkloadCase& workload, Time max_time,
                                  const EvalBudget& budget) {
  return evaluate_with(workload.factory, workload.name, platform, max_time,
                       budget);
}

std::vector<ExplorationRow> Explorer::sweep(
    const std::vector<core::Platform>& cands, Time max_time) {
  std::vector<ExplorationRow> rows;
  rows.reserve(cands.size());
  for (const auto& p : cands) rows.push_back(evaluate(p, max_time));
  return rows;
}

std::vector<ExplorationRow> Explorer::sweep(
    const std::vector<core::Platform>& cands,
    const std::vector<WorkloadCase>& workloads, Time max_time) {
  std::vector<ExplorationRow> rows;
  rows.reserve(cands.size() * workloads.size());
  for (const auto& p : cands) {
    for (const auto& w : workloads) rows.push_back(evaluate(p, w, max_time));
  }
  return rows;
}

void Explorer::run_sharded(std::size_t n, unsigned n_threads,
                           const std::function<void(std::size_t)>& eval) {
  // The WorkPool's caller thread always participates, so the sweep
  // completes even when every helper spawn fails; spawn failures are
  // surfaced through last_spawn_failures() instead of being swallowed
  // (the old atomic-cursor loop only reported them when *zero* workers
  // started — a partial pool silently ran at reduced parallelism).
  WorkPool pool(
      static_cast<unsigned>(std::min<std::size_t>(n_threads, n)),
      thread_factory_);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&eval, i] { eval(i); });
  }
  pool.run();
  last_spawn_failures_ = pool.spawn_failures();
  if (pool.first_error()) std::rethrow_exception(pool.first_error());
}

std::vector<ExplorationRow> Explorer::sweep_parallel(
    const std::vector<core::Platform>& cands, Time max_time,
    unsigned n_threads) {
  const std::size_t n = cands.size();
  if (n_threads <= 1 || n <= 1) return sweep(cands, max_time);

  std::vector<ExplorationRow> rows(n);
  run_sharded(n, n_threads,
              [&](std::size_t i) { rows[i] = evaluate(cands[i], max_time); });
  return rows;
}

std::vector<ExplorationRow> Explorer::sweep_parallel(
    const std::vector<core::Platform>& cands,
    const std::vector<WorkloadCase>& workloads, Time max_time,
    unsigned n_threads) {
  const std::size_t nw = workloads.size();
  const std::size_t n = cands.size() * nw;
  if (n_threads <= 1 || n <= 1) return sweep(cands, workloads, max_time);

  std::vector<ExplorationRow> rows(n);
  run_sharded(n, n_threads, [&](std::size_t i) {
    rows[i] = evaluate(cands[i / nw], workloads[i % nw], max_time);
  });
  return rows;
}

void Explorer::print_table(std::ostream& os,
                           const std::vector<ExplorationRow>& rows) {
  trace::ScopedOstreamFormat guard(os);
  // Size the name column to the longest platform (the grid generator
  // produces names well past the old fixed 24 columns). The workload
  // column only appears when a row carries a workload name.
  std::size_t name_w = 20;
  std::size_t wl_w = 0;
  for (const auto& r : rows) {
    name_w = std::max(name_w, r.platform.size());
    wl_w = std::max(wl_w, r.workload.size());
  }
  const bool with_workload = wl_w > 0;
  const int nw = static_cast<int>(name_w + 2);
  const int ww = static_cast<int>(std::max<std::size_t>(wl_w, 8) + 2);
  // Render the header into a buffer first so the separator is sized from
  // what was actually printed — a hard-coded width drifts every time a
  // column is appended.
  std::ostringstream header;
  header << std::left << std::setw(nw) << "platform";
  if (with_workload) header << std::setw(ww) << "workload";
  header << std::right << std::setw(6)
         << "done" << std::setw(14) << "sim_time_us" << std::setw(12)
         << "wall_ms"
         << std::setw(14) << "mean_lat_ns" << std::setw(12) << "p50_ns"
         << std::setw(12) << "p95_ns" << std::setw(12) << "p99_ns"
         << std::setw(12) << "queue_ns" << std::setw(12) << "wm_p99_ns"
         << std::setw(10) << "bus_util"
         << std::setw(10) << "txns" << std::setw(12) << "bytes"
         << std::setw(12) << "ctx_sw" << std::setw(10) << "fast_hit"
         << std::setw(10) << "err_rate" << std::setw(10) << "retried"
         << std::setw(8) << "tmo" << std::setw(8) << "abrt"
         << std::setw(12) << "goodput_mbs" << std::setw(10) << "slo_miss";
  os << header.str() << "\n";
  os << std::string(header.str().size(), '-') << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(nw) << r.platform;
    if (with_workload) os << std::setw(ww) << r.workload;
    os << std::right
       << std::setw(6) << (r.completed ? "yes" : "NO") << std::setw(14)
       << std::fixed << std::setprecision(2) << r.sim_time_us << std::setw(12)
       << std::setprecision(2) << r.wall_ms << std::setw(14)
       << std::setprecision(1) << r.mean_latency_ns << std::setw(12)
       << r.p50_latency_ns << std::setw(12) << r.p95_latency_ns
       << std::setw(12) << r.p99_latency_ns << std::setw(12) << r.mean_queue_ns
       << std::setw(12) << r.worst_master_p99_ns
       << std::setw(10) << std::setprecision(3) << r.bus_utilization
       << std::setw(10) << r.transactions << std::setw(12) << r.bytes
       << std::setw(12) << r.ctx_switches
       << std::setw(10) << std::setprecision(3) << r.fast_hit_rate
       << std::setw(10) << std::setprecision(4) << r.error_rate
       << std::setw(10) << r.retries
       << std::setw(8) << r.timeouts << std::setw(8) << r.aborted
       << std::setw(12) << std::setprecision(1) << r.goodput_mbps
       << std::setw(10) << std::setprecision(2) << r.slo_miss_pct << "\n";
  }
}

std::vector<core::Platform> default_candidates() {
  std::vector<core::Platform> cands;
  {
    core::Platform p;
    p.name = "shared-bus-priority";
    p.bus = core::BusKind::SharedBus;
    p.arb = core::ArbKind::Priority;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-priority";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::Priority;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-round-robin";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::RoundRobin;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "plb-tdma";
    p.bus = core::BusKind::Plb;
    p.arb = core::ArbKind::Tdma;
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "opb-round-robin";
    p.bus = core::BusKind::Opb;
    p.arb = core::ArbKind::RoundRobin;
    p.bus_cycle = Time::ns(20);  // OPB-class clock
    cands.push_back(p);
  }
  {
    core::Platform p;
    p.name = "crossbar";
    p.bus = core::BusKind::Crossbar;
    cands.push_back(p);
  }
  return cands;
}

std::vector<core::Platform> grid_candidates(const GridSpec& spec) {
  std::vector<core::Platform> cands;
  for (core::BusKind bus : spec.buses) {
    const bool arbitrated = bus != core::BusKind::Crossbar;
    const std::size_t arb_count = arbitrated ? spec.arbs.size() : 1;
    for (std::size_t ai = 0; ai < arb_count; ++ai) {
      for (Time cycle : spec.bus_cycles) {
        for (std::size_t width : spec.data_widths) {
          for (std::size_t outstanding : spec.max_outstanding) {
            for (bool fast : spec.fast_targets) {
              // Validity (OPB never splits, fast is atomic-only) is
              // shared with grid_neighbors so mutation can never step
              // outside the sweepable space.
              if (!core::knob_point_valid(bus, outstanding, fast)) continue;
              for (const fault::FaultProfile& fp : spec.faults) {
                for (const fault::RetrySpec& rs : spec.retries) {
                  core::Platform p;
                  p.bus = bus;
                  p.bus_cycle = cycle;
                  p.data_width_bytes = width;
                  if (outstanding > 1) {
                    p.split_txns = true;
                    p.max_outstanding = outstanding;
                  }
                  p.fast_targets = fast;
                  p.fault = fp;
                  p.retry = rs;
                  if (arbitrated) p.arb = spec.arbs[ai];
                  p.name = core::grid_point_name(p);
                  cands.push_back(std::move(p));
                }
              }
            }
          }
        }
      }
    }
  }
  return cands;
}

}  // namespace stlm::expl
