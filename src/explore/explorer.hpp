#pragma once
// Communication architecture exploration engine (paper §3).
//
// Given a factory that builds the *same* abstract system each time, the
// explorer maps it onto each candidate platform at the CAM level, runs
// the workload to completion, and tabulates: simulated completion time,
// transaction latency, bus utilization, traffic — plus the host wall
// clock it took, which is the "fast yet timing-accurate exploration"
// claim made measurable.
//
// The sweep is two-dimensional: a candidate *platform* list crossed with
// a candidate *workload* list (workload::WorkloadCase — synthetic seeded
// generators, trace replays, or hand-built factories). The single-factory
// overloads remain for one-workload exploration.

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "explore/pool.hpp"
#include "fault/fault.hpp"
#include "workload/spec.hpp"

namespace stlm::expl {

using workload::WorkloadCase;
using workload::workload_candidates;

struct ExplorationRow {
  std::string platform;
  std::string workload;           // empty for single-factory sweeps
  bool completed = false;
  double sim_time_us = 0.0;       // simulated completion time
  double wall_ms = 0.0;           // host time spent simulating
  double mean_latency_ns = 0.0;   // mean logged transaction latency
  // Latency distribution across every logged transaction — the tail is
  // what tells split/OoO platforms apart once the mean stops moving.
  double p50_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  // Mean queueing delay (issue -> grant): arbitration/outstanding-cap
  // wait, as opposed to the service span the bus itself charges.
  double mean_queue_ns = 0.0;
  // Highest p99 latency any single master observed on the bus (from the
  // per-master "<bus>.<master>" channels). The overall p99 averages the
  // starved master away; this column is what flags unfair arbitration.
  double worst_master_p99_ns = 0.0;
  double bus_utilization = 0.0;
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
  // Same-delta scheduling conflicts the determinism auditor recorded for
  // this cell's simulator (kernel/audit.hpp). Zero whenever auditing was
  // off; the grid-audit test asserts zero with it on.
  std::uint64_t audit_conflicts = 0;
  // Kernel thread-coroutine dispatches this cell's simulator performed —
  // the scheduler-overhead side of the wall_ms column (src/obs). Zero
  // when built without STLM_OBS.
  std::uint64_t ctx_switches = 0;
  // Fast-path completions / total bus transactions for this cell (0 for
  // buses without a fast path, e.g. the crossbar).
  double fast_hit_rate = 0.0;
  // Failure-semantics columns (all zero on fault-free platforms).
  // Fraction of logged bus transactions whose final status is not Ok
  // (error / timeout / aborted).
  double error_rate = 0.0;
  // Logged transactions that needed at least one retry to settle.
  std::uint64_t retries = 0;
  // Watchdog deadline misses / retry-exhaustion aborts observed by the
  // platform's RetryPolicy shims (MappedSystem::failure_totals()).
  std::uint64_t timeouts = 0;
  std::uint64_t aborted = 0;
  // Useful delivered bandwidth: bytes of delivered-data transactions per
  // simulated second, in MB/s. "Delivered" follows Transaction::
  // data_valid() — Ok plus late-but-correct Timeout — so a watchdog miss
  // whose payload still arrived counts toward goodput while errored and
  // aborted bursts do not.
  double goodput_mbps = 0.0;
  // Fraction of logged bus transactions whose latency exceeded the
  // explorer's SLO threshold (Explorer::set_slo); 0 when no SLO set.
  double slo_miss_pct = 0.0;
  // Platform::cost_proxy() of the cell's platform — recorded on the row
  // so Pareto extraction over (perf, cost) needs no platform lookup.
  double cost = 0.0;
  // True when an EvalBudget stopped this cell's simulation before the
  // workload finished: the sim columns describe a truncated run and must
  // not be compared against completed rows.
  bool pruned = false;

  // Raw delivered bandwidth in MB/s (bytes / us == MB/s); the
  // maximization objective search drivers minimize the negation of.
  double throughput_mbps() const {
    return sim_time_us > 0.0
               ? static_cast<double>(bytes) / sim_time_us
               : 0.0;
  }
};

// True when `channel` is a per-master supplementary channel of the bus
// channel `bus_channel` — buses duplicate every completed transaction's
// row under "<bus>.<master>" so per-master latency distributions can be
// derived. Consumers aggregating across channels (the overall latency
// distribution above) must skip these rows or they count twice.
// `master_labels` are the bus's registered master names (see
// CamIf::master_label); matching the suffix against them keeps other
// channels that merely share the bus-name prefix plus a dot (e.g. a
// hierarchical child module of the bus) in the overall distribution.
inline bool is_master_channel(const std::string& channel,
                              const std::string& bus_channel,
                              const std::vector<std::string>& master_labels) {
  if (channel.size() <= bus_channel.size() + 1 ||
      channel.compare(0, bus_channel.size(), bus_channel) != 0 ||
      channel[bus_channel.size()] != '.') {
    return false;
  }
  const char* suffix = channel.c_str() + bus_channel.size() + 1;
  for (const std::string& label : master_labels) {
    if (label == suffix) return true;
  }
  return false;
}

class Explorer {
public:
  // The factory fills `graph` (PE registration, partitions, connections)
  // and parks PE ownership in `owned`. It is invoked once per candidate
  // platform so every run starts from fresh state.
  using GraphFactory = workload::GraphFactory;

  // Workload-grid sweeps carry their factories in the WorkloadCase list.
  Explorer() = default;
  explicit Explorer(GraphFactory factory) : factory_(std::move(factory)) {}

  // Opt-in "trace this row": when a sweep evaluates the cell whose
  // platform (and workload, empty for single-factory sweeps) names match,
  // an obs::TraceSession is attached to that cell's private simulator and
  // the Chrome Trace Event JSON is written to `path` after the run —
  // drill into any grid candidate with Perfetto without re-running the
  // sweep under a debugger. No-op when `path` is empty or STLM_OBS is
  // compiled out (the file is still written, containing only metadata).
  struct TraceTarget {
    std::string platform;
    std::string workload;
    std::string path;
  };
  void set_trace_target(TraceTarget t) { trace_target_ = std::move(t); }

  // Latency service-level objective: rows report the fraction of bus
  // transactions slower than this threshold in slo_miss_pct. Zero
  // (default) disables the column.
  void set_slo(Time threshold) { slo_ = threshold; }

  // Mid-simulation early-termination hook for adaptive search: the
  // predicate is polled by the kernel between settled deltas (see
  // Simulator::set_run_guard) with the cell's simulated time and logged
  // transaction count; returning true stops the run and marks the row
  // pruned. Must be a pure function of its arguments — no wall clock, no
  // shared mutable state — so budgeted runs keep the determinism
  // contract. A default-constructed budget (null predicate) is "no
  // budget".
  struct EvalBudget {
    std::function<bool(Time now, std::uint64_t txns_logged)> should_abort;
  };

  // Map + simulate one candidate.
  ExplorationRow evaluate(const core::Platform& platform, Time max_time);
  ExplorationRow evaluate(const core::Platform& platform,
                          const WorkloadCase& workload, Time max_time);
  ExplorationRow evaluate(const core::Platform& platform, Time max_time,
                          const EvalBudget& budget);
  ExplorationRow evaluate(const core::Platform& platform,
                          const WorkloadCase& workload, Time max_time,
                          const EvalBudget& budget);

  // Sweep a candidate list with the bound factory.
  std::vector<ExplorationRow> sweep(const std::vector<core::Platform>& cands,
                                    Time max_time);

  // Sweep the full platform x workload grid. Rows are platform-major:
  // row index = platform_index * workloads.size() + workload_index.
  std::vector<ExplorationRow> sweep(const std::vector<core::Platform>& cands,
                                    const std::vector<WorkloadCase>& workloads,
                                    Time max_time);

  // Sweep the candidate list sharded across `n_threads` worker threads.
  //
  // Each worker pulls candidate indices off a shared atomic cursor and
  // runs a complete evaluate() — fresh SystemGraph, Simulator and
  // MappedSystem — so no simulation state crosses threads (the kernel's
  // "current simulator" is thread-local by design). Results land at their
  // candidate's index: the returned rows are in candidate order and, for
  // the simulated metrics, bit-identical to a sequential sweep. The first
  // exception thrown by any worker is rethrown on the calling thread
  // after all workers have joined; remaining work is abandoned.
  //
  // The factory is invoked concurrently from multiple threads and must be
  // thread-safe (stateless factories, like every one in this repo, are).
  // `n_threads <= 1` degrades to the sequential sweep.
  std::vector<ExplorationRow> sweep_parallel(
      const std::vector<core::Platform>& cands, Time max_time,
      unsigned n_threads);

  // The platform x workload grid sharded the same way; one grid cell =
  // one unit of work. Row order matches the sequential grid sweep.
  std::vector<ExplorationRow> sweep_parallel(
      const std::vector<core::Platform>& cands,
      const std::vector<WorkloadCase>& workloads, Time max_time,
      unsigned n_threads);

  static void print_table(std::ostream& os,
                          const std::vector<ExplorationRow>& rows);

  // Helper-thread creation failures during the last parallel sweep on
  // this explorer. Non-zero means the sweep *completed correctly* but at
  // reduced parallelism (the calling thread always participates, so a
  // failed spawn can never stall the sweep) — degraded, not wrong, and
  // no longer silent.
  unsigned last_spawn_failures() const { return last_spawn_failures_; }

  // Test seam: substitute how sweep workers are created (see
  // WorkPool::ThreadFactory). Default-constructed = real std::thread.
  void set_thread_factory(WorkPool::ThreadFactory f) {
    thread_factory_ = std::move(f);
  }

private:
  ExplorationRow evaluate_with(const GraphFactory& factory,
                               const std::string& workload_name,
                               const core::Platform& platform, Time max_time,
                               const EvalBudget& budget);
  // Run eval(0..n-1) across a WorkPool with the exception semantics
  // documented on sweep_parallel.
  void run_sharded(std::size_t n, unsigned n_threads,
                   const std::function<void(std::size_t)>& eval);

  GraphFactory factory_;
  TraceTarget trace_target_;
  Time slo_ = Time::zero();
  WorkPool::ThreadFactory thread_factory_;
  unsigned last_spawn_failures_ = 0;
};

// Canonical candidate list covering the CAM library.
std::vector<core::Platform> default_candidates();

// Cross-product candidate grid: BusKind x ArbKind x bus cycle x data
// width x outstanding depth. The crossbar has no arbiter, so it
// contributes one point per (cycle, width) pair instead of one per
// arbiter; OPB has no address pipelining, so it skips the split
// (max_outstanding > 1) points. An outstanding depth of 1 is the atomic
// bus; a depth k > 1 becomes a split platform (`split_txns = true,
// max_outstanding = k`, named "-split<k>"). The fast-target axis applies
// to atomic points only (the fast path never engages in split mode): a
// `true` entry duplicates every atomic point with `fast_targets` on,
// named "-fast". The defaults span 108 platforms (68 distinct timing
// points + 40 fast variants) — the workload the parallel sweep is built
// to chew through.
//
// The failure axes cross every timing point with a fault profile and a
// retry policy. The defaults hold a single *inactive* entry each, so the
// default grid is exactly the 108 fault-free platforms above with
// unchanged names; an active FaultProfile/RetrySpec appends "-<name>" to
// the platform name and sets Platform::fault / Platform::retry.
struct GridSpec {
  std::vector<core::BusKind> buses{
      core::BusKind::SharedBus, core::BusKind::Plb, core::BusKind::Opb,
      core::BusKind::Crossbar};
  std::vector<core::ArbKind> arbs{
      core::ArbKind::Priority, core::ArbKind::RoundRobin, core::ArbKind::Tdma};
  std::vector<Time> bus_cycles{Time::ns(10), Time::ns(20)};
  std::vector<std::size_t> data_widths{4, 8};
  std::vector<std::size_t> max_outstanding{1, 4};
  std::vector<bool> fast_targets{false, true};
  std::vector<fault::FaultProfile> faults{{}};
  std::vector<fault::RetrySpec> retries{{}};

  // The timing axes as a core::KnobSpace, for neighbor mutation
  // (core::grid_neighbors). The failure axes are not knobs — a mutated
  // neighbor inherits its parent's fault/retry configuration unchanged.
  core::KnobSpace knobs() const {
    return {buses, arbs, bus_cycles, data_widths, max_outstanding,
            fast_targets};
  }
};

std::vector<core::Platform> grid_candidates(const GridSpec& spec = {});

}  // namespace stlm::expl
