#pragma once
// Communication architecture exploration engine (paper §3).
//
// Given a factory that builds the *same* abstract system each time, the
// explorer maps it onto each candidate platform at the CAM level, runs
// the workload to completion, and tabulates: simulated completion time,
// transaction latency, bus utilization, traffic — plus the host wall
// clock it took, which is the "fast yet timing-accurate exploration"
// claim made measurable.

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/core.hpp"

namespace stlm::expl {

struct ExplorationRow {
  std::string platform;
  bool completed = false;
  double sim_time_us = 0.0;       // simulated completion time
  double wall_ms = 0.0;           // host time spent simulating
  double mean_latency_ns = 0.0;   // mean logged transaction latency
  double bus_utilization = 0.0;
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
};

class Explorer {
public:
  // The factory fills `graph` (PE registration, partitions, connections)
  // and parks PE ownership in `owned`. It is invoked once per candidate
  // platform so every run starts from fresh state.
  using GraphFactory = std::function<void(
      core::SystemGraph& graph,
      std::vector<std::unique_ptr<core::ProcessingElement>>& owned)>;

  explicit Explorer(GraphFactory factory) : factory_(std::move(factory)) {}

  // Map + simulate one candidate.
  ExplorationRow evaluate(const core::Platform& platform, Time max_time);

  // Sweep a candidate list.
  std::vector<ExplorationRow> sweep(const std::vector<core::Platform>& cands,
                                    Time max_time);

  static void print_table(std::ostream& os,
                          const std::vector<ExplorationRow>& rows);

private:
  GraphFactory factory_;
};

// Canonical candidate list covering the CAM library.
std::vector<core::Platform> default_candidates();

}  // namespace stlm::expl
