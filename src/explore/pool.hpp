#pragma once
// Work-stealing task pool for exploration sweeps and searches.
//
// Generalizes the original run_sharded() atomic-cursor loop: tasks are
// closures, and a running task may submit() further tasks (adaptive
// search enqueues mutated neighbors while a rung drains). Each worker
// owns a deque — own-back LIFO pop, steal-front FIFO from victims — so
// dynamically discovered work stays warm on the worker that found it.
// One task here is a whole simulation run (milliseconds), so the deques
// share a single mutex: contention is negligible at that granularity and
// the sleep/wake logic stays trivially correct.
//
// Determinism: the pool never decides *what* work exists or what it
// computes — only which thread runs it when. Callers that want
// bit-identical results across runs must make each task's effect a pure
// function of its own identity (write to slot i, derive RNG from a
// per-task seed), never of execution order. Every sweep/search in this
// repo follows that rule.

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace stlm::expl {

class WorkPool {
public:
  using Task = std::function<void()>;
  // Test seam: how helper threads are created. The default factory makes
  // a plain std::thread; tests substitute one that throws (simulating
  // EAGAIN under a thread limit) to exercise degraded-pool paths.
  using ThreadFactory = std::function<std::thread(std::function<void()>)>;

  // `n_threads` is the total worker count *including* the calling
  // thread: run() spawns n_threads - 1 helpers and then works the queues
  // itself, so a sweep completes even if every helper spawn fails.
  explicit WorkPool(unsigned n_threads, ThreadFactory factory = {});

  // Enqueue a task. Callable before run() (seeding the initial batch)
  // and from inside a running task (dynamic work discovery); a task
  // submitted from worker w lands on w's own deque.
  void submit(Task t);

  // Run until every submitted task — including tasks submitted while
  // running — has executed, then return. After the first task throws,
  // remaining tasks are discarded (drained without executing) and the
  // exception is held for first_error(); run() itself does not throw.
  void run();

  // First exception thrown by any task in the last run(), or null.
  std::exception_ptr first_error() const { return first_error_; }

  // Helper threads requested (n_threads - 1) vs. creation failures in
  // the last run(). spawn_failures() > 0 means the sweep completed at
  // reduced parallelism — degraded, not wrong.
  unsigned helpers_requested() const { return requested_; }
  unsigned spawn_failures() const { return spawn_failures_; }

private:
  Task take_locked(std::size_t w);
  void worker_loop(std::size_t w);

  unsigned requested_;  // helpers (total workers - 1)
  ThreadFactory factory_;

  std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::deque<Task>> queues_;  // one per worker, caller = 0
  std::deque<Task> inject_;               // submits from non-worker threads
  std::size_t pending_ = 0;               // submitted, not yet finished
  bool abort_ = false;
  std::exception_ptr first_error_;
  unsigned spawn_failures_ = 0;
};

}  // namespace stlm::expl
