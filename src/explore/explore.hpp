#pragma once
// Umbrella header for the exploration engine.

#include "explore/explorer.hpp"
#include "explore/pool.hpp"
#include "explore/search.hpp"
#include "explore/workload.hpp"
