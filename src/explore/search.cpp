#include "explore/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <iomanip>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>

#include "explore/pool.hpp"
#include "trace/stats.hpp"
#include "workload/rng.hpp"

namespace stlm::expl {

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::Throughput: return "throughput";
    case Objective::Goodput: return "goodput";
    case Objective::P99: return "p99";
    case Objective::Cost: return "cost";
  }
  return "?";
}

double objective_value(const ExplorationRow& r, Objective o) {
  switch (o) {
    case Objective::Throughput: return -r.throughput_mbps();
    case Objective::Goodput: return -r.goodput_mbps;
    case Objective::P99: return r.p99_latency_ns;
    case Objective::Cost: return r.cost;
  }
  return 0.0;
}

bool dominates(const ExplorationRow& a, const ExplorationRow& b,
               const std::vector<Objective>& objectives) {
  bool strict = false;
  for (Objective o : objectives) {
    const double va = objective_value(a, o);
    const double vb = objective_value(b, o);
    if (va > vb) return false;
    if (va < vb) strict = true;
  }
  return strict;
}

std::vector<std::size_t> pareto_front(
    const std::vector<ExplorationRow>& rows,
    const std::vector<Objective>& objectives) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < rows.size() && !dominated; ++j) {
      if (j != i && dominates(rows[j], rows[i], objectives)) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

namespace {

// FNV-1a: stable per-cell hash for mutation's RNG stream — a pure
// function of the cell's identity, never of evaluation order.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// One (platform, workload) candidate. Cells live in a std::deque so
// growth during a rung (mutation proposals) never moves existing cells:
// worker tasks hold stable Cell pointers, and the deque itself is only
// touched under the driver mutex.
constexpr std::size_t kNoDepth = static_cast<std::size_t>(-1);

struct Cell {
  core::Platform platform;
  std::size_t workload = 0;  // index into the workload list (0 if none)
  std::size_t depth = 0;     // mutation hops from a seed candidate
  // Depth this cell last proposed neighbors at (kNoDepth = never). A
  // later, shorter discovery path relaxes `depth` below it and the cell
  // re-expands, so depths converge to breadth-first distances.
  std::size_t expanded_at = kNoDepth;
  ExplorationRow row;
  bool evaluated = false;
  bool done = false;       // row is final: completed, not pruned
  bool alive = true;       // survived every selection so far
  bool off_front = false;  // dominated at the last selection (pad keep)
};

}  // namespace

SearchDriver::SearchDriver(SearchConfig cfg) : cfg_(std::move(cfg)) {}

SearchReport SearchDriver::run(Explorer& ex,
                               const std::vector<core::Platform>& platforms) {
  return run(ex, platforms, {});
}

SearchReport SearchDriver::run(Explorer& ex,
                               const std::vector<core::Platform>& platforms,
                               const std::vector<WorkloadCase>& workloads) {
  STLM_ASSERT(!cfg_.horizons.empty(), "SearchDriver: no horizons configured");
  STLM_ASSERT(!cfg_.objectives.empty(),
              "SearchDriver: no objectives configured");
  SearchReport report;
  const bool with_workloads = !workloads.empty();
  const std::size_t n_wl = with_workloads ? workloads.size() : 1;

  auto cell_key = [](const std::string& platform_name, std::size_t wl) {
    return platform_name + '\n' + std::to_string(wl);
  };

  std::deque<Cell> cells;
  std::map<std::string, Cell*> seen;
  std::mutex m;  // guards cells growth, seen, and report counters
  for (const auto& p : platforms) {
    for (std::size_t w = 0; w < n_wl; ++w) {
      if (seen.count(cell_key(p.name, w))) continue;
      Cell c;
      c.platform = p;
      c.workload = w;
      cells.push_back(std::move(c));
      seen.emplace(cell_key(p.name, w), &cells.back());
    }
  }
  const std::size_t n_seed_cells = cells.size();

  const std::size_t n_rungs = cfg_.horizons.size();
  for (std::size_t r = 0; r < n_rungs; ++r) {
    RungStats rs;
    rs.horizon = cfg_.horizons[r];

    // Budget reference for this rung: the longest completion time any
    // completed cell has demonstrated. Computed from settled state
    // between rungs, so it is deterministic.
    Time abort_at = Time::zero();
    if (r > 0 && cfg_.abort_slack > 0.0) {
      double max_done_us = 0.0;
      for (const Cell& c : cells) {
        if (c.evaluated && c.done) {
          max_done_us = std::max(max_done_us, c.row.sim_time_us);
        }
      }
      if (max_done_us > 0.0) {
        abort_at = Time::us(static_cast<std::uint64_t>(
            std::ceil(cfg_.abort_slack * max_done_us)));
      }
    }

    std::vector<Cell*> to_eval;
    for (Cell& c : cells) {
      if (!c.alive) continue;
      if (c.done) {
        ++rs.carried;  // final row carries forward — never re-simulated
      } else {
        to_eval.push_back(&c);
      }
    }

    WorkPool pool(cfg_.n_threads == 0 ? 1 : cfg_.n_threads);
    const bool mutate = r == 0 && cfg_.mutation_depth > 0;
    const Time horizon = rs.horizon;

    // Mutation grows the candidate set to the breadth-first closure of
    // the pick graph over completed cells: the picks per cell derive
    // from the cell's identity (never its depth or finish order), and a
    // proposal that reaches an admitted cell by a shorter path relaxes
    // its depth — re-expanding it if the lower depth newly clears
    // mutation_depth. At the drain fixpoint every depth is the minimal
    // hop count, so the admitted *set* (and the proposal counters) are
    // a pure function of (seeds, space, seed), at any thread count.
    std::function<void(Cell*)> eval_cell;
    std::function<void(Cell*, std::size_t, bool)> expand_cell;

    // Caller holds `m`. `first` keeps re-expansions out of the proposal
    // counter: a cell contributes its picks to `proposed` exactly once.
    auto schedule_expand = [&](Cell* c) {
      const bool first = c->expanded_at == kNoDepth;
      const std::size_t at = c->depth;
      c->expanded_at = at;
      pool.submit([&expand_cell, c, at, first] { expand_cell(c, at, first); });
    };

    expand_cell = [&](Cell* c, std::size_t at_depth, bool first) {
      auto neighbors = core::grid_neighbors(c->platform, cfg_.space);
      if (neighbors.empty()) return;
      workload::SplitMix64 g(workload::SplitMix64::derive(
          cfg_.seed, fnv1a(cell_key(c->platform.name, c->workload))));
      const std::size_t picks = std::min(cfg_.mutation_limit, neighbors.size());
      for (std::size_t k = 0; k < picks; ++k) {
        const std::size_t j =
            k + static_cast<std::size_t>(g.uniform(0, neighbors.size() - 1 - k));
        std::swap(neighbors[k], neighbors[j]);
      }
      std::lock_guard<std::mutex> lock(m);
      if (first) report.proposed += picks;
      for (std::size_t k = 0; k < picks; ++k) {
        const std::string key = cell_key(neighbors[k].name, c->workload);
        const auto it = seen.find(key);
        if (it == seen.end()) {
          Cell nc;
          nc.platform = std::move(neighbors[k]);
          nc.workload = c->workload;
          nc.depth = at_depth + 1;
          cells.push_back(std::move(nc));
          Cell* const fresh = &cells.back();
          seen.emplace(key, fresh);
          pool.submit([&eval_cell, fresh] { eval_cell(fresh); });
        } else if (Cell* const hit = it->second; hit->depth > at_depth + 1) {
          hit->depth = at_depth + 1;
          if (hit->done && hit->depth < cfg_.mutation_depth &&
              hit->expanded_at > hit->depth) {
            schedule_expand(hit);
          }
        }
      }
    };

    eval_cell = [&](Cell* c) {
      Explorer::EvalBudget budget;
      if (c->off_front && abort_at > Time::zero()) {
        const Time limit = abort_at;
        budget.should_abort = [limit](Time now, std::uint64_t) {
          return now >= limit;
        };
      }
      ExplorationRow row =
          with_workloads
              ? ex.evaluate(c->platform, workloads[c->workload], horizon,
                            budget)
              : ex.evaluate(c->platform, horizon, budget);
      c->evaluated = true;
      c->row = std::move(row);
      std::lock_guard<std::mutex> lock(m);
      c->done = c->row.completed && !c->row.pruned;
      ++rs.evaluated;
      if (c->row.pruned) ++rs.aborted;
      if (mutate && c->done && c->depth < cfg_.mutation_depth &&
          c->expanded_at > c->depth) {
        schedule_expand(c);
      }
    };

    for (Cell* c : to_eval) {
      pool.submit([&eval_cell, c] { eval_cell(c); });
    }
    pool.run();
    if (pool.first_error()) std::rethrow_exception(pool.first_error());
    if (mutate) {
      // Every proposal either admitted a new cell or hit a seen one;
      // both totals are settled, so the difference is the rejects.
      report.duplicates = report.proposed - (seen.size() - n_seed_cells);
    }

    // Per-workload-group bookkeeping over canonically sorted survivors —
    // execution order is fully rinsed out here.
    for (std::size_t g = 0; g < n_wl; ++g) {
      std::vector<Cell*> group;
      for (Cell& c : cells) {
        if (!c.alive || c.workload != g) continue;
        if (c.row.pruned) {
          // A budget abort is a terminal verdict: the truncated row
          // never competes with completed rows.
          c.alive = false;
          ++report.pruned_cells;
          continue;
        }
        group.push_back(&c);
      }
      std::sort(group.begin(), group.end(), [](const Cell* a, const Cell* b) {
        return a->platform.name < b->platform.name;
      });
      std::vector<ExplorationRow> rows;
      rows.reserve(group.size());
      for (const Cell* c : group) rows.push_back(c->row);
      const auto front = pareto_front(rows, cfg_.objectives);

      if (r + 1 < n_rungs) {
        // Successive-halving selection: the front always survives; pads
        // fill toward the keep cap; the rest is cut.
        std::vector<char> keep(group.size(), 0);
        for (const std::size_t i : front) keep[i] = 1;
        std::size_t kept = front.size();
        const auto frac = [&](double f) {
          return static_cast<std::size_t>(
              std::ceil(f * static_cast<double>(group.size())));
        };
        const std::size_t cap = std::max(frac(cfg_.keep_fraction), kept);
        const std::size_t pad = frac(cfg_.pad_fraction);
        for (const Objective o : cfg_.objectives) {
          std::vector<std::size_t> order(group.size());
          for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
          std::sort(order.begin(), order.end(),
                    [&](std::size_t a, std::size_t b) {
                      const double va = objective_value(rows[a], o);
                      const double vb = objective_value(rows[b], o);
                      if (va != vb) return va < vb;
                      return group[a]->platform.name < group[b]->platform.name;
                    });
          for (std::size_t i = 0; i < pad && i < order.size(); ++i) {
            if (kept >= cap) break;
            if (!keep[order[i]]) {
              keep[order[i]] = 1;
              ++kept;
            }
          }
        }
        for (std::size_t i = 0; i < group.size(); ++i) {
          if (!keep[i]) {
            group[i]->alive = false;
            ++rs.cut;
          } else {
            group[i]->off_front = true;
          }
        }
        for (const std::size_t i : front) group[i]->off_front = false;
      } else {
        for (const std::size_t i : front) {
          report.frontier.push_back(group[i]->row);
          report.frontier_platforms.push_back(group[i]->platform);
        }
      }
    }
    if (r + 1 == n_rungs) report.full_horizon_evals = rs.evaluated;
    report.rungs.push_back(rs);
  }
  report.candidates_seen = seen.size();
  return report;
}

void SearchDriver::print_frontier(std::ostream& os,
                                  const SearchReport& report) {
  trace::ScopedOstreamFormat guard(os);
  std::size_t name_w = 20;
  std::size_t wl_w = 0;
  for (const auto& r : report.frontier) {
    name_w = std::max(name_w, r.platform.size());
    wl_w = std::max(wl_w, r.workload.size());
  }
  const bool with_workload = wl_w > 0;
  const int nw = static_cast<int>(name_w + 2);
  const int ww = static_cast<int>(std::max<std::size_t>(wl_w, 8) + 2);
  // Sim columns only — no wall clock — so a given report prints byte-
  // identically across runs and hosts. Separator sized from the header
  // it underlines (print_table's hard-coded-width bug, not repeated).
  std::ostringstream header;
  header << std::left << std::setw(nw) << "platform";
  if (with_workload) header << std::setw(ww) << "workload";
  header << std::right << std::setw(6) << "done" << std::setw(14)
         << "sim_time_us" << std::setw(14) << "thru_mbs" << std::setw(12)
         << "goodput_mbs" << std::setw(12) << "p50_ns" << std::setw(12)
         << "p99_ns" << std::setw(12) << "queue_ns" << std::setw(10)
         << "bus_util" << std::setw(10) << "txns" << std::setw(12) << "bytes"
         << std::setw(12) << "cost";
  os << header.str() << "\n";
  os << std::string(header.str().size(), '-') << "\n";
  for (const auto& r : report.frontier) {
    os << std::left << std::setw(nw) << r.platform;
    if (with_workload) os << std::setw(ww) << r.workload;
    os << std::right << std::setw(6) << (r.completed ? "yes" : "NO")
       << std::setw(14) << std::fixed << std::setprecision(2) << r.sim_time_us
       << std::setw(14) << std::setprecision(1) << r.throughput_mbps()
       << std::setw(12) << r.goodput_mbps << std::setw(12) << r.p50_latency_ns
       << std::setw(12) << r.p99_latency_ns << std::setw(12) << r.mean_queue_ns
       << std::setw(10) << std::setprecision(3) << r.bus_utilization
       << std::setw(10) << r.transactions << std::setw(12) << r.bytes
       << std::setw(12) << std::setprecision(1) << r.cost << "\n";
  }
  os << "rungs:";
  for (const auto& rs : report.rungs) {
    os << " [h=" << rs.horizon.to_string() << " eval=" << rs.evaluated
       << " carry=" << rs.carried << " cut=" << rs.cut
       << " abort=" << rs.aborted << "]";
  }
  os << "\ncandidates=" << report.candidates_seen
     << " proposed=" << report.proposed
     << " duplicates=" << report.duplicates
     << " pruned=" << report.pruned_cells
     << " full_horizon_evals=" << report.full_horizon_evals
     << " frontier=" << report.frontier.size() << "\n";
}

}  // namespace stlm::expl
