#pragma once
// Adaptive exploration: Pareto-front search over the Platform x Workload
// knob space (successive halving + neighbor mutation) instead of an
// exhaustive sweep.
//
// The driver evaluates candidate cells in rungs of increasing simulated
// horizon. A cell whose workload *completes* at any horizon has a final,
// horizon-independent row (the slice loop stops at event starvation, so
// re-running it with a longer budget reproduces the same row bit for
// bit) — it is carried forward, never re-simulated. Only cells still
// running at the rung's horizon pay for the next, longer rung; that is
// what caps full-horizon evaluations well below the grid size. Between
// rungs the survivor set shrinks to the Pareto front plus a configurable
// pad of near-front cells, and surviving dominated cells re-run under an
// EvalBudget that aborts them once they overshoot the completion times
// the front has already demonstrated.
//
// Determinism: candidate identity is (platform name, workload), results
// land in per-cell slots, every set operation (selection, fronts, the
// final frontier) runs over canonically sorted cells, and mutation draws
// its SplitMix64 stream from the parent cell's name hash — never from
// execution order. Same-seed searches are byte-identical, at any thread
// count.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "explore/explorer.hpp"

namespace stlm::expl {

// Search objectives. All are minimized internally; bandwidth objectives
// are negated so "higher is better" fits the same dominance rule.
enum class Objective : std::uint8_t { Throughput, Goodput, P99, Cost };
const char* objective_name(Objective o);

// The minimized scalar objective `o` takes on row `r`.
double objective_value(const ExplorationRow& r, Objective o);

// True when `a` Pareto-dominates `b`: no objective worse, at least one
// strictly better (minimized values).
bool dominates(const ExplorationRow& a, const ExplorationRow& b,
               const std::vector<Objective>& objectives);

// Indices of the non-dominated rows of `rows` under `objectives`, in
// input order. Non-strict ties survive: two rows with identical
// objective vectors are both on the front.
std::vector<std::size_t> pareto_front(const std::vector<ExplorationRow>& rows,
                                      const std::vector<Objective>& objectives);

struct SearchConfig {
  // Dominance objectives for selection and the final frontier.
  std::vector<Objective> objectives{Objective::Throughput, Objective::P99,
                                    Objective::Cost};
  // Successive-halving horizons, shortest first; the last entry is the
  // full horizon an exhaustive sweep would use. Cells completing at an
  // early horizon are exact and never re-run (see file comment).
  std::vector<Time> horizons{Time::ms(2), Time::ms(200)};
  // After each non-final rung, survivors per workload group are capped
  // at max(ceil(keep_fraction * group), front size): the front always
  // survives; dominated cells beyond the cap are cut.
  double keep_fraction = 0.5;
  // Per-objective insurance pad: the top ceil(pad_fraction * group)
  // cells on each single objective survive selection even when
  // dominated (a short-horizon row may under-sell a cell).
  double pad_fraction = 0.10;
  // Neighbor mutation (0 = off): a cell whose rung-0 evaluation
  // completes proposes up to mutation_limit one-knob neighbors
  // (core::grid_neighbors over `space`), which join rung 0 while it
  // drains; their cells may propose again up to mutation_depth hops
  // from a seed candidate.
  std::size_t mutation_depth = 0;
  std::size_t mutation_limit = 4;
  core::KnobSpace space{};
  // Root seed for mutation's neighbor choice (per-cell streams derive
  // from it and the cell's name hash).
  std::uint64_t seed = 0x5eed;
  unsigned n_threads = 1;
  // Early termination of dominated survivors at rungs > 0: abort once
  // simulated time exceeds abort_slack x the longest completion time
  // any completed cell has demonstrated (0 disables). An aborted cell
  // is pruned — dropped from the search with a truncated row.
  double abort_slack = 4.0;
};

struct RungStats {
  Time horizon = Time::zero();
  std::size_t evaluated = 0;  // cells simulated at this rung's horizon
  std::size_t carried = 0;    // completed cells carried forward, not re-run
  std::size_t cut = 0;        // cells dropped by selection after this rung
  std::size_t aborted = 0;    // budgeted runs stopped early this rung
};

struct SearchReport {
  // Per-workload-group Pareto fronts of the surviving full-horizon rows,
  // sorted by (workload, platform name); frontier_platforms[i] is the
  // full Platform the i-th row was measured on.
  std::vector<ExplorationRow> frontier;
  std::vector<core::Platform> frontier_platforms;
  std::vector<RungStats> rungs;
  std::size_t candidates_seen = 0;     // distinct cells admitted overall
  std::size_t proposed = 0;            // mutation proposals generated
  std::size_t duplicates = 0;          // proposals rejected as already seen
  std::size_t pruned_cells = 0;        // evaluations aborted by budget
  std::size_t full_horizon_evals = 0;  // evaluations run at the last horizon
};

class SearchDriver {
public:
  explicit SearchDriver(SearchConfig cfg = {});

  // Search the platform x workload grid with `ex` evaluating cells
  // (workload factories come from the cases; `ex`'s bound factory is
  // unused). Deterministic for a fixed (config, platforms, workloads).
  SearchReport run(Explorer& ex, const std::vector<core::Platform>& platforms,
                   const std::vector<WorkloadCase>& workloads);

  // Single-workload search using the factory bound to `ex`.
  SearchReport run(Explorer& ex, const std::vector<core::Platform>& platforms);

  // Frontier table. Sim columns only — no wall clock — so the printout
  // for a given report is byte-identical across runs and hosts (the CI
  // search job diffs two of these).
  static void print_frontier(std::ostream& os, const SearchReport& report);

private:
  SearchConfig cfg_;
};

}  // namespace stlm::expl
