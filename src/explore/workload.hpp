#pragma once
// Reusable workload PEs for exploration, benchmarks, and tests.
//
// All behaviours are written against core::ExecContext only — the same
// objects run untimed, CCATB-annotated, over a CAM, or as RTOS tasks.

#include <cstdint>
#include <string>

#include "core/pe.hpp"
#include "ship/messages.hpp"

namespace stlm::expl {

// Sends `count` messages of `payload_bytes` on channel "out", spending
// `compute_cycles` between messages.
class ProducerPe final : public core::ProcessingElement {
public:
  ProducerPe(std::string name, std::uint64_t count, std::size_t payload_bytes,
             std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        bytes_(payload_bytes),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& out = ctx.channel("out");
    ship::VectorMsg<> msg(bytes_, 0xa5);
    for (std::uint64_t i = 0; i < count_; ++i) {
      if (compute_) ctx.consume(compute_);
      out.send(msg);
    }
  }

private:
  std::uint64_t count_;
  std::size_t bytes_;
  std::uint64_t compute_;
};

// Receives `count` messages on channel "in".
class SinkPe final : public core::ProcessingElement {
public:
  SinkPe(std::string name, std::uint64_t count,
         std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        compute_(compute_cycles) {}

  std::uint64_t received() const { return received_; }

  void run(core::ExecContext& ctx) override {
    ship::ship_if& in = ctx.channel("in");
    ship::VectorMsg<> msg;
    received_ = 0;
    for (std::uint64_t i = 0; i < count_; ++i) {
      in.recv(msg);
      if (compute_) ctx.consume(compute_);
      ++received_;
    }
  }

private:
  std::uint64_t count_;
  std::uint64_t compute_;
  std::uint64_t received_ = 0;
};

// Pipeline stage: forwards `count` messages from "in" to "out" after
// `compute_cycles` of work per message.
class StagePe final : public core::ProcessingElement {
public:
  StagePe(std::string name, std::uint64_t count, std::uint64_t compute_cycles)
      : ProcessingElement(std::move(name)),
        count_(count),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& in = ctx.channel("in");
    ship::ship_if& out = ctx.channel("out");
    ship::VectorMsg<> msg;
    for (std::uint64_t i = 0; i < count_; ++i) {
      in.recv(msg);
      ctx.consume(compute_);
      out.send(msg);
    }
  }

private:
  std::uint64_t count_;
  std::uint64_t compute_;
};

// Issues `count` request/reply round trips on channel "out".
class RequesterPe final : public core::ProcessingElement {
public:
  RequesterPe(std::string name, std::uint64_t count, std::size_t payload_bytes,
              std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        bytes_(payload_bytes),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& out = ctx.channel("out");
    ship::VectorMsg<> req(bytes_, 0x11), resp;
    for (std::uint64_t i = 0; i < count_; ++i) {
      if (compute_) ctx.consume(compute_);
      out.request(req, resp);
    }
  }

private:
  std::uint64_t count_;
  std::size_t bytes_;
  std::uint64_t compute_;
};

// Serves `count` requests on channel "in" (recv + compute + reply).
class EchoServerPe final : public core::ProcessingElement {
public:
  EchoServerPe(std::string name, std::uint64_t count,
               std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& in = ctx.channel("in");
    ship::VectorMsg<> msg;
    for (std::uint64_t i = 0; i < count_; ++i) {
      in.recv(msg);
      if (compute_) ctx.consume(compute_);
      in.reply(msg);
    }
  }

private:
  std::uint64_t count_;
  std::uint64_t compute_;
};

}  // namespace stlm::expl
