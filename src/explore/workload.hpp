#pragma once
// Compatibility shim: the workload PEs moved into the dedicated
// src/workload/ subsystem (generators, specs, trace replay). Existing
// code keeps using them under stlm::expl.

#include "workload/generators.hpp"

namespace stlm::expl {

using workload::EchoServerPe;
using workload::ProducerPe;
using workload::RequesterPe;
using workload::SinkPe;
using workload::StagePe;

}  // namespace stlm::expl
