#pragma once
// Declarative synthetic workload specs.
//
// A WorkloadSpec is a small value object describing a traffic pattern —
// shape, seed, stream count, message count, payload/gap distributions —
// and compiles into a GraphFactory: the same factory signature the
// exploration engine invokes once per candidate platform. Specs are the
// workload axis of the exploration grid (platform x workload); see
// workload_candidates() for the canonical set.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/system_graph.hpp"
#include "ocp/banked_memory.hpp"
#include "workload/generators.hpp"

namespace stlm::workload {

// Same signature as expl::Explorer::GraphFactory (the explorer aliases
// this type): fill the graph, park PE ownership in `owned`.
using GraphFactory = std::function<void(
    core::SystemGraph& graph,
    std::vector<std::unique_ptr<core::ProcessingElement>>& owned)>;

enum class TrafficShape : std::uint8_t {
  Uniform,       // independent paced streams, randomized sizes/gaps
  Bursty,        // ON/OFF bursts against long idle gaps
  RequestReply,  // client/server round trips
  Pipeline,      // single chain: source -> N stages -> sink
  Banked,        // DMA masters posting OoO windows at a banked memory
};
const char* traffic_shape_name(TrafficShape s);

struct WorkloadSpec {
  std::string name = "uniform";
  TrafficShape shape = TrafficShape::Uniform;
  std::uint64_t seed = 0x5eed;
  // Stream pairs (producer/sink or client/server); for Pipeline: the
  // number of intermediate stages.
  std::size_t streams = 2;
  std::uint64_t messages = 8;  // per stream / through the pipeline
  ByteRange payload{64, 64};
  CycleRange gap{10, 100};       // uniform/reqreply inter-message compute
  CycleRange burst{2, 5};        // bursty: messages per burst
  CycleRange off_gap{200, 800};  // bursty: OFF compute between bursts
  std::uint64_t on_gap = 1;      // bursty: intra-burst compute
  std::uint64_t serve_cycles = 50;   // reqreply: server compute per request
  std::uint64_t stage_cycles = 100;  // pipeline: per-stage compute
  std::size_t queue_depth = 2;
  // Banked shape: posted-window depth per DMA master and write share.
  // On split platforms (`Platform::max_outstanding > 1`) the window is
  // what keeps several accesses in flight so the banked target's
  // service-time spread reorders completions; atomic platforms drain the
  // same posts serially (CamIf::post contract).
  std::size_t posted_window = 4;
  std::uint64_t write_pct = 60;
  ocp::BankedMemoryConfig mem_cfg{};

  // Compile into a self-contained factory (copies the spec). Channel
  // roles are declared at connect() time — generator graphs never need a
  // discovery probe run.
  GraphFactory factory() const;
};

// A named workload — one cell of the exploration grid's workload axis.
struct WorkloadCase {
  std::string name;
  GraphFactory factory;
};

WorkloadCase make_case(const WorkloadSpec& spec);

// Canonical workload axis: uniform, bursty, request/reply, pipeline,
// banked (DMA windows at a banked memory) — five deterministic seeded
// workloads sized so a full platform-grid x workload sweep stays cheap.
// All derive their per-stream seeds from `seed`, so two sweeps with the
// same seed are bit-identical.
std::vector<WorkloadCase> workload_candidates(std::uint64_t seed = 0x5eed);

}  // namespace stlm::workload
