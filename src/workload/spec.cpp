#include "workload/spec.hpp"

#include "kernel/report.hpp"
#include "workload/memory_traffic.hpp"

namespace stlm::workload {

const char* traffic_shape_name(TrafficShape s) {
  switch (s) {
    case TrafficShape::Uniform: return "uniform";
    case TrafficShape::Bursty: return "bursty";
    case TrafficShape::RequestReply: return "reqreply";
    case TrafficShape::Pipeline: return "pipeline";
    case TrafficShape::Banked: return "banked";
  }
  return "?";
}

namespace {

using Owned = std::vector<std::unique_ptr<core::ProcessingElement>>;

void build_uniform(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  for (std::size_t i = 0; i < s.streams; ++i) {
    const std::string id = std::to_string(i);
    auto src = std::make_unique<UniformTrafficPe>(
        "uni" + id, SplitMix64::derive(s.seed, i), s.messages, s.payload,
        s.gap);
    auto sink = std::make_unique<SinkPe>("uni" + id + ".sink", s.messages);
    g.add_pe(*src);
    g.add_pe(*sink);
    g.connect("uni" + id, *src, "out", *sink, "in", s.queue_depth,
              ship::Role::Master);
    o.push_back(std::move(src));
    o.push_back(std::move(sink));
  }
}

void build_bursty(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  for (std::size_t i = 0; i < s.streams; ++i) {
    const std::string id = std::to_string(i);
    auto src = std::make_unique<BurstyTrafficPe>(
        "burst" + id, SplitMix64::derive(s.seed, i), s.messages, s.payload,
        s.burst, s.off_gap, s.on_gap);
    auto sink = std::make_unique<SinkPe>("burst" + id + ".sink", s.messages);
    g.add_pe(*src);
    g.add_pe(*sink);
    g.connect("burst" + id, *src, "out", *sink, "in", s.queue_depth,
              ship::Role::Master);
    o.push_back(std::move(src));
    o.push_back(std::move(sink));
  }
}

void build_reqreply(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  for (std::size_t i = 0; i < s.streams; ++i) {
    const std::string id = std::to_string(i);
    auto client = std::make_unique<SeededRequesterPe>(
        "client" + id, SplitMix64::derive(s.seed, i), s.messages, s.payload,
        s.gap);
    auto server = std::make_unique<EchoServerPe>("server" + id, s.messages,
                                                 s.serve_cycles);
    g.add_pe(*client);
    g.add_pe(*server);
    g.connect("rpc" + id, *client, "out", *server, "in", s.queue_depth,
              ship::Role::Master);
    o.push_back(std::move(client));
    o.push_back(std::move(server));
  }
}

void build_pipeline(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  auto src = std::make_unique<UniformTrafficPe>(
      "source", SplitMix64::derive(s.seed, 0), s.messages, s.payload, s.gap);
  auto sink = std::make_unique<SinkPe>("sink", s.messages);
  std::vector<std::unique_ptr<StagePe>> stages;
  for (std::size_t i = 0; i < s.streams; ++i) {
    stages.push_back(std::make_unique<StagePe>(
        "stage" + std::to_string(i), s.messages, s.stage_cycles));
  }

  g.add_pe(*src);
  for (auto& st : stages) g.add_pe(*st);
  g.add_pe(*sink);

  core::ProcessingElement* up = src.get();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    g.connect("pipe" + std::to_string(i), *up, "out", *stages[i], "in",
              s.queue_depth, ship::Role::Master);
    up = stages[i].get();
  }
  g.connect("pipe" + std::to_string(stages.size()), *up, "out", *sink, "in",
            s.queue_depth, ship::Role::Master);

  o.push_back(std::move(src));
  for (auto& st : stages) o.push_back(std::move(st));
  o.push_back(std::move(sink));
}

void build_banked(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  // DMA masters hammering one banked memory through posted windows, plus
  // one SHIP stream for cross traffic so the bus carries wrapper bursts
  // next to the raw memory accesses.
  core::MemorySpec mem;
  mem.name = "dram";
  mem.cfg = s.mem_cfg;
  for (std::size_t i = 0; i < s.streams; ++i) {
    const std::string id = std::to_string(i);
    MemoryTrafficConfig cfg;
    cfg.seed = SplitMix64::derive(s.seed, i);
    cfg.accesses = s.messages;
    cfg.base = mem.base;
    cfg.span = mem.size;
    cfg.payload = s.payload;
    cfg.gap = s.gap;
    cfg.window = s.posted_window;
    cfg.write_pct = s.write_pct;
    auto dma = std::make_unique<MemoryTrafficPe>("dma" + id, cfg);
    g.add_pe(*dma);
    mem.clients.push_back(dma.get());
    o.push_back(std::move(dma));
  }
  g.add_memory(std::move(mem));

  auto src = std::make_unique<UniformTrafficPe>(
      "cross", SplitMix64::derive(s.seed, s.streams), s.messages, s.payload,
      s.gap);
  auto sink = std::make_unique<SinkPe>("cross.sink", s.messages);
  g.add_pe(*src);
  g.add_pe(*sink);
  g.connect("cross", *src, "out", *sink, "in", s.queue_depth,
            ship::Role::Master);
  o.push_back(std::move(src));
  o.push_back(std::move(sink));
}

}  // namespace

GraphFactory WorkloadSpec::factory() const {
  STLM_ASSERT(streams > 0, "workload spec needs at least one stream: " + name);
  STLM_ASSERT(messages > 0, "workload spec needs at least one message: " + name);
  return [spec = *this](core::SystemGraph& g, Owned& o) {
    switch (spec.shape) {
      case TrafficShape::Uniform: build_uniform(spec, g, o); return;
      case TrafficShape::Bursty: build_bursty(spec, g, o); return;
      case TrafficShape::RequestReply: build_reqreply(spec, g, o); return;
      case TrafficShape::Pipeline: build_pipeline(spec, g, o); return;
      case TrafficShape::Banked: build_banked(spec, g, o); return;
    }
    throw ElaborationError("unknown traffic shape in workload " + spec.name);
  };
}

WorkloadCase make_case(const WorkloadSpec& spec) {
  return WorkloadCase{spec.name, spec.factory()};
}

std::vector<WorkloadCase> workload_candidates(std::uint64_t seed) {
  std::vector<WorkloadCase> cases;

  WorkloadSpec uniform;
  uniform.name = "uniform";
  uniform.shape = TrafficShape::Uniform;
  uniform.seed = SplitMix64::derive(seed, 1);
  uniform.streams = 2;
  uniform.messages = 8;
  uniform.payload = {32, 128};
  uniform.gap = {20, 200};
  cases.push_back(make_case(uniform));

  WorkloadSpec bursty;
  bursty.name = "bursty";
  bursty.shape = TrafficShape::Bursty;
  bursty.seed = SplitMix64::derive(seed, 2);
  bursty.streams = 2;
  bursty.messages = 8;
  bursty.payload = {64, 256};
  bursty.burst = {2, 4};
  bursty.off_gap = {400, 1200};
  cases.push_back(make_case(bursty));

  WorkloadSpec rpc;
  rpc.name = "reqreply";
  rpc.shape = TrafficShape::RequestReply;
  rpc.seed = SplitMix64::derive(seed, 3);
  rpc.streams = 2;
  rpc.messages = 6;
  rpc.payload = {16, 64};
  rpc.gap = {50, 150};
  rpc.serve_cycles = 50;
  cases.push_back(make_case(rpc));

  WorkloadSpec pipe;
  pipe.name = "pipeline";
  pipe.shape = TrafficShape::Pipeline;
  pipe.seed = SplitMix64::derive(seed, 4);
  pipe.streams = 3;  // stages
  pipe.messages = 8;
  pipe.payload = {64, 64};
  pipe.gap = {10, 50};
  pipe.stage_cycles = 150;
  cases.push_back(make_case(pipe));

  // The banked-memory case is what exercises OoO for real: two DMA
  // masters keep posted windows in flight against a banked target whose
  // row hits/misses and bank conflicts spread service times, so split
  // platforms ("-splitN" grid points, e.g. a split PLB) complete out of
  // issue order while atomic platforms drain the same posts serially.
  WorkloadSpec banked;
  banked.name = "banked";
  banked.shape = TrafficShape::Banked;
  banked.seed = SplitMix64::derive(seed, 5);
  banked.streams = 2;  // DMA masters
  banked.messages = 12;  // accesses per master
  banked.payload = {32, 96};
  banked.gap = {0, 30};
  banked.posted_window = 4;
  cases.push_back(make_case(banked));

  return cases;
}

}  // namespace stlm::workload
