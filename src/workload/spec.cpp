#include "workload/spec.hpp"

#include "kernel/report.hpp"

namespace stlm::workload {

const char* traffic_shape_name(TrafficShape s) {
  switch (s) {
    case TrafficShape::Uniform: return "uniform";
    case TrafficShape::Bursty: return "bursty";
    case TrafficShape::RequestReply: return "reqreply";
    case TrafficShape::Pipeline: return "pipeline";
  }
  return "?";
}

namespace {

using Owned = std::vector<std::unique_ptr<core::ProcessingElement>>;

void build_uniform(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  for (std::size_t i = 0; i < s.streams; ++i) {
    const std::string id = std::to_string(i);
    auto src = std::make_unique<UniformTrafficPe>(
        "uni" + id, SplitMix64::derive(s.seed, i), s.messages, s.payload,
        s.gap);
    auto sink = std::make_unique<SinkPe>("uni" + id + ".sink", s.messages);
    g.add_pe(*src);
    g.add_pe(*sink);
    g.connect("uni" + id, *src, "out", *sink, "in", s.queue_depth,
              ship::Role::Master);
    o.push_back(std::move(src));
    o.push_back(std::move(sink));
  }
}

void build_bursty(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  for (std::size_t i = 0; i < s.streams; ++i) {
    const std::string id = std::to_string(i);
    auto src = std::make_unique<BurstyTrafficPe>(
        "burst" + id, SplitMix64::derive(s.seed, i), s.messages, s.payload,
        s.burst, s.off_gap, s.on_gap);
    auto sink = std::make_unique<SinkPe>("burst" + id + ".sink", s.messages);
    g.add_pe(*src);
    g.add_pe(*sink);
    g.connect("burst" + id, *src, "out", *sink, "in", s.queue_depth,
              ship::Role::Master);
    o.push_back(std::move(src));
    o.push_back(std::move(sink));
  }
}

void build_reqreply(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  for (std::size_t i = 0; i < s.streams; ++i) {
    const std::string id = std::to_string(i);
    auto client = std::make_unique<SeededRequesterPe>(
        "client" + id, SplitMix64::derive(s.seed, i), s.messages, s.payload,
        s.gap);
    auto server = std::make_unique<EchoServerPe>("server" + id, s.messages,
                                                 s.serve_cycles);
    g.add_pe(*client);
    g.add_pe(*server);
    g.connect("rpc" + id, *client, "out", *server, "in", s.queue_depth,
              ship::Role::Master);
    o.push_back(std::move(client));
    o.push_back(std::move(server));
  }
}

void build_pipeline(const WorkloadSpec& s, core::SystemGraph& g, Owned& o) {
  auto src = std::make_unique<UniformTrafficPe>(
      "source", SplitMix64::derive(s.seed, 0), s.messages, s.payload, s.gap);
  auto sink = std::make_unique<SinkPe>("sink", s.messages);
  std::vector<std::unique_ptr<StagePe>> stages;
  for (std::size_t i = 0; i < s.streams; ++i) {
    stages.push_back(std::make_unique<StagePe>(
        "stage" + std::to_string(i), s.messages, s.stage_cycles));
  }

  g.add_pe(*src);
  for (auto& st : stages) g.add_pe(*st);
  g.add_pe(*sink);

  core::ProcessingElement* up = src.get();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    g.connect("pipe" + std::to_string(i), *up, "out", *stages[i], "in",
              s.queue_depth, ship::Role::Master);
    up = stages[i].get();
  }
  g.connect("pipe" + std::to_string(stages.size()), *up, "out", *sink, "in",
            s.queue_depth, ship::Role::Master);

  o.push_back(std::move(src));
  for (auto& st : stages) o.push_back(std::move(st));
  o.push_back(std::move(sink));
}

}  // namespace

GraphFactory WorkloadSpec::factory() const {
  STLM_ASSERT(streams > 0, "workload spec needs at least one stream: " + name);
  STLM_ASSERT(messages > 0, "workload spec needs at least one message: " + name);
  return [spec = *this](core::SystemGraph& g, Owned& o) {
    switch (spec.shape) {
      case TrafficShape::Uniform: build_uniform(spec, g, o); return;
      case TrafficShape::Bursty: build_bursty(spec, g, o); return;
      case TrafficShape::RequestReply: build_reqreply(spec, g, o); return;
      case TrafficShape::Pipeline: build_pipeline(spec, g, o); return;
    }
    throw ElaborationError("unknown traffic shape in workload " + spec.name);
  };
}

WorkloadCase make_case(const WorkloadSpec& spec) {
  return WorkloadCase{spec.name, spec.factory()};
}

std::vector<WorkloadCase> workload_candidates(std::uint64_t seed) {
  std::vector<WorkloadCase> cases;

  WorkloadSpec uniform;
  uniform.name = "uniform";
  uniform.shape = TrafficShape::Uniform;
  uniform.seed = SplitMix64::derive(seed, 1);
  uniform.streams = 2;
  uniform.messages = 8;
  uniform.payload = {32, 128};
  uniform.gap = {20, 200};
  cases.push_back(make_case(uniform));

  WorkloadSpec bursty;
  bursty.name = "bursty";
  bursty.shape = TrafficShape::Bursty;
  bursty.seed = SplitMix64::derive(seed, 2);
  bursty.streams = 2;
  bursty.messages = 8;
  bursty.payload = {64, 256};
  bursty.burst = {2, 4};
  bursty.off_gap = {400, 1200};
  cases.push_back(make_case(bursty));

  WorkloadSpec rpc;
  rpc.name = "reqreply";
  rpc.shape = TrafficShape::RequestReply;
  rpc.seed = SplitMix64::derive(seed, 3);
  rpc.streams = 2;
  rpc.messages = 6;
  rpc.payload = {16, 64};
  rpc.gap = {50, 150};
  rpc.serve_cycles = 50;
  cases.push_back(make_case(rpc));

  WorkloadSpec pipe;
  pipe.name = "pipeline";
  pipe.shape = TrafficShape::Pipeline;
  pipe.seed = SplitMix64::derive(seed, 4);
  pipe.streams = 3;  // stages
  pipe.messages = 8;
  pipe.payload = {64, 64};
  pipe.gap = {10, 50};
  pipe.stage_cycles = 150;
  cases.push_back(make_case(pipe));

  return cases;
}

}  // namespace stlm::workload
