#pragma once
// DMA-like memory traffic source: a PE issuing seeded, addressed
// reads/writes against a mapped memory target (SystemGraph::add_memory)
// through a sliding window of posted transactions.
//
// This is the canonical out-of-order initiator: with `window > 1` it
// keeps several descriptors in flight via CamIf::post(), so on a split
// bus in front of a banked memory the unequal row-hit/row-miss/conflict
// service times genuinely reorder completions — the traffic pattern the
// phase-accurate instrumentation (grant vs. completion divergence,
// queueing-delay percentiles) exists to measure.
//
// At the abstract levels (component assembly, CCATB) there is no
// interconnect: ExecContext::mem_bus() is null and every access is
// modeled as `fallback_cycles` of compute. All random draws happen in
// both modes, so a given seed produces the same access sequence on
// every level, platform, and sweep-worker thread.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cam/cam_if.hpp"
#include "cam/retry.hpp"
#include "core/pe.hpp"
#include "workload/generators.hpp"
#include "workload/rng.hpp"

namespace stlm::workload {

struct MemoryTrafficConfig {
  std::uint64_t seed = 1;
  std::uint64_t accesses = 32;
  std::uint64_t base = 0x80000000;     // must match the MemorySpec range
  std::size_t span = 1 << 14;          // addresses drawn from [base, base+span)
  ByteRange payload{32, 128};          // access size range
  CycleRange gap{0, 20};               // compute between accesses
  std::size_t window = 4;              // posted descriptors in flight
  std::uint64_t write_pct = 60;        // % of accesses that are writes
  std::uint64_t fallback_cycles = 8;   // per-access compute when bus-less
};

class MemoryTrafficPe final : public core::ProcessingElement {
public:
  MemoryTrafficPe(std::string name, MemoryTrafficConfig cfg)
      : ProcessingElement(std::move(name)), cfg_(cfg) {}

  void run(core::ExecContext& ctx) override {
    SplitMix64 rng(cfg_.seed);
    cam::CamIf* bus = ctx.mem_bus();
    cam::RetryPolicy* retry = ctx.mem_retry();
    const std::size_t window = std::max<std::size_t>(cfg_.window, 1);
    std::vector<Txn> txns(window);
    std::vector<std::uint8_t> scratch;
    for (std::uint64_t i = 0; i < cfg_.accesses; ++i) {
      const std::uint64_t gap = rng.uniform(cfg_.gap.min, cfg_.gap.max);
      if (gap) ctx.consume(gap);
      std::size_t bytes = rng.uniform(cfg_.payload.min, cfg_.payload.max);
      if (bytes == 0) bytes = 1;
      if (bytes > cfg_.span) bytes = cfg_.span;
      // Word-aligned address with the whole access inside the window.
      const std::uint64_t room = static_cast<std::uint64_t>(
          cfg_.span - bytes + 1);
      const std::uint64_t addr = cfg_.base + rng.next() % room / 4 * 4;
      const bool is_write = rng.next() % 100 < cfg_.write_pct;
      if (!bus) {
        ctx.consume(cfg_.fallback_cycles);
        continue;
      }
      Txn& t = txns[i % window];
      // Slot reuse: wait out the descriptor's previous flight. Later
      // slots may complete before earlier ones (OoO) — the window only
      // bounds the depth, it does not order completions. With a retry
      // policy attached the drained slot is settled first: error
      // responses re-issue inline (blocking) before the slot is reused.
      if (i >= window) {
        t.done.wait(ctx.sim());
        if (retry) retry->settle(t);
      }
      if (is_write) {
        scratch.assign(bytes, static_cast<std::uint8_t>(i * 31 + 7));
        t.begin_write(addr, scratch.data(), scratch.size());
      } else {
        t.begin_read(addr, static_cast<std::uint32_t>(bytes));
      }
      if (retry) {
        retry->post(t);
      } else {
        bus->post(ctx.mem_master(), t);
      }
    }
    if (bus) {
      const std::uint64_t posted =
          std::min<std::uint64_t>(cfg_.accesses, window);
      for (std::uint64_t k = 0; k < posted; ++k) {
        Txn& t = txns[static_cast<std::size_t>(k)];
        t.done.wait(ctx.sim());
        if (retry) retry->settle(t);
      }
    }
  }

  const MemoryTrafficConfig& config() const { return cfg_; }

private:
  MemoryTrafficConfig cfg_;
};

}  // namespace stlm::workload
