#include "workload/validate.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

namespace stlm::workload {

namespace {

bool replayable(trace::TxnKind k) {
  return k == trace::TxnKind::Send || k == trace::TxnKind::Request ||
         k == trace::TxnKind::Reply;
}

// Channel name -> that channel's compared records, preserving log order.
std::map<std::string, std::vector<trace::TxnRecord>> bucket(
    const trace::TxnLogger& log, bool ship_only) {
  std::map<std::string, std::vector<trace::TxnRecord>> out;
  for (const auto& r : log.records()) {
    if (ship_only && !replayable(r.kind)) continue;
    out[log.channel_name(r.channel)].push_back(r);
  }
  return out;
}

bool within(double original, double replayed, const ValidateConfig& cfg) {
  const double tol =
      std::max(cfg.rel_tolerance * std::abs(original), cfg.abs_floor_ns);
  return std::abs(replayed - original) <= tol;
}

}  // namespace

ReplayValidation validate_replay(const trace::TxnLogger& original,
                                 const trace::TxnLogger& replayed,
                                 const ValidateConfig& cfg) {
  auto orig = bucket(original, cfg.ship_rows_only);
  auto rep = bucket(replayed, cfg.ship_rows_only);

  // Union of channel names, alphabetical (map order) — deterministic.
  std::vector<std::string> names;
  for (const auto& [name, _] : orig) names.push_back(name);
  for (const auto& [name, _] : rep) {
    if (!orig.contains(name)) names.push_back(name);
  }
  std::sort(names.begin(), names.end());

  ReplayValidation v;
  v.ok = true;
  for (const auto& name : names) {
    ChannelComparison c;
    c.channel = name;
    c.in_original = orig.contains(name);
    c.in_replayed = rep.contains(name);
    if (c.in_original) c.original = trace::latency_dist(orig[name]);
    if (c.in_replayed) c.replayed = trace::latency_dist(rep[name]);
    c.counts_ok = !cfg.require_exact_counts ||
                  c.original.count == c.replayed.count;
    c.bytes_ok =
        !cfg.require_exact_counts || c.original.bytes == c.replayed.bytes;

    const auto compare = [&](const char* stat, double o, double r) {
      c.stats.push_back(StatDelta{stat, o, r, within(o, r, cfg)});
    };
    compare("mean", c.original.mean_ns, c.replayed.mean_ns);
    compare("p50", c.original.p50_ns, c.replayed.p50_ns);
    compare("p95", c.original.p95_ns, c.replayed.p95_ns);
    compare("p99", c.original.p99_ns, c.replayed.p99_ns);
    compare("queue", c.original.mean_queue_ns, c.replayed.mean_queue_ns);

    if (!c.ok()) v.ok = false;
    v.channels.push_back(std::move(c));
  }
  if (v.channels.empty()) v.ok = false;  // nothing to validate is a failure
  return v;
}

std::string ReplayValidation::report() const {
  std::ostringstream os;
  trace::ScopedOstreamFormat guard(os);
  os << "replay validation: " << (ok ? "PASS" : "FAIL") << " ("
     << channels.size() << " channel" << (channels.size() == 1 ? "" : "s")
     << ")\n";
  os << std::fixed << std::setprecision(1);
  for (const auto& c : channels) {
    os << "  channel '" << c.channel << "': ";
    if (!c.in_original || !c.in_replayed) {
      os << "MISSING from " << (c.in_original ? "replayed" : "original")
         << " run\n";
      continue;
    }
    os << (c.ok() ? "ok" : "FAIL") << "\n";
    os << "    txns " << c.original.count << " -> " << c.replayed.count
       << (c.counts_ok ? "" : "  FAIL") << ", bytes " << c.original.bytes
       << " -> " << c.replayed.bytes << (c.bytes_ok ? "" : "  FAIL") << "\n";
    for (const auto& s : c.stats) {
      os << "    " << std::left << std::setw(6) << s.name << std::right
         << std::setw(12) << s.original_ns << " ns -> " << std::setw(12)
         << s.replayed_ns << " ns" << (s.ok ? "" : "  FAIL") << "\n";
    }
  }
  return os.str();
}

}  // namespace stlm::workload
