#pragma once
// Deterministic PRNG for synthetic workload generation.
//
// splitmix64 (Steele/Lea/Flood) — tiny state, full 64-bit output, and the
// same sequence on every platform and standard library. Workload
// generators must not touch std::rand or std::mt19937: exploration rows
// have to be bit-identical between sequential and parallel sweeps, across
// hosts, and across toolchains, so the generator stream may depend on the
// seed and nothing else.

#include <cstdint>

namespace stlm::workload {

class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [lo, hi] (inclusive). Modulo bias is irrelevant at workload
  // ranges (hi - lo << 2^64) and keeps the mapping trivially portable.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next();  // full 64-bit range: span wrapped to 0
    return lo + next() % span;
  }

  // Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Derive an independent stream seed (per traffic source) from a root
  // seed: feed the root through one splitmix step per index.
  static constexpr std::uint64_t derive(std::uint64_t root,
                                        std::uint64_t index) {
    SplitMix64 g(root ^ (0xd1b54a32d192ed03ull * (index + 1)));
    return g.next();
  }

private:
  std::uint64_t state_;
};

}  // namespace stlm::workload
