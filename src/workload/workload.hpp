#pragma once
// Umbrella header for the workload engine: seeded synthetic generators,
// declarative workload specs, and trace capture/replay.

#include "workload/generators.hpp"
#include "workload/rng.hpp"
#include "workload/spec.hpp"
#include "workload/trace_replay.hpp"
