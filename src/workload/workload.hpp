#pragma once
// Umbrella header for the workload engine: seeded synthetic generators,
// declarative workload specs, trace capture/replay, and replay
// validation.

#include "workload/generators.hpp"
#include "workload/memory_traffic.hpp"
#include "workload/rng.hpp"
#include "workload/spec.hpp"
#include "workload/trace_replay.hpp"
#include "workload/validate.hpp"
