#include "workload/trace_replay.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "kernel/report.hpp"

namespace stlm::workload {

std::vector<ChannelScript> build_replay(const trace::TxnLogger& log,
                                        const ReplayConfig& cfg) {
  STLM_ASSERT(!cfg.clock.is_zero(), "replay clock must be positive");

  // Gather the replayable rows per channel. Records are appended at
  // completion time, so re-sort per channel by start (stable: equal
  // starts keep log order, which is issue order on a blocking master).
  struct Row {
    const trace::TxnRecord* rec;
    std::size_t seq;
  };
  std::map<std::string, std::vector<Row>> rows_of;
  bool any = false;
  Time epoch = Time::max();
  const auto& records = log.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::TxnRecord& r = records[i];
    if (r.kind != trace::TxnKind::Send && r.kind != trace::TxnKind::Request &&
        r.kind != trace::TxnKind::Reply) {
      continue;  // bus-level row: the mapping regenerates these
    }
    rows_of[log.channel_name(r.channel)].push_back(Row{&r, i});
    if (r.kind != trace::TxnKind::Reply && r.start < epoch) epoch = r.start;
    any = true;
  }
  if (!any) {
    throw ElaborationError(
        "trace replay: no SHIP-level records (send/request/reply) in the "
        "trace — capture at component-assembly or CCATB level");
  }

  std::vector<ChannelScript> scripts;
  for (auto& [channel, rows] : rows_of) {
    std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      if (a.rec->start != b.rec->start) return a.rec->start < b.rec->start;
      return a.seq < b.seq;
    });

    ChannelScript script;
    script.channel = channel;
    // Gaps are measured from the previous operation's *completion* (the
    // send's end; for a request, its reply's end — that is when the
    // blocking master resumed) to the next start: the re-issued call
    // pays its own service time again, so charging start-to-start would
    // double-count every transaction's duration.
    Time prev = epoch;
    std::vector<Time> send_ends;  // per-action captured ends (sink pacing)
    // Unreplied requests: action index + the request row's end time (the
    // reply gap is measured from there to the reply's start).
    struct Outstanding {
      std::size_t action;
      Time req_end;
    };
    std::deque<Outstanding> outstanding;
    for (const Row& row : rows) {
      const trace::TxnRecord& r = *row.rec;
      if (r.kind == trace::TxnKind::Reply) {
        if (outstanding.empty()) {
          throw ElaborationError("trace replay: reply without outstanding "
                                 "request on channel '" + channel + "'");
        }
        ReplayAction& req = script.actions[outstanding.front().action];
        req.reply_bytes = r.bytes;
        req.reply_gap_cycles =
            r.start > outstanding.front().req_end
                ? (r.start - outstanding.front().req_end) / cfg.clock
                : 0;
        outstanding.pop_front();
        prev = r.end;  // the requester resumed here
        continue;
      }
      ReplayAction a;
      a.kind = r.kind;
      a.bytes = r.bytes;
      a.gap_cycles = r.start > prev ? (r.start - prev) / cfg.clock : 0;
      send_ends.push_back(r.end);
      prev = r.end;
      if (r.kind == trace::TxnKind::Request) {
        outstanding.push_back(Outstanding{script.actions.size(), r.end});
      }
      script.actions.push_back(a);
    }
    if (!outstanding.empty()) {
      throw ElaborationError("trace replay: request without captured reply "
                             "on channel '" + channel + "'");
    }

    // Consumer pacing for streaming channels (every action a Send): in a
    // depth-d FIFO, push j completes at max(its own transfer, pop of
    // message j-d) — so the captured end of message j is exactly when
    // pop j-d had freed a slot on a congested channel, and an upper
    // bound on any pop j-d otherwise. Pacing recv j to the captured end
    // of message j+d is therefore the latest consistent pop schedule:
    // it reproduces the queue-full backpressure (most of a congested
    // channel's send latency) and leaves uncongested sends untouched.
    // Request channels need no pacing — the master blocks for the reply
    // and reply_gap_cycles already carries the serve time.
    const bool all_sends =
        std::all_of(script.actions.begin(), script.actions.end(),
                    [](const ReplayAction& a) {
                      return a.kind == trace::TxnKind::Send;
                    });
    if (all_sends) {
      const std::size_t n = script.actions.size();
      Time prev_target = epoch;
      for (std::size_t j = 0; j < n; ++j) {
        const Time target = send_ends[std::min(j + cfg.queue_depth, n - 1)];
        script.actions[j].recv_gap_cycles =
            target > prev_target ? (target - prev_target) / cfg.clock : 0;
        prev_target = target;
      }
    }
    if (!script.actions.empty()) scripts.push_back(std::move(script));
  }
  if (scripts.empty()) {
    throw ElaborationError(
        "trace replay: trace carries only replies — nothing to re-issue");
  }
  return scripts;
}

void TraceReplayPe::run(core::ExecContext& ctx) {
  ship::ship_if& out = ctx.channel("out");
  RawMsg msg, resp;
  std::uint8_t fill = 0;
  for (const ReplayAction& a : script_.actions) {
    if (a.gap_cycles) ctx.consume(a.gap_cycles);
    msg.data.assign(a.bytes, ++fill);
    if (a.kind == trace::TxnKind::Request) {
      out.request(msg, resp);
    } else {
      out.send(msg);
    }
  }
}

void ReplaySinkPe::run(core::ExecContext& ctx) {
  ship::ship_if& in = ctx.channel("in");
  RawMsg msg, resp;
  for (const ReplayAction& a : script_.actions) {
    if (a.recv_gap_cycles) ctx.consume(a.recv_gap_cycles);
    in.recv(msg);
    if (a.kind == trace::TxnKind::Request) {
      if (a.reply_gap_cycles) ctx.consume(a.reply_gap_cycles);
      resp.data.assign(a.reply_bytes, 0x5a);
      in.reply(resp);
    }
  }
}

GraphFactory replay_factory(const trace::TxnLogger& log,
                            const ReplayConfig& cfg) {
  auto scripts = build_replay(log, cfg);
  return [scripts = std::move(scripts), depth = cfg.queue_depth](
             core::SystemGraph& g,
             std::vector<std::unique_ptr<core::ProcessingElement>>& o) {
    for (const ChannelScript& s : scripts) {
      auto master = std::make_unique<TraceReplayPe>(s.channel + ".replay", s);
      auto slave = std::make_unique<ReplaySinkPe>(s.channel + ".sink", s);
      g.add_pe(*master);
      g.add_pe(*slave);
      g.connect(s.channel, *master, "out", *slave, "in", depth,
                ship::Role::Master);
      o.push_back(std::move(master));
      o.push_back(std::move(slave));
    }
  };
}

WorkloadCase replay_case(std::string name, const trace::TxnLogger& log,
                         const ReplayConfig& cfg) {
  return WorkloadCase{std::move(name), replay_factory(log, cfg)};
}

}  // namespace stlm::workload
