#pragma once
// Workload generator PEs: fixed-rate primitives plus seeded synthetic
// traffic sources (uniform, bursty ON/OFF, request/reply) with
// configurable payload-size distributions.
//
// All behaviours are written against core::ExecContext only — the same
// objects run untimed, CCATB-annotated, over a CAM, or as RTOS tasks.
// Seeded generators draw every random quantity from a SplitMix64 stream
// created locally in run() (PEs must be re-entrant), so a given seed
// produces the identical message sequence on every platform, abstraction
// level, and sweep-worker thread.

#include <cstdint>
#include <string>

#include "core/pe.hpp"
#include "ship/messages.hpp"
#include "workload/rng.hpp"

namespace stlm::workload {

// Sends `count` messages of `payload_bytes` on channel "out", spending
// `compute_cycles` between messages.
class ProducerPe final : public core::ProcessingElement {
public:
  ProducerPe(std::string name, std::uint64_t count, std::size_t payload_bytes,
             std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        bytes_(payload_bytes),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& out = ctx.channel("out");
    ship::VectorMsg<> msg(bytes_, 0xa5);
    for (std::uint64_t i = 0; i < count_; ++i) {
      if (compute_) ctx.consume(compute_);
      out.send(msg);
    }
  }

private:
  std::uint64_t count_;
  std::size_t bytes_;
  std::uint64_t compute_;
};

// Receives `count` messages on channel "in".
class SinkPe final : public core::ProcessingElement {
public:
  SinkPe(std::string name, std::uint64_t count,
         std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        compute_(compute_cycles) {}

  std::uint64_t received() const { return received_; }

  void run(core::ExecContext& ctx) override {
    ship::ship_if& in = ctx.channel("in");
    ship::VectorMsg<> msg;
    received_ = 0;
    for (std::uint64_t i = 0; i < count_; ++i) {
      in.recv(msg);
      if (compute_) ctx.consume(compute_);
      ++received_;
    }
  }

private:
  std::uint64_t count_;
  std::uint64_t compute_;
  std::uint64_t received_ = 0;
};

// Pipeline stage: forwards `count` messages from "in" to "out" after
// `compute_cycles` of work per message.
class StagePe final : public core::ProcessingElement {
public:
  StagePe(std::string name, std::uint64_t count, std::uint64_t compute_cycles)
      : ProcessingElement(std::move(name)),
        count_(count),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& in = ctx.channel("in");
    ship::ship_if& out = ctx.channel("out");
    ship::VectorMsg<> msg;
    for (std::uint64_t i = 0; i < count_; ++i) {
      in.recv(msg);
      ctx.consume(compute_);
      out.send(msg);
    }
  }

private:
  std::uint64_t count_;
  std::uint64_t compute_;
};

// Issues `count` request/reply round trips on channel "out".
class RequesterPe final : public core::ProcessingElement {
public:
  RequesterPe(std::string name, std::uint64_t count, std::size_t payload_bytes,
              std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        bytes_(payload_bytes),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& out = ctx.channel("out");
    ship::VectorMsg<> req(bytes_, 0x11), resp;
    for (std::uint64_t i = 0; i < count_; ++i) {
      if (compute_) ctx.consume(compute_);
      out.request(req, resp);
    }
  }

private:
  std::uint64_t count_;
  std::size_t bytes_;
  std::uint64_t compute_;
};

// Serves `count` requests on channel "in" (recv + compute + reply).
class EchoServerPe final : public core::ProcessingElement {
public:
  EchoServerPe(std::string name, std::uint64_t count,
               std::uint64_t compute_cycles = 0)
      : ProcessingElement(std::move(name)),
        count_(count),
        compute_(compute_cycles) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& in = ctx.channel("in");
    ship::VectorMsg<> msg;
    for (std::uint64_t i = 0; i < count_; ++i) {
      in.recv(msg);
      if (compute_) ctx.consume(compute_);
      in.reply(msg);
    }
  }

private:
  std::uint64_t count_;
  std::uint64_t compute_;
};

// ------------------------------------------------------------------------
// Seeded synthetic traffic sources. Shared size/gap ranges are inclusive.

struct ByteRange {
  std::size_t min = 64;
  std::size_t max = 64;
};

struct CycleRange {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

// Uniform traffic: every message draws its payload size and the compute
// gap preceding it independently from the configured ranges.
class UniformTrafficPe final : public core::ProcessingElement {
public:
  UniformTrafficPe(std::string name, std::uint64_t seed, std::uint64_t count,
                   ByteRange payload, CycleRange gap)
      : ProcessingElement(std::move(name)),
        seed_(seed),
        count_(count),
        payload_(payload),
        gap_(gap) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& out = ctx.channel("out");
    SplitMix64 rng(seed_);
    ship::VectorMsg<> msg;
    for (std::uint64_t i = 0; i < count_; ++i) {
      const std::uint64_t gap = rng.uniform(gap_.min, gap_.max);
      if (gap) ctx.consume(gap);
      msg.data.assign(rng.uniform(payload_.min, payload_.max),
                      static_cast<std::uint8_t>(rng.next()));
      out.send(msg);
    }
  }

private:
  std::uint64_t seed_;
  std::uint64_t count_;
  ByteRange payload_;
  CycleRange gap_;
};

// Bursty ON/OFF traffic: bursts of back-to-back messages (burst length
// drawn from `burst`, `on_gap` compute cycles between messages inside a
// burst) separated by long OFF gaps drawn from `off_gap`. Models DMA-like
// sources that stress arbiter fairness far harder than uniform streams.
class BurstyTrafficPe final : public core::ProcessingElement {
public:
  BurstyTrafficPe(std::string name, std::uint64_t seed, std::uint64_t count,
                  ByteRange payload, CycleRange burst, CycleRange off_gap,
                  std::uint64_t on_gap = 1)
      : ProcessingElement(std::move(name)),
        seed_(seed),
        count_(count),
        payload_(payload),
        burst_(burst),
        off_(off_gap),
        on_gap_(on_gap) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& out = ctx.channel("out");
    SplitMix64 rng(seed_);
    ship::VectorMsg<> msg;
    std::uint64_t sent = 0;
    while (sent < count_) {
      const std::uint64_t off = rng.uniform(off_.min, off_.max);
      if (off) ctx.consume(off);
      std::uint64_t burst = rng.uniform(burst_.min, burst_.max);
      if (burst == 0) burst = 1;
      for (std::uint64_t j = 0; j < burst && sent < count_; ++j, ++sent) {
        if (j && on_gap_) ctx.consume(on_gap_);
        msg.data.assign(rng.uniform(payload_.min, payload_.max),
                        static_cast<std::uint8_t>(rng.next()));
        out.send(msg);
      }
    }
  }

private:
  std::uint64_t seed_;
  std::uint64_t count_;
  ByteRange payload_;
  CycleRange burst_;
  CycleRange off_;
  std::uint64_t on_gap_;
};

// Request/reply client: paced round trips with randomized request sizes.
// Pair with EchoServerPe on the far terminal.
class SeededRequesterPe final : public core::ProcessingElement {
public:
  SeededRequesterPe(std::string name, std::uint64_t seed, std::uint64_t count,
                    ByteRange payload, CycleRange gap)
      : ProcessingElement(std::move(name)),
        seed_(seed),
        count_(count),
        payload_(payload),
        gap_(gap) {}

  void run(core::ExecContext& ctx) override {
    ship::ship_if& out = ctx.channel("out");
    SplitMix64 rng(seed_);
    ship::VectorMsg<> req, resp;
    for (std::uint64_t i = 0; i < count_; ++i) {
      const std::uint64_t gap = rng.uniform(gap_.min, gap_.max);
      if (gap) ctx.consume(gap);
      req.data.assign(rng.uniform(payload_.min, payload_.max),
                      static_cast<std::uint8_t>(rng.next()));
      out.request(req, resp);
    }
  }

private:
  std::uint64_t seed_;
  std::uint64_t count_;
  ByteRange payload_;
  CycleRange gap_;
};

}  // namespace stlm::workload
