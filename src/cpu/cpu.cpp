#include "cpu/cpu.hpp"

namespace stlm::cpu {

CpuModel::CpuModel(Simulator& sim, std::string name, Clock& clk,
                   Module* parent)
    : Module(sim, std::move(name), parent),
      clk_(clk),
      bus_(*this, "bus") {}

void CpuModel::consume(std::uint64_t cycles) {
  if (cycles == 0) return;
  cycles_ += cycles;
  wait(clk_.period() * cycles);
}

std::uint32_t CpuModel::mmio_read32(std::uint64_t addr) {
  ++bus_txns_;
  const ocp::Response r = bus_->transport(ocp::Request::read(addr, 4));
  if (!r.good()) {
    throw ProtocolError(full_name() + ": bus error reading 0x" +
                        std::to_string(addr));
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | r.data[static_cast<std::size_t>(i)];
  }
  return v;
}

void CpuModel::mmio_write32(std::uint64_t addr, std::uint32_t value) {
  std::vector<std::uint8_t> bytes(4);
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  mmio_write(addr, std::move(bytes));
}

std::vector<std::uint8_t> CpuModel::mmio_read(std::uint64_t addr,
                                              std::uint32_t bytes) {
  ++bus_txns_;
  const ocp::Response r = bus_->transport(ocp::Request::read(addr, bytes));
  if (!r.good()) {
    throw ProtocolError(full_name() + ": bus error reading block at 0x" +
                        std::to_string(addr));
  }
  return r.data;
}

void CpuModel::mmio_write(std::uint64_t addr, std::vector<std::uint8_t> bytes) {
  ++bus_txns_;
  const ocp::Response r =
      bus_->transport(ocp::Request::write(addr, std::move(bytes)));
  if (!r.good()) {
    throw ProtocolError(full_name() + ": bus error writing 0x" +
                        std::to_string(addr));
  }
}

}  // namespace stlm::cpu
