#include "cpu/cpu.hpp"

namespace stlm::cpu {

CpuModel::CpuModel(Simulator& sim, std::string name, Clock& clk,
                   Module* parent)
    : Module(sim, std::move(name), parent),
      clk_(clk),
      bus_(*this, "bus") {}

void CpuModel::consume(std::uint64_t cycles) {
  if (cycles == 0) return;
  cycles_ += cycles;
  wait(clk_.period() * cycles);
}

std::uint32_t CpuModel::mmio_read32(std::uint64_t addr) {
  ++bus_txns_;
  PooledTxn t(sim().txn_pool());
  t->begin_read(addr, 4);
  bus_->transport(*t);
  if (!t->data_valid()) {
    throw ProtocolError(full_name() + ": bus error reading 0x" +
                        std::to_string(addr));
  }
  return ocp::u32_from_le(t->resp_data.data());
}

void CpuModel::mmio_write32(std::uint64_t addr, std::uint32_t value) {
  std::uint8_t bytes[4];
  ocp::u32_to_le(value, bytes);
  mmio_write_span(addr, bytes, sizeof bytes);
}

std::vector<std::uint8_t> CpuModel::mmio_read(std::uint64_t addr,
                                              std::uint32_t bytes) {
  std::vector<std::uint8_t> out;
  mmio_read_append(addr, bytes, out);
  return out;
}

void CpuModel::mmio_read_append(std::uint64_t addr, std::uint32_t bytes,
                                std::vector<std::uint8_t>& out) {
  ++bus_txns_;
  PooledTxn t(sim().txn_pool());
  t->begin_read(addr, bytes);
  bus_->transport(*t);
  if (!t->data_valid()) {
    throw ProtocolError(full_name() + ": bus error reading block at 0x" +
                        std::to_string(addr));
  }
  out.insert(out.end(), t->resp_data.begin(), t->resp_data.end());
}

void CpuModel::mmio_write(std::uint64_t addr, std::vector<std::uint8_t> bytes) {
  mmio_write_span(addr, bytes.data(), bytes.size());
}

void CpuModel::mmio_write_span(std::uint64_t addr, const void* p,
                               std::size_t n) {
  ++bus_txns_;
  PooledTxn t(sim().txn_pool());
  t->begin_write(addr, p, n);
  bus_->transport(*t);
  if (!t->data_valid()) {
    throw ProtocolError(full_name() + ": bus error writing 0x" +
                        std::to_string(addr));
  }
}

}  // namespace stlm::cpu
