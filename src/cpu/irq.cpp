#include "cpu/irq.hpp"

namespace stlm::cpu {

IrqController::IrqController(Simulator& sim, std::string name, Module* parent)
    : Module(sim, std::move(name), parent),
      irq_event_(sim, full_name() + ".irq") {}

void IrqController::attach(Signal<bool>& sig, std::uint32_t line) {
  STLM_ASSERT(line < 32, "IRQ line out of range on " + full_name());
  spawn_method(
      "line" + std::to_string(line),
      [this, line] {
        pending_ |= (1u << line);
        irq_event_.notify_delta();
      },
      {&sig.posedge_event()}, /*run_at_start=*/false);
}

int IrqController::claim() {
  if (pending_ == 0) return -1;
  for (std::uint32_t i = 0; i < 32; ++i) {
    if (pending_ & (1u << i)) {
      pending_ &= ~(1u << i);
      ++taken_;
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace stlm::cpu
