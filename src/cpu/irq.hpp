#pragma once
// Interrupt controller: latches rising edges of sideband IRQ signals into
// a pending mask and raises an event the RTOS ISR dispatcher waits on.

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "kernel/signal.hpp"

namespace stlm::cpu {

class IrqController final : public Module {
public:
  IrqController(Simulator& sim, std::string name, Module* parent = nullptr);

  // Attach a sideband signal as IRQ line `line` (0..31).
  void attach(Signal<bool>& sig, std::uint32_t line);

  // Pending lines (bit mask).
  std::uint32_t pending() const { return pending_; }
  // Claim (and clear) the lowest pending line; returns -1 if none.
  int claim();

  Event& irq_event() { return irq_event_; }
  std::uint64_t interrupts_taken() const { return taken_; }

private:
  std::uint32_t pending_ = 0;
  Event irq_event_;
  std::uint64_t taken_ = 0;
};

}  // namespace stlm::cpu
