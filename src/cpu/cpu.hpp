#pragma once
// Embedded processor model.
//
// The SW partition of a mapped system executes on this model: an
// instruction-budget CPU (computation is charged as cycle counts, the
// Herrera-style timing annotation) with one OCP TL master port into the
// communication architecture and a set of interrupt inputs.

#include <cstdint>
#include <string>

#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "ocp/tl_if.hpp"

namespace stlm::cpu {

class CpuModel final : public Module {
public:
  CpuModel(Simulator& sim, std::string name, Clock& clk,
           Module* parent = nullptr);

  // Bind to a CAM master port (or any OCP TL target).
  ocp::OcpMasterPort& bus() { return bus_; }

  Clock& clock() const { return clk_; }

  // Charge `cycles` of computation time (callable from task context).
  void consume(std::uint64_t cycles);

  // Memory-mapped I/O helpers; each is one bus transaction. All of them
  // ride a pooled Txn, so steady-state MMIO traffic performs no heap
  // allocation and no event-registry churn.
  std::uint32_t mmio_read32(std::uint64_t addr);
  void mmio_write32(std::uint64_t addr, std::uint32_t value);
  std::vector<std::uint8_t> mmio_read(std::uint64_t addr, std::uint32_t bytes);
  void mmio_write(std::uint64_t addr, std::vector<std::uint8_t> bytes);
  // Zero-copy variants for driver hot paths.
  void mmio_read_append(std::uint64_t addr, std::uint32_t bytes,
                        std::vector<std::uint8_t>& out);
  void mmio_write_span(std::uint64_t addr, const void* p, std::size_t n);

  std::uint64_t cycles_consumed() const { return cycles_; }
  std::uint64_t bus_transactions() const { return bus_txns_; }

private:
  Clock& clk_;
  ocp::OcpMasterPort bus_;
  std::uint64_t cycles_ = 0;
  std::uint64_t bus_txns_ = 0;
};

}  // namespace stlm::cpu
