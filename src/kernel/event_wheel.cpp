// stlm-lint: hot-path — dispatched on every event/delta; steady-state
// simulation must stay heap-allocation-free (see tools/stlm_lint.py).
#include "kernel/event_wheel.hpp"

#include <algorithm>
#include <bit>

namespace stlm::detail {

namespace {
inline bool entry_less(const TimedEntry& a, const TimedEntry& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}
}  // namespace

// Bucket storage (2048 buckets, ~80 KiB) is allocated on the first push:
// scratch simulators that never schedule a timed event (role discovery,
// construction-only tests) skip the cost entirely.
EventWheel::EventWheel() = default;

void EventWheel::push_into_wheel(const TimedEntry& e, std::uint64_t idx) {
  Bucket& b = bucket(idx);
  // Appends usually arrive in (when, seq) order (seq is monotone and most
  // bucket traffic is same-cycle); keep the sorted flag alive so peek()
  // skips the lazy sort on the common path.
  if (b.sorted && b.v.size() > b.head && entry_less(e, b.v.back())) {
    b.sorted = false;
  }
  b.v.push_back(e);
  ++wheel_count_;
  occ_set(idx);
  if (idx < scan_idx_) scan_idx_ = idx;
}

std::uint64_t EventWheel::next_occupied(std::uint64_t from) const {
  // Walk the bitmap word-wise from `from`'s slot, wrapping around the
  // window. Low 6 bits of an absolute index and of its slot agree
  // (kWheelBuckets is a multiple of 64), so an absolute index can be
  // rebuilt from the word scan directly.
  std::uint64_t idx = from;
  std::size_t word = (idx & (kWheelBuckets - 1)) >> 6;
  std::uint64_t mask = ~std::uint64_t{0} << (idx & 63);
  for (std::size_t step = 0; step <= kOccWords; ++step) {
    const std::uint64_t bits = occ_[word] & mask;
    if (bits) {
      return (idx & ~std::uint64_t{63}) +
             static_cast<std::uint64_t>(std::countr_zero(bits));
    }
    idx = (idx & ~std::uint64_t{63}) + 64;
    word = (word + 1) & (kOccWords - 1);
    mask = ~std::uint64_t{0};
  }
  return from;  // unreachable while the precondition holds
}

void EventWheel::push(const TimedEntry& e) {
  if (buckets_.empty()) buckets_.resize(kWheelBuckets);
#ifdef STLM_OBS
  ++stats_.pushes;
  const std::size_t sz = size() + 1;
  if (sz > stats_.peak_size) stats_.peak_size = sz;
#endif
  const std::uint64_t idx = idx_of(e.when);
  if (idx >= base_ + kWheelBuckets) {
#ifdef STLM_OBS
    ++stats_.overflow_pushes;
#endif
    overflow_.push(e);
    return;
  }
  if (idx < base_) {
    // Only possible after a far-future rebase followed by an earlier
    // notify from outside run() — rare enough to pay a full respill:
    // park everything (including the new entry) in overflow, then
    // re-anchor the window at the new entry's bucket, which pulls the
    // near portion back in.
    spill_wheel();
    overflow_.push(e);
    rebase(idx);
    return;
  }
  push_into_wheel(e, idx);
}

void EventWheel::spill_wheel() {
  if (wheel_count_ == 0) return;
  for (Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.v.size(); ++i) overflow_.push(b.v[i]);
    b.v.clear();
    b.head = 0;
    b.sorted = true;
  }
  wheel_count_ = 0;
  occ_.fill(0);
}

void EventWheel::rebase(std::uint64_t idx) {
#ifdef STLM_OBS
  ++stats_.rebases;
#endif
  base_ = idx;
  scan_idx_ = idx;
  const std::uint64_t horizon = base_ + kWheelBuckets;
  // Min-heap pop order is (when, seq), so each bucket receives its
  // entries already sorted and the sorted flag survives.
  while (!overflow_.empty() && idx_of(overflow_.top().when) < horizon) {
    push_into_wheel(overflow_.top(), idx_of(overflow_.top().when));
    overflow_.pop();
  }
}

const TimedEntry* EventWheel::peek(StaleFn stale, const void* ctx) {
  for (;;) {
    if (wheel_count_ == 0) {
      if (overflow_.empty()) return nullptr;
      rebase(idx_of(overflow_.top().when));
      continue;
    }
    scan_idx_ = next_occupied(scan_idx_);
    Bucket& b = bucket(scan_idx_);
    if (!b.sorted) {
      std::sort(b.v.begin() + static_cast<std::ptrdiff_t>(b.head), b.v.end(),
                entry_less);
      b.sorted = true;
    }
    const TimedEntry& e = b.v[b.head];
    if (stale(ctx, e)) {
      ++b.head;
      --wheel_count_;
      if (b.head == b.v.size()) {
        b.v.clear();
        b.head = 0;
        b.sorted = true;
        occ_clear(scan_idx_);
      }
      continue;
    }
    return &e;
  }
}

TimedEntry EventWheel::pop() {
  Bucket& b = bucket(scan_idx_);
  TimedEntry e = b.v[b.head++];
  --wheel_count_;
  if (b.head == b.v.size()) {
    b.v.clear();
    b.head = 0;
    b.sorted = true;
    occ_clear(scan_idx_);
  }
  return e;
}

}  // namespace stlm::detail
