#pragma once
// Calendar-queue (bucketed event wheel) for the timed notification queue.
//
// The kernel's hot timed-scheduling pattern is thousands of short waits
// clustered a few bus cycles apart: wait(cycle), wait(occupancy),
// per-transaction timeouts. A binary heap pays O(log n) comparisons and a
// cache-hostile sift per push/pop for what is almost always "append near
// the cursor, pop from the front". The wheel quantises absolute
// timestamps into fixed-width buckets (kBucketShift bits of femtoseconds
// per bucket, so one bucket ≈ 1 ns — below any modeled clock period) and
// keeps a cursor that only moves forward; push is an O(1) append for any
// event within the wheel horizon (~2 µs ahead), and far-future events
// spill to a conventional min-heap that is migrated bucket-wise when the
// cursor reaches it.
//
// Determinism contract (tested by kernel tie-break tests): entries that
// share a timestamp fire in push order. Every entry carries the
// Simulator's monotonically increasing sequence number; buckets sort
// lazily by (when, seq) and the overflow heap orders by the same key, so
// the wheel reproduces the old std::priority_queue order exactly —
// including across the overflow/wheel boundary, because a timestamp's
// entries always land on the same side of it.
//
// Cancellation: the wheel never removes an entry eagerly. Event::cancel
// and notify-override bump the owner's generation counter; the wheel
// prunes such stale entries when they reach the front, via the caller's
// StaleFn (a plain function pointer + context, so peek allocates
// nothing). This is the same lazy scheme the heap used.

#include <array>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "kernel/time.hpp"

namespace stlm {

class Event;
class Process;

namespace detail {

// One timed registration: exactly one of event/proc is set. `gen` is the
// owner's generation counter at registration; a mismatch marks the entry
// stale (cancelled or overridden).
struct TimedEntry {
  Time when;
  std::uint64_t seq;  // FIFO tie-break for determinism
  Event* event;
  Process* proc;
  std::uint64_t gen;
  bool operator>(const TimedEntry& o) const {
    if (when != o.when) return when > o.when;
    return seq > o.seq;
  }
};

class EventWheel {
public:
  // Stale predicate: plain function pointer + opaque context so that
  // peek() can prune without allocating a std::function.
  using StaleFn = bool (*)(const void* ctx, const TimedEntry& e);

  // 2^20 fs ≈ 1.05 ns per bucket: finer than any modeled clock period,
  // so same-cycle events share a bucket and different cycles rarely do.
  static constexpr unsigned kBucketShift = 20;
  // 2048 buckets ≈ 2.1 µs of look-ahead before events spill to the
  // overflow heap. Power of two so the slot mask is a single AND.
  static constexpr std::size_t kWheelBuckets = 2048;

  EventWheel();

  // Number of queued entries, including not-yet-pruned stale ones (the
  // same semantics the heap's empty()/size() had, which idle() relies
  // on: a cancelled-but-unpruned entry keeps the simulator non-idle).
  std::size_t size() const { return wheel_count_ + overflow_.size(); }
  bool empty() const { return size() == 0; }

  // Queue an entry. `e.when` may be any absolute time >= the last
  // popped timestamp; entries beyond the wheel horizon go to the
  // overflow heap.
  void push(const TimedEntry& e);

  // Behaviour counters for the obs::Profiler: how often pushes landed in
  // the wheel vs. spilled to the overflow heap, how often the window was
  // re-anchored, and the peak queue occupancy. Plain members (no heap, no
  // branches beyond an increment) so this file's hot-path contract holds;
  // only maintained when built with STLM_OBS, zeros otherwise.
  struct Stats {
    std::uint64_t pushes = 0;
    std::uint64_t overflow_pushes = 0;
    std::uint64_t rebases = 0;
    std::size_t peak_size = 0;
  };
  const Stats& stats() const { return stats_; }

  // Earliest live entry, pruning stale leading entries via `stale` and
  // migrating overflow buckets as the cursor reaches them. Returns
  // nullptr when nothing live remains. The pointer is valid until the
  // next push/pop/peek.
  const TimedEntry* peek(StaleFn stale, const void* ctx);

  // Remove and return the entry peek() just returned. Must be called
  // immediately after a successful peek(), with no intervening push.
  TimedEntry pop();

private:
  struct Bucket {
    std::vector<TimedEntry> v;
    std::size_t head = 0;  // consumed prefix
    bool sorted = true;    // [head, end) is (when, seq)-ordered
  };

  static std::uint64_t idx_of(Time t) {
    return t.femtoseconds() >> kBucketShift;
  }
  Bucket& bucket(std::uint64_t idx) {
    return buckets_[idx & (kWheelBuckets - 1)];
  }

  // Occupancy bitmap: one bit per bucket slot, set while the bucket has
  // unconsumed entries. Sparse timelines (events many cycles apart) would
  // otherwise make the peek cursor crawl over hundreds of empty buckets
  // per pop; with the bitmap it jumps straight to the next occupied slot
  // with a countr_zero per 64 buckets.
  static constexpr std::size_t kOccWords = kWheelBuckets / 64;
  void occ_set(std::uint64_t idx) {
    const std::size_t slot = idx & (kWheelBuckets - 1);
    occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  void occ_clear(std::uint64_t idx) {
    const std::size_t slot = idx & (kWheelBuckets - 1);
    occ_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  // First occupied absolute bucket index >= `from` inside the wheel
  // window. Precondition: wheel_count_ > 0 (some bucket is occupied).
  std::uint64_t next_occupied(std::uint64_t from) const;

  void push_into_wheel(const TimedEntry& e, std::uint64_t idx);
  // Re-anchor the wheel window at absolute bucket `idx` (wheel must be
  // empty) and pull every overflow entry inside the new window in.
  void rebase(std::uint64_t idx);
  // Dump all wheel entries into the overflow heap (used by the rare
  // before-window push after a far-future rebase).
  void spill_wheel();

  std::vector<Bucket> buckets_;
  std::array<std::uint64_t, kOccWords> occ_{};
  std::priority_queue<TimedEntry, std::vector<TimedEntry>,
                      std::greater<TimedEntry>>
      overflow_;
  // Absolute bucket indices. The wheel window is [base_, base_ +
  // kWheelBuckets); entries at or past the end spill to overflow_.
  // scan_idx_ is the consume cursor: every wheel bucket below it is
  // empty. Invariant: base_ <= scan_idx_ <= base_ + kWheelBuckets.
  std::uint64_t base_ = 0;
  std::uint64_t scan_idx_ = 0;
  std::size_t wheel_count_ = 0;  // unconsumed entries in the wheel
  Stats stats_;
};

}  // namespace detail
}  // namespace stlm
