#include "kernel/clock.hpp"

#include "kernel/report.hpp"

namespace stlm {

Clock::Clock(Simulator& sim, std::string name, Time period, double duty,
             Time start, Module* parent)
    : Module(sim, std::move(name), parent),
      period_(period),
      start_(start),
      sig_(sim, full_name() + ".clk", false) {
  STLM_ASSERT(!period.is_zero(), "clock period must be positive: " + full_name());
  STLM_ASSERT(duty > 0.0 && duty < 1.0,
              "clock duty cycle must be in (0,1): " + full_name());
  high_ = Time::fs(static_cast<std::uint64_t>(
      static_cast<double>(period.femtoseconds()) * duty));
  STLM_ASSERT(!high_.is_zero() && high_ < period_,
              "clock duty cycle unrepresentable: " + full_name());
  low_ = period_ - high_;
  spawn_thread("gen", [this] { generate(); });
}

void Clock::generate() {
  if (!start_.is_zero()) wait(start_);
  for (;;) {
    sig_.write(true);
    ++cycles_;
    wait(high_);
    sig_.write(false);
    wait(low_);
  }
}

}  // namespace stlm
