#include "kernel/time.hpp"

#include <array>
#include <cstdio>

namespace stlm {

std::string Time::to_string() const {
  struct Unit {
    std::uint64_t scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 6> units{{
      {1'000'000'000'000'000ULL, "s"},
      {1'000'000'000'000ULL, "ms"},
      {1'000'000'000ULL, "us"},
      {1'000'000ULL, "ns"},
      {1'000ULL, "ps"},
      {1ULL, "fs"},
  }};
  if (fs_ == 0) return "0 s";
  for (const auto& u : units) {
    if (fs_ >= u.scale) {
      const double v = static_cast<double>(fs_) / static_cast<double>(u.scale);
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g %s", v, u.suffix);
      return buf;
    }
  }
  return "0 s";
}

}  // namespace stlm
