#pragma once
// Simulation events — the kernel's synchronization primitive.
//
// An Event supports the three SystemC notification flavours:
//   * notify()            — immediate: waiting processes become runnable in
//                            the current evaluation phase;
//   * notify_delta()      — delta: waiting processes run in the next delta
//                            cycle (after the update phase);
//   * notify(Time delay)  — timed: trigger after `delay` of simulated time.
//
// A pending (delta or timed) notification can be cancelled. An event holds
// at most one pending notification; a new notification overrides a pending
// one only if it would occur *earlier* (SystemC override rule).

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace stlm {

class Simulator;
class Process;
class ProcessBase;

class Event {
public:
  // Binds to the thread-current Simulator (which must exist).
  explicit Event(std::string name = "event");
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void notify();            // immediate
  void notify_delta();      // next delta cycle
  void notify(Time delay);  // timed (delay == 0 behaves like notify_delta)
  void cancel();            // drop a pending delta/timed notification

  bool pending() const { return delta_pending_ || timed_pending_; }
  const std::string& name() const { return name_; }
  Simulator& sim() const { return *sim_; }

  // Binds to an explicit simulator (used by kernel-owned events that may be
  // created while another simulator is current).
  Event(Simulator& sim, std::string name);

  // Kernel-internal: register a one-shot dynamic waiter (used by wait()).
  void add_dynamic_waiter(Process& p);

private:
  friend class Simulator;
  friend class Process;
  friend class ProcessBase;

  // Wake every dynamically waiting process and trigger statically
  // sensitive ones. Called by the scheduler (or by notify() directly).
  void trigger();

  struct DynWaiter {
    Process* proc;
    std::uint64_t gen;  // proc->wake_gen() at registration; stale if changed
  };

  Simulator* sim_;
  std::string name_;
  std::vector<DynWaiter> dynamic_;        // one-shot waiters
  std::vector<ProcessBase*> static_;      // statically sensitive processes
  std::uint64_t sched_gen_ = 0;           // bumps on cancel/trigger
  Time timed_when_ = Time::zero();        // valid while timed_pending_
  bool delta_pending_ = false;
  bool timed_pending_ = false;
};

}  // namespace stlm
