#pragma once
// Structural hierarchy: modules and ports.
//
// A Module is a named node in the design hierarchy that owns processes and
// registers its ports with the simulator's elaboration check. Modules are
// plain C++ objects composed by value inside parent modules (or on the
// test's stack); the hierarchy only tracks non-owning pointers.
//
// A Port<IF> is a typed, late-bound reference to a channel implementing
// interface IF. Unbound ports are reported by name before simulation
// starts.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/process.hpp"
#include "kernel/report.hpp"
#include "kernel/simulator.hpp"

namespace stlm {

class Module;

class PortBase {
public:
  PortBase(Module& owner, std::string name);
  virtual ~PortBase();

  PortBase(const PortBase&) = delete;
  PortBase& operator=(const PortBase&) = delete;

  virtual bool is_bound() const = 0;
  // True if this port may legally stay unbound (optional ports).
  virtual bool is_optional() const { return false; }

  const std::string& name() const { return name_; }
  std::string full_name() const;
  Module& owner() const { return *owner_; }

private:
  Module* owner_;
  std::string name_;
};

template <class IF>
class Port : public PortBase {
public:
  Port(Module& owner, std::string name) : PortBase(owner, std::move(name)) {}

  void bind(IF& target) {
    STLM_ASSERT(target_ == nullptr, "port already bound: " + full_name());
    target_ = &target;
  }
  void operator()(IF& target) { bind(target); }

  bool is_bound() const override { return target_ != nullptr; }

  IF* operator->() const {
    STLM_ASSERT(target_ != nullptr, "access through unbound port: " + full_name());
    return target_;
  }
  IF& get() const {
    STLM_ASSERT(target_ != nullptr, "access through unbound port: " + full_name());
    return *target_;
  }

private:
  IF* target_ = nullptr;
};

// A port that is allowed to remain unbound.
template <class IF>
class OptionalPort : public Port<IF> {
public:
  using Port<IF>::Port;
  bool is_optional() const override { return true; }
};

class Module {
public:
  Module(Simulator& sim, std::string name, Module* parent = nullptr);
  virtual ~Module();

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  std::string full_name() const;
  Simulator& sim() const { return sim_; }
  Module* parent() const { return parent_; }
  const std::vector<Module*>& children() const { return children_; }
  const std::vector<PortBase*>& ports() const { return ports_; }

  // Spawn a thread process owned by this module. The process name is
  // prefixed with the module's full name.
  Process& spawn_thread(std::string name, std::function<void()> body,
                        std::size_t stack_bytes = Process::kDefaultStackBytes);
  // Spawn a method process with static sensitivity.
  MethodProcess& spawn_method(std::string name, std::function<void()> fn,
                              std::vector<Event*> sensitivity,
                              bool run_at_start = true);

  // Kernel-internal: called from PortBase's constructor/destructor.
  void register_port(PortBase& p) { ports_.push_back(&p); }
  void unregister_port(PortBase& p);

private:
  Simulator& sim_;
  std::string name_;
  Module* parent_;
  std::vector<Module*> children_;
  std::vector<PortBase*> ports_;
  std::vector<std::unique_ptr<ProcessBase>> processes_;
};

}  // namespace stlm
