#include "kernel/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include "kernel/context.hpp"
#include "kernel/report.hpp"

#ifdef STLM_ASAN_FIBERS
extern "C" void __asan_unpoison_memory_region(const void* addr,
                                              std::size_t size);
#endif

namespace stlm::detail {

namespace {
std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}
}  // namespace

StackPool& StackPool::local() {
  thread_local StackPool pool;
  return pool;
}

StackPool::~StackPool() { trim(); }

StackPool::Block StackPool::map_block(std::size_t bytes) {
  const std::size_t page = page_size();
  void* raw = ::mmap(nullptr, bytes + page, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) {
    throw SimulationError("StackPool: mmap failed for coroutine stack");
  }
  // Guard page below the stack: an overflow faults instead of silently
  // scribbling over whatever mmap placed underneath.
  ::mprotect(raw, page, PROT_NONE);
  return Block{static_cast<char*>(raw) + page, bytes};
}

void StackPool::unmap_block(const Block& b) {
  const std::size_t page = page_size();
  ::munmap(b.base - page, b.bytes + page);
}

StackPool::Block StackPool::acquire(std::size_t bytes) {
  const std::size_t page = page_size();
  bytes = (bytes + page - 1) / page * page;
  SizeClass& sc = classes_[bytes];
  ++sc.in_use;
  if (sc.in_use > sc.hwm) sc.hwm = sc.in_use;
  if (!sc.free.empty()) {
    Block b = sc.free.back();
    sc.free.pop_back();
    ++reuses_;
#ifdef STLM_ASAN_FIBERS
    // The previous coroutine's shadow poison is meaningless for the next
    // user of this address range.
    __asan_unpoison_memory_region(b.base, b.bytes);
#endif
    return b;
  }
  ++maps_;
  return map_block(bytes);
}

void StackPool::release(Block b) {
  if (!b) return;
  SizeClass& sc = classes_[b.bytes];
  // A block may be released on a different thread than it was acquired
  // on (blocks are plain address ranges); such a pool never saw the
  // acquire, so guard the usage counter.
  if (sc.in_use > 0) --sc.in_use;
  if (sc.free.size() < sc.cache_cap()) {
    sc.free.push_back(b);
  } else {
    ++unmaps_;
    unmap_block(b);
  }
  // Epoch boundary: demand fully drained. Shed anything above the
  // two-epoch high-water mark and roll the epoch over, so cache size
  // tracks recent peak demand rather than the all-time one.
  if (sc.in_use == 0) {
    while (sc.free.size() > sc.cache_cap()) {
      ++unmaps_;
      unmap_block(sc.free.back());
      sc.free.pop_back();
    }
    sc.prev_hwm = sc.hwm;
    sc.hwm = 0;
  }
}

void StackPool::trim() {
  for (auto& [bytes, sc] : classes_) {
    for (const Block& b : sc.free) {
      ++unmaps_;
      unmap_block(b);
    }
    sc.free.clear();
    sc.hwm = sc.in_use;
    sc.prev_hwm = 0;
  }
}

std::size_t StackPool::cached_blocks() const {
  std::size_t n = 0;
  for (const auto& [bytes, sc] : classes_) n += sc.free.size();
  return n;
}

std::size_t StackPool::cached_bytes() const {
  std::size_t n = 0;
  for (const auto& [bytes, sc] : classes_) n += bytes * sc.free.size();
  return n;
}

}  // namespace stlm::detail
