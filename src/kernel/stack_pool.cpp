#include "kernel/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>

#include "kernel/context.hpp"
#include "kernel/report.hpp"

#ifdef STLM_ASAN_FIBERS
extern "C" void __asan_unpoison_memory_region(const void* addr,
                                              std::size_t size);
#endif

namespace stlm::detail {

namespace {
std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}
}  // namespace

StackPool& StackPool::local() {
  thread_local StackPool pool;
  return pool;
}

StackPool::~StackPool() { trim(); }

StackPool::Block StackPool::map_block(std::size_t bytes) {
  const std::size_t page = page_size();
  void* raw = ::mmap(nullptr, bytes + page, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) {
    throw SimulationError("StackPool: mmap failed for coroutine stack");
  }
  // Guard page below the stack: an overflow faults instead of silently
  // scribbling over whatever mmap placed underneath.
  ::mprotect(raw, page, PROT_NONE);
  Block b;
  b.base = static_cast<char*>(raw) + page;
  b.bytes = bytes;
#ifdef STLM_ASAN_FIBERS
  // munmap does not clear ASan shadow, so a fresh mapping can inherit
  // stale redzone poison from an earlier coroutine stack unmapped at
  // the same address.
  __asan_unpoison_memory_region(b.base, b.bytes);
#endif
  return b;
}

void StackPool::unmap_block(const Block& b) {
  const std::size_t page = page_size();
  ::munmap(b.base - page, b.bytes + page);
}

void StackPool::reconcile(SizeClass& sc) {
  const std::size_t n =
      sc.foreign_released.exchange(0, std::memory_order_relaxed);
  sc.in_use -= std::min(n, sc.in_use);
}

StackPool::Block StackPool::acquire(std::size_t bytes) {
  const std::size_t page = page_size();
  bytes = (bytes + page - 1) / page * page;
  SizeClass& sc = classes_[bytes];
  reconcile(sc);
  ++sc.in_use;
  if (sc.in_use > sc.hwm) sc.hwm = sc.in_use;
  // Pool-level concurrent-usage high-water for profiler snapshots; the
  // class map is tiny (one or two stack sizes), so the sum is cheap.
  const std::size_t total = in_use_blocks();
  if (total > peak_in_use_) peak_in_use_ = total;
  Block b;
  if (!sc.free.empty()) {
    b = sc.free.back();
    sc.free.pop_back();
    ++reuses_;
#ifdef STLM_ASAN_FIBERS
    // The previous coroutine's shadow poison is meaningless for the next
    // user of this address range.
    __asan_unpoison_memory_region(b.base, b.bytes);
#endif
  } else {
    ++maps_;
    b = map_block(bytes);
  }
  b.owner = this;
  b.home = &sc;
  return b;
}

void StackPool::release(Block b) {
  if (!b) return;
  if (b.owner != this) {
    // Cross-thread release: the Process outlived the thread context it
    // was created on. Never touch the foreign pool's lists — return the
    // pages to the kernel here and credit the owning size class through
    // its atomic, which the owner reconciles on its next operation (the
    // owning thread's pool must still be alive; see the header).
    b.home->foreign_released.fetch_add(1, std::memory_order_relaxed);
    ++unmaps_;
    unmap_block(b);
    return;
  }
  SizeClass& sc = *b.home;
  reconcile(sc);
  if (sc.in_use > 0) --sc.in_use;
  if (sc.free.size() < sc.cache_cap()) {
    sc.free.push_back(b);
  } else {
    ++unmaps_;
    unmap_block(b);
  }
  // Epoch boundary: demand fully drained. Shed anything above the
  // two-epoch high-water mark and roll the epoch over, so cache size
  // tracks recent peak demand rather than the all-time one.
  if (sc.in_use == 0) {
    while (sc.free.size() > sc.cache_cap()) {
      ++unmaps_;
      unmap_block(sc.free.back());
      sc.free.pop_back();
    }
    sc.prev_hwm = sc.hwm;
    sc.hwm = 0;
  }
}

void StackPool::trim() {
  for (auto& [bytes, sc] : classes_) {
    reconcile(sc);
    for (const Block& b : sc.free) {
      ++unmaps_;
      unmap_block(b);
    }
    sc.free.clear();
    sc.hwm = sc.in_use;
    sc.prev_hwm = 0;
  }
}

std::size_t StackPool::cached_blocks() const {
  std::size_t n = 0;
  for (const auto& [bytes, sc] : classes_) n += sc.free.size();
  return n;
}

std::size_t StackPool::cached_bytes() const {
  std::size_t n = 0;
  for (const auto& [bytes, sc] : classes_) n += bytes * sc.free.size();
  return n;
}

std::size_t StackPool::in_use_blocks() const {
  std::size_t n = 0;
  for (const auto& [bytes, sc] : classes_) n += sc.in_use;
  return n;
}

}  // namespace stlm::detail
