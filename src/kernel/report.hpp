#pragma once
// Error reporting and logging for the shiptlm kernel and the libraries
// built on it. Protocol violations and elaboration errors are reported as
// exceptions derived from SimulationError so a test or exploration driver
// can catch and classify them.

#include <stdexcept>
#include <string>

namespace stlm {

// Base class for every error the simulator and protocol stacks raise.
class SimulationError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

// Misuse of a communication protocol (SHIP role conflict, OCP phase order,
// mailbox overflow, ...).
class ProtocolError : public SimulationError {
public:
  using SimulationError::SimulationError;
};

// Structural problems found before simulation starts (unbound port,
// overlapping address ranges, unmapped channel, ...).
class ElaborationError : public SimulationError {
public:
  using SimulationError::SimulationError;
};

enum class Severity { Debug, Info, Warning, Error };

// Global log threshold; messages below it are dropped. Defaults to Warning
// so tests and benchmarks stay quiet. The threshold is atomic — it is the
// one piece of state shared across the per-thread simulators that parallel
// exploration sweeps run concurrently.
void set_log_level(Severity s);
Severity log_level();

// Write a log line ("[sev] source: message") to stderr if `s` passes the
// threshold.
void log(Severity s, const std::string& source, const std::string& message);

}  // namespace stlm

// Assert a precondition/invariant; throws SimulationError on failure.
// Used for contract checks that must stay active in release builds.
#define STLM_ASSERT(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      throw ::stlm::SimulationError(std::string("assertion failed: ") + \
                                    (msg));                          \
    }                                                                \
  } while (false)
