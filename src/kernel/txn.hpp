#pragma once
// Pooled transaction descriptor — the single currency every communication
// layer moves (OCP TL channels, CAMs, SHIP channels, the HW/SW interface).
//
// A Txn carries one transaction's request half (operation, address, write
// or message payload) and response half (status, read/reply payload) in
// buffers that keep their capacity across reuse, plus a CompletionEvent
// the initiator blocks on. Unlike Event, a CompletionEvent does not
// register with the Simulator's liveness registry and allocates nothing,
// so the steady-state transaction hot path performs zero per-transaction
// heap allocation and zero hash-set churn.
//
// Lifetime models:
//   * blocking round-trips (CAM/OCP masters): the initiator owns the Txn
//     (on its stack or as a member) and reuses it across transactions;
//   * queued messages (SHIP channels, mailbox queues): acquire from the
//     Simulator's TxnPool, link through the intrusive `next` pointer, and
//     release after consumption — the free list recycles descriptors and
//     their payload capacity.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "kernel/audit.hpp"
#include "kernel/time.hpp"

namespace stlm {

class Simulator;
class Process;
class Txn;
class TxnPool;
class TxnQueue;

/// Lightweight completion token: one waiter, no simulator registration,
/// no allocation. Safe to embed in pooled or stack-allocated
/// descriptors. Completion wakes the waiter immediately (same
/// evaluation phase), exactly like Event::notify() did for the old
/// per-transaction done events.
class CompletionEvent {
public:
  /// Mark complete and wake the waiter (if any). Waking is immediate:
  /// the waiter becomes runnable within the current evaluation phase.
  void complete(Simulator& sim);
  /// Block the calling thread process until complete() is called.
  /// Returns immediately if the token already completed — so an
  /// initiator may post(), do other work, and wait late.
  void wait(Simulator& sim);
  /// True once complete() ran (cleared by reset()/begin_*()).
  bool completed() const { return completed_; }
  /// Re-arm the token for the next transaction.
  void reset() {
    completed_ = false;
    waiter_ = nullptr;
  }

  // Blocking layers strictly nest (e.g. a bus bridge forwards the granted
  // Txn into a downstream CAM while the initiator still waits on the same
  // descriptor). NestedScope shelves the outer waiter for the duration of
  // the inner round-trip and restores it on exit, so one CompletionEvent
  // serves every nesting level without extra allocation.
  class NestedScope {
  public:
    explicit NestedScope(CompletionEvent& e)
        : e_(e),
          waiter_(e.waiter_),
          waiter_gen_(e.waiter_gen_),
          completed_(e.completed_) {
      e_.waiter_ = nullptr;
      e_.completed_ = false;
    }
    ~NestedScope() {
      e_.waiter_ = waiter_;
      e_.waiter_gen_ = waiter_gen_;
      e_.completed_ = completed_;
    }
    NestedScope(const NestedScope&) = delete;
    NestedScope& operator=(const NestedScope&) = delete;

  private:
    CompletionEvent& e_;
    Process* waiter_;
    std::uint64_t waiter_gen_;
    bool completed_;
  };

private:
  Process* waiter_ = nullptr;
  std::uint64_t waiter_gen_ = 0;  // waiter's wake_gen at registration
  bool completed_ = false;
};

/// The pooled transaction descriptor — the single currency every
/// communication layer moves by reference (OCP TL channels, CAM grant
/// engines, SHIP channels, the HW/SW interface). Carries one
/// transaction's request half, response half, and the CompletionEvent
/// the initiator blocks on. Buffers keep their capacity across reuse,
/// so steady-state traffic allocates nothing.
class Txn {
public:
  /// Transaction kind: addressed read/write, or an opaque message.
  enum class Op : std::uint8_t { Read, Write, Msg };
  /// Response status; Pending until a target responds. Targets only ever
  /// stamp Ok or Error; the two failure-semantics states are derived:
  ///   * Timeout — the access completed, but after its armed watchdog
  ///     deadline (promoted from Ok at the CAM completion point, the one
  ///     place atomic/split engines and both fast paths share);
  ///   * Aborted — the initiator's RetryPolicy exhausted its retry budget
  ///     on Error responses and gave up (stamped initiator-side).
  enum class Status : std::uint8_t { Pending, Ok, Error, Timeout, Aborted };

  // 32-bit data path: one beat per 4 payload bytes (OCP basic profile).
  static constexpr std::size_t kWordBytes = 4;
  // SHIP round-trip request marker (flags bit).
  static constexpr std::uint32_t kFlagRequest = 1u << 0;
  // SHIP reply marker (flags bit) — used by mailbox-style adapters.
  static constexpr std::uint32_t kFlagReply = 1u << 1;

  // --- request half ------------------------------------------------------
  Op op = Op::Read;
  std::uint32_t flags = 0;
  std::uint32_t master_id = 0;
  std::uint64_t addr = 0;
  std::uint32_t read_bytes = 0;            // requested bytes (reads only)
  std::vector<std::uint8_t> data;          // write / message payload

  // --- response half -----------------------------------------------------
  Status status = Status::Pending;
  std::vector<std::uint8_t> resp_data;     // read / reply payload

  // --- bookkeeping -------------------------------------------------------
  Time enqueued = Time::zero();            // set when a layer queues the txn
  std::uint32_t cursor = 0;                // consumer progress (chunked IO)
  std::uint64_t id = 0;                    // unique per begin_*(); for tracing
  std::uint32_t retries = 0;               // re-issues so far (RetryPolicy)
  // Set by a RetryPolicy watchdog while the txn is outstanding past its
  // deadline; the CAM completion point promotes Ok -> Timeout from it.
  bool deadline_missed = false;
  CompletionEvent done;

  // --- phase timestamps (pure bookkeeping; never consulted for timing) ----
  //
  // Stamped by the CAM engines as the transaction moves through its bus
  // phases. `enqueued` is the issue time; the split engines diverge grant
  // from completion (OoO), which is what the phase-accurate TxnLogger rows
  // and the queueing/service latency split are derived from:
  //
  //   queueing delay = t_grant - enqueued      (arbitration wait)
  //   service        = t_complete - t_grant    (bus occupancy + target)
  //
  // The atomic engines fuse address and data phases into one occupancy
  // wait, so they stamp t_data == t_grant; the split engines stamp t_data
  // when the response actually wins the data channel.
  Time t_grant = Time::zero();     // won arbitration / popped by a lane
  Time t_data = Time::zero();      // data phase began on the bus
  Time t_complete = Time::zero();  // initiator-visible completion

  /// Reset the phase stamps (a layer that re-queues a descriptor it does
  /// not begin_*() afresh — bridges, wrappers — calls this instead).
  void reset_phases() {
    t_grant = Time::zero();
    t_data = Time::zero();
    t_complete = Time::zero();
  }

  // Shelves the issue/phase timestamps for a nested round trip — a layer
  // forwarding the same descriptor downstream mid-transaction — and
  // restores them on scope exit, so the inner interconnect's stamps never
  // corrupt the outer layer's row. The timestamp analogue of
  // CompletionEvent::NestedScope; the two typically nest together.
  class PhaseShelf {
  public:
    explicit PhaseShelf(Txn& t)
        : t_(t),
          enqueued_(t.enqueued),
          grant_(t.t_grant),
          data_(t.t_data),
          complete_(t.t_complete) {}
    ~PhaseShelf() {
      t_.enqueued = enqueued_;
      t_.t_grant = grant_;
      t_.t_data = data_;
      t_.t_complete = complete_;
    }
    PhaseShelf(const PhaseShelf&) = delete;
    PhaseShelf& operator=(const PhaseShelf&) = delete;

  private:
    Txn& t_;
    Time enqueued_, grant_, data_, complete_;
  };

  Txn() = default;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  // --- initiator-side setup (resets response state, keeps capacity) ------

  /// Arm the descriptor as a read of `bytes` from address `a`. Resets
  /// the response half and the CompletionEvent; keeps buffer capacity.
  void begin_read(std::uint64_t a, std::uint32_t bytes,
                  std::uint32_t master = 0) {
    begin(Op::Read, a, master);
    read_bytes = bytes;
  }
  /// Arm the descriptor as a write of `n` bytes at `p` to address `a`.
  void begin_write(std::uint64_t a, const void* p, std::size_t n,
                   std::uint32_t master = 0) {
    begin(Op::Write, a, master);
    const auto* b = static_cast<const std::uint8_t*>(p);
    data.assign(b, b + n);
  }
  /// Arm the descriptor as an opaque message; the payload is written by
  /// the caller into `data` afterwards (typically via serialization
  /// straight into the buffer).
  void begin_msg(std::uint32_t f = 0) {
    begin(Op::Msg, 0, 0);
    flags = f;
  }

  // --- observers ---------------------------------------------------------

  /// Bytes this transaction moves: the requested size for reads, the
  /// write/message payload size otherwise.
  std::size_t payload_bytes() const {
    return op == Op::Read ? read_bytes : data.size();
  }
  std::uint32_t beats() const {
    const std::size_t b = payload_bytes();
    return b == 0 ? 1
                  : static_cast<std::uint32_t>((b + kWordBytes - 1) /
                                               kWordBytes);
  }
  bool ok() const { return status == Status::Ok; }
  /// True when the response payload is usable: Ok, or Timeout — the
  /// access completed correctly but after its watchdog deadline.
  /// Initiators that only care about the data (MMIO helpers, mailbox
  /// wrappers) test this; SLO accounting tests ok().
  bool data_valid() const {
    return status == Status::Ok || status == Status::Timeout;
  }
  bool is_request() const { return (flags & kFlagRequest) != 0; }

  /// Re-arm a completed descriptor for a retry attempt: the request half
  /// (op/addr/payload) survives, the response state, completion token and
  /// phase stamps reset, and the retry counter advances. Unlike begin_*()
  /// the id is kept — trace rows of every attempt correlate to one
  /// logical transaction.
  void rearm_retry() {
    resp_data.clear();
    status = Status::Pending;
    deadline_missed = false;
    done.reset();
    reset_phases();
    ++retries;
  }

  // --- target-side responses (in place, capacity-preserving) -------------

  /// Acknowledge without payload (writes, control accesses).
  void respond_ok() {
    status = Status::Ok;
    resp_data.clear();
  }
  /// Fail the transaction (decode error, protocol violation).
  void respond_error() {
    status = Status::Error;
    resp_data.clear();
  }
  /// Respond with `n` bytes of read/reply payload copied from `p`.
  void respond_data(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    resp_data.assign(b, b + n);
    status = Status::Ok;
  }
  // For targets that fill the payload directly (sized, zeroed on demand).
  std::vector<std::uint8_t>& respond_buffer(std::size_t n) {
    resp_data.assign(n, 0);
    status = Status::Ok;
    return resp_data;
  }

private:
  friend class TxnPool;
  friend class TxnQueue;

  void begin(Op o, std::uint64_t a, std::uint32_t master) {
    op = o;
    addr = a;
    master_id = master;
    flags = 0;
    read_bytes = 0;
    cursor = 0;
    data.clear();
    resp_data.clear();
    status = Status::Pending;
    retries = 0;
    deadline_missed = false;
    done.reset();
    reset_phases();
    id = next_id();
  }

  // Monotonic across every simulator (descriptors are recycled, logical
  // transactions are not): gives trace rows a usable correlation key.
  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Txn* next_ = nullptr;  // intrusive link (pending queue / free list)
};

// Intrusive FIFO of pending transactions. No allocation — links through
// Txn::next_. A Txn may sit in at most one queue at a time.
class TxnQueue {
public:
  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return count_; }

  void push_back(Txn& t) {
    t.next_ = nullptr;
    if (tail_) {
      tail_->next_ = &t;
    } else {
      head_ = &t;
    }
    tail_ = &t;
    ++count_;
  }

  Txn* pop_front() {
    Txn* t = head_;
    if (!t) return nullptr;
    head_ = t->next_;
    if (!head_) tail_ = nullptr;
    t->next_ = nullptr;
    --count_;
    return t;
  }

  Txn* front() const { return head_; }

private:
  Txn* head_ = nullptr;
  Txn* tail_ = nullptr;
  std::size_t count_ = 0;
};

/// Free-list pool of transaction descriptors. Released descriptors keep
/// their payload capacity, so a warmed-up pool serves acquire/release
/// cycles with no heap traffic. `created()` is the number of
/// descriptors ever allocated — a steady-state phase must not move it
/// (asserted by the pooled-Txn stress test).
class TxnPool {
public:
  /// Hand out a descriptor: recycled from the free list when possible,
  /// freshly allocated (and owned by the pool) otherwise.
  Txn& acquire() {
    ++acquired_;
    if (Txn* t = free_.pop_front()) {
      audit_acquire(*t);
      return *t;
    }
    auto owned = std::make_unique<Txn>();
    Txn& t = *owned;
    storage_.push_back(std::move(owned));
    audit_acquire(t);
    return t;
  }

  /// Return a descriptor to the free list. The caller must be done with
  /// it: the pool may hand it to anyone on the next acquire().
  void release(Txn& t) {
    audit_release(t);
    ++released_;
    // Reset logical state but keep both payload buffers' capacity.
    t.flags = 0;
    t.read_bytes = 0;
    t.cursor = 0;
    t.data.clear();
    t.resp_data.clear();
    t.status = Txn::Status::Pending;
    t.retries = 0;
    t.deadline_missed = false;
    t.done.reset();
    t.reset_phases();
    free_.push_back(t);
  }

  std::uint64_t created() const { return storage_.size(); }
  std::uint64_t acquired() const { return acquired_; }
  std::uint64_t released() const { return released_; }
  std::size_t outstanding() const {
    return static_cast<std::size_t>(acquired_ - released_);
  }

private:
  friend class Simulator;

  // Determinism audit (kernel/audit.hpp): descriptors are audited
  // per-descriptor, not pool-wide, and each descriptor splits into a
  // live-side key (acquire) and a free-side key (release). A same-delta
  // release -> acquire handoff through the FIFO free list only decides
  // *which* interchangeable descriptor the acquirer gets — host-level
  // identity, not simulated outcome — so the sides stay quiet against
  // each other, and acquire() additionally starts a fresh audit lifetime
  // for the descriptor (the previous occupant's same-delta accesses
  // belong to a logically different object). A double release of one
  // live window is a same-key W/W on the free side and gets flagged.
  void audit_acquire(Txn& t) {
#ifdef STLM_AUDIT
    if (sim_ != nullptr) {
      static const std::string label("descriptor");
      audit::on_fresh(*sim_, &t);
      audit::on_fresh(*sim_, &t.done);
      audit::on_access(*sim_, &t, audit::Mode::Write, "txn.live", label);
    }
#else
    (void)t;
#endif
  }
  void audit_release(Txn& t) {
#ifdef STLM_AUDIT
    if (sim_ != nullptr) {
      static const std::string label("descriptor");
      audit::on_access(*sim_, &t.done, audit::Mode::Write, "txn.free", label);
    }
#else
    (void)t;
#endif
  }

  Simulator* sim_ = nullptr;  // owning simulator; set by Simulator's ctor
  TxnQueue free_;
  std::vector<std::unique_ptr<Txn>> storage_;
  std::uint64_t acquired_ = 0;
  std::uint64_t released_ = 0;
};

// RAII pool handle for scoped acquisitions (compat shims, MMIO helpers).
class PooledTxn {
public:
  explicit PooledTxn(TxnPool& pool) : pool_(&pool), t_(&pool.acquire()) {}
  ~PooledTxn() {
    if (t_) pool_->release(*t_);
  }
  PooledTxn(PooledTxn&& o) noexcept : pool_(o.pool_), t_(o.t_) {
    o.t_ = nullptr;
  }
  PooledTxn& operator=(PooledTxn&&) = delete;
  PooledTxn(const PooledTxn&) = delete;
  PooledTxn& operator=(const PooledTxn&) = delete;

  Txn& operator*() const { return *t_; }
  Txn* operator->() const { return t_; }
  Txn& get() const { return *t_; }

private:
  TxnPool* pool_;
  Txn* t_;
};

}  // namespace stlm
