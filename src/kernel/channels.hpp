#pragma once
// Blocking primitive channels: bounded FIFO, mutex, semaphore.
//
// These are the SystemC sc_fifo / sc_mutex / sc_semaphore analogues the
// eSW-synthesis methodology (Herrera et al.) substitutes with RTOS
// primitives; the RTOS library in src/rtos mirrors these interfaces.

#include <deque>
#include <string>

#include "kernel/audit.hpp"
#include "kernel/event.hpp"
#include "kernel/report.hpp"
#include "kernel/simulator.hpp"

namespace stlm {

// Determinism-audit model for these channels (see kernel/audit.hpp): each
// channel is audited as two sub-objects — the producer side (fifo tail /
// mutex-semaphore release) and the consumer side (fifo head /
// mutex-semaphore acquisition). A same-delta blocking producer/consumer
// pair commutes (delta cycles are timeless: whoever runs second converges
// on the same simulated outcome), so the sides use distinct keys and stay
// quiet; two same-side accesses (two pops, two lock acquisitions) are
// genuine queue-order hazards and collide on one key. Non-blocking
// probes (nb_read/nb_write/try_*) additionally *read* the opposite side:
// their boolean result flips with dispatch order against that side's
// writer, which is exactly the hazard to surface.

// Read side of a FIFO (bindable via Port<FifoInIf<T>>).
template <class T>
class FifoInIf {
public:
  virtual ~FifoInIf() = default;
  virtual T read() = 0;
  virtual bool nb_read(T& out) = 0;
  virtual std::size_t num_available() const = 0;
  virtual Event& data_written_event() = 0;
};

// Write side of a FIFO (bindable via Port<FifoOutIf<T>>).
template <class T>
class FifoOutIf {
public:
  virtual ~FifoOutIf() = default;
  virtual void write(T v) = 0;
  virtual bool nb_write(T v) = 0;
  virtual std::size_t num_free() const = 0;
  virtual Event& data_read_event() = 0;
};

template <class T>
class Fifo final : public FifoInIf<T>, public FifoOutIf<T> {
public:
  explicit Fifo(Simulator& sim, std::string name = "fifo",
                std::size_t capacity = 16)
      : name_(std::move(name)),
        capacity_(capacity),
        written_(sim, name_ + ".written"),
        read_(sim, name_ + ".read") {
    STLM_ASSERT(capacity_ > 0, "fifo capacity must be positive: " + name_);
  }

  T read() override {
    while (buf_.empty()) wait(written_);
    audit::on_access(written_.sim(), &read_, audit::Mode::Write, "fifo.head",
                     name_);
    T v = std::move(buf_.front());
    buf_.pop_front();
    read_.notify_delta();
    return v;
  }

  bool nb_read(T& out) override {
    // Probe: the result depends on same-delta pushes, so the tail is read
    // either way; a successful pop also writes the head.
    audit::on_access(written_.sim(), &written_, audit::Mode::Read, "fifo.tail",
                     name_);
    if (buf_.empty()) {
      audit::on_access(written_.sim(), &read_, audit::Mode::Read, "fifo.head",
                       name_);
      return false;
    }
    audit::on_access(written_.sim(), &read_, audit::Mode::Write, "fifo.head",
                     name_);
    out = std::move(buf_.front());
    buf_.pop_front();
    read_.notify_delta();
    return true;
  }

  void write(T v) override {
    while (buf_.size() >= capacity_) wait(read_);
    audit::on_access(written_.sim(), &written_, audit::Mode::Write, "fifo.tail",
                     name_);
    buf_.push_back(std::move(v));
    written_.notify_delta();
  }

  bool nb_write(T v) override {
    audit::on_access(written_.sim(), &read_, audit::Mode::Read, "fifo.head",
                     name_);
    if (buf_.size() >= capacity_) {
      audit::on_access(written_.sim(), &written_, audit::Mode::Read,
                       "fifo.tail", name_);
      return false;
    }
    audit::on_access(written_.sim(), &written_, audit::Mode::Write, "fifo.tail",
                     name_);
    buf_.push_back(std::move(v));
    written_.notify_delta();
    return true;
  }

  std::size_t num_available() const override { return buf_.size(); }
  std::size_t num_free() const override { return capacity_ - buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  Event& data_written_event() override { return written_; }
  Event& data_read_event() override { return read_; }
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::size_t capacity_;
  std::deque<T> buf_;
  Event written_;
  Event read_;
};

class Mutex {
public:
  explicit Mutex(Simulator& sim, std::string name = "mutex")
      : name_(std::move(name)), unlocked_(sim, name_ + ".unlocked") {}

  void lock() {
    while (locked_) wait(unlocked_);
    audit::on_access(unlocked_.sim(), this, audit::Mode::Write, "mutex.acquire",
                     name_);
    locked_ = true;
  }

  bool try_lock() {
    audit::on_access(unlocked_.sim(), &unlocked_, audit::Mode::Read,
                     "mutex.release", name_);
    if (locked_) {
      audit::on_access(unlocked_.sim(), this, audit::Mode::Read,
                       "mutex.acquire", name_);
      return false;
    }
    audit::on_access(unlocked_.sim(), this, audit::Mode::Write, "mutex.acquire",
                     name_);
    locked_ = true;
    return true;
  }

  void unlock() {
    STLM_ASSERT(locked_, "unlock of unlocked mutex: " + name_);
    audit::on_access(unlocked_.sim(), &unlocked_, audit::Mode::Write,
                     "mutex.release", name_);
    locked_ = false;
    unlocked_.notify_delta();
  }

  bool locked() const { return locked_; }

private:
  std::string name_;
  Event unlocked_;
  bool locked_ = false;
};

// RAII guard for Mutex.
class LockGuard {
public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

private:
  Mutex& m_;
};

class Semaphore {
public:
  Semaphore(Simulator& sim, int initial, std::string name = "semaphore")
      : name_(std::move(name)), value_(initial), posted_(sim, name_ + ".posted") {
    STLM_ASSERT(initial >= 0, "semaphore initial value must be >= 0: " + name_);
  }

  void acquire() {
    while (value_ == 0) wait(posted_);
    audit::on_access(posted_.sim(), this, audit::Mode::Write, "sem.acquire",
                     name_);
    --value_;
  }

  bool try_acquire() {
    audit::on_access(posted_.sim(), &posted_, audit::Mode::Read, "sem.release",
                     name_);
    if (value_ == 0) {
      audit::on_access(posted_.sim(), this, audit::Mode::Read, "sem.acquire",
                       name_);
      return false;
    }
    audit::on_access(posted_.sim(), this, audit::Mode::Write, "sem.acquire",
                     name_);
    --value_;
    return true;
  }

  void release() {
    ++value_;
    audit::on_access(posted_.sim(), &posted_, audit::Mode::Write, "sem.release",
                     name_);
    posted_.notify_delta();
  }

  int value() const { return value_; }

private:
  std::string name_;
  int value_;
  Event posted_;
};

}  // namespace stlm
