#include "kernel/simulator.hpp"

#include <algorithm>

#include "kernel/context.hpp"
#include "kernel/module.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_session.hpp"

namespace stlm {

namespace {
// Stack of live simulators on this thread; the top one is "current".
// This is the single piece of global state in the library (see the header
// for the rationale).
thread_local std::vector<Simulator*> g_sim_stack;
}  // namespace

Simulator::Simulator() {
  g_sim_stack.push_back(this);
  txn_pool_.sim_ = this;
  if (audit::default_enabled()) set_audit_enabled(true);
}

Simulator::~Simulator() {
  owned_processes_.clear();
  auto it = std::find(g_sim_stack.rbegin(), g_sim_stack.rend(), this);
  if (it != g_sim_stack.rend()) {
    g_sim_stack.erase(std::next(it).base());
  }
}

Simulator* Simulator::current() {
  return g_sim_stack.empty() ? nullptr : g_sim_stack.back();
}

Simulator& Simulator::require_current() {
  Simulator* s = current();
  if (!s) {
    throw SimulationError(
        "no current Simulator on this thread; construct one first");
  }
  return *s;
}

Process& Simulator::require_process(const char* what) const {
  if (!current_process_) {
    throw SimulationError(std::string(what) +
                          " may only be called from a thread process");
  }
  return *current_process_;
}

// ------------------------------------------------------------ creation --

Process& Simulator::spawn_thread(std::string name, std::function<void()> body,
                                 std::size_t stack_bytes) {
  auto proc = std::make_unique<Process>(*this, std::move(name),
                                        std::move(body), stack_bytes);
  Process& ref = *proc;
  owned_processes_.push_back(std::move(proc));
  if (initialized_) make_runnable(ref, Process::WakeReason::Start, nullptr);
  return ref;
}

MethodProcess& Simulator::spawn_method(std::string name,
                                       std::function<void()> fn,
                                       std::vector<Event*> sensitivity,
                                       bool run_at_start) {
  auto proc = std::make_unique<MethodProcess>(*this, std::move(name),
                                              std::move(fn), run_at_start);
  MethodProcess& ref = *proc;
  ref.set_static_sensitivity(sensitivity);
  owned_processes_.push_back(std::move(proc));
  if (initialized_ && run_at_start) queue_method(ref);
  return ref;
}

// ---------------------------------------------------------- registries --

void Simulator::register_process(ProcessBase& p) {
  all_processes_.push_back(&p);
  live_processes_.insert(&p);
}

void Simulator::unregister_process(ProcessBase& p) {
  process_unregistered_ever_ = true;
  std::erase(all_processes_, &p);
  live_processes_.erase(&p);
}

void Simulator::register_event(Event& e) {
  ++events_registered_total_;
  live_events_.insert(&e);
}
void Simulator::unregister_event(Event& e) {
  event_unregistered_ever_ = true;
  live_events_.erase(&e);
}

void Simulator::register_module(Module& m) { modules_.push_back(&m); }
void Simulator::unregister_module(Module& m) { std::erase(modules_, &m); }

void Simulator::register_owned(std::unique_ptr<ProcessBase> p) {
  owned_processes_.push_back(std::move(p));
}

void Simulator::add_post_delta_hook(std::function<void(Time)> hook) {
  post_delta_hooks_.push_back(std::move(hook));
}

// ---------------------------------------------------------- scheduling --

void Simulator::request_update(UpdateIf& u) {
  if (u.update_pending_) return;
  u.update_pending_ = true;
  update_requests_.push_back(&u);
}

void Simulator::make_runnable(Process& p, Process::WakeReason reason,
                              Event* cause) {
  if (p.terminated_ || p.runnable_) return;
  p.runnable_ = true;
  p.wake_reason_ = reason;
  p.last_event_ = cause;
#ifdef STLM_AUDIT
  p.audit_enq_seq_ = audit_dispatch_seq_;
#endif
  runnable_.push_back(&p);
}

void Simulator::queue_method(MethodProcess& m) {
  if (m.terminated_ || m.queued_) return;
  m.queued_ = true;
#ifdef STLM_AUDIT
  m.audit_enq_seq_ = audit_dispatch_seq_;
#endif
  method_queue_.push_back(&m);
}

void Simulator::schedule_timed_event(Event& e, Time abs_time) {
  timed_.push(TimedEntry{abs_time, timed_seq_++, &e, nullptr, e.sched_gen_});
}

void Simulator::schedule_delta_event(Event& e) { delta_events_.push_back(&e); }

void Simulator::schedule_timeout(Process& p, Time abs_time,
                                 std::uint64_t gen) {
  timed_.push(TimedEntry{abs_time, timed_seq_++, nullptr, &p, gen});
}

Event* Simulator::last_triggered_event() const {
  return current_process_ ? current_process_->last_event_ : nullptr;
}

// ------------------------------------------------------------- auditing --

void Simulator::set_audit_enabled(bool on) {
  if (on == audit_enabled()) return;
  auditor_ = on ? std::make_unique<audit::Auditor>(*this) : nullptr;
}

audit::Report Simulator::audit_report() const {
  return auditor_ ? auditor_->report() : audit::Report{};
}

// ------------------------------------------------------------- running --

void Simulator::initialize() {
  initialized_ = true;
  // Snapshot: processes spawned during initialization join immediately via
  // spawn_*'s initialized_ check.
  std::vector<ProcessBase*> procs = all_processes_;
  for (ProcessBase* pb : procs) {
    if (!process_alive(pb) || pb->terminated_) continue;
    if (pb->kind() == ProcessBase::Kind::Thread) {
      make_runnable(static_cast<Process&>(*pb), Process::WakeReason::Start,
                    nullptr);
    } else {
      auto& m = static_cast<MethodProcess&>(*pb);
      if (m.run_at_start_) queue_method(m);
    }
  }
}

void Simulator::check_elaboration() {
  if (elaborated_) return;
  elaborated_ = true;
  for (const Module* m : modules_) {
    for (const PortBase* p : m->ports()) {
      if (!p->is_bound() && !p->is_optional()) {
        throw ElaborationError("unbound port: " + p->full_name());
      }
    }
  }
}

void Simulator::run() { run_impl(std::nullopt); }

void Simulator::run_for(Time duration) { run_impl(now_ + duration); }

void Simulator::run_impl(std::optional<Time> end_time) {
  STLM_ASSERT(!running_, "Simulator::run() is not reentrant");
  // While running, this simulator is the thread-current one, so that
  // wait()/notify() inside processes resolve correctly even when several
  // simulators are alive (e.g. a scratch role-discovery run).
  struct CurrentGuard {
    explicit CurrentGuard(Simulator* s) { g_sim_stack.push_back(s); }
    ~CurrentGuard() { g_sim_stack.pop_back(); }
  } guard(this);
#ifdef STLM_TSAN_FIBERS
  tsan_sched_fiber_ = detail::tsan_fiber_current();
#endif
  // New modules/ports may have appeared since the last run.
  elaborated_ = false;
  check_elaboration();
  running_ = true;
  stop_requested_ = false;
  run_end_time_ = end_time;

  if (!initialized_) initialize();

  while (true) {
    evaluate_phase();
    if (stop_requested_) break;
    update_phase();
    delta_phase();
    ++delta_count_;
    for (const auto& hook : post_delta_hooks_) hook(now_);
    if (!runnable_.empty() || !method_queue_.empty()) continue;
    // Run-budget poll: between settled deltas, before time advances, so
    // an abort can never split an evaluation step.
    if (run_guard_ && run_guard_(now_)) break;
    if (!advance_time(end_time)) break;
  }

  running_ = false;
  run_end_time_.reset();
  current_process_ = nullptr;
  if (pending_error_) {
    std::exception_ptr e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Simulator::evaluate_phase() {
  while (!method_queue_.empty() || !runnable_.empty()) {
    if (stop_requested_) return;
    if (!method_queue_.empty()) {
      MethodProcess* m = method_queue_.front();
      method_queue_.pop_front();
      if (!process_alive(m)) continue;
      run_method(*m);
      continue;
    }
    Process* p = runnable_.front();
    runnable_.pop_front();
    if (!process_alive(p) || p->terminated_) continue;
    resume_thread(*p);
  }
}

void Simulator::run_method(MethodProcess& m) {
  m.queued_ = false;
#ifdef STLM_AUDIT
  ++audit_dispatch_seq_;
  audit_current_ = &m;
#endif
#ifdef STLM_OBS
  if (profiler_ != nullptr) profiler_->dispatch_begin(m);
  if (trace_session_ != nullptr) trace_session_->process_begin(m, now_);
#endif
  try {
    m.fn_();
  } catch (...) {
    if (!pending_error_) pending_error_ = std::current_exception();
    m.terminated_ = true;
    stop_requested_ = true;
  }
#ifdef STLM_OBS
  if (trace_session_ != nullptr) trace_session_->process_end(m, now_);
  if (profiler_ != nullptr) profiler_->dispatch_end(m);
#endif
#ifdef STLM_AUDIT
  audit_current_ = nullptr;
#endif
}

void Simulator::resume_thread(Process& p) {
  p.runnable_ = false;
  ++p.wake_gen_;  // invalidate every stale registration of this process
  current_process_ = &p;
#ifdef STLM_AUDIT
  ++audit_dispatch_seq_;
  audit_current_ = &p;
#endif
#ifdef STLM_OBS
  ++ctx_switches_;
  if (profiler_ != nullptr) profiler_->dispatch_begin(p);
  if (trace_session_ != nullptr) trace_session_->process_begin(p, now_);
#endif
  p.ensure_started();
  detail::fiber_switch_begin(&sched_fake_stack_, p.stack_.base,
                             p.stack_bytes_);
  detail::tsan_fiber_switch(p.tsan_fiber_);
  detail::stlm_ctx_swap(&sched_sp_, p.sp_);
  detail::fiber_switch_end(sched_fake_stack_);
  current_process_ = nullptr;
#ifdef STLM_OBS
  // now_ may have moved while the process ran (lone-runner inline
  // advances), so the end stamp closes a span of real simulated width.
  if (trace_session_ != nullptr) trace_session_->process_end(p, now_);
  if (profiler_ != nullptr) profiler_->dispatch_end(p);
#endif
#ifdef STLM_AUDIT
  audit_current_ = nullptr;
#endif
  if (p.error_) {
    if (!pending_error_) pending_error_ = p.error_;
    p.error_ = nullptr;
    stop_requested_ = true;
  }
}

Process::WakeReason Simulator::suspend_current() {
  Process& p = require_process("wait");
  detail::fiber_switch_begin(&p.fake_stack_, sched_stack_bottom_,
                             sched_stack_size_);
  detail::tsan_fiber_switch(tsan_sched_fiber_);
  detail::stlm_ctx_swap(&p.sp_, sched_sp_);
  detail::fiber_switch_end(p.fake_stack_);
#ifdef STLM_KILL_UNWIND
  if (p.wake_reason_ == Process::WakeReason::Kill) [[unlikely]]
    throw_process_killed();
#endif
  return p.wake_reason_;
}

void Simulator::kill_process(Process& p) {
#ifndef STLM_KILL_UNWIND
  // Unwinding is compiled out (see kernel/context.hpp): keep the
  // historical teardown semantics — the parked stack is reclaimed by the
  // pool without running destructors.
  (void)p;
#else
  if (!p.started_ || p.terminated_) return;
  // The unwound frames switch straight back to sched_sp_ via the
  // trampoline, which is only meaningful from the scheduler context.
  // Mid-run destruction therefore keeps the old behavior (stack reclaimed
  // without unwinding).
  if (running_ || current_process_ != nullptr) return;
  // Destructors on the dying stack may wait()/notify(); make sure those
  // resolve against this simulator even during ~Simulator.
  struct CurrentGuard {
    explicit CurrentGuard(Simulator* s) { g_sim_stack.push_back(s); }
    ~CurrentGuard() { g_sim_stack.pop_back(); }
  } guard(this);
#ifdef STLM_TSAN_FIBERS
  tsan_sched_fiber_ = detail::tsan_fiber_current();
#endif
  ++p.wake_gen_;  // invalidate stale timeouts/waits on this process
  p.runnable_ = false;
  p.wake_reason_ = Process::WakeReason::Kill;
  p.last_event_ = nullptr;
  current_process_ = &p;
  detail::fiber_switch_begin(&sched_fake_stack_, p.stack_.base,
                             p.stack_bytes_);
  detail::tsan_fiber_switch(p.tsan_fiber_);
  detail::stlm_ctx_swap(&sched_sp_, p.sp_);
  detail::fiber_switch_end(sched_fake_stack_);
  current_process_ = nullptr;
  // Anything thrown while unwinding a killed process has nowhere to go
  // (we are usually inside ~Simulator); drop it like the trampoline
  // dropped the ProcessKilled itself.
  p.error_ = nullptr;
#endif
}

void Simulator::update_phase() {
  std::vector<UpdateIf*> updates;
  updates.swap(update_requests_);
  for (UpdateIf* u : updates) {
    u->update_pending_ = false;
    u->update();
  }
}

void Simulator::delta_phase() {
  std::vector<Event*> events;
  events.swap(delta_events_);
  for (Event* e : events) {
    if (!event_alive(e)) continue;
    if (!e->delta_pending_) continue;  // cancelled meanwhile
    e->trigger();
  }
}

void Simulator::dispatch_timed(const TimedEntry& entry) {
  if (entry.event) {
    Event* e = entry.event;
    if (!event_alive(e)) return;
    if (!e->timed_pending_ || e->sched_gen_ != entry.gen) return;  // stale
    e->trigger();
  } else {
    Process* p = entry.proc;
    if (!process_alive(p) || p->terminated_) return;
    if (p->wake_gen_ != entry.gen) return;  // stale timeout
    make_runnable(*p, Process::WakeReason::Timeout, nullptr);
  }
}

// Stale pruning happens inside the wheel's peek(): entries cancelled
// or overridden since registration never advance time. Plain function
// pointer + context so peek allocates nothing per call.
bool Simulator::timed_entry_stale(const void* ctx, const TimedEntry& e) {
  const auto* self = static_cast<const Simulator*>(ctx);
  if (e.event) {
    return !self->event_alive(e.event) || !e.event->timed_pending_ ||
           e.event->sched_gen_ != e.gen;
  }
  return !self->process_alive(e.proc) || e.proc->terminated_ ||
         e.proc->wake_gen_ != e.gen;
}

bool Simulator::advance_inline(Time abs) {
  if (!runnable_.empty() || !method_queue_.empty()) return false;
  if (!delta_events_.empty() || !update_requests_.empty()) return false;
  if (!post_delta_hooks_.empty()) return false;
  if (stop_requested_) return false;
  if (run_end_time_ && abs > *run_end_time_) return false;
  // Strictly later: an entry at exactly `abs` was registered before this
  // call (smaller seq), so FIFO order requires it to fire before the
  // caller resumes — take the scheduler path.
  const TimedEntry* head = timed_.peek(&Simulator::timed_entry_stale, this);
  if (head && head->when <= abs) return false;
  now_ = abs;
#ifdef STLM_OBS
  ++inline_advances_;
#endif
  return true;
}

bool Simulator::advance_time(std::optional<Time> end_time) {
  const TimedEntry* head = timed_.peek(&Simulator::timed_entry_stale, this);
  if (!head) return false;

  const Time next = head->when;
  if (end_time && next > *end_time) {
    now_ = *end_time;
    return false;
  }
  now_ = next;
  // Dispatch every live entry at `next` in FIFO (seq) order. Triggering
  // only marks processes runnable / queues methods, so the drain loop
  // cannot race with new same-timestamp pushes.
  while (head && head->when == next) {
    TimedEntry entry = timed_.pop();
    dispatch_timed(entry);
    head = timed_.peek(&Simulator::timed_entry_stale, this);
  }
  return true;
}

bool Simulator::idle() const {
  return runnable_.empty() && method_queue_.empty() && delta_events_.empty() &&
         timed_.empty();
}

// ------------------------------------------------------------ wait API --

void wait(Event& e) {
  Simulator& sim = Simulator::require_current();
  Process& p = sim.require_process("wait(Event)");
  e.add_dynamic_waiter(p);
  sim.suspend_current();
}

void wait(Time delay) {
  Simulator& sim = Simulator::require_current();
  Process& p = sim.require_process("wait(Time)");
  // Zero-delay waits keep their yield-past-this-instant semantics; any
  // other delay tries the lone-runner inline advance first.
  if (!delay.is_zero() && sim.advance_inline(sim.now() + delay)) return;
  sim.schedule_timeout(p, sim.now() + delay, p.wake_gen());
  sim.suspend_current();
}

bool wait(Time timeout, Event& e) {
  Simulator& sim = Simulator::require_current();
  Process& p = sim.require_process("wait(Time, Event)");
  e.add_dynamic_waiter(p);
  sim.schedule_timeout(p, sim.now() + timeout, p.wake_gen());
  return sim.suspend_current() == Process::WakeReason::Event;
}

Event& wait_any(const std::vector<Event*>& events) {
  Simulator& sim = Simulator::require_current();
  Process& p = sim.require_process("wait_any");
  STLM_ASSERT(!events.empty(), "wait_any needs at least one event");
  for (Event* e : events) {
    STLM_ASSERT(e != nullptr, "null event passed to wait_any");
    e->add_dynamic_waiter(p);
  }
  sim.suspend_current();
  STLM_ASSERT(p.last_wake_event() != nullptr, "wait_any woke without event");
  return *p.last_wake_event();
}

void wait_static() {
  Simulator& sim = Simulator::require_current();
  Process& p = sim.require_process("wait_static");
  const auto& events = p.static_sensitivity();
  STLM_ASSERT(!events.empty(),
              "wait_static on process without static sensitivity: " + p.name());
  for (Event* e : events) e->add_dynamic_waiter(p);
  sim.suspend_current();
}

}  // namespace stlm
