#pragma once
// Clock generator: a Module driving a bool Signal with a fixed period and
// duty cycle. Pin-level models and accessors synchronize to
// posedge_event(); CCATB models only use period() for cycle arithmetic,
// which is what keeps them fast.

#include <cstdint>
#include <string>

#include "kernel/module.hpp"
#include "kernel/signal.hpp"
#include "kernel/time.hpp"

namespace stlm {

class Clock final : public Module {
public:
  Clock(Simulator& sim, std::string name, Time period, double duty = 0.5,
        Time start = Time::zero(), Module* parent = nullptr);

  Signal<bool>& signal() { return sig_; }
  const Signal<bool>& signal() const { return sig_; }
  Event& posedge_event() { return sig_.posedge_event(); }
  Event& negedge_event() { return sig_.negedge_event(); }

  Time period() const { return period_; }
  double frequency_mhz() const { return 1e-6 / period_.to_seconds(); }
  // Number of rising edges generated so far.
  std::uint64_t cycle_count() const { return cycles_; }

private:
  void generate();

  Time period_;
  Time high_;
  Time low_;
  Time start_;
  Signal<bool> sig_;
  std::uint64_t cycles_ = 0;
};

}  // namespace stlm
