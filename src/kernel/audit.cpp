#include "kernel/audit.hpp"

#include <atomic>
#include <sstream>

#include "kernel/process.hpp"
#include "kernel/simulator.hpp"
#include "obs/trace_session.hpp"

namespace stlm::audit {

namespace {
std::atomic<bool> g_default_enabled{false};
}  // namespace

void set_default_enabled(bool on) {
  g_default_enabled.store(on, std::memory_order_relaxed);
}

bool default_enabled() {
  return g_default_enabled.load(std::memory_order_relaxed);
}

const char* mode_name(Mode m) { return m == Mode::Write ? "W" : "R"; }

void Auditor::access(const void* key, Mode mode, const char* kind,
                     const std::string& name) {
  const ProcessBase* p = sim_.audit_current();
  // Scheduler-context accesses (elaboration, teardown, update phase) have
  // no dispatch order to perturb.
  if (p == nullptr) return;
  ++accesses_;
  Object& obj = objects_[key];
  if (obj.label.empty()) {
    obj.label.reserve(std::char_traits<char>::length(kind) + 1 + name.size());
    obj.label.append(kind).append(":").append(name);
  }
  const std::uint64_t delta = sim_.delta_count();
  if (obj.delta != delta) {
    obj.delta = delta;
    obj.accesses.clear();
  }
  const Access a{p, sim_.audit_dispatch_seq(), p->audit_enq_seq(), mode};
  for (const Access& prev : obj.accesses) {
    if (prev.proc == p) {
      // Re-access by the same process within the dispatch: the earlier
      // identical entry already ran the pair checks — bail before the
      // loop below double-counts every conflict.
      if (prev.dispatch == a.dispatch && prev.mode == a.mode) return;
      continue;
    }
    if (prev.mode == Mode::Read && a.mode == Mode::Read) continue;
    // Co-runnable test: this process was already sitting in the runnable
    // queue when `prev`'s dispatch began, so FIFO policy — not simulated
    // causality — decided who touched the object first. enq == dispatch
    // means `prev`'s process itself made us runnable: causal, benign.
    if (a.enq < prev.dispatch) note_conflict(obj, prev, a);
  }
  obj.accesses.push_back(a);
}

void Auditor::begin_lifetime(const void* key) {
  auto it = objects_.find(key);
  if (it != objects_.end()) it->second.accesses.clear();
}

void Auditor::note_conflict(const Object& obj, const Access& first,
                            const Access& second) {
  ++conflict_events_;
#ifdef STLM_OBS
  // Surface the conflict on the timeline too: an instant event on a
  // dedicated "audit" track at the simulated time it was detected.
  if (obs::TraceSession* ts = sim_.trace_session(); ts != nullptr) {
    ts->instant("audit", "conflict: " + obj.label, sim_.now());
  }
#endif
  const std::string f = process_name(first.proc);
  const std::string s = process_name(second.proc);
  std::string pair_key;
  pair_key.reserve(obj.label.size() + f.size() + s.size() + 2);
  pair_key.append(obj.label).append("|").append(f).append("|").append(s);
  auto [it, fresh] = conflict_index_.try_emplace(pair_key, conflicts_.size());
  if (!fresh) {
    ++conflicts_[it->second].count;
    return;
  }
  Conflict c;
  c.object = obj.label;
  c.first = f;
  c.first_mode = first.mode;
  c.second = s;
  c.second_mode = second.mode;
  c.when = sim_.now();
  c.delta = sim_.delta_count();
  conflicts_.push_back(std::move(c));
}

std::string Auditor::process_name(const ProcessBase* p) const {
  return sim_.process_alive(p) ? p->name() : std::string("<destroyed>");
}

Report Auditor::report() const {
  Report r;
  r.enabled = true;
  r.accesses = accesses_;
  r.objects = objects_.size();
  r.conflict_events = conflict_events_;
  r.conflicts = conflicts_;
  return r;
}

std::string Report::table() const {
  if (conflicts.empty()) return {};
  std::ostringstream os;
  os << "determinism audit: " << conflicts.size() << " conflicting pair(s), "
     << conflict_events << " occurrence(s)\n";
  for (const Conflict& c : conflicts) {
    os << "  " << c.object << " | " << mode_name(c.first_mode) << " "
       << c.first << " vs " << mode_name(c.second_mode) << " " << c.second
       << " | first @ " << c.when.to_string() << " (delta " << c.delta
       << ") | x"
       << c.count << "\n";
  }
  return os.str();
}

#ifdef STLM_AUDIT
void on_access(Simulator& sim, const void* key, Mode mode, const char* kind,
               const std::string& name) {
  if (Auditor* a = sim.auditor()) a->access(key, mode, kind, name);
}

void on_fresh(Simulator& sim, const void* key) {
  if (Auditor* a = sim.auditor()) a->begin_lifetime(key);
}
#endif

}  // namespace stlm::audit
