// stlm-lint: hot-path — dispatched on every event/delta; steady-state
// simulation must stay heap-allocation-free (see tools/stlm_lint.py).
#include "kernel/txn.hpp"

#include "kernel/process.hpp"
#include "kernel/report.hpp"
#include "kernel/simulator.hpp"

namespace stlm {

void CompletionEvent::complete(Simulator& sim) {
  completed_ = true;
  Process* w = waiter_;
  waiter_ = nullptr;
  if (!w) return;                     // completion before (or without) wait
  if (!sim.process_alive(w)) return;
  if (w->terminated()) return;
  if (w->wake_gen() != waiter_gen_) return;  // waiter moved on; stale
  sim.make_runnable(*w, Process::WakeReason::Event, nullptr);
}

void CompletionEvent::wait(Simulator& sim) {
  Process& p = sim.require_process("CompletionEvent::wait");
  while (!completed_) {
    STLM_ASSERT(waiter_ == nullptr || waiter_ == &p,
                "CompletionEvent supports a single waiter");
    waiter_ = &p;
    waiter_gen_ = p.wake_gen();
    sim.suspend_current();
  }
  waiter_ = nullptr;
}

}  // namespace stlm
