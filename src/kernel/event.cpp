// stlm-lint: hot-path — dispatched on every event/delta; steady-state
// simulation must stay heap-allocation-free (see tools/stlm_lint.py).
#include "kernel/event.hpp"

#include "kernel/process.hpp"
#include "kernel/report.hpp"
#include "kernel/simulator.hpp"

namespace stlm {

Event::Event(std::string name)
    : sim_(&Simulator::require_current()), name_(std::move(name)) {
  sim_->register_event(*this);
}

Event::Event(Simulator& sim, std::string name)
    : sim_(&sim), name_(std::move(name)) {
  sim_->register_event(*this);
}

Event::~Event() { sim_->unregister_event(*this); }

void Event::notify() {
  // Immediate: wake waiters into the current evaluation phase.
  trigger();
}

void Event::notify_delta() {
  if (delta_pending_) return;
  if (timed_pending_) {
    // A delta notification is always earlier than a timed one: override.
    ++sched_gen_;
    timed_pending_ = false;
  }
  delta_pending_ = true;
  sim_->schedule_delta_event(*this);
}

void Event::notify(Time delay) {
  if (delay.is_zero()) {
    notify_delta();
    return;
  }
  if (delta_pending_) return;  // pending delta is earlier; keep it
  const Time abs = sim_->now() + delay;
  if (timed_pending_) {
    if (timed_when_ <= abs) return;  // pending one is earlier; keep it
    ++sched_gen_;                    // invalidate the later pending entry
  }
  timed_pending_ = true;
  timed_when_ = abs;
  sim_->schedule_timed_event(*this, abs);
}

void Event::cancel() {
  ++sched_gen_;
  delta_pending_ = false;
  timed_pending_ = false;
}

void Event::add_dynamic_waiter(Process& p) {
  dynamic_.push_back(DynWaiter{&p, p.wake_gen()});
}

void Event::trigger() {
  delta_pending_ = false;
  timed_pending_ = false;
  ++sched_gen_;

  // One-shot dynamic waiters.
  std::vector<DynWaiter> dyn;
  dyn.swap(dynamic_);
  for (const DynWaiter& w : dyn) {
    if (!sim_->process_alive(w.proc)) continue;
    if (w.proc->terminated()) continue;
    if (w.gen != w.proc->wake_gen()) continue;  // stale registration
    sim_->make_runnable(*w.proc, Process::WakeReason::Event, this);
  }

  // Statically sensitive processes. Thread processes handle static
  // sensitivity via wait_static() (which registers dynamically), so only
  // method processes live here.
  for (ProcessBase* pb : static_) {
    if (pb->kind() == ProcessBase::Kind::Method) {
      sim_->queue_method(static_cast<MethodProcess&>(*pb));
    }
  }
}

}  // namespace stlm
