#include "kernel/module.hpp"

#include <algorithm>

namespace stlm {

// ---------------------------------------------------------------- port --

PortBase::PortBase(Module& owner, std::string name)
    : owner_(&owner), name_(std::move(name)) {
  owner_->register_port(*this);
}

PortBase::~PortBase() { owner_->unregister_port(*this); }

std::string PortBase::full_name() const {
  return owner_->full_name() + "." + name_;
}

// -------------------------------------------------------------- module --

Module::Module(Simulator& sim, std::string name, Module* parent)
    : sim_(sim), name_(std::move(name)), parent_(parent) {
  if (parent_) parent_->children_.push_back(this);
  sim_.register_module(*this);
}

Module::~Module() {
  // Destroy owned processes before deregistering so their event cleanup
  // still sees a consistent simulator.
  processes_.clear();
  if (parent_) std::erase(parent_->children_, this);
  sim_.unregister_module(*this);
}

std::string Module::full_name() const {
  if (parent_) return parent_->full_name() + "." + name_;
  return name_;
}

void Module::unregister_port(PortBase& p) { std::erase(ports_, &p); }

Process& Module::spawn_thread(std::string name, std::function<void()> body,
                              std::size_t stack_bytes) {
  auto proc = std::make_unique<Process>(sim_, full_name() + "." + name,
                                        std::move(body), stack_bytes);
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  if (sim_.initialized()) {
    sim_.make_runnable(ref, Process::WakeReason::Start, nullptr);
  }
  return ref;
}

MethodProcess& Module::spawn_method(std::string name, std::function<void()> fn,
                                    std::vector<Event*> sensitivity,
                                    bool run_at_start) {
  auto proc = std::make_unique<MethodProcess>(
      sim_, full_name() + "." + name, std::move(fn), run_at_start);
  MethodProcess& ref = *proc;
  ref.set_static_sensitivity(sensitivity);
  processes_.push_back(std::move(proc));
  if (sim_.initialized() && run_at_start) sim_.queue_method(ref);
  return ref;
}

}  // namespace stlm
