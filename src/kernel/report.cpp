#include "kernel/report.hpp"

#include <cstdio>

namespace stlm {

namespace {
Severity g_level = Severity::Warning;

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(Severity s) { g_level = s; }
Severity log_level() { return g_level; }

void log(Severity s, const std::string& source, const std::string& message) {
  if (static_cast<int>(s) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s: %s\n", severity_name(s), source.c_str(),
               message.c_str());
}

}  // namespace stlm
