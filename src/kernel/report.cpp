#include "kernel/report.hpp"

#include <atomic>
#include <cstdio>

namespace stlm {

namespace {
// Shared by every simulator on every thread (parallel exploration runs one
// Simulator per worker), hence atomic. Relaxed ordering is fine: the level
// is a filter threshold, not a synchronization point.
std::atomic<Severity> g_level{Severity::Warning};

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(Severity s) { g_level.store(s, std::memory_order_relaxed); }
Severity log_level() { return g_level.load(std::memory_order_relaxed); }

void log(Severity s, const std::string& source, const std::string& message) {
  if (static_cast<int>(s) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s: %s\n", severity_name(s), source.c_str(),
               message.c_str());
}

}  // namespace stlm
