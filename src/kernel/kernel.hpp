#pragma once
// Umbrella header for the shiptlm discrete-event simulation kernel.

#include "kernel/channels.hpp"
#include "kernel/clock.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/process.hpp"
#include "kernel/report.hpp"
#include "kernel/signal.hpp"
#include "kernel/simulator.hpp"
#include "kernel/time.hpp"
#include "kernel/txn.hpp"
