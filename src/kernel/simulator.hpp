#pragma once
// The discrete-event scheduler.
//
// Simulation cycle (SystemC-compatible):
//   1. evaluate : run every runnable process (immediate notifications may
//                 add more within the same phase);
//   2. update   : apply requested primitive-channel updates (signals);
//   3. delta    : deliver delta notifications -> next delta cycle;
//   4. advance  : if nothing is runnable, pop the earliest timed
//                 notifications and advance simulated time.
//
// One Simulator per thread is "current" at a time (they nest like a stack,
// so tests may create them sequentially or in scopes). Events, processes
// and modules bind to the current Simulator at construction. The
// thread-local is the one piece of global state in the library; it exists
// because blocking calls such as `wait(10_ns)` deep inside a channel need
// to find the running process without threading a context parameter
// through every protocol layer.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "kernel/audit.hpp"
#include "kernel/event.hpp"
#include "kernel/event_wheel.hpp"
#include "kernel/process.hpp"
#include "kernel/report.hpp"
#include "kernel/time.hpp"
#include "kernel/txn.hpp"

namespace stlm {

class Module;

namespace obs {
class TraceSession;
class Profiler;
}  // namespace obs

// Implemented by primitive channels (signals) that need an update phase.
class UpdateIf {
public:
  virtual ~UpdateIf() = default;

protected:
  friend class Simulator;
  virtual void update() = 0;
  bool update_pending_ = false;
};

class Simulator {
public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- observers -------------------------------------------------------
  Time now() const { return now_; }
  std::uint64_t delta_count() const { return delta_count_; }
  bool running() const { return running_; }
  bool initialized() const { return initialized_; }

  // --- process creation --------------------------------------------------
  // Processes spawned before run() start in the initialization phase;
  // processes spawned while running become runnable immediately.
  Process& spawn_thread(std::string name, std::function<void()> body,
                        std::size_t stack_bytes = Process::kDefaultStackBytes);
  MethodProcess& spawn_method(std::string name, std::function<void()> fn,
                              std::vector<Event*> sensitivity,
                              bool run_at_start = true);

  // --- control -----------------------------------------------------------
  // Run until event starvation or stop(). Throws if a process threw.
  void run();
  // Run for at most `duration` of simulated time past the current time.
  void run_for(Time duration);
  // Request an orderly stop at the end of the current evaluation step.
  void stop() { stop_requested_ = true; }

  // Cooperative run budget (adaptive exploration): when a guard is set,
  // it is polled once per time advance — after the delta settles, before
  // simulated time moves — with the current simulated time; returning
  // true ends the run like stop(). Unset, the cost is one branch per
  // advance. The guard must be a pure function of simulated state (never
  // wall clock, never cross-thread state): its firing point is then the
  // same in every same-seed run, preserving byte-identical results.
  void set_run_guard(std::function<bool(Time)> g) { run_guard_ = std::move(g); }
  void clear_run_guard() { run_guard_ = nullptr; }

  // True when no runnable process, no delta and no timed activity remains.
  bool idle() const;

  // --- hooks ---------------------------------------------------------------
  // Called after every delta cycle's update phase; used by tracing.
  void add_post_delta_hook(std::function<void(Time)> hook);

  // --- kernel-internal API (used by Event/Process/Module/wait) ----------
  static Simulator* current();
  static Simulator& require_current();

  Process* current_process() const { return current_process_; }
  Process& require_process(const char* what) const;

  void request_update(UpdateIf& u);
  void make_runnable(Process& p, Process::WakeReason reason, Event* cause);
  void queue_method(MethodProcess& m);
  void schedule_timed_event(Event& e, Time abs_time);
  void schedule_delta_event(Event& e);
  void schedule_timeout(Process& p, Time abs_time, std::uint64_t gen);

  // Lone-runner fast path for wait(delay): when the calling process is
  // the only activity in the simulator and nothing else — runnable
  // process, queued method, delta/update request, live timed entry at or
  // before `abs`, run_for horizon, post-delta tracing hook — could
  // legally run first, advance simulated time to `abs` inline and return
  // true: no timed-queue registration, no scheduler round trip, no
  // coroutine switches. Returns false when the full suspend path must
  // run. Timing-neutral by construction: the skipped delta cycles are
  // exactly the empty ones the scheduler would have burned through.
  bool advance_inline(Time abs);

  void register_process(ProcessBase& p);
  void unregister_process(ProcessBase& p);
  // Liveness checks run on every scheduler dispatch (millions per
  // simulation). Until the first unregistration, every pointer the
  // scheduler holds is necessarily live — short-circuit the hash lookup
  // and fall back to the registry only once some object has actually
  // died (typically only at teardown, when nothing is dispatched).
  bool process_alive(const ProcessBase* p) const {
    return !process_unregistered_ever_ || live_processes_.contains(p);
  }
  bool event_alive(const Event* e) const {
    return !event_unregistered_ever_ || live_events_.contains(e);
  }
  void register_event(Event& e);
  void unregister_event(Event& e);

  // --- pooled transaction descriptors ------------------------------------
  // Free-list pool shared by every communication layer bound to this
  // simulator; see kernel/txn.hpp. Steady-state transaction traffic must
  // not grow the pool (asserted by the pooled-Txn stress test).
  TxnPool& txn_pool() { return txn_pool_; }

  // Observability for allocation-churn regression tests: current number of
  // live Events and the total ever registered. A pooled transaction hot
  // path keeps the total flat while transactions flow.
  std::size_t live_event_count() const { return live_events_.size(); }
  std::uint64_t events_registered_total() const {
    return events_registered_total_;
  }
  void register_module(Module& m);
  void unregister_module(Module& m);
  void register_owned(std::unique_ptr<ProcessBase> p);  // sim-owned processes

  const std::vector<Module*>& modules() const { return modules_; }

  // Suspend the calling thread process; the scheduler resumes others.
  // Returns the reason the process was woken.
  Process::WakeReason suspend_current();

  // Unwind a parked coroutine by resuming it with WakeReason::Kill; the
  // wait() it parked in throws ProcessKilled, destructors on the stack
  // run, and the trampoline retires the process. Only legal between
  // runs (no-op while the simulator is running or a process is current):
  // the unwound frames hand control straight back here, which is only
  // sound from the scheduler context. ~Process calls this for any
  // started, unterminated process, so teardown leaks nothing.
  void kill_process(Process& p);

  Event* last_triggered_event() const;

  // --- determinism auditor (kernel/audit.hpp) ----------------------------
  // Runtime switch for per-delta access-set recording. New simulators
  // sample audit::default_enabled(); flip that before constructing (or
  // before Explorer sweeps construct their internal simulators) to audit
  // whole runs. Instrumentation only exists when built with STLM_AUDIT.
  void set_audit_enabled(bool on);
  bool audit_enabled() const { return auditor_ != nullptr; }
  // Conflict summary for this simulator's run so far. With auditing off
  // (or STLM_AUDIT compiled out) returns a report with enabled == false.
  audit::Report audit_report() const;

  // Hook plumbing (see audit.hpp). audit_current() is the dispatched
  // process an access is attributed to — unlike current_process() it also
  // covers method processes; audit_dispatch_seq() numbers dispatches so
  // the auditor can tell co-runnable accesses from causally ordered ones.
  audit::Auditor* auditor() { return auditor_.get(); }
  ProcessBase* audit_current() const { return audit_current_; }
  std::uint64_t audit_dispatch_seq() const { return audit_dispatch_seq_; }

  // --- observability layer (src/obs) -------------------------------------
  // Non-owning session pointers set by obs::TraceSession::attach /
  // obs::Profiler::attach. The kernel and CAM hooks test these pointers
  // (under STLM_OBS) before recording; with nothing attached each hook is
  // one branch. The counters below are maintained unconditionally under
  // STLM_OBS — they are single increments on paths that already swap
  // whole coroutine contexts — and read 0 when compiled out.
  void set_trace_session(obs::TraceSession* t) { trace_session_ = t; }
  obs::TraceSession* trace_session() const { return trace_session_; }
  void set_profiler(obs::Profiler* p) { profiler_ = p; }
  obs::Profiler* profiler() const { return profiler_; }
  // Thread-coroutine resumes (two raw context swaps each: in and out).
  std::uint64_t ctx_switches() const { return ctx_switches_; }
  // Successful lone-runner inline advances (see advance_inline).
  std::uint64_t inline_advances() const { return inline_advances_; }
  // Read-only view of the timed queue for profiler snapshots.
  const detail::EventWheel& timed_queue() const { return timed_; }

private:
  using TimedEntry = detail::TimedEntry;

  void initialize();
  void check_elaboration();
  void evaluate_phase();
  void update_phase();
  void delta_phase();
  bool advance_time(std::optional<Time> end_time);
  void run_impl(std::optional<Time> end_time);
  void run_method(MethodProcess& m);
  void resume_thread(Process& p);
  void dispatch_timed(const TimedEntry& e);
  // Stale predicate shared by advance_time and advance_inline: entries
  // cancelled or overridden since registration never advance time.
  static bool timed_entry_stale(const void* ctx, const TimedEntry& e);

  Time now_ = Time::zero();
  std::uint64_t delta_count_ = 0;
  std::uint64_t timed_seq_ = 0;
  bool initialized_ = false;
  bool elaborated_ = false;
  bool running_ = false;
  bool stop_requested_ = false;
  // Run-budget guard (see set_run_guard); null when no budget is active.
  std::function<bool(Time)> run_guard_;

  // run_for() horizon of the active run (nullopt for run()); stored so
  // advance_inline never warps simulated time past it.
  std::optional<Time> run_end_time_;

  std::deque<Process*> runnable_;
  std::deque<MethodProcess*> method_queue_;
  std::vector<Event*> delta_events_;
  std::vector<UpdateIf*> update_requests_;
  // Timed notifications: calendar queue with deterministic FIFO order
  // within a timestamp (see kernel/event_wheel.hpp).
  detail::EventWheel timed_;

  std::vector<ProcessBase*> all_processes_;
  TxnPool txn_pool_;
  std::uint64_t events_registered_total_ = 0;
  bool event_unregistered_ever_ = false;
  bool process_unregistered_ever_ = false;
  std::unordered_set<const Event*> live_events_;
  std::unordered_set<const ProcessBase*> live_processes_;
  std::vector<Module*> modules_;
  std::vector<std::unique_ptr<ProcessBase>> owned_processes_;
  std::vector<std::function<void(Time)>> post_delta_hooks_;

  Process* current_process_ = nullptr;
  // Determinism-audit bookkeeping (see audit.hpp): the process a hook
  // attributes accesses to, a monotonically increasing dispatch counter,
  // and the recorder itself (null while auditing is off).
  ProcessBase* audit_current_ = nullptr;
  std::uint64_t audit_dispatch_seq_ = 0;
  std::unique_ptr<audit::Auditor> auditor_;
  // Observability hooks (see the public obs section above).
  obs::TraceSession* trace_session_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  std::uint64_t ctx_switches_ = 0;
  std::uint64_t inline_advances_ = 0;
  void* sched_sp_ = nullptr;  // scheduler context while a process runs
  // Sanitizer fiber bookkeeping (unused in non-ASan builds): the
  // scheduler context's fake-stack handle, and the bounds of the stack
  // the scheduler runs on (learned at the first fiber entry).
  void* sched_fake_stack_ = nullptr;
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  // TSan identity of the scheduler context (the OS thread's implicit
  // fiber); refreshed on each run in case the simulator migrates threads.
  void* tsan_sched_fiber_ = nullptr;
  std::exception_ptr pending_error_;

  friend class Process;
};

// ---- blocking wait API (callable from thread processes only) -----------

// Wait for one notification of `e`.
void wait(Event& e);
// Wait for `delay` of simulated time.
void wait(Time delay);
// Wait for `e` with a timeout; true if the event fired first.
bool wait(Time timeout, Event& e);
// Wait until any of the events fires; returns the event that did.
Event& wait_any(const std::vector<Event*>& events);
// Wait on the calling process's static sensitivity list.
void wait_static();

}  // namespace stlm
