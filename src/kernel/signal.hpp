#pragma once
// Signals: primitive channels with evaluate/update semantics.
//
// A write becomes visible one delta cycle later (SystemC sc_signal
// semantics), which is what makes clocked pin-level models race-free: every
// process sampling a signal in a delta sees the value from before that
// delta's writes. If several processes write the same signal within one
// delta, the last write wins (no resolution).

#include <concepts>
#include <string>

#include "kernel/event.hpp"
#include "kernel/simulator.hpp"

namespace stlm {

template <class T>
class Signal final : public UpdateIf {
public:
  explicit Signal(Simulator& sim, std::string name = "signal", T init = T{})
      : sim_(sim),
        name_(std::move(name)),
        cur_(init),
        next_(init),
        changed_(sim, name_ + ".changed"),
        posedge_(sim, name_ + ".pos"),
        negedge_(sim, name_ + ".neg") {}

  const T& read() const { return cur_; }
  operator const T&() const { return cur_; }

  void write(const T& v) {
    next_ = v;
    sim_.request_update(*this);
  }
  Signal& operator=(const T& v) {
    write(v);
    return *this;
  }

  const std::string& name() const { return name_; }
  Event& value_changed_event() { return changed_; }

  // Edge events are meaningful for bool signals (clocks, strobes, IRQs).
  Event& posedge_event()
    requires std::same_as<T, bool>
  {
    return posedge_;
  }
  Event& negedge_event()
    requires std::same_as<T, bool>
  {
    return negedge_;
  }

private:
  void update() override {
    if (next_ == cur_) return;
    cur_ = next_;
    changed_.notify_delta();
    if constexpr (std::same_as<T, bool>) {
      if (cur_) {
        posedge_.notify_delta();
      } else {
        negedge_.notify_delta();
      }
    }
  }

  Simulator& sim_;
  std::string name_;
  T cur_;
  T next_;
  Event changed_;
  Event posedge_;
  Event negedge_;
};

}  // namespace stlm
