#pragma once
// Lightweight user-space context switch for thread processes.
//
// glibc's swapcontext() performs a sigprocmask system call on every
// switch (~1-2 us), which would dominate simulation time — a clock cycle
// costs several process switches. Simulation coroutines never change the
// signal mask, so we switch stacks directly: save the callee-saved
// registers and the stack pointer, load the peer's. This is the same
// technique SystemC's QuickThreads package uses.
//
// x86-64 System V only (the platform this repository targets); the
// assembly lives in process.cpp.

#include <cstddef>

// AddressSanitizer needs to be told about stack switches: without the
// fiber annotations it believes the thread never left its original
// stack, so a noreturn path on a coroutine stack (throwing a simulation
// error, abort) trips "stack-buffer-underflow in sigaltstack" false
// positives while ASan tries to unpoison the wrong stack
// (github.com/google/sanitizers/issues/189). The helpers below compile
// to nothing in non-sanitized builds.
#if defined(__SANITIZE_ADDRESS__)
#define STLM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STLM_ASAN_FIBERS 1
#endif
#endif

#ifdef STLM_ASAN_FIBERS
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif

// ThreadSanitizer has the same blind spot plus a worse failure mode: it
// tracks each OS thread's stack region, and a raw stack switch makes
// every coroutine frame look like an access to "another thread's" stack
// — the parallel sweep then drowns in false data-race reports between a
// platform's own processes. TSan's fiber API fixes this: each coroutine
// registers as a fiber, and every switch is announced so the analysis
// carries the happens-before state across it.
#if defined(__SANITIZE_THREAD__)
#define STLM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STLM_TSAN_FIBERS 1
#endif
#endif

#ifdef STLM_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
void __tsan_set_fiber_name(void* fiber, const char* name);
}
#endif

// Teardown stack unwinding (Simulator::kill_process resuming a parked
// process with a ProcessKilled throw) is compiled only into sanitized
// builds, where it buys LeakSanitizer-at-full-strength CI, plus any
// build that asks for it explicitly (-DSTLM_FORCE_KILL_UNWIND). The
// gating exists because merely making the context-switch path
// *potentially-throwing* strips the whole wait() call tree of its
// nothrow status — every caller grows exception-cleanup bookkeeping —
// which measures as a double-digit percent regression on switch-bound
// benchmarks. Release builds keep the historical teardown semantics:
// parked stacks are reclaimed without running destructors.
#if defined(STLM_ASAN_FIBERS) || defined(STLM_TSAN_FIBERS) || \
    defined(STLM_FORCE_KILL_UNWIND)
#define STLM_KILL_UNWIND 1
#endif

namespace stlm::detail {

#if !defined(__x86_64__)
#error "shiptlm's coroutine switch is implemented for x86-64 SysV only"
#endif

// Save the current stack pointer to *save_sp, switch to load_sp (a value
// previously produced by this function or by make_initial_stack).
extern "C" void stlm_ctx_swap(void** save_sp, void* load_sp);

// Call immediately before stlm_ctx_swap: `save` stores this context's
// fake-stack handle (pass nullptr when this context is about to die, so
// ASan releases its fake frames); bottom/size describe the stack being
// switched *to*.
inline void fiber_switch_begin(void** save, const void* bottom,
                               std::size_t size) {
#ifdef STLM_ASAN_FIBERS
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}

// Call as the first action after control (re)enters a context: `save` is
// the handle stored by this context's previous fiber_switch_begin
// (nullptr on a fiber's first entry); bottom_old/size_old, when
// non-null, receive the bounds of the stack control came from.
inline void fiber_switch_end(void* save, const void** bottom_old = nullptr,
                             std::size_t* size_old = nullptr) {
#ifdef STLM_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(save, bottom_old, size_old);
#else
  (void)save;
  (void)bottom_old;
  (void)size_old;
#endif
}

// --- TSan fiber identities (no-ops in non-TSan builds) ------------------
//
// Each thread process owns a fiber handle created at first start and
// destroyed with the process; the scheduler context is the OS thread's
// implicit fiber. tsan_fiber_switch is called immediately before each
// stlm_ctx_swap with the handle of the context being switched *to*, with
// flag 0 so TSan carries synchronization (happens-before) across the
// switch — coroutines of one simulator genuinely are one logical thread.

inline void* tsan_fiber_current() {
#ifdef STLM_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void* tsan_fiber_create(const char* name) {
#ifdef STLM_TSAN_FIBERS
  void* f = __tsan_create_fiber(0);
  __tsan_set_fiber_name(f, name);
  return f;
#else
  (void)name;
  return nullptr;
#endif
}

inline void tsan_fiber_destroy(void* fiber) {
#ifdef STLM_TSAN_FIBERS
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

inline void tsan_fiber_switch(void* fiber) {
#ifdef STLM_TSAN_FIBERS
  __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

}  // namespace stlm::detail
