#pragma once
// Lightweight user-space context switch for thread processes.
//
// glibc's swapcontext() performs a sigprocmask system call on every
// switch (~1-2 us), which would dominate simulation time — a clock cycle
// costs several process switches. Simulation coroutines never change the
// signal mask, so we switch stacks directly: save the callee-saved
// registers and the stack pointer, load the peer's. This is the same
// technique SystemC's QuickThreads package uses.
//
// x86-64 System V only (the platform this repository targets); the
// assembly lives in process.cpp.

#include <cstddef>

// AddressSanitizer needs to be told about stack switches: without the
// fiber annotations it believes the thread never left its original
// stack, so a noreturn path on a coroutine stack (throwing a simulation
// error, abort) trips "stack-buffer-underflow in sigaltstack" false
// positives while ASan tries to unpoison the wrong stack
// (github.com/google/sanitizers/issues/189). The helpers below compile
// to nothing in non-sanitized builds.
#if defined(__SANITIZE_ADDRESS__)
#define STLM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STLM_ASAN_FIBERS 1
#endif
#endif

#ifdef STLM_ASAN_FIBERS
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif

namespace stlm::detail {

#if !defined(__x86_64__)
#error "shiptlm's coroutine switch is implemented for x86-64 SysV only"
#endif

// Save the current stack pointer to *save_sp, switch to load_sp (a value
// previously produced by this function or by make_initial_stack).
extern "C" void stlm_ctx_swap(void** save_sp, void* load_sp);

// Call immediately before stlm_ctx_swap: `save` stores this context's
// fake-stack handle (pass nullptr when this context is about to die, so
// ASan releases its fake frames); bottom/size describe the stack being
// switched *to*.
inline void fiber_switch_begin(void** save, const void* bottom,
                               std::size_t size) {
#ifdef STLM_ASAN_FIBERS
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}

// Call as the first action after control (re)enters a context: `save` is
// the handle stored by this context's previous fiber_switch_begin
// (nullptr on a fiber's first entry); bottom_old/size_old, when
// non-null, receive the bounds of the stack control came from.
inline void fiber_switch_end(void* save, const void** bottom_old = nullptr,
                             std::size_t* size_old = nullptr) {
#ifdef STLM_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(save, bottom_old, size_old);
#else
  (void)save;
  (void)bottom_old;
  (void)size_old;
#endif
}

}  // namespace stlm::detail
