#pragma once
// Lightweight user-space context switch for thread processes.
//
// glibc's swapcontext() performs a sigprocmask system call on every
// switch (~1-2 us), which would dominate simulation time — a clock cycle
// costs several process switches. Simulation coroutines never change the
// signal mask, so we switch stacks directly: save the callee-saved
// registers and the stack pointer, load the peer's. This is the same
// technique SystemC's QuickThreads package uses.
//
// x86-64 System V only (the platform this repository targets); the
// assembly lives in process.cpp.

namespace stlm::detail {

#if !defined(__x86_64__)
#error "shiptlm's coroutine switch is implemented for x86-64 SysV only"
#endif

// Save the current stack pointer to *save_sp, switch to load_sp (a value
// previously produced by this function or by make_initial_stack).
extern "C" void stlm_ctx_swap(void** save_sp, void* load_sp);

}  // namespace stlm::detail
