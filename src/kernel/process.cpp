#include "kernel/process.hpp"

#include <algorithm>
#include <cstdlib>

#include "kernel/context.hpp"
#include "kernel/event.hpp"
#include "kernel/report.hpp"
#include "kernel/simulator.hpp"

// Callee-saved-register stack switch (x86-64 SysV). See context.hpp.
asm(R"(
.text
.globl stlm_ctx_swap
.type stlm_ctx_swap, @function
stlm_ctx_swap:
  pushq %rbx
  pushq %rbp
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbp
  popq %rbx
  ret
.size stlm_ctx_swap, .-stlm_ctx_swap
)");

namespace stlm {

namespace {
// Handoff slot for the coroutine trampoline (the initial frame carries no
// arguments; the spawner sets this immediately before the first switch).
thread_local Process* g_starting_process = nullptr;
}  // namespace

void throw_process_killed() { throw ProcessKilled{}; }

// ---------------------------------------------------------------- base --

ProcessBase::ProcessBase(Simulator& sim, std::string name, Kind kind)
    : sim_(sim), name_(std::move(name)), kind_(kind) {
  sim_.register_process(*this);
}

ProcessBase::~ProcessBase() {
  // Remove ourselves from the static lists of still-live events.
  for (Event* e : static_events_) {
    if (!sim_.event_alive(e)) continue;
    std::erase(e->static_, this);
  }
  sim_.unregister_process(*this);
}

void ProcessBase::set_static_sensitivity(const std::vector<Event*>& events) {
  for (Event* e : static_events_) {
    if (sim_.event_alive(e)) std::erase(e->static_, this);
  }
  static_events_ = events;
  for (Event* e : static_events_) {
    STLM_ASSERT(e != nullptr, "null event in sensitivity list of " + name_);
    e->static_.push_back(this);
  }
}

// -------------------------------------------------------------- thread --

Process::Process(Simulator& sim, std::string name, std::function<void()> body,
                 std::size_t stack_bytes)
    : ProcessBase(sim, std::move(name), Kind::Thread),
      body_(std::move(body)),
      stack_(detail::StackPool::local().acquire(stack_bytes)),
      stack_bytes_(stack_.bytes) {
  STLM_ASSERT(body_ != nullptr, "thread process needs a body: " + name_);
}

Process::~Process() {
  // A process destroyed while parked mid-wait still has live frames (and
  // their locals) on its coroutine stack. Unwind them so destructors run
  // and LeakSanitizer sees every allocation released — without this,
  // sanitized CI had to run with leak detection off.
  if (started_ && !terminated_) sim_.kill_process(*this);
  detail::tsan_fiber_destroy(tsan_fiber_);
  detail::StackPool::local().release(stack_);
}

Event& Process::terminated_event() {
  if (!terminated_event_) {
    terminated_event_ =
        std::make_unique<Event>(sim_, name_ + ".terminated");
  }
  return *terminated_event_;
}

void Process::trampoline() {
  Process* self = g_starting_process;
  g_starting_process = nullptr;
  // First entry on this fiber: tell the sanitizer the switch completed
  // and learn the scheduler stack's bounds for the switches back.
  detail::fiber_switch_end(nullptr, &self->sim_.sched_stack_bottom_,
                           &self->sim_.sched_stack_size_);
  try {
    self->body_();
  } catch (const ProcessKilled&) {
    // Teardown unwind (Simulator::kill_process): expected, not an error.
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->terminated_ = true;
  if (self->terminated_event_) self->terminated_event_->notify_delta();
  // Hand control back to the scheduler for good (null handle: this
  // fiber is done, release its sanitizer fake frames).
  detail::fiber_switch_begin(nullptr, self->sim_.sched_stack_bottom_,
                             self->sim_.sched_stack_size_);
  detail::tsan_fiber_switch(self->sim_.tsan_sched_fiber_);
  detail::stlm_ctx_swap(&self->sp_, self->sim_.sched_sp_);
  // A terminated process is never resumed.
  std::abort();
}

void Process::ensure_started() {
  if (started_) return;
  started_ = true;
  // Craft the initial frame stlm_ctx_swap will "restore": six zeroed
  // callee-saved registers, then the trampoline as return address. The
  // pad slot keeps rsp % 16 == 8 at trampoline entry (SysV call ABI).
  char* top = stack_.base + stack_bytes_;
  top -= reinterpret_cast<std::uintptr_t>(top) % 16;
  void** frame = reinterpret_cast<void**>(top) - 8;
  for (int i = 0; i < 6; ++i) frame[i] = nullptr;     // r15..rbx
  frame[6] = reinterpret_cast<void*>(&Process::trampoline);
  frame[7] = nullptr;                                 // alignment pad
  sp_ = frame;
#ifdef STLM_TSAN_FIBERS
  tsan_fiber_ = detail::tsan_fiber_create(name_.c_str());
#endif
  g_starting_process = this;
}

// -------------------------------------------------------------- method --

MethodProcess::MethodProcess(Simulator& sim, std::string name,
                             std::function<void()> fn, bool run_at_start)
    : ProcessBase(sim, std::move(name), Kind::Method),
      fn_(std::move(fn)),
      run_at_start_(run_at_start) {
  STLM_ASSERT(fn_ != nullptr, "method process needs a callback: " + name_);
}

}  // namespace stlm
