#pragma once
// Simulated-time representation for the shiptlm discrete-event kernel.
//
// Time is an absolute or relative simulated duration held in femtoseconds,
// mirroring SystemC's sc_time default resolution. 64 bits of femtoseconds
// cover ~5.1 hours of simulated time, far beyond any embedded-system run
// this library models.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace stlm {

class Time {
public:
  constexpr Time() = default;

  // Named constructors -------------------------------------------------
  static constexpr Time fs(std::uint64_t v) { return Time{v}; }
  static constexpr Time ps(std::uint64_t v) { return Time{v * 1'000ULL}; }
  static constexpr Time ns(std::uint64_t v) { return Time{v * 1'000'000ULL}; }
  static constexpr Time us(std::uint64_t v) { return Time{v * 1'000'000'000ULL}; }
  static constexpr Time ms(std::uint64_t v) { return Time{v * 1'000'000'000'000ULL}; }
  static constexpr Time sec(std::uint64_t v) { return Time{v * 1'000'000'000'000'000ULL}; }

  static constexpr Time zero() { return Time{}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::uint64_t>::max()};
  }

  // Observers -----------------------------------------------------------
  constexpr std::uint64_t femtoseconds() const { return fs_; }
  constexpr double to_seconds() const { return static_cast<double>(fs_) * 1e-15; }
  constexpr double to_ns() const { return static_cast<double>(fs_) * 1e-6; }
  constexpr bool is_zero() const { return fs_ == 0; }
  constexpr bool is_max() const { return fs_ == max().fs_; }

  // Human-readable rendering with an auto-selected unit (e.g. "12.5 ns").
  std::string to_string() const;

  // Arithmetic ----------------------------------------------------------
  constexpr Time& operator+=(Time o) { fs_ += o.fs_; return *this; }
  constexpr Time& operator-=(Time o) { fs_ -= o.fs_; return *this; }
  constexpr Time& operator*=(std::uint64_t k) { fs_ *= k; return *this; }
  constexpr Time& operator/=(std::uint64_t k) { fs_ /= k; return *this; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.fs_ + b.fs_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.fs_ - b.fs_}; }
  friend constexpr Time operator*(Time a, std::uint64_t k) { return Time{a.fs_ * k}; }
  friend constexpr Time operator*(std::uint64_t k, Time a) { return Time{a.fs_ * k}; }
  friend constexpr Time operator/(Time a, std::uint64_t k) { return Time{a.fs_ / k}; }
  friend constexpr std::uint64_t operator/(Time a, Time b) { return a.fs_ / b.fs_; }
  friend constexpr Time operator%(Time a, Time b) { return Time{a.fs_ % b.fs_}; }

  friend constexpr auto operator<=>(Time a, Time b) = default;

private:
  constexpr explicit Time(std::uint64_t v) : fs_(v) {}
  std::uint64_t fs_ = 0;
};

// UDL suffixes: `10_ns`, `5_us`, ... Importable via `using namespace
// stlm::time_literals;` (also pulled in by `using namespace stlm;`).
inline namespace time_literals {
constexpr Time operator""_fs(unsigned long long v) { return Time::fs(v); }
constexpr Time operator""_ps(unsigned long long v) { return Time::ps(v); }
constexpr Time operator""_ns(unsigned long long v) { return Time::ns(v); }
constexpr Time operator""_us(unsigned long long v) { return Time::us(v); }
constexpr Time operator""_ms(unsigned long long v) { return Time::ms(v); }
constexpr Time operator""_sec(unsigned long long v) { return Time::sec(v); }
}  // namespace time_literals

}  // namespace stlm
