#pragma once
// Kernel determinism auditor.
//
// The repo's speed story (sharded sweeps, the calendar-queue scheduler,
// lone-runner inline advance, fast-path transports) is only usable
// because simulated results stay bit-identical across those rewrites.
// Bit-identity today rests on the runnable queue's FIFO discipline: any
// two processes that touch the same object in the same delta cycle are
// ordered by scheduler policy, not by simulated causality — exactly the
// hazard a future scheduler change (or a hand-introduced race like the
// three fixed in the PR 6 review) can silently perturb.
//
// The auditor makes that hazard mechanical. Instrumented objects —
// kernel channels (Fifo/Mutex/Semaphore), TxnPool descriptors, CAM
// master access points, CAM stat-slot blocks — report each access as
// (object, process, read|write). Within one delta cycle, two accesses
// from different processes with at least one write are a *conflict* when
// the processes were co-runnable: the later-dispatched process was
// already sitting in the runnable queue when the earlier access
// happened, so the scheduler could legally have swapped them and changed
// the outcome. Accesses ordered by causality (A wakes B, then B reads
// what A wrote) are not flagged — B only became runnable during A's
// dispatch.
//
// Benign-by-construction patterns are kept quiet by key granularity, not
// by suppression lists:
//   * FIFO-shaped objects audit their head and tail as separate keys —
//     a same-delta push+pop pair commutes (the blocked side retries and
//     converges on the same simulated time), while push+push or pop+pop
//     on one key is a real ordering hazard;
//   * the TxnPool audits per descriptor, so co-runnable acquires of
//     interchangeable descriptors stay quiet while a same-delta handoff
//     or double release of one descriptor is flagged;
//   * CAM access points audit per master, so simultaneous requests that
//     the arbiter ranks deterministically stay quiet while two processes
//     sharing one master port is flagged.
//
// Build/runtime gating: instrumentation call sites compile to empty
// inlines unless the library is built with -DSTLM_AUDIT (CMake option
// STLM_AUDIT, default ON; the perf-gate CI job builds with it OFF and
// BM_CamRoundtrip pins the no-op claim). With the hooks compiled in,
// auditing is still off until enabled — per simulator via
// Simulator::set_audit_enabled(), or for every subsequently constructed
// Simulator via audit::set_default_enabled() (what the exploration grid
// test uses to audit the sweep's internal simulators).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/time.hpp"

namespace stlm {
class Simulator;
class ProcessBase;
}  // namespace stlm

namespace stlm::audit {

enum class Mode : std::uint8_t { Read, Write };

const char* mode_name(Mode m);

// One (object, process-pair) conflict class. `count` accumulates repeat
// occurrences of the same pair so a hazard inside a loop reports once
// with a multiplicity instead of flooding the table.
struct Conflict {
  std::string object;  // audited object ("<kind>:<name>")
  std::string first;   // process dispatched first within the delta
  Mode first_mode;
  std::string second;  // co-runnable process dispatched later
  Mode second_mode;
  Time when;            // simulated time of the first occurrence
  std::uint64_t delta;  // delta-cycle count of the first occurrence
  std::uint64_t count = 1;
};

struct Report {
  bool enabled = false;          // auditing was on for this simulator
  std::uint64_t accesses = 0;    // audited accesses observed
  std::uint64_t objects = 0;     // distinct audited objects seen
  std::uint64_t conflict_events = 0;  // total occurrences (>= conflicts.size())
  std::vector<Conflict> conflicts;
  // Human-readable per-pair conflict table (empty string when clean).
  std::string table() const;
};

// Process-wide default sampled by every subsequently constructed
// Simulator (thread-safe; sweep workers construct their simulators after
// the test flips this on).
void set_default_enabled(bool on);
bool default_enabled();

// True when the library was built with the instrumentation call sites
// compiled in (-DSTLM_AUDIT). Tests skip their audit assertions when the
// hooks are compiled out.
constexpr bool compiled_in() {
#ifdef STLM_AUDIT
  return true;
#else
  return false;
#endif
}

// Per-simulator access recorder. Always compiled (it is small and lets
// audit_report() exist unconditionally); only the *call sites* are
// gated, so an STLM_AUDIT=OFF build pays literally nothing on the hot
// paths.
class Auditor {
 public:
  explicit Auditor(Simulator& sim) : sim_(sim) {}

  // Record one access to the audited object identified by `key`.
  // `kind`/`name` label the object in the conflict table the first time
  // the key is seen (a stable string reference at the call site — no
  // per-access string building).
  void access(const void* key, Mode mode, const char* kind,
              const std::string& name);

  // The storage behind `key` starts a new logical lifetime (a pooled
  // descriptor being recycled): drop any same-delta access history so
  // the previous occupant's accesses don't pair with the new one's.
  void begin_lifetime(const void* key);

  Report report() const;

 private:
  struct Access {
    const ProcessBase* proc;
    std::uint64_t dispatch;  // scheduler dispatch seq of the access
    std::uint64_t enq;       // dispatch seq when `proc` was enqueued
    Mode mode;
  };
  struct Object {
    std::string label;                   // "<kind>:<name>"
    std::uint64_t delta = ~0ull;         // delta the access list belongs to
    std::vector<Access> accesses;        // this delta's accesses
  };

  void note_conflict(const Object& obj, const Access& first,
                     const Access& second);
  std::string process_name(const ProcessBase* p) const;

  Simulator& sim_;
  std::unordered_map<const void*, Object> objects_;
  // (object label | first | second) -> index into conflicts_.
  std::unordered_map<std::string, std::size_t> conflict_index_;
  std::vector<Conflict> conflicts_;
  std::uint64_t accesses_ = 0;
  std::uint64_t conflict_events_ = 0;
};

// ---- instrumentation hook ------------------------------------------------
//
// Call-site entry point. With STLM_AUDIT off this is an empty inline —
// the compiler removes the call and its argument setup entirely. With it
// on, the out-of-line implementation forwards to the simulator's Auditor
// when runtime auditing is enabled (one pointer test otherwise).

#ifdef STLM_AUDIT
void on_access(Simulator& sim, const void* key, Mode mode, const char* kind,
               const std::string& name);
void on_fresh(Simulator& sim, const void* key);
#else
inline void on_access(Simulator&, const void*, Mode, const char*,
                      const std::string&) {}
inline void on_fresh(Simulator&, const void*) {}
#endif

}  // namespace stlm::audit
