#pragma once
// Pooled coroutine stacks.
//
// Every thread process used to own a 256 KiB `new char[]` stack:
// allocation, zero-fill, and first-touch page faults on every spawn. A
// thousand-platform exploration sweep spawns tens of thousands of
// short-lived processes, so the stacks dominated platform setup cost.
//
// StackPool replaces that with a per-OS-thread free list of mmap'd
// blocks. Each block carries a PROT_NONE guard page below the usable
// range, so a coroutine overflowing its stack faults immediately instead
// of corrupting a neighbouring allocation — strictly better than the old
// heap arrays.
//
// Threading contract: each pool only ever touches its own lists, so no
// locking is needed on the hot path. A block remembers the pool (and
// size-class node) it was acquired from. Releasing it on another thread
// — a Process destroyed off its creating thread — never touches the
// foreign pool's lists: the pages are unmapped immediately and the
// owning size class is credited through an atomic counter, which the
// owner folds back into its usage count on its next operation. That
// keeps the owner's in_use / high-water bookkeeping exact instead of
// ratcheting upward. The owning thread's pool must still be alive when
// the block is released (true for every use in this repo: a Simulator
// and its processes are torn down on the thread that created them).
//
// Shrink policy (high-water mark): a size class never caches more
// blocks than its peak concurrent demand over the current and previous
// "epoch" (an epoch ends each time usage drains to zero). Steady
// repeated demand — a sweep tearing down one platform and building the
// next — therefore recycles every stack, while a one-off burst is shed
// after two quiet epochs instead of being pinned forever.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace stlm::detail {

class StackPool {
  struct SizeClass;

public:
  // A usable stack range: [base, base + bytes), guard page below base.
  // `owner`/`home` identify the acquiring pool and its size-class node,
  // so release() can detect a cross-thread return and credit the right
  // bookkeeping (see the threading contract above).
  struct Block {
    char* base = nullptr;
    std::size_t bytes = 0;
    StackPool* owner = nullptr;
    SizeClass* home = nullptr;
    explicit operator bool() const { return base != nullptr; }
  };

  // The calling OS thread's pool (thread-local singleton).
  static StackPool& local();

  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  // A block with at least `bytes` usable (rounded up to whole pages),
  // recycled from the free list when possible. Throws SimulationError
  // if the kernel refuses the mapping.
  Block acquire(std::size_t bytes);
  // Return a block acquired from a StackPool. Called on a pool other
  // than the acquiring one (cross-thread destruction), the block is
  // unmapped immediately and the owner credited — see the header
  // comment for the lifetime contract.
  void release(Block b);

  // Unmap every cached block (used by tests and the destructor).
  void trim();

  // --- observability (pool-behaviour regression tests) -------------------
  std::uint64_t maps() const { return maps_; }
  std::uint64_t unmaps() const { return unmaps_; }
  std::uint64_t reuses() const { return reuses_; }
  std::size_t cached_blocks() const;
  std::size_t cached_bytes() const;
  // Blocks acquired from this pool and not yet returned (a cross-thread
  // release counts once the pool has reconciled it, i.e. after the next
  // acquire/release/trim on this pool).
  std::size_t in_use_blocks() const;
  // Peak concurrent in-use blocks over the pool's lifetime (the stack
  // high-water the obs::Profiler reports).
  std::size_t peak_in_use_blocks() const { return peak_in_use_; }

private:
  StackPool() = default;

  // Size classes live in a node-based map: node addresses are stable
  // across rehash and for the pool's lifetime, which is what lets a
  // Block safely carry its `home` pointer to another thread.
  struct SizeClass {
    std::vector<Block> free;
    std::size_t in_use = 0;
    std::size_t hwm = 0;       // peak concurrent usage this epoch
    std::size_t prev_hwm = 0;  // previous epoch's peak
    // Blocks of this class released on another thread since the last
    // reconcile; the only member a foreign thread may touch.
    std::atomic<std::size_t> foreign_released{0};
    std::size_t cache_cap() const { return hwm > prev_hwm ? hwm : prev_hwm; }
  };

  // Fold foreign (cross-thread) releases into the usage count.
  static void reconcile(SizeClass& sc);

  static Block map_block(std::size_t bytes);
  static void unmap_block(const Block& b);

  std::unordered_map<std::size_t, SizeClass> classes_;
  std::uint64_t maps_ = 0;
  std::uint64_t unmaps_ = 0;
  std::uint64_t reuses_ = 0;
  std::size_t peak_in_use_ = 0;
};

}  // namespace stlm::detail
